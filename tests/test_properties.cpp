// Property-style sweeps over the core invariants, using parameterized gtest:
//  * consistency predicate vs randomly generated honest histories and forks,
//  * canonical shuffle determinism across seeds,
//  * sketch prefix-truncation identity (the wire-format cornerstone),
//  * commitment serialization roundtrips across parameter combinations.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/block.hpp"
#include "core/commitment.hpp"
#include "core/commitment_log.hpp"
#include "core/messages.hpp"
#include "minisketch/sketch.hpp"
#include "util/rng.hpp"

namespace lo::core {
namespace {

constexpr auto kMode = crypto::SignatureMode::kSimFast;

crypto::Signer signer(std::uint64_t id) {
  return crypto::Signer(crypto::derive_keypair(id, kMode), kMode);
}

std::vector<TxId> random_txids(util::Rng& rng, std::size_t n) {
  std::vector<TxId> out(n);
  for (auto& id : out) {
    for (auto& b : id) b = static_cast<std::uint8_t>(rng.next());
  }
  return out;
}

// ---- Property: any two snapshots of one honest history are consistent ----

class HonestHistoryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HonestHistoryProperty, AllSnapshotPairsConsistent) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  CommitmentLog log(1, CommitmentParams{});
  const auto s = signer(1);

  std::vector<CommitmentHeader> snapshots;
  snapshots.push_back(log.make_header(s));
  for (int round = 0; round < 8; ++round) {
    log.append(random_txids(rng, 1 + rng.next_below(12)),
               static_cast<NodeId>(rng.next_below(5)));
    // Random wire truncation, like real sync messages use.
    const std::size_t cap = 8 + rng.next_below(120);
    snapshots.push_back(log.make_header(s, cap));
  }
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    for (std::size_t j = 0; j < snapshots.size(); ++j) {
      const auto& a = snapshots[i];
      const auto& b = snapshots[j];
      const auto verdict = check_consistency(a, b);
      // No honest pair may ever be *provably* inconsistent (accuracy).
      EXPECT_NE(verdict, Consistency::kEquivocation)
          << "snapshots " << i << " and " << j << " (seed " << seed << ")";
      // When the difference fits the common sketch prefix the verdict must
      // be decisive; kInconclusive is only legitimate for larger gaps.
      const std::uint64_t delta =
          a.count > b.count ? a.count - b.count : b.count - a.count;
      const std::size_t common =
          std::min(a.sketch.capacity(), b.sketch.capacity());
      if (delta <= common) {
        EXPECT_EQ(verdict, Consistency::kConsistent)
            << "snapshots " << i << " and " << j << " delta " << delta
            << " common " << common << " (seed " << seed << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HonestHistoryProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- Property: any censoring fork is eventually provable ----

class ForkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForkProperty, CensoredForkIsEquivocationOnceComparable) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed * 977);
  CommitmentLog real(2, CommitmentParams{});
  CommitmentLog fork(2, CommitmentParams{});
  const auto s = signer(2);

  // Shared prefix.
  const auto prefix = random_txids(rng, 1 + rng.next_below(10));
  real.append(prefix, 1);
  fork.append(prefix, 1);
  // The fork drops one victim tx from the next batch.
  auto batch = random_txids(rng, 2 + rng.next_below(8));
  real.append(batch, 3);
  auto censored = batch;
  censored.erase(censored.begin() +
                 static_cast<std::ptrdiff_t>(rng.next_below(censored.size())));
  fork.append(censored, 3);
  // Both continue growing with common traffic.
  const auto tail = random_txids(rng, rng.next_below(6));
  real.append(tail, 4);
  fork.append(tail, 4);

  const auto h_real = real.make_header(s);
  const auto h_fork = fork.make_header(s);
  const auto verdict = check_consistency(h_real, h_fork);
  EXPECT_EQ(verdict, Consistency::kEquivocation)
      << "seed " << seed << ": fork with a censored tx must be provable";

  // And the evidence is transferable.
  EquivocationEvidence ev;
  ev.accused = 2;
  ev.first = h_real;
  ev.second = h_fork;
  EXPECT_TRUE(ev.verify(kMode));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForkProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- Property: canonical segments are invariant across observers ----

class CanonicalOrderProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CanonicalOrderProperty, SegmentsReproducibleFromBundles) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed * 31);
  CommitmentLog log(3, CommitmentParams{});
  for (int b = 0; b < 5; ++b) {
    log.append(random_txids(rng, 1 + rng.next_below(9)), 1);
  }
  crypto::Digest256 prev;
  for (auto& byte : prev) byte = static_cast<std::uint8_t>(rng.next());

  const auto block = build_block(log, signer(3), 1, prev, nullptr);
  // An independent observer holding only the bundles reproduces the exact
  // segment contents via the public canonical_shuffle.
  for (const auto& seg : block.segments) {
    const auto* bundle = log.bundle_by_seqno(seg.seqno);
    ASSERT_NE(bundle, nullptr);
    EXPECT_EQ(seg.txids, canonical_shuffle(bundle->txids, prev, seg.seqno));
  }
  // And a different previous-block hash yields a different overall order
  // (probabilistically certain for >1 multi-tx bundle).
  crypto::Digest256 other = prev;
  other[0] ^= 1;
  const auto block2 = build_block(log, signer(3), 1, other, nullptr);
  EXPECT_NE(block.flat_txids(), block2.flat_txids());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalOrderProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---- Property: sketch prefix truncation equals direct construction ----

struct TruncParam {
  unsigned bits;
  std::size_t full;
  std::size_t trunc;
  std::size_t items;
};

class SketchTruncationProperty : public ::testing::TestWithParam<TruncParam> {};

TEST_P(SketchTruncationProperty, PrefixIsSmallerSketch) {
  const auto p = GetParam();
  util::Rng rng(p.bits * 131 + p.items);
  sketch::Sketch full(p.bits, p.full);
  sketch::Sketch direct(p.bits, p.trunc);
  for (std::size_t i = 0; i < p.items; ++i) {
    const auto v = rng.next();
    full.add(v);
    direct.add(v);
  }
  EXPECT_EQ(full.truncated(p.trunc).syndromes(), direct.syndromes());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SketchTruncationProperty,
    ::testing::Values(TruncParam{32, 128, 8, 50}, TruncParam{32, 128, 64, 200},
                      TruncParam{32, 64, 63, 10}, TruncParam{16, 32, 4, 31},
                      TruncParam{63, 16, 8, 100}));

// ---- Property: commitment serialization roundtrips across parameters ----

struct SerdeParam {
  std::size_t sketch_capacity;
  std::size_t clock_cells;
  unsigned clock_hashes;
  std::size_t appends;
};

class CommitmentSerdeProperty : public ::testing::TestWithParam<SerdeParam> {};

TEST_P(CommitmentSerdeProperty, RoundTripAndVerify) {
  const auto p = GetParam();
  CommitmentParams params;
  params.sketch_capacity = p.sketch_capacity;
  params.clock_cells = p.clock_cells;
  params.clock_hashes = p.clock_hashes;

  util::Rng rng(p.appends * 7 + p.clock_cells);
  CommitmentLog log(9, params);
  for (std::size_t i = 0; i < p.appends; ++i) {
    log.append(random_txids(rng, 1 + rng.next_below(4)), 1);
  }
  const auto s = signer(9);
  for (std::size_t cap : {std::size_t{8}, p.sketch_capacity}) {
    const auto h = log.make_header(s, cap);
    const auto bytes = h.serialize();
    EXPECT_EQ(bytes.size(), h.wire_size());
    const auto back = CommitmentHeader::deserialize(bytes, params);
    ASSERT_TRUE(back.has_value()) << "cap " << cap;
    EXPECT_TRUE(back->verify(kMode));
    EXPECT_EQ(check_consistency(*back, h), Consistency::kConsistent);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CommitmentSerdeProperty,
    ::testing::Values(SerdeParam{128, 32, 1, 0}, SerdeParam{128, 32, 1, 6},
                      SerdeParam{64, 16, 2, 4}, SerdeParam{16, 64, 3, 10},
                      SerdeParam{256, 8, 1, 2}));

// ---- Property: append-only logs never lose or reorder existing entries ----

TEST(LogMonotonicity, OrderIsStablePrefix) {
  util::Rng rng(404);
  CommitmentLog log(5, CommitmentParams{});
  std::vector<TxId> previous;
  for (int round = 0; round < 20; ++round) {
    auto batch = random_txids(rng, rng.next_below(5));
    // Re-offer some known ids to exercise dedup.
    if (!previous.empty()) {
      batch.push_back(previous[rng.next_below(previous.size())]);
    }
    log.append(batch, 1);
    const auto& order = log.order();
    ASSERT_GE(order.size(), previous.size());
    for (std::size_t i = 0; i < previous.size(); ++i) {
      EXPECT_EQ(order[i], previous[i]) << "position " << i << " changed";
    }
    previous = order;
  }
}

}  // namespace
}  // namespace lo::core
