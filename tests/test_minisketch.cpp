// PinSketch/Minisketch tests: roundtrips across sizes and capacities
// (parameterized), overflow detection, XOR-merge semantics, serialization,
// and the hash-partitioned reconciler of Sec. 6.5.
#include <gtest/gtest.h>

#include <set>

#include "minisketch/partitioned.hpp"
#include "minisketch/sketch.hpp"
#include "util/rng.hpp"

namespace lo::sketch {
namespace {

std::set<std::uint64_t> mapped(const gf::Field& f,
                               const std::vector<std::uint64_t>& raw) {
  std::set<std::uint64_t> out;
  for (auto r : raw) out.insert(f.map_nonzero(r));
  return out;
}

TEST(Sketch, EmptyDecodesToEmpty) {
  Sketch s(32, 8);
  auto d = s.decode();
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->empty());
  EXPECT_TRUE(s.is_zero());
}

TEST(Sketch, SingleElementRoundTrip) {
  Sketch s(32, 8);
  s.add(0xfeedface);
  auto d = s.decode();
  ASSERT_TRUE(d.has_value());
  ASSERT_EQ(d->size(), 1u);
  EXPECT_EQ((*d)[0], s.field().map_nonzero(0xfeedface));
}

TEST(Sketch, AddTwiceCancels) {
  Sketch s(32, 8);
  s.add(123);
  s.add(123);
  EXPECT_TRUE(s.is_zero());
}

struct SketchParam {
  unsigned bits;
  std::size_t capacity;
  std::size_t diff;
};

class SketchRoundTrip : public ::testing::TestWithParam<SketchParam> {};

TEST_P(SketchRoundTrip, MergeDecodesSymmetricDifference) {
  const auto p = GetParam();
  Sketch a(p.bits, p.capacity);
  Sketch b(p.bits, p.capacity);
  util::Rng rng(p.bits * 1000 + p.diff);

  std::vector<std::uint64_t> only_a, only_b, shared;
  for (std::size_t i = 0; i < p.diff / 2; ++i) only_a.push_back(rng.next());
  for (std::size_t i = 0; i < p.diff - p.diff / 2; ++i) only_b.push_back(rng.next());
  for (std::size_t i = 0; i < 100; ++i) shared.push_back(rng.next());

  for (auto v : only_a) a.add(v);
  for (auto v : shared) a.add(v);
  for (auto v : only_b) b.add(v);
  for (auto v : shared) b.add(v);

  a.merge(b);
  auto d = a.decode();
  ASSERT_TRUE(d.has_value());
  std::set<std::uint64_t> got(d->begin(), d->end());
  std::set<std::uint64_t> want = mapped(a.field(), only_a);
  for (auto e : mapped(a.field(), only_b)) want.insert(e);
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SketchRoundTrip,
    ::testing::Values(SketchParam{16, 8, 4}, SketchParam{16, 8, 8},
                      SketchParam{32, 8, 1}, SketchParam{32, 8, 8},
                      SketchParam{32, 32, 20}, SketchParam{32, 64, 64},
                      SketchParam{32, 128, 100}, SketchParam{48, 16, 10},
                      SketchParam{63, 8, 5}));

TEST(Sketch, OverflowDetected) {
  // More differences than capacity: decode must fail, not hallucinate.
  for (std::size_t over : {1u, 2u, 10u, 100u}) {
    Sketch s(32, 8);
    util::Rng rng(over);
    for (std::size_t i = 0; i < 8 + over; ++i) s.add(rng.next());
    EXPECT_FALSE(s.decode().has_value()) << "capacity 8, items " << 8 + over;
  }
}

TEST(Sketch, CapacityExactlyFull) {
  Sketch s(32, 16);
  util::Rng rng(3);
  std::set<std::uint64_t> want;
  for (int i = 0; i < 16; ++i) {
    const auto v = rng.next();
    s.add(v);
    want.insert(s.field().map_nonzero(v));
  }
  auto d = s.decode();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(std::set<std::uint64_t>(d->begin(), d->end()), want);
}

TEST(Sketch, SerializeRoundTrip) {
  Sketch s(32, 16);
  util::Rng rng(9);
  for (int i = 0; i < 10; ++i) s.add(rng.next());
  const auto bytes = s.serialize();
  EXPECT_EQ(bytes.size(), s.serialized_size());
  EXPECT_EQ(bytes.size(), 16u * 4u);  // capacity * 4 bytes for 32-bit field
  const Sketch back = Sketch::deserialize(32, 16, bytes);
  EXPECT_EQ(back.syndromes(), s.syndromes());
}

TEST(Sketch, DeserializeRejectsWrongLength) {
  std::vector<std::uint8_t> bytes(63);
  EXPECT_THROW(Sketch::deserialize(32, 16, bytes), std::invalid_argument);
}

TEST(Sketch, MergeParameterMismatchThrows) {
  Sketch a(32, 8), b(32, 16), c(16, 8);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Sketch, ZeroCapacityThrows) {
  EXPECT_THROW(Sketch(32, 0), std::invalid_argument);
}

TEST(Sketch, TruncatedToZeroThrows) {
  // Regression: truncated(0) used to silently produce an undecodable
  // zero-syndrome sketch; it must reject like the constructor does.
  Sketch s(32, 8);
  s.add(42);
  EXPECT_THROW(s.truncated(0), std::invalid_argument);
  // Valid truncations still work and keep the prefix property.
  const Sketch t = s.truncated(4);
  EXPECT_EQ(t.capacity(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.syndromes()[i], s.syndromes()[i]);
  }
}

TEST(Sketch, AddReturnsMappedElement) {
  Sketch s(32, 8);
  const std::uint64_t raw = 0x123456789abcdef0ULL;
  EXPECT_EQ(s.add(raw), s.field().map_nonzero(raw));
}

TEST(Sketch, AddAllMatchesRepeatedAdd) {
  // The blocked batch path must produce bit-identical syndromes to the
  // one-at-a-time path, including a tail that doesn't fill a block.
  for (std::size_t n : {1u, 7u, 8u, 9u, 64u, 100u}) {
    util::Rng rng(n);
    std::vector<std::uint64_t> items(n);
    for (auto& v : items) v = rng.next();
    Sketch one(32, 32), batch(32, 32);
    for (auto v : items) one.add(v);
    batch.add_all(items);
    EXPECT_EQ(batch.syndromes(), one.syndromes()) << "n=" << n;
  }
}

TEST(Sketch, DecodeAtExactCapacityAndOneOver) {
  // Round-trip property at the capacity boundary: a difference of exactly c
  // decodes to the exact set; c+1 must return nullopt — never a wrong set.
  for (std::size_t cap : {4u, 8u, 16u, 33u}) {
    util::Rng rng(1000 + cap);
    Sketch full(32, cap);
    std::set<std::uint64_t> want;
    for (std::size_t i = 0; i < cap; ++i) {
      const auto v = rng.next();
      want.insert(full.add(v));
    }
    auto at = full.decode();
    ASSERT_TRUE(at.has_value()) << "cap=" << cap;
    EXPECT_EQ(std::set<std::uint64_t>(at->begin(), at->end()), want);

    Sketch over = full;
    over.add(rng.next());  // one element past capacity
    EXPECT_FALSE(over.decode().has_value()) << "cap=" << cap;
  }
}

TEST(Sketch, ExplicitDecoderMatchesSketchDecode) {
  // An owned Decoder workspace reused across decodes of different sketches
  // must match the thread-local path byte for byte, run after run.
  Decoder dec;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Sketch s(32, 16);
    util::Rng rng(seed);
    for (int i = 0; i < 12; ++i) s.add(rng.next());
    const auto via_sketch = s.decode();
    const auto via_decoder = dec.decode(s);
    const auto again = dec.decode(s);
    ASSERT_EQ(via_decoder.has_value(), via_sketch.has_value());
    EXPECT_EQ(*via_decoder, *via_sketch);
    EXPECT_EQ(*again, *via_sketch);
  }
}

TEST(Sketch, FastAndReferenceFieldsDecodeIdentically) {
  // End-to-end differential: the same items sketched over the fast field and
  // over the retained reference-kernel field must yield identical syndromes
  // (the wire format) and identical decode output.
  for (unsigned bits : {16u, 32u, 63u}) {
    Sketch fast(gf::Field::get(bits), 12);
    Sketch ref(gf::Field::get_reference(bits), 12);
    util::Rng rng(bits);
    for (int i = 0; i < 10; ++i) {
      const auto v = rng.next();
      fast.add(v);
      ref.add(v);
    }
    EXPECT_EQ(fast.syndromes(), ref.syndromes()) << "bits=" << bits;
    const auto df = fast.decode();
    const auto dr = ref.decode();
    ASSERT_TRUE(df.has_value());
    ASSERT_TRUE(dr.has_value());
    EXPECT_EQ(*df, *dr);
  }
}

TEST(Sketch, WireSizeMatchesPaperScale) {
  // The paper uses a 1,000-byte sketch for up to ~100 differences of 32-bit
  // elements; 128 * 4 = 512 bytes is the same order.
  Sketch s(32, 128);
  EXPECT_EQ(s.serialized_size(), 512u);
}

TEST(Sketch, SupersetDecodesAsGrowth) {
  // B = A + extras: merged sketch contains exactly the extras — this is the
  // append-only consistency check of Sec. 5.2.
  Sketch a(32, 32);
  Sketch b(32, 32);
  util::Rng rng(21);
  std::vector<std::uint64_t> base, extras;
  for (int i = 0; i < 500; ++i) base.push_back(rng.next());
  for (int i = 0; i < 20; ++i) extras.push_back(rng.next());
  for (auto v : base) {
    a.add(v);
    b.add(v);
  }
  for (auto v : extras) b.add(v);
  a.merge(b);
  auto d = a.decode();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->size(), extras.size());
}

TEST(Decoder, WorkspaceClampsAfterOversizedDecode) {
  // Regression: the (thread-local) Decoder workspace used to retain the
  // capacity of the largest decode it ever served. One full-capacity
  // partitioned escalation would pin ~2 * 512 syndrome slots for the life of
  // the thread even when every later request needed 16. The high-water clamp
  // releases the buffers once a full observation window of decodes stays
  // well below the retained size.
  Decoder d;
  Sketch big(16, 512);
  util::Rng rng(99);
  for (int i = 0; i < 300; ++i) big.add(rng.next());
  ASSERT_TRUE(d.decode(big).has_value());
  const std::size_t inflated = d.workspace_capacity();
  ASSERT_GE(inflated, 2 * 512u);  // before: peak buffer pinned

  Sketch small(16, 8);
  const std::uint64_t elem = small.add(42);
  for (int i = 0; i < 200; ++i) {
    const auto out = d.decode(small);
    ASSERT_TRUE(out.has_value());
    ASSERT_EQ(out->size(), 1u);
  }
  const std::size_t clamped = d.workspace_capacity();
  EXPECT_LT(clamped, inflated);  // after: released to the window high-water
  EXPECT_LE(clamped, 64u);       // 2 * max recent capacity, not the old peak

  // Decodes remain correct (and allocation-sized sanely) after the clamp.
  const auto out = d.decode(small);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->front(), elem);
}

// ----------------------------------------------------------- partitioned ----

TEST(Partitioned, SmallDiffNeedsOneRound) {
  std::vector<std::uint64_t> a, b;
  util::Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.next();
    a.push_back(v);
    b.push_back(v);
  }
  for (int i = 0; i < 5; ++i) a.push_back(rng.next());
  PartitionedReconciler pr(32, 16);
  ReconcileStats st;
  auto d = pr.reconcile(a, b, &st);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->size(), 5u);
  EXPECT_EQ(st.rounds, 0u);
  EXPECT_EQ(st.decode_failures, 0u);
  EXPECT_EQ(st.sketches_used, 2u);
}

TEST(Partitioned, LargeDiffSplitsAndSucceeds) {
  std::vector<std::uint64_t> a, b;
  util::Rng rng(32);
  std::set<std::uint64_t> expect;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next();
    a.push_back(v);
    b.push_back(v);
  }
  for (int i = 0; i < 300; ++i) {
    const auto v = rng.next();
    a.push_back(v);
    expect.insert(v);
  }
  PartitionedReconciler pr(32, 16);
  ReconcileStats st;
  auto d = pr.reconcile(a, b, &st);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(std::set<std::uint64_t>(d->begin(), d->end()), expect);
  EXPECT_GT(st.rounds, 0u);
  EXPECT_GT(st.decode_failures, 0u);
}

TEST(Partitioned, IdenticalSetsAreFree) {
  std::vector<std::uint64_t> a;
  util::Rng rng(33);
  for (int i = 0; i < 1000; ++i) a.push_back(rng.next());
  PartitionedReconciler pr(32, 16);
  ReconcileStats st;
  auto d = pr.reconcile(a, a, &st);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->empty());
  EXPECT_EQ(st.sketches_used, 2u);
}

TEST(Partitioned, DisjointSetsFullDifference) {
  std::vector<std::uint64_t> a, b;
  util::Rng rng(34);
  for (int i = 0; i < 200; ++i) a.push_back(rng.next());
  for (int i = 0; i < 200; ++i) b.push_back(rng.next());
  PartitionedReconciler pr(32, 32);
  auto d = pr.reconcile(a, b, nullptr);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->size(), 400u);
}

TEST(Partitioned, PartitionBitIsDeterministicAndBalanced) {
  util::Rng rng(35);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next();
    EXPECT_EQ(partition_bit(v, 3), partition_bit(v, 3));
    if (partition_bit(v, 0)) ++ones;
  }
  EXPECT_NEAR(ones, 5000, 300);
}

TEST(Partitioned, DepthsAreIndependent) {
  // The same item must not always land on the same side at every depth,
  // otherwise splitting would never separate a clustered difference.
  int same_side = 0;
  util::Rng rng(36);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next();
    if (partition_bit(v, 0) == partition_bit(v, 1)) ++same_side;
  }
  EXPECT_GT(same_side, 300);
  EXPECT_LT(same_side, 700);
}

}  // namespace
}  // namespace lo::sketch
