// Block tests: canonical segment construction, seeded intra-bundle shuffle,
// signing, hashing, serialization sizes (Sec. 4.3).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/block.hpp"
#include "util/rng.hpp"

namespace lo::core {
namespace {

constexpr auto kMode = crypto::SignatureMode::kSimFast;

crypto::Signer signer(std::uint64_t id) {
  return crypto::Signer(crypto::derive_keypair(id, kMode), kMode);
}

TxId random_txid(util::Rng& rng) {
  TxId id;
  for (auto& b : id) b = static_cast<std::uint8_t>(rng.next());
  return id;
}

std::vector<TxId> random_txids(util::Rng& rng, std::size_t n) {
  std::vector<TxId> out(n);
  for (auto& id : out) id = random_txid(rng);
  return out;
}

crypto::Digest256 some_hash(std::uint8_t fill) {
  crypto::Digest256 h;
  h.fill(fill);
  return h;
}

TEST(CanonicalShuffle, DeterministicForSeed) {
  util::Rng rng(1);
  const auto ids = random_txids(rng, 20);
  const auto a = canonical_shuffle(ids, some_hash(1), 3);
  const auto b = canonical_shuffle(ids, some_hash(1), 3);
  EXPECT_EQ(a, b);
}

TEST(CanonicalShuffle, SeedChangesOrder) {
  util::Rng rng(2);
  const auto ids = random_txids(rng, 20);
  const auto a = canonical_shuffle(ids, some_hash(1), 3);
  const auto b = canonical_shuffle(ids, some_hash(2), 3);  // different prev
  const auto c = canonical_shuffle(ids, some_hash(1), 4);  // different seqno
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(CanonicalShuffle, IsPermutation) {
  util::Rng rng(3);
  auto ids = random_txids(rng, 30);
  auto shuffled = canonical_shuffle(ids, some_hash(7), 1);
  std::sort(ids.begin(), ids.end());
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(ids, shuffled);
}

TEST(BuildSegments, OneSegmentPerBundleInOrder) {
  CommitmentLog log(1, CommitmentParams{});
  util::Rng rng(4);
  log.append(random_txids(rng, 4), 2);
  log.append(random_txids(rng, 3), 3);
  const auto segs = build_canonical_segments(log, some_hash(1), nullptr);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].seqno, 1u);
  EXPECT_EQ(segs[1].seqno, 2u);
  EXPECT_EQ(segs[0].txids.size(), 4u);
  EXPECT_EQ(segs[1].txids.size(), 3u);
  // Segment content must be the canonical shuffle of the bundle.
  EXPECT_EQ(segs[0].txids,
            canonical_shuffle(log.bundles()[0].txids, some_hash(1), 1));
}

TEST(BuildSegments, IncludeFilterDropsButKeepsOrder) {
  CommitmentLog log(1, CommitmentParams{});
  util::Rng rng(5);
  log.append(random_txids(rng, 10), 2);
  const auto all = build_canonical_segments(log, some_hash(2), nullptr);
  ASSERT_EQ(all.size(), 1u);
  // Keep only every other tx of the canonical order.
  std::unordered_set<TxId, TxIdHash> keep;
  for (std::size_t i = 0; i < all[0].txids.size(); i += 2) {
    keep.insert(all[0].txids[i]);
  }
  const auto filtered = build_canonical_segments(
      log, some_hash(2), [&keep](const TxId& id) { return keep.count(id) != 0; });
  ASSERT_EQ(filtered.size(), 1u);
  ASSERT_EQ(filtered[0].txids.size(), keep.size());
  // Filtered sequence must be a subsequence of the canonical order.
  std::size_t pos = 0;
  for (const auto& id : filtered[0].txids) {
    while (pos < all[0].txids.size() && all[0].txids[pos] != id) ++pos;
    ASSERT_LT(pos, all[0].txids.size());
    ++pos;
  }
}

TEST(BuildSegments, EmptySegmentsOmitted) {
  CommitmentLog log(1, CommitmentParams{});
  util::Rng rng(6);
  log.append(random_txids(rng, 3), 2);
  const auto segs = build_canonical_segments(
      log, some_hash(3), [](const TxId&) { return false; });
  EXPECT_TRUE(segs.empty());
}

TEST(Block, BuildSignVerify) {
  CommitmentLog log(5, CommitmentParams{});
  util::Rng rng(7);
  log.append(random_txids(rng, 6), 2);
  const auto s = signer(5);
  const auto block = build_block(log, s, 10, some_hash(9), nullptr);
  EXPECT_EQ(block.creator, 5u);
  EXPECT_EQ(block.height, 10u);
  EXPECT_EQ(block.commit_seqno, 1u);
  EXPECT_EQ(block.tx_count(), 6u);
  EXPECT_TRUE(block.verify(kMode));
  auto tampered = block;
  tampered.height = 11;
  EXPECT_FALSE(tampered.verify(kMode));
}

TEST(Block, HashChangesWithContent) {
  CommitmentLog log(5, CommitmentParams{});
  util::Rng rng(8);
  log.append(random_txids(rng, 4), 2);
  const auto s = signer(5);
  const auto a = build_block(log, s, 1, some_hash(1), nullptr);
  const auto b = build_block(log, s, 2, some_hash(1), nullptr);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Block, FlatTxidsMatchesSegments) {
  CommitmentLog log(5, CommitmentParams{});
  util::Rng rng(9);
  log.append(random_txids(rng, 3), 2);
  log.append(random_txids(rng, 2), 3);
  const auto block = build_block(log, signer(5), 1, some_hash(1), nullptr);
  const auto flat = block.flat_txids();
  EXPECT_EQ(flat.size(), 5u);
  std::vector<TxId> manual;
  for (const auto& seg : block.segments) {
    manual.insert(manual.end(), seg.txids.begin(), seg.txids.end());
  }
  EXPECT_EQ(flat, manual);
}

TEST(Block, WireSizeScalesWithTxs) {
  CommitmentLog log(5, CommitmentParams{});
  util::Rng rng(10);
  const auto empty_block = build_block(log, signer(5), 1, some_hash(1), nullptr);
  log.append(random_txids(rng, 10), 2);
  const auto full_block = build_block(log, signer(5), 1, some_hash(1), nullptr);
  EXPECT_GE(full_block.wire_size(), empty_block.wire_size() + 10 * 32);
}

TEST(Block, EmptyLogGivesEmptyBlock) {
  CommitmentLog log(5, CommitmentParams{});
  const auto block = build_block(log, signer(5), 1, some_hash(1), nullptr);
  EXPECT_EQ(block.tx_count(), 0u);
  EXPECT_EQ(block.commit_seqno, 0u);
  EXPECT_TRUE(block.verify(kMode));
}

}  // namespace
}  // namespace lo::core
