// AccountabilityRegistry tests: observation, status transitions, equivocation
// evidence production (Sec. 3.2 / 5.2).
#include <gtest/gtest.h>

#include "core/accountability.hpp"
#include "core/commitment_log.hpp"
#include "util/rng.hpp"

namespace lo::core {
namespace {

constexpr auto kMode = crypto::SignatureMode::kSimFast;

crypto::Signer signer(std::uint64_t id) {
  return crypto::Signer(crypto::derive_keypair(id, kMode), kMode);
}

std::vector<TxId> random_txids(util::Rng& rng, std::size_t n) {
  std::vector<TxId> out(n);
  for (auto& id : out) {
    for (auto& b : id) b = static_cast<std::uint8_t>(rng.next());
  }
  return out;
}

TEST(Registry, StatusTransitions) {
  AccountabilityRegistry reg(kMode);
  EXPECT_EQ(reg.status(5), PeerStatus::kTrusted);
  reg.suspect(5);
  EXPECT_EQ(reg.status(5), PeerStatus::kSuspected);
  EXPECT_TRUE(reg.is_suspected(5));
  reg.unsuspect(5);
  EXPECT_EQ(reg.status(5), PeerStatus::kTrusted);
  reg.suspect(5);
  reg.expose(5);
  EXPECT_EQ(reg.status(5), PeerStatus::kExposed);
  EXPECT_FALSE(reg.is_suspected(5)) << "exposure supersedes suspicion";
}

TEST(Registry, ObserveStoresLatest) {
  AccountabilityRegistry reg(kMode);
  CommitmentLog log(9, CommitmentParams{});
  util::Rng rng(1);
  const auto s = signer(9);
  log.append(random_txids(rng, 2), 1);
  EXPECT_FALSE(reg.observe_commitment(log.make_header(s)).has_value());
  const auto h1 = reg.latest(9);
  ASSERT_NE(h1, nullptr);
  EXPECT_EQ(h1->seqno, 1u);
  log.append(random_txids(rng, 2), 2);
  EXPECT_FALSE(reg.observe_commitment(log.make_header(s)).has_value());
  EXPECT_EQ(reg.latest(9)->seqno, 2u);
  EXPECT_EQ(reg.commitments_stored(), 1u);
}

TEST(Registry, OlderConsistentHeaderKept) {
  AccountabilityRegistry reg(kMode);
  CommitmentLog log(9, CommitmentParams{});
  util::Rng rng(2);
  const auto s = signer(9);
  log.append(random_txids(rng, 2), 1);
  const auto h_old = log.make_header(s);
  log.append(random_txids(rng, 2), 2);
  const auto h_new = log.make_header(s);
  EXPECT_FALSE(reg.observe_commitment(h_new).has_value());
  // Replaying the old header is consistent and must not downgrade storage.
  EXPECT_FALSE(reg.observe_commitment(h_old).has_value());
  EXPECT_EQ(reg.latest(9)->seqno, 2u);
}

TEST(Registry, EquivocationProducesEvidenceAndExposes) {
  AccountabilityRegistry reg(kMode);
  util::Rng rng(3);
  CommitmentLog a(9, CommitmentParams{}), b(9, CommitmentParams{});
  a.append(random_txids(rng, 3), 1);
  b.append(random_txids(rng, 3), 1);
  const auto s = signer(9);
  EXPECT_FALSE(reg.observe_commitment(a.make_header(s)).has_value());
  const auto evidence = reg.observe_commitment(b.make_header(s));
  ASSERT_TRUE(evidence.has_value());
  EXPECT_EQ(evidence->accused, 9u);
  EXPECT_TRUE(evidence->verify(kMode));
  EXPECT_TRUE(reg.is_exposed(9));
}

TEST(Registry, InvalidSignatureIgnored) {
  AccountabilityRegistry reg(kMode);
  CommitmentLog log(9, CommitmentParams{});
  auto h = log.make_header(signer(9));
  h.count = 99;  // breaks signature
  EXPECT_FALSE(reg.observe_commitment(h).has_value());
  EXPECT_EQ(reg.latest(9), nullptr);
}

TEST(Registry, SignatureCheckCanBeDisabled) {
  AccountabilityRegistry reg(kMode, /*verify_signatures=*/false);
  CommitmentLog log(9, CommitmentParams{});
  auto h = log.make_header(signer(9));
  h.sig[0] ^= 1;  // would fail verification
  EXPECT_FALSE(reg.observe_commitment(h).has_value());
  EXPECT_NE(reg.latest(9), nullptr);
}

TEST(Registry, ImposterKeyIgnored) {
  AccountabilityRegistry reg(kMode);
  CommitmentLog log(9, CommitmentParams{});
  util::Rng rng(4);
  log.append(random_txids(rng, 2), 1);
  EXPECT_FALSE(reg.observe_commitment(log.make_header(signer(9))).has_value());
  // Another keypair claiming to be node 9: signed validly under the imposter
  // key, but conflicting with the stored key — not evidence, just ignored.
  CommitmentLog fake(9, CommitmentParams{});
  fake.append(random_txids(rng, 5), 1);
  const auto ev = reg.observe_commitment(fake.make_header(signer(666)));
  EXPECT_FALSE(ev.has_value());
  EXPECT_FALSE(reg.is_exposed(9));
  EXPECT_EQ(reg.latest(9)->count, 2u);
}

TEST(Registry, MemoryAccountingGrows) {
  AccountabilityRegistry reg(kMode);
  util::Rng rng(5);
  const auto before = reg.memory_bytes();
  for (std::uint64_t n = 0; n < 10; ++n) {
    CommitmentLog log(static_cast<NodeId>(n), CommitmentParams{});
    log.append(random_txids(rng, 1), 1);
    reg.observe_commitment(log.make_header(signer(n)));
  }
  EXPECT_EQ(reg.commitments_stored(), 10u);
  EXPECT_GT(reg.memory_bytes(), before + 10 * 500);
}

}  // namespace
}  // namespace lo::core
