#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "util/hex.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace lo::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroIsZero) {
  Rng r(7);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng r(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[r.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(11);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += r.next_exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.next_lognormal(1.0, 2.0), 0.0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng r(19);
  auto s = r.sample_indices(100, 20);
  ASSERT_EQ(s.size(), 20u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (auto i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesAllWhenKTooLarge) {
  Rng r(19);
  auto s = r.sample_indices(5, 50);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Serde, RoundTripScalars) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(3.14159);
  auto bytes = w.take_u8();
  Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(Serde, RoundTripVarBytesAndString) {
  Writer w;
  std::vector<std::uint8_t> payload{1, 2, 3, 250, 255};
  w.var_bytes(payload);
  w.str("hello LO");
  auto bytes = w.take_u8();
  Reader r(bytes);
  EXPECT_EQ(r.var_bytes(), payload);
  EXPECT_EQ(r.str(), "hello LO");
}

TEST(Serde, RoundTripFixedArray) {
  std::array<std::uint8_t, 32> arr;
  for (std::size_t i = 0; i < 32; ++i) arr[i] = static_cast<std::uint8_t>(i * 7);
  Writer w;
  w.fixed(arr);
  auto bytes = w.take_u8();
  Reader r(bytes);
  EXPECT_EQ(r.fixed<32>(), arr);
}

TEST(Serde, UnderrunThrows) {
  std::vector<std::uint8_t> two{1, 2};
  Reader r(two);
  EXPECT_THROW(r.u32(), SerdeError);
}

TEST(Serde, VarBytesUnderrunThrows) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes follow
  auto bytes = w.take_u8();
  Reader r(bytes);
  EXPECT_THROW(r.var_bytes(), SerdeError);
}

TEST(Serde, WriterOversizeVarBytesThrows) {
  // Regression: lengths >= 2^32 used to be silently truncated by the u32
  // prefix cast, desyncing the reader. A span with a fabricated huge size is
  // safe here because the length check throws before any element is touched.
  std::uint8_t byte = 0;
  const std::span<const std::uint8_t> huge(&byte, std::size_t{1} << 32);
  Writer w;
  EXPECT_THROW(w.var_bytes(huge), SerdeError);
  EXPECT_EQ(w.size(), 0u);  // nothing written before the throw

  const std::string_view huge_str(reinterpret_cast<const char*>(&byte),
                                  (std::size_t{1} << 32) + 7);
  EXPECT_THROW(w.str(huge_str), SerdeError);
  EXPECT_EQ(w.size(), 0u);
}

TEST(Serde, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  auto bytes = w.take_u8();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x04);
  EXPECT_EQ(bytes[3], 0x01);
}

TEST(Hex, RoundTrip) {
  std::vector<std::uint8_t> data{0x00, 0x01, 0xab, 0xcd, 0xff};
  EXPECT_EQ(to_hex(data), "0001abcdff");
  EXPECT_EQ(from_hex("0001abcdff"), data);
  EXPECT_EQ(from_hex("0001ABCDFF"), data);
}

TEST(Hex, RejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Hex, RejectsNonHexChars) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Hex, FixedSizeMismatchThrows) {
  EXPECT_THROW((from_hex_fixed<4>("aabb")), std::invalid_argument);
}

TEST(Hex, EmptyIsValid) {
  EXPECT_EQ(to_hex(std::vector<std::uint8_t>{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

}  // namespace
}  // namespace lo::util
