// Block inspection tests: every verdict of Sec. 4.3/5.2 — canonical blocks
// pass, reorders/injections/censorship/bad structure are caught, partial
// bundle knowledge yields kNeedBundles, and transferable BlockEvidence
// verifies end-to-end.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/block.hpp"
#include "core/inspection.hpp"
#include "core/messages.hpp"
#include "util/rng.hpp"

namespace lo::core {
namespace {

constexpr auto kMode = crypto::SignatureMode::kSimFast;

crypto::Signer signer(std::uint64_t id) {
  return crypto::Signer(crypto::derive_keypair(id, kMode), kMode);
}

struct Fixture {
  CommitmentParams params;
  CommitmentLog log{7, params};
  util::Rng rng{42};
  crypto::Digest256 prev{};

  Fixture() {
    prev.fill(0xab);
    log.append(make_ids(5), 1);
    log.append(make_ids(4), 2);
  }

  std::vector<TxId> make_ids(std::size_t n) {
    std::vector<TxId> out(n);
    for (auto& id : out) {
      for (auto& b : id) b = static_cast<std::uint8_t>(rng.next());
    }
    return out;
  }

  BundleMap full_map() const {
    BundleMap m;
    for (const auto& b : log.bundles()) m[b.seqno] = b.txids;
    return m;
  }

  Block honest_block() {
    return build_block(log, signer(7), 1, prev, nullptr);
  }
};

TEST(Inspection, HonestBlockIsOk) {
  Fixture f;
  const auto res = inspect_block(f.honest_block(), f.full_map(), nullptr);
  EXPECT_EQ(res.verdict, BlockVerdict::kOk);
}

TEST(Inspection, HonestBlockWithExclusionsIsOkWithoutProof) {
  Fixture f;
  // Creator drops two txs (e.g. low fee); inspector has no content knowledge,
  // so no censorship can be proven and the order is still a subsequence.
  auto block = f.honest_block();
  block.segments[0].txids.erase(block.segments[0].txids.begin() + 1);
  block.segments[1].txids.pop_back();
  auto msg = block.signing_bytes();
  block.sig = signer(7).sign(std::span<const std::uint8_t>(msg.data(), msg.size()));
  const auto res = inspect_block(block, f.full_map(), nullptr);
  EXPECT_EQ(res.verdict, BlockVerdict::kOk);
}

TEST(Inspection, ReorderDetected) {
  Fixture f;
  auto block = f.honest_block();
  ASSERT_GE(block.segments[0].txids.size(), 2u);
  std::swap(block.segments[0].txids[0], block.segments[0].txids[1]);
  const auto res = inspect_block(block, f.full_map(), nullptr);
  EXPECT_EQ(res.verdict, BlockVerdict::kReordered);
  EXPECT_EQ(res.offending_seqno, 1u);
}

TEST(Inspection, FeeSortedSegmentDetected) {
  Fixture f;
  auto block = f.honest_block();
  // Any deterministic re-sort that differs from the canonical shuffle.
  std::sort(block.segments[1].txids.begin(), block.segments[1].txids.end());
  const auto canonical =
      canonical_shuffle(f.log.bundles()[1].txids, f.prev, 2);
  if (block.segments[1].txids == canonical) {
    std::swap(block.segments[1].txids[0], block.segments[1].txids[1]);
  }
  const auto res = inspect_block(block, f.full_map(), nullptr);
  EXPECT_EQ(res.verdict, BlockVerdict::kReordered);
}

TEST(Inspection, InjectionDetected) {
  Fixture f;
  auto block = f.honest_block();
  auto foreign = f.make_ids(1);
  block.segments[0].txids.insert(block.segments[0].txids.begin(), foreign[0]);
  const auto res = inspect_block(block, f.full_map(), nullptr);
  EXPECT_EQ(res.verdict, BlockVerdict::kInjected);
  EXPECT_EQ(res.offending_tx, foreign[0]);
}

TEST(Inspection, CensorshipDetectedWithContentKnowledge) {
  Fixture f;
  auto block = f.honest_block();
  const TxId victim = block.segments[0].txids[2];
  std::erase(block.segments[0].txids, victim);
  const auto res = inspect_block(
      block, f.full_map(), [&victim](const TxId& id) { return id == victim; });
  EXPECT_EQ(res.verdict, BlockVerdict::kCensored);
  EXPECT_EQ(res.offending_tx, victim);
}

TEST(Inspection, WholeBundleDroppedIsCensorship) {
  Fixture f;
  auto block = f.honest_block();
  const TxId known = block.segments[1].txids[0];
  block.segments.erase(block.segments.begin() + 1);
  const auto res = inspect_block(
      block, f.full_map(), [&known](const TxId& id) { return id == known; });
  EXPECT_EQ(res.verdict, BlockVerdict::kCensored);
}

TEST(Inspection, NonMonotonicSegmentsRejected) {
  Fixture f;
  auto block = f.honest_block();
  std::swap(block.segments[0], block.segments[1]);
  const auto res = inspect_block(block, f.full_map(), nullptr);
  EXPECT_EQ(res.verdict, BlockVerdict::kBadStructure);
}

TEST(Inspection, SeqnoBeyondCommitmentRejected) {
  Fixture f;
  auto block = f.honest_block();
  block.segments[1].seqno = block.commit_seqno + 5;
  const auto res = inspect_block(block, f.full_map(), nullptr);
  EXPECT_EQ(res.verdict, BlockVerdict::kBadStructure);
}

TEST(Inspection, MissingBundlesRequested) {
  Fixture f;
  BundleMap partial = f.full_map();
  partial.erase(2);
  const auto res = inspect_block(f.honest_block(), partial, nullptr);
  EXPECT_EQ(res.verdict, BlockVerdict::kNeedBundles);
  ASSERT_EQ(res.missing_bundles.size(), 1u);
  EXPECT_EQ(res.missing_bundles[0], 2u);
}

TEST(Inspection, ViolationInKnownSegmentBeatsMissingBundle) {
  // A reorder in a known segment is reported even if another segment's
  // bundle is missing — violations have priority over kNeedBundles.
  Fixture f;
  auto block = f.honest_block();
  std::swap(block.segments[1].txids[0], block.segments[1].txids[1]);
  BundleMap partial = f.full_map();
  partial.erase(1);
  const auto res = inspect_block(block, partial, nullptr);
  EXPECT_EQ(res.verdict, BlockVerdict::kReordered);
}

TEST(Inspection, EmptyBlockEmptyMapIsOk) {
  Block block;
  block.commit_seqno = 0;
  const auto res = inspect_block(block, {}, nullptr);
  EXPECT_EQ(res.verdict, BlockVerdict::kOk);
}

// -------------------------------------------------------- BlockEvidence ----

SignedBundle make_signed_bundle(const CommitmentLog& log, std::uint64_t seqno,
                                const crypto::Signer& s) {
  SignedBundle sb;
  sb.owner = log.self();
  sb.seqno = seqno;
  sb.txids = log.bundle_by_seqno(seqno)->txids;
  sb.key = s.public_key();
  auto bytes = sb.signing_bytes();
  sb.sig = s.sign(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  return sb;
}

TEST(BlockEvidence, ReorderEvidenceVerifies) {
  Fixture f;
  const auto s = signer(7);
  auto block = f.honest_block();
  std::swap(block.segments[0].txids[0], block.segments[0].txids[1]);
  auto msg = block.signing_bytes();
  block.sig = s.sign(std::span<const std::uint8_t>(msg.data(), msg.size()));

  BlockEvidence ev;
  ev.accused = 7;
  ev.block = block;
  ev.bundles.push_back(make_signed_bundle(f.log, 1, s));
  ev.bundles.push_back(make_signed_bundle(f.log, 2, s));
  EXPECT_TRUE(
      ev.verify(kMode, static_cast<std::uint8_t>(BlockVerdict::kReordered)));
  // Wrong claim fails.
  EXPECT_FALSE(
      ev.verify(kMode, static_cast<std::uint8_t>(BlockVerdict::kInjected)));
}

TEST(BlockEvidence, HonestBlockCannotBeFramed) {
  Fixture f;
  const auto s = signer(7);
  const auto block = f.honest_block();
  BlockEvidence ev;
  ev.accused = 7;
  ev.block = block;
  ev.bundles.push_back(make_signed_bundle(f.log, 1, s));
  ev.bundles.push_back(make_signed_bundle(f.log, 2, s));
  for (auto verdict : {BlockVerdict::kReordered, BlockVerdict::kInjected,
                       BlockVerdict::kBadStructure}) {
    EXPECT_FALSE(ev.verify(kMode, static_cast<std::uint8_t>(verdict)));
  }
}

TEST(BlockEvidence, TamperedBundleRejected) {
  Fixture f;
  const auto s = signer(7);
  auto block = f.honest_block();
  std::swap(block.segments[0].txids[0], block.segments[0].txids[1]);
  auto msg = block.signing_bytes();
  block.sig = s.sign(std::span<const std::uint8_t>(msg.data(), msg.size()));

  BlockEvidence ev;
  ev.accused = 7;
  ev.block = block;
  auto sb = make_signed_bundle(f.log, 1, s);
  std::swap(sb.txids[0], sb.txids[1]);  // forged bundle, signature now stale
  ev.bundles.push_back(sb);
  EXPECT_FALSE(
      ev.verify(kMode, static_cast<std::uint8_t>(BlockVerdict::kReordered)));
}

TEST(ExposureMsgCheck, EquivocationEvidenceVerifies) {
  CommitmentParams params;
  util::Rng rng(1);
  auto make_ids = [&rng](std::size_t n) {
    std::vector<TxId> out(n);
    for (auto& id : out) {
      for (auto& b : id) b = static_cast<std::uint8_t>(rng.next());
    }
    return out;
  };
  CommitmentLog a(3, params), b(3, params);
  a.append(make_ids(3), 1);
  b.append(make_ids(3), 1);
  const auto s = signer(3);

  ExposureMsg msg;
  msg.accused = 3;
  msg.verdict = 0xff;
  EquivocationEvidence eq;
  eq.accused = 3;
  eq.first = a.make_header(s);
  eq.second = b.make_header(s);
  msg.equivocation = eq;
  EXPECT_TRUE(msg.verify(kMode));

  // Consistent headers are not evidence.
  ExposureMsg good;
  good.accused = 3;
  good.verdict = 0xff;
  EquivocationEvidence eq2;
  eq2.accused = 3;
  eq2.first = a.make_header(s);
  eq2.second = a.make_header(s);
  good.equivocation = eq2;
  EXPECT_FALSE(good.verify(kMode));
}

}  // namespace
}  // namespace lo::core
