// Differential tests for the fast GF(2^m) kernels (DESIGN.md §3d).
//
// The seed kernels are retained on every Field instance as *_reference and
// act as the oracle: for every supported field size the fast mul/sqr/inv/pow
// paths — and the bulk row kernels built from them — must agree with the
// reference on random inputs and on the algebraic edge cases. A
// Kernel::kPortable instance is tested alongside Kernel::kAuto so the
// portable fast path is exercised even on machines where kAuto selects
// PCLMUL, and vice versa the clmul+Barrett path is covered wherever the CPU
// has it.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "gf/gf2m.hpp"
#include "util/rng.hpp"

namespace {

using lo::gf::Field;

constexpr std::array<unsigned, 6> kSizes = {8, 16, 24, 32, 48, 63};

// Draws a (possibly zero) field element.
std::uint64_t draw(lo::util::Rng& rng, const Field& f) {
  return rng.next() & f.order();
}

class GfKernelDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(GfKernelDifferential, MulMatchesReferenceOnRandomVectors) {
  const unsigned m = GetParam();
  const Field& fast = Field::get(m);
  const Field portable(m, Field::Kernel::kPortable);
  ASSERT_FALSE(portable.uses_clmul());
  lo::util::Rng rng(0x31 ^ m);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = draw(rng, fast);
    const std::uint64_t b = draw(rng, fast);
    const std::uint64_t want = fast.mul_reference(a, b);
    EXPECT_EQ(fast.mul(a, b), want) << "m=" << m << " a=" << a << " b=" << b;
    EXPECT_EQ(portable.mul(a, b), want);
  }
}

TEST_P(GfKernelDifferential, SqrMatchesReference) {
  const unsigned m = GetParam();
  const Field& fast = Field::get(m);
  const Field portable(m, Field::Kernel::kPortable);
  lo::util::Rng rng(0x5c5c ^ m);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = draw(rng, fast);
    const std::uint64_t want = fast.sqr_reference(a);
    EXPECT_EQ(fast.sqr(a), want) << "m=" << m << " a=" << a;
    EXPECT_EQ(portable.sqr(a), want);
  }
}

TEST_P(GfKernelDifferential, InvMatchesReference) {
  const unsigned m = GetParam();
  const Field& fast = Field::get(m);
  const Field portable(m, Field::Kernel::kPortable);
  lo::util::Rng rng(0x1417 ^ m);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = draw(rng, fast);
    const std::uint64_t want = fast.inv_reference(a);
    EXPECT_EQ(fast.inv(a), want) << "m=" << m << " a=" << a;
    EXPECT_EQ(portable.inv(a), want);
    if (a != 0) {
      EXPECT_EQ(fast.mul(a, fast.inv(a)), 1u);
    }
  }
  // inv(0) == 0 by convention on every tier.
  EXPECT_EQ(fast.inv(0), 0u);
  EXPECT_EQ(portable.inv(0), 0u);
  EXPECT_EQ(fast.inv_reference(0), 0u);
}

TEST_P(GfKernelDifferential, PowMatchesReference) {
  const unsigned m = GetParam();
  const Field& fast = Field::get(m);
  const Field portable(m, Field::Kernel::kPortable);
  lo::util::Rng rng(0xb00 ^ m);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = draw(rng, fast);
    const std::uint64_t e = rng.next();
    const std::uint64_t want = fast.pow_reference(a, e);
    EXPECT_EQ(fast.pow(a, e), want) << "m=" << m << " a=" << a << " e=" << e;
    EXPECT_EQ(portable.pow(a, e), want);
  }
  EXPECT_EQ(fast.pow(0, 0), 1u);  // 0^0 == 1 convention preserved
  EXPECT_EQ(fast.pow_reference(0, 0), 1u);
}

TEST_P(GfKernelDifferential, EdgeCasesMatchReference) {
  const unsigned m = GetParam();
  const Field& fast = Field::get(m);
  const Field portable(m, Field::Kernel::kPortable);
  const std::uint64_t cases[] = {0, 1, 2, 3, fast.order() - 1, fast.order()};
  for (auto a : cases) {
    for (auto b : cases) {
      EXPECT_EQ(fast.mul(a, b), fast.mul_reference(a, b));
      EXPECT_EQ(portable.mul(a, b), fast.mul_reference(a, b));
    }
    EXPECT_EQ(fast.sqr(a), fast.sqr_reference(a));
    EXPECT_EQ(fast.inv(a), fast.inv_reference(a));
  }
}

TEST_P(GfKernelDifferential, BulkKernelsMatchElementwiseReference) {
  const unsigned m = GetParam();
  const Field& fast = Field::get(m);
  const Field portable(m, Field::Kernel::kPortable);
  lo::util::Rng rng(0xfa ^ m);
  for (const Field* f : {&fast, &portable}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      std::vector<std::uint64_t> src(n), dst(n), q(n);
      for (auto& v : src) v = draw(rng, *f);
      for (auto& v : dst) v = draw(rng, *f);
      for (auto& v : q) v = draw(rng, *f);
      const std::uint64_t factor = draw(rng, *f);

      // fma_row: dst[i] ^= factor * src[i].
      std::vector<std::uint64_t> want = dst;
      for (std::size_t i = 0; i < n; ++i) {
        want[i] ^= f->mul_reference(factor, src[i]);
      }
      f->fma_row(factor, src.data(), dst.data(), n);
      EXPECT_EQ(dst, want) << "m=" << m << " n=" << n;

      // dot_rev: XOR src[i] * q[n-1-i].
      std::uint64_t dot_want = 0;
      for (std::size_t i = 0; i < n; ++i) {
        dot_want ^= f->mul_reference(src[i], q[n - 1 - i]);
      }
      EXPECT_EQ(f->dot_rev(src.data(), &q[n - 1], n), dot_want);

      // mul_many: q[i] *= src[i].
      std::vector<std::uint64_t> prod_want(n);
      for (std::size_t i = 0; i < n; ++i) {
        prod_want[i] = f->mul_reference(q[i], src[i]);
      }
      f->mul_many(q.data(), src.data(), n);
      EXPECT_EQ(q, prod_want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFieldSizes, GfKernelDifferential,
                         ::testing::ValuesIn(kSizes));

// m=8 is small enough to check the full multiplication table.
TEST(GfKernelExhaustive, Gf8MulMatchesReferenceExhaustively) {
  const Field& f = Field::get(8);
  const Field portable(8, Field::Kernel::kPortable);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      const std::uint64_t want = f.mul_reference(a, b);
      ASSERT_EQ(f.mul(a, b), want) << "a=" << a << " b=" << b;
      ASSERT_EQ(portable.mul(a, b), want);
    }
  }
  for (std::uint64_t a = 0; a < 256; ++a) {
    ASSERT_EQ(f.sqr(a), f.sqr_reference(a));
    ASSERT_EQ(f.inv(a), f.inv_reference(a));
  }
}

TEST(GfRegistry, SharedInstancesAreStableAndTierTagged) {
  for (unsigned m : kSizes) {
    const Field& a = Field::get(m);
    const Field& b = Field::get(m);
    EXPECT_EQ(&a, &b) << "registry must return one shared instance";
    EXPECT_EQ(a.kernel(), Field::Kernel::kAuto);
    const Field& r = Field::get_reference(m);
    EXPECT_EQ(&r, &Field::get_reference(m));
    EXPECT_EQ(r.kernel(), Field::Kernel::kReference);
    EXPECT_FALSE(r.uses_clmul());
    EXPECT_NE(&a, &r);
    EXPECT_EQ(a.modulus(), r.modulus());
  }
  EXPECT_THROW(Field::get(17), std::invalid_argument);
  EXPECT_THROW(Field::get_reference(17), std::invalid_argument);
}

TEST(GfRegistry, ClmulOnlySelectedUpTo32Bits) {
  for (unsigned m : kSizes) {
    const Field& f = Field::get(m);
    if (m > 32) {
      EXPECT_FALSE(f.uses_clmul()) << "m=" << m;
    }
    EXPECT_FALSE(Field(m, Field::Kernel::kPortable).uses_clmul());
    EXPECT_FALSE(Field(m, Field::Kernel::kReference).uses_clmul());
  }
}

}  // namespace
