// Crypto substrate tests: FIPS 180-4 vectors for SHA-256/512, RFC 8032
// vectors and algebraic properties for the from-scratch Ed25519.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "crypto/ed25519.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "crypto/verify_cache.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace lo::crypto {
namespace {

using util::from_hex_fixed;
using util::to_hex;

// ------------------------------------------------------------- SHA-256 ----

TEST(Sha256, NistVectors) {
  EXPECT_EQ(to_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finalize(), sha256(msg)) << "split at " << split;
  }
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths around the 55/56/64-byte padding edge must all be distinct and
  // reproducible.
  std::set<std::string> seen;
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string m(len, 'x');
    const auto d = to_hex(sha256(m));
    EXPECT_TRUE(seen.insert(d).second);
    EXPECT_EQ(d, to_hex(sha256(m)));
  }
}

// ------------------------------------------------------------- SHA-512 ----

TEST(Sha512, NistVectors) {
  EXPECT_EQ(to_hex(sha512("")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
  EXPECT_EQ(to_hex(sha512("abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(sha512("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                    "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
      "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
      "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, IncrementalAcrossBlockBoundary) {
  const std::string msg(300, 'q');
  Sha512 h;
  h.update(msg.substr(0, 127));
  h.update(msg.substr(127, 2));
  h.update(msg.substr(129));
  EXPECT_EQ(h.finalize(), sha512(msg));
}

// ------------------------------------------------------------- Ed25519 ----

struct Rfc8032Vector {
  const char* seed;
  const char* pub;
  const char* msg_hex;
  const char* sig;
};

// Test vectors from RFC 8032 Sec. 7.1 (TEST 1, 2, 3).
const Rfc8032Vector kVectors[] = {
    {"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
     "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a", "",
     "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
     "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
    {"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
     "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c", "72",
     "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
     "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
    {"c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
     "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
     "af82",
     "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
     "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"},
};

class Rfc8032Test : public ::testing::TestWithParam<Rfc8032Vector> {};

TEST_P(Rfc8032Test, KeyGenSignVerify) {
  const auto& v = GetParam();
  const auto seed = from_hex_fixed<32>(v.seed);
  const auto msg = util::from_hex(v.msg_hex);

  const auto pub = ed25519_public_key(seed);
  EXPECT_EQ(to_hex(pub), v.pub);

  const auto sig = ed25519_sign(seed, msg);
  EXPECT_EQ(to_hex(sig), v.sig);

  EXPECT_TRUE(ed25519_verify(pub, msg, sig));
}

INSTANTIATE_TEST_SUITE_P(Vectors, Rfc8032Test, ::testing::ValuesIn(kVectors));

TEST(Ed25519, TamperedMessageRejected) {
  const auto seed = from_hex_fixed<32>(kVectors[2].seed);
  const auto pub = ed25519_public_key(seed);
  auto msg = util::from_hex(kVectors[2].msg_hex);
  const auto sig = ed25519_sign(seed, msg);
  msg[0] ^= 1;
  EXPECT_FALSE(ed25519_verify(pub, msg, sig));
}

TEST(Ed25519, TamperedSignatureRejected) {
  const auto seed = from_hex_fixed<32>(kVectors[0].seed);
  const auto pub = ed25519_public_key(seed);
  auto sig = ed25519_sign(seed, {});
  for (std::size_t pos : {0u, 31u, 32u, 63u}) {
    auto bad = sig;
    bad[pos] ^= 0x40;
    EXPECT_FALSE(ed25519_verify(pub, {}, bad)) << "flip at " << pos;
  }
}

TEST(Ed25519, WrongKeyRejected) {
  const auto seed_a = from_hex_fixed<32>(kVectors[0].seed);
  const auto seed_b = from_hex_fixed<32>(kVectors[1].seed);
  const auto pub_b = ed25519_public_key(seed_b);
  const auto sig = ed25519_sign(seed_a, {});
  EXPECT_FALSE(ed25519_verify(pub_b, {}, sig));
}

TEST(Ed25519, NonCanonicalScalarRejected) {
  // S >= L must be rejected (malleability guard). Take a valid signature and
  // add L to S.
  const auto seed = from_hex_fixed<32>(kVectors[0].seed);
  const auto pub = ed25519_public_key(seed);
  auto sig = ed25519_sign(seed, {});
  // L little-endian.
  const auto l_bytes = util::from_hex(
      "edd3f55c1a631258d69cf7a2def9de14000000000000000000000000000000"
      "10");
  unsigned carry = 0;
  for (int i = 0; i < 32; ++i) {
    const unsigned sum = sig[32 + i] + l_bytes[static_cast<std::size_t>(i)] + carry;
    sig[32 + i] = static_cast<std::uint8_t>(sum);
    carry = sum >> 8;
  }
  EXPECT_FALSE(ed25519_verify(pub, {}, sig));
}

TEST(Ed25519, SignatureIsDeterministic) {
  const auto seed = from_hex_fixed<32>(kVectors[1].seed);
  const auto msg = util::from_hex("deadbeef");
  EXPECT_EQ(ed25519_sign(seed, msg), ed25519_sign(seed, msg));
}

TEST(Ed25519, LargeMessage) {
  const auto seed = from_hex_fixed<32>(kVectors[0].seed);
  const auto pub = ed25519_public_key(seed);
  std::vector<std::uint8_t> msg(10000);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<std::uint8_t>(i);
  const auto sig = ed25519_sign(seed, msg);
  EXPECT_TRUE(ed25519_verify(pub, msg, sig));
}

// Field and group internals.

TEST(Ed25519Internals, FieldArithmetic) {
  using namespace detail;
  const Fe two = fe_add(fe_one(), fe_one());
  const Fe four = fe_mul(two, two);
  EXPECT_TRUE(fe_eq(four, fe_sq(two)));
  EXPECT_TRUE(fe_eq(fe_sub(four, two), two));
  EXPECT_TRUE(fe_is_zero(fe_sub(two, two)));
  // Inverse: 2 * 2^-1 == 1.
  EXPECT_TRUE(fe_eq(fe_mul(two, fe_invert(two)), fe_one()));
}

TEST(Ed25519Internals, FieldBytesRoundTrip) {
  using namespace detail;
  std::array<std::uint8_t, 32> b{};
  b[0] = 42;
  b[13] = 0xaa;
  b[31] = 0x55;  // below p, top bit clear
  EXPECT_EQ(fe_to_bytes(fe_from_bytes(b)), b);
}

TEST(Ed25519Internals, GroupIdentityAndInverse) {
  using namespace detail;
  std::array<std::uint8_t, 32> k{};
  k[0] = 5;
  const Ge p = ge_scalarmult_base(k);
  EXPECT_TRUE(ge_eq(ge_add(p, ge_identity()), p));
  // p + (-p) == identity.
  EXPECT_TRUE(ge_eq(ge_add(p, ge_neg(p)), ge_identity()));
}

TEST(Ed25519Internals, ScalarMultDistributes) {
  using namespace detail;
  // (a+b)*B == a*B + b*B for small scalars.
  std::array<std::uint8_t, 32> a{}, b{}, ab{};
  a[0] = 100;
  b[0] = 55;
  ab[0] = 155;
  EXPECT_TRUE(ge_eq(ge_scalarmult_base(ab),
                    ge_add(ge_scalarmult_base(a), ge_scalarmult_base(b))));
}

TEST(Ed25519Internals, DoubleMatchesAdd) {
  using namespace detail;
  std::array<std::uint8_t, 32> k{};
  k[0] = 9;
  const Ge p = ge_scalarmult_base(k);
  EXPECT_TRUE(ge_eq(ge_double(p), ge_add(p, p)));
}

TEST(Ed25519Internals, PointCompressionRoundTrip) {
  using namespace detail;
  for (int s : {1, 2, 3, 77, 200}) {
    std::array<std::uint8_t, 32> k{};
    k[0] = static_cast<std::uint8_t>(s);
    const Ge p = ge_scalarmult_base(k);
    const auto enc = ge_to_bytes(p);
    const auto back = ge_from_bytes(enc);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(ge_eq(*back, p));
    EXPECT_EQ(ge_to_bytes(*back), enc);
  }
}

TEST(Ed25519Internals, InvalidPointRejected) {
  using namespace detail;
  // A y-coordinate whose curve equation has no solution.
  std::array<std::uint8_t, 32> bad{};
  bad[0] = 2;  // y=2: d*y^2+1 vs y^2-1 — not a square ratio for curve25519
  const auto p = ge_from_bytes(bad);
  // Either decodes (if on curve) or not; flip until one fails to decode.
  bool rejected_some = !p.has_value();
  for (std::uint8_t y = 3; y < 40 && !rejected_some; ++y) {
    std::array<std::uint8_t, 32> b{};
    b[0] = y;
    if (!ge_from_bytes(b)) rejected_some = true;
  }
  EXPECT_TRUE(rejected_some);
}

TEST(Ed25519Internals, ScalarReduceMatchesKnownIdentity) {
  using namespace detail;
  // L reduces to 0.
  const auto l_bytes = util::from_hex(
      "edd3f55c1a631258d69cf7a2def9de14000000000000000000000000000000"
      "10");
  const Sc zero = sc_reduce(l_bytes);
  EXPECT_EQ(sc_to_bytes(zero), sc_to_bytes(sc_zero()));
}

TEST(Ed25519Internals, ScalarMulAddConsistency) {
  using namespace detail;
  // (3 * 5) + 2 == 17 mod L.
  auto sc_from_u64 = [](std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return sc_reduce(std::span<const std::uint8_t>(b, 8));
  };
  const Sc lhs = sc_add(sc_mul(sc_from_u64(3), sc_from_u64(5)), sc_from_u64(2));
  EXPECT_EQ(sc_to_bytes(lhs), sc_to_bytes(sc_from_u64(17)));
}

// ----------------------------------------------------------------- keys ----

TEST(Keys, DeriveIsDeterministic) {
  const auto a = derive_keypair(7, SignatureMode::kEd25519);
  const auto b = derive_keypair(7, SignatureMode::kEd25519);
  EXPECT_EQ(a.pub, b.pub);
  EXPECT_EQ(a.seed, b.seed);
  const auto c = derive_keypair(8, SignatureMode::kEd25519);
  EXPECT_NE(a.pub, c.pub);
}

TEST(Keys, SignerRoundTripBothModes) {
  const std::vector<std::uint8_t> msg{1, 2, 3, 4};
  for (auto mode : {SignatureMode::kEd25519, SignatureMode::kSimFast}) {
    Signer s(derive_keypair(99, mode), mode);
    const auto sig = s.sign(msg);
    EXPECT_TRUE(Signer::verify(mode, s.public_key(), msg, sig));
    auto bad = msg;
    bad[0] ^= 1;
    EXPECT_FALSE(Signer::verify(mode, s.public_key(), bad, sig));
  }
}

TEST(Keys, SimFastRejectsWrongKey) {
  const std::vector<std::uint8_t> msg{9, 9, 9};
  Signer a(derive_keypair(1, SignatureMode::kSimFast), SignatureMode::kSimFast);
  Signer b(derive_keypair(2, SignatureMode::kSimFast), SignatureMode::kSimFast);
  const auto sig = a.sign(msg);
  EXPECT_FALSE(Signer::verify(SignatureMode::kSimFast, b.public_key(), msg, sig));
}

// ------------------------------------------------- negative vectors ---------
// Every rejection below is asserted three ways: the fast verify, the
// pre-optimization reference verify (differential oracle), and twice through
// a VerifyCache (cold, then memoized) — a cache must never turn a reject
// into an accept.

void expect_rejected_everywhere(const PublicKey& pub,
                                std::span<const std::uint8_t> msg,
                                const Signature& sig, const char* what) {
  EXPECT_FALSE(ed25519_verify(pub, msg, sig)) << what << " (fast)";
  EXPECT_FALSE(ed25519_verify_reference(pub, msg, sig)) << what << " (ref)";
  VerifyCache cache;
  EXPECT_FALSE(cache.verify(SignatureMode::kEd25519, pub, msg, sig))
      << what << " (cache cold)";
  EXPECT_FALSE(cache.verify(SignatureMode::kEd25519, pub, msg, sig))
      << what << " (cache memoized)";
  EXPECT_EQ(cache.stats().memo_hits, 1u) << what;
}

// y = p + 2 little-endian: reduces to 2 but is a non-canonical encoding.
std::array<std::uint8_t, 32> non_canonical_encoding(bool sign_bit) {
  std::array<std::uint8_t, 32> enc;
  enc.fill(0xff);
  enc[0] = 0xef;  // (2^255 - 19) + 2
  enc[31] = sign_bit ? 0xff : 0x7f;
  return enc;
}

TEST(Ed25519Negative, NonCanonicalPointEncodingRejected) {
  using namespace detail;
  EXPECT_FALSE(ge_from_bytes(non_canonical_encoding(false)).has_value());
  EXPECT_FALSE(ge_from_bytes(non_canonical_encoding(true)).has_value());
}

TEST(Ed25519Negative, NonCanonicalPublicKeyRejected) {
  const auto seed = from_hex_fixed<32>(kVectors[0].seed);
  const auto sig = ed25519_sign(seed, {});
  for (bool sign_bit : {false, true}) {
    const PublicKey bad_pub = non_canonical_encoding(sign_bit);
    expect_rejected_everywhere(bad_pub, {}, sig, "non-canonical pub");
    EXPECT_FALSE(ed25519_prepare(bad_pub).has_value());
  }
}

TEST(Ed25519Negative, NonCanonicalRRejected) {
  const auto seed = from_hex_fixed<32>(kVectors[1].seed);
  const auto pub = ed25519_public_key(seed);
  const auto msg = util::from_hex(kVectors[1].msg_hex);
  auto sig = ed25519_sign(seed, msg);
  const auto bad_r = non_canonical_encoding(false);
  std::copy(bad_r.begin(), bad_r.end(), sig.begin());
  expect_rejected_everywhere(pub, msg, sig, "non-canonical R");
}

TEST(Ed25519Negative, NonCanonicalScalarThroughCache) {
  // Same S >= L construction as NonCanonicalScalarRejected, plus the cache
  // and reference paths.
  const auto seed = from_hex_fixed<32>(kVectors[0].seed);
  const auto pub = ed25519_public_key(seed);
  auto sig = ed25519_sign(seed, {});
  const auto l_bytes = util::from_hex(
      "edd3f55c1a631258d69cf7a2def9de14000000000000000000000000000000"
      "10");
  unsigned carry = 0;
  for (int i = 0; i < 32; ++i) {
    const unsigned sum =
        sig[32 + static_cast<std::size_t>(i)] + l_bytes[static_cast<std::size_t>(i)] + carry;
    sig[32 + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(sum);
    carry = sum >> 8;
  }
  expect_rejected_everywhere(pub, {}, sig, "S >= L");
}

TEST(Ed25519Negative, BitFlippedRfcVectorsRejected) {
  // Flip one bit in every byte of signature, message and public key of each
  // RFC 8032 vector; all must fail cold and through the caches.
  for (const auto& v : kVectors) {
    const auto pub = from_hex_fixed<32>(v.pub);
    const auto msg = util::from_hex(v.msg_hex);
    const auto sig = from_hex_fixed<64>(v.sig);
    ASSERT_TRUE(ed25519_verify(pub, msg, sig));

    VerifyCache cache;
    for (std::size_t i = 0; i < 64; ++i) {
      auto bad = sig;
      bad[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
      EXPECT_FALSE(ed25519_verify(pub, msg, bad)) << "sig flip " << i;
      EXPECT_FALSE(cache.verify(SignatureMode::kEd25519, pub, msg, bad))
          << "sig flip " << i << " via cache";
    }
    for (std::size_t i = 0; i < msg.size(); ++i) {
      auto bad = msg;
      bad[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
      EXPECT_FALSE(ed25519_verify(pub, bad, sig)) << "msg flip " << i;
      EXPECT_FALSE(cache.verify(SignatureMode::kEd25519, pub, bad, sig))
          << "msg flip " << i << " via cache";
    }
    for (std::size_t i = 0; i < 32; ++i) {
      auto bad = pub;
      bad[i] ^= static_cast<std::uint8_t>(1u << (i % 8));
      EXPECT_FALSE(ed25519_verify(bad, msg, sig)) << "pub flip " << i;
      EXPECT_FALSE(cache.verify(SignatureMode::kEd25519, bad, msg, sig))
          << "pub flip " << i << " via cache";
    }
    // The genuine vector still verifies through the same, now well-used,
    // cache — the negative entries did not poison it.
    EXPECT_TRUE(cache.verify(SignatureMode::kEd25519, pub, msg, sig));
  }
}

TEST(Ed25519Negative, ReferenceAndFastVerifyAgree) {
  // Differential check across a batch of valid and corrupted inputs.
  util::Rng rng(515151);
  for (int iter = 0; iter < 20; ++iter) {
    std::array<std::uint8_t, 32> seed;
    for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next());
    const auto pub = ed25519_public_key(seed);
    std::vector<std::uint8_t> msg(1 + iter * 3);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
    auto sig = ed25519_sign(seed, msg);
    EXPECT_EQ(ed25519_verify(pub, msg, sig),
              ed25519_verify_reference(pub, msg, sig));
    EXPECT_TRUE(ed25519_verify(pub, msg, sig));
    // Corrupt one random byte of the signature.
    sig[rng.next() % 64] ^= static_cast<std::uint8_t>(1 + rng.next() % 255);
    EXPECT_EQ(ed25519_verify(pub, msg, sig),
              ed25519_verify_reference(pub, msg, sig));
  }
}

// ----------------------------------------------------- verify cache ---------

TEST(VerifyCacheTest, MemoizesAcceptsAndRejects) {
  const auto kp = derive_keypair(3, SignatureMode::kEd25519);
  Signer s(kp, SignatureMode::kEd25519);
  const std::vector<std::uint8_t> msg{1, 2, 3};
  const auto sig = s.sign(msg);

  VerifyCache cache;
  EXPECT_TRUE(cache.verify(SignatureMode::kEd25519, kp.pub, msg, sig));
  EXPECT_EQ(cache.stats().memo_misses, 1u);
  EXPECT_TRUE(cache.verify(SignatureMode::kEd25519, kp.pub, msg, sig));
  EXPECT_EQ(cache.stats().memo_hits, 1u);

  auto bad = sig;
  bad[5] ^= 0x10;
  EXPECT_FALSE(cache.verify(SignatureMode::kEd25519, kp.pub, msg, bad));
  EXPECT_FALSE(cache.verify(SignatureMode::kEd25519, kp.pub, msg, bad));
  EXPECT_EQ(cache.stats().memo_hits, 2u);
  EXPECT_EQ(cache.memo_size(), 2u);
  // One key decompression served all four calls.
  EXPECT_EQ(cache.stats().key_misses, 1u);
  EXPECT_EQ(cache.key_cache_size(), 1u);
}

TEST(VerifyCacheTest, MutatedDuplicateTakesColdPathAndRejects) {
  const auto kp = derive_keypair(4, SignatureMode::kEd25519);
  Signer s(kp, SignatureMode::kEd25519);
  const std::vector<std::uint8_t> msg{7, 7, 7, 7};
  const auto sig = s.sign(msg);

  VerifyCache cache;
  // Warm the memo with the genuine accept.
  ASSERT_TRUE(cache.verify(SignatureMode::kEd25519, kp.pub, msg, sig));
  const auto warm = cache.stats();

  // A mutated duplicate must not ride the cached accept: every single-bit
  // mutation of msg/sig/pub hashes to a fresh memo key (memo_misses grows)
  // and is rejected.
  auto msg2 = msg;
  msg2[0] ^= 0x01;
  EXPECT_FALSE(cache.verify(SignatureMode::kEd25519, kp.pub, msg2, sig));
  auto sig2 = sig;
  sig2[63] ^= 0x80;
  EXPECT_FALSE(cache.verify(SignatureMode::kEd25519, kp.pub, msg, sig2));
  auto pub2 = kp.pub;
  pub2[31] ^= 0x02;
  EXPECT_FALSE(cache.verify(SignatureMode::kEd25519, pub2, msg, sig2));
  EXPECT_EQ(cache.stats().memo_misses, warm.memo_misses + 3);
  EXPECT_EQ(cache.stats().memo_hits, warm.memo_hits);

  // And the genuine one still verifies.
  EXPECT_TRUE(cache.verify(SignatureMode::kEd25519, kp.pub, msg, sig));
}

TEST(VerifyCacheTest, KeyCacheEvictsLeastRecentlyUsed) {
  VerifyCache cache(/*key_capacity=*/2, /*memo_capacity=*/4);
  const std::vector<std::uint8_t> msg{5};
  std::array<KeyPair, 3> kps = {derive_keypair(10, SignatureMode::kEd25519),
                                derive_keypair(11, SignatureMode::kEd25519),
                                derive_keypair(12, SignatureMode::kEd25519)};
  for (const auto& kp : kps) {
    Signer s(kp, SignatureMode::kEd25519);
    const auto sig = s.sign(msg);
    EXPECT_TRUE(cache.verify(SignatureMode::kEd25519, kp.pub, msg, sig));
  }
  EXPECT_EQ(cache.key_cache_size(), 2u);
  EXPECT_EQ(cache.stats().key_misses, 3u);

  // Key 10 was evicted (LRU); re-verifying costs a fresh decompression but
  // still succeeds. 12 is resident and hits.
  Signer s10(kps[0], SignatureMode::kEd25519);
  const std::vector<std::uint8_t> other{6};
  const auto sig10b = s10.sign(other);
  EXPECT_TRUE(cache.verify(SignatureMode::kEd25519, kps[0].pub, other, sig10b));
  EXPECT_EQ(cache.stats().key_misses, 4u);
}

TEST(VerifyCacheTest, MemoEvictionForcesReverify) {
  VerifyCache cache(/*key_capacity=*/4, /*memo_capacity=*/2);
  const auto kp = derive_keypair(20, SignatureMode::kEd25519);
  Signer s(kp, SignatureMode::kEd25519);
  for (std::uint8_t i = 0; i < 3; ++i) {
    const std::vector<std::uint8_t> msg{i};
    EXPECT_TRUE(cache.verify(SignatureMode::kEd25519, kp.pub, msg, s.sign(msg)));
  }
  EXPECT_EQ(cache.memo_size(), 2u);
  // msg{0} was evicted; verifying again is a miss but still correct.
  const std::vector<std::uint8_t> msg0{0};
  EXPECT_TRUE(cache.verify(SignatureMode::kEd25519, kp.pub, msg0, s.sign(msg0)));
  EXPECT_EQ(cache.stats().memo_hits, 0u);
}

TEST(VerifyCacheTest, MalformedKeyNeverCached) {
  VerifyCache cache;
  const auto bad_pub = non_canonical_encoding(false);
  const Signature sig{};
  const std::vector<std::uint8_t> msg{1};
  EXPECT_FALSE(cache.verify(SignatureMode::kEd25519, bad_pub, msg, sig));
  EXPECT_EQ(cache.key_cache_size(), 0u);
  EXPECT_EQ(cache.stats().key_misses, 1u);
}

TEST(VerifyCacheTest, SimFastBypassesCache) {
  VerifyCache cache;
  const auto kp = derive_keypair(30, SignatureMode::kSimFast);
  Signer s(kp, SignatureMode::kSimFast);
  const std::vector<std::uint8_t> msg{1, 2};
  const auto sig = s.sign(msg);
  EXPECT_TRUE(cache.verify(SignatureMode::kSimFast, kp.pub, msg, sig));
  EXPECT_TRUE(cache.verify(SignatureMode::kSimFast, kp.pub, msg, sig));
  EXPECT_EQ(cache.memo_size(), 0u);
  EXPECT_EQ(cache.key_cache_size(), 0u);
  EXPECT_EQ(cache.stats().memo_misses, 0u);
}

TEST(VerifyCacheTest, ClearKeepsCountersDropsEntries) {
  VerifyCache cache;
  const auto kp = derive_keypair(40, SignatureMode::kEd25519);
  Signer s(kp, SignatureMode::kEd25519);
  const std::vector<std::uint8_t> msg{9};
  const auto sig = s.sign(msg);
  EXPECT_TRUE(cache.verify(SignatureMode::kEd25519, kp.pub, msg, sig));
  cache.clear();
  EXPECT_EQ(cache.memo_size(), 0u);
  EXPECT_EQ(cache.key_cache_size(), 0u);
  EXPECT_EQ(cache.stats().memo_misses, 1u);
  // Still correct after clear.
  EXPECT_TRUE(cache.verify(SignatureMode::kEd25519, kp.pub, msg, sig));
  EXPECT_EQ(cache.stats().memo_misses, 2u);
}

}  // namespace
}  // namespace lo::crypto
