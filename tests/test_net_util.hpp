// Shared network/workload configuration helpers for the harness-level test
// suites (integration, failure injection, chaos, harness, baselines). All of
// them run with fast simulated signatures — wire sizes are unchanged, only
// the crypto cost disappears — and the paper's 32-city latency model.
#pragma once

#include "harness/lo_network.hpp"
#include "workload/txgen.hpp"

namespace lo::test {

constexpr auto kFastSig = crypto::SignatureMode::kSimFast;

inline harness::NetworkConfig net_cfg(std::size_t n, std::uint64_t seed,
                                      double malicious_fraction = 0.0) {
  harness::NetworkConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = seed;
  cfg.city_latency = true;
  cfg.node.sig_mode = kFastSig;
  cfg.node.prevalidation.sig_mode = kFastSig;
  cfg.malicious_fraction = malicious_fraction;
  return cfg;
}

inline workload::WorkloadConfig load_cfg(double tps, std::uint64_t seed) {
  workload::WorkloadConfig w;
  w.tps = tps;
  w.seed = seed;
  w.sig_mode = kFastSig;
  return w;
}

}  // namespace lo::test
