// SWIM failure-detector unit tests: probe/ack cycles, suspicion, refutation
// and confirmation precedence, the indirect ping-req relay path, piggybacked
// dissemination — plus the SREP-style adaptive reconciler (estimate-sized
// sketches with splitter fallback) and the LoConfig fail-fast validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/config.hpp"
#include "core/node.hpp"
#include "crypto/keys.hpp"
#include "membership/messages.hpp"
#include "membership/swim.hpp"
#include "minisketch/partitioned.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace lo::membership {
namespace {

// Deterministic single-detector host: captures sends, runs injected timers in
// (due, insertion) order against a manual clock — the same contract the
// simulator's schedule_for provides, minus the network.
struct TestHost {
  struct Outgoing {
    sim::NodeId to;
    sim::PayloadPtr msg;
  };
  struct Timer {
    std::uint64_t due;
    std::uint64_t seq;
    std::function<void()> fn;
  };

  std::vector<Outgoing> outbox;
  std::vector<Timer> timers;
  std::uint64_t now = 0;
  std::uint64_t next_timer = 0;
  util::Rng rng{0x5eed};
  std::vector<std::pair<sim::NodeId, MemberState>> transitions;
  std::uint64_t incarnation_seen = 0;

  SwimDetector::Callbacks callbacks() {
    SwimDetector::Callbacks cb;
    cb.send = [this](sim::NodeId to, sim::PayloadPtr msg) {
      outbox.push_back({to, std::move(msg)});
    };
    cb.timer = [this](sim::Duration delay, std::function<void()> fn) {
      timers.push_back(
          {now + static_cast<std::uint64_t>(delay), next_timer++, std::move(fn)});
    };
    cb.rand_below = [this](std::uint64_t bound) { return rng.next_below(bound); };
    cb.on_state = [this](sim::NodeId node, MemberState state, std::uint64_t) {
      transitions.emplace_back(node, state);
    };
    cb.on_incarnation = [this](std::uint64_t inc) { incarnation_seen = inc; };
    return cb;
  }

  // Advances the clock, firing every due timer in deterministic order.
  void advance_to(std::uint64_t t) {
    while (true) {
      std::size_t best = timers.size();
      for (std::size_t i = 0; i < timers.size(); ++i) {
        if (timers[i].due > t) continue;
        if (best == timers.size() || timers[i].due < timers[best].due ||
            (timers[i].due == timers[best].due &&
             timers[i].seq < timers[best].seq)) {
          best = i;
        }
      }
      if (best == timers.size()) break;
      Timer fired = std::move(timers[best]);
      timers.erase(timers.begin() + static_cast<std::ptrdiff_t>(best));
      now = fired.due;
      fired.fn();
    }
    now = t;
  }

  template <typename T>
  std::vector<const T*> sent() const {
    std::vector<const T*> out;
    for (const auto& o : outbox) {
      if (const auto* m = dynamic_cast<const T*>(o.msg.get())) out.push_back(m);
    }
    return out;
  }
};

MembershipConfig fast_cfg() {
  MembershipConfig cfg;
  cfg.enabled = true;
  cfg.protocol_period = 1000;  // 1 ms in sim units — irrelevant, just spacing
  cfg.ping_timeout = 300;
  cfg.indirect_fanout = 2;
  cfg.suspicion_periods = 3;
  return cfg;
}

TEST(Swim, UnansweredProbeSuspectsThenConfirms) {
  TestHost host;
  SwimDetector det(1, fast_cfg(), host.callbacks());
  det.set_members({1, 2});  // self is filtered; one probe target
  det.start(0);

  // One full period: the ping goes out, nothing answers, period-end
  // evaluation suspects node 2 at its current incarnation.
  host.advance_to(2100);
  ASSERT_FALSE(host.sent<PingMsg>().empty());
  EXPECT_EQ(det.state_of(2), MemberState::kSuspect);
  EXPECT_FALSE(det.presumed_live(2));
  EXPECT_FALSE(det.confirmed_faulty(2));

  // Unrefuted suspicion crosses the deadline into confirmed.
  host.advance_to(2100 + 3 * 1000 + 1);
  EXPECT_EQ(det.state_of(2), MemberState::kConfirmed);
  EXPECT_TRUE(det.confirmed_faulty(2));
}

TEST(Swim, AckedProbeStaysAlive) {
  TestHost host;
  SwimDetector det(1, fast_cfg(), host.callbacks());
  det.set_members({2});
  det.start(0);
  host.advance_to(1050);  // phase < period, so the first tick has run
  auto pings = host.sent<PingMsg>();
  ASSERT_FALSE(pings.empty());

  auto ack = PingAckMsg{};
  ack.seq = pings.back()->seq;
  ack.target = 2;
  det.on_ping_ack(2, ack);

  host.advance_to(10'000);  // several more periods; each round is re-acked
  // Without further acks later probes suspect again, so only assert the
  // state right after the acked round:
  TestHost host2;
  SwimDetector det2(1, fast_cfg(), host2.callbacks());
  det2.set_members({2});
  det2.start(0);
  host2.advance_to(1050);
  auto p2 = host2.sent<PingMsg>();
  ASSERT_FALSE(p2.empty());
  PingAckMsg a2;
  a2.seq = p2.back()->seq;
  a2.target = 2;
  det2.on_ping_ack(2, a2);
  host2.advance_to(2100);  // period-end evaluation of the acked probe
  EXPECT_EQ(det2.state_of(2), MemberState::kAlive);
  EXPECT_TRUE(det2.presumed_live(2));
}

TEST(Swim, DirectTimeoutFansOutPingReqs) {
  TestHost host;
  SwimDetector det(1, fast_cfg(), host.callbacks());
  det.set_members({2, 3, 4, 5});
  det.start(0);
  // Run until the first direct timeout has certainly fired (phase < period,
  // timeout 300 after the ping) but stop before period end.
  host.advance_to(1350);
  const auto reqs = host.sent<PingReqMsg>();
  ASSERT_EQ(reqs.size(), 2u);  // indirect_fanout = 2
  const auto pings = host.sent<PingMsg>();
  ASSERT_FALSE(pings.empty());
  for (const auto* r : reqs) {
    EXPECT_EQ(r->seq, pings.front()->seq);
    EXPECT_NE(r->target, 1u);  // never asks to probe ourselves
  }
}

TEST(Swim, ProxyRelayMasksLossyDirectLink) {
  // A probes T; the direct path is dead but proxy P can reach T. The ack must
  // travel T -> P -> A and clear the probe before period-end evaluation.
  TestHost ha, hp, ht;
  SwimDetector a(1, fast_cfg(), ha.callbacks());
  SwimDetector p(2, fast_cfg(), hp.callbacks());
  SwimDetector t(3, fast_cfg(), ht.callbacks());
  a.set_members({2, 3});
  p.set_members({1, 3});
  t.set_members({1, 2});
  a.start(0);

  // Drive A to its direct timeout; drop the direct ping entirely.
  ha.advance_to(1350);
  auto reqs = ha.sent<PingReqMsg>();
  // A's rotation might probe P (which we would have to ignore); find the
  // round that probed T by matching ping targets.
  std::uint64_t seq = 0;
  sim::NodeId proxy = 0;
  bool found = false;
  for (const auto& o : ha.outbox) {
    if (const auto* r = dynamic_cast<const PingReqMsg*>(o.msg.get())) {
      if (r->target == 3) {
        seq = r->seq;
        proxy = o.to;
        found = true;
        break;
      }
    }
  }
  if (!found) {
    // First rotation slot went to P instead; advance one more period so T is
    // probed (round-robin guarantees it within two periods here).
    ha.advance_to(2350);
    for (const auto& o : ha.outbox) {
      if (const auto* r = dynamic_cast<const PingReqMsg*>(o.msg.get())) {
        if (r->target == 3) {
          seq = r->seq;
          proxy = o.to;
          found = true;
          break;
        }
      }
    }
  }
  ASSERT_TRUE(found);
  ASSERT_EQ(proxy, 2u);

  // Deliver the ping-req to P; P pings T.
  PingReqMsg req;
  req.seq = seq;
  req.target = 3;
  p.on_ping_req(1, req);
  auto ppings = hp.sent<PingMsg>();
  ASSERT_EQ(ppings.size(), 1u);

  // T answers P; P relays the ack to A.
  PingMsg tp;
  tp.seq = ppings.back()->seq;
  t.on_ping(2, tp);
  auto tacks = ht.sent<PingAckMsg>();
  ASSERT_EQ(tacks.size(), 1u);
  EXPECT_EQ(tacks.back()->target, 3u);
  p.on_ping_ack(3, *tacks.back());
  ASSERT_FALSE(hp.sent<PingAckMsg>().empty());
  const auto* relayed = hp.sent<PingAckMsg>().back();
  EXPECT_EQ(relayed->seq, seq);
  EXPECT_EQ(relayed->target, 3u);
  a.on_ping_ack(2, *relayed);

  // Period-end evaluation: the indirect ack saved T from suspicion.
  ha.advance_to(ha.now + 2000);
  EXPECT_EQ(a.state_of(3), MemberState::kAlive);
}

TEST(Swim, RefutationCancelsSuspicionDeadline) {
  TestHost host;
  SwimDetector det(1, fast_cfg(), host.callbacks());
  det.set_members({2});
  // Deliberately no start(): the probe loop would keep re-suspecting the
  // ack-less peer; here we only exercise the deadline/token machinery.
  det.apply_update({2, MemberState::kSuspect, 0});
  ASSERT_EQ(det.state_of(2), MemberState::kSuspect);
  // The member refutes with a bumped incarnation before the deadline.
  det.apply_update({2, MemberState::kAlive, 1});
  EXPECT_EQ(det.state_of(2), MemberState::kAlive);
  // The stale deadline timer must not confirm (token guard).
  host.advance_to(100'000);
  EXPECT_NE(det.state_of(2), MemberState::kConfirmed);
  EXPECT_EQ(det.incarnation_of(2), 1u);
}

TEST(Swim, PrecedenceRules) {
  TestHost host;
  SwimDetector det(1, fast_cfg(), host.callbacks());
  det.set_members({2});
  det.start(0);

  // Equal-incarnation alive does not downgrade an existing suspicion.
  det.apply_update({2, MemberState::kSuspect, 0});
  det.apply_update({2, MemberState::kAlive, 0});
  EXPECT_EQ(det.state_of(2), MemberState::kSuspect);

  // Confirm at the same incarnation beats suspect; nothing at the same
  // incarnation beats confirm.
  det.apply_update({2, MemberState::kConfirmed, 0});
  EXPECT_EQ(det.state_of(2), MemberState::kConfirmed);
  det.apply_update({2, MemberState::kSuspect, 0});
  det.apply_update({2, MemberState::kAlive, 0});
  EXPECT_EQ(det.state_of(2), MemberState::kConfirmed);

  // The rejoin path: alive with a strictly higher incarnation overrides even
  // confirmed (the restarted node's durable counter only grows).
  det.apply_update({2, MemberState::kAlive, 1});
  EXPECT_EQ(det.state_of(2), MemberState::kAlive);
  EXPECT_EQ(det.incarnation_of(2), 1u);
}

TEST(Swim, SelfSuspicionRefutesByIncarnationBump) {
  TestHost host;
  SwimDetector det(7, fast_cfg(), host.callbacks());
  det.set_members({1, 2});
  det.start(4);  // durable incarnation from an earlier life
  EXPECT_EQ(det.own_incarnation(), 4u);
  det.apply_update({7, MemberState::kSuspect, 4});
  EXPECT_EQ(det.own_incarnation(), 5u);
  EXPECT_EQ(host.incarnation_seen, 5u);  // host persists the bump
  // A stale rumor about an older incarnation does not bump again.
  det.apply_update({7, MemberState::kSuspect, 3});
  EXPECT_EQ(det.own_incarnation(), 5u);
}

TEST(Swim, GossipRidesOnProbesFreshestFirst) {
  TestHost host;
  auto cfg = fast_cfg();
  cfg.gossip_updates = 2;
  SwimDetector det(1, cfg, host.callbacks());
  det.set_members({2, 3, 4});
  det.start(0);
  det.apply_update({3, MemberState::kSuspect, 0});
  host.advance_to(1050);
  const auto pings = host.sent<PingMsg>();
  ASSERT_FALSE(pings.empty());
  const auto& gossip = pings.back()->gossip;
  ASSERT_LE(gossip.size(), 2u);
  ASSERT_FALSE(gossip.empty());
  // Both the self-alive announcement and the fresher suspicion are pending;
  // the budgeted selection must carry the suspicion.
  const bool carries_suspicion =
      std::any_of(gossip.begin(), gossip.end(), [](const MemberUpdate& u) {
        return u.node == 3 && u.state == MemberState::kSuspect;
      });
  EXPECT_TRUE(carries_suspicion);
}

TEST(Swim, PiggybackBudgetExhausts) {
  TestHost host;
  auto cfg = fast_cfg();
  cfg.retransmit_multiplier = 1;
  SwimDetector det(1, cfg, host.callbacks());
  det.set_members({2});
  det.start(0);
  ASSERT_FALSE(host.timers.empty());
  const std::uint64_t phase = host.timers.front().due;
  // n = 1 member: budget = max(1, 1 * ceil_log2(3)) = 2 piggybacks total per
  // update. Ack every probe (so the peer stays alive and keeps being probed)
  // and watch the self-alive announcement fall off the queue.
  std::size_t acked = 0;
  for (int k = 0; k < 6; ++k) {
    host.advance_to(phase + static_cast<std::uint64_t>(k) * 1000 + 100);
    const auto pings = host.sent<PingMsg>();
    for (; acked < pings.size(); ++acked) {
      PingAckMsg ack;
      ack.seq = pings[acked]->seq;
      ack.target = 2;
      det.on_ping_ack(2, ack);
    }
  }
  const auto pings = host.sent<PingMsg>();
  ASSERT_GE(pings.size(), 5u);
  EXPECT_FALSE(pings.front()->gossip.empty());  // carried while budgeted
  EXPECT_TRUE(pings.back()->gossip.empty());    // budget exhausted
}

// ------------------------------------------------------- wire roundtrips ----

TEST(SwimWire, PingRoundTripAndSize) {
  PingMsg m;
  m.seq = 0x0123456789abcdefULL;
  m.gossip = {{9, MemberState::kSuspect, 3}, {11, MemberState::kAlive, 0}};
  const auto bytes = m.serialize();
  EXPECT_EQ(bytes.size(), m.wire_size());
  const auto back = PingMsg::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, m.seq);
  EXPECT_EQ(back->gossip, m.gossip);
}

TEST(SwimWire, AckAndPingReqRoundTrip) {
  PingAckMsg a;
  a.seq = 42;
  a.target = 17;
  a.gossip = {{2, MemberState::kConfirmed, 7}};
  const auto ab = a.serialize();
  EXPECT_EQ(ab.size(), a.wire_size());
  const auto a2 = PingAckMsg::deserialize(ab);
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a2->target, 17u);
  EXPECT_EQ(a2->gossip, a.gossip);

  PingReqMsg r;
  r.seq = 43;
  r.target = 23;
  const auto rb = r.serialize();
  EXPECT_EQ(rb.size(), r.wire_size());
  const auto r2 = PingReqMsg::deserialize(rb);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->target, 23u);
}

TEST(SwimWire, RejectsUnknownStateByte) {
  PingMsg m;
  m.seq = 1;
  m.gossip = {{2, MemberState::kAlive, 0}};
  auto bytes = m.serialize();
  // The state byte of the single update lives right after seq (8), count (4)
  // and node id (4).
  bytes[8 + 4 + 4] = 3;
  EXPECT_FALSE(PingMsg::deserialize(bytes).has_value());
  // Truncation must also fail cleanly.
  bytes.pop_back();
  bytes.back() = 0;
  EXPECT_FALSE(PingMsg::deserialize(bytes).has_value());
}

}  // namespace
}  // namespace lo::membership

// ---------------------------------------------------- adaptive reconciler ----

namespace lo::sketch {
namespace {

std::vector<std::uint64_t> make_range(std::uint64_t lo, std::uint64_t hi) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t v = lo; v < hi; ++v) out.push_back(v * 0x9e3779b9ULL + 1);
  return out;
}

TEST(AdaptiveCapacity, ClampsToBounds) {
  EXPECT_EQ(adaptive_capacity(0, 128), 8u);       // floor
  EXPECT_EQ(adaptive_capacity(1, 128), 8u);       // 2*1+4 < 8
  EXPECT_EQ(adaptive_capacity(10, 128), 24u);     // 2*10+4
  EXPECT_EQ(adaptive_capacity(1000, 128), 128u);  // ceiling
}

TEST(AdaptiveReconciler, MatchesPartitionedOracleAcrossEstimates) {
  // The recovered symmetric difference must be identical to the fixed-
  // capacity oracle for ANY estimate — correctness never rides on sizing.
  auto shared = make_range(0, 300);
  auto only_a = make_range(1000, 1020);
  auto only_b = make_range(2000, 2015);
  auto a = shared;
  a.insert(a.end(), only_a.begin(), only_a.end());
  auto b = shared;
  b.insert(b.end(), only_b.begin(), only_b.end());

  PartitionedReconciler oracle(32, 256);
  auto want = oracle.reconcile(a, b);
  ASSERT_TRUE(want.has_value());
  std::sort(want->begin(), want->end());
  ASSERT_EQ(want->size(), only_a.size() + only_b.size());

  AdaptiveReconciler adaptive(32, 256);
  for (std::size_t est : {std::size_t{0}, std::size_t{4}, std::size_t{35},
                          std::size_t{500}}) {
    ReconcileStats st;
    auto got = adaptive.reconcile(a, b, est, &st);
    ASSERT_TRUE(got.has_value()) << "estimate " << est;
    std::sort(got->begin(), got->end());
    EXPECT_EQ(*got, *want) << "estimate " << est;
  }
}

TEST(AdaptiveReconciler, GoodEstimateSpendsFewerBytesThanFixed) {
  auto shared = make_range(0, 200);
  auto only_a = make_range(5000, 5003);  // diff of 6 total
  auto only_b = make_range(6000, 6003);
  auto a = shared;
  a.insert(a.end(), only_a.begin(), only_a.end());
  auto b = shared;
  b.insert(b.end(), only_b.begin(), only_b.end());

  ReconcileStats fixed_st;
  PartitionedReconciler fixed(32, 128);
  ASSERT_TRUE(fixed.reconcile(a, b, &fixed_st).has_value());

  ReconcileStats ad_st;
  AdaptiveReconciler adaptive(32, 128);
  ASSERT_TRUE(adaptive.reconcile(a, b, 6, &ad_st).has_value());

  EXPECT_LT(ad_st.bytes, fixed_st.bytes);
  EXPECT_EQ(ad_st.decode_failures, 0u);
  EXPECT_EQ(ad_st.sketches_used, 2u);  // one per side, single round
}

TEST(AdaptiveReconciler, ShardedEstimatesShrinkSketchBytes) {
  // The global-estimate capacity clamp (ISSUE 9 satellite): one estimate for
  // the whole difference saturates at max_capacity, the decode fails and the
  // splitter burns bytes. k shards each carry ~1/k of the difference, so the
  // per-shard estimates size k small sketches that all decode first try —
  // total syndrome bytes must strictly shrink, and nothing may fall back.
  auto only_a = make_range(100, 150);  // 100-element symmetric difference,
  auto only_b = make_range(300, 350);  // far beyond max_capacity = 64
  auto shared = make_range(10000, 10200);
  auto a = shared;
  a.insert(a.end(), only_a.begin(), only_a.end());
  auto b = shared;
  b.insert(b.end(), only_b.begin(), only_b.end());

  AdaptiveReconciler adaptive(32, 64);
  ReconcileStats global_st;
  auto global = adaptive.reconcile(a, b, 100, &global_st);
  ASSERT_TRUE(global.has_value());
  EXPECT_GE(global_st.decode_failures, 1u) << "clamped global sketch decodes?";

  const auto shard_of = [](std::uint64_t raw) {
    return static_cast<std::uint32_t>(raw % 4);
  };
  // Each shard sees ~25 of the 100 differing items; its own estimate sizes a
  // sketch comfortably under the 64-element ceiling.
  const std::size_t estimates[] = {25, 25, 25, 25};
  ReconcileStats sharded_st;
  auto sharded = adaptive.reconcile_shards(a, b, shard_of, estimates,
                                           &sharded_st);
  ASSERT_TRUE(sharded.has_value());
  EXPECT_EQ(sharded_st.decode_failures, 0u);
  EXPECT_LT(sharded_st.bytes, global_st.bytes)
      << "per-shard estimates must beat the clamped global estimate";

  // Same recovered difference either way (the symmetric difference is
  // unique; only the transport cost differs).
  std::sort(global->begin(), global->end());
  std::sort(sharded->begin(), sharded->end());
  EXPECT_EQ(*global, *sharded);
}

TEST(AdaptiveReconciler, SingleShardMatchesUnsharded) {
  // k = 1 degenerates to exactly one adaptive round: same bytes, same result.
  auto a = make_range(0, 120);
  auto b = make_range(40, 160);

  AdaptiveReconciler adaptive(32, 128);
  ReconcileStats flat_st;
  auto flat = adaptive.reconcile(a, b, 80, &flat_st);
  ASSERT_TRUE(flat.has_value());

  const std::size_t estimates[] = {80};
  ReconcileStats sh_st;
  auto sharded = adaptive.reconcile_shards(
      a, b, [](std::uint64_t) { return 0u; }, estimates, &sh_st);
  ASSERT_TRUE(sharded.has_value());
  EXPECT_EQ(sh_st.bytes, flat_st.bytes);
  std::sort(flat->begin(), flat->end());
  std::sort(sharded->begin(), sharded->end());
  EXPECT_EQ(*flat, *sharded);
}

TEST(AdaptiveReconciler, UnderestimateFallsBackToSplitter) {
  auto only_a = make_range(100, 180);  // 160-element difference
  auto only_b = make_range(300, 380);

  AdaptiveReconciler adaptive(32, 64);  // max capacity < true difference
  ReconcileStats st;
  auto got = adaptive.reconcile(only_a, only_b, 2, &st);  // wildly low estimate
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), only_a.size() + only_b.size());
  EXPECT_GE(st.decode_failures, 1u);  // the undersized attempt failed
  EXPECT_GT(st.rounds, 0u);           // and the splitter recursed
}

}  // namespace
}  // namespace lo::sketch

// ----------------------------------------------------- config validation ----

namespace lo::core {
namespace {

LoConfig base_cfg() {
  LoConfig cfg;
  cfg.sig_mode = crypto::SignatureMode::kSimFast;
  cfg.prevalidation.sig_mode = crypto::SignatureMode::kSimFast;
  return cfg;
}

TEST(ConfigValidate, AcceptsDefaults) {
  EXPECT_NO_THROW(base_cfg().validate());
  auto with_membership = base_cfg();
  with_membership.membership.enabled = true;
  EXPECT_NO_THROW(with_membership.validate());
}

TEST(ConfigValidate, RejectsShrinkingBackoff) {
  auto cfg = base_cfg();
  cfg.backoff_factor = 0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigValidate, RejectsOutOfRangeJitter) {
  auto cfg = base_cfg();
  cfg.backoff_jitter = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.backoff_jitter = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigValidate, RejectsZeroTimeoutAndBadCap) {
  auto cfg = base_cfg();
  cfg.request_timeout = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base_cfg();
  cfg.backoff_cap = cfg.request_timeout - 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigValidate, RejectsInconsistentMembershipTiming) {
  auto cfg = base_cfg();
  cfg.membership.enabled = true;
  cfg.membership.ping_timeout = cfg.membership.protocol_period;  // must be <
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base_cfg();
  cfg.membership.enabled = true;
  cfg.membership.indirect_fanout = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = base_cfg();
  cfg.membership.enabled = true;
  cfg.membership.suspicion_periods = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // Disabled membership skips the membership checks entirely.
  cfg = base_cfg();
  cfg.membership.suspicion_periods = 0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, NodeConstructionFailsFast) {
  sim::Simulator sim(1);
  auto cfg = base_cfg();
  cfg.backoff_factor = 0.0;
  auto keys = crypto::derive_keypair(1, cfg.sig_mode);
  EXPECT_THROW(LoNode(sim, 0, cfg, keys, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace lo::core
