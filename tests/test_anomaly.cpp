// AnomalyMonitor tests: each streaming detector in isolation on a bare
// simulator (dwell watermark, settle clearing, suspicion spike, reconcile
// failure ratio, commit-latency SLO), the lo.anomaly.* counter and kAnomaly
// trace surfaces, and worker-count determinism of the full alert stream when
// the monitor rides a real LØ run.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "baselines/common.hpp"
#include "baselines/flood.hpp"
#include "harness/anomaly.hpp"
#include "harness/lo_network.hpp"
#include "sim/simulator.hpp"
#include "test_net_util.hpp"

namespace lo {
namespace {

using harness::AnomalyConfig;
using harness::AnomalyKind;
using harness::AnomalyMonitor;

// ------------------------------------------------------------ censor dwell ----

TEST(Anomaly, CensorDwellAlertsOncePerUnsettledTx) {
  sim::Simulator sim(1);
  AnomalyConfig cfg;
  cfg.censor_dwell_threshold_s = 5.0;
  AnomalyMonitor mon(sim, cfg);
  mon.start();
  mon.on_submit(0xabc, 0);
  sim.run_until(10 * sim::kSecond);

  // Ten ticks fire, six of them past the watermark — but the alert is
  // raised exactly once per tx.
  ASSERT_EQ(mon.alerts().size(), 1u);
  const auto& a = mon.alerts()[0];
  EXPECT_EQ(a.kind, AnomalyKind::kCensorDwell);
  EXPECT_GE(a.value, 5.0);
  EXPECT_DOUBLE_EQ(a.threshold, 5.0);
  EXPECT_NE(a.detail.find("unsettled"), std::string::npos);
  EXPECT_EQ(mon.inflight(), 1u);  // still in flight: a late settle can clear it

  auto& reg = sim.obs().registry;
  EXPECT_EQ(reg.counter("lo.anomaly.alerts"), 1u);
  EXPECT_EQ(reg.counter("lo.anomaly.alerts", {{"kind", "censor_dwell"}}), 1u);
  EXPECT_EQ(reg.counter("lo.anomaly.alerts", {{"kind", "suspicion_spike"}}),
            0u);
}

TEST(Anomaly, SettleClearsInflightBeforeTheWatermark) {
  sim::Simulator sim(1);
  AnomalyConfig cfg;
  cfg.censor_dwell_threshold_s = 5.0;
  AnomalyMonitor mon(sim, cfg);
  mon.start();
  mon.on_submit(0xabc, 0);
  sim.schedule(2 * sim::kSecond, [&] { mon.on_settle(0xabc, sim.now()); });
  mon.on_settle(0xdead, 0);  // unknown tx: ignored, not a crash
  sim.run_until(10 * sim::kSecond);
  EXPECT_TRUE(mon.alerts().empty());
  EXPECT_EQ(mon.inflight(), 0u);
}

// --------------------------------------------------------- suspicion spike ----

TEST(Anomaly, SuspicionSpikeFiresOnlyInTheHotWindow) {
  sim::Simulator sim(1);
  AnomalyConfig cfg;
  cfg.suspicion_spike_threshold = 4;
  AnomalyMonitor mon(sim, cfg);
  mon.start();
  sim.schedule(sim::kSecond / 2, [&] {
    for (int i = 0; i < 10; ++i) mon.on_suspicion();
  });
  sim.run_until(3 * sim::kSecond);
  // Tick at 1s sees 10 > 4; the window resets, so ticks at 2s/3s stay quiet.
  ASSERT_EQ(mon.alerts().size(), 1u);
  EXPECT_EQ(mon.alerts()[0].kind, AnomalyKind::kSuspicionSpike);
  EXPECT_DOUBLE_EQ(mon.alerts()[0].value, 10.0);
}

// ---------------------------------------------------------- reconcile fail ----

TEST(Anomaly, ReconcileFailureNeedsRatioAndMinSamples) {
  sim::Simulator sim(1);
  AnomalyConfig cfg;
  cfg.reconcile_failure_ratio = 0.5;
  cfg.reconcile_min_samples = 8;
  AnomalyMonitor mon(sim, cfg);
  mon.start();
  // Window 1: 4 ok + 4 failed = 8 samples at exactly the ratio bound.
  sim.schedule(sim::kSecond / 2, [&] {
    for (int i = 0; i < 4; ++i) mon.on_reconcile(true);
    for (int i = 0; i < 4; ++i) mon.on_reconcile(false);
  });
  // Window 2: all failures but below the sample floor — no alert.
  sim.schedule(3 * sim::kSecond / 2, [&] {
    for (int i = 0; i < 7; ++i) mon.on_reconcile(false);
  });
  sim.run_until(3 * sim::kSecond);
  ASSERT_EQ(mon.alerts().size(), 1u);
  EXPECT_EQ(mon.alerts()[0].kind, AnomalyKind::kReconcileFailure);
  EXPECT_DOUBLE_EQ(mon.alerts()[0].value, 0.5);
  EXPECT_NE(mon.alerts()[0].detail.find("4/8"), std::string::npos);
}

// -------------------------------------------------------------- commit slo ----

TEST(Anomaly, CommitSloUsesNearestRankP95) {
  sim::Simulator sim(1);
  AnomalyConfig cfg;
  cfg.commit_latency_slo_s = 1.0;
  AnomalyMonitor mon(sim, cfg);
  mon.start();
  // 18 fast settles and 2 slow ones: rank ceil(0.95*20) = 19 lands on the
  // first slow sample, breaching the SLO.
  sim.schedule(sim::kSecond / 2, [&] {
    for (std::uint64_t i = 0; i < 20; ++i) mon.on_submit(i, 0);
    for (std::uint64_t i = 0; i < 18; ++i) {
      mon.on_settle(i, 100 * sim::kMillisecond);
    }
    mon.on_settle(18, 5 * sim::kSecond);
    mon.on_settle(19, 5 * sim::kSecond);
  });
  sim.run_until(2 * sim::kSecond);
  ASSERT_EQ(mon.alerts().size(), 1u);
  EXPECT_EQ(mon.alerts()[0].kind, AnomalyKind::kCommitLatencySlo);
  EXPECT_DOUBLE_EQ(mon.alerts()[0].value, 5.0);
}

TEST(Anomaly, CommitSloToleratesASingleOutlier) {
  sim::Simulator sim(1);
  AnomalyConfig cfg;
  cfg.commit_latency_slo_s = 1.0;
  AnomalyMonitor mon(sim, cfg);
  mon.start();
  // 19 fast + 1 slow: rank 19 of 20 is still a fast sample.
  sim.schedule(sim::kSecond / 2, [&] {
    for (std::uint64_t i = 0; i < 20; ++i) mon.on_submit(i, 0);
    for (std::uint64_t i = 0; i < 19; ++i) {
      mon.on_settle(i, 100 * sim::kMillisecond);
    }
    mon.on_settle(19, 5 * sim::kSecond);
  });
  sim.run_until(2 * sim::kSecond);
  EXPECT_TRUE(mon.alerts().empty());
}

// ----------------------------------------------------------- trace surface ----

TEST(Anomaly, AlertsRideTheTraceStream) {
  sim::Simulator sim(1);
  sim.obs().tracer.enable(true);
  AnomalyConfig cfg;
  cfg.censor_dwell_threshold_s = 2.0;
  AnomalyMonitor mon(sim, cfg);
  mon.start();
  mon.on_submit(0x77, 0);
  sim.run_until(4 * sim::kSecond);
  ASSERT_EQ(mon.alerts().size(), 1u);

  bool found = false;
  for (const auto& ev : sim.obs().tracer.events()) {
    if (ev.kind != static_cast<std::uint16_t>(obs::EventKind::kAnomaly)) {
      continue;
    }
    found = true;
    EXPECT_EQ(ev.peer, static_cast<std::uint32_t>(AnomalyKind::kCensorDwell));
    EXPECT_EQ(ev.b, 2000u);  // threshold in milli-units
    EXPECT_GE(ev.a, 2000u);  // observed dwell in milli-units
  }
  EXPECT_TRUE(found) << "no kAnomaly event reached the tracer";
}

// ------------------------------------------------------------- determinism ----

// Alert stream + registry export from a monitored adversarial LØ run must be
// identical across simulator worker counts: the feeds run in coordinator
// context only and the tick is an ordinary coordinator timer (DESIGN.md §4e).
std::string run_monitored_lo(std::uint64_t seed, unsigned workers) {
  auto cfg = test::net_cfg(16, seed, /*malicious_fraction=*/0.125);
  cfg.trace = true;
  cfg.malicious.ignore_requests = true;
  cfg.malicious.censor_txs = true;
  cfg.workers = workers;
  harness::LoNetwork net(cfg);
  AnomalyConfig acfg;
  acfg.suspicion_spike_threshold = 0;  // any suspicion in a window alerts
  acfg.censor_dwell_threshold_s = 5.0;
  net.start_anomaly_monitor(acfg);
  net.start_workload(test::load_cfg(20.0, seed + 1000));
  net.run_for(15.0);

  std::string out;
  char buf[192];
  for (const auto& a : net.anomaly()->alerts()) {
    std::snprintf(buf, sizeof(buf), "%u|%.6f|%.6f|%.6f|%s\n",
                  static_cast<unsigned>(a.kind), a.when_s, a.value, a.threshold,
                  a.detail.c_str());
    out += buf;
  }
  out += std::to_string(net.anomaly()->inflight());
  out += "\n";
  net.publish_metrics();
  out += net.sim().obs().registry.to_json("anomaly");
  return out;
}

// The same detectors ride the baseline stacks (settle = first admit there):
// a healthy flood run with a sane SLO raises nothing, and every tx clears
// the in-flight set — the monitor observes real submit/settle feeds.
TEST(Anomaly, BaselineNetworkFeedsTheMonitor) {
  baselines::BaselineNetConfig cfg;
  cfg.num_nodes = 10;
  cfg.seed = 7;
  baselines::FloodNode::Config node_cfg;
  node_cfg.prevalidation.sig_mode = test::kFastSig;
  baselines::BaselineNetwork<baselines::FloodNode> net(cfg, node_cfg);
  AnomalyConfig acfg;
  acfg.censor_dwell_threshold_s = 5.0;
  net.start_anomaly_monitor(acfg);
  net.start_workload(test::load_cfg(15.0, 8));
  net.run_for(10.0);
  ASSERT_NE(net.anomaly(), nullptr);
  EXPECT_GT(net.txs_injected(), 0u);
  EXPECT_EQ(net.anomaly()->inflight(), 0u)
      << "flood baseline left submitted txs unsettled";
  EXPECT_TRUE(net.anomaly()->alerts().empty());
}

TEST(Anomaly, MonitoredRunIsWorkerCountInvariant) {
  const std::string serial = run_monitored_lo(5, /*workers=*/1);
  // Non-vacuous: sync-ignoring censors must trip at least one detector.
  EXPECT_NE(serial.find("|"), std::string::npos)
      << "adversarial run produced no alerts — determinism check is vacuous";
  EXPECT_EQ(serial, run_monitored_lo(5, /*workers=*/1))
      << "monitored LO replay diverged";
  EXPECT_EQ(serial, run_monitored_lo(5, /*workers=*/4))
      << "monitored LO run diverged between serial and 4 workers";
}

}  // namespace
}  // namespace lo
