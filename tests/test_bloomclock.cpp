// Bloom Clock tests: partial-order laws, difference estimation, merge
// semantics, and the paper's 68-byte wire format.
#include <gtest/gtest.h>

#include "bloomclock/bloom_clock.hpp"
#include "util/rng.hpp"

namespace lo::bloom {
namespace {

TEST(BloomClock, FreshClocksAreEqual) {
  BloomClock a, b;
  EXPECT_EQ(a.compare(b), ClockOrder::kEqual);
  EXPECT_TRUE(a.dominated_by(b));
  EXPECT_TRUE(b.dominated_by(a));
}

TEST(BloomClock, AddMakesStrictlyAfter) {
  BloomClock a, b;
  b.add(42);
  EXPECT_EQ(a.compare(b), ClockOrder::kBefore);
  EXPECT_EQ(b.compare(a), ClockOrder::kAfter);
  EXPECT_TRUE(a.dominated_by(b));
  EXPECT_FALSE(b.dominated_by(a));
}

TEST(BloomClock, PrefixIsDominated) {
  BloomClock a, b;
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto v = rng.next();
    a.add(v);
    b.add(v);
  }
  for (int i = 0; i < 20; ++i) b.add(rng.next());
  EXPECT_TRUE(a.dominated_by(b));
  EXPECT_EQ(b.compare(a), ClockOrder::kAfter);
}

TEST(BloomClock, DivergentHistoriesAreConcurrent) {
  BloomClock a, b;
  util::Rng rng(2);
  for (int i = 0; i < 64; ++i) a.add(rng.next());
  for (int i = 0; i < 64; ++i) b.add(rng.next());
  EXPECT_EQ(a.compare(b), ClockOrder::kConcurrent);
  EXPECT_FALSE(a.dominated_by(b));
  EXPECT_FALSE(b.dominated_by(a));
}

TEST(BloomClock, SameSetSameClock) {
  BloomClock a, b;
  util::Rng rng(3);
  std::vector<std::uint64_t> items;
  for (int i = 0; i < 100; ++i) items.push_back(rng.next());
  for (auto v : items) a.add(v);
  // Insert in reverse order — clocks are order-insensitive (set semantics).
  for (auto it = items.rbegin(); it != items.rend(); ++it) b.add(*it);
  EXPECT_EQ(a, b);
}

TEST(BloomClock, L1DistanceTracksDifference) {
  BloomClock a, b;
  util::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.next();
    a.add(v);
    b.add(v);
  }
  EXPECT_EQ(a.l1_distance(b), 0u);
  for (int i = 0; i < 30; ++i) b.add(rng.next());
  // With k=1 hash, L1 distance equals the insert-count difference exactly.
  EXPECT_EQ(a.l1_distance(b), 30u);
}

TEST(BloomClock, PopulationCountsInsertions) {
  BloomClock c(32, 2);
  for (int i = 0; i < 25; ++i) c.add(static_cast<std::uint64_t>(i) * 77);
  EXPECT_EQ(c.population(), 25u);
}

TEST(BloomClock, MergeIsCellwiseSum) {
  BloomClock a, b;
  util::Rng rng(5);
  for (int i = 0; i < 10; ++i) a.add(rng.next());
  for (int i = 0; i < 15; ++i) b.add(rng.next());
  BloomClock m = a;
  m.merge(b);
  EXPECT_EQ(m.population(), 25u);
  EXPECT_TRUE(a.dominated_by(m));
  EXPECT_TRUE(b.dominated_by(m));
}

TEST(BloomClock, MergeParameterMismatchThrows) {
  BloomClock a(32, 1), b(64, 1), c(32, 2);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(BloomClock, InvalidConstructionThrows) {
  EXPECT_THROW(BloomClock(0, 1), std::invalid_argument);
  EXPECT_THROW(BloomClock(32, 0), std::invalid_argument);
}

TEST(BloomClock, PaperWireFormat) {
  // Sec. 6.1: 32 cells, 68 bytes total.
  BloomClock c;
  EXPECT_EQ(c.cells(), 32u);
  EXPECT_EQ(c.serialized_size(), 68u);
  EXPECT_EQ(c.serialize().size(), 68u);
}

TEST(BloomClock, SerializeRoundTrip) {
  BloomClock c(16, 3);
  util::Rng rng(6);
  for (int i = 0; i < 40; ++i) c.add(rng.next());
  const auto bytes = c.serialize();
  const auto back = BloomClock::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, c);
  EXPECT_EQ(back->cells(), 16u);
  EXPECT_EQ(back->hashes(), 3u);
}

TEST(BloomClock, DeserializeRejectsGarbage) {
  EXPECT_FALSE(BloomClock::deserialize(std::vector<std::uint8_t>{}).has_value());
  EXPECT_FALSE(
      BloomClock::deserialize(std::vector<std::uint8_t>{1, 2, 3}).has_value());
  // Header claims 32 cells but payload is short.
  std::vector<std::uint8_t> bad{32, 0, 1, 0, 5, 5};
  EXPECT_FALSE(BloomClock::deserialize(bad).has_value());
  // Zero cells is invalid.
  std::vector<std::uint8_t> zero{0, 0, 1, 0};
  EXPECT_FALSE(BloomClock::deserialize(zero).has_value());
}

TEST(BloomClock, SaturatingSerialization) {
  BloomClock c(1, 1);  // everything lands in one cell
  for (int i = 0; i < 70000; ++i) c.add(static_cast<std::uint64_t>(i));
  const auto bytes = c.serialize();
  const auto back = BloomClock::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->counters()[0], 0xffffu);  // clamped at u16 max
}

TEST(BloomClock, DominationIsTransitive) {
  BloomClock a, b, c;
  util::Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const auto v = rng.next();
    a.add(v);
    b.add(v);
    c.add(v);
  }
  for (int i = 0; i < 10; ++i) {
    const auto v = rng.next();
    b.add(v);
    c.add(v);
  }
  for (int i = 0; i < 10; ++i) c.add(rng.next());
  EXPECT_TRUE(a.dominated_by(b));
  EXPECT_TRUE(b.dominated_by(c));
  EXPECT_TRUE(a.dominated_by(c));
}

}  // namespace
}  // namespace lo::bloom
