// Enforcement-layer tests (Sec. 5.4): PoS slashing driven by verified
// evidence, reputation penalties with retraction restore, and the block
// admission policy.
#include <gtest/gtest.h>

#include "core/block.hpp"
#include "core/commitment_log.hpp"
#include "enforcement/slashing.hpp"
#include "util/rng.hpp"

namespace lo::enforcement {
namespace {

constexpr auto kMode = crypto::SignatureMode::kSimFast;

crypto::Signer signer(std::uint64_t id) {
  return crypto::Signer(crypto::derive_keypair(id, kMode), kMode);
}

std::vector<core::TxId> random_txids(util::Rng& rng, std::size_t n) {
  std::vector<core::TxId> out(n);
  for (auto& id : out) {
    for (auto& b : id) b = static_cast<std::uint8_t>(rng.next());
  }
  return out;
}

core::EquivocationEvidence make_fork_evidence(core::NodeId accused,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  core::CommitmentLog a(accused, core::CommitmentParams{});
  core::CommitmentLog b(accused, core::CommitmentParams{});
  a.append(random_txids(rng, 3), 1);
  b.append(random_txids(rng, 3), 1);
  const auto s = signer(accused);
  core::EquivocationEvidence ev;
  ev.accused = accused;
  ev.first = a.make_header(s);
  ev.second = b.make_header(s);
  return ev;
}

SlashingPolicy test_policy() {
  SlashingPolicy p;
  p.sig_mode = kMode;
  p.exposure_slash = 0.5;
  p.suspicion_leak = 0.1;
  p.ejection_threshold = 10;
  return p;
}

TEST(StakeLedger, BondAndQuery) {
  StakeLedger ledger(test_policy());
  ledger.bond(1, 1000);
  ledger.bond(2, 500);
  ledger.bond(1, 200);
  ASSERT_NE(ledger.account(1), nullptr);
  EXPECT_EQ(ledger.account(1)->stake, 1200u);
  EXPECT_EQ(ledger.total_stake(), 1700u);
  EXPECT_EQ(ledger.active_validators(), 2u);
  EXPECT_EQ(ledger.account(99), nullptr);
}

TEST(StakeLedger, EquivocationBurnsHalf) {
  StakeLedger ledger(test_policy());
  ledger.bond(7, 1000);
  const auto ev = make_fork_evidence(7, 1);
  const auto res = ledger.apply_equivocation(ev);
  EXPECT_TRUE(res.applied);
  EXPECT_EQ(res.amount, 500u);
  EXPECT_EQ(ledger.account(7)->stake, 500u);
  EXPECT_EQ(ledger.account(7)->slashed_total, 500u);
}

TEST(StakeLedger, ExposureIsIdempotent) {
  StakeLedger ledger(test_policy());
  ledger.bond(7, 1000);
  const auto ev = make_fork_evidence(7, 2);
  EXPECT_TRUE(ledger.apply_equivocation(ev).applied);
  // Replays and new evidence against the same node burn nothing more.
  EXPECT_FALSE(ledger.apply_equivocation(ev).applied);
  EXPECT_FALSE(ledger.apply_equivocation(make_fork_evidence(7, 3)).applied);
  EXPECT_EQ(ledger.account(7)->stake, 500u);
}

TEST(StakeLedger, InvalidEvidenceRejected) {
  StakeLedger ledger(test_policy());
  ledger.bond(7, 1000);
  auto ev = make_fork_evidence(7, 4);
  ev.second.count += 1;  // breaks the signature
  EXPECT_FALSE(ledger.apply_equivocation(ev).applied);
  EXPECT_EQ(ledger.account(7)->stake, 1000u);
  // Consistent headers are not evidence either.
  core::CommitmentLog log(7, core::CommitmentParams{});
  const auto s = signer(7);
  core::EquivocationEvidence consistent;
  consistent.accused = 7;
  consistent.first = log.make_header(s);
  consistent.second = log.make_header(s);
  EXPECT_FALSE(ledger.apply_equivocation(consistent).applied);
}

TEST(StakeLedger, SuspicionLeaksUntilEjection) {
  StakeLedger ledger(test_policy());
  ledger.bond(3, 100);
  bool ejected = false;
  for (int epoch = 0; epoch < 60 && !ejected; ++epoch) {
    ejected = ledger.apply_suspicion_epoch(3).ejected;
  }
  EXPECT_TRUE(ejected);
  EXPECT_FALSE(ledger.eligible(3));
  EXPECT_LT(ledger.account(3)->stake, 10u);
  EXPECT_GT(ledger.account(3)->suspicion_epochs, 10u);
}

TEST(StakeLedger, ReBondingRestoresEligibility) {
  auto policy = test_policy();
  policy.exposure_slash = 1.0;
  StakeLedger ledger(policy);
  ledger.bond(5, 100);
  ledger.apply_equivocation(make_fork_evidence(5, 6));
  EXPECT_FALSE(ledger.eligible(5));
  ledger.bond(5, 100);
  EXPECT_TRUE(ledger.eligible(5));
}

TEST(StakeLedger, BlockEvidenceSlashes) {
  StakeLedger ledger(test_policy());
  ledger.bond(9, 1000);

  util::Rng rng(7);
  core::CommitmentLog log(9, core::CommitmentParams{});
  log.append(random_txids(rng, 5), 1);
  const auto s = signer(9);
  crypto::Digest256 prev{};
  auto block = core::build_block(log, s, 1, prev, nullptr);
  std::swap(block.segments[0].txids[0], block.segments[0].txids[1]);
  auto msg = block.signing_bytes();
  block.sig = s.sign(std::span<const std::uint8_t>(msg.data(), msg.size()));

  core::BlockEvidence ev;
  ev.accused = 9;
  ev.block = block;
  core::SignedBundle sb;
  sb.owner = 9;
  sb.seqno = 1;
  sb.txids = log.bundle_by_seqno(1)->txids;
  sb.key = s.public_key();
  auto bytes = sb.signing_bytes();
  sb.sig = s.sign(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  ev.bundles.push_back(sb);

  const auto res =
      ledger.apply_block_evidence(ev, core::BlockVerdict::kReordered);
  EXPECT_TRUE(res.applied);
  EXPECT_EQ(ledger.account(9)->stake, 500u);
  // Wrong verdict claim does not slash.
  StakeLedger fresh(test_policy());
  fresh.bond(9, 1000);
  EXPECT_FALSE(
      fresh.apply_block_evidence(ev, core::BlockVerdict::kInjected).applied);
}

TEST(Reputation, PenaltiesAndRestore) {
  ReputationLedger rep(1.0, 0.2);
  rep.enroll(4, 1.0);
  rep.punish_suspicion(4);
  rep.punish_suspicion(4);
  EXPECT_NEAR(rep.reputation(4), 0.6, 1e-9);
  rep.restore_on_retraction(4);
  EXPECT_NEAR(rep.reputation(4), 1.0, 1e-9);
  rep.punish_exposure(4);
  EXPECT_NEAR(rep.reputation(4), 0.0, 1e-9);
  // Exposure penalties are not restorable.
  rep.restore_on_retraction(4);
  EXPECT_NEAR(rep.reputation(4), 0.0, 1e-9);
}

TEST(Reputation, UnknownNodeIsZero) {
  ReputationLedger rep;
  EXPECT_EQ(rep.reputation(42), 0.0);
  rep.punish_exposure(42);  // no-op, no crash
}

TEST(BlockAdmission, RejectsExposedAndProven) {
  core::AccountabilityRegistry registry(kMode);
  core::Block block;
  block.creator = 3;
  EXPECT_EQ(admit_block(block, registry, std::nullopt),
            BlockAdmission::kAccept);
  EXPECT_EQ(admit_block(block, registry, core::BlockVerdict::kOk),
            BlockAdmission::kAccept);
  EXPECT_EQ(admit_block(block, registry, core::BlockVerdict::kReordered),
            BlockAdmission::kRejectProvenViolation);
  registry.expose(3);
  EXPECT_EQ(admit_block(block, registry, std::nullopt),
            BlockAdmission::kRejectExposedCreator);
}

TEST(Integration, ExposureEvidenceFromLiveNetworkSlashes) {
  // End-to-end: take real evidence produced by a live network's registry and
  // feed it to the ledger.
  core::AccountabilityRegistry registry(kMode);
  util::Rng rng(10);
  core::CommitmentLog real(6, core::CommitmentParams{});
  core::CommitmentLog fork(6, core::CommitmentParams{});
  real.append(random_txids(rng, 4), 2);
  fork.append(random_txids(rng, 4), 2);
  const auto s = signer(6);
  EXPECT_FALSE(registry.observe_commitment(real.make_header(s)).has_value());
  const auto evidence = registry.observe_commitment(fork.make_header(s));
  ASSERT_TRUE(evidence.has_value());

  StakeLedger ledger(test_policy());
  ledger.bond(6, 888);
  const auto res = ledger.apply_equivocation(*evidence);
  EXPECT_TRUE(res.applied);
  EXPECT_EQ(res.amount, 444u);
}

}  // namespace
}  // namespace lo::enforcement
