// Adversarial wire-decode suite: every protocol message type is fed
//  (a) every truncated prefix of a valid encoding,
//  (b) trailing garbage after a valid encoding,
//  (c) hostile length/count prefixes (0xFFFFFFFF and friends),
//  (d) a sliding 4-byte 0xFF splat across the whole buffer,
// and must come back with a clean nullopt / SerdeError — never a crash, an
// uncaught exception, or a multi-gigabyte allocation. The ASan/UBSan CI job
// runs this binary, so any out-of-bounds read or overflow in a decoder
// surfaces here first.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "core/commitment_log.hpp"
#include "core/inspection.hpp"
#include "core/messages.hpp"
#include "membership/messages.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace lo::core {
namespace {

constexpr auto kMode = crypto::SignatureMode::kSimFast;

crypto::Signer signer(std::uint64_t id) {
  return crypto::Signer(crypto::derive_keypair(id, kMode), kMode);
}

std::vector<TxId> random_txids(util::Rng& rng, std::size_t n) {
  std::vector<TxId> out(n);
  for (auto& id : out) {
    for (auto& b : id) b = static_cast<std::uint8_t>(rng.next());
  }
  return out;
}

struct Fixture {
  CommitmentParams params;
  util::Rng rng{4242};
  CommitmentLog log{4, params};
  crypto::Signer s = signer(4);

  Fixture() {
    log.append(random_txids(rng, 6), 1);
    log.append(random_txids(rng, 3), 2);
  }

  CommitmentHeader header(std::size_t cap = 16) {
    return log.make_header(s, cap);
  }

  SignedBundle signed_bundle(std::uint64_t seqno) {
    SignedBundle sb;
    sb.owner = 4;
    sb.seqno = seqno;
    sb.txids = log.bundle_by_seqno(seqno)->txids;
    sb.key = s.public_key();
    auto bytes = sb.signing_bytes();
    sb.sig = s.sign(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
    return sb;
  }
};

// Overwrites bytes [at, at+4) with 0xFF. Returns a copy.
std::vector<std::uint8_t> splat_ff(const std::vector<std::uint8_t>& bytes,
                                   std::size_t at) {
  auto out = bytes;
  for (std::size_t i = at; i < at + 4 && i < out.size(); ++i) out[i] = 0xFF;
  return out;
}

// Runs the full adversarial battery against one decoder. `decode` must return
// true iff the buffer parsed. It must never throw and never crash; for the
// truncation and garbage cases we additionally require rejection.
template <typename DecodeFn>
void battery(const std::vector<std::uint8_t>& valid, DecodeFn decode) {
  ASSERT_TRUE(decode(valid)) << "battery needs a valid baseline encoding";

  // (a) Every truncated prefix must be rejected cleanly. Decoders demand the
  // buffer be fully consumed, so no proper prefix can also be a valid
  // encoding.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    std::vector<std::uint8_t> cut(valid.begin(),
                                  valid.begin() + static_cast<long>(len));
    EXPECT_FALSE(decode(cut)) << "accepted truncation to " << len << " of "
                              << valid.size() << " bytes";
  }

  // (b) Trailing garbage must be rejected (readers check done()).
  {
    auto padded = valid;
    padded.push_back(0xAB);
    EXPECT_FALSE(decode(padded)) << "accepted 1 byte of trailing garbage";
    padded.insert(padded.end(), 64, 0xFF);
    EXPECT_FALSE(decode(padded)) << "accepted 65 bytes of trailing garbage";
  }

  // (d) Sliding 4-byte 0xFF splat: every u32 count/length field in the
  // message gets hit with 0xFFFFFFFF at some offset. The decoder may still
  // accept buffers where the splat only changed payload bytes — the
  // requirement is that it returns, cleanly, without throwing or ballooning.
  for (std::size_t at = 0; at < valid.size(); ++at) {
    const auto hostile = splat_ff(valid, at);
    EXPECT_NO_THROW({ (void)decode(hostile); })
        << "decoder threw on 0xFF splat at offset " << at;
  }
}

TEST(AdversarialDecode, SyncRequest) {
  Fixture f;
  SyncRequest m;
  m.commitment = f.header();
  m.request_id = 7;
  battery(m.serialize(), [&](const std::vector<std::uint8_t>& b) {
    return SyncRequest::deserialize(b, f.params).has_value();
  });
}

TEST(AdversarialDecode, SyncResponse) {
  Fixture f;
  SyncResponse m;
  m.commitment = f.header();
  m.request_id = 5;
  m.want_short = {11, 22};
  m.delta_back = random_txids(f.rng, 2);
  m.gossip.push_back(f.header(8));
  battery(m.serialize(), [&](const std::vector<std::uint8_t>& b) {
    return SyncResponse::deserialize(b, f.params).has_value();
  });
}

TEST(AdversarialDecode, TxRequest) {
  Fixture f;
  TxRequest m;
  m.want = random_txids(f.rng, 2);
  m.want_short = {9};
  m.request_id = 3;
  battery(m.serialize(), [](const std::vector<std::uint8_t>& b) {
    return TxRequest::deserialize(b).has_value();
  });
}

TEST(AdversarialDecode, TxBundleMsg) {
  Fixture f;
  TxBundleMsg m;
  m.request_id = 1;
  m.txs.push_back(make_transaction(f.s, 1, 50, 7));
  m.txs.push_back(make_transaction(f.s, 2, 60, 7));
  battery(m.serialize(), [](const std::vector<std::uint8_t>& b) {
    return TxBundleMsg::deserialize(b).has_value();
  });
}

TEST(AdversarialDecode, SuspicionMsg) {
  Fixture f;
  SuspicionMsg m;
  m.suspect = 9;
  m.reporter = 2;
  m.epoch = 4;
  m.last_known = f.header();
  battery(m.serialize(), [&](const std::vector<std::uint8_t>& b) {
    return SuspicionMsg::deserialize(b, f.params).has_value();
  });
}

TEST(AdversarialDecode, ExposureEquivocation) {
  Fixture f;
  CommitmentLog fork(4, f.params);
  util::Rng rng2(4343);
  fork.append(random_txids(rng2, 5), 1);
  ExposureMsg m;
  m.accused = 4;
  m.verdict = 0xff;
  EquivocationEvidence eq;
  eq.accused = 4;
  eq.first = f.header();
  eq.second = fork.make_header(f.s, 16);
  m.equivocation = eq;
  battery(m.serialize(), [&](const std::vector<std::uint8_t>& b) {
    return ExposureMsg::deserialize(b, f.params).has_value();
  });
}

TEST(AdversarialDecode, ExposureBlockEvidence) {
  Fixture f;
  auto block = build_block(f.log, f.s, 1, crypto::Digest256{}, nullptr);
  ExposureMsg m;
  m.accused = 4;
  m.verdict = static_cast<std::uint8_t>(BlockVerdict::kReordered);
  BlockEvidence ev;
  ev.accused = 4;
  ev.block = block;
  ev.bundles.push_back(f.signed_bundle(1));
  ev.bundles.push_back(f.signed_bundle(2));
  m.block_evidence = std::move(ev);
  battery(m.serialize(), [&](const std::vector<std::uint8_t>& b) {
    return ExposureMsg::deserialize(b, f.params).has_value();
  });
}

TEST(AdversarialDecode, BlockMsg) {
  Fixture f;
  BlockMsg m;
  m.block = build_block(f.log, f.s, 7, crypto::Digest256{}, nullptr);
  battery(m.serialize(), [](const std::vector<std::uint8_t>& b) {
    return BlockMsg::deserialize(b).has_value();
  });
}

TEST(AdversarialDecode, BundleRequest) {
  Fixture f;
  BundleRequest m;
  m.creator = 4;
  m.seqnos = {1, 2};
  m.request_id = 8;
  battery(m.serialize(), [](const std::vector<std::uint8_t>& b) {
    return BundleRequest::deserialize(b).has_value();
  });
}

TEST(AdversarialDecode, BundleResponse) {
  Fixture f;
  BundleResponse m;
  m.request_id = 8;
  m.bundles.push_back(f.signed_bundle(1));
  m.bundles.push_back(f.signed_bundle(2));
  battery(m.serialize(), [](const std::vector<std::uint8_t>& b) {
    return BundleResponse::deserialize(b).has_value();
  });
}

TEST(AdversarialDecode, HeaderGossip) {
  Fixture f;
  HeaderGossip m;
  m.headers.push_back(f.header(8));
  m.headers.push_back(f.header(16));
  battery(m.serialize(), [&](const std::vector<std::uint8_t>& b) {
    return HeaderGossip::deserialize(b, f.params).has_value();
  });
}

TEST(AdversarialDecode, CommitmentHeader) {
  Fixture f;
  const auto valid = f.header().serialize();
  battery(valid, [&](const std::vector<std::uint8_t>& b) {
    return CommitmentHeader::deserialize(b, f.params).has_value();
  });
}

// Transaction::deserialize throws SerdeError instead of returning optional;
// wrap it so the same battery applies, and check the throwing contract
// directly on a truncation.
TEST(AdversarialDecode, Transaction) {
  Fixture f;
  const auto tx = make_transaction(f.s, 1, 50, 7);
  const auto valid = tx.serialize();
  std::vector<std::uint8_t> cut(valid.begin(), valid.end() - 1);
  EXPECT_THROW((void)Transaction::deserialize(cut), util::SerdeError);
  for (std::size_t at = 0; at < valid.size(); ++at) {
    const auto hostile = splat_ff(valid, at);
    try {
      (void)Transaction::deserialize(hostile);
    } catch (const util::SerdeError&) {
      // Clean rejection is the contract; anything else propagates and fails.
    }
  }
}

// --------------------------- targeted hostile length prefixes ---------------
// The sliding splat above covers count fields embedded in real messages; the
// cases below hand-craft minimal buffers whose *only* content is a hostile
// count, so the "claims 4 billion elements, supplies none" path is pinned
// explicitly for each decoder that loops on a count.

std::vector<std::uint8_t> u32_ff_buffer() {
  util::Writer w;
  w.u32(0xFFFFFFFFu);
  return w.take_u8();
}

TEST(AdversarialDecode, HostileCountTxRequest) {
  EXPECT_FALSE(TxRequest::deserialize(u32_ff_buffer()).has_value());
}

TEST(AdversarialDecode, HostileCountTxBundle) {
  util::Writer w;
  w.u32(0xFFFFFFFFu);  // tx count
  w.u64(1);            // request_id
  EXPECT_FALSE(TxBundleMsg::deserialize(w.take_u8()).has_value());
}

TEST(AdversarialDecode, HostileCountBundleRequest) {
  util::Writer w;
  w.u32(4);            // creator
  w.u32(0xFFFFFFFFu);  // seqno count
  EXPECT_FALSE(BundleRequest::deserialize(w.take_u8()).has_value());
}

TEST(AdversarialDecode, HostileCountBundleResponse) {
  util::Writer w;
  w.u32(0xFFFFFFFFu);  // bundle count
  w.u64(1);            // request_id
  EXPECT_FALSE(BundleResponse::deserialize(w.take_u8()).has_value());
}

TEST(AdversarialDecode, HostileCountHeaderGossip) {
  Fixture f;
  EXPECT_FALSE(HeaderGossip::deserialize(u32_ff_buffer(), f.params).has_value());
}

TEST(AdversarialDecode, HostileSignedBundleTxidCount) {
  util::Writer w;
  w.u32(4);            // owner
  w.u64(1);            // seqno
  w.u32(0xFFFFFFFFu);  // txid count with no txids behind it
  const auto bytes = w.take_u8();
  util::Reader r(bytes);
  EXPECT_FALSE(SignedBundle::read(r).has_value());
}

// Regression: Block::read used to reserve() the attacker-supplied segment and
// txid counts before reading a single element, so a 0xFFFFFFFF prefix forced
// a multi-gigabyte allocation (std::bad_alloc escaping the SerdeError catch).
// The reserve is now clamped by the bytes remaining in the buffer.
TEST(AdversarialDecode, HostileBlockSegmentCountDoesNotBalloon) {
  util::Writer w;
  w.u32(4);             // creator
  w.u64(1);             // height
  w.fixed(crypto::Digest256{});
  w.u64(2);             // commit_seqno
  w.u32(0xFFFFFFFFu);   // segment count, nothing behind it
  EXPECT_FALSE(BlockMsg::deserialize(w.take_u8()).has_value());

  util::Writer w2;
  w2.u32(4);
  w2.u64(1);
  w2.fixed(crypto::Digest256{});
  w2.u64(2);
  w2.u32(1);            // one segment...
  w2.u64(1);            // seqno
  w2.u32(0xFFFFFFFFu);  // ...claiming 4 billion txids
  EXPECT_FALSE(BlockMsg::deserialize(w2.take_u8()).has_value());
}

// ------------------------------- membership wire --------------------------
// SWIM messages carry attacker-influenceable gossip vectors (count prefix,
// state enum byte, incarnation), so they get the same battery as the core
// protocol messages. Their decoders take no params — capacity is implicit in
// the fixed 13-byte update encoding.

std::vector<membership::MemberUpdate> sample_gossip() {
  return {
      membership::MemberUpdate{3, membership::MemberState::kSuspect, 7},
      membership::MemberUpdate{9, membership::MemberState::kAlive, 2},
      membership::MemberUpdate{12, membership::MemberState::kConfirmed, 1},
  };
}

TEST(AdversarialDecode, MembershipPing) {
  membership::PingMsg m;
  m.seq = 41;
  m.gossip = sample_gossip();
  battery(m.serialize(), [](const std::vector<std::uint8_t>& b) {
    return membership::PingMsg::deserialize(b).has_value();
  });
}

TEST(AdversarialDecode, MembershipPingAck) {
  membership::PingAckMsg m;
  m.seq = 42;
  m.target = 6;
  m.gossip = sample_gossip();
  battery(m.serialize(), [](const std::vector<std::uint8_t>& b) {
    return membership::PingAckMsg::deserialize(b).has_value();
  });
}

TEST(AdversarialDecode, MembershipPingReq) {
  membership::PingReqMsg m;
  m.seq = 43;
  m.target = 6;
  m.gossip = sample_gossip();
  battery(m.serialize(), [](const std::vector<std::uint8_t>& b) {
    return membership::PingReqMsg::deserialize(b).has_value();
  });
}

TEST(AdversarialDecode, HostileCountMembershipGossip) {
  // "4 billion updates, zero bytes behind the count" must reject without
  // allocating.
  util::Writer w;
  w.u64(1);            // seq
  w.u32(0xFFFFFFFFu);  // gossip count
  EXPECT_FALSE(membership::PingMsg::deserialize(w.take_u8()).has_value());
}

// A hostile sketch capacity embedded in a commitment must be bounded by the
// receiver's params, not the sender's claim.
TEST(AdversarialDecode, HostileSketchCapacityRejected) {
  Fixture f;
  CommitmentParams big = f.params;
  big.sketch_capacity = 1024;
  CommitmentLog big_log(4, big);
  const auto bytes = big_log.make_header(f.s, 1024).serialize();
  EXPECT_FALSE(CommitmentHeader::deserialize(bytes, f.params).has_value());
}

}  // namespace
}  // namespace lo::core
