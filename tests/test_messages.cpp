// Wire-format tests: every protocol message serializes, roundtrips, and
// matches its wire_size() — which is what the bandwidth accountant charges,
// so these tests pin the Fig. 9 methodology to real bytes.
#include <gtest/gtest.h>

#include "core/commitment_log.hpp"
#include "core/inspection.hpp"
#include "core/messages.hpp"
#include "util/rng.hpp"

namespace lo::core {
namespace {

constexpr auto kMode = crypto::SignatureMode::kSimFast;

crypto::Signer signer(std::uint64_t id) {
  return crypto::Signer(crypto::derive_keypair(id, kMode), kMode);
}

std::vector<TxId> random_txids(util::Rng& rng, std::size_t n) {
  std::vector<TxId> out(n);
  for (auto& id : out) {
    for (auto& b : id) b = static_cast<std::uint8_t>(rng.next());
  }
  return out;
}

struct Fixture {
  CommitmentParams params;
  util::Rng rng{77};
  CommitmentLog log{4, params};
  crypto::Signer s = signer(4);

  Fixture() {
    log.append(random_txids(rng, 6), 1);
    log.append(random_txids(rng, 3), 2);
  }

  CommitmentHeader header(std::size_t cap = SIZE_MAX) {
    return log.make_header(s, cap);
  }

  Transaction tx(std::uint64_t nonce) {
    return make_transaction(s, nonce, 100 + nonce, 7);
  }

  SignedBundle signed_bundle(std::uint64_t seqno) {
    SignedBundle sb;
    sb.owner = 4;
    sb.seqno = seqno;
    sb.txids = log.bundle_by_seqno(seqno)->txids;
    sb.key = s.public_key();
    auto bytes = sb.signing_bytes();
    sb.sig = s.sign(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
    return sb;
  }
};

TEST(Messages, SyncRequestRoundTrip) {
  Fixture f;
  SyncRequest m;
  m.commitment = f.header(16);
  m.request_id = 99;
  const auto bytes = m.serialize();
  EXPECT_EQ(bytes.size(), m.wire_size());
  const auto back = SyncRequest::deserialize(bytes, f.params);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->request_id, 99u);
  EXPECT_EQ(back->commitment.count, m.commitment.count);
  EXPECT_TRUE(back->commitment.verify(kMode));
}

TEST(Messages, SyncResponseRoundTrip) {
  Fixture f;
  SyncResponse m;
  m.commitment = f.header(8);
  m.request_id = 5;
  m.decode_failed = true;
  m.want_short = {111, 222, 333};
  m.delta_back = random_txids(f.rng, 4);
  m.gossip.push_back(f.header(32));
  const auto bytes = m.serialize();
  EXPECT_EQ(bytes.size(), m.wire_size());
  const auto back = SyncResponse::deserialize(bytes, f.params);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->decode_failed);
  EXPECT_EQ(back->want_short, m.want_short);
  EXPECT_EQ(back->delta_back, m.delta_back);
  ASSERT_EQ(back->gossip.size(), 1u);
  EXPECT_TRUE(back->gossip[0].verify(kMode));
}

TEST(Messages, TxRequestRoundTrip) {
  Fixture f;
  TxRequest m;
  m.want = random_txids(f.rng, 3);
  m.want_short = {42};
  m.request_id = 77;
  const auto bytes = m.serialize();
  EXPECT_EQ(bytes.size(), m.wire_size());
  const auto back = TxRequest::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->want, m.want);
  EXPECT_EQ(back->want_short, m.want_short);
  EXPECT_EQ(back->request_id, 77u);
}

TEST(Messages, TxBundleRoundTrip) {
  Fixture f;
  TxBundleMsg m;
  m.request_id = 3;
  m.txs.push_back(f.tx(1));
  m.txs.push_back(f.tx(2));
  const auto bytes = m.serialize();
  EXPECT_EQ(bytes.size(), m.wire_size());
  const auto back = TxBundleMsg::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->txs.size(), 2u);
  EXPECT_EQ(back->txs[0].id, m.txs[0].id);
  EXPECT_EQ(back->txs[1].body, m.txs[1].body);
  // The transported transactions still prevalidate.
  PrevalidationPolicy p;
  p.sig_mode = kMode;
  EXPECT_TRUE(prevalidate(back->txs[0], p));
}

TEST(Messages, SuspicionRoundTripWithAndWithoutHeader) {
  Fixture f;
  SuspicionMsg m;
  m.suspect = 9;
  m.reporter = 2;
  m.epoch = 14;
  m.retract = true;
  {
    const auto bytes = m.serialize();
    EXPECT_EQ(bytes.size(), m.wire_size());
    const auto back = SuspicionMsg::deserialize(bytes, f.params);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->retract);
    EXPECT_FALSE(back->last_known.has_value());
  }
  m.retract = false;
  m.last_known = f.header(16);
  {
    const auto bytes = m.serialize();
    EXPECT_EQ(bytes.size(), m.wire_size());
    const auto back = SuspicionMsg::deserialize(bytes, f.params);
    ASSERT_TRUE(back.has_value());
    ASSERT_TRUE(back->last_known.has_value());
    EXPECT_TRUE(back->last_known->verify(kMode));
  }
}

TEST(Messages, ExposureEquivocationRoundTripStaysVerifiable) {
  Fixture f;
  // Build a genuine fork so the transported evidence verifies.
  CommitmentLog fork(4, f.params);
  util::Rng rng2(78);
  fork.append(random_txids(rng2, 5), 1);

  ExposureMsg m;
  m.accused = 4;
  m.verdict = 0xff;
  EquivocationEvidence eq;
  eq.accused = 4;
  eq.first = f.header();
  eq.second = fork.make_header(f.s);
  m.equivocation = eq;
  ASSERT_TRUE(m.verify(kMode));

  const auto bytes = m.serialize();
  EXPECT_EQ(bytes.size(), m.wire_size());
  const auto back = ExposureMsg::deserialize(bytes, f.params);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->verify(kMode)) << "evidence must survive the wire";
}

TEST(Messages, ExposureBlockEvidenceRoundTrip) {
  Fixture f;
  auto block = build_block(f.log, f.s, 1, crypto::Digest256{}, nullptr);
  std::swap(block.segments[0].txids[0], block.segments[0].txids[1]);
  auto msg_bytes = block.signing_bytes();
  block.sig =
      f.s.sign(std::span<const std::uint8_t>(msg_bytes.data(), msg_bytes.size()));

  ExposureMsg m;
  m.accused = 4;
  m.verdict = static_cast<std::uint8_t>(BlockVerdict::kReordered);
  BlockEvidence ev;
  ev.accused = 4;
  ev.block = block;
  ev.bundles.push_back(f.signed_bundle(1));
  ev.bundles.push_back(f.signed_bundle(2));
  m.block_evidence = std::move(ev);
  ASSERT_TRUE(m.verify(kMode));

  const auto bytes = m.serialize();
  EXPECT_EQ(bytes.size(), m.wire_size());
  const auto back = ExposureMsg::deserialize(bytes, f.params);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->verify(kMode));
}

TEST(Messages, BlockMsgRoundTrip) {
  Fixture f;
  BlockMsg m;
  m.block = build_block(f.log, f.s, 7, crypto::Digest256{}, nullptr);
  const auto bytes = m.serialize();
  EXPECT_EQ(bytes.size(), m.wire_size());
  const auto back = BlockMsg::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->block.hash(), m.block.hash());
  EXPECT_TRUE(back->block.verify(kMode));
}

TEST(Messages, BundleRequestResponseRoundTrip) {
  Fixture f;
  BundleRequest req;
  req.creator = 4;
  req.seqnos = {1, 2};
  req.request_id = 12;
  const auto rb = req.serialize();
  EXPECT_EQ(rb.size(), req.wire_size());
  const auto req_back = BundleRequest::deserialize(rb);
  ASSERT_TRUE(req_back.has_value());
  EXPECT_EQ(req_back->seqnos, req.seqnos);

  BundleResponse resp;
  resp.request_id = 12;
  resp.bundles.push_back(f.signed_bundle(1));
  resp.bundles.push_back(f.signed_bundle(2));
  const auto bb = resp.serialize();
  EXPECT_EQ(bb.size(), resp.wire_size());
  const auto resp_back = BundleResponse::deserialize(bb);
  ASSERT_TRUE(resp_back.has_value());
  ASSERT_EQ(resp_back->bundles.size(), 2u);
  EXPECT_TRUE(resp_back->bundles[0].verify(kMode));
  EXPECT_EQ(resp_back->bundles[1].txids, resp.bundles[1].txids);
}

TEST(Messages, HeaderGossipRoundTrip) {
  Fixture f;
  HeaderGossip m;
  m.headers.push_back(f.header(8));
  m.headers.push_back(f.header(64));
  const auto bytes = m.serialize();
  EXPECT_EQ(bytes.size(), m.wire_size());
  const auto back = HeaderGossip::deserialize(bytes, f.params);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->headers.size(), 2u);
  EXPECT_TRUE(back->headers[0].verify(kMode));
  EXPECT_TRUE(back->headers[1].verify(kMode));
}

TEST(Messages, TruncatedBytesRejected) {
  Fixture f;
  SyncRequest m;
  m.commitment = f.header(16);
  m.request_id = 1;
  auto bytes = m.serialize();
  bytes.pop_back();
  EXPECT_FALSE(SyncRequest::deserialize(bytes, f.params).has_value());
  bytes.push_back(0);
  bytes.push_back(0);
  EXPECT_FALSE(SyncRequest::deserialize(bytes, f.params).has_value());
}

TEST(Messages, OversizedSketchCapacityRejected) {
  // A peer cannot force us to allocate a sketch beyond our configured
  // maximum: the embedded capacity is validated against params.
  Fixture f;
  CommitmentParams big = f.params;
  big.sketch_capacity = 4096;
  CommitmentLog big_log(4, big);
  SyncRequest m;
  m.commitment = big_log.make_header(f.s, 4096);
  m.request_id = 1;
  const auto bytes = m.serialize();
  EXPECT_FALSE(SyncRequest::deserialize(bytes, f.params).has_value())
      << "capacity 4096 must be rejected under default params (128)";
}

TEST(Messages, Block250ByteTxAccounting) {
  // The Fig. 9 exclusion rule hinges on tx bodies being exactly the paper's
  // 250 bytes inside bundles.
  Fixture f;
  TxBundleMsg m;
  m.txs.push_back(f.tx(9));
  EXPECT_EQ(m.wire_size(), 4u + 8u + kTxWireSize);
}

}  // namespace
}  // namespace lo::core
