// Harness-level tests: LoNetwork assembly invariants, metric plumbing,
// detection-time computation, coverage helper, workload control.
#include <gtest/gtest.h>

#include "harness/lo_network.hpp"
#include "test_net_util.hpp"

namespace lo::harness {
namespace {

constexpr auto kMode = test::kFastSig;

using test::net_cfg;

workload::WorkloadConfig load_of(double tps, std::uint64_t seed) {
  return test::load_cfg(tps, seed);
}

TEST(Harness, MaliciousCountMatchesFraction) {
  for (double f : {0.0, 0.1, 0.25, 0.5}) {
    LoNetwork net(net_cfg(20, 3, f));
    std::size_t count = 0;
    for (bool b : net.malicious_mask()) count += b ? 1 : 0;
    EXPECT_EQ(count, net.malicious_count());
    EXPECT_EQ(count, static_cast<std::size_t>(f * 20 + 0.5));
    EXPECT_EQ(net.correct_count(), 20 - count);
  }
}

TEST(Harness, HonestSubgraphIsConnected) {
  auto cfg = net_cfg(30, 5, 0.4);
  cfg.malicious.censor_txs = true;
  LoNetwork net(cfg);
  std::vector<bool> honest(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) {
    honest[i] = !net.malicious_mask()[i];
  }
  EXPECT_TRUE(net.topology().connected_among(honest));
  EXPECT_TRUE(net.topology().connected());
}

TEST(Harness, NeighborsMatchTopology) {
  LoNetwork net(net_cfg(12, 7));
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.node(i).neighbors(),
              net.topology().neighbors(static_cast<core::NodeId>(i)));
  }
}

TEST(Harness, WorkloadInjectsAtConfiguredRate) {
  LoNetwork net(net_cfg(10, 9));
  net.start_workload(load_of(20.0, 11));
  net.run_for(20.0);
  // Poisson(400): 5-sigma band.
  EXPECT_NEAR(static_cast<double>(net.txs_injected()), 400.0, 100.0);
}

TEST(Harness, StopWorkloadStopsInjection) {
  LoNetwork net(net_cfg(10, 13));
  net.start_workload(load_of(20.0, 15));
  net.run_for(5.0);
  net.stop_workload();
  const auto at_stop = net.txs_injected();
  net.run_for(10.0);
  EXPECT_LE(net.txs_injected(), at_stop + 1);  // at most one in-flight arrival
}

TEST(Harness, WorkloadAvoidsMaliciousEntryNodes) {
  auto cfg = net_cfg(10, 17, 0.3);
  cfg.malicious.censor_txs = true;
  cfg.malicious.ignore_requests = true;
  LoNetwork net(cfg);
  net.start_workload(load_of(10.0, 19));
  net.run_for(5.0);
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) {
      EXPECT_EQ(net.node(i).log().count(), 0u)
          << "client submitted to a censoring node";
    }
  }
}

TEST(Harness, CoverageReportsFraction) {
  LoNetwork net(net_cfg(8, 21));
  crypto::Signer client(crypto::derive_keypair(50, kMode), kMode);
  const auto tx = core::make_transaction(client, 1, 9, 0);
  EXPECT_EQ(net.coverage(tx.id), 0.0);
  net.node(0).submit_transaction(tx);
  EXPECT_NEAR(net.coverage(tx.id), 1.0 / 8.0, 1e-9);
  net.run_for(8.0);
  EXPECT_EQ(net.coverage(tx.id), 1.0);
}

TEST(Harness, DetectionTimesEmptyWithoutMalicious) {
  LoNetwork net(net_cfg(8, 23));
  net.start_workload(load_of(5.0, 25));
  net.run_for(5.0);
  const auto t = net.detection_times();
  EXPECT_LT(t.suspicion_complete_s, 0.0);
  EXPECT_LT(t.exposure_complete_s, 0.0);
  EXPECT_LT(t.exposure_spread_s, 0.0);
}

TEST(Harness, DetectionTimesOrdering) {
  auto cfg = net_cfg(16, 27, 0.15);
  cfg.malicious.equivocate = true;
  LoNetwork net(cfg);
  net.start_workload(load_of(8.0, 29));
  net.run_for(40.0);
  const auto t = net.detection_times();
  ASSERT_GE(t.exposure_complete_s, 0.0);
  EXPECT_LE(t.first_exposure_s, t.exposure_complete_s);
  ASSERT_GE(t.exposure_spread_s, 0.0);
  EXPECT_LE(t.exposure_spread_s, t.exposure_complete_s - 0.0);
}

TEST(Harness, BlockProductionRespectsCorrectLeaderFilter) {
  auto cfg = net_cfg(12, 31, 0.25);
  cfg.malicious.reorder_block = true;
  LoNetwork net(cfg);
  net.start_workload(load_of(8.0, 33));
  consensus::LeaderConfig lc;
  lc.mean_block_interval = 3 * sim::kSecond;
  lc.exponential_intervals = false;
  net.start_block_production(lc, /*correct_leaders_only=*/true);
  net.run_for(30.0);
  ASSERT_GT(net.chain().height(), 3u);
  for (const auto& block : net.chain().blocks()) {
    EXPECT_FALSE(net.malicious_mask()[block.creator])
        << "malicious leader elected despite filter";
  }
  // With only honest leaders there must be no exposures.
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(net.node(i).registry().exposed().empty());
  }
}

TEST(Harness, BlockLatencyTracksOnlyFirstInclusion) {
  LoNetwork net(net_cfg(10, 35));
  net.start_workload(load_of(10.0, 37));
  consensus::LeaderConfig lc;
  lc.mean_block_interval = 4 * sim::kSecond;
  lc.exponential_intervals = false;
  net.start_block_production(lc);
  net.run_for(30.0);
  // Each injected tx is counted at most once even though later blocks
  // re-include everything (no settlement pruning in the stub).
  EXPECT_LE(net.block_latency().count(), net.txs_injected());
  EXPECT_GT(net.block_latency().count(), 0u);
}

TEST(Harness, SeedsChangeOutcomes) {
  auto run = [](std::uint64_t seed) {
    LoNetwork net(net_cfg(10, seed));
    net.start_workload(load_of(10.0, seed + 1));
    net.run_for(5.0);
    return net.sim().bandwidth().total_bytes();
  };
  EXPECT_NE(run(1), run(2));
}

}  // namespace
}  // namespace lo::harness
