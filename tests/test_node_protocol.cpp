// Protocol-level LoNode tests on tiny networks: reconciliation mechanics,
// commitments in received order (Alg. 1), suspicion timers and the
// mempool-censorship check — at a finer grain than the integration suite.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/lo_network.hpp"

namespace lo {
namespace {

constexpr auto kMode = crypto::SignatureMode::kSimFast;

harness::NetworkConfig tiny(std::size_t n, std::uint64_t seed) {
  harness::NetworkConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = seed;
  cfg.city_latency = false;  // constant 50 ms for exact timing assertions
  cfg.node.sig_mode = kMode;
  cfg.node.prevalidation.sig_mode = kMode;
  return cfg;
}

core::Transaction make_tx(std::uint64_t nonce, std::uint64_t fee = 100) {
  crypto::Signer client(crypto::derive_keypair(7777, kMode), kMode);
  return core::make_transaction(client, nonce, fee, 0);
}

TEST(NodeProtocol, SubmitCommitsImmediately) {
  harness::LoNetwork net(tiny(2, 1));
  const auto tx = make_tx(1);
  net.node(0).submit_transaction(tx);
  EXPECT_TRUE(net.node(0).has_tx(tx.id));
  EXPECT_TRUE(net.node(0).log().contains(tx.id));
  EXPECT_EQ(net.node(0).log().seqno(), 1u);
}

TEST(NodeProtocol, InvalidTxRejected) {
  harness::LoNetwork net(tiny(2, 2));
  auto tx = make_tx(1);
  tx.body[0] ^= 1;  // id mismatch
  net.node(0).submit_transaction(tx);
  EXPECT_FALSE(net.node(0).has_tx(tx.id));
  EXPECT_EQ(net.node(0).log().count(), 0u);
}

TEST(NodeProtocol, LowFeeTxRejectedByPolicy) {
  auto cfg = tiny(2, 3);
  cfg.node.prevalidation.min_fee = 50;
  harness::LoNetwork net(cfg);
  const auto tx = make_tx(1, 10);
  net.node(0).submit_transaction(tx);
  EXPECT_FALSE(net.node(0).has_tx(tx.id));
}

TEST(NodeProtocol, PairwiseReconciliationTransfersTx) {
  harness::LoNetwork net(tiny(2, 4));
  const auto tx = make_tx(1);
  net.node(0).submit_transaction(tx);
  net.run_for(3.0);
  EXPECT_TRUE(net.node(1).has_tx(tx.id));
  EXPECT_TRUE(net.node(1).log().contains(tx.id));
  // Receiver committed it as a bundle sourced from node 0.
  ASSERT_FALSE(net.node(1).log().bundles().empty());
  EXPECT_EQ(net.node(1).log().bundles()[0].source, 0u);
}

TEST(NodeProtocol, CommitmentsFollowReceivedOrder) {
  harness::LoNetwork net(tiny(2, 5));
  std::vector<core::TxId> ids;
  for (std::uint64_t n = 1; n <= 5; ++n) {
    const auto tx = make_tx(n);
    ids.push_back(tx.id);
    net.node(0).submit_transaction(tx);
  }
  net.run_for(3.0);
  // Node 0's log records submission order.
  const auto& order0 = net.node(0).log().order();
  ASSERT_EQ(order0.size(), 5u);
  EXPECT_EQ(order0, ids);
  // Node 1 committed them in the order advertised by node 0 (one bundle).
  const auto& order1 = net.node(1).log().order();
  EXPECT_EQ(order1, ids);
}

TEST(NodeProtocol, RegistryTracksPeerCommitments) {
  harness::LoNetwork net(tiny(2, 6));
  net.node(0).submit_transaction(make_tx(1));
  net.run_for(3.0);
  const auto* h = net.node(1).registry().latest(0);
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->count, 1u);
  EXPECT_TRUE(h->verify(kMode));
}

TEST(NodeProtocol, SilentPeerSuspectedAfterTimeoutAndRetries) {
  auto cfg = tiny(2, 7);
  cfg.malicious_fraction = 0.5;  // node pool of 2 -> 1 malicious
  cfg.malicious.ignore_requests = true;
  harness::LoNetwork net(cfg);
  std::size_t bad = net.malicious_mask()[0] ? 0u : 1u;
  std::size_t good = 1 - bad;
  net.node(good).submit_transaction(make_tx(1));
  // Exponential backoff: timeouts at ~1+2+4+8 s (+/- 20% jitter) before the
  // suspicion fires, plus the first sync round offset.
  net.run_for(2.0);
  EXPECT_FALSE(net.node(good).registry().is_suspected(
      static_cast<core::NodeId>(bad)));
  net.run_for(20.0);
  EXPECT_TRUE(net.node(good).registry().is_suspected(
      static_cast<core::NodeId>(bad)));
}

TEST(NodeProtocol, RecoveredPeerIsUnsuspected) {
  // Accuracy/temporal (Sec. 3.2): a correct node is not perpetually
  // suspected. Simulate a transient partition with a delivery filter.
  auto cfg = tiny(2, 8);
  harness::LoNetwork net(cfg);
  net.node(0).submit_transaction(make_tx(1));
  bool partitioned = true;
  net.sim().set_delivery_filter(
      [&partitioned](core::NodeId, core::NodeId to) {
        return !(partitioned && to == 1);  // node 1 unreachable
      });
  net.run_for(22.0);  // backed-off retries need ~15 s (+ jitter) to exhaust
  EXPECT_TRUE(net.node(0).registry().is_suspected(1));
  partitioned = false;  // heal; node 0 keeps new syncs going
  net.node(0).submit_transaction(make_tx(2));
  net.run_for(10.0);
  EXPECT_FALSE(net.node(0).registry().is_suspected(1))
      << "healed peer must be unsuspected after direct contact";
  EXPECT_TRUE(net.node(1).has_tx(make_tx(2).id));
}

TEST(NodeProtocol, CensoringPeerGetsSuspectedByCensorshipCheck) {
  auto cfg = tiny(2, 9);
  cfg.malicious_fraction = 0.5;
  cfg.malicious.censor_txs = true;  // responds, but never commits foreign txs
  harness::LoNetwork net(cfg);
  std::size_t bad = net.malicious_mask()[0] ? 0u : 1u;
  std::size_t good = 1 - bad;
  net.node(good).submit_transaction(make_tx(1));
  net.run_for(15.0);
  EXPECT_TRUE(net.node(good).registry().is_suspected(
      static_cast<core::NodeId>(bad)))
      << "sketch-based censorship check should flag the dropped delta";
}

TEST(NodeProtocol, ThreeNodeRelayPropagation) {
  // Line topology: 0 - 1 - 2 (forced via custom neighbors).
  harness::LoNetwork net(tiny(3, 10));
  net.node(0).set_neighbors({1});
  net.node(1).set_neighbors({0, 2});
  net.node(2).set_neighbors({1});
  const auto tx = make_tx(1);
  net.node(0).submit_transaction(tx);
  net.run_for(6.0);
  EXPECT_TRUE(net.node(2).has_tx(tx.id)) << "tx must cross two hops";
  // Node 2 learned it from node 1.
  ASSERT_FALSE(net.node(2).log().bundles().empty());
  EXPECT_EQ(net.node(2).log().bundles()[0].source, 1u);
}

TEST(NodeProtocol, BandwidthUsesRealMessageSizes) {
  harness::LoNetwork net(tiny(2, 11));
  net.node(0).submit_transaction(make_tx(1));
  net.run_for(3.0);
  const auto& by_class = net.sim().bandwidth().by_class();
  ASSERT_TRUE(by_class.count("lo.sync_req"));
  ASSERT_TRUE(by_class.count("lo.sync_resp"));
  ASSERT_TRUE(by_class.count("lo.txs"));
  // A sync request carries the commitment: clock (68B) + truncated sketch
  // (>= 8 syndromes = 32B) + header/key/sig (~150B) + the explicit delta.
  const auto& req = by_class.at("lo.sync_req");
  EXPECT_GT(req.bytes / req.messages, 250u);
  EXPECT_LT(req.bytes / req.messages, 2000u);
  // tx bodies: 250 bytes each plus bundle framing.
  const auto& txs = by_class.at("lo.txs");
  EXPECT_GE(txs.bytes / txs.messages, 250u);
}

TEST(NodeProtocol, QuiescentWhenConverged) {
  harness::LoNetwork net(tiny(2, 12));
  net.node(0).submit_transaction(make_tx(1));
  net.run_for(5.0);
  const auto bytes_before = net.sim().bandwidth().total_bytes();
  net.run_for(5.0);
  const auto bytes_after = net.sim().bandwidth().total_bytes();
  // Converged nodes skip sync rounds entirely (watermark test in
  // send_sync_request), so no further protocol traffic flows.
  EXPECT_EQ(bytes_after, bytes_before);
}

TEST(NodeProtocol, EquivocatorExposedWhenHonestSubgraphConnected) {
  // Sec. 6.2 precondition: correct nodes stay connected among themselves.
  // Node 1 equivocates towards its even-id peer (0) and serves the real log
  // to node 3; the honest edge 0-3 lets the two signed stories meet.
  auto cfg = tiny(4, 13);
  harness::LoNetwork net(cfg);
  net.node(1).behavior().equivocate = true;
  net.node(0).set_neighbors({1, 3});
  net.node(1).set_neighbors({0, 3});
  net.node(2).set_neighbors({3});
  net.node(3).set_neighbors({0, 1, 2});
  for (std::uint64_t n = 1; n <= 8; ++n) {
    net.node(0).submit_transaction(make_tx(n));
  }
  net.run_for(20.0);
  const bool exposed = net.node(0).registry().is_exposed(1) ||
                       net.node(3).registry().is_exposed(1);
  EXPECT_TRUE(exposed) << "fork should be caught once headers meet";
}

TEST(NodeProtocol, BridgeEquivocatorIsAtLeastSuspected) {
  // When the equivocator is the only bridge (a line), no correct node can
  // assemble both stories — exposure is impossible — but the censored fork
  // still fails coverage checks, so the attacker ends up suspected.
  auto cfg = tiny(3, 14);
  harness::LoNetwork net(cfg);
  net.node(1).behavior().equivocate = true;
  net.node(0).set_neighbors({1});
  net.node(1).set_neighbors({0, 2});
  net.node(2).set_neighbors({1});
  for (std::uint64_t n = 1; n <= 8; ++n) {
    net.node(0).submit_transaction(make_tx(n));
  }
  net.run_for(30.0);
  EXPECT_TRUE(net.node(0).registry().is_suspected(1) ||
              net.node(0).registry().is_exposed(1))
      << "fork censorship must at least trip the coverage check";
}

TEST(NodeProtocol, NeighborRotationKeepsConvergence) {
  auto cfg = tiny(16, 71);
  cfg.node.rotate_interval = 2 * sim::kSecond;
  harness::LoNetwork net(cfg);
  for (std::uint64_t n = 1; n <= 10; ++n) {
    net.node(n % 16).submit_transaction(make_tx(n));
  }
  net.run_for(20.0);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.node(i).mempool_size(), 10u) << "node " << i;
    EXPECT_TRUE(net.node(i).registry().suspected().empty());
  }
}

TEST(NodeProtocol, RotationDropsExposedPeers) {
  auto cfg = tiny(12, 73);
  cfg.node.rotate_interval = 1 * sim::kSecond;
  cfg.malicious_fraction = 0.1;  // one equivocator
  cfg.malicious.equivocate = true;
  harness::LoNetwork net(cfg);
  // Feed traffic in waves so every rotation epoch carries fresh divergent
  // commitments past the equivocator's even- and odd-id peers; a single
  // upfront burst can settle before the fork ever crosses an auditor pair.
  for (std::uint64_t wave = 0; wave < 4; ++wave) {
    for (std::uint64_t k = 1; k <= 10; ++k) {
      const std::uint64_t n = wave * 10 + k;
      std::size_t target = n % 12;
      if (!net.malicious_mask()[target]) {
        net.node(target).submit_transaction(make_tx(n));
      }
    }
    net.run_for(10.0);
  }
  net.run_for(20.0);
  std::size_t bad = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) bad = i;
  }
  // Once exposed, the attacker disappears from honest neighbor sets.
  std::size_t still_linked = 0;
  std::size_t exposed_at = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) continue;
    const auto& reg = net.node(i).registry();
    if (!reg.is_exposed(static_cast<core::NodeId>(bad))) continue;
    ++exposed_at;
    const auto& nb = net.node(i).neighbors();
    if (std::find(nb.begin(), nb.end(), static_cast<core::NodeId>(bad)) !=
        nb.end()) {
      ++still_linked;
    }
  }
  EXPECT_GT(exposed_at, 0u);
  EXPECT_EQ(still_linked, 0u)
      << "rotation must purge exposed peers from neighbor sets";
}

}  // namespace
}  // namespace lo
