// GF(2^m) algebra tests: field axioms (parameterized across field sizes),
// modulus irreducibility, polynomial arithmetic, Berlekamp–Massey and the
// trace-based root finder.
#include <gtest/gtest.h>

#include "gf/berlekamp_massey.hpp"
#include "gf/gf2m.hpp"
#include "gf/poly.hpp"
#include "gf/root_find.hpp"
#include "util/rng.hpp"

namespace lo::gf {
namespace {

class FieldTest : public ::testing::TestWithParam<unsigned> {
 protected:
  Field field() const { return Field(GetParam()); }
};

TEST_P(FieldTest, ModulusIsIrreducible) {
  EXPECT_TRUE(gf2_poly_is_irreducible(field().modulus()));
}

TEST_P(FieldTest, AdditionIsXor) {
  const Field f = field();
  util::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const auto a = f.map_nonzero(rng.next());
    const auto b = f.map_nonzero(rng.next());
    EXPECT_EQ(f.add(a, b), a ^ b);
    EXPECT_EQ(f.add(a, a), 0u);  // char 2
  }
}

TEST_P(FieldTest, MultiplicationAxioms) {
  const Field f = field();
  util::Rng rng(GetParam() * 31);
  for (int i = 0; i < 50; ++i) {
    const auto a = f.map_nonzero(rng.next());
    const auto b = f.map_nonzero(rng.next());
    const auto c = f.map_nonzero(rng.next());
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));                      // commutative
    EXPECT_EQ(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c));  // associative
    EXPECT_EQ(f.mul(a, f.add(b, c)),
              f.add(f.mul(a, b), f.mul(a, c)));               // distributive
    EXPECT_EQ(f.mul(a, 1), a);                                // identity
    EXPECT_EQ(f.mul(a, 0), 0u);                               // annihilator
  }
}

TEST_P(FieldTest, ElementsStayInRange) {
  const Field f = field();
  util::Rng rng(GetParam() * 7);
  for (int i = 0; i < 100; ++i) {
    const auto a = f.map_nonzero(rng.next());
    const auto b = f.map_nonzero(rng.next());
    EXPECT_LE(f.mul(a, b), f.order());
    EXPECT_GE(a, 1u);
    EXPECT_LE(a, f.order());
  }
}

TEST_P(FieldTest, InverseIsCorrect) {
  const Field f = field();
  util::Rng rng(GetParam() * 13);
  for (int i = 0; i < 30; ++i) {
    const auto a = f.map_nonzero(rng.next());
    EXPECT_EQ(f.mul(a, f.inv(a)), 1u);
  }
}

TEST_P(FieldTest, FrobeniusFixedField) {
  // a^(2^m) == a for all a (Frobenius is the identity after m squarings).
  const Field f = field();
  util::Rng rng(GetParam() * 17);
  for (int i = 0; i < 10; ++i) {
    auto a = f.map_nonzero(rng.next());
    auto x = a;
    for (unsigned k = 0; k < f.bits(); ++k) x = f.sqr(x);
    EXPECT_EQ(x, a);
  }
}

TEST_P(FieldTest, PowMatchesRepeatedMul) {
  const Field f = field();
  const auto a = f.map_nonzero(0x1234567890abcdefULL);
  std::uint64_t acc = 1;
  for (unsigned e = 0; e < 16; ++e) {
    EXPECT_EQ(f.pow(a, e), acc);
    acc = f.mul(acc, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FieldTest,
                         ::testing::Values(8u, 16u, 24u, 32u, 48u, 63u));

TEST(Field, UnsupportedSizeThrows) {
  EXPECT_THROW(Field(7), std::invalid_argument);
  EXPECT_THROW(Field(64), std::invalid_argument);
}

TEST(Field, ClmulAndPortableAgree) {
  // The clmul fast path is only active for m <= 32; cross-check it against a
  // hand-rolled schoolbook reference on GF(2^32).
  const Field f(32);
  auto reference = [&f](std::uint64_t a, std::uint64_t b) {
    std::uint64_t r = 0;
    const std::uint64_t top = 1ULL << 32;
    while (b != 0) {
      if (b & 1) r ^= a;
      b >>= 1;
      a <<= 1;
      if (a & top) a ^= f.modulus();
    }
    return r;
  };
  util::Rng rng(404);
  for (int i = 0; i < 1000; ++i) {
    const auto a = f.map_nonzero(rng.next());
    const auto b = f.map_nonzero(rng.next());
    EXPECT_EQ(f.mul(a, b), reference(a, b));
  }
}

TEST(Irreducibility, KnownReducibleRejected) {
  // x^2 (reducible), x^2+1 = (x+1)^2, x^4+x^2+1 = (x^2+x+1)^2.
  EXPECT_FALSE(gf2_poly_is_irreducible(0b100));
  EXPECT_FALSE(gf2_poly_is_irreducible(0b101));
  EXPECT_FALSE(gf2_poly_is_irreducible(0b10101));
}

TEST(Irreducibility, KnownIrreducibleAccepted) {
  // x^2+x+1, x^3+x+1, x^8+x^4+x^3+x+1 (AES).
  EXPECT_TRUE(gf2_poly_is_irreducible(0b111));
  EXPECT_TRUE(gf2_poly_is_irreducible(0b1011));
  EXPECT_TRUE(gf2_poly_is_irreducible(0x11b));
}

// ---------------------------------------------------------- polynomials ----

TEST(Poly, DegreeAndTrim) {
  Poly p{1, 2, 0, 0};
  poly_trim(p);
  EXPECT_EQ(poly_deg(p), 1);
  Poly zero{0, 0};
  poly_trim(zero);
  EXPECT_EQ(poly_deg(zero), -1);
}

TEST(Poly, AddIsSubtract) {
  Poly a{1, 2, 3};
  EXPECT_TRUE(poly_add(a, a).empty());
}

TEST(Poly, MulDivRoundTrip) {
  const Field f(32);
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Poly a, b;
    for (int i = 0; i < 5; ++i) a.push_back(f.map_nonzero(rng.next()));
    for (int i = 0; i < 3; ++i) b.push_back(f.map_nonzero(rng.next()));
    const Poly prod = poly_mul(f, a, b);
    EXPECT_EQ(poly_deg(prod), poly_deg(a) + poly_deg(b));
    // prod / b == a and prod mod b == 0.
    EXPECT_EQ(poly_div(f, prod, b), a);
    EXPECT_TRUE(poly_mod(f, prod, b).empty());
  }
}

TEST(Poly, ModIsRemainder) {
  const Field f(16);
  util::Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    Poly a, b;
    for (int i = 0; i < 7; ++i) a.push_back(rng.next() & 0xffff);
    for (int i = 0; i < 4; ++i) b.push_back(f.map_nonzero(rng.next()));
    poly_trim(a);
    if (a.empty()) continue;
    const Poly q = poly_div(f, a, b);
    const Poly r = poly_mod(f, a, b);
    EXPECT_LT(poly_deg(r), poly_deg(b));
    EXPECT_EQ(poly_add(poly_mul(f, q, b), r), a);  // a = qb + r
  }
}

TEST(Poly, EvalHorner) {
  const Field f(32);
  // p(x) = x^2 + 3x + 2 evaluated via field ops.
  const Poly p{2, 3, 1};
  const std::uint64_t x = 7;
  const std::uint64_t want = f.add(f.add(f.mul(x, x), f.mul(3, x)), 2);
  EXPECT_EQ(poly_eval(f, p, x), want);
}

TEST(Poly, SqrMatchesMul) {
  const Field f(32);
  util::Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    Poly a;
    for (int i = 0; i < 6; ++i) a.push_back(rng.next() & 0xffffffff);
    poly_trim(a);
    EXPECT_EQ(poly_sqr(f, a), poly_mul(f, a, a));
  }
}

TEST(Poly, GcdOfMultiples) {
  const Field f(32);
  // g = (x + 3)(x + 5); a = g*(x+7); b = g*(x+11). gcd(a,b) == monic g.
  const Poly g = poly_mul(f, Poly{3, 1}, Poly{5, 1});
  const Poly a = poly_mul(f, g, Poly{7, 1});
  const Poly b = poly_mul(f, g, Poly{11, 1});
  EXPECT_EQ(poly_gcd(f, a, b), g);  // g is already monic
}

// ----------------------------------------------------- Berlekamp–Massey ----

TEST(BerlekampMassey, RecoverKnownLfsr) {
  const Field f(32);
  // Sequence from connection poly C(x) = 1 + c1 x + c2 x^2:
  // s_n = c1*s_{n-1} + c2*s_{n-2}.
  const std::uint64_t c1 = 7, c2 = 11;
  std::vector<std::uint64_t> s{1, 2};
  for (int i = 2; i < 12; ++i) {
    s.push_back(f.add(f.mul(c1, s[i - 1]), f.mul(c2, s[i - 2])));
  }
  const Poly c = berlekamp_massey(f, s);
  ASSERT_EQ(poly_deg(c), 2);
  EXPECT_EQ(c[0], 1u);
  EXPECT_EQ(c[1], c1);
  EXPECT_EQ(c[2], c2);
}

TEST(BerlekampMassey, ZeroSequenceGivesTrivialPoly) {
  const Field f(32);
  const Poly c = berlekamp_massey(f, std::vector<std::uint64_t>(8, 0));
  EXPECT_EQ(poly_deg(c), 0);
  EXPECT_EQ(c[0], 1u);
}

TEST(BerlekampMassey, PowerSumsYieldLocator) {
  const Field f(32);
  // Syndromes s_j = sum_i x_i^j for j = 1..2t decode to the locator whose
  // reciprocal has exactly the x_i as roots.
  const std::vector<std::uint64_t> xs{5, 9, 1234567};
  std::vector<std::uint64_t> s;
  for (int j = 1; j <= 8; ++j) {
    std::uint64_t acc = 0;
    for (auto x : xs) acc ^= f.pow(x, static_cast<std::uint64_t>(j));
    s.push_back(acc);
  }
  const Poly loc = berlekamp_massey(f, s);
  ASSERT_EQ(poly_deg(loc), 3);
  Poly recip(loc.rbegin(), loc.rend());
  poly_trim(recip);
  for (auto x : xs) {
    EXPECT_EQ(poly_eval(f, recip, x), 0u) << "x=" << x;
  }
}

// ---------------------------------------------------------- root finding ----

TEST(RootFind, FindsAllRootsOfSplitPoly) {
  const Field f(32);
  util::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    std::set<std::uint64_t> roots;
    while (roots.size() < 8) roots.insert(f.map_nonzero(rng.next()));
    Poly p{1};
    for (auto r : roots) p = poly_mul(f, p, Poly{r, 1});
    auto found = find_roots(f, p, trial);
    ASSERT_TRUE(found.has_value());
    std::set<std::uint64_t> got(found->begin(), found->end());
    EXPECT_EQ(got, roots);
  }
}

TEST(RootFind, SingleLinearFactor) {
  const Field f(32);
  auto found = find_roots(f, Poly{42, 1}, 1);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->size(), 1u);
  EXPECT_EQ((*found)[0], 42u);
}

TEST(RootFind, RejectsIrreducibleQuadratic) {
  const Field f(8);
  // Find an irreducible quadratic by scanning: x^2 + bx + c with no roots.
  for (std::uint64_t b = 1; b < 20; ++b) {
    for (std::uint64_t c = 1; c < 20; ++c) {
      Poly p{c, b, 1};
      bool has_root = false;
      for (std::uint64_t x = 0; x < 256; ++x) {
        if (poly_eval(f, p, x) == 0) {
          has_root = true;
          break;
        }
      }
      if (!has_root) {
        EXPECT_FALSE(find_roots(f, p, 3).has_value());
        return;
      }
    }
  }
  FAIL() << "no irreducible quadratic found in scan";
}

TEST(RootFind, RejectsRepeatedRoots) {
  const Field f(32);
  // (x + 5)^2 is not squarefree.
  const Poly p = poly_mul(f, Poly{5, 1}, Poly{5, 1});
  EXPECT_FALSE(find_roots(f, p, 4).has_value());
}

TEST(RootFind, DeterministicForSeed) {
  const Field f(32);
  Poly p{1};
  for (std::uint64_t r : {3u, 99u, 1000003u}) p = poly_mul(f, p, Poly{r, 1});
  auto a = find_roots(f, p, 11);
  auto b = find_roots(f, p, 11);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
}

TEST(RootFind, LargeSplitPoly) {
  const Field f(32);
  util::Rng rng(404);
  std::set<std::uint64_t> roots;
  while (roots.size() < 64) roots.insert(f.map_nonzero(rng.next()));
  Poly p{1};
  for (auto r : roots) p = poly_mul(f, p, Poly{r, 1});
  auto found = find_roots(f, p, 5);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->size(), 64u);
}

}  // namespace
}  // namespace lo::gf
