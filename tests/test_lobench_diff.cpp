// lobench-diff tests: tolerant parsing of both BENCH_*.json shapes the repo
// emits (the bench_common JsonReport and full google-benchmark output),
// hostile/degenerate inputs, tolerance-band semantics (ok / missing / new /
// drift, inclusive edges, inverted real_time metric) and the rendered report.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "benchdiff.hpp"

namespace lo {
namespace {

using namespace lo::benchdiff;

// ----------------------------------------------------------------- parsing ----

TEST(BenchDiffParse, ReadsJsonReportShape) {
  const std::string doc = R"({
  "bench_suite": "obs",
  "benchmarks": [
    {"name": "tracer_emit", "items_per_second": 2.5e7, "real_time": 40.0,
     "time_unit": "ns"},
    {"name": "registry_to_json", "items_per_second": 1.0e4}
  ]
})";
  const auto entries = parse_bench_json(doc);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "tracer_emit");
  EXPECT_DOUBLE_EQ(entries[0].items_per_second, 2.5e7);
  EXPECT_DOUBLE_EQ(entries[0].real_time, 40.0);
  EXPECT_EQ(entries[1].name, "registry_to_json");
}

TEST(BenchDiffParse, ReadsGoogleBenchmarkShape) {
  // Context object before the array, nested values inside entries, and
  // fields we do not care about — all skipped bracket-counted.
  const std::string doc = R"({
  "context": {"date": "2026-08-09", "caches": [{"type": "Data", "level": 1}]},
  "benchmarks": [
    {"name": "BM_sketch/64", "run_type": "iteration", "repetitions": 1,
     "counters": {"x": 1}, "real_time": 1.25e3, "cpu_time": 1.2e3,
     "time_unit": "ns"}
  ]
})";
  const auto entries = parse_bench_json(doc);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "BM_sketch/64");
  EXPECT_DOUBLE_EQ(entries[0].real_time, 1.25e3);
  EXPECT_DOUBLE_EQ(entries[0].items_per_second, 0.0);
}

TEST(BenchDiffParse, RejectsDocumentsWithoutBenchmarks) {
  EXPECT_THROW(parse_bench_json("{}"), std::runtime_error);
  EXPECT_THROW(parse_bench_json(R"({"benchmarks": 3})"), std::runtime_error);
  EXPECT_THROW(parse_bench_json(R"({"benchmarks": [{"name")"),
               std::runtime_error);
  EXPECT_THROW(parse_bench_json(R"({"benchmarks": [{"name": "x", "real_time":
  "not-a-number"}]})"),
               std::runtime_error);
}

TEST(BenchDiffParse, SkipsNamelessEntries) {
  const auto entries =
      parse_bench_json(R"({"benchmarks": [{"real_time": 1.0}]})");
  EXPECT_TRUE(entries.empty());
}

// -------------------------------------------------------------------- diff ----

std::vector<BenchEntry> one(const std::string& name, double ips) {
  BenchEntry e;
  e.name = name;
  e.items_per_second = ips;
  return {e};
}

TEST(BenchDiff, WithinBandPasses) {
  const auto r = diff(one("a", 100.0), one("a", 120.0), Tolerance{});
  ASSERT_EQ(r.lines.size(), 1u);
  EXPECT_EQ(r.lines[0].status, DiffLine::Status::kOk);
  EXPECT_DOUBLE_EQ(r.lines[0].ratio, 1.2);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_TRUE(r.ok());
}

TEST(BenchDiff, BandEdgesAreInclusive) {
  // Default band is [0.5, 2.0]; landing exactly on an edge passes.
  EXPECT_TRUE(diff(one("a", 100.0), one("a", 50.0), Tolerance{}).ok());
  EXPECT_TRUE(diff(one("a", 100.0), one("a", 200.0), Tolerance{}).ok());
  EXPECT_FALSE(diff(one("a", 100.0), one("a", 49.0), Tolerance{}).ok());
  EXPECT_FALSE(diff(one("a", 100.0), one("a", 201.0), Tolerance{}).ok());
}

TEST(BenchDiff, MissingBaselineEntryFails) {
  const auto r = diff(one("a", 100.0), one("b", 100.0), Tolerance{});
  ASSERT_EQ(r.lines.size(), 2u);
  EXPECT_EQ(r.lines[0].status, DiffLine::Status::kMissing);
  EXPECT_EQ(r.lines[1].status, DiffLine::Status::kNew);
  // A vanished benchmark is a failure; a new one is informational only.
  EXPECT_EQ(r.failures, 1u);
}

TEST(BenchDiff, InvertedRealTimeMetricMeansFasterIsHigher) {
  BenchEntry base;
  base.name = "t";
  base.real_time = 2.0;
  BenchEntry fresh = base;
  fresh.real_time = 1.0;  // twice as fast -> ratio 2.0, still inside the band
  auto r = diff({base}, {fresh}, Tolerance{});
  ASSERT_EQ(r.lines.size(), 1u);
  EXPECT_DOUBLE_EQ(r.lines[0].ratio, 2.0);
  EXPECT_TRUE(r.ok());

  fresh.real_time = 5.0;  // 2.5x slower -> ratio 0.4, drift
  r = diff({base}, {fresh}, Tolerance{});
  EXPECT_EQ(r.lines[0].status, DiffLine::Status::kOutOfBand);
  EXPECT_FALSE(r.ok());
}

TEST(BenchDiff, CustomToleranceTightensTheBand) {
  Tolerance tight{0.9, 1.1};
  EXPECT_TRUE(diff(one("a", 100.0), one("a", 105.0), tight).ok());
  EXPECT_FALSE(diff(one("a", 100.0), one("a", 80.0), tight).ok());
}

// ------------------------------------------------------------------ render ----

TEST(BenchDiffRender, TagsEveryOutcome) {
  std::vector<BenchEntry> base = one("stays", 100.0);
  base.push_back(one("vanishes", 50.0)[0]);
  base.push_back(one("drifts", 10.0)[0]);
  std::vector<BenchEntry> fresh = one("stays", 110.0);
  fresh.push_back(one("drifts", 100.0)[0]);
  fresh.push_back(one("appears", 7.0)[0]);

  const auto r = diff(base, fresh, Tolerance{});
  const std::string text = render(r);
  EXPECT_NE(text.find("ok"), std::string::npos);
  EXPECT_NE(text.find("MISSING"), std::string::npos);
  EXPECT_NE(text.find("DRIFT"), std::string::npos);
  EXPECT_NE(text.find("new"), std::string::npos);
  EXPECT_NE(text.find("2 failure(s)"), std::string::npos);
}

TEST(BenchDiffRender, ReadFileReportsMissingAsNullopt) {
  EXPECT_FALSE(read_file("/nonexistent/BENCH_nope.json").has_value());
}

}  // namespace
}  // namespace lo
