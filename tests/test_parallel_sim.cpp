// Parallel simulation engine tests (DESIGN.md §4e): lookahead bounds,
// per-node RNG streams, window/barrier mechanics, the cross-shard causality
// guard, and — the core property — byte-identical output between the serial
// engine and the sharded parallel engine at the same seed, including under
// chaos (crashes, partitions, flaky links) on the full LØ stack.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "test_net_util.hpp"
#include "util/rng.hpp"

namespace lo::sim {
namespace {

struct TestPayload final : Payload {
  explicit TestPayload(std::size_t size = 64, int tag = 0)
      : size_(size), tag_(tag) {}
  const char* type_name() const noexcept override { return "test.gossip"; }
  std::size_t wire_size() const noexcept override { return size_; }
  std::size_t size_;
  int tag_;
};

// ------------------------------------------------------- lookahead bounds ----

TEST(ParallelSim, ConstantLatencyLookaheadIsTheConstant) {
  ConstantLatency model(1234);
  EXPECT_EQ(model.min_latency_us(), 1234);
}

TEST(ParallelSim, CityLatencyLookaheadBounds) {
  // With jitter the lognormal multiplier has no positive lower bound, so the
  // only safe lookahead is the 200 us clamp latency_us() enforces.
  CityLatencyModel jittered(0.05);
  EXPECT_EQ(jittered.min_latency_us(), 200);
  // Without jitter the bound is the matrix minimum — at least the clamp,
  // at most the same-city last-mile hop.
  CityLatencyModel flat(0.0);
  const std::int64_t m = flat.min_latency_us();
  EXPECT_GE(m, 200);
  EXPECT_LE(m, flat.base_us(0, 0));
  // The bound must actually bound: sample a few pairs.
  util::Rng rng(9);
  for (std::uint32_t a = 0; a < 8; ++a) {
    for (std::uint32_t b = 0; b < 8; ++b) {
      EXPECT_GE(flat.latency_us(a, b, rng), m);
    }
  }
}

TEST(ParallelSim, DefaultLookaheadDegradesToSerial) {
  // A model without a declared bound must report 0 (parallel mode disabled),
  // never a positive guess.
  struct NoBound final : LatencyModel {
    std::int64_t latency_us(std::uint32_t, std::uint32_t,
                            util::Rng&) override {
      return 5;
    }
  };
  NoBound model;
  EXPECT_EQ(model.min_latency_us(), 0);
}

// -------------------------------------------------------- per-node streams ----

TEST(ParallelSim, NodeRngStreamsAreIndependentAndStable) {
  // Streams derive from (seed, node id) alone: re-creating the simulator
  // reproduces them, distinct nodes get distinct streams, and drawing from
  // one stream never perturbs another.
  Simulator sim_a(5), sim_b(5);
  struct Nop final : INode {
    void on_message(NodeId, const PayloadPtr&) override {}
  } nop;
  for (int i = 0; i < 3; ++i) {
    sim_a.add_node(&nop);
    sim_b.add_node(&nop);
  }
  // Interleave draws in a, draw straight in b: per-node sequences match.
  std::vector<std::uint64_t> a0, a1, b0, b1;
  for (int i = 0; i < 4; ++i) {
    a0.push_back(sim_a.node_rng(0).next());
    a1.push_back(sim_a.node_rng(1).next());
  }
  for (int i = 0; i < 4; ++i) b0.push_back(sim_b.node_rng(0).next());
  for (int i = 0; i < 4; ++i) b1.push_back(sim_b.node_rng(1).next());
  EXPECT_EQ(a0, b0);
  EXPECT_EQ(a1, b1);
  EXPECT_NE(a0, a1) << "distinct nodes must not share a stream";
  EXPECT_THROW(sim_a.node_rng(99), std::out_of_range);
}

// ------------------------------------------------- sim-level equivalence ----

// A gossip storm exercising every engine surface: epoch-pinned periodic
// timers, per-node RNG draws, dense cross-shard sends, random message loss
// (sender-stream coins), a mid-run coordinator crash/restart (exercising the
// serialize-at-timestamp path, the receiver-down drop counter and timer
// suppression), and the tracer.
struct GossipNode final : INode {
  GossipNode(Simulator& sim, NodeId id, std::size_t n)
      : sim_(&sim), id_(id), n_(n) {}

  void on_start() override { arm(); }

  void arm() {
    const auto jitter = static_cast<Duration>(
        sim_->node_rng(id_).next_below(2 * kMillisecond));
    sim_->schedule_for(id_, 5 * kMillisecond + jitter, [this] { tick(); });
  }

  void tick() {
    ++ticks;
    const auto peer = static_cast<NodeId>(sim_->node_rng(id_).next_below(n_));
    if (peer != id_) {
      sim_->send(id_, peer, std::make_shared<TestPayload>(64, 0));
    }
    sim_->send(id_, static_cast<NodeId>((id_ + 1) % n_),
               std::make_shared<TestPayload>(48, 1));
    arm();
  }

  void on_message(NodeId from, const PayloadPtr& msg) override {
    ++received;
    const auto& p = dynamic_cast<const TestPayload&>(*msg);
    if (p.tag_ == 1) {
      // One bounded reply hop so deliveries themselves generate cross-shard
      // traffic from worker context.
      sim_->send(id_, from, std::make_shared<TestPayload>(32, 2));
    }
  }

  Simulator* sim_;
  NodeId id_;
  std::size_t n_;
  std::uint64_t ticks = 0;
  std::uint64_t received = 0;
};

std::string run_storm(std::uint64_t seed, unsigned workers,
                      unsigned mid_run_workers = 0) {
  constexpr std::size_t kNodes = 24;
  Simulator sim(seed);
  sim.obs().tracer.enable(true);
  sim.set_workers(workers);
  sim.set_latency_model(std::make_shared<ConstantLatency>(3 * kMillisecond));
  sim.set_drop_probability(0.05);
  std::vector<std::unique_ptr<GossipNode>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes.push_back(
        std::make_unique<GossipNode>(sim, static_cast<NodeId>(i), kNodes));
    sim.add_node(nodes.back().get());
  }
  // Coordinator-scripted crash/restart right in the middle of the storm:
  // node 3 loses its in-flight traffic and its pinned timers for 80 ms.
  sim.schedule(200 * kMillisecond, [&sim] { sim.set_node_up(3, false); });
  sim.schedule(280 * kMillisecond, [&sim, &nodes] {
    sim.set_node_up(3, true);
    nodes[3]->arm();  // restart re-arms under the new epoch
  });
  sim.run_until(250 * kMillisecond);
  if (mid_run_workers != 0) sim.set_workers(mid_run_workers);
  sim.run_until(500 * kMillisecond);

  std::ostringstream out;
  out << sim.now() << '|';
  for (const auto& n : nodes) out << n->ticks << ',' << n->received << ';';
  out << '|' << sim.bandwidth().total_messages() << ','
      << sim.bandwidth().total_bytes();
  const auto fc = sim.fault_counters();
  out << '|' << fc.dropped_sender_down << ',' << fc.dropped_receiver_down
      << ',' << fc.suppressed_callbacks << ',' << fc.dropped_by_fault_filter;
  const auto trace = sim.obs().tracer.bytes();
  out << '|' << trace.size() << '|';
  // Cheap rolling hash over the canonical trace bytes — byte-identical
  // streams or bust.
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : trace) h = (h ^ b) * 1099511628211ull;
  out << h;
  out << '|' << sim.obs().registry.to_json("storm");
  return out.str();
}

TEST(ParallelSim, StormMatchesSerialAcrossWorkerCounts) {
  const std::string serial = run_storm(11, 1);
  for (unsigned w : {2u, 4u, 8u}) {
    EXPECT_EQ(serial, run_storm(11, w)) << "diverged at workers=" << w;
  }
}

TEST(ParallelSim, MidRunWorkerChangeIsTransparent) {
  // set_workers() re-buckets pending events without touching their keys, so
  // switching engine shapes mid-run must not change the run.
  const std::string serial = run_storm(13, 1);
  EXPECT_EQ(serial, run_storm(13, 4, /*mid_run_workers=*/2));
  EXPECT_EQ(serial, run_storm(13, 2, /*mid_run_workers=*/8));
}

// ----------------------------------------------------------- causality guard ----

TEST(ParallelSim, ShaperBelowLookaheadThrowsUnderParallel) {
  // A latency shaper that undercuts min_latency_us() breaks the conservative
  // synchronization contract; the engine must fail loudly (cross-shard event
  // below the open window), not deliver into a shard's past.
  Simulator sim(3);
  sim.set_workers(4);
  sim.set_latency_model(std::make_shared<ConstantLatency>(10 * kMillisecond));
  sim.set_latency_shaper(
      [](NodeId, NodeId, Duration) -> Duration { return 5; });
  struct Chatty final : INode {
    Simulator* sim = nullptr;
    NodeId id = 0;
    std::size_t n = 0;
    void on_start() override {
      sim->schedule_for(id, 1 * kMillisecond, [this] {
        sim->send(id, static_cast<NodeId>((id + 1) % n),
                  std::make_shared<TestPayload>());
      });
    }
    void on_message(NodeId, const PayloadPtr&) override {}
  };
  std::vector<std::unique_ptr<Chatty>> nodes;
  for (std::size_t i = 0; i < 8; ++i) {
    auto node = std::make_unique<Chatty>();
    node->sim = &sim;
    node->n = 8;
    node->id = sim.add_node(node.get());
    nodes.push_back(std::move(node));
  }
  EXPECT_THROW(sim.run_until(kSecond), std::logic_error);
}

// ----------------------------------------------------- chaos on the LØ stack ----

// Full-stack chaos under the parallel engine: crashes with mempool wipes,
// a scripted partition-ish flaky-link mesh, a latency spike, churn — with the
// accountability invariant checker armed fail-fast the whole time. The run
// must (a) keep every invariant and (b) be byte-identical to the serial
// engine's run.
std::string run_chaos(std::uint64_t seed, unsigned workers) {
  auto cfg = test::net_cfg(14, seed);
  cfg.trace = true;
  cfg.city_latency = false;
  cfg.constant_latency = 20 * kMillisecond;
  cfg.workers = workers;
  harness::LoNetwork net(cfg);
  net.start_invariant_checker(500 * kMillisecond, /*fail_fast=*/true);
  net.start_workload(test::load_cfg(15.0, seed + 1000));

  auto& faults = net.faults();
  faults.crash_at(from_seconds(2.0), 2, from_seconds(1.5),
                  /*wipe_mempool=*/true);
  faults.crash_at(from_seconds(3.0), 7, from_seconds(2.0));
  // Flaky mesh around node 5 — a soft partition for a while.
  for (NodeId peer : {0u, 1u, 3u, 4u}) {
    faults.flaky_link(5, peer, from_seconds(1.0), from_seconds(5.0), 0.6);
  }
  faults.latency_spike(from_seconds(4.0), from_seconds(6.0), 3.0);
  ChurnConfig churn;
  churn.mean_gap = 3 * kSecond;
  churn.max_concurrent_down = 1;
  net.start_churn(churn);
  net.run_for(8.0);
  net.stop_churn();
  net.run_for(4.0);

  EXPECT_TRUE(net.invariant_violations().empty());

  std::ostringstream out;
  out << net.txs_injected() << '|' << net.sim().now() << '|';
  for (std::size_t i = 0; i < net.size(); ++i) {
    out << net.node(i).log().seqno() << ',' << net.node(i).mempool_size()
        << ';';
  }
  out << '|' << faults.crashes_injected() << ',' << faults.restarts_injected()
      << ',' << faults.link_drops();
  const auto trace = net.sim().obs().tracer.bytes();
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : trace) h = (h ^ b) * 1099511628211ull;
  out << '|' << trace.size() << ':' << h;
  net.publish_metrics();
  out << '|' << net.sim().obs().registry.to_json("chaos");
  return out.str();
}

TEST(ParallelSim, ChaosScenarioMatchesSerial) {
  EXPECT_EQ(run_chaos(21, 1), run_chaos(21, 4))
      << "parallel chaos run diverged from serial";
}

}  // namespace
}  // namespace lo::sim
