// Discrete-event simulator tests: event ordering, latency models, bandwidth
// accounting, message loss, delivery filters, metrics.
#include <gtest/gtest.h>

#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace lo::sim {
namespace {

struct TestPayload final : Payload {
  explicit TestPayload(std::size_t size = 100, int tag = 0)
      : size_(size), tag_(tag) {}
  const char* type_name() const noexcept override { return "test.msg"; }
  std::size_t wire_size() const noexcept override { return size_; }
  std::size_t size_;
  int tag_;
};

struct RecordingNode final : INode {
  void on_start() override { started = true; }
  void on_message(NodeId from, const PayloadPtr& msg) override {
    senders.push_back(from);
    tags.push_back(dynamic_cast<const TestPayload&>(*msg).tag_);
  }
  bool started = false;
  std::vector<NodeId> senders;
  std::vector<int> tags;
};

TEST(Simulator, TimersFireInOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule(300, [&] { order.push_back(3); });
  sim.schedule(100, [&] { order.push_back(1); });
  sim.schedule(200, [&] { order.push_back(2); });
  sim.run_until(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(500, [&order, i] { order.push_back(i); });
  }
  sim.run_until(1000);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, StartCallsEveryNodeOnce) {
  Simulator sim(1);
  RecordingNode a, b;
  sim.add_node(&a);
  sim.add_node(&b);
  sim.run_until(1);
  EXPECT_TRUE(a.started);
  EXPECT_TRUE(b.started);
}

TEST(Simulator, MessageDeliveredWithLatency) {
  Simulator sim(1);
  sim.set_latency_model(std::make_shared<ConstantLatency>(250));
  RecordingNode a, b;
  const NodeId ida = sim.add_node(&a);
  const NodeId idb = sim.add_node(&b);
  sim.start();
  sim.send(ida, idb, std::make_shared<TestPayload>(64, 7));
  sim.run_until(249);
  EXPECT_TRUE(b.senders.empty());
  sim.run_until(250);
  ASSERT_EQ(b.senders.size(), 1u);
  EXPECT_EQ(b.senders[0], ida);
  EXPECT_EQ(b.tags[0], 7);
}

TEST(Simulator, BandwidthChargedToSenderByClass) {
  Simulator sim(1);
  RecordingNode a, b;
  const NodeId ida = sim.add_node(&a);
  const NodeId idb = sim.add_node(&b);
  sim.start();
  sim.send(ida, idb, std::make_shared<TestPayload>(111));
  sim.send(ida, idb, std::make_shared<TestPayload>(222));
  sim.run_until(sim::kSecond);
  EXPECT_EQ(sim.bandwidth().sent_by(ida), 333u);
  EXPECT_EQ(sim.bandwidth().sent_by(idb), 0u);
  EXPECT_EQ(sim.bandwidth().total_bytes(), 333u);
  EXPECT_EQ(sim.bandwidth().total_messages(), 2u);
  const auto& cls = sim.bandwidth().by_class();
  ASSERT_TRUE(cls.count("test.msg"));
  EXPECT_EQ(cls.at("test.msg").bytes, 333u);
}

TEST(Simulator, BytesExcludingFiltersClasses) {
  BandwidthAccountant acc;
  acc.reset(2);
  acc.record(0, "a", 100);
  acc.record(0, "b", 50);
  acc.record(1, "c", 7);
  EXPECT_EQ(acc.bytes_excluding({"b"}), 107u);
  EXPECT_EQ(acc.bytes_excluding({"a", "c"}), 50u);
  EXPECT_EQ(acc.bytes_excluding({}), 157u);
}

TEST(Simulator, DropProbabilityOneDropsAll) {
  Simulator sim(1);
  sim.set_latency_model(std::make_shared<ConstantLatency>(10));
  sim.set_drop_probability(1.0);
  RecordingNode a, b;
  const NodeId ida = sim.add_node(&a);
  const NodeId idb = sim.add_node(&b);
  sim.start();
  for (int i = 0; i < 20; ++i) sim.send(ida, idb, std::make_shared<TestPayload>());
  sim.run_until(kSecond);
  EXPECT_TRUE(b.senders.empty());
  // Bandwidth is still charged: the bytes left the sender.
  EXPECT_EQ(sim.bandwidth().total_messages(), 20u);
}

TEST(Simulator, DeliveryFilterPartitions) {
  Simulator sim(1);
  sim.set_latency_model(std::make_shared<ConstantLatency>(10));
  RecordingNode a, b, c;
  const NodeId ida = sim.add_node(&a);
  const NodeId idb = sim.add_node(&b);
  const NodeId idc = sim.add_node(&c);
  sim.set_delivery_filter([idb](NodeId, NodeId to) { return to != idb; });
  sim.start();
  sim.send(ida, idb, std::make_shared<TestPayload>());
  sim.send(ida, idc, std::make_shared<TestPayload>());
  sim.run_until(kSecond);
  EXPECT_TRUE(b.senders.empty());
  EXPECT_EQ(c.senders.size(), 1u);
}

TEST(Simulator, SendToUnknownNodeThrows) {
  Simulator sim(1);
  RecordingNode a;
  const NodeId ida = sim.add_node(&a);
  EXPECT_THROW(sim.send(ida, 99, std::make_shared<TestPayload>()),
               std::out_of_range);
}

TEST(Simulator, DeterministicEventCount) {
  auto run = [] {
    Simulator sim(42);
    RecordingNode a, b;
    const NodeId ida = sim.add_node(&a);
    const NodeId idb = sim.add_node(&b);
    sim.set_latency_model(std::make_shared<ConstantLatency>(100));
    sim.start();
    for (int i = 0; i < 50; ++i) sim.send(ida, idb, std::make_shared<TestPayload>());
    return sim.run_until(kSecond);
  };
  EXPECT_EQ(run(), run());
}

// --------------------------------------------- delivery-edge semantics ----

TEST(Simulator, DeliveryFilterEvaluatedAtSendTimeNotDeliveryTime) {
  // The filter decides a message's fate when it is SENT. Healing a partition
  // while a dropped message would still have been in flight must not
  // resurrect it, and cutting the link under an in-flight message must not
  // destroy it.
  Simulator sim(1);
  sim.set_latency_model(std::make_shared<ConstantLatency>(1000));
  RecordingNode a, b;
  const NodeId ida = sim.add_node(&a);
  const NodeId idb = sim.add_node(&b);
  bool blocked = true;
  sim.set_delivery_filter([&blocked](NodeId, NodeId) { return !blocked; });
  sim.start();

  sim.send(ida, idb, std::make_shared<TestPayload>(64, 1));  // dropped at send
  sim.run_until(500);
  blocked = false;  // heal mid-flight: too late for tag 1
  sim.send(ida, idb, std::make_shared<TestPayload>(64, 2));  // passes at send
  sim.run_until(1200);
  blocked = true;  // cut mid-flight: tag 2 is already committed to deliver
  sim.run_until(3000);
  ASSERT_EQ(b.tags.size(), 1u);
  EXPECT_EQ(b.tags[0], 2);
}

TEST(Simulator, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim(1);
  EXPECT_EQ(sim.run_until(5000), 0u);  // no events at all
  EXPECT_EQ(sim.now(), 5000);
  // A later horizon keeps advancing; time never runs backwards.
  sim.run_until(6000);
  EXPECT_EQ(sim.now(), 6000);
  sim.run_until(100);
  EXPECT_EQ(sim.now(), 6000);
}

TEST(Simulator, SimultaneousSendAndTimerInterleaveFifo) {
  // Events with equal timestamps fire in insertion order regardless of kind
  // (timer vs delivery) — the tie-break is the global sequence number.
  Simulator sim(1);
  sim.set_latency_model(std::make_shared<ConstantLatency>(100));
  std::vector<int> order;
  struct Sink final : INode {
    explicit Sink(std::vector<int>& o) : order(&o) {}
    void on_message(NodeId, const PayloadPtr& msg) override {
      order->push_back(dynamic_cast<const TestPayload&>(*msg).tag_);
    }
    std::vector<int>* order;
  };
  Sink sink(order);
  const NodeId src = sim.add_node(&sink);
  const NodeId dst = sim.add_node(&sink);
  sim.start();
  sim.send(src, dst, std::make_shared<TestPayload>(8, 10));  // arrives t=100
  sim.schedule(100, [&order] { order.push_back(20); });
  sim.send(src, dst, std::make_shared<TestPayload>(8, 30));  // arrives t=100
  sim.run_until(200);
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(Simulator, DownSenderDropsWithoutBandwidthCharge) {
  Simulator sim(1);
  sim.set_latency_model(std::make_shared<ConstantLatency>(10));
  RecordingNode a, b;
  const NodeId ida = sim.add_node(&a);
  const NodeId idb = sim.add_node(&b);
  sim.start();
  sim.set_node_up(ida, false);
  sim.send(ida, idb, std::make_shared<TestPayload>());
  sim.run_until(kSecond);
  EXPECT_TRUE(b.senders.empty());
  EXPECT_EQ(sim.bandwidth().total_messages(), 0u)
      << "a dead host emits no bytes";
  EXPECT_EQ(sim.fault_counters().dropped_sender_down, 1u);
}

TEST(Simulator, InFlightMessageToCrashedReceiverIsLost) {
  // Receiver liveness is checked at DELIVERY time: packets racing toward a
  // host that dies mid-flight land on a dead machine.
  Simulator sim(1);
  sim.set_latency_model(std::make_shared<ConstantLatency>(1000));
  RecordingNode a, b;
  const NodeId ida = sim.add_node(&a);
  const NodeId idb = sim.add_node(&b);
  sim.start();
  sim.send(ida, idb, std::make_shared<TestPayload>(64, 1));
  sim.run_until(500);
  sim.set_node_up(idb, false);  // dies with the packet halfway
  sim.run_until(2000);
  EXPECT_TRUE(b.tags.empty());
  EXPECT_EQ(sim.fault_counters().dropped_receiver_down, 1u);
  // Bandwidth was charged: the bytes did leave the sender.
  EXPECT_EQ(sim.bandwidth().total_messages(), 1u);

  // A receiver that restarts before delivery DOES get the message.
  sim.send(ida, idb, std::make_shared<TestPayload>(64, 2));
  sim.set_node_up(idb, true);
  sim.run_until(4000);
  ASSERT_EQ(b.tags.size(), 1u);
  EXPECT_EQ(b.tags[0], 2);
}

TEST(Simulator, ScheduleForSuppressedAcrossEpochs) {
  Simulator sim(1);
  RecordingNode a;
  const NodeId ida = sim.add_node(&a);
  sim.start();
  int fired = 0;
  sim.schedule_for(ida, 100, [&fired] { ++fired; });   // epoch 0, fires
  sim.run_until(200);
  EXPECT_EQ(fired, 1);

  sim.schedule_for(ida, 100, [&fired] { ++fired; });   // armed in epoch 0
  sim.set_node_up(ida, false);                         // epoch -> 1
  sim.run_until(400);
  EXPECT_EQ(fired, 1) << "timer owned by a down node must not fire";

  sim.set_node_up(ida, true);                          // still epoch 1
  sim.schedule_for(ida, 100, [&fired] { ++fired; });   // armed in epoch 1
  sim.run_until(600);
  EXPECT_EQ(fired, 2) << "only the new incarnation's timers fire";
  EXPECT_EQ(sim.fault_counters().suppressed_callbacks, 1u);
}

TEST(Simulator, FaultFilterComposesWithDeliveryFilter) {
  // The fault filter (used by FaultInjector) is a second, independent veto:
  // a message passes only if BOTH filters allow it, and drops are counted.
  Simulator sim(1);
  sim.set_latency_model(std::make_shared<ConstantLatency>(10));
  RecordingNode a, b, c;
  const NodeId ida = sim.add_node(&a);
  const NodeId idb = sim.add_node(&b);
  const NodeId idc = sim.add_node(&c);
  sim.set_delivery_filter([idb](NodeId, NodeId to) { return to != idb; });
  sim.set_fault_filter([idc](NodeId, NodeId to) { return to != idc; });
  sim.start();
  sim.send(ida, idb, std::make_shared<TestPayload>());
  sim.send(ida, idc, std::make_shared<TestPayload>());
  sim.send(idb, ida, std::make_shared<TestPayload>());
  sim.run_until(kSecond);
  EXPECT_TRUE(b.senders.empty());
  EXPECT_TRUE(c.senders.empty());
  EXPECT_EQ(a.senders.size(), 1u);
  EXPECT_EQ(sim.fault_counters().dropped_by_fault_filter, 1u);
}

TEST(Simulator, LatencyShaperStretchesDelivery) {
  Simulator sim(1);
  sim.set_latency_model(std::make_shared<ConstantLatency>(100));
  RecordingNode a, b;
  const NodeId ida = sim.add_node(&a);
  const NodeId idb = sim.add_node(&b);
  sim.set_latency_shaper(
      [](NodeId, NodeId, Duration base) { return base * 5; });
  sim.start();
  sim.send(ida, idb, std::make_shared<TestPayload>(64, 9));
  sim.run_until(499);
  EXPECT_TRUE(b.tags.empty());
  sim.run_until(500);
  ASSERT_EQ(b.tags.size(), 1u);
}

TEST(Simulator, NodeUpQueriesAndDownCount) {
  Simulator sim(1);
  RecordingNode a, b;
  const NodeId ida = sim.add_node(&a);
  sim.add_node(&b);
  EXPECT_TRUE(sim.node_up(ida));
  // Read side matches the write side: unknown ids throw instead of being
  // presumed up/epoch-0 (regression — out-of-range senders used to pass the
  // liveness check).
  EXPECT_THROW(sim.node_up(999), std::out_of_range);
  EXPECT_THROW(sim.node_epoch(999), std::out_of_range);
  EXPECT_EQ(sim.down_count(), 0u);
  sim.set_node_up(ida, false);
  EXPECT_FALSE(sim.node_up(ida));
  EXPECT_EQ(sim.down_count(), 1u);
  EXPECT_EQ(sim.node_epoch(ida), 1u);
  sim.set_node_up(ida, false);  // idempotent: no extra epoch bump
  EXPECT_EQ(sim.node_epoch(ida), 1u);
  sim.set_node_up(ida, true);
  EXPECT_EQ(sim.down_count(), 0u);
  EXPECT_EQ(sim.node_epoch(ida), 1u) << "epoch bumps on up->down only";
  EXPECT_THROW(sim.set_node_up(999, false), std::out_of_range);
}

TEST(Simulator, SendFromUnknownSenderThrows) {
  // Regression: send() validated `to` but not `from`, so an out-of-range
  // sender slipped past the liveness check into the bandwidth table.
  Simulator sim(1);
  RecordingNode a;
  const NodeId ida = sim.add_node(&a);
  EXPECT_THROW(sim.send(99, ida, std::make_shared<TestPayload>()),
               std::out_of_range);
  EXPECT_EQ(sim.bandwidth().total_bytes(), 0u);
}

TEST(Simulator, ScheduleForUnknownOwnerThrows) {
  // Regression: an out-of-range owner used to silently degrade to an
  // unpinned plain schedule() — a timer that would survive any crash.
  Simulator sim(1);
  RecordingNode a;
  sim.add_node(&a);
  EXPECT_THROW(sim.schedule_for(99, 10, [] {}), std::out_of_range);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunUntilPastHorizonIsNoOp) {
  Simulator sim(1);
  std::size_t fired = 0;
  sim.schedule(100, [&] { ++fired; });
  sim.run_until(1000);
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(sim.now(), 1000);
  // A horizon in the past executes nothing and never rewinds the clock.
  sim.schedule(50, [&] { ++fired; });  // at t=1050, beyond the past horizon
  EXPECT_EQ(sim.run_until(500), 0u);
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(sim.now(), 1000);
  EXPECT_EQ(sim.pending_events(), 1u);
  // The event is still intact and fires once the horizon really advances.
  sim.run_until(2000);
  EXPECT_EQ(fired, 2u);
  EXPECT_EQ(sim.now(), 2000);
}

TEST(Simulator, StepMatchesRunUntil) {
  // Stepping one event at a time traverses exactly the order run_until uses.
  auto drive = [](bool use_step) {
    Simulator sim(7);
    sim.set_latency_model(std::make_shared<ConstantLatency>(75));
    RecordingNode a, b;
    const NodeId ida = sim.add_node(&a);
    const NodeId idb = sim.add_node(&b);
    sim.start();
    for (int i = 0; i < 5; ++i) {
      sim.send(ida, idb, std::make_shared<TestPayload>(32, i));
      sim.send(idb, ida, std::make_shared<TestPayload>(32, 100 + i));
      sim.schedule(50 * (i + 1), [] {});
    }
    std::size_t processed = 0;
    if (use_step) {
      while (sim.step()) ++processed;
    } else {
      processed = sim.run_until(10 * kSecond);
    }
    std::vector<int> tags = a.tags;
    tags.insert(tags.end(), b.tags.begin(), b.tags.end());
    return std::make_pair(processed, tags);
  };
  const auto stepped = drive(true);
  const auto ran = drive(false);
  EXPECT_EQ(stepped.first, ran.first);
  EXPECT_EQ(stepped.second, ran.second);
}

// ------------------------------------------------------------- latency ----

TEST(CityLatency, SymmetricAndPositive) {
  CityLatencyModel m(0.0);
  const std::size_t n = CityLatencyModel::city_count();
  EXPECT_EQ(n, 32u);  // paper: 32 cities
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(m.base_us(i, j), m.base_us(j, i));
      EXPECT_GE(m.base_us(i, j), 0);
    }
  }
}

TEST(CityLatency, IntercontinentalSlowerThanRegional) {
  CityLatencyModel m(0.0);
  // Amsterdam(0) <-> London(18) vs Amsterdam <-> Sydney(29).
  EXPECT_LT(m.base_us(0, 18), m.base_us(0, 29));
  // London <-> Sydney should be in the high tens of ms one-way.
  EXPECT_GT(m.base_us(18, 29), 50 * kMillisecond);
  EXPECT_LT(m.base_us(18, 29), 400 * kMillisecond);
}

TEST(CityLatency, RoundRobinAssignmentAndFloor) {
  CityLatencyModel m(0.0);
  util::Rng rng(1);
  // Same city pair (0, 32) maps to cities (0, 0): floor applies.
  EXPECT_GE(m.latency_us(0, 32, rng), 200);
  // Deterministic without jitter.
  EXPECT_EQ(m.latency_us(3, 700, rng), m.latency_us(3, 700, rng));
}

TEST(CityLatency, JitterVariesLatency) {
  CityLatencyModel m(0.2);
  util::Rng rng(1);
  const auto a = m.latency_us(0, 5, rng);
  const auto b = m.latency_us(0, 5, rng);
  EXPECT_NE(a, b);
}

// ------------------------------------------------------------- metrics ----

TEST(Samples, SummaryStatistics) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Samples, EmptyIsSafe) {
  Samples s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(0.5), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(Samples, HistogramDensityIntegratesToOne) {
  Samples s;
  util::Rng rng(5);
  for (int i = 0; i < 10000; ++i) s.add(rng.next_double() * 10.0);
  const auto h = s.histogram(20, 0.0, 10.0);
  double integral = 0.0;
  for (const auto& bin : h) integral += bin.density * (bin.hi - bin.lo);
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Samples, HistogramIgnoresOutOfRange) {
  Samples s;
  s.add(-5.0);
  s.add(0.5);
  s.add(100.0);
  const auto h = s.histogram(2, 0.0, 1.0);
  EXPECT_EQ(h[0].count + h[1].count, 1u);
}

TEST(Samples, HistogramTopBinIncludesHi) {
  // Regression: samples exactly equal to hi were skipped by a `v >= hi`
  // guard even though the idx clamp was written to land them in the last
  // bin. Both range endpoints must be counted.
  Samples s;
  s.add(0.0);   // lo -> first bin
  s.add(1.0);   // hi -> last bin, not dropped
  s.add(0.25);  // interior control
  const auto h = s.histogram(4, 0.0, 1.0);
  EXPECT_EQ(h[0].count, 1u);
  EXPECT_EQ(h[1].count, 1u);
  EXPECT_EQ(h[3].count, 1u);
  std::size_t total = 0;
  for (const auto& b : h) total += b.count;
  EXPECT_EQ(total, 3u);
  // Slightly above hi still falls outside.
  s.add(1.0 + 1e-9);
  const auto h2 = s.histogram(4, 0.0, 1.0);
  std::size_t total2 = 0;
  for (const auto& b : h2) total2 += b.count;
  EXPECT_EQ(total2, 3u);
}

TEST(Samples, BadHistogramSpecThrows) {
  Samples s;
  EXPECT_THROW(s.histogram(0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(s.histogram(4, 1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace lo::sim
