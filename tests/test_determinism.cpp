// Seed-replay determinism regression tests (companion to tools/lolint).
//
// Every protocol stack in this repo — LØ and the three baselines — is driven
// by seeded RNGs and a deterministic discrete-event simulator, so two runs
// with the same seed must produce byte-identical traces. These tests condense
// a run into a SHA-256 trace digest covering commitment-log heads, blame
// state, event feeds and metric streams (in emission order), and assert that
// the digest is replay-stable. A hash-order iteration feeding any message,
// metric or digest would break these tests on the spot — that is the dynamic
// counterpart of lolint's static unordered-iter rule.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "baselines/common.hpp"
#include "baselines/flood.hpp"
#include "baselines/narwhal.hpp"
#include "baselines/peerreview.hpp"
#include "crypto/sha256.hpp"
#include "harness/lo_network.hpp"
#include "obs/trace.hpp"
#include "test_net_util.hpp"
#include "util/ordered.hpp"

namespace lo {
namespace {

// ---------------------------------------------------------- digest helper ----

class TraceDigest {
 public:
  void u64(std::uint64_t v) {
    std::uint8_t buf[8];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    h_.update(std::span<const std::uint8_t>(buf, 8));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  // Doubles are digested via their bit pattern: replay determinism demands
  // bit-identical floating point streams, not merely "close" ones.
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void bytes(std::span<const std::uint8_t> b) { h_.update(b); }
  void str(std::string_view s) { h_.update(s); }

  std::string hex() {
    const crypto::Digest256 d = h_.finalize();
    static const char* kHex = "0123456789abcdef";
    std::string out;
    out.reserve(64);
    for (std::uint8_t byte : d) {
      out.push_back(kHex[byte >> 4]);
      out.push_back(kHex[byte & 0xf]);
    }
    return out;
  }

 private:
  crypto::Sha256 h_;
};

// Condenses a finished LØ run into a digest. Everything order-sensitive is
// either intrinsically ordered (event feeds, sample streams, log heads) or
// explicitly sorted here (registry sets) — the point is that the underlying
// run must deliver identical content AND order on replay.
std::string lo_trace_digest(harness::LoNetwork& net) {
  TraceDigest d;
  d.u64(net.txs_injected());
  d.i64(net.sim().now());
  for (std::size_t i = 0; i < net.size(); ++i) {
    auto& n = net.node(i);
    // One head per shard log, ascending shard order; at k = 1 this digests
    // exactly the same bytes as the pre-sharding single-log version.
    for (std::uint32_t s = 0; s < n.shard_count(); ++s) {
      d.u64(n.log(s).seqno());
      d.bytes(n.log(s).chain_hash());
    }
    d.u64(n.mempool_size());
    for (core::NodeId s : util::sorted_keys(n.registry().suspected())) {
      d.u64(s);
    }
    for (core::NodeId e : util::sorted_keys(n.registry().exposed())) {
      d.u64(e);
    }
  }
  for (const auto& ev : net.suspicion_events()) {
    d.u64(ev.observer);
    d.u64(ev.accused);
    d.f64(ev.when_s);
  }
  for (const auto& ev : net.exposure_events()) {
    d.u64(ev.observer);
    d.u64(ev.accused);
    d.f64(ev.when_s);
  }
  // Emission-ordered metric stream: admission hooks fire in event order, so
  // any nondeterminism in message scheduling shows up here.
  for (double v : net.mempool_latency().values()) d.f64(v);
  // The whole observability surface rides along: the binary event trace
  // (every message/commitment/reconciliation event in emission order, string
  // table included) and the metrics-registry JSON must be byte-identical on
  // replay — that is the paper-artifact property ISSUE 5 pins down.
  d.bytes(net.sim().obs().tracer.bytes());
  net.publish_metrics();
  d.str(net.sim().obs().registry.to_json("determinism"));
  return d.hex();
}

// One full LØ run: malicious minority (silent censors) so that the digest
// also covers the suspicion/exposure machinery, not just happy-path sync.
std::string run_lo(std::uint64_t seed, unsigned workers = 1) {
  auto cfg = test::net_cfg(16, seed, /*malicious_fraction=*/0.125);
  cfg.trace = true;  // digest the full event trace, not just the summaries
  cfg.malicious.ignore_requests = true;
  cfg.malicious.censor_txs = true;
  cfg.workers = workers;
  harness::LoNetwork net(cfg);
  net.start_workload(test::load_cfg(20.0, seed + 1000));
  net.run_for(15.0);
  return lo_trace_digest(net);
}

// ------------------------------------------------------------------- LØ ----

TEST(Determinism, LoSameSeedSameTrace) {
  const std::string a = run_lo(42);
  const std::string b = run_lo(42);
  EXPECT_EQ(a, b) << "same-seed LO runs diverged — a nondeterministic source "
                     "or hash-order iteration leaked into the protocol";
}

TEST(Determinism, LoDifferentSeedDifferentTrace) {
  // Sanity check that the digest actually observes the run: distinct seeds
  // must produce distinct traces (otherwise the equality test is vacuous).
  EXPECT_NE(run_lo(42), run_lo(43));
}

// ------------------------------------------- parallel engine equivalence ----

// The tentpole property of the parallel engine (DESIGN.md §4e): a run is
// defined by (seed), not (seed, workers). The digest covers commitment-log
// heads, blame state, every event feed, the full binary trace (string table
// included) and the registry JSON — so "equal digest" means byte-identical
// observable output, not merely matching summaries.
TEST(Determinism, LoParallelWorkersMatchSerial) {
  const std::string serial = run_lo(42, /*workers=*/1);
  for (unsigned w : {2u, 4u, 8u}) {
    EXPECT_EQ(serial, run_lo(42, w))
        << "parallel LO run diverged from serial at workers=" << w;
  }
}

// ---------------------------------------------- sharded pipeline digests ----

// A sharded run: same adversarial setup as run_lo plus block production, so
// the digest also covers the per-shard proposer draws and the cross-shard
// combiner ordering (DESIGN.md §7).
std::string run_lo_sharded(std::uint64_t seed, std::uint32_t k,
                           unsigned workers) {
  auto cfg = test::net_cfg(16, seed, /*malicious_fraction=*/0.125);
  cfg.trace = true;
  cfg.malicious.ignore_requests = true;
  cfg.malicious.censor_txs = true;
  cfg.node.mempool_shards = k;
  cfg.workers = workers;
  harness::LoNetwork net(cfg);
  net.start_workload(test::load_cfg(20.0, seed + 1000));
  consensus::LeaderConfig lc;
  lc.mean_block_interval = 2 * sim::kSecond;
  lc.seed = seed + 2;
  net.start_block_production(lc, /*correct_leaders_only=*/true);
  net.run_for(15.0);

  TraceDigest d;
  d.str(lo_trace_digest(net));
  d.u64(net.chain().height());
  d.bytes(net.chain().tip_hash());
  return d.hex();
}

// ISSUE 9 acceptance: for every shard count the run is defined by (seed)
// alone — replay-stable and byte-identical across simulator worker counts.
TEST(Determinism, LoShardedSameSeedSameTraceAcrossWorkers) {
  for (std::uint32_t k : {1u, 2u, 4u}) {
    const std::string serial = run_lo_sharded(42, k, /*workers=*/1);
    EXPECT_EQ(serial, run_lo_sharded(42, k, /*workers=*/1))
        << "sharded LO replay diverged at k=" << k;
    EXPECT_EQ(serial, run_lo_sharded(42, k, /*workers=*/4))
        << "sharded LO parallel run diverged from serial at k=" << k;
  }
}

// --------------------------------------------------- LØ with membership ----

// A membership-enabled run under churn: SWIM probes, suspicion deadlines,
// incarnation-bump refutations and the rejoin path all ride the same seeded
// RNG and epoch-scoped timers, so the full detector state and the member
// event feed must replay bit-for-bit too.
std::string run_lo_membership(std::uint64_t seed, unsigned workers = 1) {
  auto cfg = test::net_cfg(12, seed);
  cfg.trace = true;
  cfg.city_latency = false;
  cfg.workers = workers;
  cfg.node.membership.enabled = true;
  cfg.node.membership.protocol_period = 500 * sim::kMillisecond;
  cfg.node.membership.ping_timeout = 120 * sim::kMillisecond;
  harness::LoNetwork net(cfg);
  net.start_workload(test::load_cfg(10.0, seed + 2000));
  sim::ChurnConfig churn;
  churn.mean_gap = 2 * sim::kSecond;
  churn.max_concurrent_down = 2;
  net.start_churn(churn);
  net.run_for(12.0);
  net.stop_churn();
  net.run_for(8.0);

  TraceDigest d;
  d.str(lo_trace_digest(net));
  for (const auto& ev : net.member_events()) {
    d.u64(ev.observer);
    d.u64(ev.member);
    d.u64(static_cast<std::uint64_t>(ev.state));
    d.f64(ev.when_s);
  }
  for (std::size_t i = 0; i < net.size(); ++i) {
    d.u64(net.node(i).member_incarnation());
    d.u64(net.node(i).suspicions_absolved());
    if (const auto* det = net.node(i).swim()) {
      for (const auto& [member, ms] : det->members()) {
        d.u64(member);
        d.u64(static_cast<std::uint64_t>(ms.state));
        d.u64(ms.incarnation);
      }
    }
  }
  for (double v : net.membership_detection_latency().values()) d.f64(v);
  return d.hex();
}

TEST(Determinism, LoMembershipSameSeedSameTrace) {
  const std::string a = run_lo_membership(77);
  const std::string b = run_lo_membership(77);
  EXPECT_EQ(a, b) << "membership-enabled LO runs diverged under seed replay";
}

TEST(Determinism, LoMembershipParallelMatchesSerial) {
  // Membership adds SWIM probes, churn and epoch-scoped timers on top of the
  // sync protocol — the hardest scheduling surface we have.
  EXPECT_EQ(run_lo_membership(77, /*workers=*/1),
            run_lo_membership(77, /*workers=*/4));
}

// -------------------------------------------------------------- baselines ----

template <typename NodeT>
std::string run_baseline(const typename NodeT::Config& node_cfg,
                         std::uint64_t seed, unsigned workers = 1) {
  baselines::BaselineNetConfig cfg;
  cfg.num_nodes = 12;
  cfg.seed = seed;
  cfg.city_latency = true;
  cfg.trace = true;
  cfg.workers = workers;
  baselines::BaselineNetwork<NodeT> net(cfg, node_cfg);
  net.start_workload(test::load_cfg(20.0, seed + 1000));
  net.run_for(10.0);

  TraceDigest d;
  d.u64(net.txs_injected());
  d.i64(net.sim().now());
  for (std::size_t i = 0; i < net.size(); ++i) d.u64(net.node(i).mempool_size());
  for (double v : net.mempool_latency().values()) d.f64(v);
  // Bandwidth accounting folds every delivered message; digest the per-class
  // totals in sorted class order.
  const auto& classes = net.sim().bandwidth().by_class();
  for (const auto& name : util::sorted_keys(classes)) {
    const auto& st = classes.at(name);
    d.str(name);
    d.u64(st.messages);
    d.u64(st.bytes);
  }
  d.bytes(net.sim().obs().tracer.bytes());
  return d.hex();
}

TEST(Determinism, FloodSameSeedSameTrace) {
  baselines::FloodNode::Config cfg;
  cfg.prevalidation.sig_mode = test::kFastSig;
  EXPECT_EQ(run_baseline<baselines::FloodNode>(cfg, 7),
            run_baseline<baselines::FloodNode>(cfg, 7));
}

TEST(Determinism, PeerReviewSameSeedSameTrace) {
  baselines::PeerReviewNode::Config cfg;
  cfg.prevalidation.sig_mode = test::kFastSig;
  EXPECT_EQ(run_baseline<baselines::PeerReviewNode>(cfg, 7),
            run_baseline<baselines::PeerReviewNode>(cfg, 7));
}

TEST(Determinism, NarwhalSameSeedSameTrace) {
  baselines::NarwhalNode::Config cfg;
  cfg.prevalidation.sig_mode = test::kFastSig;
  EXPECT_EQ(run_baseline<baselines::NarwhalNode>(cfg, 7),
            run_baseline<baselines::NarwhalNode>(cfg, 7));
}

TEST(Determinism, FloodParallelWorkersMatchSerial) {
  baselines::FloodNode::Config cfg;
  cfg.prevalidation.sig_mode = test::kFastSig;
  const std::string serial = run_baseline<baselines::FloodNode>(cfg, 7, 1);
  for (unsigned w : {2u, 4u, 8u}) {
    EXPECT_EQ(serial, run_baseline<baselines::FloodNode>(cfg, 7, w))
        << "flood baseline diverged at workers=" << w;
  }
}

TEST(Determinism, PeerReviewParallelWorkersMatchSerial) {
  baselines::PeerReviewNode::Config cfg;
  cfg.prevalidation.sig_mode = test::kFastSig;
  const std::string serial =
      run_baseline<baselines::PeerReviewNode>(cfg, 7, 1);
  for (unsigned w : {2u, 4u, 8u}) {
    EXPECT_EQ(serial, run_baseline<baselines::PeerReviewNode>(cfg, 7, w))
        << "peerreview baseline diverged at workers=" << w;
  }
}

TEST(Determinism, NarwhalParallelWorkersMatchSerial) {
  baselines::NarwhalNode::Config cfg;
  cfg.prevalidation.sig_mode = test::kFastSig;
  const std::string serial = run_baseline<baselines::NarwhalNode>(cfg, 7, 1);
  for (unsigned w : {2u, 4u, 8u}) {
    EXPECT_EQ(serial, run_baseline<baselines::NarwhalNode>(cfg, 7, w))
        << "narwhal baseline diverged at workers=" << w;
  }
}

// ------------------------------------------------------- causal span layer ----

// A short sharded run with block production: the richest causal surface
// (gossip, sync, batch-commit bridges, leader timers) at a size that keeps
// the W x k matrix cheap.
std::vector<std::uint8_t> causal_trace_bytes(unsigned workers,
                                             std::uint32_t k) {
  auto cfg = test::net_cfg(8, 5, /*malicious_fraction=*/0.125);
  cfg.trace = true;
  cfg.node.mempool_shards = k;
  cfg.workers = workers;
  harness::LoNetwork net(cfg);
  net.start_workload(test::load_cfg(15.0, 1005));
  consensus::LeaderConfig lc;
  lc.mean_block_interval = 2 * sim::kSecond;
  lc.seed = 7;
  net.start_block_production(lc, /*correct_leaders_only=*/true);
  net.run_for(8.0);
  return net.sim().obs().tracer.bytes();
}

// ISSUE 10 acceptance: span/parent ids are derived from simulator event keys,
// so the full causal trace — not just the event payloads — is byte-identical
// across worker counts, for flat and sharded mempools alike.
TEST(Determinism, CausalTraceByteIdenticalAcrossWorkersAndShards) {
  for (std::uint32_t k : {1u, 4u}) {
    const auto serial = causal_trace_bytes(/*workers=*/1, k);
    EXPECT_FALSE(serial.empty());
    for (unsigned workers : {2u, 4u}) {
      EXPECT_EQ(serial, causal_trace_bytes(workers, k))
          << "causal trace diverged between serial and " << workers
          << " workers at k=" << k;
    }
  }
}

// Structural well-formedness of the happens-before DAG: every delivery event
// that names a causing dispatch must find a matching send in that dispatch —
// the property loscope's critical-path walk relies on.
TEST(Determinism, CausalSpansFormACrossNodeHappensBeforeDag) {
  const auto file =
      obs::Tracer::from_bytes(causal_trace_bytes(/*workers=*/1, /*k=*/1));
  ASSERT_FALSE(file.events.empty());

  std::map<std::uint64_t, std::vector<const obs::TraceEvent*>> by_span;
  std::size_t with_cause = 0;
  for (const auto& ev : file.events) {
    if (ev.span != 0) {
      by_span[ev.span].push_back(&ev);
      ++with_cause;
    }
  }
  // The layer is live: the overwhelming majority of events in a harness run
  // are emitted inside some dispatch.
  EXPECT_GT(with_cause, file.events.size() / 2);
  EXPECT_GT(by_span.size(), 1u);

  std::size_t recvs_checked = 0;
  for (const auto& ev : file.events) {
    if (ev.kind != static_cast<std::uint16_t>(obs::EventKind::kMsgRecv) ||
        ev.parent == 0) {
      continue;
    }
    auto it = by_span.find(ev.parent);
    if (it == by_span.end()) continue;  // causing dispatch predates the ring
    bool matched = false;
    for (const auto* cause : it->second) {
      if (cause->kind == static_cast<std::uint16_t>(obs::EventKind::kMsgSend) &&
          cause->node == ev.peer && cause->peer == ev.node) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "recv at node " << ev.node << " (t=" << ev.at
                         << ") has parent span " << ev.parent
                         << " containing no matching send";
    ++recvs_checked;
  }
  EXPECT_GT(recvs_checked, 0u) << "no cross-node recv carried a parent span";
}

// -------------------------------------------------------- negative control ----

// The digest must actually catch the failure mode lolint guards against:
// the same logical set of events emitted in two different orders (exactly
// what iterating an unordered container produces on another platform) has to
// hash differently. If this test ever fails, the digest has gone
// order-blind and the equality tests above prove nothing.
TEST(Determinism, UnorderedEmissionIsCaught) {
  const harness::LoNetwork::BlameEvent e1{/*observer=*/1, /*accused=*/9, 0.5};
  const harness::LoNetwork::BlameEvent e2{/*observer=*/2, /*accused=*/9, 0.5};

  auto digest_events =
      [](const std::vector<harness::LoNetwork::BlameEvent>& evs) {
        TraceDigest d;
        for (const auto& ev : evs) {
          d.u64(ev.observer);
          d.u64(ev.accused);
          d.f64(ev.when_s);
        }
        return d.hex();
      };

  EXPECT_NE(digest_events({e1, e2}), digest_events({e2, e1}))
      << "trace digest failed to distinguish emission orders";
}

}  // namespace
}  // namespace lo
