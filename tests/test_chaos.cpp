// Chaos tests: crash/restart lifecycle, random churn, flaky links and
// latency spikes driven by the deterministic FaultInjector. The protocol
// must stay convergent and accurate (Sec. 3.2) under every schedule, and
// the whole run must replay bit-for-bit from the seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "harness/lo_network.hpp"
#include "test_net_util.hpp"
#include "util/ordered.hpp"

namespace lo {
namespace {

using test::load_cfg;
using test::net_cfg;

double first_suspicion_of(const harness::LoNetwork& net, core::NodeId accused) {
  double first = -1.0;
  for (const auto& ev : net.suspicion_events()) {
    if (ev.accused != accused) continue;
    if (first < 0.0 || ev.when_s < first) first = ev.when_s;
  }
  return first;
}

TEST(Chaos, CrashedNodeIsSilentUntilRestart) {
  harness::LoNetwork net(net_cfg(8, 3));
  net.start_workload(load_cfg(5.0, 5));
  net.run_for(5.0);
  net.crash_node(2);
  EXPECT_TRUE(net.node_down(2));
  EXPECT_TRUE(net.node(2).crashed());
  const auto log_at_crash = net.node(2).log().count();
  const auto pool_at_crash = net.node(2).mempool_size();
  net.run_for(8.0);
  // A dead host neither commits nor receives anything.
  EXPECT_EQ(net.node(2).log().count(), log_at_crash);
  EXPECT_EQ(net.node(2).mempool_size(), pool_at_crash);
  // Crashing twice is a no-op, not a second incarnation.
  net.crash_node(2);
  EXPECT_EQ(net.total_stats().crashes, 1u);
  net.restart_node(2);
  EXPECT_FALSE(net.node_down(2));
  EXPECT_FALSE(net.node(2).crashed());
  EXPECT_EQ(net.total_stats().restarts, 1u);
}

TEST(Chaos, CrashMidSyncRecoversFullBacklog) {
  // A node loses its entire volatile state — including the mempool — while
  // hundreds of transactions flow past it. On restart it must refetch the
  // content for its surviving commitment log AND catch up on everything it
  // missed through the ordinary sketch/bulk-sync path, without blaming
  // anyone for the gap.
  harness::LoNetwork net(net_cfg(12, 7));
  net.start_invariant_checker(500 * sim::kMillisecond);
  net.start_workload(load_cfg(12.0, 9));
  net.run_for(6.0);  // sync traffic is in full swing
  ASSERT_GT(net.node(5).mempool_size(), 20u);
  net.crash_node(5, /*wipe_mempool=*/true);
  EXPECT_EQ(net.node(5).mempool_size(), 0u);
  EXPECT_GT(net.node(5).log().count(), 0u) << "commitment log is disk";
  net.run_for(10.0);  // backlog builds while the node is down
  net.stop_workload();
  net.run_for(1.0);
  const auto total = net.txs_injected();
  ASSERT_GT(total, 100u);

  net.restart_node(5);
  net.run_for(120.0);  // recovery: content refetch + bulk sync
  EXPECT_EQ(net.node(5).log().count(), total)
      << "restarted node must commit the full backlog";
  EXPECT_EQ(net.node(5).mempool_size(), total)
      << "restarted node must recover all content, including wiped txs";
  // Accuracy: the crash fabricated no evidence against anyone, and the
  // other nodes' transient suspicions of the dead node were retracted.
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(net.node(i).registry().exposed().empty()) << "node " << i;
    EXPECT_FALSE(net.node(i).registry().is_suspected(5)) << "node " << i;
  }
  EXPECT_TRUE(net.invariant_violations().empty());
}

TEST(Chaos, SuspicionsOfCrashedNodeAreRetractedAfterRecovery) {
  harness::LoNetwork net(net_cfg(10, 11));
  net.start_invariant_checker(sim::kSecond);
  net.start_workload(load_cfg(6.0, 13));
  net.run_for(5.0);
  net.crash_node(0);
  net.run_for(25.0);  // timeout + exponential backoff retries, then suspicion
  std::size_t suspecting = 0;
  for (std::size_t i = 1; i < net.size(); ++i) {
    if (net.node(i).registry().is_suspected(0)) ++suspecting;
  }
  EXPECT_GT(suspecting, 0u) << "a crashed node must draw suspicion";

  net.restart_node(0);
  net.run_for(40.0);
  for (std::size_t i = 1; i < net.size(); ++i) {
    EXPECT_FALSE(net.node(i).registry().is_suspected(0))
        << "node " << i << " kept suspecting a recovered node";
    EXPECT_FALSE(net.node(i).registry().is_exposed(0))
        << "a correct node must never be exposed";
  }
  const auto stats = net.total_stats();
  EXPECT_GT(stats.timeouts_fired, 0u);
  EXPECT_GT(stats.retries_sent, 0u);
  EXPECT_GT(stats.suspicions_raised, 0u);
  EXPECT_EQ(stats.suspicions_raised, stats.suspicions_retracted)
      << "every suspicion of the recovered node must be retracted";
  EXPECT_TRUE(net.invariant_violations().empty());
}

TEST(Chaos, ChurnThreeOfSixteenConvergesAfterChurnStops) {
  harness::LoNetwork net(net_cfg(16, 17));
  net.start_invariant_checker(500 * sim::kMillisecond);
  net.start_workload(load_cfg(8.0, 19));
  sim::ChurnConfig churn;
  churn.mean_gap = 2 * sim::kSecond;
  churn.min_down = 2 * sim::kSecond;
  churn.max_down = 5 * sim::kSecond;
  churn.max_concurrent_down = 3;
  net.start_churn(churn);
  net.run_for(25.0);
  EXPECT_GT(net.faults().crashes_injected(), 3u);
  net.stop_churn();
  net.stop_workload();
  // Scheduled restarts drain within max_down; then recovery syncs run.
  net.run_for(60.0);
  EXPECT_EQ(net.faults().down_count(), 0u);
  EXPECT_EQ(net.faults().crashes_injected(), net.faults().restarts_injected());

  const auto total = net.txs_injected();
  ASSERT_GT(total, 50u);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.node(i).log().count(), total) << "node " << i;
    EXPECT_EQ(net.node(i).mempool_size(), total) << "node " << i;
    EXPECT_TRUE(net.node(i).registry().exposed().empty())
        << "churn must never produce exposure evidence (node " << i << ")";
  }
  EXPECT_TRUE(net.invariant_violations().empty());
}

TEST(Chaos, FlakyLinksAndLatencySpikesStillConverge) {
  harness::LoNetwork net(net_cfg(12, 23));
  net.start_invariant_checker(sim::kSecond);
  auto& faults = net.faults();
  // Heavy loss on a few links plus a 4x latency spike mid-run.
  faults.flaky_link(0, 1, 2 * sim::kSecond, 12 * sim::kSecond, 0.6);
  faults.flaky_link(3, 7, 0, 15 * sim::kSecond, 0.5);
  faults.latency_spike(4 * sim::kSecond, 9 * sim::kSecond, 4.0);
  net.start_workload(load_cfg(8.0, 29));
  net.run_for(15.0);
  net.stop_workload();
  net.run_for(30.0);
  EXPECT_GT(faults.link_drops(), 0u);
  const auto total = net.txs_injected();
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.node(i).mempool_size(), total) << "node " << i;
    EXPECT_TRUE(net.node(i).registry().exposed().empty());
  }
  EXPECT_TRUE(net.invariant_violations().empty());
}

TEST(Chaos, ExponentialBackoffDefersSuspicion) {
  // With exponential backoff (1+2+4+8 s before the retry budget runs out),
  // an unreachable peer draws first suspicion much later than under the
  // legacy fixed-interval schedule (1+1+1+1 s). Jitter is disabled so both
  // timelines are exact.
  auto run = [](double factor) {
    auto cfg = net_cfg(6, 31);
    cfg.node.backoff_factor = factor;
    cfg.node.backoff_jitter = 0.0;
    harness::LoNetwork net(cfg);
    net.sim().set_delivery_filter(
        [](core::NodeId, core::NodeId to) { return to != 0; });
    net.run_for(30.0);
    return first_suspicion_of(net, 0);
  };
  const double fixed = run(1.0);
  const double backoff = run(2.0);
  ASSERT_GE(fixed, 0.0);
  ASSERT_GE(backoff, 0.0);
  EXPECT_LT(fixed, 9.0);
  EXPECT_GT(backoff, 11.0);
  EXPECT_GT(backoff, fixed + 5.0);
}

TEST(Chaos, ScheduledCrashWindowFiresOnTime) {
  harness::LoNetwork net(net_cfg(8, 37));
  net.faults().crash_at(3 * sim::kSecond, 4, 2 * sim::kSecond);
  net.run_for(2.9);
  EXPECT_FALSE(net.node_down(4));
  net.run_for(0.2);
  EXPECT_TRUE(net.node_down(4));
  EXPECT_TRUE(net.faults().is_down(4));
  net.run_for(2.0);
  EXPECT_FALSE(net.node_down(4));
  EXPECT_EQ(net.faults().crashes_injected(), 1u);
  EXPECT_EQ(net.faults().restarts_injected(), 1u);
}

TEST(Chaos, DeterministicReplay) {
  // The full chaos machinery — churn, flaky links, latency spikes, crash
  // recovery — must replay bit-for-bit from the (network, workload) seeds.
  auto run = [] {
    harness::LoNetwork net(net_cfg(12, 41));
    net.start_invariant_checker(sim::kSecond);
    auto& faults = net.faults();
    faults.flaky_link(1, 2, sim::kSecond, 10 * sim::kSecond, 0.4);
    faults.latency_spike(3 * sim::kSecond, 6 * sim::kSecond, 3.0);
    sim::ChurnConfig churn;
    churn.mean_gap = 3 * sim::kSecond;
    churn.max_concurrent_down = 2;
    churn.wipe_mempool = true;
    net.start_churn(churn);
    net.start_workload(load_cfg(8.0, 43));
    net.run_for(20.0);
    net.stop_churn();
    net.stop_workload();
    net.run_for(30.0);
    std::vector<std::size_t> pools;
    for (std::size_t i = 0; i < net.size(); ++i) {
      pools.push_back(net.node(i).mempool_size());
    }
    const auto stats = net.total_stats();
    return std::tuple{net.txs_injected(),
                      net.sim().bandwidth().total_bytes(),
                      pools,
                      net.faults().crashes_injected(),
                      net.faults().link_drops(),
                      stats.retries_sent,
                      stats.timeouts_fired,
                      stats.suspicions_raised,
                      net.suspicion_events().size()};
  };
  EXPECT_EQ(run(), run());
}

TEST(Chaos, InvariantSweepIsCleanOnHealthyNetwork) {
  harness::LoNetwork net(net_cfg(8, 47));
  net.start_workload(load_cfg(5.0, 53));
  net.run_for(8.0);
  EXPECT_TRUE(net.check_invariants().empty());
  EXPECT_TRUE(net.invariant_violations().empty());
}

TEST(Chaos, PreCrashTimersNeverFireIntoNewIncarnation) {
  // Regression: request/retry timers armed before a crash must be dead on
  // arrival after restart() — the epoch bump has to swallow them, or a
  // restarted node would fire timeouts (and potentially suspicions) that
  // belong to its previous life.
  harness::LoNetwork net(net_cfg(6, 61));
  // Total blackout: every sync request stays pending, arming full retry
  // chains (timers due up to ~15 s out) on every node.
  net.sim().set_delivery_filter(
      [](core::NodeId, core::NodeId) { return false; });
  net.run_for(3.0);
  ASSERT_GT(net.node(0).stats().requests_sent, 0u);
  ASSERT_GT(net.node(0).stats().timeouts_fired, 0u);

  // Heal the network, then bounce node 0. All its pre-crash timers are still
  // scheduled inside the simulator — they must all hit the epoch wall.
  net.sim().set_delivery_filter(nullptr);
  const auto suppressed_before = net.sim().fault_counters().suppressed_callbacks;
  net.crash_node(0);
  net.restart_node(0);
  const auto timeouts_at_restart = net.node(0).stats().timeouts_fired;
  net.run_for(20.0);  // past every pre-crash retry deadline
  EXPECT_GT(net.sim().fault_counters().suppressed_callbacks, suppressed_before)
      << "stale pre-crash timers must be suppressed, not silently dropped";
  // Post-restart the network is healthy: every request node 0 arms is
  // answered well inside its timeout, so any timeout increment would have to
  // come from a pre-crash timer leaking into the new incarnation.
  EXPECT_EQ(net.node(0).stats().timeouts_fired, timeouts_at_restart);
  EXPECT_EQ(net.node(0).stats().suspicions_raised, 0u);
}

// ------------------------------------------------- membership-enabled runs ----

// Membership timing used by the chaos scenarios: constant 50 ms latency keeps
// the direct probe RTT (100 ms) inside the ping timeout, and the period leaves
// room for the full indirect round (timeout + four 50 ms hops = 320 ms) so a
// reachable peer is never suspected merely because only the proxy path works.
harness::NetworkConfig membership_cfg(std::size_t n, std::uint64_t seed) {
  auto cfg = net_cfg(n, seed);
  cfg.city_latency = false;
  cfg.node.membership.enabled = true;
  cfg.node.membership.protocol_period = 500 * sim::kMillisecond;
  cfg.node.membership.ping_timeout = 120 * sim::kMillisecond;
  return cfg;
}

TEST(Chaos, MembershipConfirmsCrashAndAbsolvesTimeouts) {
  auto cfg = membership_cfg(16, 71);
  harness::LoNetwork net(cfg);
  net.start_invariant_checker(sim::kSecond);
  net.start_workload(load_cfg(5.0, 73));
  net.run_for(5.0);
  ASSERT_NE(net.node(0).swim(), nullptr);

  net.crash_node(3);
  // Worst-case first probe: one full rotation (n-1 periods); then the
  // suspicion window (suspicion_periods periods) plus dissemination slack.
  const double bound_s =
      sim::to_seconds(cfg.node.membership.protocol_period) *
      (static_cast<double>(cfg.num_nodes) +
       cfg.node.membership.suspicion_periods + 8);
  net.run_for(bound_s + 15.0);  // also past the pre-confirm retry chains

  std::size_t confirms = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (i == 3) continue;
    ASSERT_NE(net.node(i).swim(), nullptr) << "node " << i;
    if (net.node(i).swim()->confirmed_faulty(3)) ++confirms;
  }
  EXPECT_EQ(confirms, net.size() - 1)
      << "every live node must confirm the crashed one";
  ASSERT_GT(net.membership_detection_latency().count(), 0u);
  for (double s : net.membership_detection_latency().values()) {
    EXPECT_LE(s, bound_s) << "detection latency must be bounded";
  }
  // Accuracy in a loss-free run: the only member ever suspected or confirmed
  // anywhere is the node that actually crashed.
  for (const auto& ev : net.member_events()) {
    if (ev.state != membership::MemberState::kAlive) {
      EXPECT_EQ(ev.member, 3u) << "false " << member_state_name(ev.state)
                               << " of live node " << ev.member;
    }
  }
  // Liveness/misbehavior separation: request timeouts that expired after the
  // detector confirmed the crash were absolved instead of raising blame.
  std::uint64_t absolved = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    absolved += net.node(i).suspicions_absolved();
  }
  EXPECT_GT(absolved, 0u);
  EXPECT_TRUE(net.invariant_violations().empty());

  // Rejoin: the restarted node announces a strictly higher incarnation,
  // which overrides confirmed everywhere — no manual membership reset.
  net.restart_node(3);
  net.run_for(15.0);
  EXPECT_GT(net.node(3).member_incarnation(), 0u);
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(net.node(i).swim()->presumed_live(3))
        << "node " << i << " still thinks the rejoined node is faulty";
  }
}

TEST(Chaos, AsymmetricPartitionCausesNoMembershipSuspicion) {
  // One-way loss 2 -> 9: pings from 2 die, acks from 9 die, but every
  // indirect path is intact. SWIM's ping-req round must mask the broken
  // direction completely — neither endpoint may ever be suspected, let alone
  // confirmed, by anyone.
  auto cfg = membership_cfg(12, 79);
  harness::LoNetwork net(cfg);
  net.start_invariant_checker(sim::kSecond);
  net.faults().flaky_link(2, 9, 0, 40 * sim::kSecond, 1.0,
                          /*bidirectional=*/false);
  net.start_workload(load_cfg(4.0, 83));
  net.run_for(30.0);
  net.stop_workload();
  net.run_for(30.0);  // link heals at 40 s; accountability drains after

  for (const auto& ev : net.member_events()) {
    EXPECT_EQ(ev.state, membership::MemberState::kAlive)
        << "membership " << member_state_name(ev.state) << " of node "
        << ev.member << " under a one-way link";
  }
  // The accountability layer may transiently blame across the broken
  // direction (requests really were lost) but must retract once the link
  // heals and the logs reconverge; nothing hardens into exposure.
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(net.node(i).registry().exposed().empty()) << "node " << i;
    for (std::size_t j = 0; j < net.size(); ++j) {
      EXPECT_FALSE(net.node(i).registry().is_suspected(
          static_cast<core::NodeId>(j)))
          << i << " still suspects " << j;
    }
  }
  EXPECT_TRUE(net.invariant_violations().empty());
}

TEST(Chaos, FlappingPeerRejoinsWithGrowingIncarnation) {
  auto cfg = membership_cfg(10, 89);
  harness::LoNetwork net(cfg);
  net.start_invariant_checker(sim::kSecond);
  net.start_workload(load_cfg(4.0, 97));
  net.run_for(3.0);
  // Five down/up cycles, each long enough for suspicion to set in but short
  // enough that confirms and rejoins interleave aggressively.
  for (int cycle = 0; cycle < 5; ++cycle) {
    net.crash_node(7);
    net.run_for(3.0);
    net.restart_node(7);
    net.run_for(3.0);
  }
  net.stop_workload();
  net.run_for(25.0);

  // The durable incarnation grew monotonically across the flaps (one bump
  // per restart, plus any refutations of in-flight suspicions).
  EXPECT_GE(net.node(7).member_incarnation(), 5u);
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (i == 7) continue;
    EXPECT_TRUE(net.node(i).swim()->presumed_live(7)) << "node " << i;
    EXPECT_TRUE(net.node(i).registry().exposed().empty()) << "node " << i;
  }
  // No stale confirm of the flapper may survive the final rejoin, and no
  // live node was ever suspected or confirmed.
  for (const auto& ev : net.member_events()) {
    if (ev.state != membership::MemberState::kAlive) {
      EXPECT_EQ(ev.member, 7u);
    }
  }
  EXPECT_TRUE(net.invariant_violations().empty());
}

TEST(Chaos, MassChurnWithMembershipStaysAccurateAndConverges) {
  // 20% of the network flapping at once: the detector must track each life
  // cycle without ever confirming a node that never crashed, and the mempool
  // must still converge once the churn stops.
  auto cfg = membership_cfg(20, 101);
  harness::LoNetwork net(cfg);
  net.start_invariant_checker(sim::kSecond);
  net.start_workload(load_cfg(6.0, 103));
  sim::ChurnConfig churn;
  churn.mean_gap = sim::kSecond;
  churn.min_down = 2 * sim::kSecond;
  churn.max_down = 6 * sim::kSecond;
  churn.max_concurrent_down = 4;  // 20% of 20 nodes
  net.start_churn(churn);
  net.run_for(30.0);
  EXPECT_GT(net.faults().crashes_injected(), 5u);
  net.stop_churn();
  net.stop_workload();
  net.run_for(90.0);
  EXPECT_EQ(net.faults().down_count(), 0u);

  // Accuracy under churn: anything beyond alive only ever hit nodes that
  // really crashed at some point.
  for (const auto& ev : net.member_events()) {
    if (ev.state != membership::MemberState::kAlive) {
      EXPECT_TRUE(net.ever_crashed(ev.member))
          << "node " << ev.member << " was "
          << member_state_name(ev.state) << " but never crashed";
    }
  }
  // Convergence: everyone is presumed alive again and holds the full set.
  const auto total = net.txs_injected();
  ASSERT_GT(total, 50u);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.node(i).mempool_size(), total) << "node " << i;
    EXPECT_TRUE(net.node(i).registry().exposed().empty()) << "node " << i;
    for (std::size_t j = 0; j < net.size(); ++j) {
      if (i == j) continue;
      EXPECT_TRUE(net.node(i).swim()->presumed_live(
          static_cast<core::NodeId>(j)))
          << i << " still distrusts " << j;
    }
  }
  EXPECT_TRUE(net.invariant_violations().empty());
}

TEST(Chaos, MembershipScalesToThousandNodes) {
  // The scalability claim: detection latency is governed by protocol periods,
  // not by per-peer request timeouts — at n=1000 a single crash is confirmed
  // network-wide within a bounded number of periods, and a loss-free run
  // produces zero false suspicion. No workload: this isolates the
  // SWIM traffic itself.
  auto cfg = membership_cfg(1000, 107);
  cfg.node.membership.protocol_period = sim::kSecond;
  cfg.node.membership.ping_timeout = 300 * sim::kMillisecond;
  // Heavy config: ride the parallel engine (same-seed runs are byte-identical
  // for every worker count, so this changes wall-clock only).
  cfg.workers = 4;
  harness::LoNetwork net(cfg);
  net.run_for(3.0);
  net.crash_node(123);
  // With 999 independent probers the first probe of the victim lands within
  // a couple of periods; the suspicion window plus gossip spread bounds the
  // rest. 25 periods is generous and still far below the ~999-period bound
  // a single prober would need.
  net.run_for(25.0);

  std::size_t confirms = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (i == 123) continue;
    if (net.node(i).swim()->confirmed_faulty(123)) ++confirms;
  }
  EXPECT_EQ(confirms, net.size() - 1);
  for (const auto& ev : net.member_events()) {
    if (ev.state != membership::MemberState::kAlive) {
      EXPECT_EQ(ev.member, 123u)
          << "false " << member_state_name(ev.state) << " at scale";
    }
  }
  EXPECT_TRUE(net.check_invariants().empty());
}

// ---------------------------------------------- cross-shard accountability ----

TEST(Chaos, CrossShardCensorIsSuspectedDespiteHonestShards) {
  // A Byzantine node censors exactly one of four shards while serving the
  // other three honestly (DESIGN.md §7). The per-shard coverage watches must
  // converge on suspicion anyway, and the content-acknowledgement resolution
  // path — which the honest shards keep exercising — must NOT lift the
  // complaint: only shard snapshots the suspect's own commitments dominate
  // resolve, and the censored shard's never does.
  auto cfg = net_cfg(12, 211, /*malicious_fraction=*/0.08);  // exactly 1 node
  cfg.node.mempool_shards = 4;
  cfg.malicious.censor_shard = 2;
  harness::LoNetwork net(cfg);
  ASSERT_EQ(net.malicious_count(), 1u);
  net.start_invariant_checker(sim::kSecond);
  net.start_workload(load_cfg(20.0, 213));
  net.run_for(45.0);
  net.stop_workload();
  net.run_for(15.0);

  std::size_t bad = net.size();
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) bad = i;
  }
  ASSERT_LT(bad, net.size());
  const auto bad_id = static_cast<core::NodeId>(bad);

  // Detection converges network-wide and within the run.
  const auto times = net.detection_times();
  EXPECT_GE(times.suspicion_complete_s, 0.0)
      << "not every correct node suspected the cross-shard censor";
  EXPECT_LT(times.suspicion_complete_s, 45.0);
  const double first = first_suspicion_of(net, bad_id);
  EXPECT_GE(first, 0.0);

  for (std::size_t i = 0; i < net.size(); ++i) {
    if (i == bad) continue;
    // The complaint survives the censor's honest service in shards 0/1/3.
    EXPECT_TRUE(net.node(i).registry().is_suspected(bad_id))
        << "node " << i << " let honest service in other shards lift the "
        << "censored shard's complaint";
    // Accuracy: suspicion only; censorship without a block leaves no
    // transferable evidence, so the censor must not be *exposed* — and no
    // correct node may be blamed at all.
    EXPECT_FALSE(net.node(i).registry().is_exposed(bad_id));
    for (core::NodeId s : util::sorted_keys(net.node(i).registry().suspected())) {
      EXPECT_EQ(s, bad_id) << "correct node " << s << " falsely suspected";
    }
  }

  // The attack itself worked as configured: the censor's honest shard logs
  // track the workload while its censored shard log stays empty of foreign
  // transactions (it committed only what it originated, if anything).
  std::size_t honest_total = 0;
  for (std::uint32_t s : {0u, 1u, 3u}) {
    honest_total += net.node(bad).log(s).count();
  }
  EXPECT_GT(honest_total, 0u) << "censor should participate in other shards";
  for (const auto& id : net.node(bad).log(2).order()) {
    EXPECT_TRUE(net.node(bad).has_tx(id));
  }
  EXPECT_TRUE(net.invariant_violations().empty());
}

TEST(Chaos, EquivocationInAnyShardExposesGlobally) {
  // Composable accountability (DESIGN.md §7): equivocation evidence is
  // shard-local (two conflicting headers of the SAME shard log), but a peer
  // exposed in any shard is exposed everywhere — the registry's exposed set
  // is global, so one forked shard burns the identity for all shards.
  auto cfg = net_cfg(16, 223, /*malicious_fraction=*/0.06);  // 1 node
  cfg.node.mempool_shards = 4;
  cfg.malicious.equivocate = true;
  harness::LoNetwork net(cfg);
  ASSERT_EQ(net.malicious_count(), 1u);
  net.start_workload(load_cfg(15.0, 227));
  net.run_for(40.0);

  const auto times = net.detection_times();
  EXPECT_GE(times.exposure_complete_s, 0.0)
      << "sharded equivocator not exposed at every correct node";
  EXPECT_GE(times.first_exposure_s, 0.0);
  EXPECT_LE(times.first_exposure_s, times.exposure_complete_s);
}

}  // namespace
}  // namespace lo
