// Chaos tests: crash/restart lifecycle, random churn, flaky links and
// latency spikes driven by the deterministic FaultInjector. The protocol
// must stay convergent and accurate (Sec. 3.2) under every schedule, and
// the whole run must replay bit-for-bit from the seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "harness/lo_network.hpp"
#include "test_net_util.hpp"

namespace lo {
namespace {

using test::load_cfg;
using test::net_cfg;

double first_suspicion_of(const harness::LoNetwork& net, core::NodeId accused) {
  double first = -1.0;
  for (const auto& ev : net.suspicion_events()) {
    if (ev.accused != accused) continue;
    if (first < 0.0 || ev.when_s < first) first = ev.when_s;
  }
  return first;
}

TEST(Chaos, CrashedNodeIsSilentUntilRestart) {
  harness::LoNetwork net(net_cfg(8, 3));
  net.start_workload(load_cfg(5.0, 5));
  net.run_for(5.0);
  net.crash_node(2);
  EXPECT_TRUE(net.node_down(2));
  EXPECT_TRUE(net.node(2).crashed());
  const auto log_at_crash = net.node(2).log().count();
  const auto pool_at_crash = net.node(2).mempool_size();
  net.run_for(8.0);
  // A dead host neither commits nor receives anything.
  EXPECT_EQ(net.node(2).log().count(), log_at_crash);
  EXPECT_EQ(net.node(2).mempool_size(), pool_at_crash);
  // Crashing twice is a no-op, not a second incarnation.
  net.crash_node(2);
  EXPECT_EQ(net.total_stats().crashes, 1u);
  net.restart_node(2);
  EXPECT_FALSE(net.node_down(2));
  EXPECT_FALSE(net.node(2).crashed());
  EXPECT_EQ(net.total_stats().restarts, 1u);
}

TEST(Chaos, CrashMidSyncRecoversFullBacklog) {
  // A node loses its entire volatile state — including the mempool — while
  // hundreds of transactions flow past it. On restart it must refetch the
  // content for its surviving commitment log AND catch up on everything it
  // missed through the ordinary sketch/bulk-sync path, without blaming
  // anyone for the gap.
  harness::LoNetwork net(net_cfg(12, 7));
  net.start_invariant_checker(500 * sim::kMillisecond);
  net.start_workload(load_cfg(12.0, 9));
  net.run_for(6.0);  // sync traffic is in full swing
  ASSERT_GT(net.node(5).mempool_size(), 20u);
  net.crash_node(5, /*wipe_mempool=*/true);
  EXPECT_EQ(net.node(5).mempool_size(), 0u);
  EXPECT_GT(net.node(5).log().count(), 0u) << "commitment log is disk";
  net.run_for(10.0);  // backlog builds while the node is down
  net.stop_workload();
  net.run_for(1.0);
  const auto total = net.txs_injected();
  ASSERT_GT(total, 100u);

  net.restart_node(5);
  net.run_for(120.0);  // recovery: content refetch + bulk sync
  EXPECT_EQ(net.node(5).log().count(), total)
      << "restarted node must commit the full backlog";
  EXPECT_EQ(net.node(5).mempool_size(), total)
      << "restarted node must recover all content, including wiped txs";
  // Accuracy: the crash fabricated no evidence against anyone, and the
  // other nodes' transient suspicions of the dead node were retracted.
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(net.node(i).registry().exposed().empty()) << "node " << i;
    EXPECT_FALSE(net.node(i).registry().is_suspected(5)) << "node " << i;
  }
  EXPECT_TRUE(net.invariant_violations().empty());
}

TEST(Chaos, SuspicionsOfCrashedNodeAreRetractedAfterRecovery) {
  harness::LoNetwork net(net_cfg(10, 11));
  net.start_invariant_checker(sim::kSecond);
  net.start_workload(load_cfg(6.0, 13));
  net.run_for(5.0);
  net.crash_node(0);
  net.run_for(25.0);  // timeout + exponential backoff retries, then suspicion
  std::size_t suspecting = 0;
  for (std::size_t i = 1; i < net.size(); ++i) {
    if (net.node(i).registry().is_suspected(0)) ++suspecting;
  }
  EXPECT_GT(suspecting, 0u) << "a crashed node must draw suspicion";

  net.restart_node(0);
  net.run_for(40.0);
  for (std::size_t i = 1; i < net.size(); ++i) {
    EXPECT_FALSE(net.node(i).registry().is_suspected(0))
        << "node " << i << " kept suspecting a recovered node";
    EXPECT_FALSE(net.node(i).registry().is_exposed(0))
        << "a correct node must never be exposed";
  }
  const auto stats = net.total_stats();
  EXPECT_GT(stats.timeouts_fired, 0u);
  EXPECT_GT(stats.retries_sent, 0u);
  EXPECT_GT(stats.suspicions_raised, 0u);
  EXPECT_EQ(stats.suspicions_raised, stats.suspicions_retracted)
      << "every suspicion of the recovered node must be retracted";
  EXPECT_TRUE(net.invariant_violations().empty());
}

TEST(Chaos, ChurnThreeOfSixteenConvergesAfterChurnStops) {
  harness::LoNetwork net(net_cfg(16, 17));
  net.start_invariant_checker(500 * sim::kMillisecond);
  net.start_workload(load_cfg(8.0, 19));
  sim::ChurnConfig churn;
  churn.mean_gap = 2 * sim::kSecond;
  churn.min_down = 2 * sim::kSecond;
  churn.max_down = 5 * sim::kSecond;
  churn.max_concurrent_down = 3;
  net.start_churn(churn);
  net.run_for(25.0);
  EXPECT_GT(net.faults().crashes_injected(), 3u);
  net.stop_churn();
  net.stop_workload();
  // Scheduled restarts drain within max_down; then recovery syncs run.
  net.run_for(60.0);
  EXPECT_EQ(net.faults().down_count(), 0u);
  EXPECT_EQ(net.faults().crashes_injected(), net.faults().restarts_injected());

  const auto total = net.txs_injected();
  ASSERT_GT(total, 50u);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.node(i).log().count(), total) << "node " << i;
    EXPECT_EQ(net.node(i).mempool_size(), total) << "node " << i;
    EXPECT_TRUE(net.node(i).registry().exposed().empty())
        << "churn must never produce exposure evidence (node " << i << ")";
  }
  EXPECT_TRUE(net.invariant_violations().empty());
}

TEST(Chaos, FlakyLinksAndLatencySpikesStillConverge) {
  harness::LoNetwork net(net_cfg(12, 23));
  net.start_invariant_checker(sim::kSecond);
  auto& faults = net.faults();
  // Heavy loss on a few links plus a 4x latency spike mid-run.
  faults.flaky_link(0, 1, 2 * sim::kSecond, 12 * sim::kSecond, 0.6);
  faults.flaky_link(3, 7, 0, 15 * sim::kSecond, 0.5);
  faults.latency_spike(4 * sim::kSecond, 9 * sim::kSecond, 4.0);
  net.start_workload(load_cfg(8.0, 29));
  net.run_for(15.0);
  net.stop_workload();
  net.run_for(30.0);
  EXPECT_GT(faults.link_drops(), 0u);
  const auto total = net.txs_injected();
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.node(i).mempool_size(), total) << "node " << i;
    EXPECT_TRUE(net.node(i).registry().exposed().empty());
  }
  EXPECT_TRUE(net.invariant_violations().empty());
}

TEST(Chaos, ExponentialBackoffDefersSuspicion) {
  // With exponential backoff (1+2+4+8 s before the retry budget runs out),
  // an unreachable peer draws first suspicion much later than under the
  // legacy fixed-interval schedule (1+1+1+1 s). Jitter is disabled so both
  // timelines are exact.
  auto run = [](double factor) {
    auto cfg = net_cfg(6, 31);
    cfg.node.backoff_factor = factor;
    cfg.node.backoff_jitter = 0.0;
    harness::LoNetwork net(cfg);
    net.sim().set_delivery_filter(
        [](core::NodeId, core::NodeId to) { return to != 0; });
    net.run_for(30.0);
    return first_suspicion_of(net, 0);
  };
  const double fixed = run(1.0);
  const double backoff = run(2.0);
  ASSERT_GE(fixed, 0.0);
  ASSERT_GE(backoff, 0.0);
  EXPECT_LT(fixed, 9.0);
  EXPECT_GT(backoff, 11.0);
  EXPECT_GT(backoff, fixed + 5.0);
}

TEST(Chaos, ScheduledCrashWindowFiresOnTime) {
  harness::LoNetwork net(net_cfg(8, 37));
  net.faults().crash_at(3 * sim::kSecond, 4, 2 * sim::kSecond);
  net.run_for(2.9);
  EXPECT_FALSE(net.node_down(4));
  net.run_for(0.2);
  EXPECT_TRUE(net.node_down(4));
  EXPECT_TRUE(net.faults().is_down(4));
  net.run_for(2.0);
  EXPECT_FALSE(net.node_down(4));
  EXPECT_EQ(net.faults().crashes_injected(), 1u);
  EXPECT_EQ(net.faults().restarts_injected(), 1u);
}

TEST(Chaos, DeterministicReplay) {
  // The full chaos machinery — churn, flaky links, latency spikes, crash
  // recovery — must replay bit-for-bit from the (network, workload) seeds.
  auto run = [] {
    harness::LoNetwork net(net_cfg(12, 41));
    net.start_invariant_checker(sim::kSecond);
    auto& faults = net.faults();
    faults.flaky_link(1, 2, sim::kSecond, 10 * sim::kSecond, 0.4);
    faults.latency_spike(3 * sim::kSecond, 6 * sim::kSecond, 3.0);
    sim::ChurnConfig churn;
    churn.mean_gap = 3 * sim::kSecond;
    churn.max_concurrent_down = 2;
    churn.wipe_mempool = true;
    net.start_churn(churn);
    net.start_workload(load_cfg(8.0, 43));
    net.run_for(20.0);
    net.stop_churn();
    net.stop_workload();
    net.run_for(30.0);
    std::vector<std::size_t> pools;
    for (std::size_t i = 0; i < net.size(); ++i) {
      pools.push_back(net.node(i).mempool_size());
    }
    const auto stats = net.total_stats();
    return std::tuple{net.txs_injected(),
                      net.sim().bandwidth().total_bytes(),
                      pools,
                      net.faults().crashes_injected(),
                      net.faults().link_drops(),
                      stats.retries_sent,
                      stats.timeouts_fired,
                      stats.suspicions_raised,
                      net.suspicion_events().size()};
  };
  EXPECT_EQ(run(), run());
}

TEST(Chaos, InvariantSweepIsCleanOnHealthyNetwork) {
  harness::LoNetwork net(net_cfg(8, 47));
  net.start_workload(load_cfg(5.0, 53));
  net.run_for(8.0);
  EXPECT_TRUE(net.check_invariants().empty());
  EXPECT_TRUE(net.invariant_violations().empty());
}

}  // namespace
}  // namespace lo
