// Consensus-stub tests: leader schedule statistics and chain settlement.
#include <gtest/gtest.h>

#include "consensus/chain.hpp"
#include "consensus/leader.hpp"
#include "core/block.hpp"
#include "util/rng.hpp"

namespace lo::consensus {
namespace {

TEST(LeaderSchedule, MeanIntervalMatchesConfig) {
  LeaderConfig cfg;
  cfg.mean_block_interval = 12 * sim::kSecond;
  LeaderSchedule sched(100, cfg);
  double total = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) total += static_cast<double>(sched.next_interval());
  EXPECT_NEAR(total / kN, 12e6, 12e6 * 0.05);
}

TEST(LeaderSchedule, FixedIntervals) {
  LeaderConfig cfg;
  cfg.mean_block_interval = 5 * sim::kSecond;
  cfg.exponential_intervals = false;
  LeaderSchedule sched(10, cfg);
  EXPECT_EQ(sched.next_interval(), 5 * sim::kSecond);
}

TEST(LeaderSchedule, LeadersAreUniform) {
  LeaderSchedule sched(10, LeaderConfig{});
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[sched.next_leader()];
  for (int c : counts) EXPECT_NEAR(c, 2000, 250);
}

TEST(LeaderSchedule, EligibilityFilterHonored) {
  LeaderSchedule sched(10, LeaderConfig{});
  std::vector<bool> eligible(10, false);
  eligible[3] = eligible[7] = true;
  for (int i = 0; i < 500; ++i) {
    const auto l = sched.next_leader(&eligible);
    EXPECT_TRUE(l == 3 || l == 7);
  }
}

TEST(Chain, GenesisTipIsZero) {
  Chain chain;
  EXPECT_EQ(chain.height(), 0u);
  EXPECT_EQ(chain.tip_hash(), crypto::Digest256{});
}

TEST(Chain, AppendSettlesOnce) {
  Chain chain;
  constexpr auto kMode = crypto::SignatureMode::kSimFast;
  crypto::Signer s(crypto::derive_keypair(1, kMode), kMode);
  core::CommitmentLog log(1, core::CommitmentParams{});
  util::Rng rng(1);
  std::vector<core::TxId> ids(5);
  for (auto& id : ids) {
    for (auto& b : id) b = static_cast<std::uint8_t>(rng.next());
  }
  log.append(ids, 1);

  const auto b1 = core::build_block(log, s, 1, chain.tip_hash(), nullptr);
  EXPECT_EQ(chain.append(b1), 5u);
  EXPECT_EQ(chain.height(), 1u);
  EXPECT_NE(chain.tip_hash(), crypto::Digest256{});
  for (const auto& id : ids) EXPECT_TRUE(chain.is_settled(id));

  // A second block with the same txs settles nothing new.
  const auto b2 = core::build_block(log, s, 2, chain.tip_hash(), nullptr);
  EXPECT_EQ(chain.append(b2), 0u);
  EXPECT_EQ(chain.settled_count(), 5u);
}

}  // namespace
}  // namespace lo::consensus
