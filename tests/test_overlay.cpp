// Overlay tests: topology degree constraints, connectivity repair (including
// the Sec. 6.2 honest-subgraph precondition), and peer sampling.
#include <gtest/gtest.h>

#include <set>

#include "overlay/sampler.hpp"
#include "overlay/topology.hpp"

namespace lo::overlay {
namespace {

TEST(Topology, RandomGraphIsConnected) {
  util::Rng rng(1);
  for (std::size_t n : {2u, 10u, 100u, 500u}) {
    const auto t = Topology::random(n, TopologyConfig{}, rng);
    EXPECT_TRUE(t.connected()) << "n=" << n;
  }
}

TEST(Topology, RespectsOutDegreeTarget) {
  util::Rng rng(2);
  TopologyConfig cfg;
  cfg.out_degree = 8;
  const auto t = Topology::random(300, cfg, rng);
  // Each node initiated ~8 edges; with incoming edges total degree is higher,
  // but the minimum must be at least the out-degree (all attempts succeed in
  // a sparse graph) and the mean about twice it.
  std::size_t total = 0;
  for (NodeId v = 0; v < 300; ++v) total += t.degree(v);
  const double mean = static_cast<double>(total) / 300.0;
  EXPECT_GE(mean, 8.0);
  EXPECT_LE(mean, 20.0);
}

TEST(Topology, MaxInDegreeHonored) {
  util::Rng rng(3);
  TopologyConfig cfg;
  cfg.out_degree = 8;
  cfg.max_in_degree = 10;
  const auto t = Topology::random(200, cfg, rng);
  // Total degree <= out_degree + max_in_degree + connectivity repairs.
  for (NodeId v = 0; v < 200; ++v) {
    EXPECT_LE(t.degree(v), cfg.out_degree + cfg.max_in_degree + 4);
  }
}

TEST(Topology, EdgesAreUndirectedAndDeduplicated) {
  Topology t(4);
  t.add_edge(0, 1);
  t.add_edge(1, 0);  // duplicate, other direction
  EXPECT_EQ(t.edge_count(), 1u);
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_TRUE(t.has_edge(1, 0));
  t.add_edge(2, 2);  // self loop ignored
  EXPECT_EQ(t.edge_count(), 1u);
  t.remove_edge(0, 1);
  EXPECT_FALSE(t.has_edge(0, 1));
  EXPECT_EQ(t.edge_count(), 0u);
}

TEST(Topology, ConnectedAmongSubset) {
  Topology t(6);
  // Two honest components bridged only through node 5 (malicious).
  t.add_edge(0, 1);
  t.add_edge(1, 5);
  t.add_edge(5, 2);
  t.add_edge(2, 3);
  // Nodes 4 and 5 are malicious; 4 only connects through 5.
  std::vector<bool> honest{true, true, true, true, false, false};
  t.add_edge(4, 5);
  EXPECT_TRUE(t.connected());
  EXPECT_FALSE(t.connected_among(honest))
      << "honest nodes only reach each other through malicious node 5";
  util::Rng rng(7);
  t.ensure_connected_among(honest, rng);
  EXPECT_TRUE(t.connected_among(honest));
}

TEST(Topology, EnsureConnectedAmongHandlesManyComponents) {
  const std::size_t n = 40;
  Topology t(n);
  std::vector<bool> include(n, true);
  util::Rng rng(9);
  t.ensure_connected_among(include, rng);  // from zero edges
  EXPECT_TRUE(t.connected());
}

TEST(Topology, ConnectedAmongTrivialCases) {
  Topology t(3);
  std::vector<bool> none(3, false);
  std::vector<bool> one{true, false, false};
  EXPECT_TRUE(t.connected_among(none));
  EXPECT_TRUE(t.connected_among(one));
}

TEST(Topology, SizeMismatchThrows) {
  Topology t(3);
  std::vector<bool> wrong(4, true);
  EXPECT_THROW(t.connected_among(wrong), std::invalid_argument);
}

// ------------------------------------------------------------- sampling ----

TEST(UniformSampler, ExcludesSelfAndFiltered) {
  UniformSamplerOracle s(50, 1);
  for (int i = 0; i < 100; ++i) {
    const auto out = s.sample(7, 5, [](NodeId id) { return id % 2 == 0; });
    EXPECT_EQ(out.size(), 5u);
    for (auto v : out) {
      EXPECT_NE(v, 7u);
      EXPECT_EQ(v % 2, 1u);
      EXPECT_LT(v, 50u);
    }
  }
}

TEST(UniformSampler, DistinctSamples) {
  UniformSamplerOracle s(20, 2);
  const auto out = s.sample(0, 10);
  std::set<NodeId> uniq(out.begin(), out.end());
  EXPECT_EQ(uniq.size(), out.size());
}

TEST(UniformSampler, SmallUniverseReturnsWhatExists) {
  UniformSamplerOracle s(3, 3);
  const auto out = s.sample(0, 10);
  EXPECT_EQ(out.size(), 2u);  // only nodes 1 and 2 exist besides self
}

TEST(UniformSampler, RoughlyUniform) {
  UniformSamplerOracle s(10, 4);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    for (auto v : s.sample(0, 1)) ++counts[v];
  }
  for (NodeId v = 1; v < 10; ++v) {
    EXPECT_NEAR(counts[v], 20000 / 9, 250) << "node " << v;
  }
}

TEST(BasaltView, OffersFillSlots) {
  BasaltView view(0, 8, 1);
  for (NodeId p = 1; p <= 20; ++p) view.offer(p);
  EXPECT_FALSE(view.view().empty());
  EXPECT_LE(view.view().size(), 8u);
}

TEST(BasaltView, SelfNeverEnters) {
  BasaltView view(3, 4, 2);
  view.offer(3);
  EXPECT_TRUE(view.view().empty());
}

TEST(BasaltView, EvictRemovesPeer) {
  BasaltView view(0, 4, 3);
  view.offer(5);
  ASSERT_FALSE(view.view().empty());
  view.evict(5);
  EXPECT_TRUE(view.view().empty());
}

TEST(BasaltView, HashRankingIsStable) {
  // Re-offering the same candidates yields the same view (min-rank wins).
  BasaltView a(0, 4, 7), b(0, 4, 7);
  for (NodeId p = 1; p <= 50; ++p) {
    a.offer(p);
    b.offer(p);
  }
  EXPECT_EQ(a.view(), b.view());
}

TEST(BasaltView, RefreshRotatesEventually) {
  BasaltView view(0, 4, 11);
  for (NodeId p = 1; p <= 50; ++p) view.offer(p);
  const auto before = view.view();
  // Refresh all slots and offer a fresh candidate set: some slot should
  // change occupant with overwhelming probability.
  for (int r = 0; r < 8; ++r) view.refresh();
  for (NodeId p = 51; p <= 200; ++p) view.offer(p);
  EXPECT_NE(view.view(), before);
}

TEST(BasaltView, AdversarialFloodCannotOwnAllSlots) {
  // An attacker controlling ids 1000..1999 floods offers; honest peers
  // 1..100 are offered once. Hash ranking should keep some honest presence.
  BasaltView view(0, 16, 13);
  for (NodeId p = 1; p <= 100; ++p) view.offer(p);
  for (int round = 0; round < 50; ++round) {
    for (NodeId p = 1000; p < 1100; ++p) view.offer(p);
  }
  std::size_t honest = 0;
  for (auto v : view.view()) {
    if (v <= 100) ++honest;
  }
  EXPECT_GT(honest, 0u) << "attacker flushed every honest peer from the view";
}

}  // namespace
}  // namespace lo::overlay
