// lolint corpus tests: every rule fires on its fixture, every allow
// annotation suppresses exactly the rule it names, and the real tree stays
// clean. Fixtures live in tools/lolint/testdata/ and are consumed as text
// under pseudo paths — the path decides which rules apply, so one fixture can
// be checked both as protocol code and as exempt code.
//
// NOTE: this file must never contain the literal allow-marker token — the
// annotation parser scans raw lines, strings and comments included.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lolint/lolint.hpp"

namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LOLINT_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Lints one fixture in isolation under the given pseudo repo path.
std::vector<lolint::Finding> lint_as(const std::string& fixture,
                                     const std::string& pseudo_path) {
  lolint::FileInput f{pseudo_path, read_fixture(fixture)};
  return lolint::lint_files({f});
}

std::size_t count_rule(const std::vector<lolint::Finding>& fs,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const lolint::Finding& f) { return f.rule == rule; }));
}

std::string dump(const std::vector<lolint::Finding>& fs) {
  std::ostringstream ss;
  for (const auto& f : fs) {
    ss << f.file << ":" << f.line << " [" << f.rule << "] " << f.message
       << "\n";
  }
  return ss.str();
}

// ------------------------------------------------------------ banned-source ----

TEST(Lolint, BannedSourcesFire) {
  const auto fs = lint_as("banned_source.cpp", "src/core/banned_source.cpp");
  EXPECT_EQ(count_rule(fs, "banned-source"), 6u) << dump(fs);
  EXPECT_EQ(fs.size(), count_rule(fs, "banned-source")) << dump(fs);
}

TEST(Lolint, BannedSourcesExemptInSimAndRng) {
  // The same content is legal where nondeterminism is quarantined by design.
  EXPECT_TRUE(lint_as("banned_source.cpp", "src/sim/banned_source.cpp").empty());
  EXPECT_TRUE(lint_as("banned_source.cpp", "src/util/rng.cpp").empty());
}

TEST(Lolint, BannedSourceAllowSuppresses) {
  const auto fs =
      lint_as("banned_source_allowed.cpp", "src/core/banned_source.cpp");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ------------------------------------------------------------ unordered-iter ----

TEST(Lolint, UnorderedIterFiresInProtocolDirs) {
  const auto fs = lint_as("unordered_iter.cpp", "src/core/unordered_iter.cpp");
  EXPECT_EQ(count_rule(fs, "unordered-iter"), 3u) << dump(fs);
}

TEST(Lolint, UnorderedIterAndWallClockFireInObs) {
  // The observability layer exports byte-identical artifacts across same-seed
  // runs, so it is held to the protocol rules: no hash-order iteration and no
  // wall-clock sources (trace timestamps come from the simulator only).
  const auto iter = lint_as("unordered_iter.cpp", "src/obs/unordered_iter.cpp");
  EXPECT_EQ(count_rule(iter, "unordered-iter"), 3u) << dump(iter);
  const auto clk = lint_as("banned_source.cpp", "src/obs/banned_source.cpp");
  EXPECT_EQ(count_rule(clk, "banned-source"), 6u) << dump(clk);
}

TEST(Lolint, UnorderedIterFiresOnShardMaps) {
  // The sharded pipeline keys per-(peer, shard) state by the packed ps_key;
  // walking those maps in bucket order would make emission depend on the hash
  // seed. Both hash-order loops fire; the sorted_keys() walk stays silent.
  const auto fs =
      lint_as("unordered_iter_shard_map.cpp", "src/core/shard_map.cpp");
  EXPECT_EQ(count_rule(fs, "unordered-iter"), 2u) << dump(fs);
  EXPECT_EQ(fs.size(), count_rule(fs, "unordered-iter")) << dump(fs);
}

TEST(Lolint, UnorderedIterSilentOutsideProtocolDirs) {
  // Harness/workload code may iterate hash order freely.
  const auto fs =
      lint_as("unordered_iter.cpp", "src/workload/unordered_iter.cpp");
  EXPECT_EQ(count_rule(fs, "unordered-iter"), 0u) << dump(fs);
}

TEST(Lolint, UnorderedIterAllowAndSortedKeysSuppress) {
  const auto fs =
      lint_as("unordered_iter_allowed.cpp", "src/core/unordered_iter.cpp");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Lolint, AllowForWrongRuleDoesNotSuppress) {
  // The annotation is well-formed but names banned-source; the
  // unordered-iter finding must survive and no bad-allow may appear.
  const auto fs = lint_as("wrong_allow.cpp", "src/core/wrong_allow.cpp");
  EXPECT_EQ(count_rule(fs, "unordered-iter"), 1u) << dump(fs);
  EXPECT_EQ(count_rule(fs, "bad-allow"), 0u) << dump(fs);
  EXPECT_EQ(fs.size(), 1u) << dump(fs);
}

TEST(Lolint, MalformedAllowFires) {
  const auto fs = lint_as("bad_allow.cpp", "src/core/bad_allow.cpp");
  EXPECT_EQ(count_rule(fs, "bad-allow"), 2u) << dump(fs);
}

// -------------------------------------------------------- float-in-protocol ----

TEST(Lolint, FloatInProtocolFires) {
  const auto fs =
      lint_as("float_in_protocol.cpp", "src/core/float_in_protocol.cpp");
  EXPECT_EQ(count_rule(fs, "float-in-protocol"), 2u) << dump(fs);
}

TEST(Lolint, FloatSilentOutsideProtocolDirs) {
  const auto fs =
      lint_as("float_in_protocol.cpp", "src/harness/float_in_protocol.cpp");
  EXPECT_EQ(count_rule(fs, "float-in-protocol"), 0u) << dump(fs);
}

// --------------------------------------------------------- relative-include ----

TEST(Lolint, RelativeIncludeFires) {
  const auto fs =
      lint_as("relative_include.cpp", "src/core/relative_include.cpp");
  EXPECT_EQ(count_rule(fs, "relative-include"), 2u) << dump(fs);
  for (const auto& f : fs) {
    if (f.rule == "relative-include") {
      EXPECT_TRUE(f.line == 3 || f.line == 4) << dump(fs);
    }
  }
}

// ----------------------------------------------------------- serde-symmetry ----

TEST(Lolint, SerdeAsymmetryFires) {
  const auto fs =
      lint_as("serde_asymmetry.cpp", "src/core/serde_asymmetry.cpp");
  ASSERT_EQ(count_rule(fs, "serde-symmetry"), 1u) << dump(fs);
  const auto it =
      std::find_if(fs.begin(), fs.end(), [](const lolint::Finding& f) {
        return f.rule == "serde-symmetry";
      });
  EXPECT_NE(it->message.find("OneWay"), std::string::npos) << it->message;
}

// ------------------------------------------------------------ mutable-static ----

TEST(Lolint, MutableStaticFires) {
  const auto fs = lint_as("mutable_static.cpp", "src/core/mutable_static.cpp");
  EXPECT_EQ(count_rule(fs, "mutable-static"), 5u) << dump(fs);
  // Constants and thread_locals must not leak into other rules either.
  EXPECT_EQ(fs.size(), count_rule(fs, "mutable-static")) << dump(fs);
}

TEST(Lolint, MutableStaticSilentInTests) {
  // Test fixtures and harness state may use globals freely.
  const auto fs = lint_as("mutable_static.cpp", "tests/mutable_static.cpp");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Lolint, MutableStaticAllowSuppresses) {
  const auto fs =
      lint_as("mutable_static_allowed.cpp", "src/core/mutable_static.cpp");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ----------------------------------------------------------- unguarded-field ----

TEST(Lolint, UnguardedFieldFires) {
  const auto fs = lint_as("unguarded_field.cpp", "src/core/unguarded_field.cpp");
  EXPECT_EQ(count_rule(fs, "unguarded-field"), 2u) << dump(fs);
  EXPECT_EQ(fs.size(), count_rule(fs, "unguarded-field")) << dump(fs);
  // The message names the write site so the finding is actionable.
  for (const auto& f : fs) {
    EXPECT_NE(f.message.find("written"), std::string::npos) << f.message;
  }
}

TEST(Lolint, UnguardedFieldAllowSuppresses) {
  const auto fs =
      lint_as("unguarded_field_allowed.cpp", "src/core/unguarded_field.cpp");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ----------------------------------------------------- thread-local-protocol ----

TEST(Lolint, ThreadLocalProtocolFires) {
  const auto fs = lint_as("thread_local_protocol.cpp",
                          "src/core/thread_local_protocol.cpp");
  // `static thread_local` must count once, not once per storage keyword.
  EXPECT_EQ(count_rule(fs, "thread-local-protocol"), 2u) << dump(fs);
  EXPECT_EQ(fs.size(), count_rule(fs, "thread-local-protocol")) << dump(fs);
}

TEST(Lolint, ThreadLocalExemptInWorkspaceDirs) {
  // gf and obs own the documented per-thread workspace pattern.
  EXPECT_TRUE(
      lint_as("thread_local_protocol.cpp", "src/gf/thread_local_protocol.cpp")
          .empty());
  EXPECT_TRUE(
      lint_as("thread_local_protocol.cpp", "src/obs/thread_local_protocol.cpp")
          .empty());
}

TEST(Lolint, ThreadLocalAllowSuppresses) {
  const auto fs = lint_as("thread_local_protocol_allowed.cpp",
                          "src/core/thread_local_protocol.cpp");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ------------------------------------------------------------ hot-path-alloc ----

TEST(Lolint, HotPathAllocFires) {
  const auto fs = lint_as("hot_path_alloc.cpp", "src/core/hot_path_alloc.cpp");
  // Four sites in the instrumented function; none in the cold helper.
  EXPECT_EQ(count_rule(fs, "hot-path-alloc"), 4u) << dump(fs);
  EXPECT_EQ(fs.size(), count_rule(fs, "hot-path-alloc")) << dump(fs);
}

TEST(Lolint, HotPathAllocSilentInTests) {
  const auto fs = lint_as("hot_path_alloc.cpp", "tests/hot_path_alloc.cpp");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Lolint, HotPathAllocAllowSuppresses) {
  const auto fs =
      lint_as("hot_path_alloc_allowed.cpp", "src/core/hot_path_alloc.cpp");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ------------------------------------------------------ serde-field-coverage ----

TEST(Lolint, SerdeFieldCoverageFires) {
  const auto fs = lint_as("serde_field_coverage.cpp",
                          "src/core/serde_field_coverage.cpp");
  ASSERT_EQ(count_rule(fs, "serde-field-coverage"), 1u) << dump(fs);
  EXPECT_EQ(fs.size(), 1u) << dump(fs);
  // The message names the missing field and the lopsided class; the
  // symmetric Balanced struct contributes nothing.
  const auto& f = fs.front();
  EXPECT_NE(f.message.find("spare"), std::string::npos) << f.message;
  EXPECT_NE(f.message.find("Lopsided"), std::string::npos) << f.message;
}

TEST(Lolint, SerdeFieldCoverageAllowSuppresses) {
  const auto fs = lint_as("serde_field_coverage_allowed.cpp",
                          "src/core/serde_field_coverage.cpp");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ------------------------------------------------------------- v2 annotations ----

TEST(Lolint, V2AllowForWrongRuleDoesNotSuppress) {
  // A valid allow naming a sibling concurrency rule leaves the
  // thread_local finding standing and produces no bad-allow.
  const auto fs = lint_as("wrong_allow_v2.cpp", "src/core/wrong_allow_v2.cpp");
  EXPECT_EQ(count_rule(fs, "thread-local-protocol"), 1u) << dump(fs);
  EXPECT_EQ(count_rule(fs, "bad-allow"), 0u) << dump(fs);
  EXPECT_EQ(fs.size(), 1u) << dump(fs);
}

TEST(Lolint, V2MalformedAllowFires) {
  // Missing reason, empty reason and a misspelled v2 rule id each fire.
  const auto fs = lint_as("bad_allow_v2.cpp", "src/core/bad_allow_v2.cpp");
  EXPECT_EQ(count_rule(fs, "bad-allow"), 3u) << dump(fs);
}

// ------------------------------------------------------------------ helpers ----

TEST(Lolint, CleanFixtureIsClean) {
  const auto fs = lint_as("clean.cpp", "src/core/clean.cpp");
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(Lolint, ProtocolPathPredicate) {
  EXPECT_TRUE(lolint::is_protocol_path("src/core/node.cpp"));
  EXPECT_TRUE(lolint::is_protocol_path("src/minisketch/sketch.hpp"));
  // Trace/metrics exports must stay byte-identical across same-seed runs, so
  // the observability layer obeys the full protocol ruleset.
  EXPECT_TRUE(lolint::is_protocol_path("src/obs/trace.cpp"));
  // The failure detector feeds the accountability gate, so its state machine
  // must replay deterministically under the same ruleset.
  EXPECT_TRUE(lolint::is_protocol_path("src/membership/swim.cpp"));
  EXPECT_FALSE(lolint::is_protocol_path("src/harness/lo_network.cpp"));
  EXPECT_FALSE(lolint::is_protocol_path("tests/test_util.cpp"));
  EXPECT_TRUE(lolint::is_rng_exempt_path("src/util/rng.hpp"));
  EXPECT_TRUE(lolint::is_rng_exempt_path("src/sim/simulator.cpp"));
  EXPECT_FALSE(lolint::is_rng_exempt_path("src/core/node.cpp"));
}

TEST(Lolint, StripCommentsPreservesLines) {
  const std::string src = "int a; // trailing\n/* block\n spans */ int b;\n";
  const std::string out = lolint::strip_comments(src);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(out.find("trailing"), std::string::npos);
  EXPECT_EQ(out.find("spans"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

// ------------------------------------------------------------- whole tree ----

TEST(Lolint, RealTreeIsClean) {
  // The acceptance gate, as a test: the shipped tree must lint clean. This is
  // the same scan the `lint` build target and the CI job run.
  std::vector<lolint::FileInput> files;
  std::string error;
  ASSERT_TRUE(lolint::load_tree(LOLINT_SOURCE_ROOT, {"src", "tests", "bench"},
                                &files, &error))
      << error;
  ASSERT_GT(files.size(), 100u);  // sanity: the tree actually loaded
  const auto fs = lolint::lint_files(files);
  EXPECT_TRUE(fs.empty()) << dump(fs);
}

}  // namespace
