// Commitment and commitment-log tests: append-only semantics, signed header
// integrity, and the equivocation consistency check of Sec. 5.2.
#include <gtest/gtest.h>

#include "core/commitment.hpp"
#include "core/commitment_log.hpp"
#include "core/transaction.hpp"
#include "util/rng.hpp"

namespace lo::core {
namespace {

constexpr auto kMode = crypto::SignatureMode::kSimFast;

crypto::Signer signer(std::uint64_t id) {
  return crypto::Signer(crypto::derive_keypair(id, kMode), kMode);
}

TxId random_txid(util::Rng& rng) {
  TxId id;
  for (auto& b : id) b = static_cast<std::uint8_t>(rng.next());
  return id;
}

std::vector<TxId> random_txids(util::Rng& rng, std::size_t n) {
  std::vector<TxId> out(n);
  for (auto& id : out) id = random_txid(rng);
  return out;
}

TEST(CommitmentLog, AppendAssignsSeqnosAndBundles) {
  CommitmentLog log(1, CommitmentParams{});
  util::Rng rng(1);
  EXPECT_EQ(log.seqno(), 0u);
  EXPECT_EQ(log.count(), 0u);

  const auto batch1 = random_txids(rng, 3);
  const auto added1 = log.append(batch1, 7);
  EXPECT_EQ(added1.size(), 3u);
  EXPECT_EQ(log.seqno(), 1u);
  EXPECT_EQ(log.count(), 3u);
  ASSERT_EQ(log.bundles().size(), 1u);
  EXPECT_EQ(log.bundles()[0].source, 7u);
  EXPECT_EQ(log.bundles()[0].txids, batch1);

  const auto batch2 = random_txids(rng, 2);
  log.append(batch2, 9);
  EXPECT_EQ(log.seqno(), 2u);
  EXPECT_EQ(log.count(), 5u);
}

TEST(CommitmentLog, DuplicatesAreIgnored) {
  CommitmentLog log(1, CommitmentParams{});
  util::Rng rng(2);
  const auto batch = random_txids(rng, 4);
  log.append(batch, 1);
  const auto re = log.append(batch, 2);
  EXPECT_TRUE(re.empty());
  EXPECT_EQ(log.seqno(), 1u);  // empty bundle does not bump the counter
  EXPECT_EQ(log.count(), 4u);
}

TEST(CommitmentLog, OrderPreservedAcrossBundles) {
  CommitmentLog log(1, CommitmentParams{});
  util::Rng rng(3);
  const auto a = random_txids(rng, 3);
  const auto b = random_txids(rng, 2);
  log.append(a, 1);
  log.append(b, 2);
  std::vector<TxId> expect = a;
  expect.insert(expect.end(), b.begin(), b.end());
  EXPECT_EQ(log.order(), expect);
  EXPECT_EQ(log.ids_after(3), b);
  EXPECT_TRUE(log.ids_after(99).empty());
}

TEST(CommitmentLog, ChainHashChangesWithEveryAppend) {
  CommitmentLog log(1, CommitmentParams{});
  util::Rng rng(4);
  auto prev = log.chain_hash();
  for (int i = 0; i < 5; ++i) {
    log.append(random_txids(rng, 1), 1);
    EXPECT_NE(log.chain_hash(), prev);
    prev = log.chain_hash();
  }
}

TEST(CommitmentLog, ChainHashDependsOnOrder) {
  util::Rng rng(5);
  const auto ids = random_txids(rng, 2);
  CommitmentLog a(1, CommitmentParams{}), b(1, CommitmentParams{});
  a.append(ids, 1);
  std::vector<TxId> rev{ids[1], ids[0]};
  b.append(rev, 1);
  EXPECT_NE(a.chain_hash(), b.chain_hash());
}

TEST(CommitmentLog, ResolveShortRoundTrip) {
  CommitmentLog log(1, CommitmentParams{});
  util::Rng rng(6);
  const auto ids = random_txids(rng, 10);
  log.append(ids, 1);
  for (const auto& id : ids) {
    const auto back = log.resolve_short(txid_short(id));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, id);
  }
  EXPECT_FALSE(log.resolve_short(0xdeadbeefdeadbeefULL).has_value());
}

TEST(CommitmentLog, BundleBySeqno) {
  CommitmentLog log(1, CommitmentParams{});
  util::Rng rng(7);
  log.append(random_txids(rng, 2), 5);
  log.append(random_txids(rng, 3), 6);
  ASSERT_NE(log.bundle_by_seqno(1), nullptr);
  ASSERT_NE(log.bundle_by_seqno(2), nullptr);
  EXPECT_EQ(log.bundle_by_seqno(2)->txids.size(), 3u);
  EXPECT_EQ(log.bundle_by_seqno(0), nullptr);
  EXPECT_EQ(log.bundle_by_seqno(3), nullptr);
}

TEST(CommitmentHeader, SignedAndVerifiable) {
  CommitmentLog log(4, CommitmentParams{});
  util::Rng rng(8);
  log.append(random_txids(rng, 5), 1);
  const auto s = signer(4);
  const auto h = log.make_header(s);
  EXPECT_EQ(h.node, 4u);
  EXPECT_EQ(h.seqno, 1u);
  EXPECT_EQ(h.count, 5u);
  EXPECT_TRUE(h.verify(kMode));
  auto tampered = h;
  tampered.count = 6;
  EXPECT_FALSE(tampered.verify(kMode));
}

TEST(CommitmentHeader, SerializeRoundTrip) {
  CommitmentLog log(4, CommitmentParams{});
  util::Rng rng(9);
  log.append(random_txids(rng, 8), 1);
  const auto h = log.make_header(signer(4));
  const auto bytes = h.serialize();
  EXPECT_EQ(bytes.size(), h.wire_size());
  const auto back = CommitmentHeader::deserialize(bytes, CommitmentParams{});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->node, h.node);
  EXPECT_EQ(back->seqno, h.seqno);
  EXPECT_EQ(back->count, h.count);
  EXPECT_EQ(back->chain_hash, h.chain_hash);
  EXPECT_EQ(back->sketch.syndromes(), h.sketch.syndromes());
  EXPECT_TRUE(back->clock == h.clock);
  EXPECT_TRUE(back->verify(kMode));
}

TEST(CommitmentHeader, DeserializeRejectsTruncation) {
  CommitmentLog log(4, CommitmentParams{});
  const auto h = log.make_header(signer(4));
  auto bytes = h.serialize();
  bytes.pop_back();
  EXPECT_FALSE(
      CommitmentHeader::deserialize(bytes, CommitmentParams{}).has_value());
  bytes.push_back(0);
  bytes.push_back(0);
  EXPECT_FALSE(
      CommitmentHeader::deserialize(bytes, CommitmentParams{}).has_value());
}

// ------------------------------------------------------- consistency ----

class ConsistencyTest : public ::testing::Test {
 protected:
  CommitmentParams params_;
  util::Rng rng_{10};

  CommitmentHeader header_at(CommitmentLog& log, std::uint64_t node) {
    return log.make_header(signer(node));
  }
};

TEST_F(ConsistencyTest, ExtensionIsConsistent) {
  CommitmentLog log(1, params_);
  log.append(random_txids(rng_, 5), 2);
  const auto h1 = header_at(log, 1);
  log.append(random_txids(rng_, 7), 3);
  const auto h2 = header_at(log, 1);
  EXPECT_EQ(check_consistency(h1, h2), Consistency::kConsistent);
  EXPECT_EQ(check_consistency(h2, h1), Consistency::kConsistent);  // symmetric
}

TEST_F(ConsistencyTest, IdenticalHeadersConsistent) {
  CommitmentLog log(1, params_);
  log.append(random_txids(rng_, 5), 2);
  const auto h = header_at(log, 1);
  EXPECT_EQ(check_consistency(h, h), Consistency::kConsistent);
}

TEST_F(ConsistencyTest, ForkWithSameSeqnoIsEquivocation) {
  CommitmentLog a(1, params_), b(1, params_);
  const auto shared = random_txids(rng_, 3);
  a.append(shared, 2);
  b.append(random_txids(rng_, 3), 2);  // same seqno, different content
  EXPECT_EQ(check_consistency(header_at(a, 1), header_at(b, 1)),
            Consistency::kEquivocation);
}

TEST_F(ConsistencyTest, DroppedTxIsEquivocation) {
  // Fork: the "newer" commitment has MORE seqno but misses one of the
  // previously committed txs (classic hide-the-transaction attack).
  const auto batch1 = random_txids(rng_, 4);
  CommitmentLog real(1, params_), fork(1, params_);
  real.append(batch1, 2);
  const auto h_old = header_at(real, 1);

  std::vector<TxId> censored(batch1.begin(), batch1.end() - 1);
  fork.append(censored, 2);
  fork.append(random_txids(rng_, 4), 3);  // grows further
  const auto h_new = header_at(fork, 1);
  ASSERT_GT(h_new.seqno, h_old.seqno);
  ASSERT_GT(h_new.count, h_old.count);
  EXPECT_EQ(check_consistency(h_old, h_new), Consistency::kEquivocation);
}

TEST_F(ConsistencyTest, ShrinkingCountIsEquivocation) {
  CommitmentLog big(1, params_), small(1, params_);
  big.append(random_txids(rng_, 6), 2);
  const auto h_big = header_at(big, 1);
  small.append(random_txids(rng_, 2), 2);
  small.append(random_txids(rng_, 1), 2);  // seqno 2 > 1 but count 3 < 6
  const auto h_small = header_at(small, 1);
  ASSERT_GT(h_small.seqno, h_big.seqno);
  ASSERT_LT(h_small.count, h_big.count);
  EXPECT_EQ(check_consistency(h_big, h_small), Consistency::kEquivocation);
}

TEST_F(ConsistencyTest, HugeDifferenceIsInconclusive) {
  // Difference beyond sketch capacity: the check cannot decide locally.
  CommitmentParams small_params;
  small_params.sketch_capacity = 8;
  CommitmentLog a(1, small_params), b(1, small_params);
  const auto shared = random_txids(rng_, 2);
  a.append(shared, 2);
  b.append(shared, 2);
  b.append(random_txids(rng_, 100), 3);  // 100 > capacity 8
  // Also drop nothing; the growth alone overflows the sketch.
  EXPECT_EQ(check_consistency(a.make_header(signer(1)),
                              b.make_header(signer(1))),
            Consistency::kInconclusive);
}

TEST_F(ConsistencyTest, EmptyToNonEmptyIsConsistent) {
  CommitmentLog log(1, params_);
  const auto h0 = header_at(log, 1);
  log.append(random_txids(rng_, 3), 2);
  const auto h1 = header_at(log, 1);
  EXPECT_EQ(check_consistency(h0, h1), Consistency::kConsistent);
}

TEST(CommitmentMemory, GrowsWithLog) {
  CommitmentLog log(1, CommitmentParams{});
  util::Rng rng(11);
  const auto before = log.memory_bytes();
  std::vector<TxId> ids(100);
  for (auto& id : ids) {
    for (auto& b : id) b = static_cast<std::uint8_t>(rng.next());
  }
  log.append(ids, 1);
  EXPECT_GT(log.memory_bytes(), before + 100 * sizeof(TxId));
}

}  // namespace
}  // namespace lo::core
