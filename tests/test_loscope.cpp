// loscope analyzer tests: trace-model indexing, txid parsing, per-transaction
// lineage with causal critical paths, censorship dwell under both settle
// criteria, detection-latency decomposition, per-shard rollups, the three
// render formats (including a golden lineage file), and an end-to-end run
// over a real LØ harness trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/lo_network.hpp"
#include "loscope.hpp"
#include "obs/trace.hpp"
#include "test_net_util.hpp"

namespace lo {
namespace {

using loscope::Format;
using loscope::TraceModel;
using obs::EventKind;
using obs::Tracer;

// A scripted censorship story with hand-assigned causal spans, so every
// derived quantity (hop latency, critical path, dwell, detection decomposition)
// has one known-correct answer:
//
//   span 1 (root):      t=1ms   node 0 submits tx 0x111, gossips to node 1
//   span 2 (parent 1):  t=3ms   node 1 receives, admits
//   span 3 (parent 2):  t=5ms   node 1 commits (bundle seqno 7)
//   span 4 (root):      t=8ms   node 2 (leader) builds block 0xb10c
//   span 5 (parent 4):  t=9ms   node 1 inspects, proves censorship, suspects
//   span 6 (parent 5):  t=12ms  node 1 exposes node 2
void emit_scripted_story(Tracer& t, std::int64_t& now) {
  const auto sync = t.intern("sync");
  {
    Tracer::CauseScope cs({1, 0});
    now = 1000;
    t.emit(EventKind::kTxSubmit, 0, 0, 0x111);
    t.emit(EventKind::kMsgSend, 0, 1, 64, 2000, sync);
  }
  {
    Tracer::CauseScope cs({2, 1});
    now = 3000;
    t.emit(EventKind::kMsgRecv, 1, 0, 64, 0, sync);
    t.emit(EventKind::kTxAdmit, 1, 0, 0x111, 7);
  }
  {
    Tracer::CauseScope cs({3, 2});
    now = 5000;
    t.emit(EventKind::kTxCommit, 1, 0, 0x111, 7);
  }
  {
    Tracer::CauseScope cs({4, 0});
    now = 8000;
    t.emit(EventKind::kBlockBuild, 2, 0, 0xb10c, 3);
  }
  {
    Tracer::CauseScope cs({5, 4});
    now = 9000;
    t.emit(EventKind::kBlockInspect, 1, 2, 0xb10c, 7);
    t.emit(EventKind::kTxCensored, 1, 2, 0x111, 0xb10c);
    t.emit(EventKind::kSuspect, 1, 2, 0, 0);
  }
  {
    Tracer::CauseScope cs({6, 5});
    now = 12000;
    t.emit(EventKind::kExpose, 1, 2, 0, 0);
  }
}

TraceModel scripted_model() {
  Tracer t;
  std::int64_t now = 0;
  t.set_clock(&now);
  t.enable(true);
  emit_scripted_story(t, now);
  return TraceModel::build(Tracer::from_bytes(t.bytes()));
}

// ---------------------------------------------------------------- indexing ----

TEST(LoscopeModel, IndexesSpansAndTransactions) {
  const TraceModel m = scripted_model();
  EXPECT_EQ(m.file.events.size(), 10u);
  EXPECT_EQ(m.by_span.size(), 6u);
  ASSERT_EQ(m.by_tx.count(0x111), 1u);
  // submit, admit, commit, censored — the lifecycle events only.
  EXPECT_EQ(m.by_tx.at(0x111).size(), 4u);
  EXPECT_EQ(m.end_at, 12000);
  // Span index holds stream order: span 5 emitted inspect, censored, suspect.
  const auto& s5 = m.by_span.at(5);
  ASSERT_EQ(s5.size(), 3u);
  EXPECT_EQ(m.ev(s5[0]).kind, static_cast<std::uint16_t>(EventKind::kBlockInspect));
  EXPECT_EQ(m.ev(s5[2]).kind, static_cast<std::uint16_t>(EventKind::kSuspect));
}

TEST(LoscopeModel, SummaryCountsCoverageAndLifecycles) {
  const auto s = loscope::summarize(scripted_model());
  EXPECT_EQ(s.events, 10u);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_EQ(s.with_cause, 10u);
  EXPECT_EQ(s.distinct_spans, 6u);
  EXPECT_EQ(s.txs_submitted, 1u);
  EXPECT_EQ(s.txs_committed, 1u);
  EXPECT_EQ(s.txs_finalized, 0u);
  EXPECT_EQ(s.txs_censor_proven, 1u);
  EXPECT_EQ(s.anomalies, 0u);
  EXPECT_DOUBLE_EQ(s.duration_s, 0.012);
  EXPECT_EQ(s.by_kind.at("tx.submit"), 1u);
  EXPECT_EQ(s.by_kind.at("msg.send"), 1u);
}

// ------------------------------------------------------------ txid parsing ----

TEST(LoscopeParseTxid, AcceptsDecimalHexAndPrefixedHex) {
  EXPECT_EQ(loscope::parse_txid("273"), 273u);         // plain digits: base 10
  EXPECT_EQ(loscope::parse_txid("0x111"), 0x111u);     // explicit prefix
  EXPECT_EQ(loscope::parse_txid("0X1f"), 0x1fu);
  EXPECT_EQ(loscope::parse_txid("be5a"), 0xbe5au);     // bare hex digits
  EXPECT_EQ(loscope::parse_txid("0000000000000abc"), 0xabcu);
}

TEST(LoscopeParseTxid, RejectsGarbage) {
  EXPECT_FALSE(loscope::parse_txid("").has_value());
  EXPECT_FALSE(loscope::parse_txid("12g").has_value());
  EXPECT_FALSE(loscope::parse_txid("0x").has_value());
  EXPECT_FALSE(loscope::parse_txid("tx 0x111").has_value());
}

// ----------------------------------------------------------------- lineage ----

TEST(LoscopeLineage, ReconstructsLifecycleWithHopLatencies) {
  const TraceModel m = scripted_model();
  const auto l = loscope::lineage(m, 0x111);
  ASSERT_TRUE(l.has_value());
  ASSERT_EQ(l->steps.size(), 4u);
  EXPECT_EQ(l->steps[0].kind, EventKind::kTxSubmit);
  EXPECT_EQ(l->steps[1].kind, EventKind::kTxAdmit);
  EXPECT_EQ(l->steps[2].kind, EventKind::kTxCommit);
  EXPECT_EQ(l->steps[3].kind, EventKind::kTxCensored);
  EXPECT_EQ(l->steps[0].hop_latency_us, 0);
  EXPECT_EQ(l->steps[1].hop_latency_us, 2000);
  EXPECT_EQ(l->steps[2].hop_latency_us, 2000);
  EXPECT_EQ(l->steps[3].hop_latency_us, 4000);
  EXPECT_TRUE(l->committed);
  EXPECT_TRUE(l->censored);
  EXPECT_FALSE(l->finalized);
  EXPECT_EQ(l->submit_at, 1000);
  EXPECT_EQ(l->first_commit_at, 5000);
  EXPECT_EQ(l->censored_at, 9000);
}

TEST(LoscopeLineage, CriticalPathWalksSpanParentsToRoot) {
  const TraceModel m = scripted_model();
  const auto l = loscope::lineage(m, 0x111);
  ASSERT_TRUE(l.has_value());
  // Terminal event is the censorship proof (span 5); its causing dispatch is
  // the block build (span 4), which is a root. Newest -> oldest order.
  ASSERT_EQ(l->critical_path.size(), 2u);
  EXPECT_EQ(l->critical_path[0].span, 5u);
  EXPECT_EQ(l->critical_path[0].kind, EventKind::kTxCensored);
  EXPECT_EQ(l->critical_path[1].span, 4u);
  EXPECT_EQ(l->critical_path[1].node, 2u);
  EXPECT_EQ(l->critical_path[1].kind, EventKind::kBlockBuild);
}

TEST(LoscopeLineage, UnknownTxidReturnsNullopt) {
  EXPECT_FALSE(loscope::lineage(scripted_model(), 0xdead).has_value());
}

// -------------------------------------------------------------- censorship ----

TEST(LoscopeCensorship, BlockTracesSettleOnFinalize) {
  const auto r = loscope::censorship(scripted_model());
  EXPECT_TRUE(r.uses_blocks);  // a kBlockBuild is present
  ASSERT_EQ(r.entries.size(), 1u);
  const auto& e = r.entries[0];
  EXPECT_EQ(e.txid, 0x111u);
  EXPECT_EQ(e.submit_at, 1000);
  EXPECT_EQ(e.first_commit_at, 5000);
  EXPECT_EQ(e.first_finalize_at, -1);
  // Never included in a block: dwell runs to the trace horizon.
  EXPECT_FALSE(e.settled);
  EXPECT_TRUE(e.censor_proof);
  EXPECT_DOUBLE_EQ(e.dwell_s, 0.011);
  EXPECT_EQ(r.never_settled, 1u);
  EXPECT_EQ(r.proven_censored, 1u);
  EXPECT_DOUBLE_EQ(r.max_dwell_s, 0.011);
}

TEST(LoscopeCensorship, BlocklessTracesSettleOnFirstCommit) {
  Tracer t;
  std::int64_t now = 0;
  t.set_clock(&now);
  t.enable(true);
  now = 1000;
  t.emit(EventKind::kTxSubmit, 0, 0, 0x22);
  now = 4000;
  t.emit(EventKind::kTxCommit, 1, 0, 0x22, 3);
  now = 9000;
  t.emit(EventKind::kTxSubmit, 0, 0, 0x33);  // never commits
  const auto m = TraceModel::build(Tracer::from_bytes(t.bytes()));
  const auto r = loscope::censorship(m);
  EXPECT_FALSE(r.uses_blocks);
  ASSERT_EQ(r.entries.size(), 2u);
  EXPECT_TRUE(r.entries[0].settled);
  EXPECT_DOUBLE_EQ(r.entries[0].dwell_s, 0.003);
  EXPECT_FALSE(r.entries[1].settled);
  EXPECT_EQ(r.never_settled, 1u);
}

// --------------------------------------------------------------- detection ----

TEST(LoscopeDetection, DecomposesProofSuspicionExposure) {
  const auto d = loscope::detection(scripted_model());
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].accused, 2u);
  EXPECT_EQ(d[0].first_proof_at, 9000);
  EXPECT_EQ(d[0].first_suspicion_at, 9000);
  EXPECT_EQ(d[0].first_exposure_at, 12000);
  EXPECT_EQ(d[0].suspicion_count, 1u);
  EXPECT_EQ(d[0].exposure_count, 1u);
}

// ------------------------------------------------------------------ shards ----

TEST(LoscopeShards, RollsUpByAuxShardId) {
  Tracer t;
  t.enable(true);
  t.emit(EventKind::kTxCommit, 0, 0, 1, 0, 0, /*aux=*/0);
  t.emit(EventKind::kTxCommit, 1, 0, 2, 0, 0, /*aux=*/0);
  t.emit(EventKind::kBlockBuild, 2, 0, 3, 0, 0, /*aux=*/0);
  t.emit(EventKind::kTxCommit, 0, 0, 4, 0, 0, /*aux=*/1);
  t.emit(EventKind::kReconcileRound, 1, 2, 0, 0, 0, /*aux=*/1);
  t.emit(EventKind::kSuspect, 1, 2, 1, 0, 0, /*aux=*/1);
  const auto s =
      loscope::shards(TraceModel::build(Tracer::from_bytes(t.bytes())));
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].shard, 0u);
  EXPECT_EQ(s[0].tx_commits, 2u);
  EXPECT_EQ(s[0].blocks, 1u);
  EXPECT_EQ(s[1].shard, 1u);
  EXPECT_EQ(s[1].tx_commits, 1u);
  EXPECT_EQ(s[1].reconciles, 1u);
  EXPECT_EQ(s[1].suspicions, 1u);
}

// --------------------------------------------------------------- rendering ----

std::string read_golden(const std::string& name) {
  const std::string path = std::string(LO_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(LoscopeRender, LineageTextMatchesGoldenFile) {
  const TraceModel m = scripted_model();
  const auto l = loscope::lineage(m, 0x111);
  ASSERT_TRUE(l.has_value());
  EXPECT_EQ(loscope::render_lineage(m, *l, Format::kText),
            read_golden("loscope_lineage_golden.txt"));
}

TEST(LoscopeRender, AllFormatsCarryTheStory) {
  const TraceModel m = scripted_model();
  const auto l = loscope::lineage(m, 0x111);
  ASSERT_TRUE(l.has_value());

  const auto json = loscope::render_lineage(m, *l, Format::kJson);
  EXPECT_NE(json.find("\"censored\": true"), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  const auto csv = loscope::render_lineage(m, *l, Format::kCsv);
  EXPECT_EQ(csv.rfind("at_s,kind,node,peer,shard,hop_latency_s\n", 0), 0u);

  const auto sum = loscope::render_summary(loscope::summarize(m), Format::kJson);
  EXPECT_NE(sum.find("\"txs_submitted\": 1"), std::string::npos);
  EXPECT_NE(sum.find("\"distinct_spans\": 6"), std::string::npos);

  const auto cen = loscope::render_censorship(loscope::censorship(m),
                                              Format::kText);
  EXPECT_NE(cen.find("NEVER SETTLED"), std::string::npos);
  EXPECT_NE(cen.find("[censorship proven]"), std::string::npos);

  const auto det =
      loscope::render_detection(loscope::detection(m), Format::kText);
  EXPECT_NE(det.find("accused node 2"), std::string::npos);
  EXPECT_NE(det.find("suspicion -> exposure"), std::string::npos);

  const auto shd = loscope::render_shards(loscope::shards(m), Format::kCsv);
  EXPECT_EQ(shd.rfind("shard,commits,", 0), 0u);
}

// ------------------------------------------------------------- end-to-end ----

// Acceptance check from a real harness trace: lineage reconstructs full
// cross-node chains — a tx submitted on one node shows lifecycle events on at
// least one other node, with a non-trivial causal critical path.
TEST(LoscopeIntegration, LineageSpansNodesInHarnessTrace) {
  auto cfg = test::net_cfg(12, 99);
  cfg.trace = true;
  harness::LoNetwork net(cfg);
  net.start_workload(test::load_cfg(15.0, 100));
  net.run_for(8.0);
  const auto m = TraceModel::build(
      Tracer::from_bytes(net.sim().obs().tracer.bytes()));
  ASSERT_FALSE(m.by_tx.empty());

  std::size_t cross_node = 0;
  std::size_t deep_paths = 0;
  for (const auto& [txid, _] : m.by_tx) {
    const auto l = loscope::lineage(m, txid);
    ASSERT_TRUE(l.has_value());
    std::int64_t prev = -1;
    std::set<std::uint32_t> nodes;
    for (const auto& st : l->steps) {
      EXPECT_GE(st.at, prev) << "lineage steps out of order for tx " << txid;
      prev = st.at;
      nodes.insert(st.node);
    }
    if (l->committed && nodes.size() >= 2) ++cross_node;
    if (l->critical_path.size() >= 2) ++deep_paths;
  }
  EXPECT_GT(cross_node, 0u)
      << "no committed tx shows lifecycle events on more than one node";
  EXPECT_GT(deep_paths, 0u)
      << "no lineage has a causal critical path deeper than its own dispatch";
}

}  // namespace
}  // namespace lo
