// Failure-injection tests: message loss, partitions, crash-like silence and
// recovery. LØ must stay convergent and accurate (no false blame that
// persists) under transient faults — Sec. 3.2's accuracy property is about
// asynchrony, not just clean networks.
#include <gtest/gtest.h>

#include "harness/lo_network.hpp"
#include "test_net_util.hpp"

namespace lo {
namespace {

using test::load_cfg;
using test::net_cfg;

TEST(FailureInjection, ConvergesUnderTenPercentLoss) {
  auto cfg = net_cfg(16, 3);
  harness::LoNetwork net(cfg);
  net.sim().set_drop_probability(0.10);
  net.start_workload(load_cfg(5.0, 5));
  net.run_for(12.0);
  net.stop_workload();
  net.run_for(25.0);  // retries need headroom under loss
  const auto injected = net.txs_injected();
  std::size_t converged = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.node(i).mempool_size() == injected) ++converged;
  }
  EXPECT_EQ(converged, net.size())
      << "timeout/retry machinery must mask 10% message loss";
}

TEST(FailureInjection, HeavyLossDoesNotCausePermanentFalseExposure) {
  // Exposure requires cryptographic evidence; no amount of message loss can
  // fabricate it.
  auto cfg = net_cfg(16, 7);
  harness::LoNetwork net(cfg);
  net.sim().set_drop_probability(0.35);
  net.start_workload(load_cfg(8.0, 9));
  net.run_for(30.0);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(net.node(i).registry().exposed().empty())
        << "node " << i << " exposed someone without evidence";
  }
}

TEST(FailureInjection, PartitionHealsAndConverges) {
  auto cfg = net_cfg(12, 11);
  harness::LoNetwork net(cfg);
  // Split nodes into two halves; block all cross-half traffic.
  bool partitioned = true;
  net.sim().set_delivery_filter(
      [&partitioned](core::NodeId from, core::NodeId to) {
        if (!partitioned) return true;
        return (from < 6) == (to < 6);
      });
  net.start_workload(load_cfg(6.0, 13));
  net.run_for(10.0);
  net.stop_workload();
  net.run_for(2.0);

  // Within each half, nodes converge on the txs submitted to that half.
  const auto total = net.txs_injected();
  std::size_t left = net.node(0).mempool_size();
  EXPECT_LT(left, total) << "partition should withhold some txs";

  partitioned = false;
  net.run_for(25.0);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.node(i).mempool_size(), total) << "node " << i;
  }
}

TEST(FailureInjection, SuspicionsFromPartitionAreRetracted) {
  auto cfg = net_cfg(10, 17);
  harness::LoNetwork net(cfg);
  bool partitioned = false;
  net.sim().set_delivery_filter(
      [&partitioned](core::NodeId, core::NodeId to) {
        return !(partitioned && to == 0);  // node 0 becomes unreachable
      });
  net.start_workload(load_cfg(6.0, 19));
  net.run_for(8.0);

  partitioned = true;  // node 0 "crashes" (can send, cannot receive)
  net.run_for(15.0);
  std::size_t suspecting = 0;
  for (std::size_t i = 1; i < net.size(); ++i) {
    if (net.node(i).registry().is_suspected(0)) ++suspecting;
  }
  EXPECT_GT(suspecting, 0u) << "an unreachable node must draw suspicion";

  partitioned = false;  // recovery
  net.run_for(40.0);
  for (std::size_t i = 1; i < net.size(); ++i) {
    EXPECT_FALSE(net.node(i).registry().is_suspected(0))
        << "node " << i << " kept suspecting a recovered correct node";
    EXPECT_FALSE(net.node(i).registry().is_exposed(0));
  }
}

TEST(FailureInjection, LossDuringAttackStillDetects) {
  // Detection guarantees must survive a lossy network: equivocators are
  // exposed even at 15% message drop.
  auto cfg = net_cfg(20, 23);
  cfg.malicious_fraction = 0.10;
  cfg.malicious.equivocate = true;
  harness::LoNetwork net(cfg);
  net.sim().set_drop_probability(0.15);
  net.start_workload(load_cfg(8.0, 29));
  net.run_for(60.0);

  std::size_t exposures = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) continue;
    exposures += net.node(i).registry().exposed().size();
  }
  EXPECT_GT(exposures, 0u) << "equivocation evidence should still surface";
}

TEST(FailureInjection, LateJoinerBulkSyncExceedsSketchCapacity) {
  // A node that was unreachable while hundreds of transactions flowed has a
  // set difference far beyond any sketch capacity (default 128). Recovery
  // must go through the decode_failed path: full-capacity sketches plus
  // bounded delta tails, converging over multiple rounds.
  auto cfg = net_cfg(12, 41);
  harness::LoNetwork net(cfg);
  bool joined = false;
  net.sim().set_delivery_filter(
      [&joined](core::NodeId from, core::NodeId to) {
        return joined || (from != 11 && to != 11);
      });
  net.start_workload(load_cfg(25.0, 43));
  net.run_for(20.0);  // ~500 txs while node 11 is isolated
  net.stop_workload();
  net.run_for(2.0);
  const auto total = net.txs_injected();
  ASSERT_GT(total, 300u);
  // Client submissions are direct calls, so the isolated node still receives
  // its share of fresh txs — but nothing propagated to or from it.
  EXPECT_LT(net.node(11).mempool_size(), total / 4);

  joined = true;
  net.run_for(60.0);
  EXPECT_EQ(net.node(11).log().count(), total)
      << "late joiner must commit the full backlog";
  EXPECT_EQ(net.node(11).mempool_size(), total)
      << "late joiner must fetch all content";
  // And the joiner must not have blamed anyone for the backlog.
  EXPECT_TRUE(net.node(11).registry().exposed().empty());
}

TEST(FailureInjection, DuplicatedResponsesAreHarmless) {
  // Retries cause duplicate requests and hence duplicate responses; protocol
  // state must be idempotent. Simulate by elevating latency jitter + loss so
  // retransmissions overlap in flight.
  auto cfg = net_cfg(8, 31);
  cfg.node.request_timeout = 300 * sim::kMillisecond;  // aggressive retries
  harness::LoNetwork net(cfg);
  net.sim().set_drop_probability(0.05);
  net.start_workload(load_cfg(10.0, 37));
  net.run_for(15.0);
  net.stop_workload();
  net.run_for(15.0);
  const auto injected = net.txs_injected();
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.node(i).mempool_size(), injected);
    EXPECT_EQ(net.node(i).log().count(), injected)
        << "duplicates must not double-commit";
    EXPECT_TRUE(net.node(i).registry().exposed().empty());
  }
}

TEST(FailureInjection, MutatedDuplicateRejectedAcrossCrash) {
  // The per-node verify memo caches accept/reject decisions keyed by the
  // exact (key, sig, msg) bytes. Prove the cache can never launder a forgery:
  // a mutated duplicate of an accepted transaction takes the cold path and is
  // rejected — before a crash, and again after crash/restart re-wires the
  // cache into the recovered accountability state.
  auto cfg = net_cfg(4, 41);
  cfg.node.sig_mode = crypto::SignatureMode::kEd25519;  // engage the cache
  cfg.node.prevalidation.sig_mode = crypto::SignatureMode::kEd25519;
  harness::LoNetwork net(cfg);

  crypto::Signer client(
      crypto::derive_keypair(1234, crypto::SignatureMode::kEd25519),
      crypto::SignatureMode::kEd25519);
  const auto tx = core::make_transaction(client, 1, 500, 0);

  auto bundle = std::make_shared<core::TxBundleMsg>();
  bundle->txs.push_back(tx);
  auto& victim = net.node(0);
  victim.on_message(1, bundle);
  ASSERT_TRUE(victim.has_tx(tx.id));
  const auto warm = victim.verify_cache_stats();
  EXPECT_EQ(warm.memo_misses, 1u);

  // Same bytes again: served from the memo, still exactly one copy.
  victim.on_message(2, bundle);
  EXPECT_EQ(victim.mempool_size(), 1u);

  // Mutated duplicate: flip a body byte and recompute the id so the content
  // check passes and the decision rests on the signature alone. The memo key
  // hashes the message bytes, so this cannot hit the cached accept.
  auto forged = tx;
  forged.body[0] ^= 0x01;
  forged.id = forged.compute_id();
  auto forged_bundle = std::make_shared<core::TxBundleMsg>();
  forged_bundle->txs.push_back(forged);
  victim.on_message(1, forged_bundle);
  EXPECT_FALSE(victim.has_tx(forged.id)) << "forgery rode a cached accept";
  EXPECT_EQ(victim.verify_cache_stats().memo_misses, warm.memo_misses + 1)
      << "mutated duplicate must take the cold path";

  // Crash wipes volatile state (including the rejected-id set) and restart
  // re-wires the registry to the surviving cache; the forgery must still be
  // rejected and the genuine tx still accepted.
  net.sim().set_node_up(0, false);
  victim.crash();
  net.sim().set_node_up(0, true);
  victim.restart();
  victim.on_message(2, forged_bundle);
  EXPECT_FALSE(victim.has_tx(forged.id))
      << "crash recovery must not forget how to reject";
  victim.on_message(2, bundle);
  EXPECT_TRUE(victim.has_tx(tx.id));
}

}  // namespace
}  // namespace lo
