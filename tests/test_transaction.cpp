// Transaction tests: construction, serialization, prevalidation (Stage I).
#include <gtest/gtest.h>

#include "core/transaction.hpp"

namespace lo::core {
namespace {

crypto::Signer test_client(std::uint64_t id = 1,
                           crypto::SignatureMode mode = crypto::SignatureMode::kEd25519) {
  return crypto::Signer(crypto::derive_keypair(id, mode), mode);
}

TEST(Transaction, WireSizeMatchesPaper) {
  const auto client = test_client();
  const auto tx = make_transaction(client, 1, 100, 0);
  EXPECT_EQ(tx.wire_size(), kTxWireSize);
  EXPECT_EQ(tx.serialize().size(), kTxWireSize);
}

TEST(Transaction, IdBindsAllFields) {
  const auto client = test_client();
  auto tx = make_transaction(client, 1, 100, 555);
  EXPECT_EQ(tx.compute_id(), tx.id);
  auto t2 = tx;
  t2.fee = 101;
  EXPECT_NE(t2.compute_id(), tx.id);
  auto t3 = tx;
  t3.nonce = 2;
  EXPECT_NE(t3.compute_id(), tx.id);
  auto t4 = tx;
  t4.body[0] ^= 1;
  EXPECT_NE(t4.compute_id(), tx.id);
}

TEST(Transaction, SerializeRoundTrip) {
  const auto client = test_client(3);
  const auto tx = make_transaction(client, 42, 999, 123456);
  const auto bytes = tx.serialize();
  const auto back = Transaction::deserialize(bytes);
  EXPECT_EQ(back.id, tx.id);
  EXPECT_EQ(back.creator, tx.creator);
  EXPECT_EQ(back.nonce, tx.nonce);
  EXPECT_EQ(back.fee, tx.fee);
  EXPECT_EQ(back.created_at, tx.created_at);
  EXPECT_EQ(back.body, tx.body);
  EXPECT_EQ(back.sig, tx.sig);
}

TEST(Transaction, DistinctNoncesDistinctIds) {
  const auto client = test_client();
  const auto a = make_transaction(client, 1, 100, 0);
  const auto b = make_transaction(client, 2, 100, 0);
  EXPECT_NE(a.id, b.id);
}

TEST(Prevalidation, AcceptsValid) {
  const auto client = test_client();
  const auto tx = make_transaction(client, 1, 100, 0);
  PrevalidationPolicy p;
  EXPECT_TRUE(prevalidate(tx, p));
}

TEST(Prevalidation, RejectsLowFee) {
  const auto client = test_client();
  const auto tx = make_transaction(client, 1, 5, 0);
  PrevalidationPolicy p;
  p.min_fee = 10;
  EXPECT_FALSE(prevalidate(tx, p));
}

TEST(Prevalidation, RejectsTamperedBody) {
  const auto client = test_client();
  auto tx = make_transaction(client, 1, 100, 0);
  tx.body[3] ^= 0xff;
  PrevalidationPolicy p;
  EXPECT_FALSE(prevalidate(tx, p));  // id no longer matches
}

TEST(Prevalidation, RejectsForgedSignature) {
  const auto client = test_client();
  auto tx = make_transaction(client, 1, 100, 0);
  tx.sig[10] ^= 1;
  tx.id = tx.compute_id();  // recompute id so only the signature is bad
  PrevalidationPolicy p;
  EXPECT_FALSE(prevalidate(tx, p));
}

TEST(Prevalidation, RejectsWrongCreatorKey) {
  const auto a = test_client(1);
  const auto b = test_client(2);
  auto tx = make_transaction(a, 1, 100, 0);
  tx.creator = b.public_key();
  tx.id = tx.compute_id();
  PrevalidationPolicy p;
  EXPECT_FALSE(prevalidate(tx, p));
}

TEST(Prevalidation, SignatureCheckCanBeDisabled) {
  const auto client = test_client();
  auto tx = make_transaction(client, 1, 100, 0);
  tx.sig[10] ^= 1;
  tx.id = tx.compute_id();
  PrevalidationPolicy p;
  p.check_signatures = false;
  EXPECT_TRUE(prevalidate(tx, p));
}

TEST(Prevalidation, SimFastModeWorks) {
  const auto client = test_client(9, crypto::SignatureMode::kSimFast);
  const auto tx = make_transaction(client, 1, 100, 0);
  PrevalidationPolicy p;
  p.sig_mode = crypto::SignatureMode::kSimFast;
  EXPECT_TRUE(prevalidate(tx, p));
}

TEST(Transaction, TxidShortIsStable) {
  const auto client = test_client();
  const auto tx = make_transaction(client, 7, 100, 0);
  EXPECT_EQ(txid_short(tx.id), txid_short(tx.id));
  // First byte of the id is the low byte of the short id (little-endian).
  EXPECT_EQ(txid_short(tx.id) & 0xff, tx.id[0]);
}

}  // namespace
}  // namespace lo::core
