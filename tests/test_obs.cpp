// Observability layer tests: metrics registry semantics (ids, labels,
// scopes, snapshot/merge/rollup), log-bucketed histograms (including the
// sim::Samples bridge), tracer ring/overflow/intern/binary round-trip, the
// Chrome-JSON golden file, profiling hooks, the verify-cache registry bind,
// and same-seed trace determinism for LØ and one baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "baselines/common.hpp"
#include "baselines/flood.hpp"
#include "crypto/verify_cache.hpp"
#include "harness/lo_network.hpp"
#include "obs/hub.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "sim/metrics.hpp"
#include "test_net_util.hpp"
#include "util/serde.hpp"

namespace lo {
namespace {

// ---------------------------------------------------------------- metric id ----

TEST(MetricId, CanonicalFormSortsLabels) {
  EXPECT_EQ(obs::metric_id("lo.retries", {}), "lo.retries");
  EXPECT_EQ(obs::metric_id("lo.retries", {{"node", "3"}}),
            "lo.retries{node=3}");
  // Label keys sort, so insertion order never leaks into the id.
  EXPECT_EQ(obs::metric_id("m", {{"b", "2"}, {"a", "1"}}), "m{a=1,b=2}");
  EXPECT_EQ(obs::metric_id("m", {{"a", "1"}, {"b", "2"}}), "m{a=1,b=2}");
}

TEST(MetricId, RejectsAmbiguousInput) {
  EXPECT_THROW(obs::metric_id("", {}), std::invalid_argument);
  EXPECT_THROW(obs::metric_id("m", {{"a", "1"}, {"a", "2"}}),
               std::invalid_argument);
  EXPECT_THROW(obs::metric_id("m{", {}), std::invalid_argument);
  EXPECT_THROW(obs::metric_id("m", {{"a", "x,y"}}), std::invalid_argument);
  EXPECT_THROW(obs::metric_id("m", {{"a=b", "1"}}), std::invalid_argument);
}

// ----------------------------------------------------------------- registry ----

TEST(Registry, CellsAreStableAndTyped) {
  obs::Registry reg;
  auto& c = reg.counter("a.count");
  c += 3;
  EXPECT_EQ(reg.counter("a.count"), 3u);  // get-or-create returns same cell
  reg.gauge("a.gauge") = 1.5;
  reg.histogram("a.hist").observe(2.0);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_TRUE(reg.contains("a.count"));
  EXPECT_FALSE(reg.contains("a.count", {{"node", "1"}}));
  // Same id, different kind: programming error, loudly rejected.
  EXPECT_THROW(reg.gauge("a.count"), std::invalid_argument);
  EXPECT_THROW(reg.counter("a.hist"), std::invalid_argument);
}

TEST(Registry, SnapshotAndMergeAggregate) {
  obs::Registry a;
  a.counter("c", {{"node", "0"}}) = 2;
  a.gauge("g") = 1.0;
  a.histogram("h").observe(1.0);

  obs::Registry b;
  b.counter("c", {{"node", "0"}}) = 5;
  b.counter("c", {{"node", "1"}}) = 7;
  b.gauge("g") = 2.5;
  b.histogram("h").observe(4.0);

  a.merge(b.snapshot());
  EXPECT_EQ(a.counter("c", {{"node", "0"}}), 7u);
  EXPECT_EQ(a.counter("c", {{"node", "1"}}), 7u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 3.5);
  EXPECT_EQ(a.histogram("h").count(), 2u);
  EXPECT_DOUBLE_EQ(a.histogram("h").sum(), 5.0);
}

TEST(Registry, RollupStripsLabels) {
  obs::Registry reg;
  reg.counter("lo.retries", {{"node", "0"}}) = 2;
  reg.counter("lo.retries", {{"node", "1"}}) = 3;
  reg.counter("lo.timeouts") = 1;
  const auto global = obs::rollup(reg.snapshot());
  ASSERT_EQ(global.count("lo.retries"), 1u);
  EXPECT_EQ(global.at("lo.retries").counter, 5u);
  EXPECT_EQ(global.at("lo.timeouts").counter, 1u);
}

TEST(Registry, JsonAndCsvAreDeterministicallyOrdered) {
  obs::Registry reg;
  reg.counter("z.last") = 1;
  reg.counter("a.first") = 2;
  const std::string json = reg.to_json("suite");
  const std::string csv = reg.to_csv();
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_LT(csv.find("a.first"), csv.find("z.last"));
  EXPECT_NE(json.find("\"bench_suite\": \"suite\""), std::string::npos);
}

TEST(Registry, ExportCarriesHistogramPercentiles) {
  obs::Registry reg;
  auto& h = reg.histogram("lat");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  reg.counter("c") = 7;

  // JSON: p50/p95/p99 fields present, bit-identical to the histogram's own
  // quantile estimator (the export must not re-derive them differently).
  const std::string json = reg.to_json("q");
  for (const auto& [key, q] : std::vector<std::pair<std::string, double>>{
           {"\"p50\": ", 0.5}, {"\"p95\": ", 0.95}, {"\"p99\": ", 0.99}}) {
    const auto pos = json.find(key);
    ASSERT_NE(pos, std::string::npos) << key << "missing from JSON export";
    EXPECT_DOUBLE_EQ(std::strtod(json.c_str() + pos + key.size(), nullptr),
                     h.quantile(q));
  }

  // CSV: widened header, percentile columns on histogram rows, and padded
  // scalar rows so every line keeps the same arity.
  const std::string csv = reg.to_csv();
  EXPECT_EQ(csv.rfind("id,kind,value,count,sum,min,max,p50,p95,p99\n", 0), 0u);
  EXPECT_NE(csv.find("c,counter,7,,,,,,,\n"), std::string::npos);
  const auto header_cols =
      std::count(csv.begin(), csv.begin() + csv.find('\n'), ',');
  std::istringstream lines(csv);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), header_cols)
        << "ragged CSV row: " << line;
  }
}

// -------------------------------------------------------------------- scope ----

TEST(Scope, AttachedScopePrefixesLabels) {
  obs::Registry reg;
  obs::Scope scope(&reg, {{"node", "3"}});
  scope.counter("lo.retries") += 4;
  scope.counter("lo.retries", {{"peer", "9"}}) += 1;
  EXPECT_EQ(reg.counter("lo.retries", {{"node", "3"}}), 4u);
  EXPECT_EQ(reg.counter("lo.retries", {{"node", "3"}, {"peer", "9"}}), 1u);
}

TEST(Scope, DetachedScopeKeepsPrivateStorageAcrossCopies) {
  obs::Scope scope;  // not attached to any registry
  EXPECT_FALSE(scope.attached());
  auto& c = scope.counter("x");
  c = 11;
  obs::Scope copy = scope;  // copies alias the same fallback registry
  EXPECT_EQ(copy.counter("x"), 11u);
}

// ------------------------------------------------------------ log histogram ----

TEST(LogHistogram, BucketBoundariesArePowersOfTwo) {
  obs::LogHistogram h;
  h.observe(1.0);   // [1, 2)  -> exp 0
  h.observe(1.99);  // [1, 2)  -> exp 0
  h.observe(2.0);   // [2, 4)  -> exp 1 (closed lower bound)
  h.observe(0.5);   // [0.5,1) -> exp -1
  h.observe(0.0);   // zero bucket
  h.observe(-3.0);  // zero bucket
  ASSERT_EQ(h.count(), 6u);
  EXPECT_EQ(h.buckets().at(0), 2u);
  EXPECT_EQ(h.buckets().at(1), 1u);
  EXPECT_EQ(h.buckets().at(-1), 1u);
  EXPECT_EQ(h.buckets().at(obs::LogHistogram::kZeroBucket), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
}

TEST(LogHistogram, QuantileIsWithinOneOctaveAndClamped) {
  obs::LogHistogram h;
  for (int i = 0; i < 100; ++i) h.observe(1.5);
  // Every sample sits in [1, 2): the geometric midpoint is sqrt(2), and the
  // estimate must clamp into the observed range.
  const double q = h.quantile(0.5);
  EXPECT_GE(q, 1.5);  // clamped to min
  EXPECT_LE(q, 1.5);  // clamped to max
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.5);
}

TEST(LogHistogram, MergeAddsBuckets) {
  obs::LogHistogram a, b;
  a.observe(1.0);
  b.observe(1.5);
  b.observe(8.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.buckets().at(0), 2u);
  EXPECT_EQ(a.buckets().at(3), 1u);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
}

// ------------------------------------------------------------- sim::Samples ----

TEST(Samples, MergeAppendsInOrder) {
  sim::Samples a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  a.merge(b);
  ASSERT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.values()[2], 3.0);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Samples, FixedBinBoundarySemanticsUnchanged) {
  // v == hi clamps into the last bin (documented Samples behavior; the log
  // histogram must not have disturbed it).
  sim::Samples s;
  s.add(0.0);
  s.add(1.0);
  const auto bins = s.histogram(4, 0.0, 1.0);
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_EQ(bins.front().count, 1u);
  EXPECT_EQ(bins.back().count, 1u);
}

TEST(Samples, LogHistogramBridgeMatchesValues) {
  sim::Samples s;
  s.add(0.25);
  s.add(3.0);
  s.add(100.0);
  const obs::LogHistogram h = s.histogram_log();
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.25);
  EXPECT_EQ(h.buckets().at(-2), 1u);  // 0.25 in [0.25, 0.5)
  EXPECT_EQ(h.buckets().at(1), 1u);   // 3.0  in [2, 4)
  EXPECT_EQ(h.buckets().at(6), 1u);   // 100  in [64, 128)
}

// ------------------------------------------------------------------- tracer ----

TEST(Tracer, DisabledEmitRecordsNothing) {
  obs::Tracer t;
  t.emit(obs::EventKind::kTxSubmit, 1);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.enabled());
}

TEST(Tracer, StampsFromTheInjectedClock) {
  std::int64_t now = 0;
  obs::Tracer t;
  t.set_clock(&now);
  t.enable(true);
  t.emit(obs::EventKind::kTxSubmit, 1);
  now = 250;
  t.emit(obs::EventKind::kTxAdmit, 2, 1);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].at, 0);
  EXPECT_EQ(evs[1].at, 250);
  EXPECT_EQ(evs[1].peer, 1u);
}

TEST(Tracer, OverflowDropsOldestAndCounts) {
  obs::Tracer t(/*capacity=*/4);
  t.enable(true);
  for (std::uint64_t i = 0; i < 7; ++i) {
    t.emit(obs::EventKind::kTxSubmit, 0, 0, /*a=*/i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 3u);
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  // Drop-oldest: the survivors are the most recent four, in order.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(evs[i].a, i + 3);
}

TEST(Tracer, InternIsStableAndClearKeepsNames) {
  obs::Tracer t;
  EXPECT_EQ(t.intern(""), 0u);
  const auto a = t.intern("lo.inv");
  const auto b = t.intern("lo.block");
  EXPECT_EQ(t.intern("lo.inv"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.name(a), "lo.inv");
  t.enable(true);
  t.emit(obs::EventKind::kMsgSend, 0, 1, 10, 20, a);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.intern("lo.inv"), a);  // string table survives clear()
}

TEST(Tracer, BinaryRoundTrip) {
  std::int64_t now = 42;
  obs::Tracer t;
  t.set_clock(&now);
  t.enable(true);
  const auto inv = t.intern("lo.inv");
  t.emit(obs::EventKind::kMsgSend, 3, 4, 128, 55000, inv);
  now = 99;
  t.emit(obs::EventKind::kReconcileRound, 5, 6, obs::kReconcileDecoded, 2);

  const auto f = obs::Tracer::from_bytes(t.bytes());
  EXPECT_EQ(f.dropped, 0u);
  ASSERT_EQ(f.events.size(), 2u);
  ASSERT_GT(f.names.size(), inv);
  EXPECT_EQ(f.names[inv], "lo.inv");
  EXPECT_EQ(f.events[0].at, 42);
  EXPECT_EQ(f.events[0].kind,
            static_cast<std::uint16_t>(obs::EventKind::kMsgSend));
  EXPECT_EQ(f.events[0].a, 128u);
  EXPECT_EQ(f.events[0].b, 55000u);
  EXPECT_EQ(f.events[1].at, 99);
  EXPECT_EQ(f.events[1].node, 5u);
}

TEST(Tracer, FromBytesRejectsMalformedInput) {
  obs::Tracer t;
  t.enable(true);
  t.emit(obs::EventKind::kTxSubmit, 1);
  auto good = t.bytes();

  auto bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW(obs::Tracer::from_bytes(bad_magic), util::SerdeError);

  auto trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(obs::Tracer::from_bytes(trailing), util::SerdeError);

  auto truncated = good;
  truncated.resize(truncated.size() - 1);
  EXPECT_THROW(obs::Tracer::from_bytes(truncated), util::SerdeError);
}

TEST(Tracer, ReadsVersion1TracesWithoutCausalFields) {
  // Hand-built v1 stream: 40-byte events, no span/parent. Old captures must
  // keep parsing after the causal-layer upgrade, loading span/parent as 0.
  util::Writer w;
  for (char m : {'L', 'O', 'T', 'R'}) w.u8(static_cast<std::uint8_t>(m));
  w.u32(1);  // version 1
  w.u64(3);  // dropped
  w.u32(2);  // names: "", "inv"
  w.str("");
  w.str("inv");
  w.u64(1);  // one event
  w.u64(77);  // at
  w.u16(static_cast<std::uint16_t>(obs::EventKind::kTxSubmit));
  w.u16(1);  // name = "inv"
  w.u32(4);  // node
  w.u32(5);  // peer
  w.u32(6);  // aux
  w.u64(0xaa);
  w.u64(0xbb);

  const auto f = obs::Tracer::from_bytes(w.take_u8());
  EXPECT_EQ(f.dropped, 3u);
  ASSERT_EQ(f.names.size(), 2u);
  EXPECT_EQ(f.names[1], "inv");
  ASSERT_EQ(f.events.size(), 1u);
  EXPECT_EQ(f.events[0].at, 77);
  EXPECT_EQ(f.events[0].node, 4u);
  EXPECT_EQ(f.events[0].aux, 6u);
  EXPECT_EQ(f.events[0].b, 0xbbu);
  EXPECT_EQ(f.events[0].span, 0u);
  EXPECT_EQ(f.events[0].parent, 0u);
}

TEST(Tracer, FromBytesRejectsHostileHeaders) {
  // Unknown version.
  {
    util::Writer w;
    for (char m : {'L', 'O', 'T', 'R'}) w.u8(static_cast<std::uint8_t>(m));
    w.u32(99);
    EXPECT_THROW(obs::Tracer::from_bytes(w.take_u8()), util::SerdeError);
  }
  // Event naming a string-table id that was never written.
  {
    obs::Tracer t;
    t.enable(true);
    t.emit(obs::EventKind::kMsgSend, 0, 1, 0, 0, /*name=*/9);
    EXPECT_THROW(obs::Tracer::from_bytes(t.bytes()), util::SerdeError);
  }
  // Hostile event-count prefix far beyond the buffer: must throw (truncated),
  // not allocate terabytes. The reserve clamp is what this pins down.
  {
    util::Writer w;
    for (char m : {'L', 'O', 'T', 'R'}) w.u8(static_cast<std::uint8_t>(m));
    w.u32(2);
    w.u64(0);  // dropped
    w.u32(0);  // no names
    w.u64(0xffffffffffffull);  // claimed events, none present
    EXPECT_THROW(obs::Tracer::from_bytes(w.take_u8()), util::SerdeError);
  }
}

// ------------------------------------------------------------- chrome json ----

std::string read_golden(const std::string& name) {
  const std::string path = std::string(LO_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ChromeJson, MatchesGoldenFile) {
  std::int64_t now = 5;
  obs::Tracer t;
  t.set_clock(&now);
  t.enable(true);
  const auto inv = t.intern("lo.inv");
  t.emit(obs::EventKind::kTxSubmit, 1, 0, 0xabc);
  now = 17;
  t.emit(obs::EventKind::kTxAdmit, 2, 1, 0xabc, 7);
  now = 30;
  t.emit(obs::EventKind::kMsgDrop, 3, 1, obs::kDropRandom, 0, inv);
  now = 44;
  t.emit(obs::EventKind::kTxFinalize, 2, 0, 0xabc, 9);
  EXPECT_EQ(obs::chrome_json(t), read_golden("chrome_trace_golden.json"));
}

// ----------------------------------------------------------------- profile ----

TEST(Profile, DisabledHitIsIgnoredEnabledCounts) {
  obs::profile::reset();
  obs::profile::set_enabled(false);
  obs::profile::hit(obs::ProfileSite::kSketchDecode, 10);
  EXPECT_EQ(obs::profile::counters(obs::ProfileSite::kSketchDecode).calls, 0u);

  obs::profile::set_enabled(true);
  {
    obs::ScopedProfile p(obs::ProfileSite::kSketchDecode, 4);
    p.add_items(6);
  }  // charged on destruction
  obs::profile::hit(obs::ProfileSite::kSketchDecode);
  const auto c = obs::profile::counters(obs::ProfileSite::kSketchDecode);
  EXPECT_EQ(c.calls, 2u);
  EXPECT_EQ(c.items, 11u);

  obs::Registry reg;
  obs::profile::publish(reg);
  EXPECT_EQ(reg.counter("profile.calls", {{"site", "sketch_decode"}}), 2u);
  EXPECT_EQ(reg.counter("profile.items", {{"site", "sketch_decode"}}), 11u);
  // publish() assigns totals (idempotent), it does not accumulate.
  obs::profile::publish(reg);
  EXPECT_EQ(reg.counter("profile.calls", {{"site", "sketch_decode"}}), 2u);

  obs::profile::set_enabled(false);
  obs::profile::reset();
}

TEST(Profile, InstrumentedSketchPathsCount) {
  obs::profile::reset();
  obs::profile::set_enabled(true);
  sketch::Sketch a(16, 4), b(16, 4);
  a.add_all(std::vector<std::uint64_t>{1, 2, 3});
  b.add(1);
  a.merge(b);
  (void)a.decode();
  EXPECT_EQ(obs::profile::counters(obs::ProfileSite::kSketchAddAll).calls, 1u);
  EXPECT_EQ(obs::profile::counters(obs::ProfileSite::kSketchAddAll).items, 3u);
  EXPECT_GE(obs::profile::counters(obs::ProfileSite::kSketchDecode).calls, 1u);
  obs::profile::set_enabled(false);
  obs::profile::reset();
}

// ------------------------------------------------------- verify-cache bind ----

TEST(VerifyCacheBind, CountersCarryOverIntoRegistry) {
  const auto kp = crypto::derive_keypair(3, crypto::SignatureMode::kEd25519);
  crypto::Signer s(kp, crypto::SignatureMode::kEd25519);
  const std::vector<std::uint8_t> msg = {1, 2, 3};
  const auto sig = s.sign(msg);

  crypto::VerifyCache cache;
  // Unbound: two verifies of the same triple -> one memo miss, one memo hit.
  EXPECT_TRUE(cache.verify(crypto::SignatureMode::kEd25519, kp.pub, msg, sig));
  EXPECT_TRUE(cache.verify(crypto::SignatureMode::kEd25519, kp.pub, msg, sig));
  const auto before = cache.stats();
  EXPECT_EQ(before.memo_misses, 1u);
  EXPECT_EQ(before.memo_hits, 1u);

  obs::Registry reg;
  cache.bind(obs::Scope(&reg, {{"node", "7"}}));
  // Pre-bind values carried into the registry cells...
  EXPECT_EQ(reg.counter("verify_cache.memo_hits", {{"node", "7"}}), 1u);
  // ...and post-bind activity lands there too, visible through both APIs.
  EXPECT_TRUE(cache.verify(crypto::SignatureMode::kEd25519, kp.pub, msg, sig));
  EXPECT_EQ(cache.stats().memo_hits, 2u);
  EXPECT_EQ(reg.counter("verify_cache.memo_hits", {{"node", "7"}}), 2u);
}

TEST(VerifyCacheBind, TracerSeesProbes) {
  const auto kp = crypto::derive_keypair(4, crypto::SignatureMode::kEd25519);
  crypto::Signer s(kp, crypto::SignatureMode::kEd25519);
  const std::vector<std::uint8_t> msg = {9};
  const auto sig = s.sign(msg);

  obs::Tracer t;
  t.enable(true);
  crypto::VerifyCache cache;
  cache.set_tracer(&t, /*node=*/5);
  EXPECT_TRUE(cache.verify(crypto::SignatureMode::kEd25519, kp.pub, msg, sig));
  const auto evs = t.events();
  ASSERT_FALSE(evs.empty());
  for (const auto& ev : evs) {
    EXPECT_EQ(ev.kind, static_cast<std::uint16_t>(obs::EventKind::kCacheProbe));
    EXPECT_EQ(ev.node, 5u);
  }
}

// ---------------------------------------------------- end-to-end determinism ----

std::vector<std::uint8_t> lo_trace_bytes(std::uint64_t seed) {
  auto cfg = test::net_cfg(12, seed);
  cfg.trace = true;
  harness::LoNetwork net(cfg);
  net.start_workload(test::load_cfg(15.0, seed + 1));
  net.run_for(8.0);
  return net.sim().obs().tracer.bytes();
}

TEST(TraceDeterminism, LoSameSeedByteIdenticalTrace) {
  const auto a = lo_trace_bytes(2024);
  const auto b = lo_trace_bytes(2024);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same-seed LO event traces diverged";
  EXPECT_NE(a, lo_trace_bytes(2025)) << "trace is seed-blind";
}

TEST(TraceDeterminism, BaselineSameSeedByteIdenticalTrace) {
  const auto run = [](std::uint64_t seed) {
    baselines::BaselineNetConfig cfg;
    cfg.num_nodes = 10;
    cfg.seed = seed;
    cfg.trace = true;
    baselines::FloodNode::Config node_cfg;
    node_cfg.prevalidation.sig_mode = test::kFastSig;
    baselines::BaselineNetwork<baselines::FloodNode> net(cfg, node_cfg);
    net.start_workload(test::load_cfg(15.0, seed + 1));
    net.run_for(8.0);
    return net.sim().obs().tracer.bytes();
  };
  const auto a = run(7);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run(7));
}

TEST(TraceDeterminism, HarnessRegistryExportIsReplayStable) {
  const auto run = [](std::uint64_t seed) {
    auto cfg = test::net_cfg(12, seed);
    cfg.trace = true;
    harness::LoNetwork net(cfg);
    net.start_workload(test::load_cfg(15.0, seed + 1));
    net.run_for(8.0);
    net.publish_metrics();
    return net.sim().obs().registry.to_json("det") +
           net.sim().obs().registry.to_csv();
  };
  const auto a = run(11);
  EXPECT_EQ(a, run(11)) << "metrics export diverged between same-seed runs";
  // The export actually observed the run: per-node cells and sim counters.
  EXPECT_NE(a.find("sim.dropped_sender_down"), std::string::npos);
  EXPECT_NE(a.find("verify_cache.memo_hits{node=0}"), std::string::npos);
  EXPECT_NE(a.find("harness.mempool_latency_s"), std::string::npos);
}

// Per-shard label policy on the hot accountability counters: sharded runs
// attribute lo.commits / lo.sync_rounds / lo.suspicions per shard, while a
// k=1 run keeps the exact pre-sharding per-node ids (no-change guarantee for
// existing dashboards and diff tooling).
TEST(TraceDeterminism, ShardLabelsAppearOnlyWhenSharded) {
  const auto registry_json = [](std::uint32_t k) {
    auto cfg = test::net_cfg(8, 31);
    cfg.node.mempool_shards = k;
    harness::LoNetwork net(cfg);
    net.start_workload(test::load_cfg(15.0, 32));
    net.run_for(5.0);
    return net.sim().obs().registry.to_json("shards");
  };

  const std::string flat = registry_json(1);
  EXPECT_NE(flat.find("lo.commits{node=0}"), std::string::npos);
  EXPECT_NE(flat.find("lo.sync_rounds{node=0}"), std::string::npos);
  EXPECT_NE(flat.find("lo.suspicions{node=0}"), std::string::npos);
  EXPECT_EQ(flat.find("shard="), std::string::npos)
      << "k=1 run leaked shard labels into metric ids";

  const std::string sharded = registry_json(4);
  for (int s = 0; s < 4; ++s) {
    const std::string want =
        "lo.commits{node=0,shard=" + std::to_string(s) + "}";
    EXPECT_NE(sharded.find(want), std::string::npos) << "missing " << want;
  }
  EXPECT_NE(sharded.find("lo.sync_rounds{node=0,shard=0}"), std::string::npos);
  EXPECT_NE(sharded.find("lo.suspicions{node=0,shard=0}"), std::string::npos);
  EXPECT_EQ(sharded.find("lo.commits{node=0}"), std::string::npos)
      << "sharded run still exports the unsharded commit counter";
}

}  // namespace
}  // namespace lo
