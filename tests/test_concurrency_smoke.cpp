// Concurrency smoke tests for the pieces that must already be thread-safe
// ahead of the parallel simulator (DESIGN.md §4d): the lazily-built Field
// registry, Sketch::decode through its per-thread Decoder workspace, and the
// Registry's documented aggregation path (private per-thread registries
// merged into a shared one, serialized by its mutex).
//
// These run in every configuration but earn their keep under
// -DLO_SANITIZE=thread, where TSan turns a latent data race into a hard
// failure. Worker threads only write into preallocated slots; every
// assertion happens on the main thread after join, so interleavings vary but
// the checked totals never do.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gf/gf2m.hpp"
#include "minisketch/sketch.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace {

constexpr int kThreads = 8;

TEST(ConcurrencySmoke, FieldRegistryFromManyThreads) {
  // Field::get(m) builds ~17 KB of tables lazily behind a magic static;
  // every thread must observe one fully-constructed instance per m.
  static constexpr unsigned kBits[] = {8, 16, 24, 32, 48, 63};
  constexpr std::size_t kNumBits = std::size(kBits);
  std::vector<const lo::gf::Field*> seen(kThreads * kNumBits, nullptr);
  std::vector<std::uint64_t> product(kThreads * kNumBits, 0);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen, &product] {
      for (std::size_t i = 0; i < kNumBits; ++i) {
        const auto& f = lo::gf::Field::get(kBits[i]);
        seen[static_cast<std::size_t>(t) * kNumBits + i] = &f;
        // Exercise the tables, not just the pointer.
        product[static_cast<std::size_t>(t) * kNumBits + i] = f.mul(3, 5);
      }
    });
  }
  for (auto& th : threads) th.join();

  for (std::size_t i = 0; i < kNumBits; ++i) {
    const auto& f = lo::gf::Field::get(kBits[i]);
    const std::uint64_t expect = f.mul(3, 5);
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t) * kNumBits + i], &f);
      EXPECT_EQ(product[static_cast<std::size_t>(t) * kNumBits + i], expect);
    }
  }
}

TEST(ConcurrencySmoke, ConcurrentSketchDecode) {
  // Sketch::decode goes through a thread-local Decoder: N threads decoding
  // simultaneously must neither share workspaces nor race in the field
  // tables, and every decode of the same sketch yields the same elements.
  lo::sketch::Sketch base(32, 32);
  lo::util::Rng rng(7);
  for (int i = 0; i < 20; ++i) base.add(rng.next());

  const auto expected_opt = base.decode();
  ASSERT_TRUE(expected_opt.has_value());
  std::vector<std::uint64_t> expected = *expected_opt;
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(expected.size(), 20u);

  constexpr int kDecodesPerThread = 50;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &base, &expected, &mismatches] {
      const lo::sketch::Sketch mine = base;  // value copy, shared field
      for (int i = 0; i < kDecodesPerThread; ++i) {
        auto got = mine.decode();
        if (!got.has_value()) {
          ++mismatches[static_cast<std::size_t>(t)];
          continue;
        }
        std::sort(got->begin(), got->end());
        if (*got != expected) ++mismatches[static_cast<std::size_t>(t)];
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0) << "thread " << t;
  }
}

TEST(ConcurrencySmoke, RegistrySnapshotMergeUnderConcurrentBumps) {
  // The documented aggregation path (metrics.hpp, DESIGN.md §4d): each
  // worker bumps counters in a private registry and merges snapshots into
  // the shared one; the shared registry's mutex serializes concurrent
  // merge/snapshot/registration. Everything that touches `global` here goes
  // through the mutex — that is the invariant TSan certifies.
  lo::obs::Registry global;
  constexpr int kRounds = 50;
  constexpr int kBumpsPerRound = 100;

  std::vector<std::size_t> snapshot_sizes(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &global, &snapshot_sizes] {
      for (int r = 0; r < kRounds; ++r) {
        lo::obs::Registry delta;
        auto& ops = delta.counter("smoke.ops");
        for (int i = 0; i < kBumpsPerRound; ++i) ++ops;
        global.merge(delta.snapshot());
        // Concurrent snapshot while other threads merge: mutex-serialized.
        snapshot_sizes[static_cast<std::size_t>(t)] =
            global.snapshot().size();
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto snap = global.snapshot();
  const auto ops = snap.find("smoke.ops");
  ASSERT_NE(ops, snap.end());
  EXPECT_EQ(ops->second.counter,
            static_cast<std::uint64_t>(kThreads) * kRounds * kBumpsPerRound);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_GE(snapshot_sizes[static_cast<std::size_t>(t)], 1u);
  }
}

TEST(ConcurrencySmoke, RegistrySingleWriterCellsReadAtBarrier) {
  // The other half of the model: cell references returned by counter()
  // escape the lock by design, each owned by the thread that registered it.
  // The contract this encodes — and the part TSan would flag if violated —
  // is that the coordinator reads those cells only at a barrier (here:
  // join), never concurrently with the owners' bumps. Registration itself
  // is concurrent and mutex-guarded; the map's node stability keeps every
  // escaped reference valid while other threads keep inserting.
  lo::obs::Registry reg;
  constexpr int kBumps = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &reg] {
      auto& owned =
          reg.counter("smoke.owned", {{"node", std::to_string(t)}});
      for (int i = 0; i < kBumps; ++i) ++owned;
    });
  }
  for (auto& th : threads) th.join();

  // Barrier passed: the coordinator may now aggregate.
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    const auto it = snap.find("smoke.owned{node=" + std::to_string(t) + "}");
    ASSERT_NE(it, snap.end()) << "thread " << t;
    EXPECT_EQ(it->second.counter, static_cast<std::uint64_t>(kBumps));
  }
}

}  // namespace
