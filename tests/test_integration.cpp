// End-to-end integration tests: full LØ networks under honest and adversarial
// conditions, exercising the accountability properties of Sec. 3.2.
#include <gtest/gtest.h>

#include "harness/lo_network.hpp"
#include "test_net_util.hpp"

namespace lo {
namespace {

// Fast signatures keep the test suite quick; wire sizes are unchanged.
using test::load_cfg;
using test::net_cfg;

TEST(Integration, HonestNetworkConvergesAndStaysClean) {
  harness::LoNetwork net(net_cfg(16, 11));
  net.start_workload(load_cfg(5.0, 21));
  net.run_for(10.0);
  // Stop injecting; drain.
  net.stop_workload();
  net.run_for(10.0);
  const auto injected = net.txs_injected();
  ASSERT_GT(injected, 20u);

  // Every correct node ends with the same mempool (Sec. 4.2: reconciliation
  // converges to a common set).
  const std::size_t expect = net.node(0).mempool_size();
  EXPECT_GT(expect, 0u);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.node(i).mempool_size(), injected)
        << "node " << i << " did not converge";
  }

  // Accuracy (Sec. 3.2): no correct node is suspected or exposed.
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(net.node(i).registry().suspected().empty());
    EXPECT_TRUE(net.node(i).registry().exposed().empty());
  }
}

TEST(Integration, MempoolLatencyIsRealistic) {
  harness::LoNetwork net(net_cfg(32, 5));
  net.start_workload(load_cfg(10.0, 7));
  net.run_for(20.0);
  auto& lat = net.mempool_latency();
  ASSERT_GT(lat.count(), 100u);
  // Paper: ~1.14 s average mempool-inclusion latency with 1 s reconciliation
  // rounds. Accept a generous band around that shape.
  EXPECT_GT(lat.mean(), 0.2);
  EXPECT_LT(lat.mean(), 4.0);
}

TEST(Integration, SilentNodesGetSuspectedEverywhere) {
  auto cfg = net_cfg(20, 31);
  cfg.malicious_fraction = 0.15;  // 3 nodes
  cfg.malicious.ignore_requests = true;
  cfg.malicious.censor_txs = true;
  cfg.malicious.drop_gossip = true;
  harness::LoNetwork net(cfg);
  net.start_workload(load_cfg(5.0, 33));
  net.run_for(30.0);

  const auto times = net.detection_times();
  EXPECT_GE(times.suspicion_complete_s, 0.0)
      << "not every correct node suspected every silent node";
  // Suspicion needs timeout + retries (4 s at the default parameters) but
  // must complete well within the run.
  EXPECT_LT(times.suspicion_complete_s, 30.0);
}

TEST(Integration, EquivocatorsAreExposedEverywhere) {
  auto cfg = net_cfg(20, 41);
  cfg.malicious_fraction = 0.10;  // 2 nodes
  cfg.malicious.equivocate = true;
  harness::LoNetwork net(cfg);
  net.start_workload(load_cfg(8.0, 43));
  net.run_for(40.0);

  const auto times = net.detection_times();
  EXPECT_GE(times.exposure_complete_s, 0.0)
      << "equivocators not exposed at every correct node";
  EXPECT_GE(times.first_exposure_s, 0.0);
  EXPECT_LE(times.first_exposure_s, times.exposure_complete_s);
}

TEST(Integration, ReorderingBlockCreatorIsExposed) {
  auto cfg = net_cfg(12, 51);
  cfg.malicious_fraction = 0.1;  // 1 node
  cfg.malicious.reorder_block = true;
  harness::LoNetwork net(cfg);
  net.start_workload(load_cfg(8.0, 53));
  net.run_for(15.0);  // let mempools fill

  // Elect the malicious node as leader explicitly.
  std::size_t bad = net.size();
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) bad = i;
  }
  ASSERT_LT(bad, net.size());
  ASSERT_GT(net.node(bad).log().count(), 10u) << "attacker saw no txs";
  net.node(bad).create_block(1, crypto::Digest256{});
  net.run_for(20.0);

  std::size_t exposed_at = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) continue;
    if (net.node(i).registry().is_exposed(static_cast<core::NodeId>(bad))) {
      ++exposed_at;
    }
  }
  EXPECT_EQ(exposed_at, net.correct_count())
      << "reordering creator should be exposed at every correct node";
}

TEST(Integration, HonestBlockCreatorIsNotBlamed) {
  harness::LoNetwork net(net_cfg(12, 61));
  net.start_workload(load_cfg(8.0, 63));
  net.run_for(15.0);
  net.node(3).create_block(1, crypto::Digest256{});
  net.run_for(20.0);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_FALSE(net.node(i).registry().is_exposed(3));
    EXPECT_FALSE(net.node(i).registry().is_suspected(3));
  }
}

TEST(Integration, InjectingBlockCreatorIsExposed) {
  auto cfg = net_cfg(12, 71);
  cfg.malicious_fraction = 0.1;
  cfg.malicious.inject_uncommitted = true;
  harness::LoNetwork net(cfg);
  net.start_workload(load_cfg(8.0, 73));
  net.run_for(15.0);

  std::size_t bad = net.size();
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) bad = i;
  }
  ASSERT_LT(bad, net.size());
  net.node(bad).create_block(1, crypto::Digest256{});
  net.run_for(20.0);

  std::size_t exposed_at = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) continue;
    if (net.node(i).registry().is_exposed(static_cast<core::NodeId>(bad))) {
      ++exposed_at;
    }
  }
  EXPECT_EQ(exposed_at, net.correct_count());
}

TEST(Integration, OffChannelCollusionIsExposed) {
  // Sec. 5.3 / Fig. 5: colluding miners exchange a transaction off-channel to
  // evade commitments, then the block creator includes it out of order. The
  // block then contains a transaction with no commitment trail — the creator
  // "faces blame for introducing a transaction without node A's commitment".
  auto cfg = net_cfg(14, 91);
  cfg.malicious_fraction = 0.07;  // one colluding block creator
  cfg.malicious.inject_uncommitted = true;
  harness::LoNetwork net(cfg);
  net.start_workload(load_cfg(8.0, 93));
  net.run_for(12.0);

  std::size_t colluder = net.size();
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) colluder = i;
  }
  ASSERT_LT(colluder, net.size());

  // The victim's transaction reaches the colluder off-channel: content only,
  // no commitment, no acknowledgement.
  crypto::Signer victim(
      crypto::derive_keypair(424242, crypto::SignatureMode::kSimFast),
      crypto::SignatureMode::kSimFast);
  const auto tx =
      core::make_transaction(victim, 1, 999999, net.sim().now());
  net.node(colluder).stealth_store(tx);
  EXPECT_FALSE(net.node(colluder).log().contains(tx.id))
      << "off-channel receipt must leave no commitment trace";

  const auto block = net.node(colluder).create_block(1, crypto::Digest256{});
  // The stealth tx sits at the front of the block.
  ASSERT_FALSE(block.segments.empty());
  EXPECT_EQ(block.segments.front().txids.front(), tx.id);

  net.run_for(20.0);
  std::size_t exposed_at = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) continue;
    if (net.node(i).registry().is_exposed(
            static_cast<core::NodeId>(colluder))) {
      ++exposed_at;
    }
  }
  EXPECT_EQ(exposed_at, net.correct_count())
      << "uncommitted off-channel tx in a block must expose the creator";
}

TEST(Integration, BlockProductionSettlesTransactions) {
  harness::LoNetwork net(net_cfg(16, 81));
  net.start_workload(load_cfg(10.0, 83));
  consensus::LeaderConfig lc;
  lc.mean_block_interval = 6 * sim::kSecond;
  lc.exponential_intervals = false;  // fixed cadence keeps the test stable
  net.start_block_production(lc);
  net.run_for(40.0);
  EXPECT_GT(net.chain().height(), 2u);
  EXPECT_GT(net.chain().settled_count(), 50u);
  EXPECT_GT(net.block_latency().count(), 50u);
  EXPECT_GT(net.block_latency().mean(), 0.5);
}

TEST(Integration, DeterministicGivenSeed) {
  auto run = [] {
    harness::LoNetwork net(net_cfg(12, 99));
    net.start_workload(load_cfg(6.0, 17));
    net.run_for(8.0);
    return std::tuple{net.txs_injected(), net.node(3).mempool_size(),
                      net.sim().bandwidth().total_bytes()};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace lo
