// Baseline protocol tests: Flood propagation, PeerReview logging/auditing,
// Narwhal batching/certificates — plus relative bandwidth sanity checks that
// anchor the Fig. 9 comparison.
#include <gtest/gtest.h>

#include "baselines/common.hpp"
#include "baselines/flood.hpp"
#include "baselines/narwhal.hpp"
#include "baselines/peerreview.hpp"
#include "test_net_util.hpp"

namespace lo::baselines {
namespace {

constexpr auto kMode = test::kFastSig;

// Baselines use their own config type (BaselineNetConfig), so only the
// workload helper is shared; constant latency keeps these tests fast.
BaselineNetConfig net_cfg(std::size_t n, std::uint64_t seed) {
  BaselineNetConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = seed;
  cfg.city_latency = false;
  return cfg;
}

using test::load_cfg;

core::PrevalidationPolicy preval() {
  core::PrevalidationPolicy p;
  p.sig_mode = kMode;
  return p;
}

core::Transaction make_tx(std::uint64_t nonce) {
  crypto::Signer client(crypto::derive_keypair(31337, kMode), kMode);
  return core::make_transaction(client, nonce, 77, 0);
}

// ------------------------------------------------------------------ Flood ----

TEST(Flood, PropagatesToAllNodes) {
  FloodNode::Config cfg;
  cfg.prevalidation = preval();
  BaselineNetwork<FloodNode> net(net_cfg(16, 1), cfg);
  const auto tx = make_tx(1);
  net.node(0).submit_transaction(tx);
  net.run_for(5.0);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(net.node(i).has_tx(tx.id)) << "node " << i;
  }
}

TEST(Flood, NoRedundantContentTransfers) {
  FloodNode::Config cfg;
  cfg.prevalidation = preval();
  BaselineNetwork<FloodNode> net(net_cfg(12, 2), cfg);
  net.node(0).submit_transaction(make_tx(1));
  net.run_for(5.0);
  const auto& cls = net.sim().bandwidth().by_class();
  ASSERT_TRUE(cls.count("flood.tx"));
  // Each node needs the ~250-byte content exactly once (requested_ dedup):
  // 11 receivers -> at most 11 tx deliveries (+ framing).
  EXPECT_LE(cls.at("flood.tx").messages, 11u);
}

TEST(Flood, WorkloadConvergesUnderLoad) {
  FloodNode::Config cfg;
  cfg.prevalidation = preval();
  BaselineNetwork<FloodNode> net(net_cfg(16, 3), cfg);
  net.start_workload(load_cfg(10.0, 5));
  net.run_for(10.0);
  EXPECT_GT(net.txs_injected(), 50u);
  EXPECT_GT(net.mempool_latency().count(), 100u);
  EXPECT_LT(net.mempool_latency().mean(), 2.0);
}

// -------------------------------------------------------------- PeerReview ----

TEST(PeerReview, PropagatesAndLogs) {
  PeerReviewNode::Config cfg;
  cfg.prevalidation = preval();
  BaselineNetwork<PeerReviewNode> net(net_cfg(12, 4), cfg);
  for (std::size_t i = 0; i < net.size(); ++i) net.node(i).set_universe(12);
  const auto tx = make_tx(1);
  net.node(0).submit_transaction(tx);
  net.run_for(5.0);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(net.node(i).has_tx(tx.id));
  }
  EXPECT_GT(net.node(0).log_length(), 0u);
}

TEST(PeerReview, WitnessAuditsSucceedForHonestNodes) {
  PeerReviewNode::Config cfg;
  cfg.prevalidation = preval();
  cfg.audit_interval = 3 * sim::kSecond;
  BaselineNetwork<PeerReviewNode> net(net_cfg(12, 5), cfg);
  for (std::size_t i = 0; i < net.size(); ++i) net.node(i).set_universe(12);
  net.start_workload(load_cfg(5.0, 6));
  net.run_for(15.0);
  const auto& cls = net.sim().bandwidth().by_class();
  ASSERT_TRUE(cls.count("pr.audit_req"));
  ASSERT_TRUE(cls.count("pr.audit_resp"));
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(net.node(i).audits_clean()) << "honest log failed replay";
  }
}

TEST(PeerReview, CostsMoreThanFlood) {
  // The Fig. 9 shape at small scale: PeerReview overhead > Flood overhead.
  const double tps = 10.0;
  FloodNode::Config fcfg;
  fcfg.prevalidation = preval();
  BaselineNetwork<FloodNode> flood(net_cfg(16, 7), fcfg);
  flood.start_workload(load_cfg(tps, 8));
  flood.run_for(10.0);
  const auto flood_overhead =
      flood.sim().bandwidth().bytes_excluding({"flood.tx"});

  PeerReviewNode::Config pcfg;
  pcfg.prevalidation = preval();
  BaselineNetwork<PeerReviewNode> pr(net_cfg(16, 7), pcfg);
  for (std::size_t i = 0; i < pr.size(); ++i) pr.node(i).set_universe(16);
  pr.start_workload(load_cfg(tps, 8));
  pr.run_for(10.0);
  const auto pr_overhead = pr.sim().bandwidth().bytes_excluding({"pr.tx"});

  EXPECT_GT(pr_overhead, 2 * flood_overhead);
}

TEST(PeerReview, TamperedLogFailsAudit) {
  // A witness replays the fetched log segment; an entry whose hash chain does
  // not verify (tampered or rewritten history) flips the audit verdict.
  PeerReviewNode::Config cfg;
  cfg.prevalidation = preval();
  BaselineNetwork<PeerReviewNode> net(net_cfg(4, 6), cfg);
  for (std::size_t i = 0; i < net.size(); ++i) net.node(i).set_universe(4);

  auto forged = std::make_shared<PrAuditResponse>();
  forged->from_seq = 0;
  LogEntry e;
  e.seq = 1;
  e.kind = 0;
  e.peer = 2;
  e.content_digest.fill(0xaa);
  e.chain.fill(0xbb);  // does not match chain_step(zero, e)
  forged->entries.push_back(e);

  EXPECT_TRUE(net.node(0).audits_clean());
  net.node(0).on_message(1, forged);
  EXPECT_FALSE(net.node(0).audits_clean())
      << "hash-chain replay must reject the forged segment";
}

TEST(PeerReview, OutOfOrderLogSegmentRejected) {
  PeerReviewNode::Config cfg;
  cfg.prevalidation = preval();
  BaselineNetwork<PeerReviewNode> net(net_cfg(4, 7), cfg);
  for (std::size_t i = 0; i < net.size(); ++i) net.node(i).set_universe(4);

  // Sequence numbers must be contiguous from the witness watermark; a gap
  // (history truncation) fails the replay even if hashes are self-consistent.
  auto forged = std::make_shared<PrAuditResponse>();
  forged->from_seq = 0;
  LogEntry e;
  e.seq = 5;  // gap: witness expects seq 1
  e.kind = 1;
  e.peer = 3;
  forged->entries.push_back(e);
  net.node(0).on_message(1, forged);
  EXPECT_FALSE(net.node(0).audits_clean());
}

// ----------------------------------------------------------------- Narwhal ----

TEST(Narwhal, BatchesReachEveryone) {
  NarwhalNode::Config cfg;
  cfg.prevalidation = preval();
  cfg.num_nodes = 12;
  BaselineNetwork<NarwhalNode> net(net_cfg(12, 9), cfg);
  const auto tx = make_tx(1);
  net.node(0).submit_transaction(tx);
  net.run_for(5.0);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_GE(net.node(i).mempool_size(), 1u) << "node " << i;
  }
}

TEST(Narwhal, BatchesGetCertified) {
  NarwhalNode::Config cfg;
  cfg.prevalidation = preval();
  cfg.num_nodes = 12;
  BaselineNetwork<NarwhalNode> net(net_cfg(12, 10), cfg);
  net.start_workload(load_cfg(10.0, 11));
  net.run_for(10.0);
  std::uint64_t certified = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    certified += net.node(i).certified_batches();
  }
  EXPECT_GT(certified, 0u) << "quorum acks should certify batches";
  const auto& cls = net.sim().bandwidth().by_class();
  EXPECT_TRUE(cls.count("nw.ack"));
  EXPECT_TRUE(cls.count("nw.header"));
}

TEST(Narwhal, LowerLatencyThanFloodButMoreOverhead) {
  const double tps = 10.0;
  FloodNode::Config fcfg;
  fcfg.prevalidation = preval();
  BaselineNetwork<FloodNode> flood(net_cfg(20, 12), fcfg);
  flood.start_workload(load_cfg(tps, 13));
  flood.run_for(10.0);

  NarwhalNode::Config ncfg;
  ncfg.prevalidation = preval();
  ncfg.num_nodes = 20;
  BaselineNetwork<NarwhalNode> nw(net_cfg(20, 12), ncfg);
  nw.start_workload(load_cfg(tps, 13));
  nw.run_for(10.0);

  ASSERT_GT(nw.mempool_latency().count(), 0u);
  ASSERT_GT(flood.mempool_latency().count(), 0u);
  // Direct whole-network batch broadcast beats hop-by-hop flooding on
  // latency...
  EXPECT_LT(nw.mempool_latency().mean(), flood.mempool_latency().mean() + 0.5);
  // ...but the ack/cert traffic costs much more than INV/GETDATA.
  const auto nw_overhead =
      nw.sim().bandwidth().bytes_excluding({"nw.batch"});
  const auto flood_overhead =
      flood.sim().bandwidth().bytes_excluding({"flood.tx"});
  EXPECT_GT(nw_overhead, flood_overhead);
}

}  // namespace
}  // namespace lo::baselines
