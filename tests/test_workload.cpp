// Workload generator tests: arrival process, fee distribution, determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "workload/txgen.hpp"

namespace lo::workload {
namespace {

WorkloadConfig fast_cfg(double tps, std::uint64_t seed) {
  WorkloadConfig c;
  c.tps = tps;
  c.seed = seed;
  c.sig_mode = crypto::SignatureMode::kSimFast;
  return c;
}

TEST(TxGen, ArrivalRateMatchesTps) {
  TxGenerator gen(fast_cfg(20.0, 1));
  std::int64_t total = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) total += gen.next_gap_us();
  const double mean_gap = static_cast<double>(total) / kN;
  EXPECT_NEAR(mean_gap, 1e6 / 20.0, 1e6 / 20.0 * 0.05);
}

TEST(TxGen, FixedArrivalsWhenPoissonDisabled) {
  auto cfg = fast_cfg(10.0, 2);
  cfg.poisson_arrivals = false;
  TxGenerator gen(cfg);
  EXPECT_EQ(gen.next_gap_us(), 100000);
  EXPECT_EQ(gen.next_gap_us(), 100000);
}

TEST(TxGen, TransactionsAreValidAndUnique) {
  TxGenerator gen(fast_cfg(20.0, 3));
  core::PrevalidationPolicy policy;
  policy.sig_mode = crypto::SignatureMode::kSimFast;
  std::set<core::TxId> ids;
  for (int i = 0; i < 200; ++i) {
    const auto tx = gen.next(i * 1000);
    EXPECT_TRUE(prevalidate(tx, policy));
    EXPECT_EQ(tx.wire_size(), core::kTxWireSize);
    EXPECT_TRUE(ids.insert(tx.id).second);
  }
  EXPECT_EQ(gen.generated(), 200u);
}

TEST(TxGen, FeesAreSkewed) {
  // Lognormal fees: mean > median (right-skewed), all positive.
  TxGenerator gen(fast_cfg(20.0, 4));
  std::vector<std::uint64_t> fees;
  for (int i = 0; i < 5000; ++i) fees.push_back(gen.next(0).fee);
  std::sort(fees.begin(), fees.end());
  double mean = 0;
  for (auto f : fees) mean += static_cast<double>(f);
  mean /= static_cast<double>(fees.size());
  const double median = static_cast<double>(fees[fees.size() / 2]);
  EXPECT_GT(mean, median);
  EXPECT_GE(fees.front(), 1u);
}

TEST(TxGen, DeterministicForSeed) {
  TxGenerator a(fast_cfg(20.0, 7)), b(fast_cfg(20.0, 7));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.next(i).id, b.next(i).id);
    EXPECT_EQ(a.next_gap_us(), b.next_gap_us());
  }
}

TEST(TxGen, ClientsRotate) {
  auto cfg = fast_cfg(20.0, 8);
  cfg.num_clients = 16;
  TxGenerator gen(cfg);
  std::set<crypto::PublicKey> creators;
  for (int i = 0; i < 300; ++i) creators.insert(gen.next(0).creator);
  EXPECT_EQ(creators.size(), 16u);
}

TEST(TxGen, CreatedAtPropagates) {
  TxGenerator gen(fast_cfg(20.0, 9));
  EXPECT_EQ(gen.next(123456).created_at, 123456);
}

}  // namespace
}  // namespace lo::workload
