// Chaos lab: drive a LØ network through the full fault-injection repertoire —
// scripted crash/restart windows, random churn, flaky links and latency
// spikes — while the invariant checker continuously verifies that no correct
// node is ever exposed, no log double-commits, and mempools stay consistent
// with the commitment logs.
//
//   $ ./build/examples/chaos_lab [trace.lotrace [metrics.json]]
//
// Everything is driven by two seeds (network and fault injector), so every
// run of this binary prints exactly the same trace. With a trace path the
// event tracer records the whole run (crashes, drops, reconciliations);
// `./build/tools/lotrace` converts the capture for the Perfetto UI.
#include <cstdio>

#include "harness/lo_network.hpp"

int main(int argc, char** argv) {
  using namespace lo;
  const char* trace_path = argc > 1 ? argv[1] : nullptr;
  const char* metrics_path = argc > 2 ? argv[2] : nullptr;

  harness::NetworkConfig cfg;
  cfg.num_nodes = 16;
  cfg.seed = 7;
  cfg.trace = trace_path != nullptr;
  cfg.trace_capacity = 1 << 18;  // chaos runs are long; keep the whole story
  cfg.node.sig_mode = crypto::SignatureMode::kSimFast;
  cfg.node.prevalidation.sig_mode = crypto::SignatureMode::kSimFast;
  // The parallel engine is byte-identical across worker counts, so this only
  // changes wall-clock time — the printed trace stays exactly the same.
  cfg.workers = 4;
  harness::LoNetwork net(cfg);
  std::printf("== LO chaos lab: %zu miners ==\n\n", net.size());

  // Fail fast on any accountability or log-consistency violation: a broken
  // invariant raises std::runtime_error out of run_for().
  net.start_invariant_checker(500 * sim::kMillisecond);

  // Online anomaly detection: the chaos (crashes, flaky links, churn) is
  // expected to trip the dwell/SLO detectors occasionally; the alert log
  // below shows what an operator would have seen live.
  harness::AnomalyConfig anomaly_cfg;
  anomaly_cfg.censor_dwell_threshold_s = 20.0;
  anomaly_cfg.commit_latency_slo_s = 10.0;
  net.start_anomaly_monitor(anomaly_cfg);

  workload::WorkloadConfig load;
  load.tps = 10.0;
  load.seed = 11;
  load.sig_mode = crypto::SignatureMode::kSimFast;
  net.start_workload(load);

  // Act I — a scripted crash: node 3 dies at t=4s for 6 seconds, losing its
  // volatile state (the commitment log survives as "disk").
  net.faults().crash_at(4 * sim::kSecond, 3, 6 * sim::kSecond,
                        /*wipe_mempool=*/true);

  // Act II — pathological links: a flaky window and a latency spike.
  net.faults().flaky_link(0, 1, 5 * sim::kSecond, 15 * sim::kSecond, 0.5);
  net.faults().latency_spike(8 * sim::kSecond, 12 * sim::kSecond, 4.0);

  // Act III — random churn: up to 3 of 16 nodes down at any time.
  sim::ChurnConfig churn;
  churn.mean_gap = 3 * sim::kSecond;
  churn.min_down = 2 * sim::kSecond;
  churn.max_down = 6 * sim::kSecond;
  churn.max_concurrent_down = 3;
  net.start_churn(churn);

  for (int leg = 1; leg <= 3; ++leg) {
    net.run_for(10.0);
    std::printf(
        "t=%5.1fs  injected=%llu  down_now=%zu  crashes=%llu  link_drops=%llu\n",
        static_cast<double>(net.sim().now()) / 1e6,
        static_cast<unsigned long long>(net.txs_injected()),
        net.faults().down_count(),
        static_cast<unsigned long long>(net.faults().crashes_injected()),
        static_cast<unsigned long long>(net.faults().link_drops()));
  }

  // Cooldown: stop the chaos, drain the workload, let recovery syncs finish.
  net.stop_churn();
  net.stop_workload();
  std::printf("\nchurn stopped; draining...\n");
  net.run_for(60.0);

  const auto total = net.txs_injected();
  std::size_t converged = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.node(i).mempool_size() == total &&
        net.node(i).log().count() == total) {
      ++converged;
    }
  }
  const auto stats = net.total_stats();
  std::printf("\n== aftermath ==\n");
  std::printf("transactions injected     %llu\n",
              static_cast<unsigned long long>(total));
  std::printf("nodes fully converged     %zu / %zu\n", converged, net.size());
  std::printf("crashes / restarts        %llu / %llu\n",
              static_cast<unsigned long long>(net.faults().crashes_injected()),
              static_cast<unsigned long long>(net.faults().restarts_injected()));
  std::printf("timeouts / retries        %llu / %llu\n",
              static_cast<unsigned long long>(stats.timeouts_fired),
              static_cast<unsigned long long>(stats.retries_sent));
  std::printf("suspicions raised/retracted %llu / %llu\n",
              static_cast<unsigned long long>(stats.suspicions_raised),
              static_cast<unsigned long long>(stats.suspicions_retracted));
  std::printf("invariant violations      %zu\n",
              net.invariant_violations().size());

  std::size_t exposures = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    exposures += net.node(i).registry().exposed().size();
  }
  std::printf("false exposures           %zu  %s\n", exposures,
              exposures == 0 ? "(accuracy holds)" : "(BUG!)");

  const auto& alerts = net.anomaly()->alerts();
  std::printf("anomaly alerts            %zu  (inflight at end: %llu)\n",
              alerts.size(),
              static_cast<unsigned long long>(net.anomaly()->inflight()));
  for (const auto& a : alerts) {
    std::printf("  [%7.2fs] %-18s %.3f > %.3f  %s\n", a.when_s,
                harness::anomaly_kind_name(a.kind), a.value, a.threshold,
                a.detail.c_str());
  }

  if (trace_path != nullptr) {
    auto& tracer = net.sim().obs().tracer;
    if (!tracer.write_file(trace_path)) return 1;
    std::printf("wrote %zu trace events to %s (dropped=%llu)\n", tracer.size(),
                trace_path, static_cast<unsigned long long>(tracer.dropped()));
  }
  if (metrics_path != nullptr) {
    net.publish_metrics();
    if (!net.sim().obs().registry.write_json(metrics_path, "chaos_lab")) {
      return 1;
    }
    std::printf("wrote %zu metrics to %s\n", net.sim().obs().registry.size(),
                metrics_path);
  }
  return exposures == 0 && converged == net.size() ? 0 : 1;
}
