// Bandwidth comparison walkthrough: runs the same workload through LØ and
// the classical flooding mempool and prints a per-message-class breakdown —
// a narrated, smaller-scale companion to bench_fig9_bandwidth.
//
//   $ ./build/examples/bandwidth_comparison
#include <cstdio>

#include "baselines/common.hpp"
#include "baselines/flood.hpp"
#include "harness/lo_network.hpp"

int main() {
  using namespace lo;
  const std::size_t kNodes = 64;
  const double kTps = 20.0;
  const double kSeconds = 20.0;

  std::printf("== LO vs Flood bandwidth breakdown: %zu nodes, %.0f tps, "
              "%.0f s ==\n\n",
              kNodes, kTps, kSeconds);

  // --- LØ ---
  harness::NetworkConfig lo_cfg;
  lo_cfg.num_nodes = kNodes;
  lo_cfg.seed = 7;
  lo_cfg.node.sig_mode = crypto::SignatureMode::kSimFast;
  lo_cfg.node.prevalidation.sig_mode = crypto::SignatureMode::kSimFast;
  harness::LoNetwork lo_net(lo_cfg);

  workload::WorkloadConfig load;
  load.tps = kTps;
  load.seed = 99;
  load.sig_mode = crypto::SignatureMode::kSimFast;
  lo_net.start_workload(load, 1);
  lo_net.run_for(kSeconds);

  std::printf("LO message classes:\n");
  for (const auto& [name, stats] : lo_net.sim().bandwidth().by_class()) {
    std::printf("  %-18s msgs=%-8llu bytes=%-10llu avg=%llu B\n", name.c_str(),
                static_cast<unsigned long long>(stats.messages),
                static_cast<unsigned long long>(stats.bytes),
                static_cast<unsigned long long>(
                    stats.messages ? stats.bytes / stats.messages : 0));
  }
  const auto lo_overhead =
      lo_net.sim().bandwidth().bytes_excluding({"lo.txs"});

  // --- Flood ---
  baselines::BaselineNetConfig fl_cfg;
  fl_cfg.num_nodes = kNodes;
  fl_cfg.seed = 7;
  baselines::FloodNode::Config fl_node;
  fl_node.prevalidation.sig_mode = crypto::SignatureMode::kSimFast;
  baselines::BaselineNetwork<baselines::FloodNode> fl_net(fl_cfg, fl_node);
  fl_net.start_workload(load, 1);
  fl_net.run_for(kSeconds);

  std::printf("\nFlood message classes:\n");
  for (const auto& [name, stats] : fl_net.sim().bandwidth().by_class()) {
    std::printf("  %-18s msgs=%-8llu bytes=%-10llu avg=%llu B\n", name.c_str(),
                static_cast<unsigned long long>(stats.messages),
                static_cast<unsigned long long>(stats.bytes),
                static_cast<unsigned long long>(
                    stats.messages ? stats.bytes / stats.messages : 0));
  }
  const auto fl_overhead =
      fl_net.sim().bandwidth().bytes_excluding({"flood.tx"});

  const auto lo_bytes = static_cast<double>(lo_overhead);
  const auto fl_bytes = static_cast<double>(fl_overhead);
  std::printf("\noverhead (tx bodies excluded):\n");
  std::printf("  LO    : %.1f KiB total, %.1f B/s/node\n",
              lo_bytes / 1024.0, lo_bytes / kSeconds / kNodes);
  std::printf("  Flood : %.1f KiB total, %.1f B/s/node\n",
              fl_bytes / 1024.0, fl_bytes / kSeconds / kNodes);
  std::printf("  ratio : Flood / LO = %.2fx  (paper: >= 4x)\n",
              static_cast<double>(fl_overhead) /
                  static_cast<double>(lo_overhead));
  std::printf(
      "\nwhy: flooding announces every tx hash on every edge; LØ's sketches\n"
      "make the per-round cost proportional to the set difference, and the\n"
      "same messages double as accountability commitments.\n");
  return 0;
}
