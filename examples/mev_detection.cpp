// MEV detection demo: a miner attempts the three transaction-manipulation
// primitives of Sec. 2.2 — censorship, injection, re-ordering — while
// building a block, and LØ's inspection pipeline catches and exposes each.
//
//   $ ./build/examples/mev_detection
//
// This is the paper's core scenario: a sandwich-style attacker reorders a
// victim's DEX trade behind its own, or censors a competing NFT bid. In LØ,
// blocks that deviate from the committed canonical order are verifiable
// evidence against their creator.
#include <cstdio>

#include "harness/lo_network.hpp"

namespace {

using namespace lo;

struct ScenarioResult {
  std::size_t exposed_at = 0;
  std::size_t suspected_at = 0;
  std::size_t correct = 0;
};

ScenarioResult run_scenario(const char* name, core::MaliciousBehavior attack,
                            std::uint64_t seed) {
  harness::NetworkConfig cfg;
  cfg.num_nodes = 20;
  cfg.seed = seed;
  cfg.node.sig_mode = crypto::SignatureMode::kSimFast;
  cfg.node.prevalidation.sig_mode = crypto::SignatureMode::kSimFast;
  cfg.malicious_fraction = 0.05;  // exactly one attacker
  cfg.malicious = attack;
  harness::LoNetwork net(cfg);

  // Background traffic: ordinary users trading on a DEX.
  workload::WorkloadConfig load;
  load.tps = 10.0;
  load.seed = seed * 3;
  load.sig_mode = crypto::SignatureMode::kSimFast;
  net.start_workload(load, 1);
  net.run_for(15.0);

  // The attacker wins the block and builds it with its manipulation.
  std::size_t attacker = net.size();
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) attacker = i;
  }
  const auto block = net.node(attacker).create_block(1, crypto::Digest256{});
  std::printf("[%s] attacker (miner %zu) built block with %zu txs\n", name,
              attacker, block.tx_count());

  // Give inspection, bundle retrieval and blame gossip time to finish.
  net.run_for(20.0);

  ScenarioResult r;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) continue;
    ++r.correct;
    const auto& reg = net.node(i).registry();
    if (reg.is_exposed(static_cast<core::NodeId>(attacker))) ++r.exposed_at;
    if (reg.is_suspected(static_cast<core::NodeId>(attacker))) ++r.suspected_at;
  }
  return r;
}

}  // namespace

int main() {
  std::printf("== LO MEV detection demo: the Sec. 2.2 manipulation "
              "primitives ==\n\n");

  {
    core::MaliciousBehavior reorder;
    reorder.reorder_block = true;
    const auto r = run_scenario("re-ordering (sandwich-style)", reorder, 101);
    std::printf("  -> exposed at %zu/%zu correct miners (verifiable "
                "evidence)\n\n",
                r.exposed_at, r.correct);
  }
  {
    core::MaliciousBehavior inject;
    inject.inject_uncommitted = true;
    const auto r = run_scenario("injection (front-running)", inject, 202);
    std::printf("  -> exposed at %zu/%zu correct miners (uncommitted tx ahead "
                "of committed bundles)\n\n",
                r.exposed_at, r.correct);
  }
  {
    core::MaliciousBehavior censor;
    censor.censor_blockspace = true;
    const auto r = run_scenario("blockspace censorship (sniping)", censor, 303);
    std::printf("  -> blamed (suspected) at %zu/%zu correct miners (omission "
                "of a committed, includeable tx)\n\n",
                r.suspected_at + r.exposed_at, r.correct);
  }

  std::printf("honest control: an honest leader draws no blame —\n");
  {
    core::MaliciousBehavior none;
    const auto r = run_scenario("honest control", none, 404);
    std::printf("  -> exposed at %zu, suspected at %zu of %zu correct miners "
                "(expect 0/0)\n",
                r.exposed_at, r.suspected_at, r.correct);
  }
  return 0;
}
