// Equivocation audit: shows the accountability machinery at the data level.
// A miner forks its commitment log (telling different stories to different
// peers, Sec. 5.2 / Fig. 4); two signed commitments meet at a correct node,
// the consistency check fails, and the resulting evidence is a transferable
// proof anyone can verify offline — demonstrated here by verifying it
// outside the network with nothing but the two signed headers.
//
//   $ ./build/examples/equivocation_audit
#include <cstdio>

#include "enforcement/slashing.hpp"
#include "harness/lo_network.hpp"

int main() {
  using namespace lo;

  std::printf("== LO equivocation audit ==\n\n");

  // Offline part: construct the fork by hand to show the mechanics.
  std::printf("[offline] miner 9 forks its commitment log:\n");
  const auto mode = crypto::SignatureMode::kEd25519;
  crypto::Signer miner9(crypto::derive_keypair(9, mode), mode);
  crypto::Signer client(crypto::derive_keypair(1000, mode), mode);

  core::CommitmentParams params;
  core::CommitmentLog real_log(9, params);
  core::CommitmentLog fork_log(9, params);

  std::vector<core::TxId> ids;
  for (std::uint64_t n = 1; n <= 4; ++n) {
    ids.push_back(core::make_transaction(client, n, 50, 0).id);
  }
  real_log.append(ids, 2);  // the real history commits all four txs
  std::vector<core::TxId> censored(ids.begin(), ids.end() - 1);
  fork_log.append(censored, 2);  // the fork silently drops the victim's tx

  const auto h_real = real_log.make_header(miner9);
  const auto h_fork = fork_log.make_header(miner9);
  std::printf("  real  commitment: seqno=%llu count=%llu\n",
              static_cast<unsigned long long>(h_real.seqno),
              static_cast<unsigned long long>(h_real.count));
  std::printf("  fork  commitment: seqno=%llu count=%llu (censored 1 tx)\n",
              static_cast<unsigned long long>(h_fork.seqno),
              static_cast<unsigned long long>(h_fork.count));

  // Stage 1: Bloom Clock comparison flags the discrepancy cheaply.
  const auto clock_verdict = core::check_consistency_clocks(h_real, h_fork);
  std::printf("  bloom-clock stage : %s\n",
              clock_verdict == core::Consistency::kConsistent
                  ? "consistent (would skip decode)"
                  : "flagged -> escalate to sketch decode");

  // Stage 2: the Minisketch reconciliation classifies it as equivocation.
  const auto verdict = core::check_consistency(h_real, h_fork);
  std::printf("  sketch stage      : %s\n",
              verdict == core::Consistency::kEquivocation
                  ? "EQUIVOCATION — the pair is evidence"
                  : "consistent/inconclusive");

  core::EquivocationEvidence evidence;
  evidence.accused = 9;
  evidence.first = h_real;
  evidence.second = h_fork;
  std::printf("  offline verifier  : evidence.verify() = %s (Ed25519-signed, "
              "self-contained)\n",
              evidence.verify(mode) ? "true" : "false");

  // Enforcement (Sec. 5.4): the same evidence drives a PoS slashing ledger.
  enforcement::SlashingPolicy policy;
  policy.sig_mode = mode;
  enforcement::StakeLedger ledger(policy);
  ledger.bond(9, 32'000'000);  // 32M units bonded, Ethereum-style
  const auto slash = ledger.apply_equivocation(evidence);
  std::printf("  PoS enforcement   : slashed %llu of 32000000 bonded units "
              "(%s)\n",
              static_cast<unsigned long long>(slash.amount),
              slash.ejected ? "validator ejected" : "validator retained");
  // Replays burn nothing — evidence application is idempotent.
  std::printf("  replay protection : second application burns %llu units\n\n",
              static_cast<unsigned long long>(
                  ledger.apply_equivocation(evidence).amount));

  // Live part: the same thing happening inside a running network.
  std::printf("[live] 24-miner network, one equivocating censor:\n");
  harness::NetworkConfig cfg;
  cfg.num_nodes = 24;
  cfg.seed = 11;
  cfg.node.sig_mode = crypto::SignatureMode::kSimFast;
  cfg.node.prevalidation.sig_mode = crypto::SignatureMode::kSimFast;
  cfg.malicious_fraction = 0.05;
  cfg.malicious.equivocate = true;
  harness::LoNetwork net(cfg);

  workload::WorkloadConfig load;
  load.tps = 10.0;
  load.seed = 31;
  load.sig_mode = crypto::SignatureMode::kSimFast;
  net.start_workload(load, 1);
  net.run_for(30.0);

  const auto times = net.detection_times();
  std::size_t bad = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) bad = i;
  }
  std::printf("  attacker          : miner %zu\n", bad);
  if (times.first_exposure_s >= 0) {
    std::printf("  first exposure    : %.2f s into the run\n",
                times.first_exposure_s);
  }
  if (times.exposure_complete_s >= 0) {
    std::printf("  full convergence  : every correct miner holds the proof "
                "by %.2f s\n",
                times.exposure_complete_s);
  } else {
    std::printf("  full convergence  : not reached in this horizon\n");
  }
  std::printf("\naudit complete: one inconsistent pair of signed commitments "
              "is all it takes.\n");
  return 0;
}
