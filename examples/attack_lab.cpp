// Attack lab: sweeps every transaction-manipulation primitive of Sec. 2.2
// against LØ and prints one detection matrix — which attacks end in
// transferable exposure, which in suspicion, and how fast.
//
//   $ ./build/examples/attack_lab
#include <cstdio>

#include "harness/lo_network.hpp"

namespace {

using namespace lo;

struct Outcome {
  std::size_t exposed = 0;
  std::size_t suspected = 0;
  std::size_t correct = 0;
  double first_blame_s = -1;
};

Outcome run(const core::MaliciousBehavior& attack, bool attacker_builds_block,
            std::uint64_t seed) {
  harness::NetworkConfig cfg;
  cfg.num_nodes = 24;
  cfg.seed = seed;
  cfg.node.sig_mode = crypto::SignatureMode::kSimFast;
  cfg.node.prevalidation.sig_mode = crypto::SignatureMode::kSimFast;
  cfg.malicious_fraction = 0.05;
  cfg.malicious = attack;
  harness::LoNetwork net(cfg);

  workload::WorkloadConfig load;
  load.tps = 10.0;
  load.seed = seed * 3;
  load.sig_mode = crypto::SignatureMode::kSimFast;
  net.start_workload(load, 1);
  net.run_for(12.0);

  std::size_t attacker = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) attacker = i;
  }
  if (attacker_builds_block) {
    net.node(attacker).create_block(1, crypto::Digest256{});
  }
  net.run_for(25.0);

  Outcome out;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.malicious_mask()[i]) continue;
    ++out.correct;
    const auto& reg = net.node(i).registry();
    if (reg.is_exposed(static_cast<core::NodeId>(attacker))) ++out.exposed;
    if (reg.is_suspected(static_cast<core::NodeId>(attacker))) ++out.suspected;
  }
  for (const auto& ev : net.suspicion_events()) {
    if (ev.accused == attacker &&
        (out.first_blame_s < 0 || ev.when_s < out.first_blame_s)) {
      out.first_blame_s = ev.when_s;
    }
  }
  for (const auto& ev : net.exposure_events()) {
    if (ev.accused == attacker &&
        (out.first_blame_s < 0 || ev.when_s < out.first_blame_s)) {
      out.first_blame_s = ev.when_s;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== LO attack lab: Sec. 2.2 manipulation primitives vs "
              "detection ==\n\n");
  std::printf("%-28s %-14s %-14s %-14s\n", "attack", "exposed-at",
              "suspected-at", "first-blame[s]");

  struct Case {
    const char* name;
    core::MaliciousBehavior b;
    bool builds_block;
  };
  std::vector<Case> cases;
  {
    Case c{"mempool censorship", {}, false};
    c.b.censor_txs = true;
    cases.push_back(c);
  }
  {
    Case c{"silent (crash-like)", {}, false};
    c.b.ignore_requests = true;
    c.b.censor_txs = true;
    cases.push_back(c);
  }
  {
    Case c{"equivocation (fork)", {}, false};
    c.b.equivocate = true;
    cases.push_back(c);
  }
  {
    Case c{"block re-ordering", {}, true};
    c.b.reorder_block = true;
    cases.push_back(c);
  }
  {
    Case c{"injection (front-run)", {}, true};
    c.b.inject_uncommitted = true;
    cases.push_back(c);
  }
  {
    Case c{"blockspace censorship", {}, true};
    c.b.censor_blockspace = true;
    cases.push_back(c);
  }
  {
    Case c{"honest control", {}, true};
    cases.push_back(c);
  }

  std::uint64_t seed = 1000;
  for (const auto& c : cases) {
    const auto out = run(c.b, c.builds_block, ++seed);
    char first[32];
    if (out.first_blame_s >= 0) {
      std::snprintf(first, sizeof first, "%.2f", out.first_blame_s);
    } else {
      std::snprintf(first, sizeof first, "-");
    }
    std::printf("%-28s %2zu/%-10zu %2zu/%-10zu %-14s\n", c.name, out.exposed,
                out.correct, out.suspected, out.correct, first);
  }
  std::printf(
      "\nreading the matrix: equivocation and block manipulations end in\n"
      "EXPOSURE (transferable evidence at every correct miner); censorship\n"
      "and silence end in network-wide SUSPICION; the honest control draws\n"
      "no blame at all (accuracy).\n");
  return 0;
}
