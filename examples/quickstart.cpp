// Quickstart: stand up a small LØ network, submit transactions, watch them
// propagate through accountable mempool reconciliation, and build a block in
// the verifiable canonical order.
//
//   $ ./build/examples/quickstart [trace.lotrace [metrics.json]]
//
// This walks the whole happy path of the paper: Stage I (client submission),
// Stage II (mempool reconciliation with pairwise commitments), Stage III
// (canonical block building) and block inspection.
//
// With a trace path, the deterministic event tracer records every message,
// commitment and tx-lifecycle event; convert the capture for the Perfetto UI
// (https://ui.perfetto.dev) with `./build/tools/lotrace trace.lotrace`.
#include <cstdio>

#include "harness/lo_network.hpp"

int main(int argc, char** argv) {
  using namespace lo;
  const char* trace_path = argc > 1 ? argv[1] : nullptr;
  const char* metrics_path = argc > 2 ? argv[2] : nullptr;

  // 1. A 16-node network with the paper's defaults: 8 outgoing connections,
  //    reconciliation with 3 random neighbors every second, 1 s request
  //    timeout with 3 retries, geographic latencies over 32 cities.
  harness::NetworkConfig cfg;
  cfg.num_nodes = 16;
  cfg.seed = 2023;
  cfg.trace = trace_path != nullptr;
  std::printf("== LO quickstart: %zu miners, city latency model ==\n\n",
              cfg.num_nodes);
  harness::LoNetwork net(cfg);

  // 2. Stage I — a client creates and signs transactions and hands them to
  //    a miner it knows.
  crypto::Signer client(
      crypto::derive_keypair(42, crypto::SignatureMode::kEd25519),
      crypto::SignatureMode::kEd25519);
  std::vector<core::TxId> submitted;
  for (std::uint64_t nonce = 1; nonce <= 5; ++nonce) {
    auto tx = core::make_transaction(client, nonce, 100 * nonce,
                                     net.sim().now());
    submitted.push_back(tx.id);
    net.node(nonce % cfg.num_nodes).submit_transaction(tx);
    std::printf("client submitted tx nonce=%llu fee=%llu to miner %llu\n",
                static_cast<unsigned long long>(nonce),
                static_cast<unsigned long long>(100 * nonce),
                static_cast<unsigned long long>(nonce % cfg.num_nodes));
  }

  // 3. Stage II — run the simulation; reconciliation rounds spread the
  //    transactions and the signed commitments that make miners accountable.
  net.run_for(10.0);
  std::printf("\nafter 10 simulated seconds:\n");
  for (std::size_t i = 0; i < 4; ++i) {
    std::printf(
        "  miner %zu: mempool=%zu committed=%llu commitment-seqno=%llu\n", i,
        net.node(i).mempool_size(),
        static_cast<unsigned long long>(net.node(i).log().count()),
        static_cast<unsigned long long>(net.node(i).log().seqno()));
  }
  std::size_t holders = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.node(i).has_tx(submitted[0])) ++holders;
  }
  std::printf("  tx #1 reached %zu/%zu miners; mean mempool latency %.2f s\n",
              holders, net.size(), net.mempool_latency().mean());

  // 4. Stage III — miner 3 is elected leader and builds a block. The order
  //    is canonical: committed bundles in commitment order, shuffled inside
  //    each bundle by the previous block hash.
  const auto block = net.node(3).create_block(1, crypto::Digest256{});
  std::printf("\nminer 3 built block: height=%llu txs=%zu segments=%zu\n",
              static_cast<unsigned long long>(block.height), block.tx_count(),
              block.segments.size());

  // 5. Everyone inspects the block (Sec. 4.3 step 5). An honest block draws
  //    no blame.
  net.run_for(10.0);
  std::size_t blamed = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (net.node(i).registry().is_exposed(3) ||
        net.node(i).registry().is_suspected(3)) {
      ++blamed;
    }
  }
  std::printf("after inspection: %zu/%zu miners blame the creator (expect 0)\n",
              blamed, net.size());

  // 6. Observability artifacts: the binary event trace (lotrace converts it
  //    to Perfetto JSON) and a registry snapshot of every metric in the run.
  if (trace_path != nullptr) {
    auto& tracer = net.sim().obs().tracer;
    if (!tracer.write_file(trace_path)) return 1;
    std::printf("\nwrote %zu trace events to %s (dropped=%llu)\n",
                tracer.size(), trace_path,
                static_cast<unsigned long long>(tracer.dropped()));
  }
  if (metrics_path != nullptr) {
    net.publish_metrics();
    if (!net.sim().obs().registry.write_json(metrics_path, "quickstart")) {
      return 1;
    }
    std::printf("wrote %zu metrics to %s\n", net.sim().obs().registry.size(),
                metrics_path);
  }
  std::printf("\nquickstart complete.\n");
  return 0;
}
