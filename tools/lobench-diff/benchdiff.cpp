#include "benchdiff.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>

namespace lo::benchdiff {

namespace {

// Scanning helpers over the raw document text. The grammar we rely on:
// somewhere in the file there is `"benchmarks"` followed by `[`, containing
// `{...}` objects whose scalar string/number fields we pick out by key.
// Nested arrays/objects inside an entry (google-benchmark has none today)
// are skipped bracket-counted.

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

// Parses the JSON string starting at the opening quote; returns the value
// and advances i past the closing quote. Escapes are passed through
// undecoded except \" and \\ (benchmark names never need more).
std::string parse_string(const std::string& s, std::size_t& i) {
  std::string out;
  ++i;  // opening quote
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out.push_back(s[i + 1]);
      i += 2;
    } else {
      out.push_back(s[i]);
      ++i;
    }
  }
  if (i >= s.size()) throw std::runtime_error("unterminated string");
  ++i;  // closing quote
  return out;
}

double parse_number(const std::string& s, std::size_t& i) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str() + i, &end);
  if (end == s.c_str() + i) throw std::runtime_error("bad number");
  i = static_cast<std::size_t>(end - s.c_str());
  return v;
}

void skip_value(const std::string& s, std::size_t& i);

void skip_container(const std::string& s, std::size_t& i, char open,
                    char close) {
  int depth = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      parse_string(s, i);
      continue;
    }
    if (c == open) ++depth;
    if (c == close && --depth == 0) {
      ++i;
      return;
    }
    ++i;
  }
  throw std::runtime_error("unterminated container");
}

void skip_value(const std::string& s, std::size_t& i) {
  i = skip_ws(s, i);
  if (i >= s.size()) throw std::runtime_error("missing value");
  const char c = s[i];
  if (c == '"') {
    parse_string(s, i);
  } else if (c == '{') {
    skip_container(s, i, '{', '}');
  } else if (c == '[') {
    skip_container(s, i, '[', ']');
  } else {
    // number / true / false / null — run to the next delimiter
    while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']') ++i;
  }
}

BenchEntry parse_entry(const std::string& s, std::size_t& i) {
  BenchEntry e;
  i = skip_ws(s, i);
  if (i >= s.size() || s[i] != '{') throw std::runtime_error("expected '{'");
  ++i;
  while (true) {
    i = skip_ws(s, i);
    if (i >= s.size()) throw std::runtime_error("unterminated entry");
    if (s[i] == '}') {
      ++i;
      return e;
    }
    if (s[i] == ',') {
      ++i;
      continue;
    }
    if (s[i] != '"') throw std::runtime_error("expected key");
    const std::string key = parse_string(s, i);
    i = skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') throw std::runtime_error("expected ':'");
    ++i;
    i = skip_ws(s, i);
    if (key == "name" && i < s.size() && s[i] == '"') {
      e.name = parse_string(s, i);
    } else if (key == "items_per_second") {
      e.items_per_second = parse_number(s, i);
    } else if (key == "real_time") {
      e.real_time = parse_number(s, i);
    } else {
      skip_value(s, i);
    }
  }
}

}  // namespace

std::vector<BenchEntry> parse_bench_json(const std::string& text) {
  const std::size_t key = text.find("\"benchmarks\"");
  if (key == std::string::npos) {
    throw std::runtime_error("no \"benchmarks\" array in document");
  }
  std::size_t i = text.find('[', key);
  if (i == std::string::npos) {
    throw std::runtime_error("\"benchmarks\" has no array value");
  }
  ++i;
  std::vector<BenchEntry> out;
  while (true) {
    i = skip_ws(text, i);
    if (i >= text.size()) throw std::runtime_error("unterminated benchmarks");
    if (text[i] == ']') break;
    if (text[i] == ',') {
      ++i;
      continue;
    }
    BenchEntry e = parse_entry(text, i);
    if (!e.name.empty()) out.push_back(std::move(e));
  }
  return out;
}

DiffResult diff(const std::vector<BenchEntry>& baseline,
                const std::vector<BenchEntry>& fresh, const Tolerance& tol) {
  // Better-is-higher metric: items_per_second when present, else inverted
  // real_time (so ratio > 1 always means "got faster").
  auto metric = [](const BenchEntry& e) {
    if (e.items_per_second > 0.0) return e.items_per_second;
    if (e.real_time > 0.0) return 1.0 / e.real_time;
    return 0.0;
  };
  std::map<std::string, const BenchEntry*> fresh_by;
  for (const auto& e : fresh) fresh_by[e.name] = &e;

  DiffResult r;
  for (const auto& base : baseline) {
    DiffLine line;
    line.name = base.name;
    line.baseline = metric(base);
    auto it = fresh_by.find(base.name);
    if (it == fresh_by.end()) {
      line.status = DiffLine::Status::kMissing;
      ++r.failures;
    } else {
      line.fresh = metric(*it->second);
      line.ratio = line.baseline > 0.0 ? line.fresh / line.baseline : 0.0;
      if (line.ratio < tol.min_ratio || line.ratio > tol.max_ratio) {
        line.status = DiffLine::Status::kOutOfBand;
        ++r.failures;
      }
      fresh_by.erase(it);
    }
    r.lines.push_back(std::move(line));
  }
  for (const auto& [name, e] : fresh_by) {
    DiffLine line;
    line.name = name;
    line.fresh = metric(*e);
    line.status = DiffLine::Status::kNew;
    r.lines.push_back(std::move(line));
  }
  return r;
}

std::string render(const DiffResult& r) {
  std::string out;
  char buf[256];
  for (const auto& line : r.lines) {
    const char* tag = "ok       ";
    switch (line.status) {
      case DiffLine::Status::kOk: break;
      case DiffLine::Status::kMissing: tag = "MISSING  "; break;
      case DiffLine::Status::kNew: tag = "new      "; break;
      case DiffLine::Status::kOutOfBand: tag = "DRIFT    "; break;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s %-40s base=%-12.4g fresh=%-12.4g ratio=%.3f\n", tag,
                  line.name.c_str(), line.baseline, line.fresh, line.ratio);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%zu benchmark(s), %zu failure(s)\n",
                r.lines.size(), r.failures);
  out += buf;
  return out;
}

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return std::nullopt;
  return out;
}

}  // namespace lo::benchdiff
