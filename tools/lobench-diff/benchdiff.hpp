// lobench-diff — regression gate comparing freshly produced BENCH_*.json
// files against committed baselines (bench/baselines/) with tolerance bands.
//
// Both the bench_common JsonReport shape and full google-benchmark output
// carry a "benchmarks" array whose entries have "name" and (for throughput
// benches) "items_per_second"; entries without items_per_second fall back to
// "real_time" (lower is better, so the ratio inverts). The parser is a
// tolerant scanner over exactly that subset — not a general JSON parser —
// so context blocks of any shape pass through unharmed.
//
// A comparison FAILS when a benchmark present in the baseline is missing
// from the fresh file, or when fresh/baseline drifts outside
// [min_ratio, max_ratio]. New benchmarks (fresh-only) are reported but pass:
// growing the suite must not need a baseline edit in the same PR.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lo::benchdiff {

struct BenchEntry {
  std::string name;
  double items_per_second = 0.0;  // 0 when absent
  double real_time = 0.0;         // 0 when absent
};

// Extracts entries from a BENCH_*.json document. Throws std::runtime_error
// on input that does not contain a recognizable "benchmarks" array.
std::vector<BenchEntry> parse_bench_json(const std::string& text);

struct Tolerance {
  // Acceptable fresh/baseline ratio band on the better-is-higher metric.
  // Generous by default: CI machines are noisy; the gate is for order-of-
  // magnitude regressions, not single-digit jitter.
  double min_ratio = 0.5;
  double max_ratio = 2.0;
};

struct DiffLine {
  std::string name;
  double baseline = 0.0;
  double fresh = 0.0;
  double ratio = 0.0;  // fresh/baseline on the better-is-higher metric
  enum class Status { kOk, kMissing, kNew, kOutOfBand } status = Status::kOk;
};

struct DiffResult {
  std::vector<DiffLine> lines;
  std::size_t failures = 0;  // kMissing + kOutOfBand
  bool ok() const noexcept { return failures == 0; }
};

DiffResult diff(const std::vector<BenchEntry>& baseline,
                const std::vector<BenchEntry>& fresh, const Tolerance& tol);

std::string render(const DiffResult& r);

// Reads a whole file; nullopt when unreadable.
std::optional<std::string> read_file(const std::string& path);

}  // namespace lo::benchdiff
