// lobench-diff CLI — compare fresh BENCH_*.json files against committed
// baselines with tolerance bands.
//
//   lobench-diff [--min-ratio R] [--max-ratio R] <baseline-dir> <fresh-dir>
//   lobench-diff [--min-ratio R] [--max-ratio R] --pair <baseline.json> <fresh.json>
//
// Directory mode compares every BENCH_*.json present in <baseline-dir>
// against the file of the same name in <fresh-dir>; a baseline file with no
// fresh counterpart fails. Exit codes: 0 all within band, 1 regression or
// missing data, 2 usage error.
#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "benchdiff.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: lobench-diff [--min-ratio R] [--max-ratio R] "
               "<baseline-dir> <fresh-dir>\n"
               "       lobench-diff [--min-ratio R] [--max-ratio R] "
               "--pair <baseline.json> <fresh.json>\n");
  return 2;
}

std::vector<std::string> bench_files(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      out.push_back(name);
    }
  }
  closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

// Returns failures for one (baseline, fresh) file pair.
std::size_t diff_pair(const std::string& base_path, const std::string& fresh_path,
                      const lo::benchdiff::Tolerance& tol) {
  using namespace lo::benchdiff;
  const auto base_text = read_file(base_path);
  if (!base_text) {
    std::fprintf(stderr, "lobench-diff: cannot read baseline %s\n",
                 base_path.c_str());
    return 1;
  }
  const auto fresh_text = read_file(fresh_path);
  if (!fresh_text) {
    std::fprintf(stderr, "lobench-diff: cannot read fresh file %s\n",
                 fresh_path.c_str());
    return 1;
  }
  try {
    const auto result =
        diff(parse_bench_json(*base_text), parse_bench_json(*fresh_text), tol);
    std::printf("== %s vs %s ==\n%s\n", base_path.c_str(), fresh_path.c_str(),
                render(result).c_str());
    return result.failures;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lobench-diff: %s vs %s: %s\n", base_path.c_str(),
                 fresh_path.c_str(), e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  lo::benchdiff::Tolerance tol;
  bool pair_mode = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pair") == 0) {
      pair_mode = true;
    } else if (std::strcmp(argv[i], "--min-ratio") == 0 && i + 1 < argc) {
      tol.min_ratio = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-ratio") == 0 && i + 1 < argc) {
      tol.max_ratio = std::atof(argv[++i]);
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (positional.size() != 2 || tol.min_ratio <= 0.0 ||
      tol.max_ratio < tol.min_ratio) {
    return usage();
  }

  std::size_t failures = 0;
  if (pair_mode) {
    failures = diff_pair(positional[0], positional[1], tol);
  } else {
    const auto files = bench_files(positional[0]);
    if (files.empty()) {
      std::fprintf(stderr, "lobench-diff: no BENCH_*.json under %s\n",
                   positional[0].c_str());
      return 1;
    }
    for (const auto& name : files) {
      failures +=
          diff_pair(positional[0] + "/" + name, positional[1] + "/" + name, tol);
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "lobench-diff: %zu failure(s)\n", failures);
    return 1;
  }
  return 0;
}
