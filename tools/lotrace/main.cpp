// lotrace — converts a binary ".lotrace" capture (obs::Tracer::write_file)
// into Chrome/Perfetto trace-event JSON, offline. Keeping the converter out
// of the simulation binaries means runs only pay for the compact binary dump;
// JSON (an order of magnitude larger) is produced on demand.
//
// Usage:
//   lotrace <in.lotrace> [out.json]       convert (default out: <in>.json)
//   lotrace --summary <in.lotrace>        print event counts per kind
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "obs/trace.hpp"
#include "util/serde.hpp"

namespace {

int summarize(const std::string& path) {
  const auto f = lo::obs::Tracer::read_file(path);
  std::map<std::string, std::uint64_t> per_kind;
  for (const auto& e : f.events) {
    ++per_kind[lo::obs::event_kind_name(
        static_cast<lo::obs::EventKind>(e.kind))];
  }
  std::printf("%s: %zu events, %llu dropped, %zu interned names\n",
              path.c_str(), f.events.size(),
              static_cast<unsigned long long>(f.dropped), f.names.size());
  for (const auto& [kind, n] : per_kind) {
    std::printf("  %-16s %llu\n", kind.c_str(),
                static_cast<unsigned long long>(n));
  }
  if (!f.events.empty()) {
    std::printf("  span: %lld .. %lld us\n",
                static_cast<long long>(f.events.front().at),
                static_cast<long long>(f.events.back().at));
  }
  return 0;
}

int convert(const std::string& in, const std::string& out) {
  const auto f = lo::obs::Tracer::read_file(in);
  const std::string json = lo::obs::chrome_json(f);
  std::FILE* fp = std::fopen(out.c_str(), "wb");
  if (fp == nullptr) {
    std::fprintf(stderr, "lotrace: cannot open %s for writing\n", out.c_str());
    return 1;
  }
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), fp);
  const bool ok = (n == json.size()) && (std::fclose(fp) == 0);
  if (!ok) {
    std::fprintf(stderr, "lotrace: short write to %s\n", out.c_str());
    return 1;
  }
  std::printf("lotrace: %s -> %s (%zu events)\n", in.c_str(), out.c_str(),
              f.events.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--summary") == 0) {
    try {
      return summarize(argv[2]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "lotrace: %s\n", e.what());
      return 1;
    }
  }
  if (argc < 2 || argv[1][0] == '-') {
    std::fprintf(stderr,
                 "usage: lotrace <in.lotrace> [out.json]\n"
                 "       lotrace --summary <in.lotrace>\n");
    return 2;
  }
  const std::string in = argv[1];
  const std::string out = argc >= 3 ? argv[2] : in + ".json";
  try {
    return convert(in, out);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lotrace: %s\n", e.what());
    return 1;
  }
}
