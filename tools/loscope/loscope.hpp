// loscope — causal transaction forensics over LOTR traces (DESIGN.md §5).
//
// Where lotrace converts a trace for visual inspection, loscope *answers
// questions*: it indexes the causal span layer (TraceEvent.span/parent) and
// the per-transaction lifecycle events into a queryable model, then derives
//
//   lineage     the full cross-node story of one transaction — submit,
//               gossip hops, commitment, reconcile/sync recovery, block
//               inclusion and (for censored txs) inspection -> suspicion ->
//               exposure — with per-hop latencies and the causal critical
//               path walked over span parents;
//   censorship  dwell-time report: submit -> first commit per tx, plus the
//               txs that never committed and the kTxCensored proofs;
//   detection   decomposition of accountability latency per accused node:
//               first censorship proof -> first suspicion -> first exposure;
//   shards      per-shard rollups of shard-scoped events;
//   summary     whole-trace totals and causal-layer coverage.
//
// The library is exercised directly by tests/test_loscope.cpp; the CLI in
// main.cpp is a thin argv wrapper.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace lo::loscope {

// Indexed view over a parsed trace. Indices refer into file.events.
struct TraceModel {
  obs::Tracer::File file;

  // Causal index: span id -> events emitted during that dispatch, in stream
  // order. Built from nonzero spans only.
  std::map<std::uint64_t, std::vector<std::size_t>> by_span;

  // Transaction index: short tx id -> lifecycle events (kTxSubmit..kTxCensored
  // carry the short id in `a`), in stream order.
  std::map<std::uint64_t, std::vector<std::size_t>> by_tx;

  std::int64_t end_at = 0;  // timestamp of the last event (trace horizon)

  static TraceModel build(obs::Tracer::File f);

  const obs::TraceEvent& ev(std::size_t i) const { return file.events[i]; }
};

// One step of a transaction's cross-node story.
struct LineageStep {
  std::size_t event_index = 0;
  std::int64_t at = 0;
  std::int64_t hop_latency_us = 0;  // delta from the previous step (0 first)
  obs::EventKind kind = obs::EventKind::kNone;
  std::uint32_t node = 0;
  std::uint32_t peer = 0;
  std::uint32_t shard = 0;
  std::uint64_t b = 0;
};

// One dispatch on the causal critical path (newest -> oldest walk order).
struct CausalHop {
  std::uint64_t span = 0;
  std::int64_t at = 0;          // timestamp of the span's first event
  std::uint32_t node = 0;       // node of the span's first event
  obs::EventKind kind = obs::EventKind::kNone;  // representative event kind
};

struct Lineage {
  std::uint64_t txid = 0;
  std::vector<LineageStep> steps;        // chronological lifecycle timeline
  std::vector<CausalHop> critical_path;  // terminal event -> root, via parents
  bool committed = false;
  bool finalized = false;
  bool censored = false;
  std::int64_t submit_at = 0;
  std::int64_t first_commit_at = -1;   // -1 = never
  std::int64_t finalize_at = -1;
  std::int64_t censored_at = -1;
};

// Per-tx censorship dwell entry. "Settled" is first block inclusion when the
// trace contains block production (kBlockBuild), first commit otherwise —
// matching the harness AnomalyMonitor's settle definition.
struct DwellEntry {
  std::uint64_t txid = 0;
  std::int64_t submit_at = 0;
  std::int64_t first_commit_at = -1;    // -1 = never committed in-trace
  std::int64_t first_finalize_at = -1;  // -1 = never included in a block
  double dwell_s = 0.0;  // submit -> settled, or -> trace end if never
  bool settled = false;
  bool censor_proof = false;  // a kTxCensored event names this tx
};

struct CensorshipReport {
  bool uses_blocks = false;  // settle = finalize (true) or commit (false)
  std::vector<DwellEntry> entries;  // ascending txid
  std::size_t never_settled = 0;
  std::size_t proven_censored = 0;
  double max_dwell_s = 0.0;
};

// Accountability latency decomposition for one accused node.
struct DetectionEntry {
  std::uint32_t accused = 0;
  std::int64_t first_proof_at = -1;      // first kTxCensored naming it
  std::int64_t first_suspicion_at = -1;  // first kSuspect naming it
  std::int64_t first_exposure_at = -1;   // first kExpose naming it
  std::size_t suspicion_count = 0;
  std::size_t exposure_count = 0;
};

struct ShardRollup {
  std::uint32_t shard = 0;
  std::uint64_t commits = 0;       // kCommitCreate
  std::uint64_t tx_commits = 0;    // kTxCommit
  std::uint64_t reconciles = 0;    // kReconcileRound
  std::uint64_t blocks = 0;        // kBlockBuild
  std::uint64_t inspections = 0;   // kBlockInspect
  std::uint64_t suspicions = 0;    // kSuspect
  std::uint64_t censor_proofs = 0; // kTxCensored
};

struct Summary {
  std::size_t events = 0;
  std::uint64_t dropped = 0;
  double duration_s = 0.0;
  std::size_t with_cause = 0;   // events with span != 0
  std::size_t distinct_spans = 0;
  std::size_t txs_submitted = 0;
  std::size_t txs_committed = 0;
  std::size_t txs_finalized = 0;
  std::size_t txs_censor_proven = 0;
  std::size_t anomalies = 0;
  std::map<std::string, std::size_t> by_kind;
};

// --- queries ---
Summary summarize(const TraceModel& m);
// nullopt when the trace holds no lifecycle event for `txid`.
std::optional<Lineage> lineage(const TraceModel& m, std::uint64_t txid);
CensorshipReport censorship(const TraceModel& m);
std::vector<DetectionEntry> detection(const TraceModel& m);
std::vector<ShardRollup> shards(const TraceModel& m);

// --- rendering (text / JSON / CSV as applicable) ---
enum class Format { kText, kJson, kCsv };

std::string render_summary(const Summary& s, Format f);
std::string render_lineage(const TraceModel& m, const Lineage& l, Format f);
std::string render_censorship(const CensorshipReport& r, Format f);
std::string render_detection(const std::vector<DetectionEntry>& d, Format f);
std::string render_shards(const std::vector<ShardRollup>& s, Format f);

// Accepts decimal or hex (with or without 0x). nullopt on parse failure.
std::optional<std::uint64_t> parse_txid(const std::string& s);

}  // namespace lo::loscope
