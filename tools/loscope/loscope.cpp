#include "loscope.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <set>

namespace lo::loscope {

namespace {

using obs::EventKind;

bool is_tx_lifecycle(EventKind k) noexcept {
  switch (k) {
    case EventKind::kTxSubmit:
    case EventKind::kTxAdmit:
    case EventKind::kTxFinalize:
    case EventKind::kTxCommit:
    case EventKind::kTxCensored:
      return true;
    default:
      return false;
  }
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

double to_s(std::int64_t us) { return static_cast<double>(us) / 1e6; }

}  // namespace

TraceModel TraceModel::build(obs::Tracer::File f) {
  TraceModel m;
  m.file = std::move(f);
  for (std::size_t i = 0; i < m.file.events.size(); ++i) {
    const auto& ev = m.file.events[i];
    if (ev.span != 0) m.by_span[ev.span].push_back(i);
    if (is_tx_lifecycle(static_cast<EventKind>(ev.kind))) {
      m.by_tx[ev.a].push_back(i);
    }
    m.end_at = std::max(m.end_at, ev.at);
  }
  return m;
}

std::optional<std::uint64_t> parse_txid(const std::string& s) {
  if (s.empty()) return std::nullopt;
  const bool hex_prefix = s.size() > 2 && s[0] == '0' &&
                          (s[1] == 'x' || s[1] == 'X');
  bool has_hex_digit = false;
  for (char c : s) {
    if (std::isxdigit(static_cast<unsigned char>(c)) == 0 &&
        !(hex_prefix && (c == 'x' || c == 'X'))) {
      return std::nullopt;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) has_hex_digit = true;
  }
  errno = 0;
  char* end = nullptr;
  // Bare hex like "be5a91..." parses base-16; plain digits parse base-10;
  // an explicit 0x prefix always wins.
  const int base = hex_prefix ? 16 : (has_hex_digit ? 16 : 10);
  const unsigned long long v = std::strtoull(s.c_str(), &end, base);
  if (errno != 0 || end == nullptr || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

// ------------------------------------------------------------------ summary --

Summary summarize(const TraceModel& m) {
  Summary s;
  s.events = m.file.events.size();
  s.dropped = m.file.dropped;
  s.duration_s = to_s(m.end_at);
  std::set<std::uint64_t> spans;
  std::set<std::uint64_t> committed;
  std::set<std::uint64_t> finalized;
  std::set<std::uint64_t> submitted;
  std::set<std::uint64_t> censored;
  for (const auto& ev : m.file.events) {
    ++s.by_kind[obs::event_kind_name(static_cast<EventKind>(ev.kind))];
    if (ev.span != 0) {
      ++s.with_cause;
      spans.insert(ev.span);
    }
    switch (static_cast<EventKind>(ev.kind)) {
      case EventKind::kTxSubmit: submitted.insert(ev.a); break;
      case EventKind::kTxCommit: committed.insert(ev.a); break;
      case EventKind::kTxFinalize: finalized.insert(ev.a); break;
      case EventKind::kTxCensored: censored.insert(ev.a); break;
      case EventKind::kAnomaly: ++s.anomalies; break;
      default: break;
    }
  }
  s.distinct_spans = spans.size();
  s.txs_submitted = submitted.size();
  s.txs_committed = committed.size();
  s.txs_finalized = finalized.size();
  s.txs_censor_proven = censored.size();
  return s;
}

// ------------------------------------------------------------------ lineage --

std::optional<Lineage> lineage(const TraceModel& m, std::uint64_t txid) {
  auto it = m.by_tx.find(txid);
  if (it == m.by_tx.end() || it->second.empty()) return std::nullopt;

  Lineage l;
  l.txid = txid;
  std::int64_t prev_at = -1;
  for (std::size_t idx : it->second) {
    const auto& ev = m.ev(idx);
    LineageStep step;
    step.event_index = idx;
    step.at = ev.at;
    step.hop_latency_us = prev_at < 0 ? 0 : ev.at - prev_at;
    prev_at = ev.at;
    step.kind = static_cast<EventKind>(ev.kind);
    step.node = ev.node;
    step.peer = ev.peer;
    step.shard = ev.aux;
    step.b = ev.b;
    l.steps.push_back(step);
    switch (step.kind) {
      case EventKind::kTxSubmit:
        l.submit_at = ev.at;
        break;
      case EventKind::kTxCommit:
        l.committed = true;
        if (l.first_commit_at < 0) l.first_commit_at = ev.at;
        break;
      case EventKind::kTxFinalize:
        l.finalized = true;
        if (l.finalize_at < 0) l.finalize_at = ev.at;
        break;
      case EventKind::kTxCensored:
        l.censored = true;
        if (l.censored_at < 0) l.censored_at = ev.at;
        break;
      default:
        break;
    }
  }

  // Causal critical path: from the terminal lifecycle event, walk parent
  // spans back to the root dispatch. Each hop is represented by the first
  // event the causing dispatch emitted (a send, a timer's own events, ...).
  const auto& terminal = m.ev(it->second.back());
  l.critical_path.push_back(CausalHop{
      terminal.span, terminal.at, terminal.node,
      static_cast<EventKind>(terminal.kind)});
  std::uint64_t parent = terminal.parent;
  std::set<std::uint64_t> seen;  // defensive: the DAG has no cycles by
                                 // construction, but a corrupt trace might
  while (parent != 0 && seen.insert(parent).second) {
    auto sit = m.by_span.find(parent);
    if (sit == m.by_span.end() || sit->second.empty()) break;
    const auto& rep = m.ev(sit->second.front());
    l.critical_path.push_back(CausalHop{
        parent, rep.at, rep.node, static_cast<EventKind>(rep.kind)});
    parent = rep.parent;
  }
  return l;
}

// --------------------------------------------------------------- censorship --

CensorshipReport censorship(const TraceModel& m) {
  CensorshipReport r;
  for (const auto& ev : m.file.events) {
    if (static_cast<EventKind>(ev.kind) == EventKind::kBlockBuild) {
      r.uses_blocks = true;
      break;
    }
  }
  for (const auto& [txid, indices] : m.by_tx) {
    DwellEntry e;
    e.txid = txid;
    bool submitted = false;
    for (std::size_t idx : indices) {
      const auto& ev = m.ev(idx);
      switch (static_cast<EventKind>(ev.kind)) {
        case EventKind::kTxSubmit:
          if (!submitted) e.submit_at = ev.at;
          submitted = true;
          break;
        case EventKind::kTxCommit:
          if (e.first_commit_at < 0) e.first_commit_at = ev.at;
          break;
        case EventKind::kTxFinalize:
          if (e.first_finalize_at < 0) e.first_finalize_at = ev.at;
          break;
        case EventKind::kTxCensored:
          e.censor_proof = true;
          break;
        default:
          break;
      }
    }
    if (!submitted) continue;  // trace fragment without the submission
    const std::int64_t settled_at =
        r.uses_blocks ? e.first_finalize_at : e.first_commit_at;
    e.settled = settled_at >= 0;
    e.dwell_s = to_s((e.settled ? settled_at : m.end_at) - e.submit_at);
    if (!e.settled) ++r.never_settled;
    if (e.censor_proof) ++r.proven_censored;
    r.max_dwell_s = std::max(r.max_dwell_s, e.dwell_s);
    r.entries.push_back(e);
  }
  return r;
}

// ---------------------------------------------------------------- detection --

std::vector<DetectionEntry> detection(const TraceModel& m) {
  std::map<std::uint32_t, DetectionEntry> by_accused;
  for (const auto& ev : m.file.events) {
    const auto kind = static_cast<EventKind>(ev.kind);
    if (kind != EventKind::kTxCensored && kind != EventKind::kSuspect &&
        kind != EventKind::kExpose) {
      continue;
    }
    auto& e = by_accused[ev.peer];
    e.accused = ev.peer;
    switch (kind) {
      case EventKind::kTxCensored:
        if (e.first_proof_at < 0) e.first_proof_at = ev.at;
        break;
      case EventKind::kSuspect:
        if (e.first_suspicion_at < 0) e.first_suspicion_at = ev.at;
        ++e.suspicion_count;
        break;
      case EventKind::kExpose:
        if (e.first_exposure_at < 0) e.first_exposure_at = ev.at;
        ++e.exposure_count;
        break;
      default:
        break;
    }
  }
  std::vector<DetectionEntry> out;
  out.reserve(by_accused.size());
  for (const auto& [id, e] : by_accused) out.push_back(e);
  return out;
}

// ------------------------------------------------------------------- shards --

std::vector<ShardRollup> shards(const TraceModel& m) {
  std::map<std::uint32_t, ShardRollup> by_shard;
  for (const auto& ev : m.file.events) {
    auto bump = [&](std::uint64_t ShardRollup::* field) {
      auto& r = by_shard[ev.aux];
      r.shard = ev.aux;
      ++(r.*field);
    };
    switch (static_cast<EventKind>(ev.kind)) {
      case EventKind::kCommitCreate: bump(&ShardRollup::commits); break;
      case EventKind::kTxCommit: bump(&ShardRollup::tx_commits); break;
      case EventKind::kReconcileRound: bump(&ShardRollup::reconciles); break;
      case EventKind::kBlockBuild: bump(&ShardRollup::blocks); break;
      case EventKind::kBlockInspect: bump(&ShardRollup::inspections); break;
      case EventKind::kSuspect: bump(&ShardRollup::suspicions); break;
      case EventKind::kTxCensored: bump(&ShardRollup::censor_proofs); break;
      default: break;
    }
  }
  std::vector<ShardRollup> out;
  out.reserve(by_shard.size());
  for (const auto& [s, r] : by_shard) out.push_back(r);
  return out;
}

// ---------------------------------------------------------------- rendering --

std::string render_summary(const Summary& s, Format f) {
  std::string out;
  if (f == Format::kJson) {
    appendf(out,
            "{\n  \"events\": %zu,\n  \"dropped\": %" PRIu64
            ",\n  \"duration_s\": %.6f,\n  \"with_cause\": %zu,\n"
            "  \"distinct_spans\": %zu,\n  \"txs_submitted\": %zu,\n"
            "  \"txs_committed\": %zu,\n  \"txs_finalized\": %zu,\n"
            "  \"txs_censor_proven\": %zu,\n  \"anomalies\": %zu,\n"
            "  \"by_kind\": {\n",
            s.events, s.dropped, s.duration_s, s.with_cause, s.distinct_spans,
            s.txs_submitted, s.txs_committed, s.txs_finalized,
            s.txs_censor_proven, s.anomalies);
    std::size_t i = 0;
    for (const auto& [kind, count] : s.by_kind) {
      appendf(out, "    \"%s\": %zu%s\n", kind.c_str(), count,
              ++i < s.by_kind.size() ? "," : "");
    }
    out += "  }\n}\n";
    return out;
  }
  if (f == Format::kCsv) {
    out = "kind,count\n";
    for (const auto& [kind, count] : s.by_kind) {
      appendf(out, "%s,%zu\n", kind.c_str(), count);
    }
    return out;
  }
  appendf(out, "events            %zu (dropped %" PRIu64 ")\n", s.events,
          s.dropped);
  appendf(out, "duration          %.3fs\n", s.duration_s);
  appendf(out, "causal coverage   %zu events across %zu spans\n", s.with_cause,
          s.distinct_spans);
  appendf(out, "txs               %zu submitted, %zu committed, %zu finalized\n",
          s.txs_submitted, s.txs_committed, s.txs_finalized);
  appendf(out, "censorship proofs %zu tx(s)\n", s.txs_censor_proven);
  appendf(out, "anomaly alerts    %zu\n", s.anomalies);
  for (const auto& [kind, count] : s.by_kind) {
    appendf(out, "  %-18s %zu\n", kind.c_str(), count);
  }
  return out;
}

std::string render_lineage(const TraceModel& m, const Lineage& l, Format f) {
  std::string out;
  if (f == Format::kJson) {
    appendf(out,
            "{\n  \"txid\": \"%016" PRIx64
            "\",\n  \"committed\": %s,\n  \"finalized\": %s,\n"
            "  \"censored\": %s,\n  \"steps\": [\n",
            l.txid, l.committed ? "true" : "false",
            l.finalized ? "true" : "false", l.censored ? "true" : "false");
    for (std::size_t i = 0; i < l.steps.size(); ++i) {
      const auto& st = l.steps[i];
      appendf(out,
              "    {\"at_s\": %.6f, \"kind\": \"%s\", \"node\": %u, "
              "\"peer\": %u, \"shard\": %u, \"hop_latency_s\": %.6f}%s\n",
              to_s(st.at), obs::event_kind_name(st.kind), st.node, st.peer,
              st.shard, to_s(st.hop_latency_us),
              i + 1 < l.steps.size() ? "," : "");
    }
    out += "  ],\n  \"critical_path\": [\n";
    for (std::size_t i = 0; i < l.critical_path.size(); ++i) {
      const auto& h = l.critical_path[i];
      appendf(out,
              "    {\"span\": %" PRIu64
              ", \"at_s\": %.6f, \"node\": %u, \"kind\": \"%s\"}%s\n",
              h.span, to_s(h.at), h.node, obs::event_kind_name(h.kind),
              i + 1 < l.critical_path.size() ? "," : "");
    }
    out += "  ]\n}\n";
    return out;
  }
  if (f == Format::kCsv) {
    out = "at_s,kind,node,peer,shard,hop_latency_s\n";
    for (const auto& st : l.steps) {
      appendf(out, "%.6f,%s,%u,%u,%u,%.6f\n", to_s(st.at),
              obs::event_kind_name(st.kind), st.node, st.peer, st.shard,
              to_s(st.hop_latency_us));
    }
    return out;
  }
  appendf(out, "tx %016" PRIx64 ": %s\n", l.txid,
          l.censored    ? "CENSORED (proof in trace)"
          : l.finalized ? "finalized"
          : l.committed ? "committed (not yet in a block)"
                        : "submitted only");
  for (const auto& st : l.steps) {
    appendf(out, "  [%10.6fs] %-12s node=%-3u", to_s(st.at),
            obs::event_kind_name(st.kind), st.node);
    if (st.kind == EventKind::kTxAdmit && st.peer != st.node) {
      appendf(out, " from=%-3u", st.peer);
    } else if (st.kind == EventKind::kTxCensored) {
      appendf(out, " accused=%-3u", st.peer);
    } else {
      out += "         ";
    }
    appendf(out, " shard=%u", st.shard);
    if (st.hop_latency_us > 0) appendf(out, "  (+%.6fs)", to_s(st.hop_latency_us));
    out += "\n";
  }
  out += "critical path (terminal -> root):\n";
  for (const auto& h : l.critical_path) {
    appendf(out, "  span %-12" PRIu64 " [%10.6fs] node=%-3u via %s\n", h.span,
            to_s(h.at), h.node, obs::event_kind_name(h.kind));
  }
  (void)m;
  return out;
}

std::string render_censorship(const CensorshipReport& r, Format f) {
  std::string out;
  if (f == Format::kJson) {
    appendf(out,
            "{\n  \"settle\": \"%s\",\n  \"never_settled\": %zu,\n"
            "  \"proven_censored\": %zu,\n"
            "  \"max_dwell_s\": %.6f,\n  \"entries\": [\n",
            r.uses_blocks ? "block_inclusion" : "first_commit",
            r.never_settled, r.proven_censored, r.max_dwell_s);
    for (std::size_t i = 0; i < r.entries.size(); ++i) {
      const auto& e = r.entries[i];
      appendf(out,
              "    {\"txid\": \"%016" PRIx64
              "\", \"submit_s\": %.6f, \"settled\": %s, "
              "\"dwell_s\": %.6f, \"censor_proof\": %s}%s\n",
              e.txid, to_s(e.submit_at), e.settled ? "true" : "false",
              e.dwell_s, e.censor_proof ? "true" : "false",
              i + 1 < r.entries.size() ? "," : "");
    }
    out += "  ]\n}\n";
    return out;
  }
  if (f == Format::kCsv) {
    out = "txid,submit_s,settled,dwell_s,censor_proof\n";
    for (const auto& e : r.entries) {
      appendf(out, "%016" PRIx64 ",%.6f,%d,%.6f,%d\n", e.txid,
              to_s(e.submit_at), e.settled ? 1 : 0, e.dwell_s,
              e.censor_proof ? 1 : 0);
    }
    return out;
  }
  appendf(out, "settle criterion  %s\n",
          r.uses_blocks ? "first block inclusion" : "first commit");
  appendf(out, "txs tracked       %zu\n", r.entries.size());
  appendf(out, "never settled     %zu\n", r.never_settled);
  appendf(out, "proven censored   %zu\n", r.proven_censored);
  appendf(out, "max dwell         %.6fs\n", r.max_dwell_s);
  for (const auto& e : r.entries) {
    if (e.settled && !e.censor_proof) continue;  // healthy tx
    appendf(out, "  tx %016" PRIx64 "  submit=%.3fs  dwell=%.3fs  %s%s\n",
            e.txid, to_s(e.submit_at), e.dwell_s,
            e.settled ? "settled" : "NEVER SETTLED",
            e.censor_proof ? "  [censorship proven]" : "");
  }
  return out;
}

std::string render_detection(const std::vector<DetectionEntry>& d, Format f) {
  std::string out;
  if (f == Format::kJson) {
    out = "[\n";
    for (std::size_t i = 0; i < d.size(); ++i) {
      const auto& e = d[i];
      appendf(out,
              "  {\"accused\": %u, \"first_proof_s\": %.6f, "
              "\"first_suspicion_s\": %.6f, \"first_exposure_s\": %.6f, "
              "\"suspicions\": %zu, \"exposures\": %zu}%s\n",
              e.accused, e.first_proof_at < 0 ? -1.0 : to_s(e.first_proof_at),
              e.first_suspicion_at < 0 ? -1.0 : to_s(e.first_suspicion_at),
              e.first_exposure_at < 0 ? -1.0 : to_s(e.first_exposure_at),
              e.suspicion_count, e.exposure_count,
              i + 1 < d.size() ? "," : "");
    }
    out += "]\n";
    return out;
  }
  if (f == Format::kCsv) {
    out = "accused,first_proof_s,first_suspicion_s,first_exposure_s,"
          "suspicions,exposures\n";
    for (const auto& e : d) {
      appendf(out, "%u,%.6f,%.6f,%.6f,%zu,%zu\n", e.accused,
              e.first_proof_at < 0 ? -1.0 : to_s(e.first_proof_at),
              e.first_suspicion_at < 0 ? -1.0 : to_s(e.first_suspicion_at),
              e.first_exposure_at < 0 ? -1.0 : to_s(e.first_exposure_at),
              e.suspicion_count, e.exposure_count);
    }
    return out;
  }
  if (d.empty()) return "no accountability events in trace\n";
  for (const auto& e : d) {
    appendf(out, "accused node %u:\n", e.accused);
    if (e.first_proof_at >= 0) {
      appendf(out, "  first censorship proof  %.6fs\n", to_s(e.first_proof_at));
    }
    if (e.first_suspicion_at >= 0) {
      appendf(out, "  first suspicion         %.6fs  (%zu total)\n",
              to_s(e.first_suspicion_at), e.suspicion_count);
    }
    if (e.first_exposure_at >= 0) {
      appendf(out, "  first exposure          %.6fs  (%zu total)\n",
              to_s(e.first_exposure_at), e.exposure_count);
      if (e.first_suspicion_at >= 0) {
        appendf(out, "  suspicion -> exposure   %.6fs\n",
                to_s(e.first_exposure_at - e.first_suspicion_at));
      }
    }
  }
  return out;
}

std::string render_shards(const std::vector<ShardRollup>& s, Format f) {
  std::string out;
  if (f == Format::kJson) {
    out = "[\n";
    for (std::size_t i = 0; i < s.size(); ++i) {
      const auto& r = s[i];
      appendf(out,
              "  {\"shard\": %u, \"commits\": %" PRIu64
              ", \"tx_commits\": %" PRIu64 ", \"reconciles\": %" PRIu64
              ", \"blocks\": %" PRIu64 ", \"inspections\": %" PRIu64
              ", \"suspicions\": %" PRIu64 ", \"censor_proofs\": %" PRIu64
              "}%s\n",
              r.shard, r.commits, r.tx_commits, r.reconciles, r.blocks,
              r.inspections, r.suspicions, r.censor_proofs,
              i + 1 < s.size() ? "," : "");
    }
    out += "]\n";
    return out;
  }
  if (f == Format::kCsv) {
    out = "shard,commits,tx_commits,reconciles,blocks,inspections,suspicions,"
          "censor_proofs\n";
    for (const auto& r : s) {
      appendf(out,
              "%u,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
              ",%" PRIu64 ",%" PRIu64 "\n",
              r.shard, r.commits, r.tx_commits, r.reconciles, r.blocks,
              r.inspections, r.suspicions, r.censor_proofs);
    }
    return out;
  }
  out = "shard  commits  tx_commits  reconciles  blocks  inspections  "
        "suspicions  censor_proofs\n";
  for (const auto& r : s) {
    appendf(out,
            "%5u  %7" PRIu64 "  %10" PRIu64 "  %10" PRIu64 "  %6" PRIu64
            "  %11" PRIu64 "  %10" PRIu64 "  %13" PRIu64 "\n",
            r.shard, r.commits, r.tx_commits, r.reconciles, r.blocks,
            r.inspections, r.suspicions, r.censor_proofs);
  }
  return out;
}

}  // namespace lo::loscope
