// loscope CLI — causal transaction forensics over LOTR traces.
//
//   loscope <trace.lotrace> summary            [--json|--csv]
//   loscope <trace.lotrace> lineage <txid>     [--json|--csv]
//   loscope <trace.lotrace> censorship         [--json|--csv]
//   loscope <trace.lotrace> detection          [--json|--csv]
//   loscope <trace.lotrace> shards             [--json|--csv]
//
// Exit codes: 0 success, 1 bad input (unreadable/corrupt trace, unknown
// txid), 2 usage error.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "loscope.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: loscope <trace.lotrace> <command> [args] [--json|--csv]\n"
      "commands:\n"
      "  summary            whole-trace totals and causal coverage\n"
      "  lineage <txid>     cross-node story of one transaction\n"
      "  censorship         per-tx dwell times and censorship proofs\n"
      "  detection          accountability latency decomposition\n"
      "  shards             per-shard event rollups\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lo;
  if (argc < 3) return usage();
  const std::string path = argv[1];
  const std::string cmd = argv[2];

  loscope::Format fmt = loscope::Format::kText;
  std::string txid_arg;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      fmt = loscope::Format::kJson;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      fmt = loscope::Format::kCsv;
    } else if (txid_arg.empty()) {
      txid_arg = argv[i];
    } else {
      return usage();
    }
  }

  try {
    const auto model = loscope::TraceModel::build(obs::Tracer::read_file(path));
    std::string out;
    if (cmd == "summary") {
      out = loscope::render_summary(loscope::summarize(model), fmt);
    } else if (cmd == "lineage") {
      const auto txid = loscope::parse_txid(txid_arg);
      if (!txid) {
        std::fprintf(stderr, "loscope: bad or missing txid '%s'\n",
                     txid_arg.c_str());
        return 2;
      }
      const auto l = loscope::lineage(model, *txid);
      if (!l) {
        std::fprintf(stderr,
                     "loscope: no lifecycle events for tx %016llx in %s\n",
                     static_cast<unsigned long long>(*txid), path.c_str());
        return 1;
      }
      out = loscope::render_lineage(model, *l, fmt);
    } else if (cmd == "censorship") {
      out = loscope::render_censorship(loscope::censorship(model), fmt);
    } else if (cmd == "detection") {
      out = loscope::render_detection(loscope::detection(model), fmt);
    } else if (cmd == "shards") {
      out = loscope::render_shards(loscope::shards(model), fmt);
    } else {
      return usage();
    }
    std::fputs(out.c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loscope: %s\n", e.what());
    return 1;
  }
}
