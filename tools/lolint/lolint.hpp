// lolint — determinism & protocol-safety static analysis for the LØ tree.
//
// A standalone, dependency-free lint pass that enforces the repo invariants
// backing the bit-for-bit replayability guarantee (DESIGN.md "Determinism
// rules"). It is deliberately a *text-level* analysis: fast, hermetic, and
// conservative. The dynamic same-seed replay test (tests/test_determinism.cpp)
// is the semantic backstop for whatever a textual pass cannot see.
//
// Rules (ids in brackets are what lolint:allow() takes):
//   [banned-source]     nondeterminism sources (std::rand, random_device,
//                       system_clock/steady_clock, getenv, raw time()) outside
//                       src/util/rng.* and src/sim/.
//   [unordered-iter]    range-for / iterator loops over unordered_{map,set}
//                       in protocol directories (core, enforcement, consensus,
//                       baselines, overlay, minisketch).
//   [float-in-protocol] float/double members in serialized structs, or f64()
//                       wire calls, in protocol directories.
//   [relative-include]  #include "../..." escaping the -Isrc include root.
//   [serde-symmetry]    a struct/TU with serialize() but no deserialize().
//   [bad-allow]         malformed lolint:allow annotation (unknown rule id or
//                       empty reason).
//
// Concurrency-readiness rules (v2, symbol-aware — see symbols.hpp):
//   [mutable-static]    non-const namespace-scope variable, class-level
//                       static, or function-local static outside tests/ —
//                       shared mutable state the parallel DES cannot shard.
//   [unguarded-field]   a mutable member of a class that declares any
//                       LO_GUARDED_BY field, written from a (non-ctor)
//                       method, without its own capability annotation.
//   [thread-local-protocol] thread_local outside the src/gf// src/obs/
//                       allowlist (per-thread state needs a documented
//                       ownership protocol).
//   [hot-path-alloc]    new/make_unique/make_shared or vector growth
//                       (push_back/emplace_back/resize/reserve) inside a
//                       ScopedProfile-instrumented function body.
//   [serde-field-coverage] a field of a struct with write()/read() wire
//                       methods that appears in one body but not the other.
//
// Allow annotation grammar (suppresses exactly ONE rule, on the annotated
// line or, when written on a comment-only line, on the next code line):
//   // lolint:allow(<rule-id>) reason=<non-empty free text to end of line>
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "symbols.hpp"

namespace lolint {

struct Finding {
  std::string file;  // repo-relative path, '/' separators
  int line = 0;      // 1-based
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

struct FileInput {
  std::string path;  // repo-relative path, '/' separators
  std::string content;
};

// Identifiers known (or inferred) to denote unordered associative containers.
struct NameTable {
  // Members (trailing '_') and functions returning unordered containers —
  // visible across translation units.
  std::set<std::string> global;
  // File-scoped locals / parameters / `auto x = <unordered expr>` bindings.
  std::map<std::string, std::set<std::string>> local;

  bool contains(const std::string& file, const std::string& name) const;
};

// Cross-TU symbol knowledge for the v2 rules: which classes exist, their
// fields (declared in headers), and which fields are written from methods
// (defined in .cpp files — possibly a different TU than the declaration).
struct Symbols {
  struct Class {
    bool has_guarded = false;  // declares at least one LO_GUARDED_BY field
    std::vector<FieldSymbol> fields;
    std::vector<std::string> field_files;  // parallel to fields: declaring file
    // field name -> first non-ctor method write site ("file", line)
    std::map<std::string, std::pair<std::string, int>> writes;
  };
  NameTable names;
  std::map<std::string, Class> classes;  // key: ns::...::Class
};

// All valid rule ids (everything lolint:allow may name).
const std::vector<std::string>& rule_ids();

// Directory predicates, on repo-relative paths.
bool is_protocol_path(const std::string& path);
bool is_rng_exempt_path(const std::string& path);
// Paths where thread_local is allowed without annotation (gf/obs own the
// per-thread workspace idiom) and where the concurrency rules stay silent.
bool is_thread_local_exempt_path(const std::string& path);
bool is_test_path(const std::string& path);

// Replaces comments and string/char-literal bodies with spaces, preserving
// the line structure so offsets keep mapping to the same line numbers.
std::string strip_comments(const std::string& content);

// Pass 1a: harvest unordered-container names from every scanned file.
NameTable collect_unordered_names(const std::vector<FileInput>& files);

// Pass 1: full cross-TU symbol harvest (unordered names + class fields +
// method write sites).
Symbols collect_symbols(const std::vector<FileInput>& files);

// Pass 2: lint one file against the global symbol table. Findings are sorted.
std::vector<Finding> lint_file(const FileInput& file, const Symbols& symbols);

// Convenience: both passes over a whole file set.
std::vector<Finding> lint_files(const std::vector<FileInput>& files);

// Loads every *.hpp/*.h/*.cpp/*.cc under root/<subdir> for each subdir, in
// sorted path order. Returns false and sets *error on I/O failure.
bool load_tree(const std::string& root, const std::vector<std::string>& subdirs,
               std::vector<FileInput>* out, std::string* error);

}  // namespace lolint
