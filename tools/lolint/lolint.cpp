#include "lolint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace lolint {
namespace {

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool ident_start(char c) { return ident_char(c) && !(c >= '0' && c <= '9'); }

std::size_t skip_space(const std::string& s, std::size_t i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
    ++i;
  }
  return i;
}

// Is s[pos..pos+tok.size()) the token `tok` with identifier boundaries?
bool token_at(const std::string& s, std::size_t pos, const std::string& tok) {
  if (pos + tok.size() > s.size()) return false;
  if (s.compare(pos, tok.size(), tok) != 0) return false;
  if (pos > 0 && ident_char(s[pos - 1])) return false;
  const std::size_t end = pos + tok.size();
  if (end < s.size() && ident_char(s[end])) return false;
  return true;
}

// Finds the next boundary-checked occurrence of `tok` at or after `from`.
std::size_t find_token(const std::string& s, const std::string& tok,
                       std::size_t from) {
  for (std::size_t i = s.find(tok, from); i != std::string::npos;
       i = s.find(tok, i + 1)) {
    if (token_at(s, i, tok)) return i;
  }
  return std::string::npos;
}

int line_of(const std::string& s, std::size_t pos) {
  return 1 + static_cast<int>(std::count(s.begin(),
                                         s.begin() + static_cast<std::ptrdiff_t>(
                                                         std::min(pos, s.size())),
                                         '\n'));
}

std::string read_ident(const std::string& s, std::size_t& i) {
  std::string out;
  if (i < s.size() && ident_start(s[i])) {
    while (i < s.size() && ident_char(s[i])) out.push_back(s[i++]);
  }
  return out;
}

// Skips a balanced <...> starting at the '<' at position i; returns the
// position just past the matching '>', or npos when unbalanced.
std::size_t skip_angle(const std::string& s, std::size_t i) {
  if (i >= s.size() || s[i] != '<') return std::string::npos;
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    else if (s[i] == '>') {
      if (--depth == 0) return i + 1;
    } else if (s[i] == ';') {
      return std::string::npos;  // statement ended inside: not a template arg
    }
  }
  return std::string::npos;
}

// Skips a balanced (...) starting at the '(' at position i; returns the
// position just past the matching ')', or npos.
std::size_t skip_paren(const std::string& s, std::size_t i) {
  if (i >= s.size() || s[i] != '(') return std::string::npos;
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    else if (s[i] == ')') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// ------------------------------------------------------------------ allows --

struct AllowEntry {
  std::string rule;    // empty when malformed
  std::string reason;  // may be empty (malformed)
  bool well_formed = false;
};

// Parses every lolint:allow(...) annotation on one raw source line.
std::vector<AllowEntry> parse_allows(const std::string& raw_line) {
  std::vector<AllowEntry> out;
  const std::string kMarker = "lolint:allow";
  for (std::size_t i = raw_line.find(kMarker); i != std::string::npos;
       i = raw_line.find(kMarker, i + 1)) {
    AllowEntry e;
    std::size_t p = i + kMarker.size();
    p = skip_space(raw_line, p);
    if (p < raw_line.size() && raw_line[p] == '(') {
      const std::size_t close = raw_line.find(')', p);
      if (close != std::string::npos) {
        e.rule = trim(raw_line.substr(p + 1, close - p - 1));
        std::size_t q = skip_space(raw_line, close + 1);
        if (raw_line.compare(q, 7, "reason=") == 0) {
          e.reason = trim(raw_line.substr(q + 7));
        }
      }
    }
    const auto& ids = rule_ids();
    e.well_formed = !e.reason.empty() &&
                    std::find(ids.begin(), ids.end(), e.rule) != ids.end();
    out.push_back(std::move(e));
  }
  return out;
}

// Per-file allow index: line number -> set of allowed rule ids. An allow on a
// comment-only line also covers the next line that carries code.
struct AllowIndex {
  std::map<int, std::set<std::string>> by_line;
  std::vector<Finding> malformed;  // bad-allow findings

  bool allowed(int line, const std::string& rule) const {
    auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) != 0;
  }
};

AllowIndex build_allow_index(const FileInput& f, const std::string& stripped) {
  AllowIndex idx;
  const auto raw_lines = split_lines(f.content);
  const auto code_lines = split_lines(stripped);
  for (std::size_t li = 0; li < raw_lines.size(); ++li) {
    const auto allows = parse_allows(raw_lines[li]);
    if (allows.empty()) continue;
    const int line = static_cast<int>(li + 1);
    const bool comment_only =
        li < code_lines.size() && trim(code_lines[li]).empty();
    for (const auto& a : allows) {
      if (!a.well_formed) {
        idx.malformed.push_back(
            {f.path, line, "bad-allow",
             "malformed lolint:allow — expected lolint:allow(<rule-id>) "
             "reason=<non-empty text>; got rule='" +
                 a.rule + "', reason='" + a.reason + "'"});
        continue;
      }
      idx.by_line[line].insert(a.rule);
      if (comment_only) {
        // Attach to the next line carrying code (skipping the rest of the
        // comment block and blank lines).
        for (std::size_t lj = li + 1; lj < code_lines.size(); ++lj) {
          if (!trim(code_lines[lj]).empty()) {
            idx.by_line[static_cast<int>(lj + 1)].insert(a.rule);
            break;
          }
        }
      }
    }
  }
  return idx;
}

// ------------------------------------------------------------ name harvest --

// Classifies the declarator that follows a (possibly aliased) unordered
// container type ending at position `pos` in the stripped content.
void classify_declarator(const std::string& code, std::size_t pos,
                         const std::string& file, NameTable* table) {
  std::size_t i = skip_space(code, pos);
  bool is_ref = false;
  while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
    is_ref = true;
    i = skip_space(code, i + 1);
  }
  const std::string name = read_ident(code, i);
  if (name.empty()) return;
  i = skip_space(code, i);
  if (i >= code.size()) return;
  const char next = code[i];
  if (next == '(') {
    // Function returning an unordered container (by ref or value), or a local
    // constructed in place — either way, iterating the result is hash-order.
    table->global.insert(name);
  } else if (next == ';' || next == '=' || next == '{' || next == ',' ||
             next == ')') {
    if (!name.empty() && name.back() == '_') {
      table->global.insert(name);  // member: visible from other TUs
    } else {
      table->local[file].insert(name);  // local / parameter
    }
  }
  (void)is_ref;
}

void harvest_file(const FileInput& f, const std::string& code,
                  NameTable* table, std::set<std::string>* aliases) {
  // Direct declarations: ... unordered_map<...> name / unordered_set<...> name
  for (const std::string& kw : {std::string("unordered_map"),
                                std::string("unordered_set")}) {
    for (std::size_t i = find_token(code, kw, 0); i != std::string::npos;
         i = find_token(code, kw, i + 1)) {
      std::size_t p = i + kw.size();
      if (p >= code.size() || code[p] != '<') continue;
      const std::size_t after = skip_angle(code, p);
      if (after == std::string::npos) continue;
      classify_declarator(code, after, f.path, table);
    }
  }
  // Type aliases: using Name = ... unordered_...<...>;
  for (std::size_t i = find_token(code, "using", 0); i != std::string::npos;
       i = find_token(code, "using", i + 1)) {
    std::size_t p = skip_space(code, i + 5);
    const std::string name = read_ident(code, p);
    if (name.empty()) continue;
    p = skip_space(code, p);
    if (p >= code.size() || code[p] != '=') continue;
    const std::size_t semi = code.find(';', p);
    if (semi == std::string::npos) continue;
    const std::string rhs = code.substr(p, semi - p);
    if (rhs.find("unordered_map<") != std::string::npos ||
        rhs.find("unordered_set<") != std::string::npos) {
      aliases->insert(name);
    }
  }
}

void harvest_alias_decls(const FileInput& f, const std::string& code,
                         const std::set<std::string>& aliases,
                         NameTable* table) {
  for (const auto& alias : aliases) {
    for (std::size_t i = find_token(code, alias, 0); i != std::string::npos;
         i = find_token(code, alias, i + 1)) {
      classify_declarator(code, i + alias.size(), f.path, table);
    }
  }
}

bool expr_mentions_unordered(const std::string& expr, const std::string& file,
                             const NameTable& table, std::string* which) {
  if (expr.find("unordered_") != std::string::npos) {
    *which = "unordered container expression";
    return true;
  }
  for (std::size_t i = 0; i < expr.size();) {
    if (ident_start(expr[i]) && (i == 0 || !ident_char(expr[i - 1]))) {
      std::size_t j = i;
      const std::string name = read_ident(expr, j);
      if (table.contains(file, name)) {
        *which = "'" + name + "'";
        return true;
      }
      i = j;
    } else {
      ++i;
    }
  }
  return false;
}

// Last identifier of an expression tail (e.g. "registry_.latest_all" ->
// "latest_all").
std::string last_ident(const std::string& s) {
  std::size_t e = s.size();
  while (e > 0 && !ident_char(s[e - 1])) --e;
  std::size_t b = e;
  while (b > 0 && ident_char(s[b - 1])) --b;
  return s.substr(b, e - b);
}

// `auto x = <unordered container expr>;` propagates unordered-ness to x.
//
// Deliberately narrow to avoid false positives: the initializer must *be* the
// container — a bare unordered name, a call whose callee's final identifier is
// an unordered accessor (`registry_.latest_all()`), or a `find()`/`at()` on an
// unordered name (the resulting iterator/reference exposes hash-ordered
// content for map-of-container types).
void propagate_auto_bindings(const FileInput& f, const std::string& code,
                             NameTable* table) {
  for (std::size_t i = find_token(code, "auto", 0); i != std::string::npos;
       i = find_token(code, "auto", i + 1)) {
    std::size_t p = skip_space(code, i + 4);
    while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
      p = skip_space(code, p + 1);
    }
    const std::string name = read_ident(code, p);
    if (name.empty()) continue;
    p = skip_space(code, p);
    if (p >= code.size() || code[p] != '=') continue;
    // Initializer extent: up to ';', '{', or the ')' closing an enclosing
    // if/while condition — whichever comes first at depth zero.
    std::size_t q = p + 1;
    int depth = 0;
    for (; q < code.size(); ++q) {
      const char c = code[q];
      if (c == '(') ++depth;
      else if (c == ')') {
        if (depth == 0) break;
        --depth;
      } else if ((c == ';' || c == '{') && depth == 0) {
        break;
      }
    }
    std::string core = trim(code.substr(p + 1, q - p - 1));
    // Strip one trailing call-argument group: "expr(...)" -> "expr".
    if (!core.empty() && core.back() == ')') {
      int d = 0;
      std::size_t open = std::string::npos;
      for (std::size_t k = core.size(); k-- > 0;) {
        if (core[k] == ')') ++d;
        else if (core[k] == '(') {
          if (--d == 0) {
            open = k;
            break;
          }
        }
      }
      if (open == std::string::npos) continue;
      core = trim(core.substr(0, open));
    }
    const std::string tail = last_ident(core);
    if (tail.empty()) continue;
    bool unordered = table->contains(f.path, tail);
    if (!unordered && (tail == "find" || tail == "at")) {
      std::string base = core.substr(0, core.size() - tail.size());
      while (!base.empty() &&
             (base.back() == '.' || base.back() == '>' || base.back() == '-' ||
              std::isspace(static_cast<unsigned char>(base.back())))) {
        base.pop_back();
      }
      unordered = table->contains(f.path, last_ident(base));
    }
    if (unordered) table->local[f.path].insert(name);
  }
}

// ------------------------------------------------------------ struct scopes --

struct StructScope {
  std::string name;
  std::size_t body_begin = 0;  // position just past '{'
  std::size_t body_end = 0;    // position of matching '}'
  int line = 0;
};

std::vector<StructScope> find_struct_scopes(const std::string& code) {
  std::vector<StructScope> out;
  for (const std::string& kw : {std::string("struct"), std::string("class")}) {
    for (std::size_t i = find_token(code, kw, 0); i != std::string::npos;
         i = find_token(code, kw, i + 1)) {
      std::size_t p = skip_space(code, i + kw.size());
      const std::string name = read_ident(code, p);
      if (name.empty()) continue;
      // Walk to '{' allowing a base-clause; bail on ';' (fwd decl) or '('.
      std::size_t q = p;
      bool found_brace = false;
      for (; q < code.size(); ++q) {
        if (code[q] == '{') {
          found_brace = true;
          break;
        }
        if (code[q] == ';' || code[q] == '(' || code[q] == ')') break;
      }
      if (!found_brace) continue;
      int depth = 0;
      std::size_t r = q;
      for (; r < code.size(); ++r) {
        if (code[r] == '{') ++depth;
        else if (code[r] == '}') {
          if (--depth == 0) break;
        }
      }
      if (r >= code.size()) continue;
      out.push_back({name, q + 1, r, line_of(code, i)});
    }
  }
  return out;
}

// --------------------------------------------------------------- the rules --

void check_banned_sources(const FileInput& f, const std::string& code,
                          const AllowIndex& allows,
                          std::vector<Finding>* out) {
  if (is_rng_exempt_path(f.path)) return;
  static const struct {
    const char* token;
    const char* what;
  } kBanned[] = {
      {"rand", "std::rand"},
      {"srand", "std::srand"},
      {"random_device", "std::random_device"},
      {"system_clock", "std::chrono::system_clock"},
      {"steady_clock", "std::chrono::steady_clock"},
      {"high_resolution_clock", "std::chrono::high_resolution_clock"},
      {"getenv", "std::getenv"},
      {"time", "raw time()"},
  };
  for (const auto& b : kBanned) {
    const std::string tok = b.token;
    for (std::size_t i = find_token(code, tok, 0); i != std::string::npos;
         i = find_token(code, tok, i + 1)) {
      // `rand` and `time` only count as calls: require '(' right after.
      if (tok == "rand" || tok == "time" || tok == "srand" || tok == "getenv") {
        const std::size_t p = skip_space(code, i + tok.size());
        if (p >= code.size() || code[p] != '(') continue;
      }
      const int line = line_of(code, i);
      if (allows.allowed(line, "banned-source")) continue;
      out->push_back(
          {f.path, line, "banned-source",
           std::string(b.what) +
               " is a nondeterminism source; draw from lo::util::Rng (seeded) "
               "or the simulator clock instead"});
    }
  }
}

void check_unordered_iter(const FileInput& f, const std::string& code,
                          const NameTable& names, const AllowIndex& allows,
                          std::vector<Finding>* out) {
  if (!is_protocol_path(f.path)) return;
  for (std::size_t i = find_token(code, "for", 0); i != std::string::npos;
       i = find_token(code, "for", i + 1)) {
    const std::size_t open = skip_space(code, i + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = skip_paren(code, open);
    if (close == std::string::npos) continue;
    const std::string header = code.substr(open + 1, close - open - 2);
    const int line = line_of(code, i);

    // Find a top-level ':' (range-for separator), skipping '::'.
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t k = 0; k < header.size(); ++k) {
      const char c = header[k];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      else if (c == ':' && depth == 0) {
        if (k + 1 < header.size() && header[k + 1] == ':') { ++k; continue; }
        if (k > 0 && header[k - 1] == ':') continue;
        colon = k;
        break;
      }
    }

    std::string which;
    bool hit = false;
    if (colon != std::string::npos) {
      const std::string range = header.substr(colon + 1);
      // A range wrapped in the sorted extraction helpers IS the fix.
      if (find_token(range, "sorted_keys", 0) != std::string::npos ||
          find_token(range, "sorted_items", 0) != std::string::npos) {
        continue;
      }
      hit = expr_mentions_unordered(range, f.path, names, &which);
    } else {
      // Classic for: look for NAME.begin() / NAME.cbegin() iterator loops.
      for (const char* b : {".begin", ".cbegin"}) {
        const std::size_t bp = header.find(b);
        if (bp == std::string::npos || bp == 0) continue;
        std::size_t e = bp;
        while (e > 0 && ident_char(header[e - 1])) --e;
        const std::string name = header.substr(e, bp - e);
        if (names.contains(f.path, name)) {
          which = "'" + name + "'";
          hit = true;
          break;
        }
      }
    }
    if (!hit) continue;
    if (allows.allowed(line, "unordered-iter")) continue;
    out->push_back(
        {f.path, line, "unordered-iter",
         "iteration over unordered container " + which +
             " in a protocol directory — hash order is platform-dependent "
             "and must not reach messages, digests or peer selection; use "
             "lo::util::sorted_keys()/sorted_items() (util/ordered.hpp) or "
             "annotate: // lolint:allow(unordered-iter) reason=<why order "
             "cannot escape>"});
  }
}

void check_float_in_protocol(const FileInput& f, const std::string& code,
                             const AllowIndex& allows,
                             std::vector<Finding>* out) {
  if (!is_protocol_path(f.path)) return;
  // f64() wire reads/writes: floating point has no canonical wire semantics
  // across FPU modes; protocol messages must stay integral.
  for (std::size_t i = find_token(code, "f64", 0); i != std::string::npos;
       i = find_token(code, "f64", i + 1)) {
    if (i == 0 || (code[i - 1] != '.' && code[i - 1] != '>')) continue;
    const std::size_t p = i + 3;
    if (p >= code.size() || code[p] != '(') continue;
    const int line = line_of(code, i);
    if (allows.allowed(line, "float-in-protocol")) continue;
    out->push_back({f.path, line, "float-in-protocol",
                    "f64() wire field in a protocol directory — serialized "
                    "messages must use integral types (fixed-point if needed)"});
  }
  // float/double members inside serialized structs.
  for (const auto& scope : find_struct_scopes(code)) {
    const std::string body =
        code.substr(scope.body_begin, scope.body_end - scope.body_begin);
    if (find_token(body, "serialize", 0) == std::string::npos) continue;
    for (const std::string& kw : {std::string("float"), std::string("double")}) {
      for (std::size_t i = find_token(body, kw, 0); i != std::string::npos;
           i = find_token(body, kw, i + 1)) {
        std::size_t p = skip_space(body, i + kw.size());
        const std::string name = read_ident(body, p);
        if (name.empty()) continue;
        p = skip_space(body, p);
        if (p >= body.size()) continue;
        if (body[p] != ';' && body[p] != '=' && body[p] != '{') continue;
        const int line = line_of(code, scope.body_begin + i);
        if (allows.allowed(line, "float-in-protocol")) continue;
        out->push_back(
            {f.path, line, "float-in-protocol",
             kw + " member '" + name + "' in serialized struct '" + scope.name +
                 "' — protocol state must be integral (floating point "
                 "round-trips are platform/FPU-mode dependent)"});
      }
    }
  }
}

void check_relative_include(const FileInput& f, const AllowIndex& allows,
                            std::vector<Finding>* out) {
  const auto lines = split_lines(f.content);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string t = trim(lines[li]);
    if (t.rfind("#include", 0) != 0) continue;
    if (t.find("\"../") == std::string::npos &&
        t.find("\"./") == std::string::npos) {
      continue;
    }
    const int line = static_cast<int>(li + 1);
    if (allows.allowed(line, "relative-include")) continue;
    out->push_back({f.path, line, "relative-include",
                    "relative #include escapes the include root — use a "
                    "root-relative path (e.g. \"core/node.hpp\")"});
  }
}

void check_serde_symmetry(const FileInput& f, const std::string& code,
                          const AllowIndex& allows,
                          std::vector<Finding>* out) {
  if (f.path.rfind("src/", 0) != 0) return;
  // (a) In-class: a struct declaring serialize() must declare deserialize
  //     in the same scope (or the TU must define Name::deserialize).
  for (const auto& scope : find_struct_scopes(code)) {
    const std::string body =
        code.substr(scope.body_begin, scope.body_end - scope.body_begin);
    const std::size_t ser = find_token(body, "serialize", 0);
    if (ser == std::string::npos) continue;
    if (find_token(body, "deserialize", 0) != std::string::npos) continue;
    if (code.find(scope.name + "::deserialize") != std::string::npos) continue;
    const int line = line_of(code, scope.body_begin + ser);
    if (allows.allowed(line, "serde-symmetry")) continue;
    out->push_back({f.path, line, "serde-symmetry",
                    "struct '" + scope.name +
                        "' has serialize() but no matching deserialize() in "
                        "this translation unit — round-trip coverage is how "
                        "wire-format drift gets caught"});
  }
  // (b) Out-of-line: every X::serialize definition needs an X::deserialize.
  std::map<std::string, int> ser_defs;
  std::set<std::string> deser_defs;
  const std::string kSer = "::serialize";
  for (std::size_t i = code.find(kSer); i != std::string::npos;
       i = code.find(kSer, i + 1)) {
    std::size_t e = i;
    while (e > 0 && ident_char(code[e - 1])) --e;
    const std::string qual = code.substr(e, i - e);
    if (!qual.empty() && ser_defs.find(qual) == ser_defs.end()) {
      ser_defs[qual] = line_of(code, i);
    }
  }
  const std::string kDeser = "::deserialize";
  for (std::size_t i = code.find(kDeser); i != std::string::npos;
       i = code.find(kDeser, i + 1)) {
    std::size_t e = i;
    while (e > 0 && ident_char(code[e - 1])) --e;
    deser_defs.insert(code.substr(e, i - e));
  }
  for (const auto& [qual, line] : ser_defs) {
    if (deser_defs.count(qual) != 0) continue;
    // The in-class pass already reports structs defined in this file.
    if (code.find("struct " + qual) != std::string::npos ||
        code.find("class " + qual) != std::string::npos) {
      continue;
    }
    if (allows.allowed(line, "serde-symmetry")) continue;
    out->push_back({f.path, line, "serde-symmetry",
                    "'" + qual +
                        "::serialize' is defined here but '" + qual +
                        "::deserialize' is not — keep both sides of the wire "
                        "format in one translation unit"});
  }
}

// ------------------------------------------------- v2 symbol-aware rules --

// Resolves a function's enclosing/qualifying class to a key in the global
// class map: exact "ns::qualifier" first, then a unique suffix match.
std::string resolve_class_key(const Symbols& syms, const FunctionSymbol& fn) {
  if (fn.cls.empty()) return "";
  const std::string exact = fn.ns.empty() ? fn.cls : fn.ns + "::" + fn.cls;
  if (syms.classes.count(exact) != 0) return exact;
  std::string found;
  const std::string suffix = "::" + fn.cls;
  for (const auto& [key, cls] : syms.classes) {
    (void)cls;
    const bool match =
        key == fn.cls ||
        (key.size() > suffix.size() &&
         key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0);
    if (!match) continue;
    if (!found.empty()) return "";  // ambiguous across namespaces: skip
    found = key;
  }
  return found;
}

bool is_write_mutator(const std::string& s) {
  static const std::set<std::string> kMut = {
      "push_back", "emplace_back", "pop_back", "push",   "pop",
      "emplace",   "clear",        "insert",   "erase",  "assign",
      "resize",    "reserve",      "swap",
  };
  return kMut.count(s) != 0;
}

// `.push_back(` / `->resize(` etc. — the grow-only container calls that can
// allocate on a hot path. tok k must be the method-name identifier.
bool is_growth_call(const std::vector<Token>& toks, std::size_t k,
                    std::size_t end) {
  static const std::set<std::string> kGrow = {"push_back", "emplace_back",
                                             "resize", "reserve"};
  if (kGrow.count(toks[k].text) == 0) return false;
  if (k == 0) return false;
  const std::string& prev = toks[k - 1].text;
  if (prev != "." && prev != "->") return false;
  return k + 1 < end && toks[k + 1].text == "(";
}

bool is_assign_op(const std::string& s) {
  static const std::set<std::string> kOps = {
      "=",  "+=", "-=", "*=", "/=", "%=",
      "&=", "|=", "^=", "<<=", ">>=", "++", "--",
  };
  return kOps.count(s) != 0;
}

// Scans a function body's tokens for writes to plain identifiers (candidate
// member fields): assignments, inc/dec, and mutating container calls.
// `this->x` counts; `other.x` does not (that is another object's field).
void scan_field_writes(const std::vector<Token>& toks, std::size_t b,
                       std::size_t e,
                       std::map<std::string, int>* write_lines) {
  for (std::size_t k = b; k < e; ++k) {
    if (toks[k].kind != TokKind::kIdent) continue;
    const std::string& name = toks[k].text;
    if (k > b) {
      const std::string& prev = toks[k - 1].text;
      if (prev == "." || prev == "->") {
        const bool via_this = k >= 2 && toks[k - 2].text == "this";
        if (!via_this) continue;
      }
    }
    bool write = false;
    if (k + 1 < e && is_assign_op(toks[k + 1].text)) {
      write = true;
    } else if (k > b && (toks[k - 1].text == "++" || toks[k - 1].text == "--")) {
      write = true;
    } else if (k + 3 < e &&
               (toks[k + 1].text == "." || toks[k + 1].text == "->") &&
               toks[k + 2].kind == TokKind::kIdent &&
               is_write_mutator(toks[k + 2].text) && toks[k + 3].text == "(") {
      write = true;
    }
    if (write && write_lines->find(name) == write_lines->end()) {
      (*write_lines)[name] = toks[k].line;
    }
  }
}

void check_mutable_static(const FileInput& f, const TuIndex& idx,
                          const AllowIndex& allows,
                          std::vector<Finding>* out) {
  if (is_test_path(f.path)) return;
  for (const auto& s : idx.statics) {
    if (s.is_const || s.is_thread_local) continue;
    if (!allows.allowed(s.line, "mutable-static")) {
      const char* where =
          s.scope == StaticSymbol::Scope::kNamespace
              ? "namespace-scope variable"
              : (s.scope == StaticSymbol::Scope::kClassStatic
                     ? "static data member"
                     : "function-local static");
      out->push_back(
          {f.path, s.line, "mutable-static",
           std::string("mutable ") + where + " '" + s.name +
               "' — process-global mutable state cannot be sharded by the "
               "parallel DES; make it const, move it into an owned object, "
               "or annotate: // lolint:allow(mutable-static) reason=<why "
               "single-threaded access is guaranteed>"});
    }
  }
}

void check_thread_local_protocol(const FileInput& f, const TuIndex& idx,
                                 const AllowIndex& allows,
                                 std::vector<Finding>* out) {
  if (is_test_path(f.path) || is_thread_local_exempt_path(f.path)) return;
  for (const auto& s : idx.statics) {
    if (!s.is_thread_local || s.is_const) continue;
    if (allows.allowed(s.line, "thread-local-protocol")) continue;
    out->push_back(
        {f.path, s.line, "thread-local-protocol",
         "thread_local '" + s.name +
             "' outside the gf/obs per-thread-workspace allowlist — "
             "per-thread state needs a documented ownership protocol; move "
             "it behind a gf/obs facade or annotate: "
             "// lolint:allow(thread-local-protocol) reason=<protocol>"});
  }
}

void check_unguarded_field(const FileInput& f, const TuIndex& idx,
                           const Symbols& syms, const AllowIndex& allows,
                           std::vector<Finding>* out) {
  if (is_test_path(f.path)) return;
  for (const auto& fd : idx.fields) {
    const auto it = syms.classes.find(fd.class_key);
    if (it == syms.classes.end() || !it->second.has_guarded) continue;
    if (fd.guarded || fd.is_mutex || fd.is_atomic || fd.is_const ||
        fd.is_static) {
      continue;
    }
    const auto w = it->second.writes.find(fd.name);
    if (w == it->second.writes.end()) continue;
    if (allows.allowed(fd.line, "unguarded-field")) continue;
    out->push_back(
        {f.path, fd.line, "unguarded-field",
         "field '" + fd.name + "' of capability class '" + fd.class_key +
             "' is written from a method (" + w->second.first + ":" +
             std::to_string(w->second.second) +
             ") but carries no LO_GUARDED_BY — guard it, or annotate the "
             "declaration: // lolint:allow(unguarded-field) reason=<which "
             "thread owns it>"});
  }
}

void check_hot_path_alloc(const FileInput& f, const TuIndex& idx,
                          const AllowIndex& allows,
                          std::vector<Finding>* out) {
  if (is_test_path(f.path)) return;
  const auto& toks = idx.tokens;
  for (const auto& fn : idx.functions) {
    if (fn.body_end <= fn.body_begin) continue;
    bool instrumented = false;
    for (std::size_t k = fn.body_begin; k < fn.body_end; ++k) {
      if (toks[k].kind == TokKind::kIdent && toks[k].text == "ScopedProfile") {
        instrumented = true;
        break;
      }
    }
    if (!instrumented) continue;
    for (std::size_t k = fn.body_begin; k < fn.body_end; ++k) {
      if (toks[k].kind != TokKind::kIdent) continue;
      const std::string& s = toks[k].text;
      std::string what;
      if (s == "new" &&
          (k == fn.body_begin ||
           (toks[k - 1].text != "." && toks[k - 1].text != "->"))) {
        what = "operator new";
      } else if ((s == "make_unique" || s == "make_shared") &&
                 k + 1 < fn.body_end &&
                 (toks[k + 1].text == "<" || toks[k + 1].text == "(")) {
        what = "std::" + s;
      } else if (is_growth_call(toks, k, fn.body_end)) {
        what = s + "()";
      }
      if (what.empty()) continue;
      const int line = toks[k].line;
      if (allows.allowed(line, "hot-path-alloc")) continue;
      out->push_back(
          {f.path, line, "hot-path-alloc",
           what + " inside ScopedProfile-instrumented function '" + fn.name +
               "' — hot paths must reuse warmed workspaces (PolyPool / "
               "Decoder buffers); hoist the allocation or annotate: "
               "// lolint:allow(hot-path-alloc) reason=<amortization "
               "argument>"});
    }
  }
}

void check_serde_field_coverage(const FileInput& f, const TuIndex& idx,
                                const Symbols& syms, const AllowIndex& allows,
                                std::vector<Finding>* out) {
  if (f.path.rfind("src/", 0) != 0) return;
  // Gather this TU's write()/read() bodies per resolved class.
  struct Bodies {
    std::vector<const FunctionSymbol*> write_fns, read_fns;
  };
  std::map<std::string, Bodies> per_class;
  for (const auto& fn : idx.functions) {
    if (fn.body_end <= fn.body_begin) continue;
    if (fn.name != "write" && fn.name != "read") continue;
    const std::string key = resolve_class_key(syms, fn);
    if (key.empty()) continue;
    if (fn.name == "write") {
      per_class[key].write_fns.push_back(&fn);
    } else {
      per_class[key].read_fns.push_back(&fn);
    }
  }
  const auto& toks = idx.tokens;
  const auto body_idents = [&](const std::vector<const FunctionSymbol*>& fns) {
    std::set<std::string> names;
    for (const auto* fn : fns) {
      for (std::size_t k = fn->body_begin; k < fn->body_end; ++k) {
        if (toks[k].kind == TokKind::kIdent) names.insert(toks[k].text);
      }
    }
    return names;
  };
  for (const auto& [key, bodies] : per_class) {
    if (bodies.write_fns.empty() || bodies.read_fns.empty()) continue;
    const auto cls_it = syms.classes.find(key);
    if (cls_it == syms.classes.end()) continue;
    const auto in_write = body_idents(bodies.write_fns);
    const auto in_read = body_idents(bodies.read_fns);
    for (const auto& fd : cls_it->second.fields) {
      if (fd.is_static || fd.is_const) continue;
      const bool w = in_write.count(fd.name) != 0;
      const bool r = in_read.count(fd.name) != 0;
      if (w == r) continue;
      // Anchor at the body that is missing the field, so the allow sits on
      // the definition that owns the asymmetry.
      const FunctionSymbol* anchor =
          w ? bodies.read_fns.front() : bodies.write_fns.front();
      if (allows.allowed(anchor->line, "serde-field-coverage")) continue;
      out->push_back(
          {f.path, anchor->line, "serde-field-coverage",
           "field '" + fd.name + "' of '" + key + "' is " +
               (w ? "written by write() but never touched by read()"
                  : "read by read() but never emitted by write()") +
               " — wire coverage must be field-symmetric (or annotate the "
               "lagging side: // lolint:allow(serde-field-coverage) "
               "reason=<why the field is derived>)"});
    }
  }
}

}  // namespace

bool NameTable::contains(const std::string& file,
                         const std::string& name) const {
  if (global.count(name) != 0) return true;
  auto it = local.find(file);
  return it != local.end() && it->second.count(name) != 0;
}

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = {
      "banned-source",        "unordered-iter",
      "float-in-protocol",    "relative-include",
      "serde-symmetry",       "mutable-static",
      "unguarded-field",      "thread-local-protocol",
      "hot-path-alloc",       "serde-field-coverage",
  };
  return kIds;
}

bool is_protocol_path(const std::string& path) {
  static const char* kDirs[] = {"src/core/",      "src/enforcement/",
                                "src/consensus/", "src/baselines/",
                                "src/overlay/",   "src/minisketch/",
                                "src/obs/",       "src/membership/"};
  for (const char* d : kDirs) {
    if (path.rfind(d, 0) == 0) return true;
  }
  return false;
}

bool is_rng_exempt_path(const std::string& path) {
  return path.rfind("src/util/rng.", 0) == 0 || path.rfind("src/sim/", 0) == 0;
}

bool is_thread_local_exempt_path(const std::string& path) {
  return path.rfind("src/gf/", 0) == 0 || path.rfind("src/obs/", 0) == 0;
}

bool is_test_path(const std::string& path) {
  return path.rfind("tests/", 0) == 0;
}

std::string strip_comments(const std::string& content) {
  std::string out;
  out.reserve(content.size());
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State st = State::kCode;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char n = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && n == '/') {
          st = State::kLine;
          out += "  ";
          ++i;
        } else if (c == '/' && n == '*') {
          st = State::kBlock;
          out += "  ";
          ++i;
        } else if (c == '"') {
          st = State::kString;
          out += '"';
        } else if (c == '\'') {
          st = State::kChar;
          out += '\'';
        } else {
          out += c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          st = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && n == '/') {
          st = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && n != '\0') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          st = State::kCode;
          out += '"';
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && n != '\0') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
          out += '\'';
        } else {
          out += (c == '\n') ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

NameTable collect_unordered_names(const std::vector<FileInput>& files) {
  NameTable table;
  std::set<std::string> aliases;
  std::vector<std::string> stripped;
  stripped.reserve(files.size());
  for (const auto& f : files) {
    stripped.push_back(strip_comments(f.content));
    harvest_file(f, stripped.back(), &table, &aliases);
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    harvest_alias_decls(files[i], stripped[i], aliases, &table);
  }
  // Two propagation rounds handle auto chains (a = m; b = a;).
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < files.size(); ++i) {
      propagate_auto_bindings(files[i], stripped[i], &table);
    }
  }
  return table;
}

Symbols collect_symbols(const std::vector<FileInput>& files) {
  Symbols syms;
  syms.names = collect_unordered_names(files);
  std::vector<TuIndex> indices;
  indices.reserve(files.size());
  for (const auto& f : files) {
    indices.push_back(index_tu(strip_comments(f.content)));
    const TuIndex& idx = indices.back();
    for (const auto& fd : idx.fields) {
      auto& cls = syms.classes[fd.class_key];
      cls.fields.push_back(fd);
      cls.field_files.push_back(f.path);
      if (fd.guarded) cls.has_guarded = true;
    }
  }
  // Second pass: attribute method-body writes to the (now complete) class
  // map, keeping only names that are actual fields of the resolved class.
  for (std::size_t i = 0; i < files.size(); ++i) {
    const TuIndex& idx = indices[i];
    for (const auto& fn : idx.functions) {
      if (fn.body_end <= fn.body_begin || fn.is_ctor_or_dtor) continue;
      const std::string key = resolve_class_key(syms, fn);
      if (key.empty()) continue;
      auto cls_it = syms.classes.find(key);
      if (cls_it == syms.classes.end()) continue;
      std::map<std::string, int> write_lines;
      scan_field_writes(idx.tokens, fn.body_begin, fn.body_end, &write_lines);
      for (const auto& [name, line] : write_lines) {
        const bool is_field = std::any_of(
            cls_it->second.fields.begin(), cls_it->second.fields.end(),
            [&](const FieldSymbol& fd) { return fd.name == name; });
        if (!is_field) continue;
        cls_it->second.writes.emplace(name,
                                      std::make_pair(files[i].path, line));
      }
    }
  }
  return syms;
}

std::vector<Finding> lint_file(const FileInput& file, const Symbols& symbols) {
  std::vector<Finding> out;
  const std::string code = strip_comments(file.content);
  const AllowIndex allows = build_allow_index(file, code);
  out.insert(out.end(), allows.malformed.begin(), allows.malformed.end());
  check_banned_sources(file, code, allows, &out);
  check_unordered_iter(file, code, symbols.names, allows, &out);
  check_float_in_protocol(file, code, allows, &out);
  check_relative_include(file, allows, &out);
  check_serde_symmetry(file, code, allows, &out);
  const TuIndex idx = index_tu(code);
  check_mutable_static(file, idx, allows, &out);
  check_thread_local_protocol(file, idx, allows, &out);
  check_unguarded_field(file, idx, symbols, allows, &out);
  check_hot_path_alloc(file, idx, allows, &out);
  check_serde_field_coverage(file, idx, symbols, allows, &out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Finding> lint_files(const std::vector<FileInput>& files) {
  const Symbols symbols = collect_symbols(files);
  std::vector<Finding> out;
  for (const auto& f : files) {
    const auto fs = lint_file(f, symbols);
    out.insert(out.end(), fs.begin(), fs.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool load_tree(const std::string& root, const std::vector<std::string>& subdirs,
               std::vector<FileInput>* out, std::string* error) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const auto& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) continue;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(dir, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc") {
        paths.push_back(it->path());
      }
    }
    if (ec) {
      if (error) *error = "cannot walk " + dir.string() + ": " + ec.message();
      return false;
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      if (error) *error = "cannot read " + p.string();
      return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string rel =
        fs::relative(p, fs::path(root)).generic_string();
    out->push_back({rel, ss.str()});
  }
  return true;
}

}  // namespace lolint
