#include "symbols.hpp"

#include <algorithm>

namespace lolint {
namespace {

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool ident_start(char c) { return ident_char(c) && !(c >= '0' && c <= '9'); }

bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }
bool is_text(const Token& t, const char* s) { return t.text == s; }

const char* const kMultiPunct[] = {
    "<<=", ">>=", "...", "::", "->", "++", "--", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=", "<<", ">>", "==", "!=", "<=", ">=", "&&",
    "||",
};

}  // namespace

std::vector<Token> tokenize(const std::string& stripped) {
  std::vector<Token> out;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen on this line so far
  std::size_t i = 0;
  const std::size_t n = stripped.size();
  while (i < n) {
    const char c = stripped[i];
    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive: drop through the end of the (continued) line.
      while (i < n) {
        if (stripped[i] == '\\' && i + 1 < n && stripped[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (stripped[i] == '\n') break;  // the '\n' itself is handled above
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(stripped[j])) ++j;
      out.push_back({TokKind::kIdent, stripped.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c >= '0' && c <= '9') {
      // Swallow pp-number-ish spellings: hex, suffixes, floats, exponents.
      std::size_t j = i;
      while (j < n && (ident_char(stripped[j]) || stripped[j] == '.' ||
                       stripped[j] == '\'')) {
        const char d = stripped[j];
        ++j;
        if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && j < n &&
            (stripped[j] == '+' || stripped[j] == '-')) {
          ++j;
        }
      }
      out.push_back({TokKind::kNumber, stripped.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: longest match from the multi-char table, else one char.
    std::string text(1, c);
    for (const char* m : kMultiPunct) {
      const std::size_t len = std::char_traits<char>::length(m);
      if (stripped.compare(i, len, m) == 0) {
        text = m;
        break;
      }
    }
    out.push_back({TokKind::kPunct, text, line});
    i += text.size();
  }
  return out;
}

namespace {

// ------------------------------------------------------------------ parser --

struct Frame {
  enum class Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;          // namespace / class name; "" otherwise
  int func_index = -1;       // into TuIndex::functions for kFunction
  std::size_t stmt_begin = 0;  // token index where the current statement began
};

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kSet = {
      "if",     "for",      "while",  "switch",   "catch",  "return",
      "sizeof", "alignof",  "decltype", "new",    "delete", "noexcept",
      "assert", "static_assert", "defined", "constexpr", "alignas",
  };
  return kSet;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : t_(std::move(toks)) {}

  TuIndex run() {
    const std::size_t n = t_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Token& tok = t_[i];
      if (is_ident(tok) && tok.text == "namespace" && !in_function()) {
        i = handle_namespace(i);
        continue;
      }
      if (is_ident(tok) && (tok.text == "class" || tok.text == "struct" ||
                            tok.text == "union") &&
          !in_function()) {
        const std::size_t adv = handle_class(i);
        if (adv != i) {
          i = adv;
          continue;
        }
        continue;  // elaborated type / fwd decl: fall through harmlessly
      }
      if (is_ident(tok) && tok.text == "enum" && !in_function()) {
        i = skip_enum(i);
        continue;
      }
      if (is_ident(tok) &&
          (tok.text == "static" || tok.text == "thread_local") &&
          in_function()) {
        // `static thread_local` carries two trigger tokens; record the
        // declaration once, at its first one.
        const bool preceded_by_trigger =
            i > 0 && is_ident(t_[i - 1]) &&
            (t_[i - 1].text == "static" || t_[i - 1].text == "thread_local");
        if (!preceded_by_trigger) record_local_static(i);
        continue;  // lookahead only; scope tracking continues token-by-token
      }
      if (tok.text == "{") {
        open_brace(i);
        continue;
      }
      if (tok.text == "}") {
        close_brace(i);
        continue;
      }
      if (tok.text == ";") {
        end_statement(i);
        continue;
      }
      if (at_class_scope() && is_ident(tok) &&
          (tok.text == "public" || tok.text == "private" ||
           tok.text == "protected") &&
          i + 1 < n && t_[i + 1].text == ":") {
        set_stmt_begin(i + 2);
        ++i;
        continue;
      }
    }
    idx_.tokens = std::move(t_);
    return std::move(idx_);
  }

 private:
  std::vector<Token> t_;
  std::vector<Frame> stack_;
  TuIndex idx_;
  std::size_t top_stmt_begin_ = 0;  // statement tracking at file scope

  bool in_function() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Frame::Kind::kFunction) return true;
      if (it->kind == Frame::Kind::kClass ||
          it->kind == Frame::Kind::kNamespace) {
        return false;
      }
    }
    return false;
  }

  bool at_class_scope() const {
    return !stack_.empty() && stack_.back().kind == Frame::Kind::kClass;
  }

  bool at_namespace_scope() const {
    return stack_.empty() || stack_.back().kind == Frame::Kind::kNamespace;
  }

  std::size_t stmt_begin() const {
    return stack_.empty() ? top_stmt_begin_ : stack_.back().stmt_begin;
  }

  void set_stmt_begin(std::size_t i) {
    if (stack_.empty()) {
      top_stmt_begin_ = i;
    } else {
      stack_.back().stmt_begin = i;
    }
  }

  std::string namespace_chain() const {
    std::string out;
    for (const auto& f : stack_) {
      if (f.kind != Frame::Kind::kNamespace) continue;
      if (!out.empty()) out += "::";
      out += f.name.empty() ? "<anon>" : f.name;
    }
    return out;
  }

  std::string class_chain() const {
    std::string out;
    for (const auto& f : stack_) {
      if (f.kind != Frame::Kind::kClass) continue;
      if (!out.empty()) out += "::";
      out += f.name;
    }
    return out;
  }

  std::string class_key() const {
    const std::string ns = namespace_chain();
    const std::string cls = class_chain();
    if (ns.empty()) return cls;
    return cls.empty() ? ns : ns + "::" + cls;
  }

  // --- namespace / class / enum headers ---

  std::size_t handle_namespace(std::size_t i) {
    std::string name;
    std::size_t j = i + 1;
    while (j < t_.size() &&
           (is_ident(t_[j]) || is_text(t_[j], "::"))) {
      name += t_[j].text;
      ++j;
    }
    if (j < t_.size() && is_text(t_[j], "{")) {
      stack_.push_back({Frame::Kind::kNamespace, name, -1, j + 1});
      return j;
    }
    // namespace alias / using-directive tail: let the main loop continue.
    return i;
  }

  // Returns the index to resume from (the '{' when a definition was entered).
  std::size_t handle_class(std::size_t i) {
    std::size_t j = i + 1;
    // Skip attributes: [[...]]
    while (j + 1 < t_.size() && is_text(t_[j], "[") && is_text(t_[j + 1], "[")) {
      int depth = 0;
      for (; j < t_.size(); ++j) {
        if (t_[j].text == "[") ++depth;
        else if (t_[j].text == "]" && --depth == 0) { ++j; break; }
      }
    }
    std::string name;
    while (j < t_.size() && (is_ident(t_[j]) || is_text(t_[j], "::"))) {
      if (is_ident(t_[j]) && t_[j].text != "final" &&
          t_[j].text != "alignas") {
        name = t_[j].text;  // last identifier wins (skips macro-ish prefixes)
      }
      ++j;
    }
    // Walk to '{' allowing a base clause; bail on ';' (fwd/elaborated) or '('.
    int angle = 0;
    for (; j < t_.size(); ++j) {
      const std::string& s = t_[j].text;
      if (s == "<") ++angle;
      else if (s == ">") angle = std::max(0, angle - 1);
      else if (s == ">>") angle = std::max(0, angle - 2);
      else if (s == "{" && angle == 0) {
        stack_.push_back({Frame::Kind::kClass, name, -1, j + 1});
        return j;
      } else if ((s == ";" || s == "(" || s == ")" || s == "=") && angle == 0) {
        break;
      }
    }
    return i;
  }

  std::size_t skip_enum(std::size_t i) {
    std::size_t j = i + 1;
    for (; j < t_.size(); ++j) {
      if (is_text(t_[j], ";")) return j;  // opaque enum declaration
      if (is_text(t_[j], "{")) break;
    }
    if (j >= t_.size()) return t_.size();
    int depth = 0;
    for (; j < t_.size(); ++j) {
      if (t_[j].text == "{") ++depth;
      else if (t_[j].text == "}" && --depth == 0) break;
    }
    set_stmt_begin(j + 1);
    return j;
  }

  // --- braces ---

  // Walks back from the '{' at index i to decide whether it opens a function
  // body; fills *name_idx with the function-name token index when it does.
  bool is_function_body(std::size_t i, std::size_t* name_idx) const {
    std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i) - 1;
    bool seen_arrow_target = false;
    while (k >= 0) {
      const Token& tk = t_[static_cast<std::size_t>(k)];
      if (tk.text == ")") {
        const std::ptrdiff_t open = match_back(k, "(", ")");
        if (open <= 0) return false;
        const Token& before = t_[static_cast<std::size_t>(open - 1)];
        // Skip qualifier-position macro/spec groups: noexcept(...), throw(),
        // LO_REQUIRES(...), __attribute__((...)).
        if (is_ident(before) &&
            (before.text == "noexcept" || before.text == "throw" ||
             before.text.rfind("LO_", 0) == 0 ||
             before.text == "__attribute__")) {
          k = open - 2;
          continue;
        }
        if (is_ident(before)) {
          if (control_keywords().count(before.text) != 0) return false;
          // Member-initializer-list entry: `: a_(1), b_(2) {` — keep walking.
          const std::ptrdiff_t sep = open - 2;
          if (sep >= 0 &&
              (t_[static_cast<std::size_t>(sep)].text == "," ||
               (t_[static_cast<std::size_t>(sep)].text == ":" &&
                !(sep > 0 &&
                  t_[static_cast<std::size_t>(sep - 1)].text == ":")))) {
            if (t_[static_cast<std::size_t>(sep)].text == ",") {
              k = sep - 1;
              continue;
            }
            // Reached the ':' that starts the init list: the token before it
            // must close the parameter list.
            k = sep - 1;
            if (k >= 0 && t_[static_cast<std::size_t>(k)].text == ")") continue;
            return false;
          }
          *name_idx = static_cast<std::size_t>(open - 1);
          return true;
        }
        return false;  // lambda `](...)`, cast `)(...)`, etc.
      }
      if (is_ident(tk)) {
        if (tk.text == "const" || tk.text == "noexcept" ||
            tk.text == "override" || tk.text == "final" ||
            tk.text == "mutable" || tk.text == "try") {
          --k;
          continue;
        }
        if (control_keywords().count(tk.text) != 0) return false;
        // Possibly part of a trailing return type; keep walking only if an
        // `->` shows up before anything else surprising.
        seen_arrow_target = true;
        --k;
        continue;
      }
      if (tk.text == "::" || tk.text == "<" || tk.text == ">" ||
          tk.text == ">>" || tk.text == "*" || tk.text == "&" ||
          tk.text == "&&" || tk.text == ",") {
        seen_arrow_target = true;
        --k;
        continue;
      }
      if (tk.text == "->" && seen_arrow_target) {
        --k;
        continue;
      }
      return false;
    }
    return false;
  }

  // Finds the matching `open` for the `close` at index k, walking backwards.
  std::ptrdiff_t match_back(std::ptrdiff_t k, const char* open,
                            const char* close) const {
    int depth = 0;
    for (; k >= 0; --k) {
      const std::string& s = t_[static_cast<std::size_t>(k)].text;
      if (s == close) ++depth;
      else if (s == open && --depth == 0) return k;
    }
    return -1;
  }

  void open_brace(std::size_t i) {
    std::size_t name_idx = 0;
    if (is_function_body(i, &name_idx)) {
      FunctionSymbol fn;
      fn.ns = namespace_chain();
      fn.name = t_[name_idx].text;
      fn.line = t_[name_idx].line;
      fn.body_begin = i;
      // Qualifier chain: `A::B::name(`  →  cls = "A::B". A leading '~' marks
      // a destructor.
      std::ptrdiff_t q = static_cast<std::ptrdiff_t>(name_idx) - 1;
      bool dtor = false;
      if (q >= 0 && t_[static_cast<std::size_t>(q)].text == "~") {
        dtor = true;
        --q;
      }
      std::string quals;
      while (q >= 1 && t_[static_cast<std::size_t>(q)].text == "::" &&
             is_ident(t_[static_cast<std::size_t>(q - 1)])) {
        const std::string& part = t_[static_cast<std::size_t>(q - 1)].text;
        quals = quals.empty() ? part : part + "::" + quals;
        q -= 2;
      }
      if (!quals.empty()) {
        fn.cls = quals;
      } else {
        fn.cls = class_chain();
      }
      const std::string last_cls =
          fn.cls.find("::") == std::string::npos
              ? fn.cls
              : fn.cls.substr(fn.cls.rfind("::") + 2);
      fn.is_ctor_or_dtor = dtor || (!last_cls.empty() && fn.name == last_cls);
      idx_.functions.push_back(fn);
      stack_.push_back({Frame::Kind::kFunction, fn.name,
                        static_cast<int>(idx_.functions.size() - 1), i + 1});
      return;
    }
    stack_.push_back({Frame::Kind::kBlock, "", -1, i + 1});
  }

  void close_brace(std::size_t i) {
    if (stack_.empty()) return;
    const Frame top = stack_.back();
    stack_.pop_back();
    if (top.kind == Frame::Kind::kFunction) {
      idx_.functions[static_cast<std::size_t>(top.func_index)].body_end = i;
      set_stmt_begin(i + 1);
    } else if (top.kind == Frame::Kind::kClass ||
               top.kind == Frame::Kind::kNamespace) {
      set_stmt_begin(i + 1);
    }
    // kBlock: keep the enclosing statement accumulating (brace-init etc.).
  }

  // --- statements ---

  void end_statement(std::size_t i) {
    const std::size_t b = stmt_begin();
    if (at_class_scope()) {
      classify_member_statement(b, i);
    } else if (at_namespace_scope()) {
      classify_namespace_statement(b, i);
    }
    set_stmt_begin(i + 1);
  }

  struct DeclInfo {
    std::string name;
    int line = 0;
    bool found = false;
    bool is_function = false;
    bool is_const = false;
    bool is_static = false;
    bool is_extern = false;
    bool is_thread_local = false;
    bool is_mutable_kw = false;
    bool is_mutex = false;
    bool is_atomic = false;
    bool guarded = false;
    bool skip = false;  // using/typedef/friend/nested-type/... statement
  };

  // Shared declaration scanner for class members and namespace-scope
  // variables: walks [b, e) at bracket depth 0, collecting decl-specifier
  // flags and locating the declarator name.
  DeclInfo scan_declaration(std::size_t b, std::size_t e) const {
    DeclInfo d;
    int angle = 0, paren = 0, brace = 0, square = 0;
    std::string last_ident;
    int last_ident_line = 0;
    bool prev_was_ident = false;
    for (std::size_t k = b; k < e; ++k) {
      const Token& tk = t_[k];
      const std::string& s = tk.text;
      if (s == "(") { ++paren; prev_was_ident = false; continue; }
      if (s == ")") { paren = std::max(0, paren - 1); prev_was_ident = false; continue; }
      if (s == "{") { ++brace; prev_was_ident = false; continue; }
      if (s == "}") { brace = std::max(0, brace - 1); prev_was_ident = false; continue; }
      if (s == "[") { ++square; prev_was_ident = false; continue; }
      if (s == "]") { square = std::max(0, square - 1); prev_was_ident = false; continue; }
      if (paren + brace + square > 0) { prev_was_ident = false; continue; }
      if (s == "<" && prev_was_ident) { ++angle; prev_was_ident = false; continue; }
      if (angle > 0) {
        // Mutex-ish / atomic wrappers may hide inside template args
        // (unique_ptr<Mutex>, atomic<bool>).
        if (is_ident(tk)) {
          if (s.find("Mutex") != std::string::npos || s == "mutex" ||
              s == "shared_mutex") {
            d.is_mutex = true;
          }
          if (s == "atomic") d.is_atomic = true;
        }
        if (s == ">") --angle;
        else if (s == ">>") angle = std::max(0, angle - 2);
        prev_was_ident = false;
        continue;
      }
      if (is_ident(tk)) {
        if (s == "using" || s == "typedef" || s == "friend" ||
            s == "template" || s == "static_assert" || s == "operator" ||
            s == "struct" || s == "class" || s == "enum" ||
            s == "namespace" || s == "union") {
          d.skip = true;
          return d;
        }
        if (s == "const" || s == "constexpr" || s == "consteval" ||
            s == "constinit") {
          d.is_const = true;
          prev_was_ident = false;
          continue;
        }
        if (s == "static") { d.is_static = true; prev_was_ident = false; continue; }
        if (s == "extern") { d.is_extern = true; prev_was_ident = false; continue; }
        if (s == "thread_local") { d.is_thread_local = true; prev_was_ident = false; continue; }
        if (s == "mutable") { d.is_mutable_kw = true; prev_was_ident = false; continue; }
        if (s == "inline" || s == "virtual" || s == "explicit" ||
            s == "volatile" || s == "register" || s == "unsigned" ||
            s == "signed" || s == "long" || s == "short") {
          prev_was_ident = (s == "unsigned" || s == "signed" || s == "long" ||
                            s == "short");
          if (prev_was_ident) { last_ident = s; last_ident_line = tk.line; }
          continue;
        }
        if (s == "LO_GUARDED_BY" || s == "LO_PT_GUARDED_BY") {
          d.guarded = true;
          if (!last_ident.empty()) {
            d.name = last_ident;
            d.line = last_ident_line;
            d.found = true;
          }
          // The annotation's (...) argument follows; depth tracking skips it.
          prev_was_ident = false;
          continue;
        }
        if (s.find("Mutex") != std::string::npos || s == "mutex" ||
            s == "shared_mutex") {
          d.is_mutex = true;
        }
        if (s == "atomic") d.is_atomic = true;
        last_ident = s;
        last_ident_line = tk.line;
        prev_was_ident = true;
        continue;
      }
      if (s == "=" || s == ";") {
        if (!d.found && !last_ident.empty()) {
          d.name = last_ident;
          d.line = last_ident_line;
          d.found = true;
        }
        if (s == "=") break;  // initializer follows; nothing more to learn
        prev_was_ident = false;
        continue;
      }
      prev_was_ident = false;
    }
    if (!d.found && !last_ident.empty()) {
      d.name = last_ident;
      d.line = last_ident_line;
      d.found = true;
    }
    return d;
  }

  // Did the declarator name come immediately before a '(' at depth 0 (i.e. a
  // function declaration rather than a variable)?
  bool looks_like_function_decl(std::size_t b, std::size_t e) const {
    int angle = 0, paren = 0, brace = 0, square = 0;
    bool prev_was_plain_ident = false;
    bool prev_was_ident_tok = false;
    for (std::size_t k = b; k < e; ++k) {
      const Token& tk = t_[k];
      const std::string& s = tk.text;
      if (angle > 0) {
        if (s == ">") --angle;
        else if (s == ">>") angle = std::max(0, angle - 2);
        else if (s == "<") ++angle;
        prev_was_plain_ident = prev_was_ident_tok = false;
        continue;
      }
      if (s == "(") {
        if (paren + brace + square == 0 && prev_was_plain_ident) return true;
        ++paren;
        prev_was_plain_ident = prev_was_ident_tok = false;
        continue;
      }
      if (s == ")") { paren = std::max(0, paren - 1); prev_was_plain_ident = prev_was_ident_tok = false; continue; }
      if (s == "{") { ++brace; prev_was_plain_ident = prev_was_ident_tok = false; continue; }
      if (s == "}") { brace = std::max(0, brace - 1); prev_was_plain_ident = prev_was_ident_tok = false; continue; }
      if (s == "[") { ++square; prev_was_plain_ident = prev_was_ident_tok = false; continue; }
      if (s == "]") { square = std::max(0, square - 1); prev_was_plain_ident = prev_was_ident_tok = false; continue; }
      if (paren + brace + square > 0) continue;
      if (s == "<" && prev_was_ident_tok) { ++angle; prev_was_plain_ident = prev_was_ident_tok = false; continue; }
      if (s == "=") return false;  // initializer: definitely a variable
      if (is_ident(tk)) {
        prev_was_ident_tok = true;
        // Annotation macros sit between name and init; a '(' after them is
        // the macro argument, not a parameter list.
        prev_was_plain_ident = !(tk.text.rfind("LO_", 0) == 0 ||
                                 tk.text == "noexcept" ||
                                 tk.text == "__attribute__");
        continue;
      }
      prev_was_plain_ident = false;
      prev_was_ident_tok = false;
    }
    return false;
  }

  void classify_member_statement(std::size_t b, std::size_t e) {
    if (b >= e) return;
    DeclInfo d = scan_declaration(b, e);
    if (d.skip || !d.found) return;
    if (looks_like_function_decl(b, e)) return;
    // Anchor at the statement's first line so a comment-line allow above a
    // multi-line declaration covers it.
    d.line = t_[b].line;
    if (d.is_static) {
      if (!d.is_const) {
        idx_.statics.push_back({StaticSymbol::Scope::kClassStatic, d.name,
                                d.line, d.is_const, d.is_thread_local,
                                d.is_extern});
      }
      return;
    }
    FieldSymbol f;
    f.class_key = class_key();
    f.name = d.name;
    f.line = d.line;
    f.is_const = d.is_const;
    f.is_static = d.is_static;
    f.is_mutable_kw = d.is_mutable_kw;
    f.is_mutex = d.is_mutex;
    f.is_atomic = d.is_atomic;
    f.guarded = d.guarded;
    idx_.fields.push_back(f);
    if (f.guarded) idx_.capability_classes.insert(f.class_key);
  }

  void classify_namespace_statement(std::size_t b, std::size_t e) {
    if (b >= e) return;
    // extern "C" linkage specs tokenize as `extern " ... "` — skip them.
    if (e - b >= 2 && is_text(t_[b], "extern") && t_[b + 1].text == "\"") {
      return;
    }
    const DeclInfo d = scan_declaration(b, e);
    if (d.skip || !d.found) return;
    if (looks_like_function_decl(b, e)) return;
    idx_.statics.push_back({StaticSymbol::Scope::kNamespace, d.name,
                            t_[b].line, d.is_const, d.is_thread_local,
                            d.is_extern});
  }

  // Function-local `static` / `thread_local` declaration at token i.
  void record_local_static(std::size_t i) {
    // Find the statement end without consuming (initializers may hold
    // lambdas whose braces the main loop still needs to see).
    std::size_t e = i;
    int paren = 0, brace = 0;
    for (; e < t_.size(); ++e) {
      const std::string& s = t_[e].text;
      if (s == "(") ++paren;
      else if (s == ")") paren = std::max(0, paren - 1);
      else if (s == "{") ++brace;
      else if (s == "}") {
        if (brace == 0) break;
        --brace;
      } else if ((s == ";" || s == "=") && paren + brace == 0) {
        break;
      }
    }
    const DeclInfo d = scan_declaration(i, e);
    if (d.skip || !d.found) return;
    // `static const Field f(8);` style ctor-init is a variable at function
    // scope, so no function-decl check here — but a name directly followed by
    // '(' with an empty flag set would be noise; require static/thread_local,
    // which the trigger token guarantees.
    if (!(d.is_static || d.is_thread_local)) return;
    idx_.statics.push_back({StaticSymbol::Scope::kFunctionLocal, d.name,
                            t_[i].line, d.is_const, d.is_thread_local,
                            d.is_extern});
  }
};

}  // namespace

TuIndex index_tu(const std::string& stripped) {
  Parser p(tokenize(stripped));
  return p.run();
}

}  // namespace lolint
