// lolint CLI — scans src/, tests/ and bench/ of the repo rooted at --root
// (default: the current directory) and prints every finding as
//   <file>:<line>: error: [<rule>] <message>
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lolint.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [subdir...]\n"
               "  Lints DIR/<subdir> for determinism & protocol-safety "
               "violations.\n"
               "  Default subdirs: src tests bench\n"
               "  Rules: banned-source unordered-iter float-in-protocol\n"
               "         relative-include serde-symmetry mutable-static\n"
               "         unguarded-field thread-local-protocol\n"
               "         hot-path-alloc serde-field-coverage (+ bad-allow)\n"
               "  Suppress one finding with:\n"
               "    // lolint:allow(<rule-id>) reason=<why it is safe>\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool dump_names = false;
  std::vector<std::string> subdirs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump-names") == 0) {
      dump_names = true;
    } else if (std::strcmp(argv[i], "--root") == 0) {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 2;
      }
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      subdirs.push_back(argv[i]);
    }
  }
  if (subdirs.empty()) subdirs = {"src", "tests", "bench"};

  std::vector<lolint::FileInput> files;
  std::string error;
  if (!lolint::load_tree(root, subdirs, &files, &error)) {
    std::fprintf(stderr, "lolint: %s\n", error.c_str());
    return 2;
  }
  if (files.empty()) {
    std::fprintf(stderr, "lolint: no sources found under %s\n", root.c_str());
    return 2;
  }

  if (dump_names) {
    const auto names = lolint::collect_unordered_names(files);
    for (const auto& n : names.global) std::printf("global %s\n", n.c_str());
    for (const auto& [file, set] : names.local) {
      for (const auto& n : set) {
        std::printf("local  %s  %s\n", file.c_str(), n.c_str());
      }
    }
    return 0;
  }

  const auto findings = lolint::lint_files(files);
  for (const auto& f : findings) {
    std::printf("%s:%d: error: [%s] %s\n", f.file.c_str(), f.line,
                f.rule.c_str(), f.message.c_str());
  }
  std::printf("lolint: %zu file(s) scanned, %zu finding(s)\n", files.size(),
              findings.size());
  return findings.empty() ? 0 : 1;
}
