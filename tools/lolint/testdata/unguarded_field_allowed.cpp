// lolint corpus: the unguarded_field.cpp capability class with ownership
// allows attached to both written-but-unannotated members — lints clean.
#include <cstdint>

struct Mutex {
  void lock();
  void unlock();
};

class Ledger {
 public:
  void deposit(std::uint64_t amount) {
    balance_ += amount;
    ++unguarded_ops_;
    last_amount_ = amount;
  }

 private:
  mutable Mutex mu_;
  std::uint64_t balance_ LO_GUARDED_BY(mu_) = 0;
  // lolint:allow(unguarded-field) reason=single-writer statistic; torn reads acceptable
  std::uint64_t unguarded_ops_ = 0;
  // lolint:allow(unguarded-field) reason=single-writer statistic; torn reads acceptable
  std::uint64_t last_amount_ = 0;
};
