// lolint corpus: floating point in protocol state / on the wire fires
// [float-in-protocol].
#include <cstdint>
#include <vector>

struct Writer;

struct ScoredEntry {
  std::uint64_t id = 0;
  double score = 0.0;
  float weight = 0.0f;

  void serialize(std::vector<std::uint8_t>& out) const;
  static ScoredEntry deserialize(const std::uint8_t* p, std::size_t n);
};

void write_score(Writer& w, double s);
