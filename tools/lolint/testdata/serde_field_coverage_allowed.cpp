// lolint corpus: the Lopsided asymmetry with an allow on the read() body —
// the deliberate skip (a padding field consumed as a block elsewhere) is
// documented and the fixture lints clean.
#include <cstdint>

struct Writer;
struct Reader;
void put(Writer& w, std::uint64_t v);
std::uint64_t take(Reader& r);

struct Lopsided {
  std::uint64_t seq = 0;
  std::uint64_t spare = 0;

  void write(Writer& w) const;
  static Lopsided read(Reader& r);
};

void Lopsided::write(Writer& w) const {
  put(w, seq);
  put(w, spare);
}

// lolint:allow(serde-field-coverage) reason=spare is consumed by the framing layer, not per-field
Lopsided Lopsided::read(Reader& r) {
  Lopsided out;
  out.seq = take(r);
  return out;
}
