// lolint corpus: malformed annotations spelled with the v2 rule ids each
// fire [bad-allow] — a missing reason, an empty reason, and a misspelled
// rule id.
// lolint:allow(mutable-static)
int first();
// lolint:allow(hot-path-alloc) reason=
int second();
// lolint:allow(unguarded-fields) reason=misspelled rule id
int third();
