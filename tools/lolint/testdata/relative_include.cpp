// lolint corpus: includes escaping the -Isrc include root fire
// [relative-include].
#include "../util/serde.hpp"
#include "./sibling_helper.hpp"
#include "core/messages.hpp"

int uses_nothing() { return 0; }
