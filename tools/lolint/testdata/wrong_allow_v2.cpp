// lolint corpus: a well-formed allow naming a *sibling* concurrency rule does
// not suppress — the thread_local finding must survive the mutable-static
// allow, and no bad-allow may appear (the annotation itself is valid).
struct Workspace {
  int scratch;
};

Workspace& local_workspace() {
  // lolint:allow(mutable-static) reason=names the wrong rule on purpose
  thread_local Workspace ws;
  return ws;
}
