// lolint corpus: every [hot-path-alloc] site from hot_path_alloc.cpp with an
// amortization-argument allow attached — lints clean.
#include <cstdint>
#include <memory>
#include <vector>

struct ScopedProfile {
  explicit ScopedProfile(int site);
};

std::vector<std::uint64_t> decode_hot(std::size_t n) {
  ScopedProfile prof(1);
  std::vector<std::uint64_t> out;
  // lolint:allow(hot-path-alloc) reason=one sized reserve per call, amortized
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // lolint:allow(hot-path-alloc) reason=appends into the reserved capacity
    out.push_back(i);
  }
  // lolint:allow(hot-path-alloc) reason=scratch allocated once per call by design
  auto scratch = std::make_unique<std::uint64_t[]>(n);
  // lolint:allow(hot-path-alloc) reason=scratch allocated once per call by design
  auto* raw = new std::uint64_t[n];
  delete[] raw;
  return out;
}
