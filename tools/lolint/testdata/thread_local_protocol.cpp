// lolint corpus: thread_local storage outside the gf/obs workspace allowlist
// fires [thread-local-protocol] — both the bare form and the combined
// `static thread_local` spelling (which must produce exactly one finding,
// not one per storage keyword).
#include <cstdint>

struct Workspace {
  std::uint64_t scratch[64];
};

Workspace& local_workspace() {
  thread_local Workspace ws;  // fires
  return ws;
}

std::uint64_t bump_epoch() {
  static thread_local std::uint64_t epoch = 0;  // fires exactly once
  return ++epoch;
}
