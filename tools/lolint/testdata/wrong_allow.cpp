// lolint corpus: an allow annotation suppresses EXACTLY the rule it names —
// naming a different rule leaves the real finding standing.
#include <unordered_map>

int walk() {
  std::unordered_map<int, int> m;
  int total = 0;
  // lolint:allow(banned-source) reason=deliberately names the wrong rule
  for (const auto& kv : m) total += kv.second;
  return total;
}
