// lolint corpus: a class that declares any LO_GUARDED_BY field is a
// "capability class" — its other mutable members written from methods must
// either carry an annotation or an explicit ownership allow. Two unannotated
// written fields fire [unguarded-field]; the guarded field, the mutex itself
// and a never-written constant stay silent. A class with no annotations at
// all (Freeform) is out of scope by design.
#include <cstdint>

struct Mutex {
  void lock();
  void unlock();
};

class Ledger {
 public:
  void deposit(std::uint64_t amount) {
    balance_ += amount;     // guarded field: silent
    ++unguarded_ops_;       // unannotated field write -> finding at its decl
    last_amount_ = amount;  // second unannotated write -> finding at its decl
  }

 private:
  mutable Mutex mu_;
  std::uint64_t balance_ LO_GUARDED_BY(mu_) = 0;
  std::uint64_t unguarded_ops_ = 0;
  std::uint64_t last_amount_ = 0;
  const std::uint64_t genesis_ = 7;
};

class Freeform {
 public:
  void tick() { ++count_; }  // no capability declared anywhere: silent

 private:
  std::uint64_t count_ = 0;
};
