// lolint corpus: every [mutable-static] site from mutable_static.cpp, each
// carrying a well-formed allow — the fixture must lint completely clean.
#include <cstdint>

// lolint:allow(mutable-static) reason=corpus fixture exercising the annotation
extern std::uint64_t g_total_bytes;
// lolint:allow(mutable-static) reason=corpus fixture exercising the annotation
std::uint64_t g_total_msgs = 0;
static int g_retry_budget = 3;  // lolint:allow(mutable-static) reason=same-line form

struct Telemetry {
  // lolint:allow(mutable-static) reason=corpus fixture exercising the annotation
  static std::uint64_t inflight;
};

int bump() {
  // lolint:allow(mutable-static) reason=corpus fixture exercising the annotation
  static int calls = 0;
  return ++calls;
}
