// lolint corpus: malformed annotations fire [bad-allow] — unknown rule id,
// and a known id with no reason.
// lolint:allow(no-such-rule) reason=the rule id does not exist
int first();
// lolint:allow(unordered-iter)
int second();
