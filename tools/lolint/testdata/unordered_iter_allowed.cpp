// lolint corpus: the same unordered iterations, each annotated — zero
// findings expected. One loop demonstrates the sorted_keys() exemption.
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace util {
template <typename C>
std::vector<typename C::key_type> sorted_keys(const C&);
}

struct Tracker {
  std::unordered_map<int, int> peers_;
  std::unordered_set<int> seen_;

  int member_range_for() const {
    int total = 0;
    // lolint:allow(unordered-iter) reason=commutative fold for the corpus
    for (const auto& [k, v] : peers_) total += v;
    return total;
  }

  int member_sorted_walk() const {
    int total = 0;
    for (int k : util::sorted_keys(seen_)) total += k;
    return total;
  }
};

int local_range_for() {
  std::unordered_map<int, int> m;
  int total = 0;
  // lolint:allow(unordered-iter) reason=commutative fold for the corpus
  for (const auto& kv : m) total += kv.second;
  return total;
}
