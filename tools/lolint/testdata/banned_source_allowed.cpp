// lolint corpus: the same banned sources, each justified by an allow
// annotation — must produce zero findings.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int ok_rand() {
  return std::rand();  // lolint:allow(banned-source) reason=corpus fixture exercising same-line suppression
}

unsigned ok_device() {
  // lolint:allow(banned-source) reason=corpus fixture exercising next-line suppression
  std::random_device rd;
  return rd();
}

long ok_wall_clock() {
  // lolint:allow(banned-source) reason=wall-clock stopwatch never feeds protocol state
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long ok_steady_clock() {
  // lolint:allow(banned-source) reason=wall-clock stopwatch never feeds protocol state
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

const char* ok_env() {
  return std::getenv("HOME");  // lolint:allow(banned-source) reason=corpus fixture
}

long ok_time() {
  return time(nullptr);  // lolint:allow(banned-source) reason=corpus fixture
}
