// lolint corpus: thread_local sites carrying the documented-exception allow —
// lints clean anywhere in the tree.
#include <cstdint>

struct Workspace {
  std::uint64_t scratch[64];
};

Workspace& local_workspace() {
  // lolint:allow(thread-local-protocol) reason=per-thread workspace documented in DESIGN.md
  thread_local Workspace ws;
  return ws;
}

std::uint64_t bump_epoch() {
  // lolint:allow(thread-local-protocol) reason=per-thread workspace documented in DESIGN.md
  static thread_local std::uint64_t epoch = 0;
  return ++epoch;
}
