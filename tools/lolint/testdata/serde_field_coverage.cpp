// lolint corpus: field-level write()/read() asymmetry fires
// [serde-field-coverage]. Lopsided emits `spare` in write() but read() never
// mentions it — one finding, anchored at the read() body. Balanced touches
// every field on both sides and stays silent.
#include <cstdint>

struct Writer;
struct Reader;
void put(Writer& w, std::uint64_t v);
std::uint64_t take(Reader& r);

struct Lopsided {
  std::uint64_t seq = 0;
  std::uint64_t fee = 0;
  std::uint64_t spare = 0;

  void write(Writer& w) const;
  static Lopsided read(Reader& r);
};

void Lopsided::write(Writer& w) const {
  put(w, seq);
  put(w, fee);
  put(w, spare);  // emitted here, never consumed below
}

Lopsided Lopsided::read(Reader& r) {
  Lopsided out;
  out.seq = take(r);
  out.fee = take(r);
  return out;
}

struct Balanced {
  std::uint64_t nonce = 0;

  void write(Writer& w) const;
  static Balanced read(Reader& r);
};

void Balanced::write(Writer& w) const { put(w, nonce); }

Balanced Balanced::read(Reader& r) {
  Balanced out;
  out.nonce = take(r);
  return out;
}
