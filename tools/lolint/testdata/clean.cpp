// lolint corpus: a well-behaved protocol file — zero findings even under a
// protocol pseudo-path.
#include <cstdint>
#include <map>
#include <vector>

struct Entry {
  std::uint64_t id = 0;
  std::uint64_t fee_microunits = 0;  // fixed point, never float

  void serialize(std::vector<std::uint8_t>& out) const;
  static Entry deserialize(const std::uint8_t* p, std::size_t n);
};

std::uint64_t total_fees(const std::map<std::uint64_t, Entry>& ordered) {
  std::uint64_t sum = 0;
  for (const auto& [id, e] : ordered) sum += e.fee_microunits;
  return sum;
}
