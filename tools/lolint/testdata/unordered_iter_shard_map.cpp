// lolint corpus: hash-order iteration over the sharded-pipeline map shapes —
// per-(peer, shard) state keyed by the packed ps_key `(node << 8) | shard`.
// Walking these in bucket order makes message emission depend on the hash
// seed, which breaks replay determinism the moment k > 1. Two loops fire
// [unordered-iter]; the sorted_keys() walk is the sanctioned alternative and
// must stay silent.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace util {
template <typename C>
std::vector<typename C::key_type> sorted_keys(const C&);
}

struct Bundle {
  std::uint64_t seqno;
};

struct ShardedMirrors {
  // ps_key(peer, shard) -> seqno -> mirrored bundle, one entry per shard log.
  std::unordered_map<std::uint64_t, std::unordered_map<std::uint64_t, Bundle>>
      mirrors_;
  std::unordered_map<std::uint64_t, std::uint64_t> outstanding_sync_;

  std::uint64_t hash_order_flush() const {
    std::uint64_t acc = 0;
    for (const auto& [ps, by_seq] : mirrors_) acc += ps + by_seq.size();
    return acc;
  }

  std::uint64_t hash_order_retries() const {
    std::uint64_t acc = 0;
    for (auto it = outstanding_sync_.begin(); it != outstanding_sync_.end();
         ++it) {
      acc += it->second;
    }
    return acc;
  }

  std::uint64_t sorted_walk() const {
    std::uint64_t acc = 0;
    for (std::uint64_t ps : util::sorted_keys(outstanding_sync_)) acc += ps;
    return acc;
  }
};
