// lolint corpus: iteration over unordered containers in a protocol path —
// three distinct shapes, each fires [unordered-iter].
#include <unordered_map>
#include <unordered_set>

struct Tracker {
  std::unordered_map<int, int> peers_;
  std::unordered_set<int> seen_;

  int member_range_for() const {
    int total = 0;
    for (const auto& [k, v] : peers_) total += v;
    return total;
  }

  int member_iterator_loop() const {
    int total = 0;
    for (auto it = seen_.begin(); it != seen_.end(); ++it) total += *it;
    return total;
  }
};

int local_range_for() {
  std::unordered_map<int, int> m;
  int total = 0;
  for (const auto& kv : m) total += kv.second;
  return total;
}
