// lolint corpus: allocation inside a ScopedProfile-instrumented function
// fires [hot-path-alloc] — reserve, push_back growth, make_unique and bare
// new each count. The identical allocations in an uninstrumented helper stay
// silent: the rule keys on the profiling scope, not the call names alone.
#include <cstdint>
#include <memory>
#include <vector>

struct ScopedProfile {
  explicit ScopedProfile(int site);
};

std::vector<std::uint64_t> decode_hot(std::size_t n) {
  ScopedProfile prof(1);
  std::vector<std::uint64_t> out;
  out.reserve(n);  // fires
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(i);  // fires
  }
  auto scratch = std::make_unique<std::uint64_t[]>(n);  // fires
  auto* raw = new std::uint64_t[n];                     // fires
  delete[] raw;
  return out;
}

std::vector<std::uint64_t> assemble_cold(std::size_t n) {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(i);
  }
  return out;
}
