// lolint corpus: mutable process-global state fires [mutable-static] at
// namespace scope, for extern declarations, for class-level statics and for
// function-local statics. Constants stay silent, and thread_local is the
// business of [thread-local-protocol], not this rule.
#include <cstdint>

extern std::uint64_t g_total_bytes;  // fires: extern mutable declaration
std::uint64_t g_total_msgs = 0;      // fires: namespace-scope global
static int g_retry_budget = 3;       // fires: internal-linkage global
constexpr int kWindow = 16;          // silent: constant
const int kDepth = 4;                // silent: constant

struct Telemetry {
  static std::uint64_t inflight;   // fires: class-level static
  static constexpr int kMax = 8;   // silent: constant
  int local_counter = 0;           // silent: plain instance member
};

int bump() {
  static int calls = 0;       // fires: function-local mutable static
  static const int base = 7;  // silent: function-local constant
  return ++calls + base;
}
