// lolint corpus: a struct that serializes but never deserializes fires
// [serde-symmetry].
#include <cstdint>
#include <vector>

struct OneWay {
  std::uint32_t a = 0;

  void serialize(std::vector<std::uint8_t>& out) const;
};

struct RoundTrip {
  std::uint32_t a = 0;

  void serialize(std::vector<std::uint8_t>& out) const;
  static RoundTrip deserialize(const std::uint8_t* p, std::size_t n);
};
