// lolint corpus: every banned nondeterminism source fires [banned-source].
// Not compiled — consumed as text by tests/test_lolint.cpp under a pseudo
// protocol path.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int bad_rand() { return std::rand(); }

unsigned bad_device() {
  std::random_device rd;
  return rd();
}

long bad_wall_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long bad_steady_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

const char* bad_env() { return std::getenv("LOLINT_SECRET"); }

long bad_time() { return time(nullptr); }
