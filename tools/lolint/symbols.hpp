// lolint v2 symbol layer — a preprocessor-aware tokenizer and a per-TU
// symbol index built by a scope-stack mini-parser.
//
// This is deliberately not a real C++ parser: it tracks just enough structure
// (namespace / class / function nesting, member-field declarations, static
// and thread_local declarations, function bodies) for the concurrency rules
// to reason about *symbols* instead of raw lines. Inputs are expected to be
// comment-stripped (lolint::strip_comments) so literals and comments cannot
// fake declarations; preprocessor directives are dropped during tokenization
// for the same reason.
//
// Known, accepted approximations (the dynamic tests are the backstop):
//   - constructors using member-initializer lists with brace-init are parsed
//     as plain blocks (their bodies are then invisible to the write scan —
//     conservative, since ctor writes are exempt anyway);
//   - multi-declarator statements (`int a, b;`) index the first name only;
//   - template metaprogramming beyond ordinary `template <...>` headers is
//     not modeled.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace lolint {

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;  // 1-based
};

// Tokenizes comment-stripped C++ source. Preprocessor directives (from a
// line-leading '#' through the end of the line, following backslash
// continuations) produce no tokens.
std::vector<Token> tokenize(const std::string& stripped);

// A data member of a class/struct.
struct FieldSymbol {
  std::string class_key;  // fully scoped: ns::...::Class[::Nested]
  std::string name;
  int line = 0;
  bool is_const = false;      // const / constexpr anywhere in the decl-specifiers
  bool is_static = false;     // static data member
  bool is_mutable_kw = false; // declared C++ `mutable`
  bool is_mutex = false;      // type mentions Mutex/ShardMutex/mutex/shared_mutex
  bool is_atomic = false;     // type mentions atomic
  bool guarded = false;       // LO_GUARDED_BY / LO_PT_GUARDED_BY present
};

// A function with a body in this TU (free function, in-class method, or
// out-of-line member definition).
struct FunctionSymbol {
  std::string ns;         // enclosing namespace chain ("lo::core"), may be ""
  std::string cls;        // enclosing class chain or the `X::` qualifier; ""
  std::string name;
  int line = 0;           // line of the function name token
  std::size_t body_begin = 0;  // token index of the opening '{'
  std::size_t body_end = 0;    // token index of the matching '}'
  bool is_ctor_or_dtor = false;
};

// A namespace-scope variable, class-level static, or function-local
// static/thread_local declaration.
struct StaticSymbol {
  enum class Scope { kNamespace, kClassStatic, kFunctionLocal };
  Scope scope = Scope::kNamespace;
  std::string name;
  int line = 0;
  bool is_const = false;
  bool is_thread_local = false;
  bool is_extern = false;
};

struct TuIndex {
  std::vector<Token> tokens;
  std::vector<FieldSymbol> fields;
  std::vector<FunctionSymbol> functions;
  std::vector<StaticSymbol> statics;
  // Class keys that declare at least one LO_GUARDED_BY/LO_PT_GUARDED_BY field
  // in this TU.
  std::set<std::string> capability_classes;
};

// Builds the symbol index for one comment-stripped translation unit.
TuIndex index_tu(const std::string& stripped);

}  // namespace lolint
