// Fig. 8 — time until a transaction is included in a block.
//   Left:  LØ's canonical 'FIFO' ordering vs the conventional 'Highest Fee'
//          selection, at an Ethereum-like 12 s mean block time.
//   Right: block-inclusion latency as a function of the system size.
//
// Paper shape (Sec. 6.3): FIFO mean ~3 s vs Highest-Fee ~7-8 s with much
// larger variance (low-fee transactions starve under fee ordering). Absolute
// numbers depend on the blockspace budget; the crossing (FIFO < Highest-Fee,
// Highest-Fee heavy-tailed) is the reproduced claim.
#include <algorithm>

#include "bench_common.hpp"

namespace lo {
namespace {

enum class Policy { kFifo, kHighestFee };

struct PolicyResult {
  double mean_s = 0;
  double p50_s = 0;
  double p99_s = 0;
  double stddev_s = 0;
  std::size_t included = 0;
  double low_fee_mean_s = 0;   // bottom fee quartile
  double high_fee_mean_s = 0;  // top fee quartile
  std::size_t left_pending = 0;  // never included within the horizon
};

// Simulates block production over a running LØ network with a bounded
// blockspace. FIFO = the canonical commitment order (LØ's policy);
// HighestFee = conventional fee-priority selection from the same mempool.
PolicyResult run_policy(Policy policy, std::size_t n, double seconds,
                        double tps, std::uint64_t seed) {
  auto cfg = bench::base_config(n, seed);
  harness::LoNetwork net(cfg);
  net.start_workload(bench::base_workload(tps, seed * 3), 1);

  // Random miner selection => memoryless block arrivals: exponential gaps
  // with a 12 s mean (Sec. 6.3). Long gaps create backlogs beyond the
  // blockspace budget; that contention is what separates FIFO from
  // Highest-Fee ordering.
  const double block_interval_s = 12.0;
  const std::size_t capacity =
      static_cast<std::size_t>(tps * block_interval_s * 1.15);

  sim::Samples latency;
  std::vector<std::pair<std::uint64_t, double>> fee_latency;  // (fee, latency)
  std::unordered_set<core::TxId, core::TxIdHash> settled;
  util::Rng leader_rng(seed * 17);

  double next_block_at = leader_rng.next_exponential(block_interval_s);
  while (next_block_at < seconds) {
    net.run_for(next_block_at - sim::to_seconds(net.sim().now()));
    const auto leader = leader_rng.next_below(net.size());
    auto& node = net.node(leader);

    // Candidates: known content, valid, not yet settled — in commitment
    // (received) order, exactly what create_block would use.
    std::vector<const core::Transaction*> candidates;
    for (const auto& id : node.log().order()) {
      if (settled.count(id) != 0) continue;
      const auto* tx = node.get_tx(id);
      if (tx != nullptr) candidates.push_back(tx);
    }
    if (policy == Policy::kHighestFee) {
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const auto* a, const auto* b) { return a->fee > b->fee; });
    }
    if (candidates.size() > capacity) candidates.resize(capacity);

    const double now_s = sim::to_seconds(net.sim().now());
    for (const auto* tx : candidates) {
      settled.insert(tx->id);
      const double lat = now_s - sim::to_seconds(tx->created_at);
      latency.add(lat);
      fee_latency.emplace_back(tx->fee, lat);
    }
    next_block_at += leader_rng.next_exponential(block_interval_s);
  }

  PolicyResult r;
  r.mean_s = latency.mean();
  r.p50_s = latency.percentile(0.5);
  r.p99_s = latency.percentile(0.99);
  r.stddev_s = latency.stddev();
  r.included = latency.count();
  r.left_pending = net.txs_injected() - latency.count();

  // Fee-quartile means: this is where Highest-Fee starvation shows.
  std::sort(fee_latency.begin(), fee_latency.end());
  const std::size_t q = fee_latency.size() / 4;
  if (q > 0) {
    double lo_sum = 0, hi_sum = 0;
    for (std::size_t i = 0; i < q; ++i) lo_sum += fee_latency[i].second;
    for (std::size_t i = fee_latency.size() - q; i < fee_latency.size(); ++i) {
      hi_sum += fee_latency[i].second;
    }
    r.low_fee_mean_s = lo_sum / static_cast<double>(q);
    r.high_fee_mean_s = hi_sum / static_cast<double>(q);
  }
  return r;
}

}  // namespace
}  // namespace lo

int main(int argc, char** argv) {
  const auto args = lo::bench::parse_args(argc, argv, 96, 180.0);
  lo::bench::print_header(
      "Fig. 8 — block inclusion latency: FIFO vs Highest-Fee; vs system size",
      "Nasrulin et al., Middleware'23, Fig. 8 (left + right)");

  std::printf("[left] nodes=%zu horizon=%.0fs tps=20 block=12s\n\n",
              args.num_nodes, args.seconds);
  std::printf("%-12s %-8s %-8s %-8s %-9s %-9s %-11s %-11s %-8s\n", "policy",
              "mean[s]", "p50[s]", "p99[s]", "stddev", "lowfee[s]",
              "highfee[s]", "included", "starved");
  for (auto policy : {lo::Policy::kFifo, lo::Policy::kHighestFee}) {
    const auto r = lo::run_policy(policy, args.num_nodes, args.seconds, 20.0,
                                  args.seed);
    std::printf("%-12s %-8.2f %-8.2f %-8.2f %-9.2f %-9.2f %-11.2f %-11zu %-8zu\n",
                policy == lo::Policy::kFifo ? "FIFO" : "HighestFee", r.mean_s,
                r.p50_s, r.p99_s, r.stddev_s, r.low_fee_mean_s,
                r.high_fee_mean_s, r.included, r.left_pending);
  }
  std::printf(
      "\nexpected shape: under Highest-Fee the bottom fee quartile waits far\n"
      "longer than the top quartile and more txs starve past the horizon;\n"
      "FIFO treats both alike (the paper's 'much larger variation, with many\n"
      "low-fee transactions experiencing very high latency'). Work-conserving\n"
      "policies share the same overall mean (conservation law), so the shape\n"
      "lives in the tails, not the mean.\n\n");

  std::printf("[right] FIFO latency vs system size (horizon=%.0fs):\n\n",
              args.seconds / 2);
  std::printf("%-10s %-10s %-10s\n", "nodes", "mean[s]", "p99[s]");
  for (std::size_t n : {32u, 64u, 128u, 192u}) {
    const auto r =
        lo::run_policy(lo::Policy::kFifo, n, args.seconds / 2, 20.0, args.seed);
    std::printf("%-10zu %-10.2f %-10.2f\n", n, r.mean_s, r.p99_s);
  }
  std::printf("\nexpected shape: mild growth with network size.\n");
  return 0;
}
