// Shared helpers for the figure-reproduction benches. Each bench binary
// regenerates one table/figure of the paper's evaluation (Sec. 6) and prints
// the same series the paper reports. Scales default to laptop-friendly sizes
// (see DESIGN.md, substitution 3) and are overridable via argv:
//   bench_figX [num_nodes] [seconds] [seed]
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/lo_network.hpp"

namespace lo::bench {

struct Args {
  std::size_t num_nodes;
  double seconds;
  std::uint64_t seed;
};

inline Args parse_args(int argc, char** argv, std::size_t def_nodes,
                       double def_seconds, std::uint64_t def_seed = 1) {
  Args a{def_nodes, def_seconds, def_seed};
  if (argc > 1) a.num_nodes = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) a.seconds = std::atof(argv[2]);
  if (argc > 3) a.seed = static_cast<std::uint64_t>(std::atoll(argv[3]));
  return a;
}

// All benches run with kSimFast signatures: identical wire sizes and protocol
// behavior, no curve arithmetic dominating wall-clock (bench_crypto measures
// the real Ed25519 separately).
inline harness::NetworkConfig base_config(std::size_t n, std::uint64_t seed) {
  harness::NetworkConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = seed;
  cfg.city_latency = true;
  cfg.node.sig_mode = crypto::SignatureMode::kSimFast;
  cfg.node.prevalidation.sig_mode = crypto::SignatureMode::kSimFast;
  return cfg;
}

inline workload::WorkloadConfig base_workload(double tps, std::uint64_t seed) {
  workload::WorkloadConfig w;
  w.tps = tps;
  w.seed = seed;
  w.sig_mode = crypto::SignatureMode::kSimFast;
  return w;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace lo::bench
