// Shared helpers for the figure-reproduction benches. Each bench binary
// regenerates one table/figure of the paper's evaluation (Sec. 6) and prints
// the same series the paper reports. Scales default to laptop-friendly sizes
// (see DESIGN.md, substitution 3) and are overridable via argv:
//   bench_figX [num_nodes] [seconds] [seed]
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "harness/lo_network.hpp"

namespace lo::bench {

struct Args {
  std::size_t num_nodes;
  double seconds;
  std::uint64_t seed;
};

inline Args parse_args(int argc, char** argv, std::size_t def_nodes,
                       double def_seconds, std::uint64_t def_seed = 1) {
  Args a{def_nodes, def_seconds, def_seed};
  if (argc > 1) a.num_nodes = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) a.seconds = std::atof(argv[2]);
  if (argc > 3) a.seed = static_cast<std::uint64_t>(std::atoll(argv[3]));
  return a;
}

// All benches run with kSimFast signatures: identical wire sizes and protocol
// behavior, no curve arithmetic dominating wall-clock (bench_crypto measures
// the real Ed25519 separately).
inline harness::NetworkConfig base_config(std::size_t n, std::uint64_t seed) {
  harness::NetworkConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = seed;
  cfg.city_latency = true;
  cfg.node.sig_mode = crypto::SignatureMode::kSimFast;
  cfg.node.prevalidation.sig_mode = crypto::SignatureMode::kSimFast;
  return cfg;
}

inline workload::WorkloadConfig base_workload(double tps, std::uint64_t seed) {
  workload::WorkloadConfig w;
  w.tps = tps;
  w.seed = seed;
  w.sig_mode = crypto::SignatureMode::kSimFast;
  return w;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

// Minimal machine-readable results writer for the figure-reproduction
// binaries, mirroring the google-benchmark JSON schema that bench_crypto and
// bench_minisketch emit (top-level "context" + "benchmarks" array with
// name/iterations/real_time/items_per_second), so one parser handles every
// BENCH_*.json artifact CI uploads.
class JsonReport {
 public:
  JsonReport(std::string path, std::string suite)
      : path_(std::move(path)), suite_(std::move(suite)) {}

  // `real_time_ns` is the (simulated or measured) duration backing the rate;
  // `items_per_second` is the headline series value for the figure.
  void add(const std::string& name, double real_time_ns,
           double items_per_second) {
    entries_.push_back({name, real_time_ns, items_per_second});
  }

  // Writes the file; returns false (and prints to stderr) on I/O failure so
  // smoke runs notice a missing artifact.
  bool write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"context\": {\n    \"bench_suite\": \"%s\"\n  },\n",
                 suite_.c_str());
    std::fprintf(f, "  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const auto& e = entries_[i];
      std::fprintf(f,
                   "    {\n"
                   "      \"name\": \"%s\",\n"
                   "      \"run_name\": \"%s\",\n"
                   "      \"run_type\": \"iteration\",\n"
                   "      \"iterations\": 1,\n"
                   "      \"real_time\": %.6g,\n"
                   "      \"cpu_time\": %.6g,\n"
                   "      \"time_unit\": \"ns\",\n"
                   "      \"items_per_second\": %.6g\n"
                   "    }%s\n",
                   e.name.c_str(), e.name.c_str(), e.real_time_ns,
                   e.real_time_ns, e.items_per_second,
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double real_time_ns;
    double items_per_second;
  };
  std::string path_;
  std::string suite_;
  std::vector<Entry> entries_;
};

}  // namespace lo::bench
