// Fig. 7 — density distribution of the time needed for a miner to include a
// transaction into its mempool.
//
// Paper setup (Sec. 6.3): default parameters (20 tps, reconciliation with 3
// random neighbors every second). Paper result: convergence after contact
// with 5-6 nodes; average discovery latency 1.14 s, density peaked around
// one reconciliation round.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = lo::bench::parse_args(argc, argv, 200, 60.0);
  lo::bench::print_header(
      "Fig. 7 — density of per-miner mempool inclusion latency",
      "Nasrulin et al., Middleware'23, Fig. 7");

  auto cfg = lo::bench::base_config(args.num_nodes, args.seed);
  lo::harness::LoNetwork net(cfg);
  net.start_workload(lo::bench::base_workload(20.0, args.seed * 7), 1);
  net.run_for(args.seconds);

  auto& lat = net.mempool_latency();
  std::printf("nodes=%zu horizon=%.0fs samples=%zu\n\n", args.num_nodes,
              args.seconds, lat.count());
  std::printf("mean   = %.3f s   (paper: 1.14 s)\n", lat.mean());
  std::printf("median = %.3f s\n", lat.percentile(0.5));
  std::printf("p90    = %.3f s\n", lat.percentile(0.9));
  std::printf("p99    = %.3f s\n", lat.percentile(0.99));
  std::printf("max    = %.3f s\n\n", lat.max());

  std::printf("density histogram (latency[s] -> density):\n");
  const auto hist = lat.histogram(24, 0.0, 6.0);
  double peak = 0;
  for (const auto& b : hist) peak = std::max(peak, b.density);
  for (const auto& b : hist) {
    const int bar = peak > 0 ? static_cast<int>(b.density / peak * 50) : 0;
    std::printf("%5.2f-%5.2f | %7.4f %s\n", b.lo, b.hi, b.density,
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  std::printf(
      "\nexpected shape: unimodal, peak within the first 1-2 reconciliation\n"
      "rounds, thin tail beyond ~4 s.\n");
  return 0;
}
