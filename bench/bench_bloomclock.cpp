// Bloom Clock micro-benchmarks: the cheap first stage of LØ's two-stage
// reconciliation (Sec. 4.2) must stay orders of magnitude cheaper than a
// sketch decode for the design to pay off.
#include <benchmark/benchmark.h>

#include "bloomclock/bloom_clock.hpp"
#include "util/rng.hpp"

namespace {

using lo::bloom::BloomClock;

void BM_ClockAdd(benchmark::State& state) {
  BloomClock c(static_cast<std::size_t>(state.range(0)), 1);
  lo::util::Rng rng(1);
  for (auto _ : state) {
    c.add(rng.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClockAdd)->Arg(32)->Arg(128)->Arg(1024);

void BM_ClockCompare(benchmark::State& state) {
  BloomClock a(32, 1), b(32, 1);
  lo::util::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next();
    a.add(v);
    b.add(v);
  }
  for (int i = 0; i < 20; ++i) b.add(rng.next());
  for (auto _ : state) {
    auto o = a.compare(b);
    benchmark::DoNotOptimize(o);
  }
}
BENCHMARK(BM_ClockCompare);

void BM_ClockL1Distance(benchmark::State& state) {
  BloomClock a(32, 1), b(32, 1);
  lo::util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) a.add(rng.next());
  for (int i = 0; i < 1000; ++i) b.add(rng.next());
  for (auto _ : state) {
    auto d = a.l1_distance(b);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ClockL1Distance);

void BM_ClockSerialize(benchmark::State& state) {
  BloomClock c(32, 1);
  lo::util::Rng rng(4);
  for (int i = 0; i < 200; ++i) c.add(rng.next());
  for (auto _ : state) {
    auto bytes = c.serialize();
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_ClockSerialize);

void BM_ClockMerge(benchmark::State& state) {
  BloomClock a(32, 1), b(32, 1);
  lo::util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    a.add(rng.next());
    b.add(rng.next());
  }
  for (auto _ : state) {
    BloomClock m = a;
    m.merge(b);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_ClockMerge);

}  // namespace

BENCHMARK_MAIN();
