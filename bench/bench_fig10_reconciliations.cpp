// Fig. 10 — average number of reconciliations in LØ per minute per node as a
// function of the workload.
//
// Paper context (Sec. 6.5): the hash-partitioned reconciliation keeps sketch
// decoding cheap, so the count of reconciliation operations (sync exchanges
// that actually move data, plus the escalated sketch decodes) grows with the
// workload. Reproduced series: both counters per node-minute across a tps
// sweep.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = lo::bench::parse_args(argc, argv, 100, 60.0);
  lo::bench::print_header(
      "Fig. 10 — reconciliations per minute per node vs workload",
      "Nasrulin et al., Middleware'23, Fig. 10");
  std::printf("nodes=%zu horizon=%.0fs\n\n", args.num_nodes, args.seconds);
  std::printf("%-14s %-26s %-26s\n", "workload[tps]", "sync-recons/node/min",
              "sketch-decodes/node/min");

  // Machine-readable copy of both series (same schema as BENCH_crypto.json /
  // BENCH_minisketch.json); CI uploads it as an artifact.
  lo::bench::JsonReport report("BENCH_reconcile.json", "lo-reconcile");

  for (double tps : {2.0, 5.0, 10.0, 20.0, 40.0, 80.0}) {
    auto cfg = lo::bench::base_config(args.num_nodes, args.seed);
    lo::harness::LoNetwork net(cfg);
    net.start_workload(lo::bench::base_workload(tps, args.seed * 3), 1);
    net.run_for(args.seconds);

    std::uint64_t recons = 0;
    std::uint64_t decodes = 0;
    for (std::size_t i = 0; i < net.size(); ++i) {
      recons += net.node(i).sync_reconciliations();
      decodes += net.node(i).sketch_decodes();
    }
    const double minutes = args.seconds / 60.0;
    const auto nodes = static_cast<double>(net.size());
    const double recon_rate = static_cast<double>(recons) / nodes / minutes;
    const double decode_rate = static_cast<double>(decodes) / nodes / minutes;
    std::printf("%-14.0f %-26.1f %-26.1f\n", tps, recon_rate, decode_rate);
    const double horizon_ns = args.seconds * 1e9;  // simulated horizon
    report.add("Fig10/SyncReconsPerNodeMin/tps:" +
                   std::to_string(static_cast<int>(tps)),
               horizon_ns, recon_rate);
    report.add("Fig10/SketchDecodesPerNodeMin/tps:" +
                   std::to_string(static_cast<int>(tps)),
               horizon_ns, decode_rate);
  }
  if (!report.write()) return 1;
  std::printf(
      "\nexpected shape: reconciliation rate grows with the workload and\n"
      "saturates near the sync budget (3 neighbors x 60 rounds per minute).\n"
      "Decodes track the exchange rate — one per handled request — plus the\n"
      "rare clock-flagged consistency escalations.\n");
  return 0;
}
