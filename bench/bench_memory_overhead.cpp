// Sec. 6.5 — memory overhead of LØ.
//
// Paper numbers: commitment size ~1.17 KB at 120 tx/min growing to ~9.36 KB
// at 24,000 tx/min; storing commitments for all 10,000 network nodes costs
// ~87 MB; overall extra storage ~10 MB at 10,000 nodes / 20 tps.
//
// This bench measures (a) serialized commitment-message sizes under
// different workloads (header + the explicit delta that accompanies it in a
// sync exchange), (b) per-node accountability memory in a live network, and
// (c) the extrapolation to the paper's 10,000-node scale.
#include "bench_common.hpp"

#include "core/messages.hpp"

int main(int argc, char** argv) {
  const auto args = lo::bench::parse_args(argc, argv, 100, 30.0);
  lo::bench::print_header("Sec. 6.5 — memory overhead",
                          "Nasrulin et al., Middleware'23, Sec. 6.5");

  // (a) Commitment message size vs workload: the wire commitment is the
  // header (clock + sketch + sig) plus the delta ids accumulated since the
  // previous exchange (1 s reconciliation interval).
  std::printf("[a] commitment message size vs workload (1 s recon interval)\n\n");
  std::printf("%-20s %-18s %-14s\n", "workload[tx/min]", "delta ids/round",
              "size[KiB]");
  lo::core::CommitmentParams params;
  lo::core::CommitmentHeader header(params);
  const double header_kib = static_cast<double>(header.wire_size()) / 1024.0;
  for (double tpm : {120.0, 600.0, 2400.0, 24000.0}) {
    const double per_round = tpm / 60.0;  // ids accumulated per second
    const double size_kib =
        header_kib + per_round * lo::core::kTxIdWire / 1024.0;
    std::printf("%-20.0f %-18.1f %-14.2f\n", tpm, per_round, size_kib);
  }
  std::printf("(paper: ~1.17 KiB at 120 tx/min, ~9.36 KiB at 24,000 tx/min)\n\n");

  // (b) measured per-node accountability memory in a live network.
  auto cfg = lo::bench::base_config(args.num_nodes, args.seed);
  lo::harness::LoNetwork net(cfg);
  net.start_workload(lo::bench::base_workload(20.0, args.seed * 3), 1);
  net.run_for(args.seconds);

  std::uint64_t total_mem = 0;
  std::uint64_t total_commitments = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    total_mem += net.node(i).accountability_memory_bytes();
    total_commitments += net.node(i).registry().commitments_stored();
  }
  const double per_node_kib =
      static_cast<double>(total_mem) / static_cast<double>(net.size()) / 1024.0;
  std::printf(
      "[b] live network: nodes=%zu tps=20 horizon=%.0fs\n"
      "    accountability memory/node = %.1f KiB "
      "(stored commitments/node = %.1f)\n\n",
      args.num_nodes, args.seconds, per_node_kib,
      static_cast<double>(total_commitments) / static_cast<double>(net.size()));

  // (c) extrapolation to the paper's scale: a miner holding the latest
  // commitment of every one of 10,000 nodes.
  const double full_scale_mb =
      static_cast<double>(header.wire_size()) * 10000.0 / 1024.0 / 1024.0;
  std::printf(
      "[c] extrapolation: latest commitment of all 10,000 nodes =\n"
      "    %zu B x 10,000 = %.1f MiB   (paper: ~87 MB upper bound)\n",
      header.wire_size(), full_scale_mb);
  std::printf(
      "\nexpected shape: commitment size grows linearly with workload from\n"
      "~1 KiB; full-network commitment storage in the tens of MB; per-node\n"
      "steady-state overhead orders of magnitude below that.\n");
  return 0;
}
