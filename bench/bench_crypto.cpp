// Crypto micro-benchmarks: SHA-256/512 throughput and Ed25519 operations.
// Supporting measurements — the paper's protocol signs every commitment and
// block, so these bound the non-simulated CPU cost per protocol message.
#include <benchmark/benchmark.h>

#include "crypto/ed25519.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "util/rng.hpp"

namespace {

using namespace lo::crypto;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  lo::util::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

void BM_Sha256(benchmark::State& state) {
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto d = sha256(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(250)->Arg(4096)->Arg(65536);

void BM_Sha512(benchmark::State& state) {
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto d = sha512(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(250)->Arg(4096)->Arg(65536);

void BM_Ed25519KeyGen(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto kp = derive_keypair(++i, SignatureMode::kEd25519);
    benchmark::DoNotOptimize(kp);
  }
}
BENCHMARK(BM_Ed25519KeyGen)->Unit(benchmark::kMicrosecond);

void BM_Ed25519Sign(benchmark::State& state) {
  const auto kp = derive_keypair(7, SignatureMode::kEd25519);
  const auto msg = random_bytes(250, 3);  // one paper-sized transaction
  for (auto _ : state) {
    auto sig = ed25519_sign(kp.seed, msg);
    benchmark::DoNotOptimize(sig);
  }
}
BENCHMARK(BM_Ed25519Sign)->Unit(benchmark::kMicrosecond);

void BM_Ed25519Verify(benchmark::State& state) {
  const auto kp = derive_keypair(7, SignatureMode::kEd25519);
  const auto msg = random_bytes(250, 3);
  const auto sig = ed25519_sign(kp.seed, msg);
  for (auto _ : state) {
    bool ok = ed25519_verify(kp.pub, msg, sig);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Ed25519Verify)->Unit(benchmark::kMicrosecond);

void BM_SimFastSign(benchmark::State& state) {
  const Signer s(derive_keypair(9, SignatureMode::kSimFast),
                 SignatureMode::kSimFast);
  const auto msg = random_bytes(250, 4);
  for (auto _ : state) {
    auto sig = s.sign(msg);
    benchmark::DoNotOptimize(sig);
  }
}
BENCHMARK(BM_SimFastSign);

}  // namespace

BENCHMARK_MAIN();
