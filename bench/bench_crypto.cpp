// Crypto micro-benchmarks: SHA-256/512 throughput and Ed25519 operations.
// Supporting measurements — the paper's protocol signs every commitment and
// block, so these bound the non-simulated CPU cost per protocol message.
//
// The Ed25519 verify path is benchmarked in four tiers (see DESIGN.md
// "verify fast path"):
//   BM_Ed25519VerifyReference — the pre-optimization generic double-and-add
//     verifier, kept in the tree as a differential oracle ("before");
//   BM_Ed25519Verify          — window-table + Straus verify ("after");
//   BM_Ed25519VerifyPrepared  — same, with the public key decompressed once;
//   BM_VerifyCache*           — the node-level LRU/memo layers on top.
//
// Besides the console table, this binary always writes machine-readable
// results to BENCH_crypto.json in the working directory (google-benchmark
// JSON schema; items_per_second is the ops/s figure). CI uploads the file as
// an artifact so verify-throughput regressions show up in the history.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/ed25519.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "crypto/verify_cache.hpp"
#include "util/rng.hpp"

namespace {

using namespace lo::crypto;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  lo::util::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

void BM_Sha256(benchmark::State& state) {
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto d = sha256(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(250)->Arg(4096)->Arg(65536);

void BM_Sha512(benchmark::State& state) {
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto d = sha512(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(250)->Arg(4096)->Arg(65536);

void BM_Ed25519KeyGen(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto kp = derive_keypair(++i, SignatureMode::kEd25519);
    benchmark::DoNotOptimize(kp);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Ed25519KeyGen)->Unit(benchmark::kMicrosecond);

void BM_Ed25519Sign(benchmark::State& state) {
  const auto kp = derive_keypair(7, SignatureMode::kEd25519);
  const auto msg = random_bytes(250, 3);  // one paper-sized transaction
  for (auto _ : state) {
    auto sig = ed25519_sign(kp.seed, msg);
    benchmark::DoNotOptimize(sig);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Ed25519Sign)->Unit(benchmark::kMicrosecond);

// "Before": generic double-and-add for both scalar multiplications, no
// precomputed tables. This is the seed repo's verifier, preserved as
// ed25519_verify_reference for differential testing and this baseline.
void BM_Ed25519VerifyReference(benchmark::State& state) {
  const auto kp = derive_keypair(7, SignatureMode::kEd25519);
  const auto msg = random_bytes(250, 3);
  const auto sig = ed25519_sign(kp.seed, msg);
  for (auto _ : state) {
    bool ok = ed25519_verify_reference(kp.pub, msg, sig);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Ed25519VerifyReference)->Unit(benchmark::kMicrosecond);

// "After": fixed-base window table + Straus interleaving, including the
// per-call public key decompression.
void BM_Ed25519Verify(benchmark::State& state) {
  const auto kp = derive_keypair(7, SignatureMode::kEd25519);
  const auto msg = random_bytes(250, 3);
  const auto sig = ed25519_sign(kp.seed, msg);
  for (auto _ : state) {
    bool ok = ed25519_verify(kp.pub, msg, sig);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Ed25519Verify)->Unit(benchmark::kMicrosecond);

// Key decompressed once up front — the steady state for a peer whose key sits
// in the node's key cache.
void BM_Ed25519VerifyPrepared(benchmark::State& state) {
  const auto kp = derive_keypair(7, SignatureMode::kEd25519);
  const auto msg = random_bytes(250, 3);
  const auto sig = ed25519_sign(kp.seed, msg);
  const auto prepared = ed25519_prepare(kp.pub);
  for (auto _ : state) {
    bool ok = ed25519_verify_prepared(*prepared, msg, sig);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Ed25519VerifyPrepared)->Unit(benchmark::kMicrosecond);

// Full VerifyCache path on fresh messages from one key: every call is a memo
// miss (capacity 1) but a key-cache hit — curve math plus cache overhead.
void BM_VerifyCacheKeyHitFreshMessage(benchmark::State& state) {
  const auto kp = derive_keypair(7, SignatureMode::kEd25519);
  Signer s(kp, SignatureMode::kEd25519);
  constexpr std::size_t kBatch = 64;
  std::vector<std::vector<std::uint8_t>> msgs;
  std::vector<Signature> sigs;
  for (std::size_t i = 0; i < kBatch; ++i) {
    msgs.push_back(random_bytes(250, 100 + i));
    sigs.push_back(s.sign(msgs.back()));
  }
  VerifyCache cache(/*key_capacity=*/8, /*memo_capacity=*/1);
  std::size_t i = 0;
  for (auto _ : state) {
    bool ok = cache.verify(SignatureMode::kEd25519, kp.pub, msgs[i % kBatch],
                           sigs[i % kBatch]);
    benchmark::DoNotOptimize(ok);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VerifyCacheKeyHitFreshMessage)->Unit(benchmark::kMicrosecond);

// Duplicate delivery of one already-verified message: pure memo hit, the
// cost a node pays when the same signed commitment arrives via two peers.
void BM_VerifyCacheMemoHit(benchmark::State& state) {
  const auto kp = derive_keypair(7, SignatureMode::kEd25519);
  Signer s(kp, SignatureMode::kEd25519);
  const auto msg = random_bytes(250, 5);
  const auto sig = s.sign(msg);
  VerifyCache cache;
  bool warm = cache.verify(SignatureMode::kEd25519, kp.pub, msg, sig);
  benchmark::DoNotOptimize(warm);
  for (auto _ : state) {
    bool ok = cache.verify(SignatureMode::kEd25519, kp.pub, msg, sig);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VerifyCacheMemoHit);

void BM_SimFastSign(benchmark::State& state) {
  const Signer s(derive_keypair(9, SignatureMode::kSimFast),
                 SignatureMode::kSimFast);
  const auto msg = random_bytes(250, 4);
  for (auto _ : state) {
    auto sig = s.sign(msg);
    benchmark::DoNotOptimize(sig);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimFastSign);

}  // namespace

// Custom main: default --benchmark_out to BENCH_crypto.json (working
// directory) so CI and scripts get machine-readable numbers without having
// to remember the flag; an explicit --benchmark_out still wins. Console
// output is unchanged.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_crypto.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::AddCustomContext("bench_suite", "lo-crypto");
  benchmark::AddCustomContext("verify_before", "BM_Ed25519VerifyReference");
  benchmark::AddCustomContext("verify_after", "BM_Ed25519Verify");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
