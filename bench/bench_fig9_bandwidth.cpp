// Fig. 9 — bandwidth overhead of LØ vs Flood, PeerReview and Narwhal.
//
// Paper setup (Sec. 6.4): 200 nodes, identical workload; transaction bodies
// are excluded from "overhead" since all protocols pay them equally.
// Paper shape: LØ >= 4x cheaper than Flood, ~20x cheaper than PeerReview;
// Narwhal costs 7-10x more than LØ but is 1-2 s faster.
#include "baselines/common.hpp"
#include "baselines/flood.hpp"
#include "baselines/narwhal.hpp"
#include "baselines/peerreview.hpp"
#include "bench_common.hpp"

namespace lo {
namespace {

struct ProtocolRow {
  const char* name;
  double overhead_kib_per_node;  // total overhead / nodes over the horizon
  double overhead_bps_per_node;  // bytes/s/node
  double mempool_latency_s;
};

core::PrevalidationPolicy fast_preval() {
  core::PrevalidationPolicy p;
  p.sig_mode = crypto::SignatureMode::kSimFast;
  return p;
}

baselines::BaselineNetConfig baseline_net(std::size_t n, std::uint64_t seed) {
  baselines::BaselineNetConfig cfg;
  cfg.num_nodes = n;
  cfg.seed = seed;
  cfg.city_latency = true;
  return cfg;
}

ProtocolRow run_lo(std::size_t n, double seconds, double tps,
                   std::uint64_t seed) {
  auto cfg = bench::base_config(n, seed);
  harness::LoNetwork net(cfg);
  net.start_workload(bench::base_workload(tps, seed * 3), 1);
  net.run_for(seconds);
  const auto overhead =
      static_cast<double>(net.sim().bandwidth().bytes_excluding({"lo.txs"}));
  const auto nodes = static_cast<double>(n);
  return {"LO", overhead / 1024.0 / nodes, overhead / seconds / nodes,
          net.mempool_latency().mean()};
}

template <typename NodeT>
ProtocolRow run_baseline(const char* name, typename NodeT::Config node_cfg,
                         const char* tx_class, std::size_t n, double seconds,
                         double tps, std::uint64_t seed,
                         bool set_universe = false) {
  baselines::BaselineNetwork<NodeT> net(baseline_net(n, seed), node_cfg);
  if constexpr (std::is_same_v<NodeT, baselines::PeerReviewNode>) {
    if (set_universe) {
      for (std::size_t i = 0; i < net.size(); ++i) net.node(i).set_universe(n);
    }
  }
  net.start_workload(lo::bench::base_workload(tps, seed * 3), 1);
  net.run_for(seconds);
  const auto overhead =
      static_cast<double>(net.sim().bandwidth().bytes_excluding({tx_class}));
  const auto nodes = static_cast<double>(n);
  return {name, overhead / 1024.0 / nodes, overhead / seconds / nodes,
          net.mempool_latency().mean()};
}

}  // namespace
}  // namespace lo

int main(int argc, char** argv) {
  const auto args = lo::bench::parse_args(argc, argv, 200, 30.0);
  const double tps = 20.0;
  lo::bench::print_header(
      "Fig. 9 — bandwidth overhead: LO vs Flood vs PeerReview vs Narwhal",
      "Nasrulin et al., Middleware'23, Fig. 9 (+ Sec. 6.4 Narwhal numbers)");
  std::printf("nodes=%zu horizon=%.0fs tps=%.0f (tx bodies excluded)\n\n",
              args.num_nodes, args.seconds, tps);

  std::vector<lo::ProtocolRow> rows;
  rows.push_back(lo::run_lo(args.num_nodes, args.seconds, tps, args.seed));

  {
    lo::baselines::FloodNode::Config cfg;
    cfg.prevalidation = lo::fast_preval();
    rows.push_back(lo::run_baseline<lo::baselines::FloodNode>(
        "Flood", cfg, "flood.tx", args.num_nodes, args.seconds, tps, args.seed));
  }
  {
    lo::baselines::PeerReviewNode::Config cfg;
    cfg.prevalidation = lo::fast_preval();
    rows.push_back(lo::run_baseline<lo::baselines::PeerReviewNode>(
        "PeerReview", cfg, "pr.tx", args.num_nodes, args.seconds, tps,
        args.seed, /*set_universe=*/true));
  }
  {
    lo::baselines::NarwhalNode::Config cfg;
    cfg.prevalidation = lo::fast_preval();
    cfg.num_nodes = args.num_nodes;
    rows.push_back(lo::run_baseline<lo::baselines::NarwhalNode>(
        "Narwhal", cfg, "nw.batch", args.num_nodes, args.seconds, tps,
        args.seed));
  }

  const double lo_bps = rows[0].overhead_bps_per_node;
  std::printf("%-12s %-20s %-20s %-14s %-12s\n", "protocol",
              "overhead[KiB/node]", "overhead[B/s/node]", "vs LO", "latency[s]");
  for (const auto& r : rows) {
    std::printf("%-12s %-20.1f %-20.1f %-14.2f %-12.2f\n", r.name,
                r.overhead_kib_per_node, r.overhead_bps_per_node,
                r.overhead_bps_per_node / lo_bps, r.mempool_latency_s);
  }
  std::printf(
      "\nexpected shape: LO cheapest; Flood >= 4x LO; PeerReview ~20x LO;\n"
      "Narwhal 7-10x LO but with the lowest latency (1-2 s below LO).\n");
  return 0;
}
