// Ablation bench — quantifies the design choices DESIGN.md calls out:
//
//  (a) two-stage consistency checking (Bloom Clock screen, then Minisketch
//      decode) vs decoding on every observed commitment (Sec. 4.2's claimed
//      benefit of combining the two structures);
//  (b) difference-sized wire sketches (PinSketch prefix truncation) vs
//      fixed full-capacity sketches (the paper's 1,000-byte commitments);
//  (c) commitment-gossip probability vs how fast equivocation evidence meets
//      at a correct node (detection latency / bandwidth trade-off).
//
// Not a paper figure — this is the "why is the protocol shaped this way"
// companion to Figs. 9/10.
#include <chrono>

#include "bench_common.hpp"

namespace lo {
namespace {

struct AblationRow {
  std::uint64_t decodes = 0;
  double wall_s = 0;
  double overhead_bps_node = 0;
  double latency_s = 0;
};

AblationRow run_variant(bool two_stage, bool adaptive_sketch, std::size_t n,
                        double seconds, std::uint64_t seed) {
  auto cfg = bench::base_config(n, seed);
  cfg.node.two_stage_checks = two_stage;
  cfg.node.adaptive_wire_sketch = adaptive_sketch;
  harness::LoNetwork net(cfg);
  net.start_workload(bench::base_workload(20.0, seed * 3), 1);
  // lolint:allow(banned-source) reason=wall-clock stopwatch for the reported throughput column; never feeds protocol state or the simulation
  const auto t0 = std::chrono::steady_clock::now();
  net.run_for(seconds);
  AblationRow row;
  // lolint:allow(banned-source) reason=wall-clock stopwatch read for the reported throughput column; never feeds protocol state or the simulation
  const auto t1 = std::chrono::steady_clock::now();
  row.wall_s = std::chrono::duration<double>(t1 - t0).count();
  row.decodes = net.total_sketch_decodes();
  row.overhead_bps_node =
      static_cast<double>(net.sim().bandwidth().bytes_excluding({"lo.txs"})) /
      seconds / static_cast<double>(n);
  row.latency_s = net.mempool_latency().mean();
  return row;
}

double exposure_time(double gossip_probability, std::size_t n, double seconds,
                     std::uint64_t seed) {
  auto cfg = bench::base_config(n, seed);
  cfg.node.gossip_probability = gossip_probability;
  cfg.node.gossip_headers = gossip_probability > 0 ? 1 : 0;
  cfg.malicious_fraction = 0.1;
  cfg.malicious.equivocate = true;
  harness::LoNetwork net(cfg);
  net.start_workload(bench::base_workload(20.0, seed * 7), 1);
  net.run_for(seconds);
  return net.detection_times().exposure_complete_s;
}

}  // namespace
}  // namespace lo

int main(int argc, char** argv) {
  const auto args = lo::bench::parse_args(argc, argv, 100, 30.0);
  lo::bench::print_header(
      "Ablations — two-stage checks, adaptive sketches, gossip probability",
      "design choices of Sec. 4.2 (not a paper figure)");

  std::printf("[a+b] nodes=%zu horizon=%.0fs tps=20\n\n", args.num_nodes,
              args.seconds);
  std::printf("%-34s %-12s %-10s %-18s %-10s\n", "variant", "decodes",
              "wall[s]", "overhead[B/s/node]", "lat[s]");
  struct Variant {
    const char* name;
    bool two_stage;
    bool adaptive;
  };
  for (const auto& v :
       {Variant{"paper design (clock+adaptive)", true, true},
        Variant{"decode-always", false, true},
        Variant{"fixed full-size sketches", true, false},
        Variant{"both ablated", false, false}}) {
    const auto row = lo::run_variant(v.two_stage, v.adaptive, args.num_nodes,
                                     args.seconds, args.seed);
    std::printf("%-34s %-12llu %-10.2f %-18.1f %-10.2f\n", v.name,
                static_cast<unsigned long long>(row.decodes), row.wall_s,
                row.overhead_bps_node, row.latency_s);
  }
  std::printf(
      "\nexpected: disabling the clock screen multiplies decodes and wall\n"
      "time at identical protocol behavior; fixed-size sketches multiply\n"
      "bandwidth at identical latency.\n\n");

  std::printf("[c] exposure-completion time vs gossip probability "
              "(10%% equivocators):\n\n");
  std::printf("%-22s %-22s\n", "gossip probability", "exposure-complete[s]");
  for (double p : {0.0, 0.1, 0.34, 1.0}) {
    const double t = lo::exposure_time(p, args.num_nodes, 60.0, args.seed);
    std::printf("%-22.2f %-22s\n", p,
                t < 0 ? "incomplete" : std::to_string(t).substr(0, 6).c_str());
  }
  std::printf(
      "\nfinding: exposure completion is nearly flat in the gossip\n"
      "probability — a redundancy result. Sec. 5.2 lists several commitment\n"
      "dissemination channels (sync responses, blame messages with attached\n"
      "last-known commitments, suspicion self-defense); disabling the sync\n"
      "gossip alone leaves the blame channel carrying the evidence.\n");
  return 0;
}
