// Fig. 6 — time for LØ to suspect or expose malicious miners, as a function
// of the fraction of colluding censoring miners.
//
// Paper setup (Sec. 6.2): malicious miners censor transactions, commitments
// and blame messages, are fully interconnected, and the correct nodes remain
// connected among themselves. "Exposure" measures the time until every
// correct node knows the exposure; "Suspicion" measures the time until every
// correct node suspects every faulty node (requests must first time out).
//
// Paper shape: exposure converges ~6-7 s after first detection; suspicion is
// slower than exposure; both grow mildly with the malicious fraction.
#include "bench_common.hpp"

namespace lo {
namespace {

struct Row {
  double fraction;
  double suspicion_s;
  double exposure_s;
  double exposure_spread_s;  // per-attacker dissemination lag (paper metric)
};

Row run_fraction(std::size_t n, double fraction, double seconds,
                 std::uint64_t seed) {
  Row row{fraction, -1, -1, -1};

  // Suspicion series: silent censors (requests time out).
  {
    auto cfg = bench::base_config(n, seed);
    cfg.malicious_fraction = fraction;
    cfg.malicious.censor_txs = true;
    cfg.malicious.ignore_requests = true;
    cfg.malicious.drop_gossip = true;
    harness::LoNetwork net(cfg);
    net.start_workload(bench::base_workload(20.0, seed * 11), 1);
    net.run_for(seconds);
    row.suspicion_s = net.detection_times().suspicion_complete_s;
  }

  // Exposure series: equivocating censors (fork their commitment logs).
  {
    auto cfg = bench::base_config(n, seed + 1);
    cfg.malicious_fraction = fraction;
    cfg.malicious.equivocate = true;
    cfg.malicious.censor_txs = false;
    harness::LoNetwork net(cfg);
    net.start_workload(bench::base_workload(20.0, seed * 13), 1);
    net.run_for(seconds);
    const auto t = net.detection_times();
    row.exposure_s = t.exposure_complete_s;
    row.exposure_spread_s = t.exposure_spread_s;
  }
  return row;
}

}  // namespace
}  // namespace lo

int main(int argc, char** argv) {
  const auto args = lo::bench::parse_args(argc, argv, 100, 40.0);
  lo::bench::print_header(
      "Fig. 6 — detection time vs fraction of colluding malicious miners",
      "Nasrulin et al., Middleware'23, Fig. 6");
  std::printf("nodes=%zu horizon=%.0fs workload=20tps seed=%llu\n\n",
              args.num_nodes, args.seconds,
              static_cast<unsigned long long>(args.seed));
  std::printf("%-10s %-22s %-22s %-26s\n", "fraction",
              "suspicion-complete[s]", "exposure-complete[s]",
              "exposure-spread-per-node[s]");
  for (double fraction : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    const auto row =
        lo::run_fraction(args.num_nodes, fraction, args.seconds, args.seed);
    auto fmt = [](double v) {
      return v < 0 ? std::string("incomplete") : std::to_string(v).substr(0, 6);
    };
    std::printf("%-10.2f %-22s %-22s %-26s\n", row.fraction,
                fmt(row.suspicion_s).c_str(), fmt(row.exposure_s).c_str(),
                fmt(row.exposure_spread_s).c_str());
  }
  std::printf(
      "\nexpected shape: suspicion completes within a few timeout periods\n"
      "(1 s timeout x 3 retries + spread); exposure-complete is dominated by\n"
      "catching the last equivocator; the per-attacker dissemination spread\n"
      "(the paper's 6-7 s at 10,000 nodes) shrinks with network diameter.\n");
  return 0;
}
