// Sec. 6.5 — Minisketch encode/decode CPU cost and the hash-partitioned
// optimization.
//
// Paper claim: decoding a 1,000-element set difference with one big sketch
// takes ~10 s; partitioning the space and decoding many small sketches takes
// <100 ms. This bench reproduces the *ratio* (two to three orders of
// magnitude) with google-benchmark timings of both strategies.
#include <benchmark/benchmark.h>

#include "minisketch/partitioned.hpp"
#include "minisketch/sketch.hpp"
#include "util/rng.hpp"

namespace {

using lo::sketch::PartitionedReconciler;
using lo::sketch::Sketch;

std::vector<std::uint64_t> random_items(std::size_t n, std::uint64_t seed) {
  lo::util::Rng rng(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = rng.next();
  return out;
}

void BM_SketchAdd(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  Sketch s(32, capacity);
  lo::util::Rng rng(1);
  for (auto _ : state) {
    s.add(rng.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SketchAdd)->Arg(16)->Arg(64)->Arg(128)->Arg(1024);

// Single-sketch decode of a difference of `diff` elements using a sketch of
// matching capacity — the "one big sketch" strategy.
void BM_SingleSketchDecode(benchmark::State& state) {
  const auto diff = static_cast<std::size_t>(state.range(0));
  const auto items = random_items(diff, 42);
  Sketch base(32, diff);
  for (auto v : items) base.add(v);
  for (auto _ : state) {
    Sketch copy = base;
    auto out = copy.decode();
    benchmark::DoNotOptimize(out);
    if (!out || out->size() != diff) state.SkipWithError("decode failed");
  }
}
BENCHMARK(BM_SingleSketchDecode)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Partitioned reconciliation of the same difference with capacity-64
// sub-sketches — the paper's Sec. 6.5 optimization.
void BM_PartitionedReconcile(benchmark::State& state) {
  const auto diff = static_cast<std::size_t>(state.range(0));
  const auto shared = random_items(2000, 7);
  const auto extra = random_items(diff, 11);
  std::vector<std::uint64_t> a = shared;
  a.insert(a.end(), extra.begin(), extra.end());
  PartitionedReconciler pr(32, 64);
  for (auto _ : state) {
    auto out = pr.reconcile(a, shared, nullptr);
    benchmark::DoNotOptimize(out);
    if (!out || out->size() != diff) state.SkipWithError("reconcile failed");
  }
}
BENCHMARK(BM_PartitionedReconcile)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_SketchMerge(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  Sketch a(32, capacity), b(32, capacity);
  lo::util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    a.add(rng.next());
    b.add(rng.next());
  }
  for (auto _ : state) {
    Sketch c = a;
    c.merge(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SketchMerge)->Arg(64)->Arg(128)->Arg(1024);

void BM_SketchSerialize(benchmark::State& state) {
  Sketch s(32, 128);
  lo::util::Rng rng(5);
  for (int i = 0; i < 100; ++i) s.add(rng.next());
  for (auto _ : state) {
    auto bytes = s.serialize();
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_SketchSerialize);

}  // namespace

BENCHMARK_MAIN();
