// Sec. 6.5 — Minisketch encode/decode CPU cost and the hash-partitioned
// optimization.
//
// Paper claim: decoding a 1,000-element set difference with one big sketch
// takes ~10 s; partitioning the space and decoding many small sketches takes
// <100 ms. This bench reproduces the *ratio* (two to three orders of
// magnitude) with google-benchmark timings of both strategies.
//
// The codec fast path (DESIGN.md §3d) is benchmarked before/after style
// against the retained seed kernels, in the same run:
//   BM_FieldMul32Reference / BM_FieldSqr32Reference / BM_FieldInv32Reference
//     — the seed portable kernels, kept as the differential oracle;
//   BM_FieldMul32 / BM_FieldSqr32 / BM_FieldInv32
//     — clmul+Barrett multiply, byte-sliced squaring, Itoh–Tsujii inverse;
//   BM_SingleSketchDecodeReference — full decode over the reference-kernel
//     field, versus BM_SingleSketchDecode on the fast field.
//
// Besides the console table, this binary always writes machine-readable
// results to BENCH_minisketch.json in the working directory (google-benchmark
// JSON schema; items_per_second is the ops/s figure). CI uploads the file as
// an artifact so codec-throughput regressions show up in the history.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "minisketch/partitioned.hpp"
#include "minisketch/sketch.hpp"
#include "util/rng.hpp"

namespace {

using lo::gf::Field;
using lo::sketch::PartitionedReconciler;
using lo::sketch::Sketch;

std::vector<std::uint64_t> random_items(std::size_t n, std::uint64_t seed) {
  lo::util::Rng rng(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = rng.next();
  return out;
}

// Nonzero elements of GF(2^32) for the kernel micro-benches.
std::vector<std::uint64_t> random_elements(std::size_t n, std::uint64_t seed) {
  const Field& f = Field::get(32);
  lo::util::Rng rng(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = f.map_nonzero(rng.next());
  return out;
}

constexpr std::size_t kKernelBatch = 1024;

void BM_FieldMul32(benchmark::State& state) {
  const Field& f = Field::get(32);
  const auto a = random_elements(kKernelBatch, 21);
  const auto b = random_elements(kKernelBatch, 22);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kKernelBatch; ++i) acc ^= f.mul(a[i], b[i]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kKernelBatch));
}
BENCHMARK(BM_FieldMul32);

void BM_FieldMul32Reference(benchmark::State& state) {
  const Field& f = Field::get(32);
  const auto a = random_elements(kKernelBatch, 21);
  const auto b = random_elements(kKernelBatch, 22);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kKernelBatch; ++i) {
      acc ^= f.mul_reference(a[i], b[i]);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kKernelBatch));
}
BENCHMARK(BM_FieldMul32Reference);

void BM_FieldSqr32(benchmark::State& state) {
  const Field& f = Field::get(32);
  const auto a = random_elements(kKernelBatch, 23);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kKernelBatch; ++i) acc ^= f.sqr(a[i]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kKernelBatch));
}
BENCHMARK(BM_FieldSqr32);

void BM_FieldSqr32Reference(benchmark::State& state) {
  const Field& f = Field::get(32);
  const auto a = random_elements(kKernelBatch, 23);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kKernelBatch; ++i) acc ^= f.sqr_reference(a[i]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kKernelBatch));
}
BENCHMARK(BM_FieldSqr32Reference);

void BM_FieldInv32(benchmark::State& state) {
  const Field& f = Field::get(32);
  const auto a = random_elements(kKernelBatch, 24);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kKernelBatch; ++i) acc ^= f.inv(a[i]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kKernelBatch));
}
BENCHMARK(BM_FieldInv32);

void BM_FieldInv32Reference(benchmark::State& state) {
  const Field& f = Field::get(32);
  const auto a = random_elements(kKernelBatch, 24);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kKernelBatch; ++i) acc ^= f.inv_reference(a[i]);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kKernelBatch));
}
BENCHMARK(BM_FieldInv32Reference);

void BM_SketchAdd(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  Sketch s(32, capacity);
  lo::util::Rng rng(1);
  for (auto _ : state) {
    s.add(rng.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SketchAdd)->Arg(16)->Arg(64)->Arg(128)->Arg(1024);

void BM_SketchAddAll(benchmark::State& state) {
  // Batched insertion: same capacities as BM_SketchAdd, 256 items per call.
  const auto capacity = static_cast<std::size_t>(state.range(0));
  Sketch s(32, capacity);
  const auto items = random_items(256, 2);
  for (auto _ : state) {
    s.add_all(items);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(items.size()));
}
BENCHMARK(BM_SketchAddAll)->Arg(16)->Arg(64)->Arg(128)->Arg(1024);

// Single-sketch decode of a difference of `diff` elements using a sketch of
// matching capacity — the "one big sketch" strategy.
void BM_SingleSketchDecode(benchmark::State& state) {
  const auto diff = static_cast<std::size_t>(state.range(0));
  const auto items = random_items(diff, 42);
  Sketch base(32, diff);
  for (auto v : items) base.add(v);
  for (auto _ : state) {
    Sketch copy = base;
    auto out = copy.decode();
    benchmark::DoNotOptimize(out);
    if (!out || out->size() != diff) state.SkipWithError("decode failed");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleSketchDecode)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// The same decode over the reference-kernel field: seed loop multiply,
// sqr = mul, pow-ladder inverse. Kept to smaller sizes — the point is the
// per-size throughput ratio against BM_SingleSketchDecode, not the tail.
void BM_SingleSketchDecodeReference(benchmark::State& state) {
  const auto diff = static_cast<std::size_t>(state.range(0));
  const auto items = random_items(diff, 42);
  Sketch base(Field::get_reference(32), diff);
  for (auto v : items) base.add(v);
  for (auto _ : state) {
    Sketch copy = base;
    auto out = copy.decode();
    benchmark::DoNotOptimize(out);
    if (!out || out->size() != diff) state.SkipWithError("decode failed");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleSketchDecodeReference)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

// Partitioned reconciliation of the same difference with capacity-64
// sub-sketches — the paper's Sec. 6.5 optimization.
void BM_PartitionedReconcile(benchmark::State& state) {
  const auto diff = static_cast<std::size_t>(state.range(0));
  const auto shared = random_items(2000, 7);
  const auto extra = random_items(diff, 11);
  std::vector<std::uint64_t> a = shared;
  a.insert(a.end(), extra.begin(), extra.end());
  PartitionedReconciler pr(32, 64);
  for (auto _ : state) {
    auto out = pr.reconcile(a, shared, nullptr);
    benchmark::DoNotOptimize(out);
    if (!out || out->size() != diff) state.SkipWithError("reconcile failed");
  }
}
BENCHMARK(BM_PartitionedReconcile)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_SketchMerge(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  Sketch a(32, capacity), b(32, capacity);
  lo::util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    a.add(rng.next());
    b.add(rng.next());
  }
  for (auto _ : state) {
    Sketch c = a;
    c.merge(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SketchMerge)->Arg(64)->Arg(128)->Arg(1024);

void BM_SketchSerialize(benchmark::State& state) {
  Sketch s(32, 128);
  lo::util::Rng rng(5);
  for (int i = 0; i < 100; ++i) s.add(rng.next());
  for (auto _ : state) {
    auto bytes = s.serialize();
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_SketchSerialize);

}  // namespace

// Custom main: default --benchmark_out to BENCH_minisketch.json (working
// directory) so CI and scripts get machine-readable numbers without having
// to remember the flag; an explicit --benchmark_out still wins. Console
// output is unchanged.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_minisketch.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::AddCustomContext("bench_suite", "lo-minisketch");
  benchmark::AddCustomContext("decode_before", "BM_SingleSketchDecodeReference");
  benchmark::AddCustomContext("decode_after", "BM_SingleSketchDecode");
  benchmark::AddCustomContext(
      "gf32_kernel", lo::gf::Field::get(32).uses_clmul() ? "clmul+barrett"
                                                         : "portable");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
