// Scaling bench — LØ's per-node costs as the network grows, plus the
// observability overhead guard (BENCH_obs.json).
//
// The paper deployed 10,000 processes; this single-process reproduction runs
// smaller networks and uses this sweep to support the extrapolation argument
// (EXPERIMENTS.md): LØ's per-node overhead is governed by the local
// reconciliation budget (3 neighbors/second), not by the network size, while
// flooding-style protocols pay per edge.
//
// The final section reruns one fixed configuration twice — instrumentation
// disabled (the default everywhere) and fully traced (event tracer +
// profiling hooks on) — and records both wall times. The traced/disabled
// ratio is the overhead budget DESIGN.md commits to; CI keeps the artifact
// next to BENCH_crypto.json so regressions in the "disabled" fast path are
// visible in the same dashboard.
#include <chrono>

#include "bench_common.hpp"
#include "obs/profile.hpp"

namespace {

struct ObsRow {
  double wall_s = 0.0;
  std::uint64_t trace_events = 0;
  std::uint64_t txs = 0;
};

ObsRow run_obs_leg(std::size_t n, double seconds, std::uint64_t seed,
                   bool instrumented) {
  auto cfg = lo::bench::base_config(n, seed);
  cfg.trace = instrumented;
  cfg.trace_capacity = instrumented ? (1u << 20) : 0;  // keep every event
  lo::obs::profile::reset();
  lo::obs::profile::set_enabled(instrumented);
  lo::harness::LoNetwork net(cfg);
  net.start_workload(lo::bench::base_workload(20.0, seed * 3), 1);
  // lolint:allow(banned-source) reason=wall-clock stopwatch for the overhead guard column; never feeds protocol state or the simulation
  const auto t0 = std::chrono::steady_clock::now();
  net.run_for(seconds);
  // lolint:allow(banned-source) reason=wall-clock stopwatch read for the overhead guard column; never feeds protocol state or the simulation
  const auto t1 = std::chrono::steady_clock::now();
  lo::obs::profile::set_enabled(false);
  ObsRow row;
  row.wall_s = std::chrono::duration<double>(t1 - t0).count();
  row.trace_events = net.sim().obs().tracer.size() +
                     net.sim().obs().tracer.dropped();
  row.txs = net.txs_injected();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = lo::bench::parse_args(argc, argv, 0, 30.0);
  lo::bench::print_header(
      "Scaling — LØ per-node overhead and latency vs network size",
      "supports the 10,000-node extrapolation of Sec. 6 (not a paper figure)");
  std::printf("horizon=%.0fs tps=20\n\n", args.seconds);
  std::printf("%-10s %-20s %-16s %-18s %-22s\n", "nodes", "overhead[B/s/node]",
              "mempool-lat[s]", "decodes/node/min",
              "acct-memory/node[KiB]");

  for (std::size_t n : {50u, 100u, 200u, 400u}) {
    auto cfg = lo::bench::base_config(n, args.seed);
    lo::harness::LoNetwork net(cfg);
    net.start_workload(lo::bench::base_workload(20.0, args.seed * 3), 1);
    net.run_for(args.seconds);

    const double overhead =
        static_cast<double>(
            net.sim().bandwidth().bytes_excluding({"lo.txs"})) /
        args.seconds / static_cast<double>(n);
    std::uint64_t mem = 0;
    for (std::size_t i = 0; i < n; ++i) {
      mem += net.node(i).accountability_memory_bytes();
    }
    std::printf("%-10zu %-20.1f %-16.2f %-18.1f %-22.1f\n", n, overhead,
                net.mempool_latency().mean(),
                static_cast<double>(net.total_sketch_decodes()) /
                    static_cast<double>(n) / (args.seconds / 60.0),
                static_cast<double>(mem) / static_cast<double>(n) / 1024.0);
  }
  std::printf(
      "\nexpected shape: overhead per node roughly flat (the reconciliation\n"
      "budget is local); latency grows slowly (diameter); accountability\n"
      "memory grows with observed peers, far below the Sec. 6.5 bound.\n");

  // ---- observability overhead guard (BENCH_obs.json) ----
  const std::size_t obs_n = 32;
  const ObsRow off = run_obs_leg(obs_n, args.seconds, args.seed, false);
  const ObsRow on = run_obs_leg(obs_n, args.seconds, args.seed, true);
  const double ratio = off.wall_s > 0.0 ? on.wall_s / off.wall_s : 0.0;
  std::printf(
      "\nobservability overhead (%zu nodes, %.0fs horizon):\n"
      "  disabled  %.3fs wall\n"
      "  traced    %.3fs wall (%llu events) -> ratio %.3f\n",
      obs_n, args.seconds, off.wall_s, on.wall_s,
      static_cast<unsigned long long>(on.trace_events), ratio);

  lo::bench::JsonReport report("BENCH_obs.json", "lo-obs-overhead");
  report.add("obs/disabled", off.wall_s * 1e9,
             static_cast<double>(off.txs) / off.wall_s);
  report.add("obs/traced", on.wall_s * 1e9,
             static_cast<double>(on.trace_events) / on.wall_s);
  report.add("obs/overhead_ratio", on.wall_s * 1e9, ratio);
  if (!report.write()) return 1;
  return 0;
}
