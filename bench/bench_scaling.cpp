// Scaling bench — LØ's per-node costs as the network grows.
//
// The paper deployed 10,000 processes; this single-process reproduction runs
// smaller networks and uses this sweep to support the extrapolation argument
// (EXPERIMENTS.md): LØ's per-node overhead is governed by the local
// reconciliation budget (3 neighbors/second), not by the network size, while
// flooding-style protocols pay per edge.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = lo::bench::parse_args(argc, argv, 0, 30.0);
  lo::bench::print_header(
      "Scaling — LØ per-node overhead and latency vs network size",
      "supports the 10,000-node extrapolation of Sec. 6 (not a paper figure)");
  std::printf("horizon=%.0fs tps=20\n\n", args.seconds);
  std::printf("%-10s %-20s %-16s %-18s %-22s\n", "nodes", "overhead[B/s/node]",
              "mempool-lat[s]", "decodes/node/min",
              "acct-memory/node[KiB]");

  for (std::size_t n : {50u, 100u, 200u, 400u}) {
    auto cfg = lo::bench::base_config(n, args.seed);
    lo::harness::LoNetwork net(cfg);
    net.start_workload(lo::bench::base_workload(20.0, args.seed * 3), 1);
    net.run_for(args.seconds);

    const double overhead =
        static_cast<double>(
            net.sim().bandwidth().bytes_excluding({"lo.txs"})) /
        args.seconds / static_cast<double>(n);
    std::uint64_t mem = 0;
    for (std::size_t i = 0; i < n; ++i) {
      mem += net.node(i).accountability_memory_bytes();
    }
    std::printf("%-10zu %-20.1f %-16.2f %-18.1f %-22.1f\n", n, overhead,
                net.mempool_latency().mean(),
                static_cast<double>(net.total_sketch_decodes()) /
                    static_cast<double>(n) / (args.seconds / 60.0),
                static_cast<double>(mem) / static_cast<double>(n) / 1024.0);
  }
  std::printf(
      "\nexpected shape: overhead per node roughly flat (the reconciliation\n"
      "budget is local); latency grows slowly (diameter); accountability\n"
      "memory grows with observed peers, far below the Sec. 6.5 bound.\n");
  return 0;
}
