// Scaling bench — LØ's per-node costs as the network grows, plus the
// observability overhead guard (BENCH_obs.json).
//
// The paper deployed 10,000 processes; this single-process reproduction runs
// smaller networks and uses this sweep to support the extrapolation argument
// (EXPERIMENTS.md): LØ's per-node overhead is governed by the local
// reconciliation budget (3 neighbors/second), not by the network size, while
// flooding-style protocols pay per edge.
//
// The final section reruns one fixed configuration twice — instrumentation
// disabled (the default everywhere) and fully traced (event tracer +
// profiling hooks on) — and records both wall times. The traced/disabled
// ratio is the overhead budget DESIGN.md commits to; CI keeps the artifact
// next to BENCH_crypto.json so regressions in the "disabled" fast path are
// visible in the same dashboard.
#include <algorithm>
#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "crypto/sha256.hpp"
#include "minisketch/partitioned.hpp"
#include "obs/profile.hpp"

namespace {

struct ObsRow {
  double wall_s = 0.0;
  std::uint64_t trace_events = 0;
  std::uint64_t txs = 0;
};

ObsRow run_obs_leg(std::size_t n, double seconds, std::uint64_t seed,
                   bool instrumented) {
  auto cfg = lo::bench::base_config(n, seed);
  cfg.trace = instrumented;
  cfg.trace_capacity = instrumented ? (1u << 20) : 0;  // keep every event
  lo::obs::profile::reset();
  lo::obs::profile::set_enabled(instrumented);
  lo::harness::LoNetwork net(cfg);
  net.start_workload(lo::bench::base_workload(20.0, seed * 3), 1);
  // lolint:allow(banned-source) reason=wall-clock stopwatch for the overhead guard column; never feeds protocol state or the simulation
  const auto t0 = std::chrono::steady_clock::now();
  net.run_for(seconds);
  // lolint:allow(banned-source) reason=wall-clock stopwatch read for the overhead guard column; never feeds protocol state or the simulation
  const auto t1 = std::chrono::steady_clock::now();
  lo::obs::profile::set_enabled(false);
  ObsRow row;
  row.wall_s = std::chrono::duration<double>(t1 - t0).count();
  row.trace_events = net.sim().obs().tracer.size() +
                     net.sim().obs().tracer.dropped();
  row.txs = net.txs_injected();
  return row;
}

// ---- membership leg (BENCH_membership.json) ----
// Two series. (1) SWIM under churn: mean/max crash-to-confirm detection
// latency and the probe+gossip bandwidth per node, as the churn rate rises —
// the bandwidth is expected to stay near-flat (one probe per period per node,
// piggybacked dissemination) while only the event count grows. (2) Adaptive
// vs fixed reconciliation: syndrome bytes spent per symmetric-difference
// size, with the adaptive reconciler required to recover the exact set the
// fixed-capacity oracle does.

struct MembershipRow {
  double detect_mean_s = 0.0;
  double detect_max_s = 0.0;
  double swim_bytes_per_node_s = 0.0;
  std::uint64_t confirms = 0;
};

MembershipRow run_membership_leg(std::size_t n, double seconds,
                                 std::uint64_t seed, double mean_gap_s) {
  auto cfg = lo::bench::base_config(n, seed);
  cfg.node.membership.enabled = true;
  cfg.node.membership.protocol_period = 500 * lo::sim::kMillisecond;
  cfg.node.membership.ping_timeout = 120 * lo::sim::kMillisecond;
  lo::harness::LoNetwork net(cfg);
  lo::sim::ChurnConfig churn;
  churn.mean_gap = static_cast<lo::sim::Duration>(mean_gap_s * lo::sim::kSecond);
  // Down-times comfortably above the suspicion window so every crash can be
  // confirmed before the victim returns.
  churn.min_down = 8 * lo::sim::kSecond;
  churn.max_down = 16 * lo::sim::kSecond;
  churn.max_concurrent_down = std::max<std::size_t>(1, n / 8);
  net.start_churn(churn);
  net.run_for(seconds);

  MembershipRow row;
  row.detect_mean_s = net.membership_detection_latency().mean();
  row.detect_max_s = net.membership_detection_latency().max();
  std::uint64_t swim_bytes = 0;
  for (const auto& [name, st] : net.sim().bandwidth().by_class()) {
    if (name.rfind("swim.", 0) == 0) swim_bytes += st.bytes;
  }
  row.swim_bytes_per_node_s =
      static_cast<double>(swim_bytes) / seconds / static_cast<double>(n);
  for (const auto& ev : net.member_events()) {
    if (ev.state == lo::membership::MemberState::kConfirmed) ++row.confirms;
  }
  return row;
}

// ---- parallel engine leg (BENCH_parallel_sim.json) ----
// Raw-simulator gossip storm: many cheap node-context events, two-way
// cross-shard traffic, no protocol logic — so the wall-clock ratio between
// worker counts measures the engine (window scheduling, inbox merge,
// barrier flush), not LØ. The per-worker-count digests must agree exactly;
// a mismatch fails the smoke run because it would mean the parallel engine
// diverged from the serial schedule (DESIGN.md §4e).

struct GossipPing final : lo::sim::Payload {
  const char* type_name() const noexcept override { return "bench.gossip"; }
  std::size_t wire_size() const noexcept override { return 96; }
};

class GossipBenchNode final : public lo::sim::INode {
 public:
  GossipBenchNode(lo::sim::Simulator& sim, lo::sim::NodeId id, std::size_t n)
      : sim_(sim), id_(id), n_(n) {}

  void on_start() override { arm_tick(); }

  void on_message(lo::sim::NodeId from, const lo::sim::PayloadPtr&) override {
    ++received_;
    // Occasional reply hop keeps the traffic two-way across shards.
    if (sim_.node_rng(id_).next_below(8) == 0) {
      sim_.send(id_, from, std::make_shared<GossipPing>());
    }
  }

  std::uint64_t digest() const noexcept {
    return ticks_ * 0x9e3779b97f4a7c15ULL ^ received_;
  }

 private:
  void arm_tick() {
    const auto jitter = static_cast<lo::sim::Duration>(
        sim_.node_rng(id_).next_below(4 * lo::sim::kMillisecond));
    sim_.schedule_for(id_, 10 * lo::sim::kMillisecond + jitter,
                      [this] { tick(); });
  }

  void tick() {
    ++ticks_;
    for (int k = 0; k < 3; ++k) {
      const auto peer = static_cast<lo::sim::NodeId>(
          sim_.node_rng(id_).next_below(static_cast<std::uint64_t>(n_)));
      if (peer != id_) sim_.send(id_, peer, std::make_shared<GossipPing>());
    }
    arm_tick();
  }

  lo::sim::Simulator& sim_;
  lo::sim::NodeId id_;
  std::size_t n_;
  std::uint64_t ticks_ = 0;
  std::uint64_t received_ = 0;
};

struct ParallelRow {
  double wall_s = 0.0;
  std::size_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t digest = 0;
};

ParallelRow run_parallel_leg(std::size_t n, double seconds, std::uint64_t seed,
                             unsigned workers) {
  lo::sim::Simulator sim(seed);
  // A real positive lower latency bound is what gives the engine its
  // lookahead window; 2 ms of wire latency vs 10 ms tick period keeps the
  // windows densely populated.
  sim.set_latency_model(
      std::make_shared<lo::sim::ConstantLatency>(2 * lo::sim::kMillisecond));
  if (workers > 1) sim.set_workers(workers);
  std::vector<std::unique_ptr<GossipBenchNode>> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<GossipBenchNode>(
        sim, static_cast<lo::sim::NodeId>(i), n));
    sim.add_node(nodes.back().get());
  }
  sim.start();
  // lolint:allow(banned-source) reason=wall-clock stopwatch for the scaling column; never feeds protocol state or the simulation
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t events = sim.run_until(lo::sim::from_seconds(seconds));
  // lolint:allow(banned-source) reason=wall-clock stopwatch read for the scaling column; never feeds protocol state or the simulation
  const auto t1 = std::chrono::steady_clock::now();
  ParallelRow row;
  row.wall_s = std::chrono::duration<double>(t1 - t0).count();
  row.events = events;
  row.messages = sim.bandwidth().total_messages();
  for (const auto& node : nodes) {
    row.digest = row.digest * 1099511628211ULL ^ node->digest();
  }
  return row;
}

// ---- sharded pipeline leg (BENCH_sharding.json) ----
// Storm workload against the Sedna-style sharded commitment pipeline
// (DESIGN.md §7). The storm is sized so that the pairwise symmetric
// difference overflows the per-exchange sketch capacity at k = 1: the
// unsharded pipeline falls back to bounded random delta windows and commits
// a fraction of each window, far below the injection rate. Sharding
// composes decode capacity — k shards carry k independent sketches, so the
// per-shard difference stays decodable and each exchange commits its whole
// difference. Committed throughput must therefore scale with k (the gate is
// >= 2x at k = 4 at the default scale), while same-seed digests stay
// byte-identical across shard counts x worker counts.

struct ShardingRow {
  double commits_per_node_s = 0.0;  // committed txs / correct node / sim-sec
  std::uint64_t injected = 0;
  double wall_s = 0.0;
  std::string digest;  // commitment-state digest (W-equivalence check)
};

ShardingRow run_sharding_leg(std::size_t n, double seconds, std::uint64_t seed,
                             std::uint32_t shards, unsigned workers) {
  auto cfg = lo::bench::base_config(n, seed);
  cfg.node.mempool_shards = shards;
  // Saturation knobs: no signature checks (wire sizes unchanged); capacity
  // and delta bound the exchange so that the global difference overflows the
  // sketch at k = 1 while the per-shard differences stay decodable at k = 4
  // — the regime the sharded pipeline exists for.
  cfg.node.verify_signatures = false;
  cfg.node.commitment.sketch_capacity = 64;
  cfg.node.max_delta = 48;
  cfg.workers = workers;
  lo::harness::LoNetwork net(cfg);
  net.start_workload(lo::bench::base_workload(240.0, seed * 3), 1);
  // lolint:allow(banned-source) reason=wall-clock stopwatch for the bench table; never feeds protocol state or the simulation
  const auto t0 = std::chrono::steady_clock::now();
  net.run_for(seconds);
  // lolint:allow(banned-source) reason=wall-clock stopwatch read for the bench table; never feeds protocol state or the simulation
  const auto t1 = std::chrono::steady_clock::now();

  ShardingRow row;
  row.wall_s = std::chrono::duration<double>(t1 - t0).count();
  row.injected = net.txs_injected();
  std::uint64_t committed = 0;
  lo::crypto::Sha256 h;
  const auto fold_u64 = [&h](std::uint64_t v) {
    std::uint8_t buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
    h.update(std::span<const std::uint8_t>(buf, 8));
  };
  fold_u64(row.injected);
  fold_u64(static_cast<std::uint64_t>(net.sim().now()));
  for (std::size_t i = 0; i < n; ++i) {
    committed += net.node(i).total_committed();
    fold_u64(net.node(i).mempool_size());
    for (std::uint32_t s = 0; s < net.node(i).shard_count(); ++s) {
      fold_u64(net.node(i).log(s).seqno());
      const auto ch = net.node(i).log(s).chain_hash();
      h.update(std::span<const std::uint8_t>(ch.data(), ch.size()));
    }
  }
  row.commits_per_node_s = static_cast<double>(committed) /
                           static_cast<double>(n) / seconds;
  const auto d = h.finalize();
  static const char* kHex = "0123456789abcdef";
  for (std::uint8_t byte : d) {
    row.digest.push_back(kHex[byte >> 4]);
    row.digest.push_back(kHex[byte & 0xf]);
  }
  return row;
}

// Returns false if the adaptive reconciler ever disagrees with the
// fixed-capacity oracle — that would invalidate the bytes comparison.
bool run_reconcile_series(lo::bench::JsonReport& report) {
  constexpr std::size_t kShared = 400;
  for (std::size_t diff : {4u, 16u, 64u, 256u, 1024u}) {
    std::vector<std::uint64_t> a, b;
    for (std::size_t i = 0; i < kShared; ++i) {
      a.push_back((i + 1) * 0x9e3779b97f4a7c15ULL);
      b.push_back((i + 1) * 0x9e3779b97f4a7c15ULL);
    }
    for (std::size_t i = 0; i < diff / 2; ++i) {
      a.push_back((0x10000 + i) * 0xc2b2ae3d27d4eb4fULL | 1);
      b.push_back((0x20000 + i) * 0xc2b2ae3d27d4eb4fULL | 1);
    }

    lo::sketch::ReconcileStats fixed_st;
    lo::sketch::PartitionedReconciler fixed(32, 128);
    auto fixed_got = fixed.reconcile(a, b, &fixed_st);
    lo::sketch::ReconcileStats ad_st;
    lo::sketch::AdaptiveReconciler adaptive(32, 128);
    // The Bloom-clock estimate the protocol feeds in is the true difference
    // here; the node-level sizing error path is covered by tests.
    auto ad_got = adaptive.reconcile(a, b, diff, &ad_st);
    if (!fixed_got || !ad_got) return false;
    std::sort(fixed_got->begin(), fixed_got->end());
    std::sort(ad_got->begin(), ad_got->end());
    if (*fixed_got != *ad_got) return false;

    std::printf("  diff %-6zu fixed %6llu B   adaptive %6llu B\n", diff,
                static_cast<unsigned long long>(fixed_st.bytes),
                static_cast<unsigned long long>(ad_st.bytes));
    const std::string tag = "/diff" + std::to_string(diff);
    report.add("reconcile/fixed_bytes" + tag, 0.0,
               static_cast<double>(fixed_st.bytes));
    report.add("reconcile/adaptive_bytes" + tag, 0.0,
               static_cast<double>(ad_st.bytes));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = lo::bench::parse_args(argc, argv, 0, 30.0);
  lo::bench::print_header(
      "Scaling — LØ per-node overhead and latency vs network size",
      "supports the 10,000-node extrapolation of Sec. 6 (not a paper figure)");
  std::printf("horizon=%.0fs tps=20\n\n", args.seconds);
  std::printf("%-10s %-20s %-16s %-18s %-22s\n", "nodes", "overhead[B/s/node]",
              "mempool-lat[s]", "decodes/node/min",
              "acct-memory/node[KiB]");

  for (std::size_t n : {50u, 100u, 200u, 400u}) {
    auto cfg = lo::bench::base_config(n, args.seed);
    lo::harness::LoNetwork net(cfg);
    net.start_workload(lo::bench::base_workload(20.0, args.seed * 3), 1);
    net.run_for(args.seconds);

    const double overhead =
        static_cast<double>(
            net.sim().bandwidth().bytes_excluding({"lo.txs"})) /
        args.seconds / static_cast<double>(n);
    std::uint64_t mem = 0;
    for (std::size_t i = 0; i < n; ++i) {
      mem += net.node(i).accountability_memory_bytes();
    }
    std::printf("%-10zu %-20.1f %-16.2f %-18.1f %-22.1f\n", n, overhead,
                net.mempool_latency().mean(),
                static_cast<double>(net.total_sketch_decodes()) /
                    static_cast<double>(n) / (args.seconds / 60.0),
                static_cast<double>(mem) / static_cast<double>(n) / 1024.0);
  }
  std::printf(
      "\nexpected shape: overhead per node roughly flat (the reconciliation\n"
      "budget is local); latency grows slowly (diameter); accountability\n"
      "memory grows with observed peers, far below the Sec. 6.5 bound.\n");

  // ---- observability overhead guard (BENCH_obs.json) ----
  const std::size_t obs_n = 32;
  const ObsRow off = run_obs_leg(obs_n, args.seconds, args.seed, false);
  const ObsRow on = run_obs_leg(obs_n, args.seconds, args.seed, true);
  const double ratio = off.wall_s > 0.0 ? on.wall_s / off.wall_s : 0.0;
  std::printf(
      "\nobservability overhead (%zu nodes, %.0fs horizon):\n"
      "  disabled  %.3fs wall\n"
      "  traced    %.3fs wall (%llu events) -> ratio %.3f\n",
      obs_n, args.seconds, off.wall_s, on.wall_s,
      static_cast<unsigned long long>(on.trace_events), ratio);

  lo::bench::JsonReport report("BENCH_obs.json", "lo-obs-overhead");
  report.add("obs/disabled", off.wall_s * 1e9,
             static_cast<double>(off.txs) / off.wall_s);
  report.add("obs/traced", on.wall_s * 1e9,
             static_cast<double>(on.trace_events) / on.wall_s);
  report.add("obs/overhead_ratio", on.wall_s * 1e9, ratio);
  if (!report.write()) return 1;

  // ---- membership under churn + adaptive reconciliation ----
  lo::bench::JsonReport mreport("BENCH_membership.json", "lo-membership");
  const std::size_t mem_n = 32;
  // Horizon long enough for several crash/confirm cycles at the default
  // scale; the smoke run's 1s horizon simply yields zero-confirm rows.
  const double mem_seconds = std::max(args.seconds, 1.0);
  std::printf("\nmembership (%zu nodes, %.0fs horizon, SWIM period 0.5s):\n",
              mem_n, mem_seconds);
  std::printf("  %-14s %-16s %-16s %-20s %-10s\n", "churn-gap[s]",
              "detect-mean[s]", "detect-max[s]", "swim[B/s/node]", "confirms");
  for (double gap_s : {16.0, 8.0, 4.0}) {
    const auto row = run_membership_leg(mem_n, mem_seconds, args.seed, gap_s);
    std::printf("  %-14.0f %-16.2f %-16.2f %-20.1f %-10llu\n", gap_s,
                row.detect_mean_s, row.detect_max_s, row.swim_bytes_per_node_s,
                static_cast<unsigned long long>(row.confirms));
    const std::string tag = "/gap" + std::to_string(static_cast<int>(gap_s));
    mreport.add("membership/detect_latency_s" + tag, mem_seconds * 1e9,
                row.detect_mean_s);
    mreport.add("membership/detect_latency_max_s" + tag, mem_seconds * 1e9,
                row.detect_max_s);
    mreport.add("membership/swim_bytes_per_node_s" + tag, mem_seconds * 1e9,
                row.swim_bytes_per_node_s);
    mreport.add("membership/confirms" + tag, mem_seconds * 1e9,
                static_cast<double>(row.confirms));
  }

  std::printf(
      "\nadaptive vs fixed reconciliation (shared 400, capacity max 128):\n");
  if (!run_reconcile_series(mreport)) {
    std::fprintf(stderr,
                 "adaptive reconciler diverged from fixed-capacity oracle\n");
    return 1;
  }
  if (!mreport.write()) return 1;
  std::printf(
      "\nexpected shape: swim bandwidth per node stays near-flat as churn\n"
      "rises (probe rate is constant; only event dissemination grows), and\n"
      "adaptive syndromes undercut the fixed capacity on small differences\n"
      "while recovering the identical set.\n");

  // ---- parallel engine scaling (BENCH_parallel_sim.json) ----
  // Default scale (5000 nodes) sized for the CI runners; the smoke run's
  // positional [num_nodes] keeps it toy-sized. Worker count 1 is the serial
  // engine, so speedup is measured against the exact schedule the parallel
  // runs must reproduce digest-for-digest.
  const std::size_t par_n = args.num_nodes != 0 ? args.num_nodes : 5000;
  const double par_seconds = args.seconds;
  std::printf("\nparallel engine (%zu nodes, %.0fs horizon, gossip storm):\n",
              par_n, par_seconds);
  std::printf("  %-10s %-12s %-14s %-14s %-10s\n", "workers", "wall[s]",
              "events", "msgs", "speedup");
  lo::bench::JsonReport preport("BENCH_parallel_sim.json", "lo-parallel-sim");
  double serial_wall = 0.0;
  std::uint64_t serial_digest = 0;
  for (unsigned workers : {1u, 2u, 4u}) {
    const auto row = run_parallel_leg(par_n, par_seconds, args.seed, workers);
    if (workers == 1) {
      serial_wall = row.wall_s;
      serial_digest = row.digest;
    } else if (row.digest != serial_digest) {
      std::fprintf(stderr,
                   "parallel run (workers=%u) diverged from the serial "
                   "schedule: digest %llx != %llx\n",
                   workers, static_cast<unsigned long long>(row.digest),
                   static_cast<unsigned long long>(serial_digest));
      return 1;
    }
    const double speedup = row.wall_s > 0.0 ? serial_wall / row.wall_s : 0.0;
    std::printf("  %-10u %-12.3f %-14zu %-14llu %-10.2f\n", workers,
                row.wall_s, row.events,
                static_cast<unsigned long long>(row.messages), speedup);
    const std::string tag = "/w" + std::to_string(workers);
    preport.add("parallel_sim/wall_s" + tag, row.wall_s * 1e9,
                static_cast<double>(row.events) / std::max(row.wall_s, 1e-9));
    preport.add("parallel_sim/speedup" + tag, row.wall_s * 1e9, speedup);
  }
  if (!preport.write()) return 1;
  std::printf(
      "\nexpected shape: near-linear event throughput up to the core count\n"
      "(every run is digest-checked against the serial schedule).\n");

  // ---- sharded commitment pipeline (BENCH_sharding.json) ----
  const std::size_t shard_n = 16;
  const double shard_seconds = args.seconds;
  std::printf(
      "\nsharded pipeline (%zu nodes, %.0fs horizon, 240 tps storm):\n",
      shard_n, shard_seconds);
  std::printf("  %-8s %-20s %-12s %-12s %-10s\n", "shards",
              "commits[/node/s]", "injected", "wall[s]", "vs k=1");
  lo::bench::JsonReport sreport("BENCH_sharding.json", "lo-sharding");
  double k1_rate = 0.0;
  double k4_rate = 0.0;
  for (std::uint32_t k : {1u, 2u, 4u}) {
    const auto row =
        run_sharding_leg(shard_n, shard_seconds, args.seed, k, /*workers=*/1);
    if (k == 1) k1_rate = row.commits_per_node_s;
    if (k == 4) k4_rate = row.commits_per_node_s;
    const double speedup =
        k1_rate > 0.0 ? row.commits_per_node_s / k1_rate : 0.0;
    std::printf("  %-8u %-20.1f %-12llu %-12.3f %-10.2f\n", k,
                row.commits_per_node_s,
                static_cast<unsigned long long>(row.injected), row.wall_s,
                speedup);
    const std::string tag = "/k" + std::to_string(k);
    sreport.add("sharding/commits_per_node_s" + tag, shard_seconds * 1e9,
                row.commits_per_node_s);
    sreport.add("sharding/speedup_vs_k1" + tag, shard_seconds * 1e9, speedup);
  }
  // Determinism matrix: for each shard count the run is defined by (seed)
  // alone — every worker count must land on the byte-identical commitment
  // state. A mismatch fails the bench (and the CI smoke run) outright.
  std::printf("  digest check: k in {1,4} x workers in {1,2,4,8}\n");
  for (std::uint32_t k : {1u, 4u}) {
    std::string serial_digest;
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
      const auto row =
          run_sharding_leg(shard_n, shard_seconds, args.seed, k, workers);
      if (workers == 1) {
        serial_digest = row.digest;
      } else if (row.digest != serial_digest) {
        std::fprintf(stderr,
                     "sharded run (k=%u, workers=%u) diverged from the serial "
                     "schedule: digest %s != %s\n",
                     k, workers, row.digest.c_str(), serial_digest.c_str());
        return 1;
      }
    }
    std::printf("    k=%u: all worker counts byte-identical (%.16s...)\n", k,
                serial_digest.c_str());
  }
  sreport.add("sharding/speedup_k4_vs_k1", shard_seconds * 1e9,
              k1_rate > 0.0 ? k4_rate / k1_rate : 0.0);
  if (!sreport.write()) return 1;
  std::printf(
      "\nexpected shape: the k=1 pipeline overflows its sketch every exchange\n"
      "and crawls through random delta windows; per-shard differences stay\n"
      "decodable, so k=4 clears the storm (>= 2x at the default scale).\n");
  return 0;
}
