// Scaling bench — LØ's per-node costs as the network grows, plus the
// observability overhead guard (BENCH_obs.json).
//
// The paper deployed 10,000 processes; this single-process reproduction runs
// smaller networks and uses this sweep to support the extrapolation argument
// (EXPERIMENTS.md): LØ's per-node overhead is governed by the local
// reconciliation budget (3 neighbors/second), not by the network size, while
// flooding-style protocols pay per edge.
//
// The final section reruns one fixed configuration twice — instrumentation
// disabled (the default everywhere) and fully traced (event tracer +
// profiling hooks on) — and records both wall times. The traced/disabled
// ratio is the overhead budget DESIGN.md commits to; CI keeps the artifact
// next to BENCH_crypto.json so regressions in the "disabled" fast path are
// visible in the same dashboard.
#include <algorithm>
#include <chrono>
#include <string>

#include "bench_common.hpp"
#include "minisketch/partitioned.hpp"
#include "obs/profile.hpp"

namespace {

struct ObsRow {
  double wall_s = 0.0;
  std::uint64_t trace_events = 0;
  std::uint64_t txs = 0;
};

ObsRow run_obs_leg(std::size_t n, double seconds, std::uint64_t seed,
                   bool instrumented) {
  auto cfg = lo::bench::base_config(n, seed);
  cfg.trace = instrumented;
  cfg.trace_capacity = instrumented ? (1u << 20) : 0;  // keep every event
  lo::obs::profile::reset();
  lo::obs::profile::set_enabled(instrumented);
  lo::harness::LoNetwork net(cfg);
  net.start_workload(lo::bench::base_workload(20.0, seed * 3), 1);
  // lolint:allow(banned-source) reason=wall-clock stopwatch for the overhead guard column; never feeds protocol state or the simulation
  const auto t0 = std::chrono::steady_clock::now();
  net.run_for(seconds);
  // lolint:allow(banned-source) reason=wall-clock stopwatch read for the overhead guard column; never feeds protocol state or the simulation
  const auto t1 = std::chrono::steady_clock::now();
  lo::obs::profile::set_enabled(false);
  ObsRow row;
  row.wall_s = std::chrono::duration<double>(t1 - t0).count();
  row.trace_events = net.sim().obs().tracer.size() +
                     net.sim().obs().tracer.dropped();
  row.txs = net.txs_injected();
  return row;
}

// ---- membership leg (BENCH_membership.json) ----
// Two series. (1) SWIM under churn: mean/max crash-to-confirm detection
// latency and the probe+gossip bandwidth per node, as the churn rate rises —
// the bandwidth is expected to stay near-flat (one probe per period per node,
// piggybacked dissemination) while only the event count grows. (2) Adaptive
// vs fixed reconciliation: syndrome bytes spent per symmetric-difference
// size, with the adaptive reconciler required to recover the exact set the
// fixed-capacity oracle does.

struct MembershipRow {
  double detect_mean_s = 0.0;
  double detect_max_s = 0.0;
  double swim_bytes_per_node_s = 0.0;
  std::uint64_t confirms = 0;
};

MembershipRow run_membership_leg(std::size_t n, double seconds,
                                 std::uint64_t seed, double mean_gap_s) {
  auto cfg = lo::bench::base_config(n, seed);
  cfg.node.membership.enabled = true;
  cfg.node.membership.protocol_period = 500 * lo::sim::kMillisecond;
  cfg.node.membership.ping_timeout = 120 * lo::sim::kMillisecond;
  lo::harness::LoNetwork net(cfg);
  lo::sim::ChurnConfig churn;
  churn.mean_gap = static_cast<lo::sim::Duration>(mean_gap_s * lo::sim::kSecond);
  // Down-times comfortably above the suspicion window so every crash can be
  // confirmed before the victim returns.
  churn.min_down = 8 * lo::sim::kSecond;
  churn.max_down = 16 * lo::sim::kSecond;
  churn.max_concurrent_down = std::max<std::size_t>(1, n / 8);
  net.start_churn(churn);
  net.run_for(seconds);

  MembershipRow row;
  row.detect_mean_s = net.membership_detection_latency().mean();
  row.detect_max_s = net.membership_detection_latency().max();
  std::uint64_t swim_bytes = 0;
  for (const auto& [name, st] : net.sim().bandwidth().by_class()) {
    if (name.rfind("swim.", 0) == 0) swim_bytes += st.bytes;
  }
  row.swim_bytes_per_node_s =
      static_cast<double>(swim_bytes) / seconds / static_cast<double>(n);
  for (const auto& ev : net.member_events()) {
    if (ev.state == lo::membership::MemberState::kConfirmed) ++row.confirms;
  }
  return row;
}

// Returns false if the adaptive reconciler ever disagrees with the
// fixed-capacity oracle — that would invalidate the bytes comparison.
bool run_reconcile_series(lo::bench::JsonReport& report) {
  constexpr std::size_t kShared = 400;
  for (std::size_t diff : {4u, 16u, 64u, 256u, 1024u}) {
    std::vector<std::uint64_t> a, b;
    for (std::size_t i = 0; i < kShared; ++i) {
      a.push_back((i + 1) * 0x9e3779b97f4a7c15ULL);
      b.push_back((i + 1) * 0x9e3779b97f4a7c15ULL);
    }
    for (std::size_t i = 0; i < diff / 2; ++i) {
      a.push_back((0x10000 + i) * 0xc2b2ae3d27d4eb4fULL | 1);
      b.push_back((0x20000 + i) * 0xc2b2ae3d27d4eb4fULL | 1);
    }

    lo::sketch::ReconcileStats fixed_st;
    lo::sketch::PartitionedReconciler fixed(32, 128);
    auto fixed_got = fixed.reconcile(a, b, &fixed_st);
    lo::sketch::ReconcileStats ad_st;
    lo::sketch::AdaptiveReconciler adaptive(32, 128);
    // The Bloom-clock estimate the protocol feeds in is the true difference
    // here; the node-level sizing error path is covered by tests.
    auto ad_got = adaptive.reconcile(a, b, diff, &ad_st);
    if (!fixed_got || !ad_got) return false;
    std::sort(fixed_got->begin(), fixed_got->end());
    std::sort(ad_got->begin(), ad_got->end());
    if (*fixed_got != *ad_got) return false;

    std::printf("  diff %-6zu fixed %6llu B   adaptive %6llu B\n", diff,
                static_cast<unsigned long long>(fixed_st.bytes),
                static_cast<unsigned long long>(ad_st.bytes));
    const std::string tag = "/diff" + std::to_string(diff);
    report.add("reconcile/fixed_bytes" + tag, 0.0,
               static_cast<double>(fixed_st.bytes));
    report.add("reconcile/adaptive_bytes" + tag, 0.0,
               static_cast<double>(ad_st.bytes));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = lo::bench::parse_args(argc, argv, 0, 30.0);
  lo::bench::print_header(
      "Scaling — LØ per-node overhead and latency vs network size",
      "supports the 10,000-node extrapolation of Sec. 6 (not a paper figure)");
  std::printf("horizon=%.0fs tps=20\n\n", args.seconds);
  std::printf("%-10s %-20s %-16s %-18s %-22s\n", "nodes", "overhead[B/s/node]",
              "mempool-lat[s]", "decodes/node/min",
              "acct-memory/node[KiB]");

  for (std::size_t n : {50u, 100u, 200u, 400u}) {
    auto cfg = lo::bench::base_config(n, args.seed);
    lo::harness::LoNetwork net(cfg);
    net.start_workload(lo::bench::base_workload(20.0, args.seed * 3), 1);
    net.run_for(args.seconds);

    const double overhead =
        static_cast<double>(
            net.sim().bandwidth().bytes_excluding({"lo.txs"})) /
        args.seconds / static_cast<double>(n);
    std::uint64_t mem = 0;
    for (std::size_t i = 0; i < n; ++i) {
      mem += net.node(i).accountability_memory_bytes();
    }
    std::printf("%-10zu %-20.1f %-16.2f %-18.1f %-22.1f\n", n, overhead,
                net.mempool_latency().mean(),
                static_cast<double>(net.total_sketch_decodes()) /
                    static_cast<double>(n) / (args.seconds / 60.0),
                static_cast<double>(mem) / static_cast<double>(n) / 1024.0);
  }
  std::printf(
      "\nexpected shape: overhead per node roughly flat (the reconciliation\n"
      "budget is local); latency grows slowly (diameter); accountability\n"
      "memory grows with observed peers, far below the Sec. 6.5 bound.\n");

  // ---- observability overhead guard (BENCH_obs.json) ----
  const std::size_t obs_n = 32;
  const ObsRow off = run_obs_leg(obs_n, args.seconds, args.seed, false);
  const ObsRow on = run_obs_leg(obs_n, args.seconds, args.seed, true);
  const double ratio = off.wall_s > 0.0 ? on.wall_s / off.wall_s : 0.0;
  std::printf(
      "\nobservability overhead (%zu nodes, %.0fs horizon):\n"
      "  disabled  %.3fs wall\n"
      "  traced    %.3fs wall (%llu events) -> ratio %.3f\n",
      obs_n, args.seconds, off.wall_s, on.wall_s,
      static_cast<unsigned long long>(on.trace_events), ratio);

  lo::bench::JsonReport report("BENCH_obs.json", "lo-obs-overhead");
  report.add("obs/disabled", off.wall_s * 1e9,
             static_cast<double>(off.txs) / off.wall_s);
  report.add("obs/traced", on.wall_s * 1e9,
             static_cast<double>(on.trace_events) / on.wall_s);
  report.add("obs/overhead_ratio", on.wall_s * 1e9, ratio);
  if (!report.write()) return 1;

  // ---- membership under churn + adaptive reconciliation ----
  lo::bench::JsonReport mreport("BENCH_membership.json", "lo-membership");
  const std::size_t mem_n = 32;
  // Horizon long enough for several crash/confirm cycles at the default
  // scale; the smoke run's 1s horizon simply yields zero-confirm rows.
  const double mem_seconds = std::max(args.seconds, 1.0);
  std::printf("\nmembership (%zu nodes, %.0fs horizon, SWIM period 0.5s):\n",
              mem_n, mem_seconds);
  std::printf("  %-14s %-16s %-16s %-20s %-10s\n", "churn-gap[s]",
              "detect-mean[s]", "detect-max[s]", "swim[B/s/node]", "confirms");
  for (double gap_s : {16.0, 8.0, 4.0}) {
    const auto row = run_membership_leg(mem_n, mem_seconds, args.seed, gap_s);
    std::printf("  %-14.0f %-16.2f %-16.2f %-20.1f %-10llu\n", gap_s,
                row.detect_mean_s, row.detect_max_s, row.swim_bytes_per_node_s,
                static_cast<unsigned long long>(row.confirms));
    const std::string tag = "/gap" + std::to_string(static_cast<int>(gap_s));
    mreport.add("membership/detect_latency_s" + tag, mem_seconds * 1e9,
                row.detect_mean_s);
    mreport.add("membership/detect_latency_max_s" + tag, mem_seconds * 1e9,
                row.detect_max_s);
    mreport.add("membership/swim_bytes_per_node_s" + tag, mem_seconds * 1e9,
                row.swim_bytes_per_node_s);
    mreport.add("membership/confirms" + tag, mem_seconds * 1e9,
                static_cast<double>(row.confirms));
  }

  std::printf(
      "\nadaptive vs fixed reconciliation (shared 400, capacity max 128):\n");
  if (!run_reconcile_series(mreport)) {
    std::fprintf(stderr,
                 "adaptive reconciler diverged from fixed-capacity oracle\n");
    return 1;
  }
  if (!mreport.write()) return 1;
  std::printf(
      "\nexpected shape: swim bandwidth per node stays near-flat as churn\n"
      "rises (probe rate is constant; only event dissemination grows), and\n"
      "adaptive syndromes undercut the fixed capacity on small differences\n"
      "while recovering the identical set.\n");
  return 0;
}
