// SWIM-style failure detector (Das, Gupta, Motivala — SWIM, DSN'02) adapted
// as LØ's *liveness* layer.
//
// The paper drives suspicion from per-peer request timeouts (Sec. 6.1); that
// conflates two very different signals once the network scales or links get
// lossy: "this peer is dead" and "this peer is misbehaving". This subsystem
// separates them. Each protocol period a node probes one member (round-robin
// over a shuffled permutation, SWIM Sec. 4.3, which bounds worst-case first
// detection time); on a direct-probe timeout it asks k proxies to probe
// indirectly (ping-req), so one lossy or asymmetric link cannot manufacture
// a suspicion. Failed probes yield *suspicion*, disseminated by piggybacking
// updates on probe traffic; the suspected member refutes by incrementing its
// incarnation number; unrefuted suspicions become *confirmed* after a
// deadline. The accountability layer consults this detector before blaming:
// request timeouts escalate to protocol-misbehavior suspicion only while
// membership still considers the peer alive.
//
// The detector is transport-agnostic and timer-agnostic: sends, timers and
// randomness are injected callbacks, so the same code runs under the
// deterministic simulator today and a real transport later. Determinism:
// member tables are ordered maps, all randomness flows through the injected
// `rand_below`, and timers carry tokens so stale callbacks self-cancel.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "membership/messages.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace lo::membership {

struct MembershipConfig {
  // Master switch: disabled by default, so the paper's pure timeout-driven
  // suspicion semantics (and every test pinning them) are unchanged unless a
  // deployment opts in.
  bool enabled = false;

  // One probe target per protocol period (SWIM T').
  sim::Duration protocol_period = sim::kSecond;
  // Direct-probe ack deadline; after it the indirect round starts. Must be
  // well below protocol_period so the indirect round fits in the same period.
  sim::Duration ping_timeout = 300 * sim::kMillisecond;
  // Number of proxies asked to probe indirectly (SWIM k).
  std::size_t indirect_fanout = 3;
  // Suspect -> confirmed deadline, in protocol periods: the refutation window
  // for a live member that was falsely suspected.
  unsigned suspicion_periods = 5;
  // Max piggybacked updates per probe message.
  std::size_t gossip_updates = 6;
  // Each update is piggybacked on up to multiplier * ceil(log2(n+1)) messages
  // (SWIM's lambda log n retransmission budget).
  unsigned retransmit_multiplier = 3;
};

class SwimDetector {
 public:
  struct Member {
    MemberState state = MemberState::kAlive;
    std::uint64_t incarnation = 0;
    // Invalidates in-flight suspicion deadline timers on any state change.
    std::uint64_t token = 0;
  };

  struct Callbacks {
    std::function<void(sim::NodeId to, sim::PayloadPtr msg)> send;
    // Epoch-scoped timer: the host must suppress callbacks armed before a
    // crash (the simulator's schedule_for does exactly that).
    std::function<void(sim::Duration delay, std::function<void()> fn)> timer;
    std::function<std::uint64_t(std::uint64_t bound)> rand_below;
    // State transition observed for `node` (never self). Fired for every
    // alive/suspect/confirmed change, after the table was updated.
    std::function<void(sim::NodeId node, MemberState state,
                       std::uint64_t incarnation)>
        on_state;
    // Own incarnation bumped (refutation). The host persists this counter
    // across crashes so a restarted node re-joins with a higher incarnation.
    std::function<void(std::uint64_t incarnation)> on_incarnation;
  };

  SwimDetector(sim::NodeId self, const MembershipConfig& cfg, Callbacks cb,
               obs::Tracer* tracer = nullptr);

  // Full member universe (self is filtered out). Resets the probe rotation.
  void set_members(const std::vector<sim::NodeId>& members);

  // Starts the probe loop at a random phase within one protocol period.
  // `incarnation` is the durable self-incarnation (0 on first boot, strictly
  // higher after every restart, so our alive refutes any stale confirm).
  void start(std::uint64_t incarnation);

  // --- liveness queries (the accountability gate) ---
  MemberState state_of(sim::NodeId n) const;
  std::uint64_t incarnation_of(sim::NodeId n) const;
  // "Still presumed live": only then may a request timeout escalate into a
  // protocol-misbehavior suspicion.
  bool presumed_live(sim::NodeId n) const {
    return state_of(n) == MemberState::kAlive;
  }
  bool confirmed_faulty(sim::NodeId n) const {
    return state_of(n) == MemberState::kConfirmed;
  }
  std::uint64_t own_incarnation() const noexcept { return own_incarnation_; }
  const std::map<sim::NodeId, Member>& members() const noexcept {
    return table_;
  }

  // --- wire entry points (host dispatches by payload type) ---
  void on_ping(sim::NodeId from, const PingMsg& m);
  void on_ping_ack(sim::NodeId from, const PingAckMsg& m);
  void on_ping_req(sim::NodeId from, const PingReqMsg& m);

  // Applies one membership update with SWIM's precedence rules; public so
  // tests can drive the state machine without wire traffic.
  void apply_update(const MemberUpdate& u);

 private:
  struct Probe {
    std::uint64_t seq = 0;
    sim::NodeId target = 0;
    bool acked = false;
  };
  // A ping-req we are proxying: local probe seq -> origin bookkeeping.
  struct Relay {
    sim::NodeId origin = 0;
    std::uint64_t origin_seq = 0;
    sim::NodeId target = 0;
  };

  void tick();
  void on_direct_timeout(std::uint64_t seq);
  void evaluate_probe();
  void arm_suspicion_deadline(sim::NodeId node);
  void enqueue_gossip(sim::NodeId node, MemberState state,
                      std::uint64_t incarnation);
  std::vector<MemberUpdate> pick_gossip();
  void refute(std::uint64_t seen_incarnation);
  std::vector<sim::NodeId> alive_peers_except(sim::NodeId excluded) const;

  sim::NodeId self_;
  MembershipConfig cfg_;
  Callbacks cb_;
  obs::Tracer* tracer_;

  std::map<sim::NodeId, Member> table_;
  std::uint64_t own_incarnation_ = 0;

  // Round-robin probe rotation: a shuffled permutation, reshuffled when
  // exhausted (SWIM Sec. 4.3).
  std::vector<sim::NodeId> rotation_;
  std::size_t rotation_pos_ = 0;

  std::uint64_t next_seq_ = 1;
  std::optional<Probe> probe_;
  std::map<std::uint64_t, Relay> relays_;

  // Dissemination queue: node -> freshest update + remaining piggyback budget.
  struct Gossip {
    MemberState state = MemberState::kAlive;
    std::uint64_t incarnation = 0;
    unsigned left = 0;
  };
  std::map<sim::NodeId, Gossip> gossip_;
  unsigned gossip_budget_ = 8;
};

}  // namespace lo::membership
