// Wire messages of the SWIM-style membership subsystem.
//
// Message classes, for the bandwidth accounting (this is what the
// "gossip bandwidth vs. churn" bench series measures):
//   swim.ping     — direct liveness probe, carries piggybacked updates
//   swim.ack      — probe acknowledgement (direct, or relayed by a proxy)
//   swim.ping_req — indirect probe request through a proxy (SWIM Sec. 4.1)
//
// Every message piggybacks a bounded vector of membership updates
// (node, state, incarnation) — SWIM's infection-style dissemination
// component. There is no separate gossip message: updates only ever ride on
// probe traffic, so the dissemination load is bounded by the probe rate.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/simulator.hpp"

namespace lo::membership {

// Per-member failure-detector state. Precedence at equal incarnation:
// kConfirmed > kSuspect > kAlive; a higher incarnation (issued only by the
// member itself, to refute) wins over any lower-incarnation state.
enum class MemberState : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,
  kConfirmed = 2,  // declared faulty (crash-confirmed)
};

const char* member_state_name(MemberState s) noexcept;

// One piggybacked membership update.
struct MemberUpdate {
  sim::NodeId node = 0;
  MemberState state = MemberState::kAlive;
  std::uint64_t incarnation = 0;

  static constexpr std::size_t kWire = 4 + 1 + 8;
  bool operator==(const MemberUpdate&) const = default;
};

// Direct probe: "are you alive?". `seq` matches the ack to the probe.
struct PingMsg final : sim::Payload {
  std::uint64_t seq = 0;
  std::vector<MemberUpdate> gossip;

  const char* type_name() const noexcept override { return "swim.ping"; }
  std::size_t wire_size() const noexcept override {
    return 8 + 4 + MemberUpdate::kWire * gossip.size();
  }
  std::vector<std::uint8_t> serialize() const;
  static std::optional<PingMsg> deserialize(std::span<const std::uint8_t> data);
};

// Probe acknowledgement. `target` is the node whose liveness the ack attests:
// the ack sender itself on the direct path, or the probed third party when a
// proxy relays the answer of a ping-req back to the original prober.
struct PingAckMsg final : sim::Payload {
  std::uint64_t seq = 0;
  sim::NodeId target = 0;
  std::vector<MemberUpdate> gossip;

  const char* type_name() const noexcept override { return "swim.ack"; }
  std::size_t wire_size() const noexcept override {
    return 8 + 4 + 4 + MemberUpdate::kWire * gossip.size();
  }
  std::vector<std::uint8_t> serialize() const;
  static std::optional<PingAckMsg> deserialize(
      std::span<const std::uint8_t> data);
};

// Indirect probe request: "ping `target` for me" — sent to k proxies when the
// direct probe timed out, so a lossy or asymmetric link to the target does
// not turn into a false suspicion (SWIM's false-positive mitigation).
struct PingReqMsg final : sim::Payload {
  std::uint64_t seq = 0;
  sim::NodeId target = 0;
  std::vector<MemberUpdate> gossip;

  const char* type_name() const noexcept override { return "swim.ping_req"; }
  std::size_t wire_size() const noexcept override {
    return 8 + 4 + 4 + MemberUpdate::kWire * gossip.size();
  }
  std::vector<std::uint8_t> serialize() const;
  static std::optional<PingReqMsg> deserialize(
      std::span<const std::uint8_t> data);
};

}  // namespace lo::membership
