#include "membership/swim.hpp"

#include <algorithm>
#include <memory>

namespace lo::membership {

namespace {

unsigned ceil_log2(std::size_t n) {
  unsigned bits = 0;
  std::size_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

SwimDetector::SwimDetector(sim::NodeId self, const MembershipConfig& cfg,
                           Callbacks cb, obs::Tracer* tracer)
    : self_(self), cfg_(cfg), cb_(std::move(cb)), tracer_(tracer) {}

void SwimDetector::set_members(const std::vector<sim::NodeId>& members) {
  table_.clear();
  rotation_.clear();
  for (sim::NodeId n : members) {
    if (n == self_) continue;
    table_.emplace(n, Member{});
    rotation_.push_back(n);
  }
  std::sort(rotation_.begin(), rotation_.end());
  rotation_pos_ = rotation_.size();  // force a shuffle on the first tick
  gossip_budget_ = std::max(1u, cfg_.retransmit_multiplier *
                                    ceil_log2(table_.size() + 2));
}

void SwimDetector::start(std::uint64_t incarnation) {
  own_incarnation_ = incarnation;
  // Announce ourselves: a restarted node re-joins with a higher incarnation,
  // which is what overrides any confirm issued against its previous life.
  enqueue_gossip(self_, MemberState::kAlive, own_incarnation_);
  const auto period = static_cast<std::uint64_t>(cfg_.protocol_period);
  const sim::Duration phase =
      static_cast<sim::Duration>(cb_.rand_below(period));
  cb_.timer(phase, [this] { tick(); });
}

MemberState SwimDetector::state_of(sim::NodeId n) const {
  auto it = table_.find(n);
  return it == table_.end() ? MemberState::kAlive : it->second.state;
}

std::uint64_t SwimDetector::incarnation_of(sim::NodeId n) const {
  auto it = table_.find(n);
  return it == table_.end() ? 0 : it->second.incarnation;
}

// ------------------------------------------------------------ probe loop ----

void SwimDetector::tick() {
  evaluate_probe();

  // Round-robin target selection over a shuffled permutation: every member is
  // probed once per n periods, bounding worst-case first-detection time.
  sim::NodeId target = 0;
  bool found = false;
  for (std::size_t tries = 0; tries <= rotation_.size() && !rotation_.empty();
       ++tries) {
    if (rotation_pos_ >= rotation_.size()) {
      for (std::size_t i = rotation_.size(); i > 1; --i) {
        const std::size_t j =
            static_cast<std::size_t>(cb_.rand_below(static_cast<std::uint64_t>(i)));
        std::swap(rotation_[i - 1], rotation_[j]);
      }
      rotation_pos_ = 0;
    }
    const sim::NodeId cand = rotation_[rotation_pos_++];
    if (!confirmed_faulty(cand)) {
      target = cand;
      found = true;
      break;
    }
  }

  if (found) {
    const std::uint64_t seq = next_seq_++;
    probe_ = Probe{seq, target, false};
    auto ping = std::make_shared<PingMsg>();
    ping->seq = seq;
    ping->gossip = pick_gossip();
    if (tracer_ != nullptr) {
      tracer_->emit(obs::EventKind::kMemberProbe, self_, target, seq, 0);
    }
    cb_.send(target, ping);
    cb_.timer(cfg_.ping_timeout, [this, seq] { on_direct_timeout(seq); });
  }
  cb_.timer(cfg_.protocol_period, [this] { tick(); });
}

void SwimDetector::on_direct_timeout(std::uint64_t seq) {
  if (!probe_ || probe_->seq != seq || probe_->acked) return;
  // Indirect round: ask k proxies to probe the silent target for us, so one
  // bad link does not fabricate a suspicion.
  auto proxies = alive_peers_except(probe_->target);
  const std::size_t k = std::min(cfg_.indirect_fanout, proxies.size());
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(cb_.rand_below(
                                  static_cast<std::uint64_t>(proxies.size() - i)));
    std::swap(proxies[i], proxies[j]);
    auto req = std::make_shared<PingReqMsg>();
    req->seq = seq;
    req->target = probe_->target;
    req->gossip = pick_gossip();
    if (tracer_ != nullptr) {
      tracer_->emit(obs::EventKind::kMemberProbe, self_, proxies[i], seq, 1);
    }
    cb_.send(proxies[i], req);
  }
}

void SwimDetector::evaluate_probe() {
  if (probe_ && !probe_->acked && !confirmed_faulty(probe_->target)) {
    // Neither the direct nor any indirect path produced an ack within the
    // protocol period: suspect at the target's current incarnation, giving it
    // the refutation window before anything is confirmed.
    apply_update(MemberUpdate{probe_->target, MemberState::kSuspect,
                              incarnation_of(probe_->target)});
  }
  probe_.reset();
}

std::vector<sim::NodeId> SwimDetector::alive_peers_except(
    sim::NodeId excluded) const {
  std::vector<sim::NodeId> out;
  out.reserve(table_.size());
  for (const auto& [n, m] : table_) {
    if (n != excluded && m.state != MemberState::kConfirmed) out.push_back(n);
  }
  return out;
}

// ---------------------------------------------------------- wire handlers ----

void SwimDetector::on_ping(sim::NodeId from, const PingMsg& m) {
  for (const auto& u : m.gossip) apply_update(u);
  auto ack = std::make_shared<PingAckMsg>();
  ack->seq = m.seq;
  ack->target = self_;
  ack->gossip = pick_gossip();
  cb_.send(from, ack);
}

void SwimDetector::on_ping_ack(sim::NodeId from, const PingAckMsg& m) {
  for (const auto& u : m.gossip) apply_update(u);
  if (probe_ && probe_->seq == m.seq &&
      (m.target == probe_->target || from == probe_->target)) {
    probe_->acked = true;
    return;
  }
  // We proxied this probe: relay the answer back to the original prober.
  auto it = relays_.find(m.seq);
  if (it != relays_.end() && from == it->second.target) {
    auto fwd = std::make_shared<PingAckMsg>();
    fwd->seq = it->second.origin_seq;
    fwd->target = it->second.target;
    fwd->gossip = pick_gossip();
    cb_.send(it->second.origin, fwd);
    relays_.erase(it);
  }
}

void SwimDetector::on_ping_req(sim::NodeId from, const PingReqMsg& m) {
  for (const auto& u : m.gossip) apply_update(u);
  if (m.target == self_) {
    // Degenerate but legal: answer as if pinged directly.
    auto ack = std::make_shared<PingAckMsg>();
    ack->seq = m.seq;
    ack->target = self_;
    ack->gossip = pick_gossip();
    cb_.send(from, ack);
    return;
  }
  const std::uint64_t local_seq = next_seq_++;
  relays_.emplace(local_seq, Relay{from, m.seq, m.target});
  auto ping = std::make_shared<PingMsg>();
  ping->seq = local_seq;
  ping->gossip = pick_gossip();
  cb_.send(m.target, ping);
  // Bound relay-table memory: a relay unanswered after a full period is dead.
  cb_.timer(cfg_.protocol_period,
            [this, local_seq] { relays_.erase(local_seq); });
}

// ------------------------------------------------------------ state rules ----

void SwimDetector::apply_update(const MemberUpdate& u) {
  if (u.node == self_) {
    if (u.state != MemberState::kAlive) {
      refute(u.incarnation);
    } else if (u.incarnation < own_incarnation_) {
      // Stale alive about us circulating: re-assert the fresher one.
      enqueue_gossip(self_, MemberState::kAlive, own_incarnation_);
    }
    return;
  }
  auto it = table_.find(u.node);
  if (it == table_.end()) return;
  Member& m = it->second;

  // SWIM precedence: a higher incarnation (issued only by the member itself)
  // wins any state; at equal incarnation confirm > suspect > alive. The one
  // extension over the paper is that alive with a strictly higher incarnation
  // also overrides confirmed — that is how a restarted node (whose durable
  // incarnation counter only grows) re-joins without a separate join round.
  bool accept = false;
  switch (u.state) {
    case MemberState::kAlive:
      accept = u.incarnation > m.incarnation;
      break;
    case MemberState::kSuspect:
      accept = m.state != MemberState::kConfirmed &&
               (u.incarnation > m.incarnation ||
                (u.incarnation == m.incarnation &&
                 m.state == MemberState::kAlive));
      break;
    case MemberState::kConfirmed:
      accept = m.state != MemberState::kConfirmed &&
               u.incarnation >= m.incarnation;
      break;
  }
  if (!accept) return;

  m.state = u.state;
  m.incarnation = u.incarnation;
  ++m.token;
  enqueue_gossip(u.node, u.state, u.incarnation);
  if (u.state == MemberState::kSuspect) arm_suspicion_deadline(u.node);
  if (tracer_ != nullptr) {
    tracer_->emit(obs::EventKind::kMemberState, self_, u.node,
                  static_cast<std::uint64_t>(u.state), u.incarnation);
  }
  if (cb_.on_state) cb_.on_state(u.node, u.state, u.incarnation);
}

void SwimDetector::arm_suspicion_deadline(sim::NodeId node) {
  const std::uint64_t token = table_.at(node).token;
  const sim::Duration deadline =
      cfg_.protocol_period * static_cast<sim::Duration>(cfg_.suspicion_periods);
  cb_.timer(deadline, [this, node, token] {
    auto it = table_.find(node);
    if (it == table_.end()) return;
    if (it->second.state != MemberState::kSuspect ||
        it->second.token != token) {
      return;  // refuted or superseded in the meantime
    }
    apply_update(
        MemberUpdate{node, MemberState::kConfirmed, it->second.incarnation});
  });
}

void SwimDetector::refute(std::uint64_t seen_incarnation) {
  if (seen_incarnation < own_incarnation_) {
    // Old rumor, already beaten by our current incarnation; re-assert it.
    enqueue_gossip(self_, MemberState::kAlive, own_incarnation_);
    return;
  }
  own_incarnation_ = seen_incarnation + 1;
  enqueue_gossip(self_, MemberState::kAlive, own_incarnation_);
  if (cb_.on_incarnation) cb_.on_incarnation(own_incarnation_);
}

// ---------------------------------------------------------- dissemination ----

void SwimDetector::enqueue_gossip(sim::NodeId node, MemberState state,
                                  std::uint64_t incarnation) {
  gossip_[node] = Gossip{state, incarnation, gossip_budget_};
}

std::vector<MemberUpdate> SwimDetector::pick_gossip() {
  // Freshest-first dissemination: updates with the most remaining budget are
  // the least-spread ones; ties break by node id. std::map iteration plus an
  // explicit sort keeps selection deterministic under seed replay.
  std::vector<std::pair<sim::NodeId, Gossip*>> live;
  for (auto& [node, g] : gossip_) {
    if (g.left > 0) live.emplace_back(node, &g);
  }
  std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
    if (a.second->left != b.second->left) return a.second->left > b.second->left;
    return a.first < b.first;
  });
  std::vector<MemberUpdate> out;
  const std::size_t k = std::min(cfg_.gossip_updates, live.size());
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(MemberUpdate{live[i].first, live[i].second->state,
                               live[i].second->incarnation});
    --live[i].second->left;
  }
  return out;
}

}  // namespace lo::membership
