#include "membership/messages.hpp"

#include "util/serde.hpp"

namespace lo::membership {

const char* member_state_name(MemberState s) noexcept {
  switch (s) {
    case MemberState::kAlive: return "alive";
    case MemberState::kSuspect: return "suspect";
    case MemberState::kConfirmed: return "confirmed";
  }
  return "unknown";
}

namespace {

void write_updates(util::Writer& w, const std::vector<MemberUpdate>& ups) {
  w.u32(static_cast<std::uint32_t>(ups.size()));
  for (const auto& u : ups) {
    w.u32(u.node);
    w.u8(static_cast<std::uint8_t>(u.state));
    w.u64(u.incarnation);
  }
}

bool read_updates(util::Reader& r, std::vector<MemberUpdate>& out) {
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    MemberUpdate u;
    u.node = r.u32();
    const std::uint8_t s = r.u8();
    if (s > static_cast<std::uint8_t>(MemberState::kConfirmed)) return false;
    u.state = static_cast<MemberState>(s);
    u.incarnation = r.u64();
    out.push_back(u);
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> PingMsg::serialize() const {
  util::Writer w;
  w.u64(seq);
  write_updates(w, gossip);
  return w.take_u8();
}

std::optional<PingMsg> PingMsg::deserialize(
    std::span<const std::uint8_t> data) {
  try {
    util::Reader r(data);
    PingMsg m;
    m.seq = r.u64();
    if (!read_updates(r, m.gossip)) return std::nullopt;
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> PingAckMsg::serialize() const {
  util::Writer w;
  w.u64(seq);
  w.u32(target);
  write_updates(w, gossip);
  return w.take_u8();
}

std::optional<PingAckMsg> PingAckMsg::deserialize(
    std::span<const std::uint8_t> data) {
  try {
    util::Reader r(data);
    PingAckMsg m;
    m.seq = r.u64();
    m.target = r.u32();
    if (!read_updates(r, m.gossip)) return std::nullopt;
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> PingReqMsg::serialize() const {
  util::Writer w;
  w.u64(seq);
  w.u32(target);
  write_updates(w, gossip);
  return w.take_u8();
}

std::optional<PingReqMsg> PingReqMsg::deserialize(
    std::span<const std::uint8_t> data) {
  try {
    util::Reader r(data);
    PingReqMsg m;
    m.seq = r.u64();
    m.target = r.u32();
    if (!read_updates(r, m.gossip)) return std::nullopt;
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

}  // namespace lo::membership
