// Berlekamp–Massey over GF(2^m).
//
// Given a syndrome sequence s_1, ..., s_n this finds the minimal connection
// polynomial C(x) = 1 + c_1 x + ... + c_L x^L such that
//   s_j = sum_{i=1..L} c_i * s_{j-i}   for all L < j <= n.
// In PinSketch decoding the connection polynomial of the power-sum syndromes
// is the error locator Lambda(x) = prod_i (1 - X_i x) whose inverse roots are
// the elements of the set difference.
#pragma once

#include <cstdint>
#include <vector>

#include "gf/gf2m.hpp"
#include "gf/poly.hpp"

namespace lo::gf {

// Reusable scratch for the workspace overload: the three connection-poly
// buffers keep their capacity between calls, so a decoder that owns a
// BmWorkspace runs Berlekamp–Massey allocation-free in steady state.
struct BmWorkspace {
  Poly c;  // current connection polynomial (also the result)
  Poly b;  // previous connection polynomial at last length change
  Poly t;  // update scratch
};

// Returns the connection polynomial (ascending coefficients, C[0] == 1).
// The LFSR length is poly_deg(result). The returned reference aliases ws.c
// and stays valid until the next call with the same workspace.
const Poly& berlekamp_massey(const Field& f, const std::vector<std::uint64_t>& s,
                             BmWorkspace& ws);

// Convenience overload that owns its scratch and copies out the result.
Poly berlekamp_massey(const Field& f, const std::vector<std::uint64_t>& s);

}  // namespace lo::gf
