// Berlekamp–Massey over GF(2^m).
//
// Given a syndrome sequence s_1, ..., s_n this finds the minimal connection
// polynomial C(x) = 1 + c_1 x + ... + c_L x^L such that
//   s_j = sum_{i=1..L} c_i * s_{j-i}   for all L < j <= n.
// In PinSketch decoding the connection polynomial of the power-sum syndromes
// is the error locator Lambda(x) = prod_i (1 - X_i x) whose inverse roots are
// the elements of the set difference.
#pragma once

#include <cstdint>
#include <vector>

#include "gf/gf2m.hpp"
#include "gf/poly.hpp"

namespace lo::gf {

// Returns the connection polynomial (ascending coefficients, C[0] == 1).
// The LFSR length is poly_deg(result).
Poly berlekamp_massey(const Field& f, const std::vector<std::uint64_t>& s);

}  // namespace lo::gf
