#include "gf/gf2m.hpp"

#include <stdexcept>

#if defined(__x86_64__)
#include <wmmintrin.h>
#endif

namespace lo::gf {

namespace {

// Seroussi low-weight irreducible polynomials: entry m lists the middle
// exponents; the polynomial is x^m + x^a (+ x^b + x^c) + 1.
// Only the sizes used by the library are included.
std::uint64_t default_modulus(unsigned m) {
  auto tri = [m](unsigned a) {
    return (1ULL << m) | (1ULL << a) | 1ULL;
  };
  auto pent = [m](unsigned a, unsigned b, unsigned c) {
    return (1ULL << m) | (1ULL << a) | (1ULL << b) | (1ULL << c) | 1ULL;
  };
  switch (m) {
    case 8:  return pent(4, 3, 1);
    case 16: return pent(5, 3, 1);
    case 24: return pent(4, 3, 1);
    case 32: return pent(7, 3, 2);
    case 48: return pent(5, 3, 2);
    case 63: return tri(1);
    default:
      throw std::invalid_argument("unsupported GF(2^m) size");
  }
}

#if defined(__x86_64__)
__attribute__((target("pclmul"))) std::uint64_t clmul64(std::uint64_t a,
                                                        std::uint64_t b) {
  const __m128i va = _mm_set_epi64x(0, static_cast<long long>(a));
  const __m128i vb = _mm_set_epi64x(0, static_cast<long long>(b));
  return static_cast<std::uint64_t>(
      _mm_cvtsi128_si64(_mm_clmulepi64_si128(va, vb, 0)));
}

bool cpu_has_pclmul() { return __builtin_cpu_supports("pclmul"); }

// Bulk-kernel bodies live in target("pclmul") functions of their own so the
// carry-less multiplies inline and pipeline across loop iterations instead of
// paying a call per element (the whole point of the row-shaped API).
__attribute__((target("pclmul"))) void fma_row_clmul(
    std::uint64_t factor, const std::uint64_t* src, std::uint64_t* dst,
    std::size_t n, std::uint64_t mu, std::uint64_t mod, unsigned m,
    std::uint64_t mask) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = clmul64(factor, src[i]);
    const std::uint64_t q = clmul64(r >> m, mu) >> m;
    dst[i] ^= (r ^ clmul64(q, mod)) & mask;
  }
}

__attribute__((target("pclmul"))) std::uint64_t dot_rev_clmul(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
    std::uint64_t mu, std::uint64_t mod, unsigned m, std::uint64_t mask) {
  // Reduction is GF(2)-linear, so the unreduced products can be XOR-folded
  // and Barrett-reduced once at the end (all stay below 2m bits).
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc ^= clmul64(a[i], *(b - static_cast<std::ptrdiff_t>(i)));
  }
  const std::uint64_t q = clmul64(acc >> m, mu) >> m;
  return (acc ^ clmul64(q, mod)) & mask;
}

__attribute__((target("pclmul"))) void mul_many_clmul(
    std::uint64_t* p, const std::uint64_t* q, std::size_t n, std::uint64_t mu,
    std::uint64_t mod, unsigned m, std::uint64_t mask) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = clmul64(p[i], q[i]);
    const std::uint64_t qq = clmul64(r >> m, mu) >> m;
    p[i] = (r ^ clmul64(qq, mod)) & mask;
  }
}
#else
std::uint64_t clmul64(std::uint64_t, std::uint64_t) { return 0; }
bool cpu_has_pclmul() { return false; }
#endif

// floor(x^(2m) / f) over GF(2)[x] by long division; deg f == m, so the
// quotient has degree exactly m and fits a uint64 for m <= 32.
std::uint64_t compute_barrett_mu(unsigned m, std::uint64_t f) {
  unsigned __int128 num = static_cast<unsigned __int128>(1) << (2 * m);
  std::uint64_t q = 0;
  for (int i = static_cast<int>(m); i >= 0; --i) {
    if ((num >> (static_cast<unsigned>(i) + m)) & 1) {
      q |= 1ULL << i;
      num ^= static_cast<unsigned __int128>(f) << i;
    }
  }
  return q;
}

// GF(2)[x] helpers on bitmask polynomials (bit i = coeff of x^i).
int deg(std::uint64_t f) {
  if (f == 0) return -1;
  return 63 - __builtin_clzll(f);
}

// a * b mod f in GF(2)[x], deg f <= 63.
std::uint64_t gf2x_mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t f) {
  const int df = deg(f);
  std::uint64_t r = 0;
  while (b != 0) {
    if (b & 1) r ^= a;
    b >>= 1;
    a <<= 1;
    if (deg(a) == df) a ^= f;
  }
  return r;
}

std::uint64_t gf2x_gcd(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    int da = deg(a), db = deg(b);
    while (da >= db && a != 0) {
      a ^= b << (da - db);
      da = deg(a);
    }
    std::uint64_t t = a;
    a = b;
    b = t;
  }
  return a;
}

// x^(2^k) mod f via repeated squaring of polynomials mod f.
std::uint64_t gf2x_x_pow_pow2(unsigned k, std::uint64_t f) {
  std::uint64_t r = 2;  // the polynomial x
  for (unsigned i = 0; i < k; ++i) r = gf2x_mulmod(r, r, f);
  return r;
}

}  // namespace

Field::Field(unsigned m, Kernel kernel)
    : m_(m), modulus_(default_modulus(m)), kernel_(kernel) {
  max_element_ = (m == 64) ? ~0ULL : ((1ULL << m) - 1);
  clmul_ = kernel_ == Kernel::kAuto && m <= 32 && cpu_has_pclmul();
  if (clmul_) barrett_mu_ = compute_barrett_mu(m, modulus_);
  if (kernel_ != Kernel::kReference) build_sqr_tables();
}

const Field& Field::get(unsigned m) {
  switch (m) {
    case 8:  { static const Field f(8);  return f; }
    case 16: { static const Field f(16); return f; }
    case 24: { static const Field f(24); return f; }
    case 32: { static const Field f(32); return f; }
    case 48: { static const Field f(48); return f; }
    case 63: { static const Field f(63); return f; }
    default:
      throw std::invalid_argument("unsupported GF(2^m) size");
  }
}

const Field& Field::get_reference(unsigned m) {
  switch (m) {
    case 8:  { static const Field f(8, Kernel::kReference);  return f; }
    case 16: { static const Field f(16, Kernel::kReference); return f; }
    case 24: { static const Field f(24, Kernel::kReference); return f; }
    case 32: { static const Field f(32, Kernel::kReference); return f; }
    case 48: { static const Field f(48, Kernel::kReference); return f; }
    case 63: { static const Field f(63, Kernel::kReference); return f; }
    default:
      throw std::invalid_argument("unsupported GF(2^m) size");
  }
}

void Field::build_sqr_tables() {
  // Squaring is linear over GF(2): (sum_i a_i x^i)^2 = sum_i a_i x^(2i), so
  // sqr(a) is the XOR of x^(2i) mod f over the set bits of a. Precompute the
  // per-bit squares, then fold them into byte-indexed tables.
  std::array<std::uint64_t, 64> bit_sq{};
  std::uint64_t cur = 1;  // x^(2*0)
  const std::uint64_t x2 = mul_portable(2, 2);  // x^2 mod f (== 4 for m > 2)
  for (unsigned j = 0; j < m_; ++j) {
    bit_sq[j] = cur;
    cur = mul_portable(cur, x2);
  }
  nsqr_tabs_ = (m_ + 7) / 8;
  for (unsigned t = 0; t < nsqr_tabs_; ++t) {
    sqr_tab_[t][0] = 0;
    for (unsigned v = 1; v < 256; ++v) {
      const unsigned bit = 8 * t + static_cast<unsigned>(__builtin_ctz(v));
      const std::uint64_t contrib = bit < m_ ? bit_sq[bit] : 0;
      sqr_tab_[t][v] = sqr_tab_[t][v & (v - 1)] ^ contrib;
    }
  }
}

std::uint64_t Field::mul_portable(std::uint64_t a, std::uint64_t b) const noexcept {
  // Russian-peasant carry-less multiplication with on-the-fly reduction.
  std::uint64_t r = 0;
  const std::uint64_t top = 1ULL << m_;
  while (b != 0) {
    if (b & 1) r ^= a;
    b >>= 1;
    a <<= 1;
    if (a & top) a ^= modulus_;
  }
  return r;
}

std::uint64_t Field::mul_clmul(std::uint64_t a, std::uint64_t b) const noexcept {
  // Product has at most 2m-1 <= 63 bits for m <= 32, so one clmul suffices.
  // Single-pass Barrett reduction (Intel CLMUL-CRC construction): with
  // mu = floor(x^(2m)/f), the GF(2) quotient floor(r/f) equals
  // floor(floor(r/x^m) * mu / x^m) exactly for deg r <= 2m-1, so one
  // quotient estimate and one fold-back replace the data-dependent
  // `while (hi)` loop of the seed kernel.
  const std::uint64_t r = clmul64(a, b);
  const std::uint64_t q = clmul64(r >> m_, barrett_mu_) >> m_;
  return (r ^ clmul64(q, modulus_)) & max_element_;
}

void Field::fma_row(std::uint64_t factor, const std::uint64_t* src,
                    std::uint64_t* dst, std::size_t n) const noexcept {
  if (factor == 0 || n == 0) return;
#if defined(__x86_64__)
  if (clmul_) {
    fma_row_clmul(factor, src, dst, n, barrett_mu_, modulus_, m_, max_element_);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    if (src[i] != 0) dst[i] ^= mul_portable(factor, src[i]);
  }
}

std::uint64_t Field::dot_rev(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t n) const noexcept {
  if (n == 0) return 0;
#if defined(__x86_64__)
  if (clmul_) return dot_rev_clmul(a, b, n, barrett_mu_, modulus_, m_, max_element_);
#endif
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc ^= mul_portable(a[i], *(b - static_cast<std::ptrdiff_t>(i)));
  }
  return acc;
}

void Field::mul_many(std::uint64_t* p, const std::uint64_t* q,
                     std::size_t n) const noexcept {
#if defined(__x86_64__)
  if (clmul_) {
    mul_many_clmul(p, q, n, barrett_mu_, modulus_, m_, max_element_);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) p[i] = mul_portable(p[i], q[i]);
}

std::uint64_t Field::pow(std::uint64_t a, std::uint64_t e) const noexcept {
  std::uint64_t r = 1;
  while (e != 0) {
    if (e & 1) r = mul(r, a);
    a = sqr(a);
    e >>= 1;
  }
  return r;
}

std::uint64_t Field::pow_reference(std::uint64_t a, std::uint64_t e) const noexcept {
  std::uint64_t r = 1;
  while (e != 0) {
    if (e & 1) r = mul_portable(r, a);
    a = mul_portable(a, a);
    e >>= 1;
  }
  return r;
}

std::uint64_t Field::inv(std::uint64_t a) const noexcept {
  if (kernel_ == Kernel::kReference) return inv_reference(a);
  return inv_itoh_tsujii(a);
}

std::uint64_t Field::inv_itoh_tsujii(std::uint64_t a) const noexcept {
  // a^(2^m - 2) = (a^(2^(m-1) - 1))^2. Build b = a^(2^n - 1) for n = m-1 by
  // an addition chain on the bits of n: maintaining b = a^(2^k - 1),
  //   doubling:  b <- b^(2^k) * b      (k <- 2k, k squarings + 1 multiply)
  //   add-one:   b <- b^2 * a          (k <- k+1, 1 squaring + 1 multiply)
  // Total floor(log2 n) + popcount(n) - 1 multiplies; squarings are table
  // lookups. The seed ladder (inv_reference) costs ~2m full multiplies.
  const unsigned n = m_ - 1;
  std::uint64_t b = a;
  unsigned k = 1;
  for (int i = 62 - __builtin_clzll(n); i >= 0; --i) {
    std::uint64_t t = b;
    for (unsigned j = 0; j < k; ++j) t = sqr(t);
    b = mul(t, b);
    k *= 2;
    if ((n >> i) & 1) {
      b = mul(sqr(b), a);
      ++k;
    }
  }
  return sqr(b);
}

bool gf2_poly_is_irreducible(std::uint64_t f) {
  const int m = deg(f);
  if (m <= 0) return false;
  // Condition 1: x^(2^m) == x mod f.
  if (gf2x_x_pow_pow2(static_cast<unsigned>(m), f) != 2) return false;
  // Condition 2: gcd(x^(2^(m/p)) - x, f) == 1 for every prime p | m.
  int n = m;
  for (int p = 2; p * p <= n; ++p) {
    if (n % p != 0) continue;
    const std::uint64_t xq = gf2x_x_pow_pow2(static_cast<unsigned>(m / p), f);
    if (gf2x_gcd(xq ^ 2ULL, f) != 1) return false;
    while (n % p == 0) n /= p;
  }
  if (n > 1 && n < m) {
    const std::uint64_t xq = gf2x_x_pow_pow2(static_cast<unsigned>(m / n), f);
    if (gf2x_gcd(xq ^ 2ULL, f) != 1) return false;
  }
  if (n == m && m > 1) {  // m itself prime
    const std::uint64_t xq = gf2x_x_pow_pow2(1, f);
    if (gf2x_gcd(xq ^ 2ULL, f) != 1) return false;
  }
  return true;
}

}  // namespace lo::gf
