#include "gf/gf2m.hpp"

#include <stdexcept>

#if defined(__x86_64__)
#include <wmmintrin.h>
#endif

namespace lo::gf {

namespace {

// Seroussi low-weight irreducible polynomials: entry m lists the middle
// exponents; the polynomial is x^m + x^a (+ x^b + x^c) + 1.
// Only the sizes used by the library are included.
std::uint64_t default_modulus(unsigned m) {
  auto tri = [m](unsigned a) {
    return (1ULL << m) | (1ULL << a) | 1ULL;
  };
  auto pent = [m](unsigned a, unsigned b, unsigned c) {
    return (1ULL << m) | (1ULL << a) | (1ULL << b) | (1ULL << c) | 1ULL;
  };
  switch (m) {
    case 8:  return pent(4, 3, 1);
    case 16: return pent(5, 3, 1);
    case 24: return pent(4, 3, 1);
    case 32: return pent(7, 3, 2);
    case 48: return pent(5, 3, 2);
    case 63: return tri(1);
    default:
      throw std::invalid_argument("unsupported GF(2^m) size");
  }
}

#if defined(__x86_64__)
__attribute__((target("pclmul"))) std::uint64_t clmul64(std::uint64_t a,
                                                        std::uint64_t b) {
  const __m128i va = _mm_set_epi64x(0, static_cast<long long>(a));
  const __m128i vb = _mm_set_epi64x(0, static_cast<long long>(b));
  return static_cast<std::uint64_t>(
      _mm_cvtsi128_si64(_mm_clmulepi64_si128(va, vb, 0)));
}

bool cpu_has_pclmul() { return __builtin_cpu_supports("pclmul"); }
#else
std::uint64_t clmul64(std::uint64_t, std::uint64_t) { return 0; }
bool cpu_has_pclmul() { return false; }
#endif

// GF(2)[x] helpers on bitmask polynomials (bit i = coeff of x^i).
int deg(std::uint64_t f) {
  if (f == 0) return -1;
  return 63 - __builtin_clzll(f);
}

// a * b mod f in GF(2)[x], deg f <= 63.
std::uint64_t gf2x_mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t f) {
  const int df = deg(f);
  std::uint64_t r = 0;
  while (b != 0) {
    if (b & 1) r ^= a;
    b >>= 1;
    a <<= 1;
    if (deg(a) == df) a ^= f;
  }
  return r;
}

std::uint64_t gf2x_gcd(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    int da = deg(a), db = deg(b);
    while (da >= db && a != 0) {
      a ^= b << (da - db);
      da = deg(a);
    }
    std::uint64_t t = a;
    a = b;
    b = t;
  }
  return a;
}

// x^(2^k) mod f via repeated squaring of polynomials mod f.
std::uint64_t gf2x_x_pow_pow2(unsigned k, std::uint64_t f) {
  std::uint64_t r = 2;  // the polynomial x
  for (unsigned i = 0; i < k; ++i) r = gf2x_mulmod(r, r, f);
  return r;
}

}  // namespace

Field::Field(unsigned m) : m_(m), modulus_(default_modulus(m)) {
  max_element_ = (m == 64) ? ~0ULL : ((1ULL << m) - 1);
  fast_ = (m <= 32) && cpu_has_pclmul();
}

std::uint64_t Field::mul_portable(std::uint64_t a, std::uint64_t b) const noexcept {
  // Russian-peasant carry-less multiplication with on-the-fly reduction.
  std::uint64_t r = 0;
  const std::uint64_t top = 1ULL << m_;
  while (b != 0) {
    if (b & 1) r ^= a;
    b >>= 1;
    a <<= 1;
    if (a & top) a ^= modulus_;
  }
  return r;
}

std::uint64_t Field::mul_clmul(std::uint64_t a, std::uint64_t b) const noexcept {
  // Product has at most 2m-1 <= 63 bits for m <= 32, so one clmul suffices;
  // fold the high part down with the low-weight tail of the modulus.
  std::uint64_t r = clmul64(a, b);
  const std::uint64_t tail = modulus_ ^ (1ULL << m_);
  const std::uint64_t low_mask = max_element_;
  while (true) {
    const std::uint64_t hi = r >> m_;
    if (hi == 0) break;
    r = (r & low_mask) ^ clmul64(hi, tail);
  }
  return r;
}

std::uint64_t Field::pow(std::uint64_t a, std::uint64_t e) const noexcept {
  std::uint64_t r = 1;
  while (e != 0) {
    if (e & 1) r = mul(r, a);
    a = mul(a, a);
    e >>= 1;
  }
  return r;
}

std::uint64_t Field::inv(std::uint64_t a) const noexcept {
  // a^(2^m - 2); order of the multiplicative group is 2^m - 1.
  return pow(a, max_element_ - 1);
}

bool gf2_poly_is_irreducible(std::uint64_t f) {
  const int m = deg(f);
  if (m <= 0) return false;
  // Condition 1: x^(2^m) == x mod f.
  if (gf2x_x_pow_pow2(static_cast<unsigned>(m), f) != 2) return false;
  // Condition 2: gcd(x^(2^(m/p)) - x, f) == 1 for every prime p | m.
  int n = m;
  for (int p = 2; p * p <= n; ++p) {
    if (n % p != 0) continue;
    const std::uint64_t xq = gf2x_x_pow_pow2(static_cast<unsigned>(m / p), f);
    if (gf2x_gcd(xq ^ 2ULL, f) != 1) return false;
    while (n % p == 0) n /= p;
  }
  if (n > 1 && n < m) {
    const std::uint64_t xq = gf2x_x_pow_pow2(static_cast<unsigned>(m / n), f);
    if (gf2x_gcd(xq ^ 2ULL, f) != 1) return false;
  }
  if (n == m && m > 1) {  // m itself prime
    const std::uint64_t xq = gf2x_x_pow_pow2(1, f);
    if (gf2x_gcd(xq ^ 2ULL, f) != 1) return false;
  }
  return true;
}

}  // namespace lo::gf
