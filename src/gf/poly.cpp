#include "gf/poly.hpp"

namespace lo::gf {

void poly_trim(Poly& p) {
  while (!p.empty() && p.back() == 0) p.pop_back();
}

int poly_deg(const Poly& p) { return static_cast<int>(p.size()) - 1; }

Poly poly_add(const Poly& a, const Poly& b) {
  Poly r = a.size() >= b.size() ? a : b;
  const Poly& s = a.size() >= b.size() ? b : a;
  for (std::size_t i = 0; i < s.size(); ++i) r[i] ^= s[i];
  poly_trim(r);
  return r;
}

void poly_add_inplace(Poly& a, const Poly& b) {
  if (b.size() > a.size()) a.resize(b.size(), 0);
  for (std::size_t i = 0; i < b.size(); ++i) a[i] ^= b[i];
  poly_trim(a);
}

Poly poly_mul(const Field& f, const Poly& a, const Poly& b) {
  Poly r;
  poly_mul_into(f, a, b, r);
  return r;
}

void poly_mul_into(const Field& f, const Poly& a, const Poly& b, Poly& out) {
  if (a.empty() || b.empty()) {
    out.clear();
    return;
  }
  out.assign(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    f.fma_row(a[i], b.data(), out.data() + i, b.size());
  }
  poly_trim(out);
}

void poly_sqr_into(const Field& f, const Poly& p, Poly& out) {
  if (p.empty()) {
    out.clear();
    return;
  }
  out.assign(2 * p.size() - 1, 0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    out[2 * i] = f.sqr(p[i]);
  }
  poly_trim(out);
}

void poly_mod_inplace(const Field& f, Poly& a, const Poly& b) {
  const int db = poly_deg(b);
  int da = poly_deg(a);
  if (da < db) return;
  const std::uint64_t lead_inv = f.inv(b[static_cast<std::size_t>(db)]);
  while (da >= db) {
    const auto ida = static_cast<std::size_t>(da);
    if (a[ida] != 0) {
      const std::uint64_t factor = f.mul(a[ida], lead_inv);
      const std::size_t shift = static_cast<std::size_t>(da - db);
      f.fma_row(factor, b.data(), a.data() + shift,
                static_cast<std::size_t>(db));
      a[ida] = 0;
    }
    --da;
  }
  a.resize(static_cast<std::size_t>(db > 0 ? db : 0));
  poly_trim(a);
}

void poly_divmod_inplace(const Field& f, Poly& a, const Poly& b, Poly& q) {
  const int db = poly_deg(b);
  int da = poly_deg(a);
  if (da < db) {
    q.clear();
    return;
  }
  q.assign(static_cast<std::size_t>(da - db) + 1, 0);
  const std::uint64_t lead_inv = f.inv(b[static_cast<std::size_t>(db)]);
  while (da >= db) {
    const auto ida = static_cast<std::size_t>(da);
    if (a[ida] != 0) {
      const std::uint64_t factor = f.mul(a[ida], lead_inv);
      const std::size_t shift = static_cast<std::size_t>(da - db);
      q[shift] = factor;
      f.fma_row(factor, b.data(), a.data() + shift,
                static_cast<std::size_t>(db));
      a[ida] = 0;
    }
    --da;
  }
  a.resize(static_cast<std::size_t>(db > 0 ? db : 0));
  poly_trim(a);
  poly_trim(q);
}

Poly poly_mod(const Field& f, Poly a, const Poly& b) {
  poly_mod_inplace(f, a, b);
  return a;
}

Poly poly_div(const Field& f, Poly a, const Poly& b) {
  Poly q;
  poly_divmod_inplace(f, a, b, q);
  return q;
}

void poly_gcd_inplace(const Field& f, Poly& a, Poly& b) {
  while (!b.empty()) {
    poly_mod_inplace(f, a, b);
    std::swap(a, b);
  }
  poly_make_monic(f, a);
}

Poly poly_gcd(const Field& f, Poly a, Poly b) {
  poly_gcd_inplace(f, a, b);
  return a;
}

void poly_make_monic(const Field& f, Poly& p) {
  if (p.empty()) return;
  const std::uint64_t lead = p.back();
  if (lead == 1) return;
  const std::uint64_t li = f.inv(lead);
  for (auto& c : p) c = f.mul(c, li);
}

std::uint64_t poly_eval(const Field& f, const Poly& p, std::uint64_t x) {
  std::uint64_t r = 0;
  for (std::size_t i = p.size(); i-- > 0;) {
    r = f.mul(r, x) ^ p[i];
  }
  return r;
}

Poly poly_sqr(const Field& f, const Poly& p) {
  Poly r;
  poly_sqr_into(f, p, r);
  return r;
}

}  // namespace lo::gf
