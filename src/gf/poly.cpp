#include "gf/poly.hpp"

namespace lo::gf {

void poly_trim(Poly& p) {
  while (!p.empty() && p.back() == 0) p.pop_back();
}

int poly_deg(const Poly& p) { return static_cast<int>(p.size()) - 1; }

Poly poly_add(const Poly& a, const Poly& b) {
  Poly r = a.size() >= b.size() ? a : b;
  const Poly& s = a.size() >= b.size() ? b : a;
  for (std::size_t i = 0; i < s.size(); ++i) r[i] ^= s[i];
  poly_trim(r);
  return r;
}

Poly poly_mul(const Field& f, const Poly& a, const Poly& b) {
  if (a.empty() || b.empty()) return {};
  Poly r(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (b[j] == 0) continue;
      r[i + j] ^= f.mul(a[i], b[j]);
    }
  }
  poly_trim(r);
  return r;
}

Poly poly_mod(const Field& f, Poly a, const Poly& b) {
  const int db = poly_deg(b);
  const std::uint64_t lead_inv = f.inv(b[db]);
  while (poly_deg(a) >= db) {
    const int da = poly_deg(a);
    const std::uint64_t factor = f.mul(a[da], lead_inv);
    const int shift = da - db;
    for (int i = 0; i <= db; ++i) {
      a[shift + i] ^= f.mul(factor, b[i]);
    }
    poly_trim(a);
  }
  return a;
}

Poly poly_div(const Field& f, Poly a, const Poly& b) {
  const int db = poly_deg(b);
  if (poly_deg(a) < db) return {};
  Poly q(a.size() - b.size() + 1, 0);
  const std::uint64_t lead_inv = f.inv(b[db]);
  while (poly_deg(a) >= db) {
    const int da = poly_deg(a);
    const std::uint64_t factor = f.mul(a[da], lead_inv);
    const int shift = da - db;
    q[shift] = factor;
    for (int i = 0; i <= db; ++i) {
      a[shift + i] ^= f.mul(factor, b[i]);
    }
    poly_trim(a);
  }
  poly_trim(q);
  return q;
}

Poly poly_gcd(const Field& f, Poly a, Poly b) {
  while (!b.empty()) {
    Poly r = poly_mod(f, a, b);
    a = std::move(b);
    b = std::move(r);
  }
  poly_make_monic(f, a);
  return a;
}

void poly_make_monic(const Field& f, Poly& p) {
  if (p.empty()) return;
  const std::uint64_t lead = p.back();
  if (lead == 1) return;
  const std::uint64_t li = f.inv(lead);
  for (auto& c : p) c = f.mul(c, li);
}

std::uint64_t poly_eval(const Field& f, const Poly& p, std::uint64_t x) {
  std::uint64_t r = 0;
  for (std::size_t i = p.size(); i-- > 0;) {
    r = f.mul(r, x) ^ p[i];
  }
  return r;
}

Poly poly_sqr(const Field& f, const Poly& p) {
  if (p.empty()) return {};
  Poly r(2 * p.size() - 1, 0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    r[2 * i] = f.sqr(p[i]);
  }
  poly_trim(r);
  return r;
}

}  // namespace lo::gf
