#include "gf/root_find.hpp"

#include "util/rng.hpp"

namespace lo::gf {

namespace {

// x^(2^m) mod f, by m squarings, left in ws.frob. f splits into distinct
// linear factors over GF(2^m) iff f divides x^(2^m) - x, i.e. iff this equals
// x mod f. Checking this up front makes rejection of invalid locators (the
// common case when a sketch has overflowed) cheap and certain instead of
// probabilistic. The squaring chain runs entirely in the workspace buffers.
void frobenius_x_ws(const Field& fld, const Poly& f, RootWorkspace& ws) {
  ws.frob.assign(2, 0);
  ws.frob[1] = 1;  // x
  poly_mod_inplace(fld, ws.frob, f);
  for (unsigned i = 0; i < fld.bits(); ++i) {
    poly_sqr_into(fld, ws.frob, ws.sqr_tmp);
    poly_mod_inplace(fld, ws.sqr_tmp, f);
    std::swap(ws.frob, ws.sqr_tmp);
  }
}

// T_beta(x) mod f, built by repeated Frobenius squaring into ws.trace.
void trace_poly_ws(const Field& fld, std::uint64_t beta, const Poly& f,
                   RootWorkspace& ws) {
  ws.frob.assign(2, 0);
  ws.frob[1] = beta;  // beta * x
  poly_mod_inplace(fld, ws.frob, f);
  ws.trace = ws.frob;
  for (unsigned i = 1; i < fld.bits(); ++i) {
    poly_sqr_into(fld, ws.frob, ws.sqr_tmp);
    poly_mod_inplace(fld, ws.sqr_tmp, f);
    std::swap(ws.frob, ws.sqr_tmp);
    poly_add_inplace(ws.trace, ws.frob);
  }
}

// Recursive splitter. `out` accumulates roots; returns false on any evidence
// that p does not split into distinct linear factors. p is clobbered; the
// per-level g / q factors live in the workspace pool so repeated decodes
// reuse their storage.
bool split(const Field& fld, Poly& p, util::Rng& rng, int depth,
           RootWorkspace& ws, std::vector<std::uint64_t>& out) {
  poly_make_monic(fld, p);
  const int d = poly_deg(p);
  if (d <= 0) return d == 0 || p.empty();
  if (d == 1) {
    out.push_back(p[0]);  // x + r => root r (char 2)
    return true;
  }
  if (d == 2 && p[1] == 0) {
    // x^2 + c: double root sqrt(c) — not squarefree, cannot be a valid locator.
    return false;
  }
  // A polynomial splitting into distinct linear factors has degree <= |field|;
  // also guard the recursion depth against adversarial non-splitting inputs.
  if (depth > 200) return false;

  const std::size_t mk = ws.pool.mark();
  Poly& g = ws.pool.acquire();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint64_t beta = fld.map_nonzero(rng.next());
    trace_poly_ws(fld, beta, p, ws);
    g = p;
    ws.gcd_tmp = ws.trace;
    poly_gcd_inplace(fld, g, ws.gcd_tmp);
    if (poly_deg(g) <= 0) {
      // All roots might have trace 1 for this beta: try gcd(p, T + 1).
      ws.trace1 = ws.trace;
      if (ws.trace1.empty()) ws.trace1.push_back(0);
      ws.trace1[0] ^= 1;
      poly_trim(ws.trace1);
      g = p;
      poly_gcd_inplace(fld, g, ws.trace1);
    }
    const int dg = poly_deg(g);
    if (dg > 0 && dg < d) {
      Poly& q = ws.pool.acquire();
      ws.gcd_tmp = p;
      poly_divmod_inplace(fld, ws.gcd_tmp, g, q);
      const bool ok = split(fld, g, rng, depth + 1, ws, out) &&
                      split(fld, q, rng, depth + 1, ws, out);
      ws.pool.release_to(mk);
      return ok;
    }
  }
  ws.pool.release_to(mk);
  return false;  // no split found: p almost surely has irreducible factors
}

}  // namespace

bool find_roots_ws(const Field& f, Poly& p, std::uint64_t seed,
                   RootWorkspace& ws, std::vector<std::uint64_t>& out) {
  out.clear();
  poly_trim(p);
  if (p.empty()) return false;  // zero polynomial: undefined
  const int d = poly_deg(p);
  if (d > 1) {
    frobenius_x_ws(f, p, ws);
    const bool is_x = ws.frob.size() == 2 && ws.frob[0] == 0 && ws.frob[1] == 1;
    if (!is_x) return false;  // does not split: reject early
  }
  out.reserve(static_cast<std::size_t>(d));
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  if (!split(f, p, rng, 0, ws, out)) return false;
  if (static_cast<int>(out.size()) != d) return false;
  // Distinctness check (duplicates mean the input was not squarefree).
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t j = i + 1; j < out.size(); ++j) {
      if (out[i] == out[j]) return false;
    }
  }
  return true;
}

std::optional<std::vector<std::uint64_t>> find_roots(const Field& f, Poly p,
                                                     std::uint64_t seed) {
  RootWorkspace ws;
  std::vector<std::uint64_t> roots;
  if (!find_roots_ws(f, p, seed, ws, roots)) return std::nullopt;
  return roots;
}

}  // namespace lo::gf
