#include "gf/root_find.hpp"

#include "util/rng.hpp"

namespace lo::gf {

namespace {

// x^(2^m) mod f, by m squarings. f splits into distinct linear factors over
// GF(2^m) iff f divides x^(2^m) - x, i.e. iff this equals x mod f. Checking
// this up front makes rejection of invalid locators (the common case when a
// sketch has overflowed) cheap and certain instead of probabilistic.
Poly frobenius_x(const Field& fld, const Poly& f) {
  Poly p{0, 1};  // x
  p = poly_mod(fld, p, f);
  for (unsigned i = 0; i < fld.bits(); ++i) {
    p = poly_mod(fld, poly_sqr(fld, p), f);
  }
  return p;
}

// T_beta(x) mod f, built by repeated Frobenius squaring.
Poly trace_poly(const Field& fld, std::uint64_t beta, const Poly& f) {
  Poly p{0, beta};  // beta * x
  p = poly_mod(fld, p, f);
  Poly t = p;
  for (unsigned i = 1; i < fld.bits(); ++i) {
    p = poly_mod(fld, poly_sqr(fld, p), f);
    t = poly_add(t, p);
  }
  return t;
}

// Recursive splitter. `out` accumulates roots; returns false on any evidence
// that p does not split into distinct linear factors.
bool split(const Field& fld, Poly p, util::Rng& rng, int depth,
           std::vector<std::uint64_t>& out) {
  poly_make_monic(fld, p);
  const int d = poly_deg(p);
  if (d <= 0) return d == 0 || p.empty();
  if (d == 1) {
    out.push_back(p[0]);  // x + r => root r (char 2)
    return true;
  }
  if (d == 2 && p[1] == 0) {
    // x^2 + c: double root sqrt(c) — not squarefree, cannot be a valid locator.
    return false;
  }
  // A polynomial splitting into distinct linear factors has degree <= |field|;
  // also guard the recursion depth against adversarial non-splitting inputs.
  if (depth > 200) return false;

  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint64_t beta = fld.map_nonzero(rng.next());
    const Poly t = trace_poly(fld, beta, p);
    Poly g = poly_gcd(fld, p, t);
    if (poly_deg(g) <= 0) {
      // All roots might have trace 1 for this beta: try gcd(p, T + 1).
      Poly t1 = t;
      if (t1.empty()) t1.push_back(0);
      t1[0] ^= 1;
      poly_trim(t1);
      g = poly_gcd(fld, p, t1);
    }
    const int dg = poly_deg(g);
    if (dg > 0 && dg < d) {
      const Poly q = poly_div(fld, p, g);
      return split(fld, g, rng, depth + 1, out) &&
             split(fld, q, rng, depth + 1, out);
    }
  }
  return false;  // no split found: p almost surely has irreducible factors
}

}  // namespace

std::optional<std::vector<std::uint64_t>> find_roots(const Field& f, Poly p,
                                                     std::uint64_t seed) {
  poly_trim(p);
  if (p.empty()) return std::nullopt;  // zero polynomial: undefined
  const int d = poly_deg(p);
  if (d > 1) {
    Poly x_frob = frobenius_x(f, p);
    const Poly x_poly{0, 1};
    if (x_frob != x_poly) return std::nullopt;  // does not split: reject early
  }
  std::vector<std::uint64_t> roots;
  roots.reserve(static_cast<std::size_t>(d));
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  if (!split(f, std::move(p), rng, 0, roots)) return std::nullopt;
  if (static_cast<int>(roots.size()) != d) return std::nullopt;
  // Distinctness check (duplicates mean the input was not squarefree).
  for (std::size_t i = 0; i < roots.size(); ++i) {
    for (std::size_t j = i + 1; j < roots.size(); ++j) {
      if (roots[i] == roots[j]) return std::nullopt;
    }
  }
  return roots;
}

}  // namespace lo::gf
