#include "gf/berlekamp_massey.hpp"

namespace lo::gf {

Poly berlekamp_massey(const Field& f, const std::vector<std::uint64_t>& s) {
  Poly c{1};  // current connection polynomial
  Poly b{1};  // previous connection polynomial at last length change
  int l = 0;          // current LFSR length
  int x = 1;          // steps since last length change
  std::uint64_t b_disc = 1;  // discrepancy at last length change

  for (std::size_t n = 0; n < s.size(); ++n) {
    // Discrepancy d = s_n + sum_{i=1..l} c_i * s_{n-i}.
    std::uint64_t d = s[n];
    for (int i = 1; i <= l && i <= poly_deg(c); ++i) {
      d ^= f.mul(c[static_cast<std::size_t>(i)], s[n - static_cast<std::size_t>(i)]);
    }
    if (d == 0) {
      ++x;
      continue;
    }
    const Poly c_prev = c;
    // c -= (d / b_disc) * x^x * b
    const std::uint64_t coef = f.mul(d, f.inv(b_disc));
    Poly shifted(static_cast<std::size_t>(x), 0);
    shifted.reserve(b.size() + static_cast<std::size_t>(x));
    for (auto v : b) shifted.push_back(f.mul(coef, v));
    c = poly_add(c, shifted);
    if (2 * l <= static_cast<int>(n)) {
      l = static_cast<int>(n) + 1 - l;
      b = c_prev;
      b_disc = d;
      x = 1;
    } else {
      ++x;
    }
  }
  // Degree can be below l if trailing coefficients cancelled; pad so callers
  // can rely on poly_deg(c) <= l while the connection property holds.
  poly_trim(c);
  return c;
}

}  // namespace lo::gf
