#include "gf/berlekamp_massey.hpp"

#include <algorithm>

namespace lo::gf {

const Poly& berlekamp_massey(const Field& f, const std::vector<std::uint64_t>& s,
                             BmWorkspace& ws) {
  Poly& c = ws.c;  // current connection polynomial
  Poly& b = ws.b;  // previous connection polynomial at last length change
  Poly& t = ws.t;  // update scratch: next connection polynomial
  c.assign(1, 1);
  b.assign(1, 1);
  int l = 0;          // current LFSR length
  int x = 1;          // steps since last length change
  std::uint64_t b_disc = 1;  // discrepancy at last length change

  for (std::size_t n = 0; n < s.size(); ++n) {
    // Discrepancy d = s_n + sum_{i=1..l} c_i * s_{n-i}, folded as one
    // reversed dot product so the multiplies pipeline.
    const std::size_t len =
        static_cast<std::size_t>(std::min(l, poly_deg(c)));
    std::uint64_t d = s[n];
    if (len > 0) d ^= f.dot_rev(c.data() + 1, &s[n - 1], len);
    if (d == 0) {
      ++x;
      continue;
    }
    // t = c + (d / b_disc) * x^x * b, built directly in the scratch buffer
    // (the seed implementation copied c and materialized the shifted addend).
    const std::uint64_t coef = f.mul(d, f.inv(b_disc));
    const std::size_t ux = static_cast<std::size_t>(x);
    t.assign(std::max(c.size(), b.size() + ux), 0);
    std::copy(c.begin(), c.end(), t.begin());
    f.fma_row(coef, b.data(), t.data() + ux, b.size());
    poly_trim(t);
    if (2 * l <= static_cast<int>(n)) {
      l = static_cast<int>(n) + 1 - l;
      std::swap(b, c);  // b <- previous c
      std::swap(c, t);  // c <- updated polynomial
      b_disc = d;
      x = 1;
    } else {
      std::swap(c, t);
      ++x;
    }
  }
  // Degree can be below l if trailing coefficients cancelled; poly_trim keeps
  // the invariant poly_deg(c) <= l while the connection property holds.
  poly_trim(c);
  return c;
}

Poly berlekamp_massey(const Field& f, const std::vector<std::uint64_t>& s) {
  BmWorkspace ws;
  return berlekamp_massey(f, s, ws);
}

}  // namespace lo::gf
