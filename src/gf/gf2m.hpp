// Arithmetic in GF(2^m), 2 <= m <= 63.
//
// This is the algebraic substrate of the Minisketch/PinSketch codec
// (Sec. 4.2 of the paper): set sketches are power sums of field elements and
// decoding runs Berlekamp–Massey and root finding over this field.
//
// Field moduli are the low-weight irreducible polynomials from Seroussi,
// "Table of Low-Weight Binary Irreducible Polynomials" (HP Labs HPL-98-135).
// Irreducibility is re-verified by unit tests via gf2_poly_is_irreducible.
//
// Kernel tiers (see DESIGN.md §3d):
//  - mul: PCLMULQDQ carry-less multiply + single-pass Barrett reduction with
//    a precomputed folding constant mu = floor(x^(2m)/f) for m <= 32 on CPUs
//    with PCLMUL; portable shift-and-xor loop otherwise.
//  - sqr: squaring is GF(2)-linear, so it is a precomputed byte-sliced table
//    lookup (ceil(m/8) x 256 entries) instead of a general multiply.
//  - inv: Itoh–Tsujii addition chain on m-1 (a handful of multiplies plus
//    cheap table squarings) instead of a 2m-multiply pow ladder.
// The seed kernels are retained as *_reference on every instance and serve
// as the differential oracle for the fast paths (tests/test_gf_kernels.cpp).
//
// Precomputed tables make a Field ~17 KB, so protocol code shares immutable
// per-m instances via Field::get(m) instead of constructing its own.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace lo::gf {

class Field {
 public:
  enum class Kernel : std::uint8_t {
    kAuto,       // fastest available (PCLMUL when the CPU has it)
    kPortable,   // fast portable kernels, PCLMUL forced off (test coverage)
    kReference,  // the seed kernels: loop mul, sqr = mul, inv = pow ladder
  };

  // Constructs GF(2^m) with the default low-weight modulus for m.
  explicit Field(unsigned m, Kernel kernel = Kernel::kAuto);

  // Shared immutable instance registry: tables are built once per (m, tier)
  // and reused by every sketch. Throws std::invalid_argument for unsupported
  // m, like the constructor. The returned reference lives forever.
  static const Field& get(unsigned m);
  static const Field& get_reference(unsigned m);

  unsigned bits() const noexcept { return m_; }
  // Reduction polynomial including the x^m term.
  std::uint64_t modulus() const noexcept { return modulus_; }
  // Number of nonzero field elements, 2^m - 1.
  std::uint64_t order() const noexcept { return max_element_; }
  Kernel kernel() const noexcept { return kernel_; }
  // True when mul() runs on the PCLMUL + Barrett path.
  bool uses_clmul() const noexcept { return clmul_; }

  std::uint64_t add(std::uint64_t a, std::uint64_t b) const noexcept { return a ^ b; }

  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const noexcept {
    return clmul_ ? mul_clmul(a, b) : mul_portable(a, b);
  }

  std::uint64_t sqr(std::uint64_t a) const noexcept {
    if (kernel_ == Kernel::kReference) return mul(a, a);
    std::uint64_t r = sqr_tab_[0][a & 0xff];
    for (unsigned t = 1; t < nsqr_tabs_; ++t) {
      r ^= sqr_tab_[t][(a >> (8 * t)) & 0xff];
    }
    return r;
  }

  // a^e by square-and-multiply; 0^0 == 1 by convention.
  std::uint64_t pow(std::uint64_t a, std::uint64_t e) const noexcept;

  // Multiplicative inverse; precondition a != 0 (0 maps to 0).
  std::uint64_t inv(std::uint64_t a) const noexcept;

  // Maps an arbitrary 64-bit value into a nonzero field element
  // (uniform over [1, 2^m - 1]; used to map transaction ids into sketches).
  std::uint64_t map_nonzero(std::uint64_t raw) const noexcept {
    return raw % max_element_ + 1;
  }

  // ---- bulk kernels ----
  // The polynomial hot loops (mod/div elimination rows, Berlekamp–Massey
  // discrepancies, syndrome power chains) are constant-times-vector shapes.
  // Routing them through one call per row instead of one call per element
  // lets the PCLMUL path inline into a pipelined loop and amortizes the
  // kernel dispatch; values are identical to elementwise mul().

  // dst[i] ^= factor * src[i] for i < n. dst and src must not overlap.
  void fma_row(std::uint64_t factor, const std::uint64_t* src,
               std::uint64_t* dst, std::size_t n) const noexcept;

  // XOR_{i<n} a[i] * b[-i] (b walks backward; pass b = &s[k] to fold
  // a[0..n) against s[k], s[k-1], ...). The BM discrepancy kernel.
  std::uint64_t dot_rev(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n) const noexcept;

  // p[j] = p[j] * q[j] for j < n: advances n independent power chains one
  // step (the batched sketch add / syndrome check kernel).
  void mul_many(std::uint64_t* p, const std::uint64_t* q,
                std::size_t n) const noexcept;

  // ---- seed kernels, kept verbatim as the differential oracle ----
  std::uint64_t mul_reference(std::uint64_t a, std::uint64_t b) const noexcept {
    return mul_portable(a, b);
  }
  std::uint64_t sqr_reference(std::uint64_t a) const noexcept {
    return mul_portable(a, a);
  }
  std::uint64_t pow_reference(std::uint64_t a, std::uint64_t e) const noexcept;
  std::uint64_t inv_reference(std::uint64_t a) const noexcept {
    // a^(2^m - 2); order of the multiplicative group is 2^m - 1.
    return pow_reference(a, max_element_ - 1);
  }

 private:
  std::uint64_t mul_portable(std::uint64_t a, std::uint64_t b) const noexcept;
  std::uint64_t mul_clmul(std::uint64_t a, std::uint64_t b) const noexcept;
  std::uint64_t inv_itoh_tsujii(std::uint64_t a) const noexcept;
  void build_sqr_tables();

  unsigned m_;
  std::uint64_t modulus_;
  std::uint64_t max_element_;
  // Barrett folding constant floor(x^(2m) / modulus), degree exactly m.
  std::uint64_t barrett_mu_ = 0;
  Kernel kernel_;
  bool clmul_ = false;
  // Byte-sliced GF(2)-linear squaring map: sqr(a) is the XOR of
  // sqr_tab_[t][byte t of a] over the ceil(m/8) populated tables.
  unsigned nsqr_tabs_ = 0;
  std::array<std::array<std::uint64_t, 256>, 8> sqr_tab_{};
};

// Irreducibility test for a GF(2)[x] polynomial given as a bitmask
// (bit i = coefficient of x^i). Used by tests to validate the modulus table:
// f of degree m is irreducible iff x^(2^m) == x (mod f) and
// gcd(x^(2^(m/p)) - x, f) == 1 for every prime p dividing m.
bool gf2_poly_is_irreducible(std::uint64_t f);

}  // namespace lo::gf
