// Arithmetic in GF(2^m), 2 <= m <= 63.
//
// This is the algebraic substrate of the Minisketch/PinSketch codec
// (Sec. 4.2 of the paper): set sketches are power sums of field elements and
// decoding runs Berlekamp–Massey and root finding over this field.
//
// Field moduli are the low-weight irreducible polynomials from Seroussi,
// "Table of Low-Weight Binary Irreducible Polynomials" (HP Labs HPL-98-135).
// Irreducibility is re-verified by unit tests via gf2_poly_is_irreducible.
//
// Multiplication uses the PCLMULQDQ carry-less multiplier when the CPU
// supports it (for m <= 32) and falls back to a portable shift-and-xor loop.
#pragma once

#include <cstdint>
#include <vector>

namespace lo::gf {

class Field {
 public:
  // Constructs GF(2^m) with the default low-weight modulus for m.
  explicit Field(unsigned m);

  unsigned bits() const noexcept { return m_; }
  // Reduction polynomial including the x^m term.
  std::uint64_t modulus() const noexcept { return modulus_; }
  // Number of nonzero field elements, 2^m - 1.
  std::uint64_t order() const noexcept { return max_element_; }

  std::uint64_t add(std::uint64_t a, std::uint64_t b) const noexcept { return a ^ b; }

  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const noexcept {
    return fast_ ? mul_clmul(a, b) : mul_portable(a, b);
  }

  std::uint64_t sqr(std::uint64_t a) const noexcept { return mul(a, a); }

  // a^e by square-and-multiply; 0^0 == 1 by convention.
  std::uint64_t pow(std::uint64_t a, std::uint64_t e) const noexcept;

  // Multiplicative inverse; precondition a != 0.
  std::uint64_t inv(std::uint64_t a) const noexcept;

  // Maps an arbitrary 64-bit value into a nonzero field element
  // (uniform over [1, 2^m - 1]; used to map transaction ids into sketches).
  std::uint64_t map_nonzero(std::uint64_t raw) const noexcept {
    return raw % max_element_ + 1;
  }

 private:
  std::uint64_t mul_portable(std::uint64_t a, std::uint64_t b) const noexcept;
  std::uint64_t mul_clmul(std::uint64_t a, std::uint64_t b) const noexcept;

  unsigned m_;
  std::uint64_t modulus_;
  std::uint64_t max_element_;
  bool fast_ = false;
};

// Irreducibility test for a GF(2)[x] polynomial given as a bitmask
// (bit i = coefficient of x^i). Used by tests to validate the modulus table:
// f of degree m is irreducible iff x^(2^m) == x (mod f) and
// gcd(x^(2^(m/p)) - x, f) == 1 for every prime p dividing m.
bool gf2_poly_is_irreducible(std::uint64_t f);

}  // namespace lo::gf
