// Dense univariate polynomials over GF(2^m).
//
// Coefficients are stored in ascending degree order (coeffs[i] is the
// coefficient of x^i). The zero polynomial is an empty vector. All operations
// take the Field explicitly; a Poly does not own its field.
//
// Two API tiers:
//  - value-returning helpers (poly_add, poly_mul, ...) allocate their result;
//    convenient for tests and cold paths.
//  - in-place / *_into variants write into caller-provided buffers and are
//    the substrate of the allocation-free sketch decode path: a reused
//    buffer's capacity survives between calls, so steady-state decoding does
//    not touch the allocator.
// PolyPool hands out stable, reusable scratch buffers for recursive
// algorithms (the root-finder splitter) that need per-level storage.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gf/gf2m.hpp"

namespace lo::gf {

using Poly = std::vector<std::uint64_t>;

// Removes leading zero coefficients.
void poly_trim(Poly& p);

int poly_deg(const Poly& p);  // -1 for the zero polynomial

Poly poly_add(const Poly& a, const Poly& b);  // == subtraction in char 2

Poly poly_mul(const Field& f, const Poly& a, const Poly& b);

// (a mod b); precondition: b != 0.
Poly poly_mod(const Field& f, Poly a, const Poly& b);

// Quotient of a / b; precondition: b != 0.
Poly poly_div(const Field& f, Poly a, const Poly& b);

Poly poly_gcd(const Field& f, Poly a, Poly b);

// Scales so the leading coefficient is 1; zero polynomial unchanged.
void poly_make_monic(const Field& f, Poly& p);

std::uint64_t poly_eval(const Field& f, const Poly& p, std::uint64_t x);

// p(x)^2 using the Frobenius identity (sum a_i x^i)^2 = sum a_i^2 x^(2i).
Poly poly_sqr(const Field& f, const Poly& p);

// ---- workspace variants (no allocation beyond buffer growth) ----

// a ^= b (polynomial addition in char 2); trims the result.
void poly_add_inplace(Poly& a, const Poly& b);

// out = a * b; out must not alias a or b.
void poly_mul_into(const Field& f, const Poly& a, const Poly& b, Poly& out);

// out = p^2; out must not alias p.
void poly_sqr_into(const Field& f, const Poly& p, Poly& out);

// a = a mod b; precondition: b != 0. Single top-down elimination pass with
// degree tracking (no repeated trim scans).
void poly_mod_inplace(const Field& f, Poly& a, const Poly& b);

// a = a mod b, q = a div b; q must not alias a or b.
void poly_divmod_inplace(const Field& f, Poly& a, const Poly& b, Poly& q);

// a = gcd(a, b) made monic; clobbers b (used as the division scratch).
void poly_gcd_inplace(const Field& f, Poly& a, Poly& b);

// Pool of reusable Poly buffers with stable references: recursive algorithms
// acquire() per-level scratch and roll back to a mark() on scope exit. The
// buffers (and their capacity) persist across uses, so a pool embedded in a
// long-lived workspace makes repeated decodes allocation-free.
class PolyPool {
 public:
  Poly& acquire() {
    if (used_ == pool_.size()) pool_.push_back(std::make_unique<Poly>());
    Poly& p = *pool_[used_++];
    p.clear();
    return p;
  }
  std::size_t mark() const noexcept { return used_; }
  void release_to(std::size_t mark) noexcept { used_ = mark; }

 private:
  std::vector<std::unique_ptr<Poly>> pool_;
  std::size_t used_ = 0;
};

}  // namespace lo::gf
