// Dense univariate polynomials over GF(2^m).
//
// Coefficients are stored in ascending degree order (coeffs[i] is the
// coefficient of x^i). The zero polynomial is an empty vector. All operations
// take the Field explicitly; a Poly does not own its field.
#pragma once

#include <cstdint>
#include <vector>

#include "gf/gf2m.hpp"

namespace lo::gf {

using Poly = std::vector<std::uint64_t>;

// Removes leading zero coefficients.
void poly_trim(Poly& p);

int poly_deg(const Poly& p);  // -1 for the zero polynomial

Poly poly_add(const Poly& a, const Poly& b);  // == subtraction in char 2

Poly poly_mul(const Field& f, const Poly& a, const Poly& b);

// (a mod b); precondition: b != 0.
Poly poly_mod(const Field& f, Poly a, const Poly& b);

// Quotient of a / b; precondition: b != 0.
Poly poly_div(const Field& f, Poly a, const Poly& b);

Poly poly_gcd(const Field& f, Poly a, Poly b);

// Scales so the leading coefficient is 1; zero polynomial unchanged.
void poly_make_monic(const Field& f, Poly& p);

std::uint64_t poly_eval(const Field& f, const Poly& p, std::uint64_t x);

// p(x)^2 using the Frobenius identity (sum a_i x^i)^2 = sum a_i^2 x^(2i).
Poly poly_sqr(const Field& f, const Poly& p);

}  // namespace lo::gf
