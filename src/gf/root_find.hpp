// Root finding for polynomials over GF(2^m) that split into distinct linear
// factors — the case that arises when decoding a valid PinSketch locator.
//
// Uses the Berlekamp trace algorithm: for a random beta, the trace polynomial
//   T_beta(x) = sum_{i=0..m-1} (beta x)^(2^i)
// maps every field element to GF(2), so gcd(f, T_beta) splits f by trace
// value. Recursing with fresh betas separates all roots in expected
// O(deg^2 log) field operations.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gf/gf2m.hpp"
#include "gf/poly.hpp"

namespace lo::gf {

// Reusable scratch for the workspace overload: shared buffers for the
// Frobenius / trace chains plus a PolyPool for the splitter's per-level
// factors. A decoder that owns a RootWorkspace finds roots allocation-free
// in steady state (only the pool grows, up to the deepest split seen).
struct RootWorkspace {
  Poly frob;      // running (.)^(2^i) mod f chain
  Poly sqr_tmp;   // squaring scratch for the chain
  Poly trace;     // accumulated trace polynomial
  Poly trace1;    // trace + 1 (the complementary gcd argument)
  Poly gcd_tmp;   // clobber copy for gcd's second argument
  PolyPool pool;  // per-recursion-level g / q factors
};

// Returns all roots of p if p splits into deg(p) distinct linear factors over
// the field; std::nullopt otherwise (the PinSketch "decode failure" signal).
// `seed` makes the beta sequence deterministic.
std::optional<std::vector<std::uint64_t>> find_roots(const Field& f, Poly p,
                                                     std::uint64_t seed = 1);

// Workspace variant: clobbers p, appends the roots to out (cleared first),
// and returns whether p split completely. Identical results to find_roots
// (same beta sequence, same root order).
bool find_roots_ws(const Field& f, Poly& p, std::uint64_t seed,
                   RootWorkspace& ws, std::vector<std::uint64_t>& out);

}  // namespace lo::gf
