// Root finding for polynomials over GF(2^m) that split into distinct linear
// factors — the case that arises when decoding a valid PinSketch locator.
//
// Uses the Berlekamp trace algorithm: for a random beta, the trace polynomial
//   T_beta(x) = sum_{i=0..m-1} (beta x)^(2^i)
// maps every field element to GF(2), so gcd(f, T_beta) splits f by trace
// value. Recursing with fresh betas separates all roots in expected
// O(deg^2 log) field operations.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gf/gf2m.hpp"
#include "gf/poly.hpp"

namespace lo::gf {

// Returns all roots of p if p splits into deg(p) distinct linear factors over
// the field; std::nullopt otherwise (the PinSketch "decode failure" signal).
// `seed` makes the beta sequence deterministic.
std::optional<std::vector<std::uint64_t>> find_roots(const Field& f, Poly p,
                                                     std::uint64_t seed = 1);

}  // namespace lo::gf
