// Byzantine-resilient uniform peer sampling (Sec. 3 "Continuous Sampling",
// Sec. 5.1), modeled on Basalt [4] and Brahms [7].
//
// LØ assumes a sampler with two properties: (i) honest peers eventually form
// a connected subgraph, and (ii) samples are uniform over the membership.
// Two implementations are provided:
//
//  - UniformSamplerOracle: directly samples the membership list. This is the
//    assumption-level model used by the evaluation harness (the paper itself
//    "first runs an unbiased sampling algorithm" before measuring).
//
//  - BasaltView: a hash-ranking view, the core mechanism of Basalt. Each node
//    keeps the v peers minimizing H(seed_slot ‖ peer). Because ranking seeds
//    are local and refreshed, an adversary cannot craft ids that dominate all
//    views; exposed/suspected peers are filtered out before ranking, which is
//    exactly where LØ's blame output feeds back into the overlay (Sec. 5.1:
//    discovery continues "until it is provided with a sufficient number of
//    non-suspected and non-exposed peers").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace lo::overlay {

using NodeId = std::uint32_t;

class UniformSamplerOracle {
 public:
  UniformSamplerOracle(std::size_t universe, std::uint64_t seed)
      : universe_(universe), rng_(seed) {}

  // k distinct peers, uniform over the universe, excluding `self` and any id
  // for which `exclude` returns true. Returns fewer than k if the candidate
  // pool is smaller than k.
  std::vector<NodeId> sample(NodeId self, std::size_t k,
                             const std::function<bool(NodeId)>& exclude = {});

 private:
  std::size_t universe_;
  util::Rng rng_;
};

class BasaltView {
 public:
  // view_size: v; slots are reseeded round-robin, one per refresh() call,
  // bounding the lifetime of any adversarial placement.
  BasaltView(NodeId self, std::size_t view_size, std::uint64_t seed);

  // Offers a candidate peer (learned from gossip); it is kept in slot i if it
  // hash-ranks below the current occupant.
  void offer(NodeId peer);

  // Reseeds the next slot (forcing eventual turnover) — call periodically.
  void refresh();

  // Removes a peer from all slots (e.g. after exposure).
  void evict(NodeId peer);

  // Current view contents (deduplicated, excludes empty slots).
  std::vector<NodeId> view() const;

  std::size_t slots() const noexcept { return slot_seed_.size(); }

 private:
  std::uint64_t rank(std::size_t slot, NodeId peer) const;

  NodeId self_;
  std::vector<std::uint64_t> slot_seed_;
  std::vector<NodeId> slot_peer_;   // kNone when empty
  std::vector<bool> slot_filled_;
  std::size_t next_refresh_ = 0;
  util::Rng rng_;
};

}  // namespace lo::overlay
