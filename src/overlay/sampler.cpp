#include "overlay/sampler.hpp"

#include <algorithm>

namespace lo::overlay {

std::vector<NodeId> UniformSamplerOracle::sample(
    NodeId self, std::size_t k, const std::function<bool(NodeId)>& exclude) {
  std::vector<NodeId> out;
  out.reserve(k);
  // Rejection sampling with a bounded number of attempts; falls back to a
  // scan when the universe is small or heavily excluded.
  std::size_t attempts = 0;
  const std::size_t max_attempts = 20 * (k + 1);
  while (out.size() < k && attempts < max_attempts) {
    ++attempts;
    const NodeId c = static_cast<NodeId>(rng_.next_below(universe_));
    if (c == self) continue;
    if (exclude && exclude(c)) continue;
    if (std::find(out.begin(), out.end(), c) != out.end()) continue;
    out.push_back(c);
  }
  if (out.size() < k) {
    for (NodeId c = 0; c < universe_ && out.size() < k; ++c) {
      if (c == self) continue;
      if (exclude && exclude(c)) continue;
      if (std::find(out.begin(), out.end(), c) != out.end()) continue;
      out.push_back(c);
    }
  }
  return out;
}

BasaltView::BasaltView(NodeId self, std::size_t view_size, std::uint64_t seed)
    : self_(self),
      slot_seed_(view_size),
      slot_peer_(view_size, 0),
      slot_filled_(view_size, false),
      rng_(seed) {
  for (auto& s : slot_seed_) s = rng_.next();
}

std::uint64_t BasaltView::rank(std::size_t slot, NodeId peer) const {
  std::uint64_t x = slot_seed_[slot] ^ (0x9e3779b97f4a7c15ULL * (peer + 1));
  return util::splitmix64(x);
}

void BasaltView::offer(NodeId peer) {
  if (peer == self_) return;
  for (std::size_t i = 0; i < slot_seed_.size(); ++i) {
    if (!slot_filled_[i] || rank(i, peer) < rank(i, slot_peer_[i])) {
      slot_peer_[i] = peer;
      slot_filled_[i] = true;
    }
  }
}

void BasaltView::refresh() {
  if (slot_seed_.empty()) return;
  const std::size_t i = next_refresh_ % slot_seed_.size();
  next_refresh_ = (next_refresh_ + 1) % slot_seed_.size();
  slot_seed_[i] = rng_.next();
  // The occupant keeps the slot only if it also wins under the new seed
  // against future offers; rank resets implicitly since comparisons use the
  // new seed from now on.
}

void BasaltView::evict(NodeId peer) {
  for (std::size_t i = 0; i < slot_peer_.size(); ++i) {
    if (slot_filled_[i] && slot_peer_[i] == peer) slot_filled_[i] = false;
  }
}

std::vector<NodeId> BasaltView::view() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < slot_peer_.size(); ++i) {
    if (slot_filled_[i]) out.push_back(slot_peer_[i]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace lo::overlay
