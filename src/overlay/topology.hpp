// Communication overlay construction (Sec. 3 "Communication Overlay",
// Sec. 6.1 experimental setup).
//
// The paper's topology: every node opens 8 outgoing connections and accepts
// up to 125 incoming ones (Bitcoin defaults); links are undirected once
// established. For the resilience experiments (Sec. 6.2) the harness must
// additionally guarantee that the correct nodes form a connected subgraph —
// every pair of correct nodes is joined by a path of correct nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace lo::overlay {

using NodeId = std::uint32_t;

struct TopologyConfig {
  std::size_t out_degree = 8;
  std::size_t max_in_degree = 125;
};

class Topology {
 public:
  Topology() = default;
  explicit Topology(std::size_t n) : adj_(n) {}

  // Random graph per the config; connectivity is then repaired so the whole
  // graph is connected.
  static Topology random(std::size_t n, const TopologyConfig& cfg,
                         util::Rng& rng);

  std::size_t size() const noexcept { return adj_.size(); }
  const std::vector<NodeId>& neighbors(NodeId v) const { return adj_.at(v); }

  bool has_edge(NodeId a, NodeId b) const;
  // Adds an undirected edge (no-op if present or a == b).
  void add_edge(NodeId a, NodeId b);
  void remove_edge(NodeId a, NodeId b);

  std::size_t edge_count() const noexcept;
  std::size_t degree(NodeId v) const { return adj_.at(v).size(); }

  // True iff the whole graph is connected (empty/1-node graphs count as
  // connected).
  bool connected() const;

  // True iff the subgraph induced by nodes with include[v] == true is
  // connected.
  bool connected_among(const std::vector<bool>& include) const;

  // Adds random edges until the graph is connected.
  void ensure_connected(util::Rng& rng);

  // Adds random edges between included nodes until the induced subgraph is
  // connected (used to set up the Sec. 6.2 honest-connectivity precondition).
  void ensure_connected_among(const std::vector<bool>& include, util::Rng& rng);

 private:
  std::vector<std::vector<NodeId>> adj_;
};

}  // namespace lo::overlay
