#include "overlay/topology.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace lo::overlay {

namespace {

// Union-find over node ids.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

Topology Topology::random(std::size_t n, const TopologyConfig& cfg,
                          util::Rng& rng) {
  Topology t(n);
  if (n < 2) return t;
  std::vector<std::size_t> in_degree(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    std::size_t attempts = 0;
    std::size_t made = 0;
    const std::size_t want = std::min(cfg.out_degree, n - 1);
    while (made < want && attempts < 50 * cfg.out_degree) {
      ++attempts;
      const NodeId u = static_cast<NodeId>(rng.next_below(n));
      if (u == v || t.has_edge(v, u)) continue;
      if (in_degree[u] >= cfg.max_in_degree) continue;
      t.add_edge(v, u);
      ++in_degree[u];
      ++made;
    }
  }
  t.ensure_connected(rng);
  return t;
}

bool Topology::has_edge(NodeId a, NodeId b) const {
  const auto& na = adj_.at(a);
  return std::find(na.begin(), na.end(), b) != na.end();
}

void Topology::add_edge(NodeId a, NodeId b) {
  if (a == b) return;
  if (a >= adj_.size() || b >= adj_.size()) throw std::out_of_range("node id");
  if (has_edge(a, b)) return;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
}

void Topology::remove_edge(NodeId a, NodeId b) {
  auto erase_from = [this](NodeId x, NodeId y) {
    auto& v = adj_.at(x);
    v.erase(std::remove(v.begin(), v.end(), y), v.end());
  };
  erase_from(a, b);
  erase_from(b, a);
}

std::size_t Topology::edge_count() const noexcept {
  std::size_t sum = 0;
  for (const auto& v : adj_) sum += v.size();
  return sum / 2;
}

bool Topology::connected() const {
  std::vector<bool> all(adj_.size(), true);
  return connected_among(all);
}

bool Topology::connected_among(const std::vector<bool>& include) const {
  const std::size_t n = adj_.size();
  if (include.size() != n) throw std::invalid_argument("include size mismatch");
  // BFS from the first included node, traversing only included nodes.
  std::size_t start = n, want = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (include[i]) {
      if (start == n) start = i;
      ++want;
    }
  }
  if (want <= 1) return true;
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack{static_cast<NodeId>(start)};
  seen[start] = true;
  std::size_t found = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId u : adj_[v]) {
      if (!include[u] || seen[u]) continue;
      seen[u] = true;
      ++found;
      stack.push_back(u);
    }
  }
  return found == want;
}

void Topology::ensure_connected(util::Rng& rng) {
  std::vector<bool> all(adj_.size(), true);
  ensure_connected_among(all, rng);
}

void Topology::ensure_connected_among(const std::vector<bool>& include,
                                      util::Rng& rng) {
  const std::size_t n = adj_.size();
  if (include.size() != n) throw std::invalid_argument("include size mismatch");
  std::vector<NodeId> members;
  for (std::size_t i = 0; i < n; ++i) {
    if (include[i]) members.push_back(static_cast<NodeId>(i));
  }
  if (members.size() <= 1) return;

  Dsu dsu(n);
  for (NodeId v : members) {
    for (NodeId u : adj_[v]) {
      if (include[u]) dsu.unite(v, u);
    }
  }
  // Link component representatives with random member pairs.
  std::vector<NodeId> reps;
  for (NodeId v : members) {
    if (dsu.find(v) == v) reps.push_back(v);
  }
  // Re-derive components as groups and chain them with random edges.
  while (true) {
    // Find two distinct components.
    NodeId a = members[rng.next_below(members.size())];
    bool done = true;
    for (NodeId v : members) {
      if (dsu.find(v) != dsu.find(a)) {
        done = false;
        // Pick random endpoints in each component for a less star-like repair.
        NodeId b = v;
        add_edge(a, b);
        dsu.unite(a, b);
        break;
      }
    }
    if (done) break;
  }
}

}  // namespace lo::overlay
