// PeerReview (Haeberlen et al. [20]) — the universal accountability baseline
// of Sec. 6.4: every node keeps a hash-chained signed log of all send/receive
// events; each node is assigned 8 witnesses that periodically fetch and audit
// its log.
//
// The transaction dissemination underneath is the same INV/GETDATA/TX flood;
// PeerReview adds (a) an authenticator (seqno + log-top hash + signature) on
// every protocol message, (b) acknowledgments carrying authenticators, and
// (c) witness audit traffic that transfers the log entries themselves. These
// additions are what make PeerReview roughly an order of magnitude more
// expensive than LØ in Fig. 9.
//
// Overhead classes: pr.inv, pr.getdata, pr.ack, pr.audit_req, pr.audit_resp;
// pr.tx carries bodies and is excluded like every protocol's tx class.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/node.hpp"
#include "core/transaction.hpp"
#include "core/types.hpp"
#include "crypto/keys.hpp"
#include "sim/simulator.hpp"

namespace lo::baselines {

// seqno(8) + top hash(32) + signature(64).
inline constexpr std::size_t kAuthenticatorWire = 104;

struct LogEntry {
  std::uint64_t seq = 0;
  std::uint8_t kind = 0;  // 0 send, 1 recv
  core::NodeId peer = 0;
  crypto::Digest256 content_digest{};
  crypto::Digest256 chain{};  // H(prev_chain || fields)

  static constexpr std::size_t kWire = 8 + 1 + 4 + 32 + 32;
};

struct PrInvMsg final : sim::Payload {
  std::vector<core::TxId> ids;
  const char* type_name() const noexcept override { return "pr.inv"; }
  std::size_t wire_size() const noexcept override {
    return 4 + 36 * ids.size() + kAuthenticatorWire;
  }
};

struct PrGetDataMsg final : sim::Payload {
  std::vector<core::TxId> ids;
  const char* type_name() const noexcept override { return "pr.getdata"; }
  std::size_t wire_size() const noexcept override {
    return 4 + 36 * ids.size() + kAuthenticatorWire;
  }
};

struct PrTxMsg final : sim::Payload {
  std::vector<core::Transaction> txs;
  const char* type_name() const noexcept override { return "pr.tx"; }
  std::size_t wire_size() const noexcept override {
    std::size_t sz = 4 + kAuthenticatorWire;
    for (const auto& tx : txs) sz += tx.wire_size();
    return sz;
  }
};

// Receipt acknowledgment: PeerReview requires acknowledging every message
// with a signed authenticator so that omissions are provable.
struct PrAckMsg final : sim::Payload {
  std::uint64_t acked_seq = 0;
  const char* type_name() const noexcept override { return "pr.ack"; }
  std::size_t wire_size() const noexcept override {
    return 8 + kAuthenticatorWire;
  }
};

struct PrAuditRequest final : sim::Payload {
  std::uint64_t since_seq = 0;
  const char* type_name() const noexcept override { return "pr.audit_req"; }
  std::size_t wire_size() const noexcept override {
    return 8 + kAuthenticatorWire;
  }
};

struct PrAuditResponse final : sim::Payload {
  std::uint64_t from_seq = 0;
  std::vector<LogEntry> entries;
  const char* type_name() const noexcept override { return "pr.audit_resp"; }
  std::size_t wire_size() const noexcept override {
    return 8 + 4 + LogEntry::kWire * entries.size() + kAuthenticatorWire;
  }
};

class PeerReviewNode final : public sim::INode {
 public:
  struct Config {
    core::PrevalidationPolicy prevalidation;
    sim::Duration announce_delay = 100 * sim::kMillisecond;
    std::size_t witnesses = 8;  // paper setup
    sim::Duration audit_interval = 10 * sim::kSecond;
  };

  PeerReviewNode(sim::Simulator& sim, core::NodeId id, const Config& config,
                 core::Hooks* hooks);

  void set_neighbors(std::vector<core::NodeId> neighbors) {
    neighbors_ = std::move(neighbors);
  }
  // Witness sets are derived from node ids: node i is audited by
  // i+1 .. i+witnesses (mod n). Needs the network size.
  void set_universe(std::size_t num_nodes) { universe_ = num_nodes; }

  void submit_transaction(const core::Transaction& tx);

  void on_start() override;
  void on_message(core::NodeId from, const sim::PayloadPtr& msg) override;

  std::size_t mempool_size() const noexcept { return store_.size(); }
  bool has_tx(const core::TxId& id) const { return store_.count(id) != 0; }
  std::uint64_t log_length() const noexcept { return log_.size(); }
  // True while no audited log has failed replay.
  bool audits_clean() const noexcept { return audits_clean_; }

 private:
  void admit(const core::Transaction& tx);
  void flush_announcements();
  void log_event(std::uint8_t kind, core::NodeId peer,
                 const crypto::Digest256& digest);
  void schedule_audits();

  sim::Simulator& sim_;
  core::NodeId id_;
  Config config_;
  core::Hooks* hooks_;
  std::vector<core::NodeId> neighbors_;
  std::size_t universe_ = 0;
  std::unordered_map<core::TxId, core::Transaction, core::TxIdHash> store_;
  std::unordered_set<core::TxId, core::TxIdHash> requested_;
  std::vector<core::TxId> announce_queue_;
  bool announce_armed_ = false;

  std::vector<LogEntry> log_;
  crypto::Digest256 log_top_{};
  // witness state: per audited node, last fetched seq + their chain top.
  std::unordered_map<core::NodeId, std::uint64_t> audit_watermark_;
  std::unordered_map<core::NodeId, crypto::Digest256> audit_chain_;
  bool audits_clean_ = true;
};

}  // namespace lo::baselines
