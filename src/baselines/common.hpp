// Shared harness for baseline mempool protocols (Sec. 6.4): Flood,
// PeerReview and Narwhal all plug into the same simulator/topology/workload
// scaffolding so that the Fig. 9 bandwidth comparison runs all four systems
// under identical conditions.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/node.hpp"  // for core::Hooks
#include "harness/anomaly.hpp"
#include "overlay/topology.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "workload/txgen.hpp"

namespace lo::baselines {

struct BaselineNetConfig {
  std::size_t num_nodes = 64;
  std::uint64_t seed = 1;
  overlay::TopologyConfig topology;
  bool city_latency = true;
  sim::Duration constant_latency = 50 * sim::kMillisecond;
  // Enable the simulator's deterministic event tracer (same stream the LØ
  // harness records, so baseline traces diff side by side).
  bool trace = false;
  // Simulator worker shards (>= 1); same-seed runs are byte-identical for
  // every value (DESIGN.md §4e).
  unsigned workers = 1;
};

// NodeT requirements:
//   NodeT(sim::Simulator&, core::NodeId, const typename NodeT::Config&,
//         core::Hooks*)
//   void set_neighbors(std::vector<core::NodeId>)
//   void submit_transaction(const core::Transaction&)
// plus the sim::INode interface.
template <typename NodeT>
class BaselineNetwork {
 public:
  BaselineNetwork(const BaselineNetConfig& net_cfg,
                  const typename NodeT::Config& node_cfg)
      : config_(net_cfg), sim_(net_cfg.seed) {
    if (net_cfg.trace) sim_.obs().tracer.enable(true);
    if (net_cfg.workers > 1) sim_.set_workers(net_cfg.workers);
    if (net_cfg.city_latency) {
      sim_.set_latency_model(std::make_shared<sim::CityLatencyModel>());
    } else {
      sim_.set_latency_model(
          std::make_shared<sim::ConstantLatency>(net_cfg.constant_latency));
    }
    topology_ = overlay::Topology::random(net_cfg.num_nodes, net_cfg.topology,
                                          sim_.rng());
    // The admit hook mutates a harness-global accumulator, so its body is
    // deferred through Simulator::post(): inline under the serial engine,
    // at the window barrier (in global event-key order) under the parallel
    // one. Captures are plain values only.
    hooks_.on_mempool_admit = [this](core::NodeId, const core::Transaction& tx,
                                     sim::TimePoint when) {
      const double latency_s = sim::to_seconds(when - tx.created_at);
      const std::uint64_t tid = core::txid_short(tx.id);
      sim_.post([this, latency_s, tid, when] {
        mempool_latency_.add(latency_s);
        // Baselines have no consensus stub: settle = first admit anywhere.
        if (anomaly_) anomaly_->on_settle(tid, when);
      });
    };
    nodes_.reserve(net_cfg.num_nodes);
    for (std::size_t i = 0; i < net_cfg.num_nodes; ++i) {
      nodes_.push_back(std::make_unique<NodeT>(
          sim_, static_cast<core::NodeId>(i), node_cfg, &hooks_));
      sim_.add_node(nodes_.back().get());
    }
    for (std::size_t i = 0; i < net_cfg.num_nodes; ++i) {
      nodes_[i]->set_neighbors(
          topology_.neighbors(static_cast<core::NodeId>(i)));
    }
  }

  void start_workload(const workload::WorkloadConfig& cfg,
                      std::size_t submit_fanout = 1) {
    txgen_ = std::make_unique<workload::TxGenerator>(cfg);
    submit_fanout_ = submit_fanout == 0 ? 1 : submit_fanout;
    schedule_next_tx();
  }

  void run_for(double seconds) {
    sim_.run_until(sim_.now() + sim::from_seconds(seconds));
  }

  sim::Simulator& sim() noexcept { return sim_; }
  NodeT& node(std::size_t i) { return *nodes_.at(i); }
  std::size_t size() const noexcept { return nodes_.size(); }
  sim::Samples& mempool_latency() noexcept { return mempool_latency_; }
  std::uint64_t txs_injected() const noexcept { return txs_injected_; }

  // Same streaming detectors the LØ harness runs (suspicion/reconcile feeds
  // stay silent here — baselines have no accountability layer to observe).
  harness::AnomalyMonitor& start_anomaly_monitor(
      const harness::AnomalyConfig& cfg = {}) {
    if (!anomaly_) {
      anomaly_ = std::make_unique<harness::AnomalyMonitor>(sim_, cfg);
      anomaly_->start();
    }
    return *anomaly_;
  }
  const harness::AnomalyMonitor* anomaly() const noexcept {
    return anomaly_.get();
  }

 private:
  void schedule_next_tx() {
    sim_.schedule(txgen_->next_gap_us(), [this] {
      auto tx = txgen_->next(sim_.now());
      ++txs_injected_;
      if (anomaly_) anomaly_->on_submit(core::txid_short(tx.id), tx.created_at);
      for (std::size_t k = 0; k < submit_fanout_; ++k) {
        const auto i = sim_.rng().next_below(nodes_.size());
        sim_.obs().tracer.emit(obs::EventKind::kTxSubmit,
                               static_cast<std::uint32_t>(i), 0,
                               core::txid_short(tx.id));
        nodes_[i]->submit_transaction(tx);
      }
      schedule_next_tx();
    });
  }

  BaselineNetConfig config_;
  sim::Simulator sim_;
  overlay::Topology topology_;
  std::vector<std::unique_ptr<NodeT>> nodes_;
  core::Hooks hooks_;
  std::unique_ptr<workload::TxGenerator> txgen_;
  std::unique_ptr<harness::AnomalyMonitor> anomaly_;
  std::size_t submit_fanout_ = 1;
  std::uint64_t txs_injected_ = 0;
  sim::Samples mempool_latency_;
};

}  // namespace lo::baselines
