// 'Flood' — the classical inventory-based mempool exchange used as the main
// baseline in Sec. 6.4: miners relay a Mempool/inv message listing their
// transaction hashes; receivers request the transactions they do not
// recognize (Bitcoin-style INV / GETDATA / TX).
//
// Message classes for Fig. 9: flood.inv and flood.getdata are overhead;
// flood.tx carries transaction bodies and is excluded, like in the paper.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/node.hpp"
#include "core/transaction.hpp"
#include "core/types.hpp"
#include "sim/simulator.hpp"

namespace lo::baselines {

struct InvMsg final : sim::Payload {
  std::vector<core::TxId> ids;
  const char* type_name() const noexcept override { return "flood.inv"; }
  std::size_t wire_size() const noexcept override {
    // Bitcoin inv entries are 36 bytes (type + hash).
    return 4 + 36 * ids.size();
  }
};

struct GetDataMsg final : sim::Payload {
  std::vector<core::TxId> ids;
  const char* type_name() const noexcept override { return "flood.getdata"; }
  std::size_t wire_size() const noexcept override {
    return 4 + 36 * ids.size();
  }
};

struct FloodTxMsg final : sim::Payload {
  std::vector<core::Transaction> txs;
  const char* type_name() const noexcept override { return "flood.tx"; }
  std::size_t wire_size() const noexcept override {
    std::size_t sz = 4;
    for (const auto& tx : txs) sz += tx.wire_size();
    return sz;
  }
};

class FloodNode final : public sim::INode {
 public:
  struct Config {
    core::PrevalidationPolicy prevalidation;
    // Announcements are batched briefly, as real nodes do (trickle).
    sim::Duration announce_delay = 100 * sim::kMillisecond;
  };

  FloodNode(sim::Simulator& sim, core::NodeId id, const Config& config,
            core::Hooks* hooks);

  void set_neighbors(std::vector<core::NodeId> neighbors) {
    neighbors_ = std::move(neighbors);
  }
  void submit_transaction(const core::Transaction& tx);

  void on_start() override {}
  void on_message(core::NodeId from, const sim::PayloadPtr& msg) override;

  std::size_t mempool_size() const noexcept { return store_.size(); }
  bool has_tx(const core::TxId& id) const { return store_.count(id) != 0; }

 private:
  void admit(const core::Transaction& tx, core::NodeId source);
  void flush_announcements();

  sim::Simulator& sim_;
  core::NodeId id_;
  Config config_;
  core::Hooks* hooks_;
  std::vector<core::NodeId> neighbors_;
  std::unordered_map<core::TxId, core::Transaction, core::TxIdHash> store_;
  std::unordered_set<core::TxId, core::TxIdHash> requested_;
  std::vector<core::TxId> announce_queue_;
  bool announce_armed_ = false;
};

}  // namespace lo::baselines
