#include "baselines/flood.hpp"

namespace lo::baselines {

FloodNode::FloodNode(sim::Simulator& sim, core::NodeId id,
                     const Config& config, core::Hooks* hooks)
    : sim_(sim), id_(id), config_(config), hooks_(hooks) {}

void FloodNode::submit_transaction(const core::Transaction& tx) {
  admit(tx, id_);
}

void FloodNode::admit(const core::Transaction& tx, core::NodeId source) {
  if (store_.count(tx.id) != 0) return;
  if (!prevalidate(tx, config_.prevalidation)) return;
  store_.emplace(tx.id, tx);
  sim_.obs().tracer.emit(obs::EventKind::kTxAdmit, id_, source,
                         core::txid_short(tx.id), store_.size());
  if (hooks_ != nullptr && hooks_->on_mempool_admit) {
    hooks_->on_mempool_admit(id_, tx, sim_.now());
  }
  announce_queue_.push_back(tx.id);
  if (!announce_armed_) {
    announce_armed_ = true;
    sim_.schedule_for(id_, config_.announce_delay, [this] { flush_announcements(); });
  }
}

void FloodNode::flush_announcements() {
  announce_armed_ = false;
  if (announce_queue_.empty()) return;
  auto inv = std::make_shared<InvMsg>();
  inv->ids = std::move(announce_queue_);
  announce_queue_.clear();
  for (auto n : neighbors_) sim_.send(id_, n, inv);
}

void FloodNode::on_message(core::NodeId from, const sim::PayloadPtr& msg) {
  if (const auto* inv = dynamic_cast<const InvMsg*>(msg.get())) {
    auto get = std::make_shared<GetDataMsg>();
    for (const auto& id : inv->ids) {
      if (store_.count(id) != 0) continue;
      if (!requested_.insert(id).second) continue;
      get->ids.push_back(id);
    }
    if (!get->ids.empty()) sim_.send(id_, from, get);
  } else if (const auto* get = dynamic_cast<const GetDataMsg*>(msg.get())) {
    auto reply = std::make_shared<FloodTxMsg>();
    for (const auto& id : get->ids) {
      auto it = store_.find(id);
      if (it != store_.end()) reply->txs.push_back(it->second);
    }
    if (!reply->txs.empty()) sim_.send(id_, from, reply);
  } else if (const auto* txs = dynamic_cast<const FloodTxMsg*>(msg.get())) {
    for (const auto& tx : txs->txs) {
      requested_.erase(tx.id);
      admit(tx, from);
    }
  }
}

}  // namespace lo::baselines
