#include "baselines/narwhal.hpp"

namespace lo::baselines {

BatchDigest NwBatchMsg::digest() const {
  crypto::Sha256 h;
  std::uint8_t meta[12];
  for (int i = 0; i < 4; ++i) meta[i] = static_cast<std::uint8_t>(origin >> (8 * i));
  for (int i = 0; i < 8; ++i) meta[4 + i] = static_cast<std::uint8_t>(batch_no >> (8 * i));
  h.update(std::span<const std::uint8_t>(meta, sizeof meta));
  for (const auto& tx : txs) {
    h.update(std::span<const std::uint8_t>(tx.id.data(), tx.id.size()));
  }
  return h.finalize();
}

NarwhalNode::NarwhalNode(sim::Simulator& sim, core::NodeId id,
                         const Config& config, core::Hooks* hooks)
    : sim_(sim), id_(id), config_(config), hooks_(hooks) {}

void NarwhalNode::on_start() {
  // Stagger batch ticks across nodes.
  const auto phase = static_cast<sim::Duration>(sim_.node_rng(id_).next_below(
      static_cast<std::uint64_t>(config_.batch_interval)));
  sim_.schedule_for(id_, phase, [this] { batch_tick(); });
}

void NarwhalNode::submit_transaction(const core::Transaction& tx) {
  if (!seen_.insert(tx.id).second) return;
  if (!prevalidate(tx, config_.prevalidation)) return;
  ++known_txs_;
  if (hooks_ != nullptr && hooks_->on_mempool_admit) {
    hooks_->on_mempool_admit(id_, tx, sim_.now());
  }
  sim_.obs().tracer.emit(obs::EventKind::kTxAdmit, id_, id_,
                         core::txid_short(tx.id), known_txs_);
  pending_.push_back(tx);
}

void NarwhalNode::batch_tick() {
  // Broadcast a batch of recent transactions to the whole network (reliable
  // broadcast in Narwhal; here every node is a worker+primary).
  if (!pending_.empty()) {
    auto batch = std::make_shared<NwBatchMsg>();
    batch->origin = id_;
    batch->batch_no = ++batch_no_;
    batch->txs = std::move(pending_);
    pending_.clear();
    const auto d = batch->digest();
    sim_.obs().tracer.emit(obs::EventKind::kCommitCreate, id_, 0,
                           batch->txs.size(), batch_no_);
    ack_count_[d] = 1;  // self-ack
    batch_store_[d] = batch;
    for (std::uint32_t n = 0; n < config_.num_nodes; ++n) {
      if (n == id_) continue;
      sim_.send(id_, n, batch);
    }
  }
  // Emit a header referencing certified batches.
  if (!ready_certs_.empty()) {
    auto header = std::make_shared<NwHeaderMsg>();
    header->origin = id_;
    header->round = ++round_;
    header->batches = std::move(ready_certs_);
    ready_certs_.clear();
    header->quorum = quorum();
    for (std::uint32_t n = 0; n < config_.num_nodes; ++n) {
      if (n == id_) continue;
      sim_.send(id_, n, header);
    }
  }
  sim_.schedule_for(id_, config_.batch_interval, [this] { batch_tick(); });
}

void NarwhalNode::on_message(core::NodeId from, const sim::PayloadPtr& msg) {
  if (const auto* batch = dynamic_cast<const NwBatchMsg*>(msg.get())) {
    const auto d = batch->digest();
    if (batch_store_.emplace(d, std::static_pointer_cast<const NwBatchMsg>(msg))
            .second) {
      sim_.obs().tracer.emit(obs::EventKind::kCommitObserve, id_, batch->origin,
                             batch->txs.size());
      for (const auto& tx : batch->txs) {
        if (!seen_.insert(tx.id).second) continue;
        ++known_txs_;
        if (hooks_ != nullptr && hooks_->on_mempool_admit) {
          hooks_->on_mempool_admit(id_, tx, sim_.now());
        }
      }
    }
    auto ack = std::make_shared<NwAckMsg>();
    ack->batch = d;
    sim_.send(id_, from, ack);
  } else if (const auto* ack = dynamic_cast<const NwAckMsg*>(msg.get())) {
    auto it = ack_count_.find(ack->batch);
    if (it == ack_count_.end()) return;
    if (++it->second == quorum()) {
      ready_certs_.push_back(ack->batch);
      ++certified_;
    }
  } else if (const auto* header = dynamic_cast<const NwHeaderMsg*>(msg.get())) {
    auto req = std::make_shared<NwBatchRequest>();
    for (const auto& d : header->batches) {
      if (batch_store_.count(d) == 0) req->want.push_back(d);
    }
    if (!req->want.empty()) sim_.send(id_, from, req);
  } else if (const auto* req = dynamic_cast<const NwBatchRequest*>(msg.get())) {
    for (const auto& d : req->want) {
      auto it = batch_store_.find(d);
      if (it != batch_store_.end()) sim_.send(id_, from, it->second);
    }
  }
}

}  // namespace lo::baselines
