// Narwhal (Danezis et al. [14]) — the DAG-mempool baseline of Sec. 6.4.
//
// Per the paper's comparison setup: every node batches recent transactions
// every 0.5 s and reliably broadcasts the batch; a batch that collects
// acknowledgments from more than two-thirds of the network is referenced by
// a certificate inside the next header, which is broadcast to everyone.
// Peers missing a batch referenced by a header request it from the header's
// originator. The quorum of signed acks and the certificate-carrying headers
// are what drive Narwhal's 7–10x bandwidth overhead relative to LØ, while
// direct batch broadcast gives it 1–2 s lower latency.
//
// Overhead classes: nw.ack, nw.header, nw.batch_req; nw.batch carries bodies.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/node.hpp"
#include "core/transaction.hpp"
#include "core/types.hpp"
#include "sim/simulator.hpp"

namespace lo::baselines {

using BatchDigest = crypto::Digest256;

struct NwBatchMsg final : sim::Payload {
  core::NodeId origin = 0;
  std::uint64_t batch_no = 0;
  std::vector<core::Transaction> txs;
  const char* type_name() const noexcept override { return "nw.batch"; }
  std::size_t wire_size() const noexcept override {
    std::size_t sz = 4 + 8 + 4;
    for (const auto& tx : txs) sz += tx.wire_size();
    return sz;
  }
  BatchDigest digest() const;
};

struct NwAckMsg final : sim::Payload {
  BatchDigest batch{};
  const char* type_name() const noexcept override { return "nw.ack"; }
  // digest + signature.
  std::size_t wire_size() const noexcept override { return 32 + 64; }
};

struct NwHeaderMsg final : sim::Payload {
  core::NodeId origin = 0;
  std::uint64_t round = 0;
  // Certified batches: digest + quorum certificate (2f+1 signer ids + sigs).
  std::vector<BatchDigest> batches;
  std::size_t quorum = 0;
  const char* type_name() const noexcept override { return "nw.header"; }
  std::size_t wire_size() const noexcept override {
    // Each certificate: digest + quorum * (id 4 + sig 64), plus header sig.
    return 4 + 8 + 4 + batches.size() * (32 + quorum * 68) + 64;
  }
};

struct NwBatchRequest final : sim::Payload {
  std::vector<BatchDigest> want;
  const char* type_name() const noexcept override { return "nw.batch_req"; }
  std::size_t wire_size() const noexcept override {
    return 4 + 32 * want.size();
  }
};

class NarwhalNode final : public sim::INode {
 public:
  struct Config {
    core::PrevalidationPolicy prevalidation;
    sim::Duration batch_interval = 500 * sim::kMillisecond;  // paper setup
    std::size_t num_nodes = 0;  // quorum = floor(2n/3) + 1
  };

  NarwhalNode(sim::Simulator& sim, core::NodeId id, const Config& config,
              core::Hooks* hooks);

  void set_neighbors(std::vector<core::NodeId> neighbors) {
    neighbors_ = std::move(neighbors);
  }
  void submit_transaction(const core::Transaction& tx);

  void on_start() override;
  void on_message(core::NodeId from, const sim::PayloadPtr& msg) override;

  std::size_t mempool_size() const noexcept { return known_txs_; }
  std::uint64_t certified_batches() const noexcept { return certified_; }

 private:
  void batch_tick();
  std::size_t quorum() const {
    return 2 * config_.num_nodes / 3 + 1;
  }

  sim::Simulator& sim_;
  core::NodeId id_;
  Config config_;
  core::Hooks* hooks_;
  std::vector<core::NodeId> neighbors_;

  std::vector<core::Transaction> pending_;
  std::uint64_t batch_no_ = 0;
  std::uint64_t round_ = 0;
  std::size_t known_txs_ = 0;
  std::unordered_set<core::TxId, core::TxIdHash> seen_;

  // Own batches awaiting acks.
  std::unordered_map<BatchDigest, std::size_t, core::TxIdHash> ack_count_;
  std::vector<BatchDigest> ready_certs_;
  std::uint64_t certified_ = 0;

  // Batches received from others (served on request).
  std::unordered_map<BatchDigest, std::shared_ptr<const NwBatchMsg>,
                     core::TxIdHash>
      batch_store_;
};

}  // namespace lo::baselines
