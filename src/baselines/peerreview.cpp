#include "baselines/peerreview.hpp"

namespace lo::baselines {

namespace {

crypto::Digest256 digest_of_ids(const std::vector<core::TxId>& ids) {
  crypto::Sha256 h;
  for (const auto& id : ids) {
    h.update(std::span<const std::uint8_t>(id.data(), id.size()));
  }
  return h.finalize();
}

crypto::Digest256 chain_step(const crypto::Digest256& prev,
                             const LogEntry& entry) {
  crypto::Sha256 h;
  h.update(std::span<const std::uint8_t>(prev.data(), prev.size()));
  std::uint8_t meta[13];
  for (int i = 0; i < 8; ++i) meta[i] = static_cast<std::uint8_t>(entry.seq >> (8 * i));
  meta[8] = entry.kind;
  for (int i = 0; i < 4; ++i) meta[9 + i] = static_cast<std::uint8_t>(entry.peer >> (8 * i));
  h.update(std::span<const std::uint8_t>(meta, sizeof meta));
  h.update(std::span<const std::uint8_t>(entry.content_digest.data(),
                                         entry.content_digest.size()));
  return h.finalize();
}

}  // namespace

PeerReviewNode::PeerReviewNode(sim::Simulator& sim, core::NodeId id,
                               const Config& config, core::Hooks* hooks)
    : sim_(sim), id_(id), config_(config), hooks_(hooks) {}

void PeerReviewNode::on_start() { schedule_audits(); }

void PeerReviewNode::schedule_audits() {
  sim_.schedule_for(id_, config_.audit_interval, [this] {
    if (universe_ > 1) {
      // This node witnesses the `witnesses` nodes preceding it (equivalently,
      // each node is audited by the `witnesses` ids after it, mod n).
      for (std::size_t k = 1; k <= config_.witnesses; ++k) {
        const auto target = static_cast<core::NodeId>(
            (id_ + universe_ - (k % universe_)) % universe_);
        if (target == id_) continue;
        auto req = std::make_shared<PrAuditRequest>();
        req->since_seq = audit_watermark_[target];
        log_event(0, target, crypto::Digest256{});
        sim_.send(id_, target, req);
      }
    }
    schedule_audits();
  });
}

void PeerReviewNode::log_event(std::uint8_t kind, core::NodeId peer,
                               const crypto::Digest256& digest) {
  LogEntry e;
  e.seq = log_.size() + 1;
  e.kind = kind;
  e.peer = peer;
  e.content_digest = digest;
  e.chain = chain_step(log_top_, e);
  log_top_ = e.chain;
  log_.push_back(e);
  // PeerReview's tamper-evident log is its commitment analog: record the
  // append so its cadence lines up against LØ's kCommitCreate stream.
  sim_.obs().tracer.emit(obs::EventKind::kCommitCreate, id_, peer, kind, e.seq);
}

void PeerReviewNode::submit_transaction(const core::Transaction& tx) {
  admit(tx);
}

void PeerReviewNode::admit(const core::Transaction& tx) {
  if (store_.count(tx.id) != 0) return;
  if (!prevalidate(tx, config_.prevalidation)) return;
  store_.emplace(tx.id, tx);
  sim_.obs().tracer.emit(obs::EventKind::kTxAdmit, id_, id_,
                         core::txid_short(tx.id), store_.size());
  if (hooks_ != nullptr && hooks_->on_mempool_admit) {
    hooks_->on_mempool_admit(id_, tx, sim_.now());
  }
  announce_queue_.push_back(tx.id);
  if (!announce_armed_) {
    announce_armed_ = true;
    sim_.schedule_for(id_, config_.announce_delay, [this] { flush_announcements(); });
  }
}

void PeerReviewNode::flush_announcements() {
  announce_armed_ = false;
  if (announce_queue_.empty()) return;
  auto inv = std::make_shared<PrInvMsg>();
  inv->ids = std::move(announce_queue_);
  announce_queue_.clear();
  const auto digest = digest_of_ids(inv->ids);
  for (auto n : neighbors_) {
    log_event(0, n, digest);
    sim_.send(id_, n, inv);
  }
}

void PeerReviewNode::on_message(core::NodeId from, const sim::PayloadPtr& msg) {
  if (const auto* inv = dynamic_cast<const PrInvMsg*>(msg.get())) {
    log_event(1, from, digest_of_ids(inv->ids));
    // Acknowledge receipt (PeerReview's provable-delivery requirement).
    auto ack = std::make_shared<PrAckMsg>();
    ack->acked_seq = log_.size();
    sim_.send(id_, from, ack);
    auto get = std::make_shared<PrGetDataMsg>();
    for (const auto& id : inv->ids) {
      if (store_.count(id) != 0) continue;
      if (!requested_.insert(id).second) continue;
      get->ids.push_back(id);
    }
    if (!get->ids.empty()) {
      log_event(0, from, digest_of_ids(get->ids));
      sim_.send(id_, from, get);
    }
  } else if (const auto* get = dynamic_cast<const PrGetDataMsg*>(msg.get())) {
    log_event(1, from, digest_of_ids(get->ids));
    auto reply = std::make_shared<PrTxMsg>();
    for (const auto& id : get->ids) {
      auto it = store_.find(id);
      if (it != store_.end()) reply->txs.push_back(it->second);
    }
    if (!reply->txs.empty()) {
      log_event(0, from, crypto::Digest256{});
      sim_.send(id_, from, reply);
    }
  } else if (const auto* txs = dynamic_cast<const PrTxMsg*>(msg.get())) {
    log_event(1, from, crypto::Digest256{});
    auto ack = std::make_shared<PrAckMsg>();
    ack->acked_seq = log_.size();
    sim_.send(id_, from, ack);
    for (const auto& tx : txs->txs) {
      requested_.erase(tx.id);
      admit(tx);
    }
  } else if (dynamic_cast<const PrAckMsg*>(msg.get()) != nullptr) {
    log_event(1, from, crypto::Digest256{});
  } else if (const auto* areq = dynamic_cast<const PrAuditRequest*>(msg.get())) {
    log_event(1, from, crypto::Digest256{});
    auto resp = std::make_shared<PrAuditResponse>();
    resp->from_seq = areq->since_seq;
    for (std::size_t i = areq->since_seq; i < log_.size(); ++i) {
      resp->entries.push_back(log_[i]);
    }
    sim_.send(id_, from, resp);
  } else if (const auto* aresp = dynamic_cast<const PrAuditResponse*>(msg.get())) {
    // Witness replay: recompute the hash chain over the fetched segment.
    crypto::Digest256 chain = audit_chain_[from];
    std::uint64_t expect_seq = audit_watermark_[from];
    for (const auto& e : aresp->entries) {
      if (e.seq != expect_seq + 1 || chain_step(chain, e) != e.chain) {
        audits_clean_ = false;
        return;
      }
      chain = e.chain;
      ++expect_seq;
    }
    audit_chain_[from] = chain;
    audit_watermark_[from] = expect_seq;
  }
}

}  // namespace lo::baselines
