#include "workload/txgen.hpp"

#include <cmath>

namespace lo::workload {

TxGenerator::TxGenerator(const WorkloadConfig& config)
    : config_(config), rng_(config.seed) {
  clients_.reserve(config_.num_clients);
  for (std::size_t i = 0; i < config_.num_clients; ++i) {
    clients_.emplace_back(
        crypto::derive_keypair(config.seed * 1000003ULL + i, config.sig_mode),
        config.sig_mode);
  }
}

core::Transaction TxGenerator::next(std::int64_t now_us) {
  const auto& client = clients_[rng_.next_below(clients_.size())];
  const double fee_f = rng_.next_lognormal(config_.fee_mu, config_.fee_sigma);
  const std::uint64_t fee =
      1 + static_cast<std::uint64_t>(std::min(fee_f, 1e15));
  return core::make_transaction(client, ++count_, fee, now_us);
}

std::int64_t TxGenerator::next_gap_us() {
  const double mean_us = 1e6 / config_.tps;
  if (!config_.poisson_arrivals) return static_cast<std::int64_t>(mean_us);
  const double gap = rng_.next_exponential(mean_us);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(gap));
}

}  // namespace lo::workload
