// Synthetic transaction workload (Sec. 6.1).
//
// The paper injects transactions following an Ethereum dataset [31] that is
// not available offline; this generator substitutes a lognormal fee
// distribution with Poisson arrivals at a configurable rate (see DESIGN.md,
// substitution 2). Bodies are padded to the paper's 250-byte wire size.
#pragma once

#include <cstdint>
#include <vector>

#include "core/transaction.hpp"
#include "crypto/keys.hpp"
#include "util/rng.hpp"

namespace lo::workload {

struct WorkloadConfig {
  double tps = 20.0;             // paper default workload
  std::size_t num_clients = 64;  // distinct signing clients
  // Lognormal fee model: exp(mu + sigma*N(0,1)), in gwei-like units.
  double fee_mu = 3.0;
  double fee_sigma = 1.2;
  std::uint64_t seed = 42;
  bool poisson_arrivals = true;  // false = fixed inter-arrival 1/tps
  crypto::SignatureMode sig_mode = crypto::SignatureMode::kEd25519;
};

class TxGenerator {
 public:
  explicit TxGenerator(const WorkloadConfig& config);

  // Next transaction, created at simulated time `now_us`.
  core::Transaction next(std::int64_t now_us);

  // Inter-arrival gap (microseconds) to the next transaction.
  std::int64_t next_gap_us();

  std::uint64_t generated() const noexcept { return count_; }
  const WorkloadConfig& config() const noexcept { return config_; }

 private:
  WorkloadConfig config_;
  util::Rng rng_;
  std::vector<crypto::Signer> clients_;
  std::uint64_t count_ = 0;
};

}  // namespace lo::workload
