// Enforcement policies on top of LØ's detection (Sec. 5.4).
//
// LØ itself only detects and assigns blame; what happens to a blamed miner
// depends on the consensus layer. The paper sketches three enforcement
// families, all of which are implemented here against the evidence types the
// core library produces:
//
//  * Proof-of-Stake slashing: verified exposure evidence burns a fraction of
//    the accused's stake (Casper-style [9]); repeated suspicions leak stake
//    slowly (liveness fault).
//  * Reputation slashing: same interface over a reputation scalar
//    (Repucoin-style [46]).
//  * Block rejection: blocks from exposed creators are rejected outright,
//    and blocks with non-canonical order are rejected once proven
//    (BFT-forensics-style [36]).
//
// The ledger is deliberately standalone: it consumes EquivocationEvidence /
// BlockEvidence / suspicion reports and never reaches into the protocol, so
// any consensus implementation can drive it.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/accountability.hpp"
#include "core/inspection.hpp"
#include "core/messages.hpp"
#include "core/types.hpp"

namespace lo::enforcement {

struct SlashingPolicy {
  // Fraction of remaining stake burned on verified exposure (0..1].
  double exposure_slash = 0.5;
  // Fraction burned per confirmed-liveness suspicion epoch.
  double suspicion_leak = 0.01;
  // Stake below which a validator is ejected from the active set.
  std::uint64_t ejection_threshold = 1;
  // Evidence must verify under this signature mode.
  crypto::SignatureMode sig_mode = crypto::SignatureMode::kEd25519;
};

struct ValidatorAccount {
  std::uint64_t stake = 0;
  std::uint64_t slashed_total = 0;
  std::uint32_t suspicion_epochs = 0;
  bool ejected = false;
};

// Outcome of applying one piece of evidence.
struct SlashResult {
  bool applied = false;          // false: evidence invalid or already applied
  std::uint64_t amount = 0;      // stake burned by this application
  bool ejected = false;          // account crossed the ejection threshold
};

class StakeLedger {
 public:
  explicit StakeLedger(SlashingPolicy policy) : policy_(policy) {}

  // Registers a validator with an initial stake.
  void bond(core::NodeId validator, std::uint64_t stake);

  const ValidatorAccount* account(core::NodeId validator) const;
  std::uint64_t total_stake() const noexcept;
  std::size_t active_validators() const noexcept;

  // Applies verified equivocation evidence. Idempotent per accused node:
  // the first exposure burns `exposure_slash`; replays are ignored.
  SlashResult apply_equivocation(const core::EquivocationEvidence& evidence);

  // Applies verified block-manipulation evidence (reorder/injection/
  // structure). Same idempotency rule; shares the exposure bucket with
  // equivocation (a node is exposed once).
  SlashResult apply_block_evidence(const core::BlockEvidence& evidence,
                                   core::BlockVerdict claimed);

  // Records a confirmed-liveness fault epoch (the caller decides when a
  // suspicion has stood long enough to count). Leaks `suspicion_leak`.
  SlashResult apply_suspicion_epoch(core::NodeId validator);

  // True if this validator may still propose blocks.
  bool eligible(core::NodeId validator) const;

 private:
  SlashResult burn(core::NodeId validator, double fraction);

  SlashingPolicy policy_;
  std::unordered_map<core::NodeId, ValidatorAccount> accounts_;
  std::unordered_map<core::NodeId, bool> exposure_applied_;
};

// Reputation enforcement: identical shape over a non-transferable scalar.
class ReputationLedger {
 public:
  explicit ReputationLedger(double exposure_penalty = 1.0,
                            double suspicion_penalty = 0.05)
      : exposure_penalty_(exposure_penalty),
        suspicion_penalty_(suspicion_penalty) {}

  void enroll(core::NodeId node, double reputation = 1.0);
  double reputation(core::NodeId node) const;
  // Applies a penalty; reputation is clamped at 0.
  void punish_exposure(core::NodeId node);
  void punish_suspicion(core::NodeId node);
  // Restores a configurable fraction on retraction of all suspicions.
  void restore_on_retraction(core::NodeId node);

 private:
  double exposure_penalty_;
  double suspicion_penalty_;
  std::unordered_map<core::NodeId, double> rep_;
  std::unordered_map<core::NodeId, double> suspicion_debt_;
};

// Block-rejection policy (Sec. 5.4 last sentence): decides whether a block
// may enter the chain given the local blame state and any proven violation.
enum class BlockAdmission : std::uint8_t {
  kAccept,
  kRejectExposedCreator,
  kRejectProvenViolation,
};

BlockAdmission admit_block(const core::Block& block,
                           const core::AccountabilityRegistry& registry,
                           std::optional<core::BlockVerdict> proven_verdict);

}  // namespace lo::enforcement
