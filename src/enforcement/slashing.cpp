#include "enforcement/slashing.hpp"

#include <algorithm>
#include <cmath>

namespace lo::enforcement {

void StakeLedger::bond(core::NodeId validator, std::uint64_t stake) {
  auto& acc = accounts_[validator];
  acc.stake += stake;
  if (acc.stake >= policy_.ejection_threshold) acc.ejected = false;
}

const ValidatorAccount* StakeLedger::account(core::NodeId validator) const {
  auto it = accounts_.find(validator);
  return it == accounts_.end() ? nullptr : &it->second;
}

std::uint64_t StakeLedger::total_stake() const noexcept {
  std::uint64_t sum = 0;
  // lolint:allow(unordered-iter) reason=commutative stake sum; order-independent result
  for (const auto& [id, acc] : accounts_) sum += acc.stake;
  return sum;
}

std::size_t StakeLedger::active_validators() const noexcept {
  std::size_t n = 0;
  // lolint:allow(unordered-iter) reason=commutative count of non-ejected validators; order-independent result
  for (const auto& [id, acc] : accounts_) {
    if (!acc.ejected) ++n;
  }
  return n;
}

SlashResult StakeLedger::burn(core::NodeId validator, double fraction) {
  SlashResult res;
  auto it = accounts_.find(validator);
  if (it == accounts_.end()) return res;
  ValidatorAccount& acc = it->second;
  const auto amount = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(acc.stake) * std::clamp(fraction, 0.0, 1.0)));
  acc.stake -= std::min(acc.stake, amount);
  acc.slashed_total += amount;
  res.applied = true;
  res.amount = amount;
  if (acc.stake < policy_.ejection_threshold && !acc.ejected) {
    acc.ejected = true;
    res.ejected = true;
  }
  return res;
}

SlashResult StakeLedger::apply_equivocation(
    const core::EquivocationEvidence& evidence) {
  if (!evidence.verify(policy_.sig_mode)) return {};
  if (exposure_applied_[evidence.accused]) return {};
  exposure_applied_[evidence.accused] = true;
  auto res = burn(evidence.accused, policy_.exposure_slash);
  return res;
}

SlashResult StakeLedger::apply_block_evidence(
    const core::BlockEvidence& evidence, core::BlockVerdict claimed) {
  if (!evidence.verify(policy_.sig_mode, static_cast<std::uint8_t>(claimed))) {
    return {};
  }
  if (exposure_applied_[evidence.accused]) return {};
  exposure_applied_[evidence.accused] = true;
  return burn(evidence.accused, policy_.exposure_slash);
}

SlashResult StakeLedger::apply_suspicion_epoch(core::NodeId validator) {
  auto it = accounts_.find(validator);
  if (it == accounts_.end()) return {};
  ++it->second.suspicion_epochs;
  return burn(validator, policy_.suspicion_leak);
}

bool StakeLedger::eligible(core::NodeId validator) const {
  const auto* acc = account(validator);
  return acc != nullptr && !acc->ejected &&
         acc->stake >= policy_.ejection_threshold;
}

// ----------------------------------------------------------- reputation ----

void ReputationLedger::enroll(core::NodeId node, double reputation) {
  rep_[node] = std::max(0.0, reputation);
}

double ReputationLedger::reputation(core::NodeId node) const {
  auto it = rep_.find(node);
  return it == rep_.end() ? 0.0 : it->second;
}

void ReputationLedger::punish_exposure(core::NodeId node) {
  auto it = rep_.find(node);
  if (it == rep_.end()) return;
  it->second = std::max(0.0, it->second - exposure_penalty_);
}

void ReputationLedger::punish_suspicion(core::NodeId node) {
  auto it = rep_.find(node);
  if (it == rep_.end()) return;
  const double cut = std::min(it->second, suspicion_penalty_);
  it->second -= cut;
  suspicion_debt_[node] += cut;
}

void ReputationLedger::restore_on_retraction(core::NodeId node) {
  auto it = suspicion_debt_.find(node);
  if (it == suspicion_debt_.end()) return;
  rep_[node] += it->second;
  suspicion_debt_.erase(it);
}

// ---------------------------------------------------------- block policy ----

BlockAdmission admit_block(const core::Block& block,
                           const core::AccountabilityRegistry& registry,
                           std::optional<core::BlockVerdict> proven_verdict) {
  if (proven_verdict &&
      (*proven_verdict == core::BlockVerdict::kReordered ||
       *proven_verdict == core::BlockVerdict::kInjected ||
       *proven_verdict == core::BlockVerdict::kBadStructure)) {
    return BlockAdmission::kRejectProvenViolation;
  }
  if (registry.is_exposed(block.creator)) {
    return BlockAdmission::kRejectExposedCreator;
  }
  return BlockAdmission::kAccept;
}

}  // namespace lo::enforcement
