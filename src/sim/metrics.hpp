// Lightweight metric collectors shared by experiments and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace lo::sim {

// A bag of scalar samples with summary statistics and a fixed-bin histogram
// (used for the Fig. 7 latency density plot).
class Samples {
 public:
  void add(double v) { values_.push_back(v); }
  std::size_t count() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  // Linear-interpolated percentile, q in [0, 1].
  double percentile(double q) const;

  struct HistogramBin {
    double lo;
    double hi;
    std::size_t count;
    double density;  // count / (total * width)
  };
  std::vector<HistogramBin> histogram(std::size_t bins, double lo, double hi) const;

  // Log-bucketed histogram of the same samples (obs::LogHistogram buckets:
  // exponent e spans [2^e, 2^(e+1)), v <= 0 in a dedicated bucket). Keeps the
  // latency *tails* resolvable where the fixed-bin histogram clips at `hi`.
  obs::LogHistogram histogram_log() const;

  // Appends the other bag's samples (per-node bags -> one global
  // distribution before computing percentiles).
  void merge(const Samples& other);

  const std::vector<double>& values() const noexcept { return values_; }
  void clear() noexcept { values_.clear(); }

 private:
  std::vector<double> values_;
};

}  // namespace lo::sim
