#include "sim/faults.hpp"

#include <algorithm>
#include <stdexcept>

namespace lo::sim {

FaultInjector::FaultInjector(Simulator& sim, std::uint64_t seed, CrashFn crash,
                             RestartFn restart)
    : sim_(sim),
      rng_(seed),
      crash_fn_(std::move(crash)),
      restart_fn_(std::move(restart)) {
  if (!crash_fn_ || !restart_fn_) {
    throw std::invalid_argument("FaultInjector needs crash and restart handlers");
  }
  c_crashes_ = &sim_.obs().registry.counter("faults.crashes_injected");
  c_restarts_ = &sim_.obs().registry.counter("faults.restarts_injected");
  c_link_drops_h_ = sim_.register_shard_counter("faults.link_drops");
  c_link_drops_ = &sim_.obs().registry.counter("faults.link_drops");
  sim_.set_fault_filter(
      [this](NodeId from, NodeId to) { return !should_drop(from, to); });
  sim_.set_latency_shaper([this](NodeId from, NodeId to, Duration base) {
    return shape_latency(from, to, base);
  });
}

void FaultInjector::crash_now(NodeId node, Duration down_for,
                              bool wipe_mempool) {
  if (down_.count(node) != 0 || !sim_.node_up(node)) return;
  crash_fn_(node, wipe_mempool);
  down_.insert(node);
  ++*c_crashes_;
  sim_.obs().tracer.emit(obs::EventKind::kFaultCrash, node, 0,
                         static_cast<std::uint64_t>(std::max<Duration>(0, down_for)),
                         wipe_mempool ? 1 : 0);
  sim_.schedule(std::max<Duration>(0, down_for),
                [this, node] { restart_now(node); });
}

void FaultInjector::restart_now(NodeId node) {
  if (down_.erase(node) == 0) return;
  restart_fn_(node);
  ++*c_restarts_;
  sim_.obs().tracer.emit(obs::EventKind::kFaultRestart, node);
}

void FaultInjector::crash_at(TimePoint at, NodeId node, Duration down_for,
                             bool wipe_mempool) {
  const Duration delay = std::max<Duration>(0, at - sim_.now());
  sim_.schedule(delay, [this, node, down_for, wipe_mempool] {
    crash_now(node, down_for, wipe_mempool);
  });
}

void FaultInjector::start_churn(const ChurnConfig& cfg) {
  churn_ = cfg;
  if (churn_.max_down < churn_.min_down) churn_.max_down = churn_.min_down;
  churn_active_ = true;
  const auto gap = static_cast<Duration>(
      rng_.next_exponential(static_cast<double>(churn_.mean_gap)));
  sim_.schedule(std::max<Duration>(1, gap), [this] { churn_tick(); });
}

void FaultInjector::churn_tick() {
  if (!churn_active_) return;
  if (down_.size() < churn_.max_concurrent_down) {
    // Draw the victim among up candidates, in id order for determinism.
    std::vector<NodeId> up;
    if (churn_.candidates.empty()) {
      for (NodeId n = 0; n < sim_.node_count(); ++n) {
        if (sim_.node_up(n)) up.push_back(n);
      }
    } else {
      for (NodeId n : churn_.candidates) {
        if (sim_.node_up(n)) up.push_back(n);
      }
    }
    if (!up.empty()) {
      const NodeId victim = up[rng_.next_below(up.size())];
      const Duration spread = churn_.max_down - churn_.min_down;
      const Duration down_for =
          churn_.min_down +
          (spread > 0 ? static_cast<Duration>(rng_.next_below(
                            static_cast<std::uint64_t>(spread) + 1))
                      : 0);
      crash_now(victim, down_for, churn_.wipe_mempool);
    }
  }
  const auto gap = static_cast<Duration>(
      rng_.next_exponential(static_cast<double>(churn_.mean_gap)));
  sim_.schedule(std::max<Duration>(1, gap), [this] { churn_tick(); });
}

void FaultInjector::flaky_link(NodeId a, NodeId b, TimePoint from,
                               TimePoint until, double drop_prob,
                               bool bidirectional) {
  flaky_.push_back(FlakyWindow{a, b, from, until, drop_prob, bidirectional});
}

void FaultInjector::latency_spike(TimePoint from, TimePoint until,
                                  double factor) {
  spikes_.push_back(LatencyWindow{from, until, std::max(1.0, factor)});
}

bool FaultInjector::should_drop(NodeId from, NodeId to) {
  const TimePoint now = sim_.now();
  for (const auto& w : flaky_) {
    if (now < w.from || now >= w.until) continue;
    const bool match = (w.a == from && w.b == to) ||
                       (w.bidirectional && w.a == to && w.b == from);
    // The coin comes from the sender's stream, not the injector's: this
    // runs inside send() on the sender's shard, and per-sender draws keep
    // the sequence independent of how worker shards interleave.
    if (match && sim_.node_rng(from).next_bool(w.drop_prob)) {
      sim_.bump_shard_counter(c_link_drops_h_);
      return true;
    }
  }
  return false;
}

Duration FaultInjector::shape_latency(NodeId, NodeId, Duration base) const {
  const TimePoint now = sim_.now();
  double factor = 1.0;
  for (const auto& w : spikes_) {
    if (now >= w.from && now < w.until) factor = std::max(factor, w.factor);
  }
  return factor == 1.0
             ? base
             : static_cast<Duration>(static_cast<double>(base) * factor);
}

}  // namespace lo::sim
