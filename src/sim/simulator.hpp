// Deterministic discrete-event network simulator.
//
// The paper evaluates LØ on a 10,000-process cluster deployment; this
// reproduction substitutes a single-process event-driven simulation (see
// DESIGN.md, substitution 3). Nodes exchange Payload messages; delivery
// latency comes from a pluggable LatencyModel; every sent byte is recorded by
// the BandwidthAccountant, which is the ground truth for the Fig. 9
// bandwidth-overhead comparison.
//
// Node lifecycle: every registered node is up by default. A down node neither
// sends nor receives — sends from it are dropped at the NIC (no bandwidth
// charged), and messages still in flight toward it are lost at delivery time,
// like packets racing a host that just lost power. Each transition to down
// bumps the node's *epoch* (incarnation number); callbacks scheduled through
// schedule_for() are pinned to the epoch they were armed in and are silently
// suppressed once the owner crashes, so a restarted node never executes
// timers from a previous life.
//
// Delivery semantics: drop probability, the delivery filter and the fault
// filter are all evaluated at SEND time. A message that passes them is
// irrevocably in flight: healing a partition mid-flight does not resurrect
// messages dropped earlier, and cutting a link does not destroy messages that
// already left (test_sim.cpp pins this).
//
// Determinism: events fire in (time, insertion sequence) order and all
// randomness flows from the seed passed to the constructor, so a run is
// reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "obs/hub.hpp"
#include "sim/bandwidth.hpp"
#include "sim/latency.hpp"
#include "sim/shard_mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace lo::sim {

using NodeId = std::uint32_t;
using TimePoint = std::int64_t;  // microseconds since simulation start
using Duration = std::int64_t;   // microseconds

constexpr Duration from_seconds(double s) noexcept {
  return static_cast<Duration>(s * 1e6);
}
constexpr double to_seconds(TimePoint t) noexcept {
  return static_cast<double>(t) / 1e6;
}
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000000;

// Base class for all wire messages. wire_size() must return the serialized
// size in bytes — it is what the bandwidth accountant charges.
class Payload {
 public:
  virtual ~Payload() = default;
  virtual const char* type_name() const noexcept = 0;
  virtual std::size_t wire_size() const noexcept = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

class INode {
 public:
  virtual ~INode() = default;
  // Called once when the simulation starts (after all nodes are registered).
  virtual void on_start() {}
  virtual void on_message(NodeId from, const PayloadPtr& msg) = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed);

  // The observability hub's tracer holds a pointer to this simulator's
  // clock cell, so the object must stay put once constructed.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  Simulator(Simulator&&) = delete;
  Simulator& operator=(Simulator&&) = delete;

  TimePoint now() const noexcept { return now_; }
  util::Rng& rng() noexcept { return rng_; }
  BandwidthAccountant& bandwidth() noexcept { return bandwidth_; }
  const BandwidthAccountant& bandwidth() const noexcept { return bandwidth_; }

  // Per-simulation observability: the shared metrics registry + event
  // tracer. The tracer is disabled by default; enabling it costs one branch
  // per instrumented site plus the ring write when on.
  obs::Hub& obs() noexcept { return obs_; }
  const obs::Hub& obs() const noexcept { return obs_; }

  // Registers a node; ids are assigned densely starting at 0. The simulator
  // does not own the node.
  NodeId add_node(INode* node);
  std::size_t node_count() const noexcept { return nodes_.size(); }

  void set_latency_model(std::shared_ptr<LatencyModel> model) {
    latency_ = std::move(model);
  }

  // Uniform message loss probability (applied per message).
  void set_drop_probability(double p) noexcept { drop_probability_ = p; }

  // Arbitrary delivery filter for partitions/censorship at the network level;
  // return false to drop the message. Bandwidth is still charged to the
  // sender (the bytes left the NIC). Evaluated at send time — see the header
  // comment for the in-flight semantics this implies.
  using DeliveryFilter = std::function<bool(NodeId from, NodeId to)>;
  void set_delivery_filter(DeliveryFilter f) { filter_ = std::move(f); }

  // Second, independent filter slot reserved for the fault-injection
  // subsystem (per-link flaky windows), so faults compose with whatever
  // partition filter an experiment installed. Same semantics as above.
  void set_fault_filter(DeliveryFilter f) { fault_filter_ = std::move(f); }

  // Maps the model latency to the effective one (fault-injected latency
  // degradation spikes). Evaluated at send time.
  using LatencyShaper = std::function<Duration(NodeId from, NodeId to, Duration base)>;
  void set_latency_shaper(LatencyShaper f) { latency_shaper_ = std::move(f); }

  // --- node lifecycle ---
  // Marking a node down bumps its epoch, which cancels all of its
  // epoch-scoped callbacks (schedule_for). Marking it up does not re-arm
  // anything; that is the owner's job on restart.
  void set_node_up(NodeId id, bool up);
  bool node_up(NodeId id) const noexcept {
    return id >= node_state_.size() || node_state_[id].up;
  }
  std::uint64_t node_epoch(NodeId id) const noexcept {
    return id < node_state_.size() ? node_state_[id].epoch : 0;
  }
  std::size_t down_count() const noexcept;

  // Fault observability (tests assert on mechanism, not just outcomes). The
  // counters live in the metrics registry ("sim.dropped_sender_down", ...);
  // this struct is a thin read shim assembled from the registry cells so
  // pre-registry callers keep compiling unchanged.
  struct FaultCounters {
    std::uint64_t dropped_sender_down = 0;
    std::uint64_t dropped_receiver_down = 0;
    std::uint64_t suppressed_callbacks = 0;
    std::uint64_t dropped_by_fault_filter = 0;
  };
  FaultCounters fault_counters() const noexcept {
    return FaultCounters{*c_dropped_sender_down_, *c_dropped_receiver_down_,
                         *c_suppressed_callbacks_, *c_dropped_by_fault_filter_};
  }

  // Sends a message; it arrives at `to` after the model latency.
  void send(NodeId from, NodeId to, PayloadPtr msg);

  // Schedules fn at now() + delay (delay >= 0).
  void schedule(Duration delay, std::function<void()> fn);

  // Schedules fn at now() + delay on behalf of `owner`: the callback is
  // suppressed (not executed) if the owner is down when it fires or has
  // crashed since it was armed (epoch mismatch). Unregistered owners behave
  // like plain schedule().
  void schedule_for(NodeId owner, Duration delay, std::function<void()> fn);

  // Calls on_start() on every node (in id order). Must be called once before
  // stepping/running; idempotent.
  void start();

  // Processes events until the queue is empty or the horizon is reached.
  // Returns the number of events processed. now() ends at max(now, horizon)
  // even when the queue drains early.
  std::size_t run_until(TimePoint horizon);

  // Processes a single event; returns false when the queue is empty.
  bool step();

  std::size_t pending_events() const;

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;  // min-heap on time
      return a.seq > b.seq;                  // FIFO among simultaneous events
    }
  };
  struct NodeState {
    bool up = true;
    std::uint64_t epoch = 0;  // bumped on every up -> down transition
  };

  // Everything below except {shard_mu_, next_seq_, queue_} is
  // coordinator-owned: in the parallel DES it is read or written only
  // between worker windows (setup, barrier advancement, teardown), never
  // from worker threads, so it stays deliberately outside the shard lock.
  // The lolint annotations record that ownership decision field by field.
  //
  // now_ additionally has its address escaped to the tracer (set_clock), so
  // it must not move behind a lock that workers would need.
  // lolint:allow(unguarded-field) reason=coordinator-owned clock; advances only at window barriers, tracer reads it via a stable pointer
  TimePoint now_ = 0;
  util::Rng rng_;
  obs::Hub obs_;
  // lolint:allow(unguarded-field) reason=coordinator-owned topology; nodes register before the run starts
  std::vector<INode*> nodes_;
  // lolint:allow(unguarded-field) reason=coordinator-owned lifecycle table; fault injection runs between worker windows
  std::vector<NodeState> node_state_;
  // The event queue is the structure cross-shard sends will contend on once
  // nodes are sharded across workers; it is lock-guarded today (uncontended)
  // so the parallel refactor is a guarded-state diff, not an archaeology
  // project (DESIGN.md §4d).
  mutable ShardMutex shard_mu_;
  std::uint64_t next_seq_ LO_GUARDED_BY(shard_mu_) = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_
      LO_GUARDED_BY(shard_mu_);
  // lolint:allow(unguarded-field) reason=coordinator-owned configuration; installed during experiment setup, read-only afterwards
  std::shared_ptr<LatencyModel> latency_;
  BandwidthAccountant bandwidth_;
  // lolint:allow(unguarded-field) reason=coordinator-owned configuration; installed during experiment setup, read-only afterwards
  double drop_probability_ = 0.0;
  // lolint:allow(unguarded-field) reason=coordinator-owned configuration; installed during experiment setup, read-only afterwards
  DeliveryFilter filter_;
  // lolint:allow(unguarded-field) reason=coordinator-owned configuration; installed during experiment setup, read-only afterwards
  DeliveryFilter fault_filter_;
  // lolint:allow(unguarded-field) reason=coordinator-owned configuration; installed during experiment setup, read-only afterwards
  LatencyShaper latency_shaper_;
  // Registry cell handles (stable addresses; see Registry::counter).
  std::uint64_t* c_dropped_sender_down_;
  std::uint64_t* c_dropped_receiver_down_;
  std::uint64_t* c_suppressed_callbacks_;
  std::uint64_t* c_dropped_by_fault_filter_;
  // lolint:allow(unguarded-field) reason=coordinator-owned start latch; flipped once before any worker exists
  bool started_ = false;
};

}  // namespace lo::sim
