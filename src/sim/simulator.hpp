// Deterministic discrete-event network simulator with a conservatively
// synchronized parallel engine.
//
// The paper evaluates LØ on a 10,000-process cluster deployment; this
// reproduction substitutes an event-driven simulation (see DESIGN.md,
// substitution 3). Nodes exchange Payload messages; delivery latency comes
// from a pluggable LatencyModel; every sent byte is recorded by the
// BandwidthAccountant, which is the ground truth for the Fig. 9
// bandwidth-overhead comparison.
//
// Node lifecycle: every registered node is up by default. A down node neither
// sends nor receives — sends from it are dropped at the NIC (no bandwidth
// charged), and messages still in flight toward it are lost at delivery time,
// like packets racing a host that just lost power. Each transition to down
// bumps the node's *epoch* (incarnation number); callbacks scheduled through
// schedule_for() are pinned to the epoch they were armed in and are silently
// suppressed once the owner crashes, so a restarted node never executes
// timers from a previous life.
//
// Delivery semantics: drop probability, the delivery filter and the fault
// filter are all evaluated at SEND time. A message that passes them is
// irrevocably in flight: healing a partition mid-flight does not resurrect
// messages dropped earlier, and cutting a link does not destroy messages that
// already left (test_sim.cpp pins this).
//
// Determinism and the parallel engine (DESIGN.md §4e): every event carries a
// key (at, seq) where seq = (counter << 24) | creator, with one counter per
// creating context (node, or the coordinator). Keys are globally unique and
// depend only on each context's own scheduling history, never on global
// interleaving — so executing events in key order gives the same run whether
// one thread pops a single queue or W workers advance per-shard queues
// through lookahead windows bounded by LatencyModel::min_latency_us().
// Cross-shard sends are buffered into per-shard inboxes and merged at window
// barriers; per-node RNG streams (node_rng) make draws independent of
// scheduling order. set_workers(1) — the default — keeps the fully serial
// engine; a parallel run at the same seed produces byte-identical traces and
// registry exports (test_determinism asserts this across worker counts).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/hub.hpp"
#include "sim/bandwidth.hpp"
#include "sim/latency.hpp"
#include "sim/shard_mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace lo::sim {

using NodeId = std::uint32_t;
using TimePoint = std::int64_t;  // microseconds since simulation start
using Duration = std::int64_t;   // microseconds

constexpr Duration from_seconds(double s) noexcept {
  return static_cast<Duration>(s * 1e6);
}
constexpr double to_seconds(TimePoint t) noexcept {
  return static_cast<double>(t) / 1e6;
}
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000000;

// Context id carried in the low 24 bits of an event key: a node id, or this
// sentinel for the coordinator (setup code, workloads, fault scripts —
// everything that runs between lookahead windows, never on a worker).
constexpr std::uint32_t kCoordinatorCtx = 0xFFFFFFu;

// Base class for all wire messages. wire_size() must return the serialized
// size in bytes — it is what the bandwidth accountant charges.
class Payload {
 public:
  virtual ~Payload() = default;
  virtual const char* type_name() const noexcept = 0;
  virtual std::size_t wire_size() const noexcept = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

class INode {
 public:
  virtual ~INode() = default;
  // Called once when the simulation starts (after all nodes are registered).
  virtual void on_start() {}
  virtual void on_message(NodeId from, const PayloadPtr& msg) = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed);
  ~Simulator();

  // The observability hub's tracer holds a pointer to this simulator's
  // clock cell, so the object must stay put once constructed.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  Simulator(Simulator&&) = delete;
  Simulator& operator=(Simulator&&) = delete;

  // Current simulation time: the executing event's timestamp on a worker
  // thread, the coordinator clock everywhere else.
  TimePoint now() const noexcept;

  // The coordinator RNG stream: setup, topology, workloads. Worker-context
  // code must draw from node_rng() instead so shards draw independently of
  // scheduling order.
  util::Rng& rng() noexcept { return rng_; }
  // Per-node stream, derived from (seed, node id) at registration
  // (util::Rng::for_stream). Throws std::out_of_range for unregistered ids.
  util::Rng& node_rng(NodeId id);

  BandwidthAccountant& bandwidth() noexcept { return bandwidth_; }
  const BandwidthAccountant& bandwidth() const noexcept { return bandwidth_; }

  // Per-simulation observability: the shared metrics registry + event
  // tracer. The tracer is disabled by default; enabling it costs one branch
  // per instrumented site plus the ring write when on.
  obs::Hub& obs() noexcept { return obs_; }
  const obs::Hub& obs() const noexcept { return obs_; }

  // Registers a node; ids are assigned densely starting at 0. The simulator
  // does not own the node.
  NodeId add_node(INode* node);
  std::size_t node_count() const noexcept { return nodes_.size(); }

  // --- parallel engine ---
  // Number of worker shards (>= 1). 1 (the default) is the serial engine;
  // W > 1 shards node-context events by node id % W across a worker pool and
  // advances them through lookahead windows bounded by the latency model's
  // min_latency_us() (a model with no positive bound degrades to serial).
  // Pending events are re-bucketed, so this may be called any time from
  // coordinator context; same-seed runs are byte-identical for every W.
  void set_workers(unsigned n);
  unsigned workers() const noexcept { return workers_; }

  // Deterministic side channel for observers that live outside the sharded
  // state (harness metric hooks). From worker context the closure is buffered
  // with the executing event's key and run at the window barrier, on the
  // coordinator thread, in global key order — exactly the order the serial
  // engine would have run it inline. From coordinator context it runs
  // immediately. Closures must capture plain values and must not schedule
  // events or draw RNG (they run outside any event context).
  void post(std::function<void()> fn);

  // Shared registry counters that worker-context code needs to bump (the
  // simulator's own drop/suppression counters, the fault injector's link
  // drops): registration (coordinator-only) binds a registry cell and returns
  // a handle; bumps from worker context accumulate in per-shard scratch
  // flushed into the cell at the window barrier. Sums commute, so the merged
  // value is worker-count-independent.
  std::uint32_t register_shard_counter(std::string_view name);
  void bump_shard_counter(std::uint32_t handle, std::uint64_t n = 1);

  void set_latency_model(std::shared_ptr<LatencyModel> model) {
    latency_ = std::move(model);
  }

  // Uniform message loss probability (applied per message, drawn from the
  // sender's node stream).
  void set_drop_probability(double p) noexcept { drop_probability_ = p; }

  // Arbitrary delivery filter for partitions/censorship at the network level;
  // return false to drop the message. Bandwidth is still charged to the
  // sender (the bytes left the NIC). Evaluated at send time — see the header
  // comment for the in-flight semantics this implies.
  using DeliveryFilter = std::function<bool(NodeId from, NodeId to)>;
  void set_delivery_filter(DeliveryFilter f) { filter_ = std::move(f); }

  // Second, independent filter slot reserved for the fault-injection
  // subsystem (per-link flaky windows), so faults compose with whatever
  // partition filter an experiment installed. Same semantics as above.
  void set_fault_filter(DeliveryFilter f) { fault_filter_ = std::move(f); }

  // Maps the model latency to the effective one (fault-injected latency
  // degradation spikes). Evaluated at send time. Shapers must never reduce
  // the latency below the model's min_latency_us() — under the parallel
  // engine a cross-shard delivery below the lookahead window throws
  // std::logic_error (the conservative-synchronization causality guard).
  using LatencyShaper = std::function<Duration(NodeId from, NodeId to, Duration base)>;
  void set_latency_shaper(LatencyShaper f) { latency_shaper_ = std::move(f); }

  // --- node lifecycle ---
  // Marking a node down bumps its epoch, which cancels all of its
  // epoch-scoped callbacks (schedule_for). Marking it up does not re-arm
  // anything; that is the owner's job on restart. All three lifecycle
  // accessors share one contract: unregistered ids throw std::out_of_range
  // (the read side used to presume unknown ids up, which let out-of-range
  // senders through — see test_sim regression tests).
  void set_node_up(NodeId id, bool up);
  bool node_up(NodeId id) const {
    if (id >= node_state_.size()) throw std::out_of_range("unknown node");
    return node_state_[id].up;
  }
  std::uint64_t node_epoch(NodeId id) const {
    if (id >= node_state_.size()) throw std::out_of_range("unknown node");
    return node_state_[id].epoch;
  }
  std::size_t down_count() const noexcept;

  // Fault observability (tests assert on mechanism, not just outcomes). The
  // counters live in the metrics registry ("sim.dropped_sender_down", ...);
  // this struct is a thin read shim assembled from the registry cells so
  // pre-registry callers keep compiling unchanged. Coordinator-context only:
  // worker bumps land in the cells at the next window barrier.
  struct FaultCounters {
    std::uint64_t dropped_sender_down = 0;
    std::uint64_t dropped_receiver_down = 0;
    std::uint64_t suppressed_callbacks = 0;
    std::uint64_t dropped_by_fault_filter = 0;
  };
  FaultCounters fault_counters() const noexcept {
    return FaultCounters{*c_dropped_sender_down_, *c_dropped_receiver_down_,
                         *c_suppressed_callbacks_, *c_dropped_by_fault_filter_};
  }

  // Sends a message; it arrives at `to` after the model latency. Both
  // endpoints must be registered (std::out_of_range otherwise — an unknown
  // sender used to slip past the liveness check and index the bandwidth
  // table out of bounds).
  void send(NodeId from, NodeId to, PayloadPtr msg);

  // Schedules fn at now() + delay (delay < 0 clamps to 0). The callback
  // executes in the scheduling context (same node shard, or coordinator).
  void schedule(Duration delay, std::function<void()> fn);

  // Schedules fn at now() + delay on behalf of `owner`: the callback is
  // suppressed (not executed) if the owner is down when it fires or has
  // crashed since it was armed (epoch mismatch). The owner must be
  // registered — std::out_of_range otherwise (an out-of-range owner used to
  // silently degrade to an unpinned plain schedule(), so a timer armed
  // before late registration would have survived that node's crash).
  void schedule_for(NodeId owner, Duration delay, std::function<void()> fn);

  // Calls on_start() on every node (in id order). Must be called once before
  // stepping/running; idempotent.
  void start();

  // Processes events until the queue is empty or the horizon is reached.
  // Returns the number of events processed. now() ends at max(now, horizon)
  // even when the queue drains early; a horizon in the past is a no-op —
  // run_until never executes anything and never moves now() backwards.
  std::size_t run_until(TimePoint horizon);

  // Processes a single event (always serially, in global key order);
  // returns false when the queue is empty.
  bool step();

  std::size_t pending_events() const;

 private:
  struct Event {
    TimePoint at = 0;
    std::uint64_t seq = 0;     // (creator counter << 24) | creator ctx id
    std::uint32_t ctx = kCoordinatorCtx;  // execution context: node or coordinator
    // Causal span of the dispatch that created this event (obs::Tracer::Cause;
    // 0 = created outside any dispatch). Span ids are seq + 1 — globally
    // unique, worker-count-independent — so the trace layer can link every
    // emitted event to the dispatch chain that caused it.
    std::uint64_t parent = 0;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;  // min-heap on time
      return a.seq > b.seq;  // unique per-context keys break ties
    }
  };
  using EventQueue = std::priority_queue<Event, std::vector<Event>, EventOrder>;
  struct NodeState {
    bool up = true;
    std::uint64_t epoch = 0;  // bumped on every up -> down transition
  };

  // One shard = one worker's slice of the node space (node id % workers).
  // During a lookahead window the owning worker is the only thread touching
  // `queue`; other workers deposit cross-shard deliveries into `inbox` under
  // its mutex, and the coordinator folds the inbox back into the queue at
  // the barrier (keys are globally unique, so push order is irrelevant).
  struct Shard {
    // lolint:allow(unguarded-field) reason=owned by the shard worker during a window and by the coordinator between windows; never shared
    EventQueue queue;
    ShardMutex inbox_mu;
    std::vector<Event> inbox LO_GUARDED_BY(inbox_mu);
  };

  // Per-worker execution context + window scratch. Installed thread-locally
  // for the duration of one lookahead window; all scratch is merged by the
  // coordinator at the barrier in deterministic event-key order.
  struct WorkerCtx final : obs::Tracer::ThreadSink {
    Simulator* sim = nullptr;
    unsigned shard = 0;
    TimePoint now = 0;            // executing event's timestamp
    std::uint64_t exec_seq = 0;   // executing event's key (tags trace/posts)
    std::uint32_t exec_ctx = kCoordinatorCtx;
    std::uint64_t floor = 0;      // counter floor for events it schedules
    std::size_t events = 0;       // events executed this window
    std::exception_ptr error;

    BandwidthAccountant bw;                // merged into bandwidth_ at barrier
    std::vector<std::uint64_t> counters;   // parallel to shard_cells_

    struct TraceRec {
      TimePoint at;
      std::uint64_t seq;
      std::uint32_t idx;
      obs::TraceEvent ev;  // ev.name is a shard-local intern id
    };
    std::vector<TraceRec> trace;
    std::uint32_t trace_idx = 0;
    // Shard-local intern table; remapped through the canonical Tracer
    // intern() at the barrier, in merged event order, so first-use global
    // ids come out identical to a serial run.
    std::vector<std::string> names{std::string()};  // local id 0 = ""
    std::map<std::string, std::uint16_t, std::less<>> intern;

    struct PostRec {
      TimePoint at;
      std::uint64_t seq;
      std::uint32_t idx;
      obs::Tracer::Cause cause;  // restored around fn at the barrier flush
      std::function<void()> fn;
    };
    std::vector<PostRec> posts;
    std::uint32_t post_idx = 0;

    void sink_event(obs::EventKind kind, std::uint32_t node,
                    std::uint32_t peer, std::uint64_t a, std::uint64_t b,
                    std::uint16_t name, std::uint32_t aux) override;
    std::uint16_t sink_intern(std::string_view s) override;
  };

  // --- engine internals (simulator.cpp) ---
  // The executing worker's context: one slot per thread, installed/cleared
  // by run_shard_window on the thread that owns the WorkerCtx; null on the
  // coordinator thread and between windows.
  // lolint:allow(thread-local-protocol) reason=per-worker execution context for the sharded engine; each thread only reads its own slot
  static thread_local WorkerCtx* tls_ctx_;
  TimePoint local_now() const noexcept;
  std::uint64_t alloc_seq();
  unsigned shard_of(std::uint32_t ctx) const noexcept {
    return static_cast<unsigned>(ctx % workers_);
  }
  void push_event(Event ev);
  void dispatch_serial(Event& ev);
  int pick_next(TimePoint max_at) const;  // -2 none, -1 coordinator, else shard
  std::size_t run_serial(TimePoint max_at);
  std::size_t run_window_parallel(TimePoint bound);
  void run_shard_window(unsigned s);
  std::size_t flush_window();
  void ensure_pool();
  void stop_pool();
  void worker_loop(unsigned s);

  // Coordinator-owned state: read or written only between worker windows
  // (setup, barrier advancement, teardown), never from worker threads. now_
  // additionally has its address escaped to the tracer (set_clock), so it
  // must stay put.
  std::uint64_t seed_;
  TimePoint now_ = 0;
  util::Rng rng_;
  obs::Hub obs_;
  std::vector<INode*> nodes_;
  std::vector<NodeState> node_state_;
  std::vector<util::Rng> node_rngs_;

  // Event-key counters: one per creating context. A node's counter is only
  // touched by its own shard's worker (or the coordinator while workers are
  // parked), so no locking is needed and the assigned keys are independent
  // of worker count.
  std::vector<std::uint64_t> ctx_ctr_;
  std::uint64_t coord_ctr_ = 0;
  // Serial-path execution context (the TLS WorkerCtx carries these on
  // worker threads).
  std::uint32_t cur_exec_ctx_ = kCoordinatorCtx;
  std::uint64_t cur_floor_ = 0;

  unsigned workers_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<WorkerCtx>> ctxs_;
  EventQueue coord_q_;

  // Worker pool (created lazily at the first parallel window). The pool
  // handshake is a plain mutex + condvar generation counter; window_bound_
  // and participate_ are published before the generation bump and read by
  // workers after observing it.
  std::vector<std::thread> threads_;
  std::mutex pool_mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t window_gen_ = 0;
  unsigned running_ = 0;
  bool pool_stop_ = false;
  TimePoint window_bound_ = 0;
  std::vector<char> participate_;

  std::shared_ptr<LatencyModel> latency_;
  BandwidthAccountant bandwidth_;
  double drop_probability_ = 0.0;
  DeliveryFilter filter_;
  DeliveryFilter fault_filter_;
  LatencyShaper latency_shaper_;

  // Registry cell handles (stable addresses; see Registry::counter) plus the
  // shard-counter table (worker bumps accumulate per shard, flushed at
  // barriers).
  std::vector<std::uint64_t*> shard_cells_;
  std::uint32_t c_sender_down_h_ = 0;
  std::uint32_t c_receiver_down_h_ = 0;
  std::uint32_t c_suppressed_h_ = 0;
  std::uint32_t c_fault_filter_h_ = 0;
  std::uint64_t* c_dropped_sender_down_;
  std::uint64_t* c_dropped_receiver_down_;
  std::uint64_t* c_suppressed_callbacks_;
  std::uint64_t* c_dropped_by_fault_filter_;
  bool started_ = false;
};

}  // namespace lo::sim
