// Deterministic discrete-event network simulator.
//
// The paper evaluates LØ on a 10,000-process cluster deployment; this
// reproduction substitutes a single-process event-driven simulation (see
// DESIGN.md, substitution 3). Nodes exchange Payload messages; delivery
// latency comes from a pluggable LatencyModel; every sent byte is recorded by
// the BandwidthAccountant, which is the ground truth for the Fig. 9
// bandwidth-overhead comparison.
//
// Determinism: events fire in (time, insertion sequence) order and all
// randomness flows from the seed passed to the constructor, so a run is
// reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/bandwidth.hpp"
#include "sim/latency.hpp"
#include "util/rng.hpp"

namespace lo::sim {

using NodeId = std::uint32_t;
using TimePoint = std::int64_t;  // microseconds since simulation start
using Duration = std::int64_t;   // microseconds

constexpr Duration from_seconds(double s) noexcept {
  return static_cast<Duration>(s * 1e6);
}
constexpr double to_seconds(TimePoint t) noexcept {
  return static_cast<double>(t) / 1e6;
}
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000000;

// Base class for all wire messages. wire_size() must return the serialized
// size in bytes — it is what the bandwidth accountant charges.
class Payload {
 public:
  virtual ~Payload() = default;
  virtual const char* type_name() const noexcept = 0;
  virtual std::size_t wire_size() const noexcept = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

class INode {
 public:
  virtual ~INode() = default;
  // Called once when the simulation starts (after all nodes are registered).
  virtual void on_start() {}
  virtual void on_message(NodeId from, const PayloadPtr& msg) = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed);

  TimePoint now() const noexcept { return now_; }
  util::Rng& rng() noexcept { return rng_; }
  BandwidthAccountant& bandwidth() noexcept { return bandwidth_; }
  const BandwidthAccountant& bandwidth() const noexcept { return bandwidth_; }

  // Registers a node; ids are assigned densely starting at 0. The simulator
  // does not own the node.
  NodeId add_node(INode* node);
  std::size_t node_count() const noexcept { return nodes_.size(); }

  void set_latency_model(std::shared_ptr<LatencyModel> model) {
    latency_ = std::move(model);
  }

  // Uniform message loss probability (applied per message).
  void set_drop_probability(double p) noexcept { drop_probability_ = p; }

  // Arbitrary delivery filter for partitions/censorship at the network level;
  // return false to drop the message. Bandwidth is still charged to the
  // sender (the bytes left the NIC).
  using DeliveryFilter = std::function<bool(NodeId from, NodeId to)>;
  void set_delivery_filter(DeliveryFilter f) { filter_ = std::move(f); }

  // Sends a message; it arrives at `to` after the model latency.
  void send(NodeId from, NodeId to, PayloadPtr msg);

  // Schedules fn at now() + delay (delay >= 0).
  void schedule(Duration delay, std::function<void()> fn);

  // Calls on_start() on every node (in id order). Must be called once before
  // stepping/running; idempotent.
  void start();

  // Processes events until the queue is empty or the horizon is reached.
  // Returns the number of events processed.
  std::size_t run_until(TimePoint horizon);

  // Processes a single event; returns false when the queue is empty.
  bool step();

  std::size_t pending_events() const noexcept { return queue_.size(); }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;  // min-heap on time
      return a.seq > b.seq;                  // FIFO among simultaneous events
    }
  };

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  util::Rng rng_;
  std::vector<INode*> nodes_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::shared_ptr<LatencyModel> latency_;
  BandwidthAccountant bandwidth_;
  double drop_probability_ = 0.0;
  DeliveryFilter filter_;
  bool started_ = false;
};

}  // namespace lo::sim
