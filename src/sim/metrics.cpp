#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lo::sim {

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::percentile(double q) const {
  if (values_.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile out of range");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

std::vector<Samples::HistogramBin> Samples::histogram(std::size_t bins,
                                                      double lo,
                                                      double hi) const {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("bad histogram spec");
  std::vector<HistogramBin> out(bins);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    out[i].lo = lo + width * static_cast<double>(i);
    out[i].hi = out[i].lo + width;
    out[i].count = 0;
  }
  std::size_t total = 0;
  for (double v : values_) {
    // The top bin is inclusive of hi (the idx clamp below lands v == hi in
    // the last bin); dropping the boundary sample would skew the top bucket
    // of the latency plots.
    if (v < lo || v > hi) continue;
    const std::size_t idx = static_cast<std::size_t>((v - lo) / width);
    ++out[idx < bins ? idx : bins - 1].count;
    ++total;
  }
  for (auto& b : out) {
    b.density = total == 0 ? 0.0
                           : static_cast<double>(b.count) /
                                 (static_cast<double>(total) * width);
  }
  return out;
}

obs::LogHistogram Samples::histogram_log() const {
  obs::LogHistogram h;
  for (double v : values_) h.observe(v);
  return h;
}

void Samples::merge(const Samples& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
}

}  // namespace lo::sim
