// Annotated per-shard mutex for the simulator core.
//
// The conservatively synchronized parallel DES (ROADMAP) shards nodes across
// worker threads; the contended structure is each shard's event queue, where
// cross-shard sends from other workers land. ShardMutex is that lock,
// introduced *before* the parallel refactor so the queue state is already
// LO_GUARDED_BY-annotated and the lock discipline is compile-checked under
// Clang -Wthread-safety. Today there is exactly one shard and one thread, so
// every acquisition is uncontended (~20 ns against an event dispatch that
// runs a std::function) — behavior is unchanged.
#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace lo::sim {

class LO_CAPABILITY("mutex") ShardMutex {
 public:
  ShardMutex() = default;
  ShardMutex(const ShardMutex&) = delete;
  ShardMutex& operator=(const ShardMutex&) = delete;

  void lock() LO_ACQUIRE() { mu_.lock(); }
  void unlock() LO_RELEASE() { mu_.unlock(); }
  bool try_lock() LO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

class LO_SCOPED_CAPABILITY ShardLock {
 public:
  explicit ShardLock(ShardMutex& mu) LO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~ShardLock() LO_RELEASE() { mu_.unlock(); }

  ShardLock(const ShardLock&) = delete;
  ShardLock& operator=(const ShardLock&) = delete;

 private:
  ShardMutex& mu_;
};

}  // namespace lo::sim
