// Per-node, per-message-class bandwidth accounting.
//
// Fig. 9 of the paper compares the *overhead* bandwidth of LØ, Flood,
// PeerReview and Narwhal, excluding transaction bodies (identical across
// protocols). Protocols therefore tag each payload with a message class; the
// experiment harness sums selected classes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lo::sim {

struct ClassStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class BandwidthAccountant {
 public:
  void reset(std::size_t node_count);

  // Grows the per-node table without clearing recorded data.
  void ensure_nodes(std::size_t node_count);

  void record(std::uint32_t from, const char* msg_class, std::size_t bytes);

  // Folds another accountant's totals into this one (per-node, per-class and
  // grand totals all add). This is the barrier aggregation path of the
  // parallel simulator: workers record into per-shard scratch accountants and
  // the coordinator merges them — byte counts are sums, so the merged state
  // is independent of worker interleaving.
  void merge(const BandwidthAccountant& other);

  // Total bytes sent by one node (all classes).
  std::uint64_t sent_by(std::uint32_t node) const;
  // Totals across all nodes.
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  std::uint64_t total_messages() const noexcept { return total_messages_; }

  const std::map<std::string, ClassStats>& by_class() const noexcept {
    return by_class_;
  }

  // Sum of bytes over all classes except those listed (e.g. tx bodies).
  std::uint64_t bytes_excluding(const std::vector<std::string>& excluded) const;

 private:
  std::vector<std::uint64_t> per_node_bytes_;
  std::map<std::string, ClassStats> by_class_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
};

}  // namespace lo::sim
