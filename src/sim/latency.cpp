#include "sim/latency.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace lo::sim {

namespace {

struct City {
  const char* name;
  double lat;  // degrees
  double lon;  // degrees
};

// 32 cities, approximating the WonderNetwork ping-dataset coverage the paper
// uses (Sec. 6.1). Coordinates are approximate city centers.
constexpr City kCities[32] = {
    {"Amsterdam", 52.37, 4.90},     {"Athens", 37.98, 23.73},
    {"Bangalore", 12.97, 77.59},    {"Barcelona", 41.39, 2.17},
    {"Beijing", 39.90, 116.41},     {"Bogota", 4.71, -74.07},
    {"Buenos Aires", -34.60, -58.38}, {"Cairo", 30.04, 31.24},
    {"Cape Town", -33.92, 18.42},   {"Chicago", 41.88, -87.63},
    {"Dallas", 32.78, -96.80},      {"Dubai", 25.20, 55.27},
    {"Frankfurt", 50.11, 8.68},     {"Hong Kong", 22.32, 114.17},
    {"Istanbul", 41.01, 28.98},     {"Jakarta", -6.21, 106.85},
    {"Johannesburg", -26.20, 28.05}, {"Lagos", 6.52, 3.38},
    {"London", 51.51, -0.13},       {"Los Angeles", 34.05, -118.24},
    {"Madrid", 40.42, -3.70},       {"Mexico City", 19.43, -99.13},
    {"Moscow", 55.76, 37.62},       {"Mumbai", 19.08, 72.88},
    {"New York", 40.71, -74.01},    {"Paris", 48.86, 2.35},
    {"Sao Paulo", -23.55, -46.63},  {"Seoul", 37.57, 126.98},
    {"Singapore", 1.35, 103.82},    {"Sydney", -33.87, 151.21},
    {"Tokyo", 35.68, 139.65},       {"Toronto", 43.65, -79.38},
};

constexpr double kEarthRadiusKm = 6371.0;
// Light in fiber travels at ~2/3 c; routes are not great circles. The route
// factor folds cable detours and store-and-forward hops into one constant.
constexpr double kFiberKmPerMs = 200.0;
constexpr double kRouteFactor = 2.0;
constexpr double kLastMileMs = 0.4;

double great_circle_km(const City& a, const City& b) {
  const double d2r = std::numbers::pi / 180.0;
  const double lat1 = a.lat * d2r, lat2 = b.lat * d2r;
  const double dlat = (b.lat - a.lat) * d2r;
  const double dlon = (b.lon - a.lon) * d2r;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(s));
}

}  // namespace

CityLatencyModel::CityLatencyModel(double jitter_frac)
    : jitter_frac_(jitter_frac) {
  const std::size_t n = city_count();
  matrix_.resize(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double km = great_circle_km(kCities[i], kCities[j]);
      const double ms = kLastMileMs + km / kFiberKmPerMs * kRouteFactor;
      matrix_[i * n + j] = static_cast<std::int64_t>(ms * 1000.0);
    }
  }
}

std::size_t CityLatencyModel::city_count() noexcept {
  return sizeof(kCities) / sizeof(kCities[0]);
}

std::string CityLatencyModel::city_name(std::size_t i) {
  if (i >= city_count()) throw std::out_of_range("city index");
  return kCities[i].name;
}

std::int64_t CityLatencyModel::base_us(std::size_t city_a,
                                       std::size_t city_b) const {
  const std::size_t n = city_count();
  if (city_a >= n || city_b >= n) throw std::out_of_range("city index");
  return matrix_[city_a * n + city_b];
}

std::int64_t CityLatencyModel::min_latency_us() const {
  if (jitter_frac_ > 0.0) return 200;  // only the latency_us() clamp survives jitter
  std::int64_t m = matrix_.empty() ? 200 : matrix_[0];
  for (const std::int64_t v : matrix_) m = std::min(m, v);
  return std::max<std::int64_t>(m, 200);
}

std::int64_t CityLatencyModel::latency_us(std::uint32_t from, std::uint32_t to,
                                          util::Rng& rng) {
  // Round-robin city assignment, matching the paper's experimental setup.
  const std::size_t n = city_count();
  std::int64_t base = matrix_[(from % n) * n + (to % n)];
  if (jitter_frac_ > 0.0) {
    const double mult = rng.next_lognormal(0.0, jitter_frac_);
    base = static_cast<std::int64_t>(static_cast<double>(base) * mult);
  }
  // Same-machine / same-city messages still take a hop.
  if (base < 200) base = 200;
  return base;
}

}  // namespace lo::sim
