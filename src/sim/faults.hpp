// FaultInjector — deterministic, seed-driven fault schedules on top of the
// simulator's node-lifecycle and delivery hooks.
//
// Four pathology classes, all replayable bit-for-bit from the injector seed:
//   * scripted crash/restart windows (crash_at),
//   * random churn — exponential inter-crash gaps, uniform down-time, bounded
//     concurrent downtime (start_churn / stop_churn),
//   * per-link flaky windows — probabilistic loss on one link for a bounded
//     interval (flaky_link),
//   * latency-degradation spikes — the model latency is scaled by a factor
//     while the window is active (latency_spike).
//
// The injector's schedule (churn gaps, victims, down-times) draws from its
// OWN Rng (not the simulator's), so adding or removing fault schedules never
// perturbs the protocol's randomness stream; a schedule replays identically
// regardless of what the workload does. The one exception is the per-message
// flaky-link coin, which is flipped at send time inside worker-sharded
// delivery code and therefore draws from the SENDER's node stream
// (Simulator::node_rng) — the draw order then depends only on that sender's
// send history, keeping parallel runs byte-identical to serial ones.
//
// Crash/restart policy lives with the caller: the injector invokes the
// CrashFn/RestartFn handlers (LoNetwork wires them to LoNode::crash/restart
// plus Simulator::set_node_up) and only tracks which nodes IT took down so
// churn never double-crashes or resurrects someone else's victim.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace lo::sim {

struct ChurnConfig {
  // Nodes eligible for churn; empty means every node registered at the time
  // a victim is drawn.
  std::vector<NodeId> candidates;
  // Mean gap between consecutive crash events (exponential distribution).
  Duration mean_gap = 5 * kSecond;
  // Down-time per crash, uniform in [min_down, max_down].
  Duration min_down = 2 * kSecond;
  Duration max_down = 8 * kSecond;
  // Never take more than this many nodes down at once.
  std::size_t max_concurrent_down = 1;
  // Whether churn crashes also wipe the victim's mempool (content must then
  // be re-fetched on restart; the commitment log always survives as "disk").
  bool wipe_mempool = false;
};

class FaultInjector {
 public:
  using CrashFn = std::function<void(NodeId node, bool wipe_mempool)>;
  using RestartFn = std::function<void(NodeId node)>;

  // Installs the injector's fault filter and latency shaper into `sim`.
  FaultInjector(Simulator& sim, std::uint64_t seed, CrashFn crash,
                RestartFn restart);

  // --- scripted windows ---
  // Crash `node` at absolute sim time `at` and restart it `down_for` later.
  // Times in the past are clamped to now.
  void crash_at(TimePoint at, NodeId node, Duration down_for,
                bool wipe_mempool = false);

  // Crash `node` immediately; restart after `down_for`.
  void crash_now(NodeId node, Duration down_for, bool wipe_mempool = false);

  // --- random churn ---
  void start_churn(const ChurnConfig& cfg);
  void stop_churn() noexcept { churn_active_ = false; }
  bool churn_active() const noexcept { return churn_active_; }

  // --- network pathology windows ---
  // Drop each message on the a->b link (and b->a when bidirectional) with
  // probability `drop_prob` while now() is in [from, until).
  void flaky_link(NodeId a, NodeId b, TimePoint from, TimePoint until,
                  double drop_prob, bool bidirectional = true);
  // Scale every delivery latency by `factor` while now() is in [from, until).
  // Overlapping spikes compose by taking the largest factor.
  void latency_spike(TimePoint from, TimePoint until, double factor);

  // --- introspection ---
  // The injector counters live in the simulator's metrics registry
  // ("faults.crashes_injected", ...); these accessors are read shims over
  // the registry cells.
  bool is_down(NodeId node) const { return down_.count(node) != 0; }
  std::size_t down_count() const noexcept { return down_.size(); }
  std::uint64_t crashes_injected() const noexcept { return *c_crashes_; }
  std::uint64_t restarts_injected() const noexcept { return *c_restarts_; }
  std::uint64_t link_drops() const noexcept { return *c_link_drops_; }

 private:
  struct FlakyWindow {
    NodeId a, b;
    TimePoint from, until;
    double drop_prob;
    bool bidirectional;
  };
  struct LatencyWindow {
    TimePoint from, until;
    double factor;
  };

  void restart_now(NodeId node);
  void churn_tick();
  bool should_drop(NodeId from, NodeId to);
  Duration shape_latency(NodeId from, NodeId to, Duration base) const;

  Simulator& sim_;
  util::Rng rng_;
  CrashFn crash_fn_;
  RestartFn restart_fn_;

  std::unordered_set<NodeId> down_;  // nodes THIS injector took down
  std::vector<FlakyWindow> flaky_;
  std::vector<LatencyWindow> spikes_;

  bool churn_active_ = false;
  ChurnConfig churn_;

  // Registry cell handles (stable addresses; see obs::Registry::counter).
  // Crash/restart counters are coordinator-only; link drops are bumped from
  // delivery code on worker shards, so they go through the simulator's
  // shard-counter scratch (flushed at window barriers).
  std::uint64_t* c_crashes_;
  std::uint64_t* c_restarts_;
  std::uint64_t* c_link_drops_;
  std::uint32_t c_link_drops_h_ = 0;
};

}  // namespace lo::sim
