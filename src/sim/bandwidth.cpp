#include "sim/bandwidth.hpp"

namespace lo::sim {

void BandwidthAccountant::reset(std::size_t node_count) {
  per_node_bytes_.assign(node_count, 0);
  by_class_.clear();
  total_bytes_ = 0;
  total_messages_ = 0;
}

void BandwidthAccountant::ensure_nodes(std::size_t node_count) {
  if (per_node_bytes_.size() < node_count) per_node_bytes_.resize(node_count, 0);
}

void BandwidthAccountant::record(std::uint32_t from, const char* msg_class,
                                 std::size_t bytes) {
  if (from < per_node_bytes_.size()) per_node_bytes_[from] += bytes;
  auto& cls = by_class_[msg_class];
  cls.messages += 1;
  cls.bytes += bytes;
  total_bytes_ += bytes;
  total_messages_ += 1;
}

void BandwidthAccountant::merge(const BandwidthAccountant& other) {
  ensure_nodes(other.per_node_bytes_.size());
  for (std::size_t i = 0; i < other.per_node_bytes_.size(); ++i) {
    per_node_bytes_[i] += other.per_node_bytes_[i];
  }
  for (const auto& [name, stats] : other.by_class_) {
    auto& cls = by_class_[name];
    cls.messages += stats.messages;
    cls.bytes += stats.bytes;
  }
  total_bytes_ += other.total_bytes_;
  total_messages_ += other.total_messages_;
}

std::uint64_t BandwidthAccountant::sent_by(std::uint32_t node) const {
  return node < per_node_bytes_.size() ? per_node_bytes_[node] : 0;
}

std::uint64_t BandwidthAccountant::bytes_excluding(
    const std::vector<std::string>& excluded) const {
  std::uint64_t sum = 0;
  for (const auto& [name, stats] : by_class_) {
    bool skip = false;
    for (const auto& e : excluded) {
      if (name == e) {
        skip = true;
        break;
      }
    }
    if (!skip) sum += stats.bytes;
  }
  return sum;
}

}  // namespace lo::sim
