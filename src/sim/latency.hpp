// Network latency models.
//
// The paper emulates realistic latencies with netem and ping statistics from
// 32 cities of the WonderNetwork dataset, assigning miners to cities
// round-robin (Sec. 6.1). That dataset is not available offline, so
// CityLatencyModel substitutes a great-circle-distance model over 32 real
// city coordinates: one-way latency = distance / (0.66 c) * route_factor
// + last-mile constant, plus lognormal jitter per message. This preserves the
// relevant property — heterogeneous pairwise latencies from ~1 ms to
// ~300 ms RTT with geographic clustering (see DESIGN.md, substitution 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace lo::sim {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  // One-way delivery latency in microseconds for a message from a to b.
  virtual std::int64_t latency_us(std::uint32_t from, std::uint32_t to,
                                  util::Rng& rng) = 0;
  // Lower bound on latency_us over all (from, to, rng draw) — the lookahead
  // window of the conservatively synchronized parallel engine: a message sent
  // at time t cannot arrive before t + min_latency_us(), so shards may
  // advance that far without synchronizing. The default (0) is always safe:
  // it simply degrades the parallel engine to serial execution. Models
  // returning a positive bound must guarantee latency_us() never goes below
  // it.
  virtual std::int64_t min_latency_us() const { return 0; }
};

class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(std::int64_t us) : us_(us) {}
  std::int64_t latency_us(std::uint32_t, std::uint32_t, util::Rng&) override {
    return us_;
  }
  std::int64_t min_latency_us() const override { return us_; }

 private:
  std::int64_t us_;
};

class CityLatencyModel final : public LatencyModel {
 public:
  // jitter_frac: lognormal jitter multiplier sigma (0 disables jitter).
  explicit CityLatencyModel(double jitter_frac = 0.05);

  std::int64_t latency_us(std::uint32_t from, std::uint32_t to,
                          util::Rng& rng) override;
  // With jitter the lognormal multiplier has no positive lower bound, so the
  // only guaranteed floor is the 200 us same-city hop latency_us() clamps to;
  // without jitter it is the matrix minimum (itself never below the clamp).
  std::int64_t min_latency_us() const override;

  static std::size_t city_count() noexcept;
  static std::string city_name(std::size_t i);
  // Base one-way latency between two cities, microseconds, no jitter.
  std::int64_t base_us(std::size_t city_a, std::size_t city_b) const;

 private:
  std::vector<std::int64_t> matrix_;  // city_count x city_count, one-way us
  double jitter_frac_;
};

}  // namespace lo::sim
