#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace lo::sim {

// lolint:allow(thread-local-protocol) reason=per-worker execution context for the sharded engine; each thread only reads its own slot
thread_local Simulator::WorkerCtx* Simulator::tls_ctx_ = nullptr;

Simulator::Simulator(std::uint64_t seed) : seed_(seed), rng_(seed) {
  latency_ = std::make_shared<ConstantLatency>(50 * kMillisecond);
  obs_.tracer.set_clock(&now_);
  shards_.push_back(std::make_unique<Shard>());
  ctxs_.push_back(std::make_unique<WorkerCtx>());
  c_sender_down_h_ = register_shard_counter("sim.dropped_sender_down");
  c_receiver_down_h_ = register_shard_counter("sim.dropped_receiver_down");
  c_suppressed_h_ = register_shard_counter("sim.suppressed_callbacks");
  c_fault_filter_h_ = register_shard_counter("sim.dropped_by_fault_filter");
  c_dropped_sender_down_ = shard_cells_[c_sender_down_h_];
  c_dropped_receiver_down_ = shard_cells_[c_receiver_down_h_];
  c_suppressed_callbacks_ = shard_cells_[c_suppressed_h_];
  c_dropped_by_fault_filter_ = shard_cells_[c_fault_filter_h_];
}

Simulator::~Simulator() { stop_pool(); }

NodeId Simulator::add_node(INode* node) {
  if (node == nullptr) throw std::invalid_argument("null node");
  if (nodes_.size() >= kCoordinatorCtx) {
    throw std::length_error("node id space exhausted");
  }
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  node_state_.emplace_back();
  node_rngs_.push_back(util::Rng::for_stream(seed_, id));
  ctx_ctr_.push_back(0);
  bandwidth_.ensure_nodes(nodes_.size());
  return id;
}

util::Rng& Simulator::node_rng(NodeId id) {
  if (id >= node_rngs_.size()) throw std::out_of_range("unknown node");
  return node_rngs_[id];
}

void Simulator::set_node_up(NodeId id, bool up) {
  if (id >= node_state_.size()) throw std::out_of_range("unknown node");
  NodeState& st = node_state_[id];
  if (st.up && !up) ++st.epoch;  // invalidate the crashed incarnation's timers
  st.up = up;
}

std::size_t Simulator::down_count() const noexcept {
  std::size_t n = 0;
  for (const auto& st : node_state_) n += st.up ? 0 : 1;
  return n;
}

void Simulator::set_workers(unsigned n) {
  if (n == 0) throw std::invalid_argument("workers must be >= 1");
  if (n == workers_) return;
  stop_pool();
  // Re-bucket pending node-context events under the new shard map. Keys are
  // untouched, so execution order (and therefore the run) is unchanged.
  std::vector<Event> pending;
  for (auto& sh : shards_) {
    while (!sh->queue.empty()) {
      pending.push_back(sh->queue.top());
      sh->queue.pop();
    }
  }
  workers_ = n;
  shards_.clear();
  ctxs_.clear();
  for (unsigned s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    ctxs_.push_back(std::make_unique<WorkerCtx>());
  }
  for (auto& ev : pending) shards_[shard_of(ev.ctx)]->queue.push(std::move(ev));
}

std::uint32_t Simulator::register_shard_counter(std::string_view name) {
  // Coordinator-only: worker windows size their scratch from shard_cells_ at
  // window entry, so the table must not grow mid-window (and cannot — the
  // registrants all construct from coordinator context).
  shard_cells_.push_back(&obs_.registry.counter(name));
  return static_cast<std::uint32_t>(shard_cells_.size() - 1);
}

void Simulator::bump_shard_counter(std::uint32_t handle, std::uint64_t n) {
  WorkerCtx* t = tls_ctx_;
  if (t != nullptr && t->sim == this) {
    t->counters[handle] += n;
    return;
  }
  *shard_cells_[handle] += n;
}

void Simulator::post(std::function<void()> fn) {
  WorkerCtx* t = tls_ctx_;
  if (t != nullptr && t->sim == this) {
    // The causal context is captured with the closure and restored around it
    // at the barrier flush, so a post body observes the same thread cause it
    // would have seen running inline under the serial engine.
    t->posts.push_back(WorkerCtx::PostRec{t->now, t->exec_seq, t->post_idx++,
                                          obs::Tracer::thread_cause(),
                                          std::move(fn)});
    return;
  }
  fn();
}

TimePoint Simulator::local_now() const noexcept {
  const WorkerCtx* t = tls_ctx_;
  if (t != nullptr && t->sim == this) return t->now;
  return now_;
}

TimePoint Simulator::now() const noexcept { return local_now(); }

std::uint64_t Simulator::alloc_seq() {
  const WorkerCtx* t = tls_ctx_;
  std::uint32_t ctx;
  std::uint64_t floor;
  if (t != nullptr && t->sim == this) {
    ctx = t->exec_ctx;
    floor = t->floor;
  } else {
    ctx = cur_exec_ctx_;
    floor = cur_floor_;
  }
  std::uint64_t& ctr = (ctx == kCoordinatorCtx) ? coord_ctr_ : ctx_ctr_[ctx];
  // The floor (executing event's counter + 1) makes same-timestamp children
  // sort after their parent — a property of the creating event alone, never
  // of global history, so assigned keys are identical for every worker count.
  const std::uint64_t use = std::max(ctr, floor);
  ctr = use + 1;
  return (use << 24) | ctx;
}

void Simulator::push_event(Event ev) {
  WorkerCtx* t = tls_ctx_;
  if (t != nullptr && t->sim == this) {
    if (ev.ctx == kCoordinatorCtx) {
      throw std::logic_error("worker events cannot target the coordinator");
    }
    const unsigned s = shard_of(ev.ctx);
    if (s == t->shard) {
      shards_[s]->queue.push(std::move(ev));  // the worker owns its queue
      return;
    }
    // Conservative-synchronization causality guard: a cross-shard event
    // below the window bound could land in the target shard's past.
    if (ev.at < window_bound_) {
      throw std::logic_error(
          "cross-shard event below the lookahead window (latency shaper "
          "reduced a latency under min_latency_us?)");
    }
    Shard& dst = *shards_[s];
    ShardLock lock(dst.inbox_mu);
    dst.inbox.push_back(std::move(ev));
    return;
  }
  if (ev.ctx == kCoordinatorCtx) {
    coord_q_.push(std::move(ev));
  } else {
    shards_[shard_of(ev.ctx)]->queue.push(std::move(ev));
  }
}

void Simulator::send(NodeId from, NodeId to, PayloadPtr msg) {
  if (from >= nodes_.size()) throw std::out_of_range("unknown sender node");
  if (to >= nodes_.size()) throw std::out_of_range("unknown destination node");
  obs::Tracer& tr = obs_.tracer;
  // Interning and event assembly stay behind the enabled() check so the
  // disabled path pays one branch per drop/send site.
  const auto drop = [&](std::uint64_t reason) {
    if (tr.enabled()) {
      tr.emit(obs::EventKind::kMsgDrop, from, to, reason, msg->wire_size(),
              tr.intern(msg->type_name()));
    }
  };
  if (!node_up(from)) {
    // A down node's NIC is off: nothing leaves, nothing is charged.
    bump_shard_counter(c_sender_down_h_);
    drop(obs::kDropSenderDown);
    return;
  }
  {
    WorkerCtx* t = tls_ctx_;
    BandwidthAccountant& bw =
        (t != nullptr && t->sim == this) ? t->bw : bandwidth_;
    bw.record(from, msg->type_name(), msg->wire_size());
  }
  // All send-time randomness draws from the sender's stream: the draw
  // sequence then depends only on the sender's own send history, never on
  // how shards interleave.
  util::Rng& srng = node_rngs_[from];
  if (drop_probability_ > 0.0 && srng.next_bool(drop_probability_)) {
    drop(obs::kDropRandom);
    return;
  }
  if (filter_ && !filter_(from, to)) {
    drop(obs::kDropFilter);
    return;
  }
  if (fault_filter_ && !fault_filter_(from, to)) {
    bump_shard_counter(c_fault_filter_h_);
    drop(obs::kDropFaultFilter);
    return;
  }
  Duration lat = latency_->latency_us(from, to, srng);
  if (latency_shaper_) lat = latency_shaper_(from, to, lat);
  if (lat < 0) lat = 0;
  if (tr.enabled()) {
    tr.emit(obs::EventKind::kMsgSend, from, to, msg->wire_size(),
            static_cast<std::uint64_t>(lat), tr.intern(msg->type_name()));
  }
  INode* dest = nodes_[to];
  Event ev;
  ev.at = local_now() + lat;
  ev.seq = alloc_seq();
  ev.ctx = to;  // delivery executes on the receiver's shard
  ev.parent = obs::Tracer::thread_cause().span;  // sender dispatch = cause
  ev.fn = [this, dest, to, from, msg = std::move(msg)] {
    if (!node_up(to)) {
      // The receiver went down while the message was in flight.
      bump_shard_counter(c_receiver_down_h_);
      if (obs_.tracer.enabled()) {
        obs_.tracer.emit(obs::EventKind::kMsgDrop, from, to,
                         obs::kDropReceiverDown, msg->wire_size(),
                         obs_.tracer.intern(msg->type_name()));
      }
      return;
    }
    if (obs_.tracer.enabled()) {
      obs_.tracer.emit(obs::EventKind::kMsgRecv, to, from, msg->wire_size(), 0,
                       obs_.tracer.intern(msg->type_name()));
    }
    dest->on_message(from, msg);
  };
  push_event(std::move(ev));
}

void Simulator::schedule(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  Event ev;
  ev.at = local_now() + delay;
  ev.seq = alloc_seq();
  // Plain callbacks stay in the scheduling context: a node's follow-up work
  // runs on its own shard; coordinator work stays on the coordinator.
  const WorkerCtx* t = tls_ctx_;
  ev.ctx = (t != nullptr && t->sim == this) ? t->exec_ctx : cur_exec_ctx_;
  ev.parent = obs::Tracer::thread_cause().span;
  ev.fn = std::move(fn);
  push_event(std::move(ev));
}

void Simulator::schedule_for(NodeId owner, Duration delay,
                             std::function<void()> fn) {
  // An out-of-range owner used to silently degrade to an unpinned plain
  // schedule() — a timer that survives its owner's crash.
  if (owner >= node_state_.size()) {
    throw std::out_of_range("unknown owner node");
  }
  if (delay < 0) delay = 0;
  const std::uint64_t epoch = node_state_[owner].epoch;
  Event ev;
  ev.at = local_now() + delay;
  ev.seq = alloc_seq();
  ev.ctx = owner;  // epoch-pinned timers execute on the owner's shard
  ev.parent = obs::Tracer::thread_cause().span;
  ev.fn = [this, owner, epoch, fn = std::move(fn)] {
    if (!node_up(owner) || node_epoch(owner) != epoch) {
      bump_shard_counter(c_suppressed_h_);
      return;
    }
    fn();
  };
  push_event(std::move(ev));
}

void Simulator::start() {
  if (started_) return;
  started_ = true;
  bandwidth_.ensure_nodes(nodes_.size());
  for (auto* n : nodes_) n->on_start();
}

std::size_t Simulator::pending_events() const {
  std::size_t n = coord_q_.size();
  for (const auto& sh : shards_) n += sh->queue.size();
  return n;
}

void Simulator::dispatch_serial(Event& ev) {
  now_ = ev.at;
  cur_exec_ctx_ = ev.ctx;
  cur_floor_ = (ev.seq >> 24) + 1;
  // Causal context for everything this dispatch emits or schedules: the
  // span id is derived from the event key alone, so it is identical across
  // worker counts (span 0 is reserved for "no cause").
  obs::Tracer::set_thread_cause({ev.seq + 1, ev.parent});
  ev.fn();
  obs::Tracer::set_thread_cause({});
  cur_exec_ctx_ = kCoordinatorCtx;
  cur_floor_ = 0;
}

int Simulator::pick_next(TimePoint max_at) const {
  int best = -2;
  const Event* best_ev = nullptr;
  if (!coord_q_.empty()) {
    best = -1;
    best_ev = &coord_q_.top();
  }
  for (unsigned s = 0; s < workers_; ++s) {
    const auto& q = shards_[s]->queue;
    if (q.empty()) continue;
    const Event& e = q.top();
    if (best_ev == nullptr || e.at < best_ev->at ||
        (e.at == best_ev->at && e.seq < best_ev->seq)) {
      best = static_cast<int>(s);
      best_ev = &e;
    }
  }
  if (best_ev == nullptr || best_ev->at > max_at) return -2;
  return best;
}

std::size_t Simulator::run_serial(TimePoint max_at) {
  std::size_t processed = 0;
  for (;;) {
    const int src = pick_next(max_at);
    if (src == -2) break;
    EventQueue& q =
        (src < 0) ? coord_q_ : shards_[static_cast<unsigned>(src)]->queue;
    Event ev = q.top();
    q.pop();
    dispatch_serial(ev);
    ++processed;
  }
  return processed;
}

std::size_t Simulator::run_until(TimePoint horizon) {
  start();
  // A horizon in the past is a no-op: nothing executes and now() never
  // moves backwards.
  if (horizon < now_) return 0;
  std::size_t processed = 0;
  const Duration lookahead = latency_ ? latency_->min_latency_us() : 0;
  if (workers_ <= 1 || lookahead <= 0) {
    processed = run_serial(horizon);
  } else {
    for (;;) {
      const Event* kc = coord_q_.empty() ? nullptr : &coord_q_.top();
      const Event* ks = nullptr;
      for (const auto& sh : shards_) {
        if (sh->queue.empty()) continue;
        const Event& e = sh->queue.top();
        if (ks == nullptr || e.at < ks->at ||
            (e.at == ks->at && e.seq < ks->seq)) {
          ks = &e;
        }
      }
      const Event* kmin = kc;
      if (ks != nullptr && (kmin == nullptr || ks->at < kmin->at ||
                            (ks->at == kmin->at && ks->seq < kmin->seq))) {
        kmin = ks;
      }
      if (kmin == nullptr || kmin->at > horizon) break;
      if (kc != nullptr && kc->at == kmin->at) {
        // A coordinator event shares the earliest timestamp. Coordinator
        // code may touch global state (lifecycle, filters, topology), so
        // drain this exact timestamp in strict key order on one thread;
        // anything it schedules lands at >= this time and is picked up by
        // this same call or the next iteration.
        processed += run_serial(kmin->at);
        continue;
      }
      // ks is the global minimum and strictly precedes any coordinator
      // work: open a lookahead window [ks->at, bound).
      TimePoint bound = ks->at + lookahead;
      if (kc != nullptr) bound = std::min(bound, kc->at);
      if (horizon < std::numeric_limits<TimePoint>::max()) {
        bound = std::min(bound, horizon + 1);
      }
      unsigned active = 0;
      for (const auto& sh : shards_) {
        if (!sh->queue.empty() && sh->queue.top().at < bound) ++active;
      }
      if (active <= 1) {
        // One busy shard: the window is a serial run anyway, so skip the
        // barrier machinery (identical output by construction).
        processed += run_serial(bound - 1);
      } else {
        processed += run_window_parallel(bound);
      }
    }
  }
  if (now_ < horizon) now_ = horizon;
  return processed;
}

bool Simulator::step() {
  start();
  const int src = pick_next(std::numeric_limits<TimePoint>::max());
  if (src == -2) return false;
  EventQueue& q =
      (src < 0) ? coord_q_ : shards_[static_cast<unsigned>(src)]->queue;
  Event ev = q.top();
  q.pop();
  dispatch_serial(ev);
  return true;
}

// --- parallel window machinery ---

void Simulator::WorkerCtx::sink_event(obs::EventKind kind, std::uint32_t node,
                                      std::uint32_t peer, std::uint64_t a,
                                      std::uint64_t b, std::uint16_t name,
                                      std::uint32_t aux) {
  obs::TraceEvent ev;
  ev.at = now;
  ev.kind = static_cast<std::uint16_t>(kind);
  ev.name = name;
  ev.node = node;
  ev.peer = peer;
  ev.aux = aux;
  ev.a = a;
  ev.b = b;
  const obs::Tracer::Cause cause = obs::Tracer::thread_cause();
  ev.span = cause.span;
  ev.parent = cause.parent;
  trace.push_back(TraceRec{now, exec_seq, trace_idx++, ev});
}

std::uint16_t Simulator::WorkerCtx::sink_intern(std::string_view s) {
  if (s.empty()) return 0;
  if (auto it = intern.find(s); it != intern.end()) return it->second;
  if (names.size() > 0xFFFF) throw std::length_error("intern table full");
  const auto id = static_cast<std::uint16_t>(names.size());
  names.emplace_back(s);
  intern.emplace(std::string(s), id);
  return id;
}

void Simulator::ensure_pool() {
  if (!threads_.empty() || workers_ <= 1) return;
  pool_stop_ = false;
  threads_.reserve(workers_ - 1);
  for (unsigned s = 1; s < workers_; ++s) {
    threads_.emplace_back([this, s] { worker_loop(s); });
  }
}

void Simulator::stop_pool() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    pool_stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
}

void Simulator::worker_loop(unsigned s) {
  std::uint64_t seen = 0;
  for (;;) {
    bool run = false;
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      work_cv_.wait(lock, [&] { return pool_stop_ || window_gen_ != seen; });
      if (pool_stop_) return;
      seen = window_gen_;
      run = participate_[s] != 0;
    }
    if (run) {
      run_shard_window(s);
      std::lock_guard<std::mutex> lock(pool_mu_);
      if (--running_ == 0) done_cv_.notify_one();
    }
  }
}

void Simulator::run_shard_window(unsigned s) {
  WorkerCtx& c = *ctxs_[s];
  tls_ctx_ = &c;
  if (obs_.tracer.enabled()) obs::Tracer::set_thread_sink(&c);
  EventQueue& q = shards_[s]->queue;
  try {
    while (!q.empty() && q.top().at < window_bound_) {
      Event ev = q.top();
      q.pop();
      c.now = ev.at;
      c.exec_seq = ev.seq;
      c.exec_ctx = ev.ctx;
      c.floor = (ev.seq >> 24) + 1;
      // Same causal-context rule as dispatch_serial: span = key + 1, so the
      // stamped spans never depend on which thread ran the dispatch.
      obs::Tracer::set_thread_cause({ev.seq + 1, ev.parent});
      ev.fn();
      ++c.events;
    }
  } catch (...) {
    c.error = std::current_exception();
  }
  obs::Tracer::set_thread_cause({});
  obs::Tracer::set_thread_sink(nullptr);
  tls_ctx_ = nullptr;
}

std::size_t Simulator::run_window_parallel(TimePoint bound) {
  window_bound_ = bound;
  participate_.assign(workers_, 0);
  unsigned remote = 0;
  for (unsigned s = 0; s < workers_; ++s) {
    Shard& sh = *shards_[s];
    if (sh.queue.empty() || sh.queue.top().at >= bound) continue;
    participate_[s] = 1;
    if (s != 0) ++remote;
    WorkerCtx& c = *ctxs_[s];
    c.sim = this;
    c.shard = s;
    c.events = 0;
    c.error = nullptr;
    c.counters.assign(shard_cells_.size(), 0);
    c.bw.ensure_nodes(nodes_.size());
  }
  ensure_pool();
  {
    // participate_/window_bound_ were written above; publishing the
    // generation bump under the pool mutex makes them visible to workers
    // that observe the new generation.
    std::lock_guard<std::mutex> lock(pool_mu_);
    running_ = remote;
    ++window_gen_;
  }
  work_cv_.notify_all();
  if (participate_[0] != 0) run_shard_window(0);  // shard 0 runs here
  {
    std::unique_lock<std::mutex> lock(pool_mu_);
    done_cv_.wait(lock, [this] { return running_ == 0; });
  }
  return flush_window();
}

std::size_t Simulator::flush_window() {
  std::size_t processed = 0;
  std::exception_ptr err;
  // Fold cross-shard inboxes back into the target queues. Keys are globally
  // unique, so heap insertion order is irrelevant.
  for (auto& sh : shards_) {
    ShardLock lock(sh->inbox_mu);
    for (auto& ev : sh->inbox) sh->queue.push(std::move(ev));
    sh->inbox.clear();
  }
  struct TraceTag {
    const WorkerCtx::TraceRec* rec;
    WorkerCtx* ctx;
  };
  std::vector<TraceTag> traces;
  std::vector<WorkerCtx::PostRec*> posts;
  for (unsigned s = 0; s < workers_; ++s) {
    if (participate_[s] == 0) continue;
    WorkerCtx& c = *ctxs_[s];
    processed += c.events;
    if (!err && c.error) err = c.error;
    for (std::size_t i = 0; i < c.counters.size(); ++i) {
      *shard_cells_[i] += c.counters[i];
    }
    bandwidth_.merge(c.bw);
    c.bw.reset(0);
    traces.reserve(traces.size() + c.trace.size());
    for (const auto& r : c.trace) traces.push_back(TraceTag{&r, &c});
    posts.reserve(posts.size() + c.posts.size());
    for (auto& p : c.posts) posts.push_back(&p);
  }
  // Merge trace events in global key order, remapping shard-local intern
  // ids through the canonical table — first use assigns the global id, so
  // the merged stream is byte-identical to a serial run's.
  std::sort(traces.begin(), traces.end(),
            [](const TraceTag& a, const TraceTag& b) {
              return std::tie(a.rec->at, a.rec->seq, a.rec->idx) <
                     std::tie(b.rec->at, b.rec->seq, b.rec->idx);
            });
  for (const TraceTag& t : traces) {
    obs::TraceEvent ev = t.rec->ev;
    if (ev.name != 0) {
      ev.name = obs_.tracer.intern(t.ctx->names[ev.name]);
    }
    obs_.tracer.append(ev);
  }
  // Run buffered observer posts in the same global order, on this
  // (coordinator) thread — exactly where/when the serial engine ran them.
  std::sort(posts.begin(), posts.end(),
            [](const WorkerCtx::PostRec* a, const WorkerCtx::PostRec* b) {
              return std::tie(a->at, a->seq, a->idx) <
                     std::tie(b->at, b->seq, b->idx);
            });
  for (WorkerCtx::PostRec* p : posts) {
    // Re-establish the causal context the post body would have observed
    // running inline, so serial and parallel runs stay byte-identical even
    // when an observer emits.
    obs::Tracer::CauseScope cause(p->cause);
    p->fn();
  }
  for (unsigned s = 0; s < workers_; ++s) {
    if (participate_[s] == 0) continue;
    WorkerCtx& c = *ctxs_[s];
    c.trace.clear();
    c.trace_idx = 0;
    c.names.resize(1);
    c.intern.clear();
    c.posts.clear();
    c.post_idx = 0;
  }
  if (err) std::rethrow_exception(err);
  return processed;
}

}  // namespace lo::sim
