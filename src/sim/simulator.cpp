#include "sim/simulator.hpp"

#include <stdexcept>

namespace lo::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  latency_ = std::make_shared<ConstantLatency>(50 * kMillisecond);
}

NodeId Simulator::add_node(INode* node) {
  if (node == nullptr) throw std::invalid_argument("null node");
  nodes_.push_back(node);
  node_state_.emplace_back();
  bandwidth_.ensure_nodes(nodes_.size());
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Simulator::set_node_up(NodeId id, bool up) {
  if (id >= node_state_.size()) throw std::out_of_range("unknown node");
  NodeState& st = node_state_[id];
  if (st.up && !up) ++st.epoch;  // invalidate the crashed incarnation's timers
  st.up = up;
}

std::size_t Simulator::down_count() const noexcept {
  std::size_t n = 0;
  for (const auto& st : node_state_) n += st.up ? 0 : 1;
  return n;
}

void Simulator::send(NodeId from, NodeId to, PayloadPtr msg) {
  if (to >= nodes_.size()) throw std::out_of_range("unknown destination node");
  if (!node_up(from)) {
    // A down node's NIC is off: nothing leaves, nothing is charged.
    ++fault_counters_.dropped_sender_down;
    return;
  }
  bandwidth_.record(from, msg->type_name(), msg->wire_size());
  if (drop_probability_ > 0.0 && rng_.next_bool(drop_probability_)) return;
  if (filter_ && !filter_(from, to)) return;
  if (fault_filter_ && !fault_filter_(from, to)) {
    ++fault_counters_.dropped_by_fault_filter;
    return;
  }
  Duration lat = latency_->latency_us(from, to, rng_);
  if (latency_shaper_) lat = latency_shaper_(from, to, lat);
  INode* dest = nodes_[to];
  schedule(lat, [this, dest, to, from, msg = std::move(msg)] {
    if (!node_up(to)) {
      // The receiver went down while the message was in flight.
      ++fault_counters_.dropped_receiver_down;
      return;
    }
    dest->on_message(from, msg);
  });
}

void Simulator::schedule(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

void Simulator::schedule_for(NodeId owner, Duration delay,
                             std::function<void()> fn) {
  if (owner >= node_state_.size()) {
    schedule(delay, std::move(fn));
    return;
  }
  const std::uint64_t epoch = node_state_[owner].epoch;
  schedule(delay, [this, owner, epoch, fn = std::move(fn)] {
    if (!node_up(owner) || node_epoch(owner) != epoch) {
      ++fault_counters_.suppressed_callbacks;
      return;
    }
    fn();
  });
}

void Simulator::start() {
  if (started_) return;
  started_ = true;
  bandwidth_.ensure_nodes(nodes_.size());
  for (auto* n : nodes_) n->on_start();
}

std::size_t Simulator::run_until(TimePoint horizon) {
  start();
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.top().at <= horizon) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++processed;
  }
  if (now_ < horizon) now_ = horizon;
  return processed;
}

bool Simulator::step() {
  start();
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ev.fn();
  return true;
}

}  // namespace lo::sim
