#include "sim/simulator.hpp"

#include <stdexcept>

namespace lo::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  latency_ = std::make_shared<ConstantLatency>(50 * kMillisecond);
  obs_.tracer.set_clock(&now_);
  c_dropped_sender_down_ = &obs_.registry.counter("sim.dropped_sender_down");
  c_dropped_receiver_down_ = &obs_.registry.counter("sim.dropped_receiver_down");
  c_suppressed_callbacks_ = &obs_.registry.counter("sim.suppressed_callbacks");
  c_dropped_by_fault_filter_ =
      &obs_.registry.counter("sim.dropped_by_fault_filter");
}

NodeId Simulator::add_node(INode* node) {
  if (node == nullptr) throw std::invalid_argument("null node");
  nodes_.push_back(node);
  node_state_.emplace_back();
  bandwidth_.ensure_nodes(nodes_.size());
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Simulator::set_node_up(NodeId id, bool up) {
  if (id >= node_state_.size()) throw std::out_of_range("unknown node");
  NodeState& st = node_state_[id];
  if (st.up && !up) ++st.epoch;  // invalidate the crashed incarnation's timers
  st.up = up;
}

std::size_t Simulator::down_count() const noexcept {
  std::size_t n = 0;
  for (const auto& st : node_state_) n += st.up ? 0 : 1;
  return n;
}

void Simulator::send(NodeId from, NodeId to, PayloadPtr msg) {
  if (to >= nodes_.size()) throw std::out_of_range("unknown destination node");
  obs::Tracer& tr = obs_.tracer;
  // Interning and event assembly stay behind the enabled() check so the
  // disabled path pays one branch per drop/send site.
  const auto drop = [&](std::uint64_t reason) {
    if (tr.enabled()) {
      tr.emit(obs::EventKind::kMsgDrop, from, to, reason, msg->wire_size(),
              tr.intern(msg->type_name()));
    }
  };
  if (!node_up(from)) {
    // A down node's NIC is off: nothing leaves, nothing is charged.
    ++*c_dropped_sender_down_;
    drop(obs::kDropSenderDown);
    return;
  }
  bandwidth_.record(from, msg->type_name(), msg->wire_size());
  if (drop_probability_ > 0.0 && rng_.next_bool(drop_probability_)) {
    drop(obs::kDropRandom);
    return;
  }
  if (filter_ && !filter_(from, to)) {
    drop(obs::kDropFilter);
    return;
  }
  if (fault_filter_ && !fault_filter_(from, to)) {
    ++*c_dropped_by_fault_filter_;
    drop(obs::kDropFaultFilter);
    return;
  }
  Duration lat = latency_->latency_us(from, to, rng_);
  if (latency_shaper_) lat = latency_shaper_(from, to, lat);
  if (tr.enabled()) {
    tr.emit(obs::EventKind::kMsgSend, from, to, msg->wire_size(),
            static_cast<std::uint64_t>(lat), tr.intern(msg->type_name()));
  }
  INode* dest = nodes_[to];
  schedule(lat, [this, dest, to, from, msg = std::move(msg)] {
    if (!node_up(to)) {
      // The receiver went down while the message was in flight.
      ++*c_dropped_receiver_down_;
      if (obs_.tracer.enabled()) {
        obs_.tracer.emit(obs::EventKind::kMsgDrop, from, to,
                         obs::kDropReceiverDown, msg->wire_size(),
                         obs_.tracer.intern(msg->type_name()));
      }
      return;
    }
    if (obs_.tracer.enabled()) {
      obs_.tracer.emit(obs::EventKind::kMsgRecv, to, from, msg->wire_size(), 0,
                       obs_.tracer.intern(msg->type_name()));
    }
    dest->on_message(from, msg);
  });
}

void Simulator::schedule(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  ShardLock lock(shard_mu_);
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

std::size_t Simulator::pending_events() const {
  ShardLock lock(shard_mu_);
  return queue_.size();
}

void Simulator::schedule_for(NodeId owner, Duration delay,
                             std::function<void()> fn) {
  if (owner >= node_state_.size()) {
    schedule(delay, std::move(fn));
    return;
  }
  const std::uint64_t epoch = node_state_[owner].epoch;
  schedule(delay, [this, owner, epoch, fn = std::move(fn)] {
    if (!node_up(owner) || node_epoch(owner) != epoch) {
      ++*c_suppressed_callbacks_;
      return;
    }
    fn();
  });
}

void Simulator::start() {
  if (started_) return;
  started_ = true;
  bandwidth_.ensure_nodes(nodes_.size());
  for (auto* n : nodes_) n->on_start();
}

std::size_t Simulator::run_until(TimePoint horizon) {
  start();
  std::size_t processed = 0;
  for (;;) {
    // Pop under the shard lock, dispatch outside it: event handlers schedule
    // follow-up events (schedule() re-acquires), and the future parallel DES
    // dispatches whole lookahead windows without holding the queue lock.
    Event ev;
    {
      ShardLock lock(shard_mu_);
      if (queue_.empty() || queue_.top().at > horizon) break;
      ev = queue_.top();
      queue_.pop();
    }
    now_ = ev.at;
    ev.fn();
    ++processed;
  }
  if (now_ < horizon) now_ = horizon;
  return processed;
}

bool Simulator::step() {
  start();
  Event ev;
  {
    ShardLock lock(shard_mu_);
    if (queue_.empty()) return false;
    ev = queue_.top();
    queue_.pop();
  }
  now_ = ev.at;
  ev.fn();
  return true;
}

}  // namespace lo::sim
