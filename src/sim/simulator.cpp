#include "sim/simulator.hpp"

#include <stdexcept>

namespace lo::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  latency_ = std::make_shared<ConstantLatency>(50 * kMillisecond);
}

NodeId Simulator::add_node(INode* node) {
  if (node == nullptr) throw std::invalid_argument("null node");
  nodes_.push_back(node);
  bandwidth_.ensure_nodes(nodes_.size());
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Simulator::send(NodeId from, NodeId to, PayloadPtr msg) {
  if (to >= nodes_.size()) throw std::out_of_range("unknown destination node");
  bandwidth_.record(from, msg->type_name(), msg->wire_size());
  if (drop_probability_ > 0.0 && rng_.next_bool(drop_probability_)) return;
  if (filter_ && !filter_(from, to)) return;
  const Duration lat = latency_->latency_us(from, to, rng_);
  INode* dest = nodes_[to];
  schedule(lat, [dest, from, msg = std::move(msg)] { dest->on_message(from, msg); });
}

void Simulator::schedule(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

void Simulator::start() {
  if (started_) return;
  started_ = true;
  bandwidth_.ensure_nodes(nodes_.size());
  for (auto* n : nodes_) n->on_start();
}

std::size_t Simulator::run_until(TimePoint horizon) {
  start();
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.top().at <= horizon) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++processed;
  }
  if (now_ < horizon) now_ = horizon;
  return processed;
}

bool Simulator::step() {
  start();
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ev.fn();
  return true;
}

}  // namespace lo::sim
