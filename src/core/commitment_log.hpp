// The append-only commitment log — "Inclusion of All Transactions" and
// "Transaction Selection in Received Order" (Table 1, Sec. 4.1).
//
// Every valid transaction id a miner encounters is appended exactly once, in
// reception order, grouped into *bundles*: one bundle per reconciliation
// exchange (or per locally created batch). Bundle boundaries define the
// partial order that block building must respect (Sec. 4.3); the seqno
// increments per bundle and links commitments to block segments.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/commitment.hpp"
#include "core/types.hpp"
#include "crypto/keys.hpp"

namespace lo::core {

class CommitmentLog {
 public:
  struct Bundle {
    std::uint64_t seqno = 0;  // commitment counter after this bundle
    NodeId source = 0;        // where the ids came from (self for own txs)
    std::vector<TxId> txids;  // in committed order
  };

  // `shard` is the shard id this log covers in a sharded pipeline
  // (DESIGN.md §7); headers minted by make_header() carry it. 0 for the
  // single-shard protocol.
  CommitmentLog(NodeId self, const CommitmentParams& params,
                std::uint32_t shard = 0);

  NodeId self() const noexcept { return self_; }
  std::uint32_t shard() const noexcept { return shard_; }
  std::uint64_t seqno() const noexcept { return seqno_; }
  std::uint64_t count() const noexcept { return order_.size(); }
  const crypto::Digest256& chain_hash() const noexcept { return chain_hash_; }
  const CommitmentParams& params() const noexcept { return params_; }

  bool contains(const TxId& id) const {
    return members_.find(id) != members_.end();
  }

  // Appends the ids that are not yet present, in the given order, as one new
  // bundle. Returns the ids actually appended; seqno is bumped only when the
  // bundle is non-empty.
  std::vector<TxId> append(std::span<const TxId> txids, NodeId source);

  // Snapshot of the current state as a signed commitment header. The wire
  // sketch is truncated to `wire_capacity` syndromes (PinSketch prefix
  // property) — callers size it to the estimated difference with the peer;
  // by default the full local capacity is included.
  CommitmentHeader make_header(const crypto::Signer& signer,
                               std::size_t wire_capacity = SIZE_MAX) const;

  const std::vector<Bundle>& bundles() const noexcept { return bundles_; }
  const std::vector<TxId>& order() const noexcept { return order_; }
  const sketch::Sketch& sketch() const noexcept { return sketch_; }
  const bloom::BloomClock& clock() const noexcept { return clock_; }

  // Maps a sketch raw item back to the full transaction id, if known.
  std::optional<TxId> resolve_short(std::uint64_t raw) const;

  // Maps a decoded sketch *element* (the field-mapped image of a raw item)
  // back to the full transaction id, if it belongs to this log.
  std::optional<TxId> resolve_element(std::uint64_t element) const;

  // Position of the id in commitment order; nullopt when absent.
  std::optional<std::size_t> position_of(const TxId& id) const;

  // Ids committed after the given position (used to build explicit deltas
  // for peers whose watermark into our order is `from_position`).
  std::vector<TxId> ids_after(std::size_t from_position) const;

  // The bundle with the given seqno, if any.
  const Bundle* bundle_by_seqno(std::uint64_t seqno) const;

  // Approximate resident memory of the log bookkeeping (Sec. 6.5 numbers).
  std::size_t memory_bytes() const noexcept;

 private:
  NodeId self_;
  CommitmentParams params_;
  std::uint32_t shard_ = 0;
  std::uint64_t seqno_ = 0;
  std::vector<TxId> order_;
  std::vector<Bundle> bundles_;
  std::unordered_set<TxId, TxIdHash> members_;
  std::unordered_map<std::uint64_t, TxId> short_index_;
  std::unordered_map<std::uint64_t, TxId> elem_index_;
  std::unordered_map<TxId, std::size_t, TxIdHash> positions_;
  crypto::Digest256 chain_hash_{};
  bloom::BloomClock clock_;
  sketch::Sketch sketch_;
};

}  // namespace lo::core
