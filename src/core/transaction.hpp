// Transactions (Sec. 2.3, Stage I).
//
// A transaction is created and signed by a client; miners prevalidate it
// (signature, fee threshold) before admitting it to the mempool. The paper
// fixes the wire size at 250 bytes; the body is padded accordingly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "crypto/keys.hpp"
#include "util/serde.hpp"

namespace lo::crypto {
class VerifyCache;
}

namespace lo::core {

// Serialized size target from the paper's evaluation setup (Sec. 6.1).
inline constexpr std::size_t kTxWireSize = 250;

struct Transaction {
  TxId id{};                      // SHA-256 over the signed fields
  crypto::PublicKey creator{};    // client public key
  std::uint64_t nonce = 0;
  std::uint64_t fee = 0;          // smallest fee unit; drives Highest-Fee baseline
  std::int64_t created_at = 0;    // client-side creation time (simulated us)
  std::vector<std::uint8_t> body; // opaque payload, padded to kTxWireSize
  crypto::Signature sig{};        // client signature over the signed fields

  std::size_t wire_size() const noexcept;
  std::vector<std::uint8_t> serialize() const;
  static Transaction deserialize(std::span<const std::uint8_t> data);
  // Stream variants for embedding in larger messages (self-describing body).
  void write(util::Writer& w) const;
  static Transaction read(util::Reader& r);

  // Bytes covered by the client signature (everything except id and sig).
  std::vector<std::uint8_t> signing_bytes() const;
  // Recomputes the id from the current field values.
  TxId compute_id() const;
};

// Creates a signed transaction whose wire size is exactly kTxWireSize.
Transaction make_transaction(const crypto::Signer& client, std::uint64_t nonce,
                             std::uint64_t fee, std::int64_t created_at);

// Stage I / II prevalidation: id integrity, client signature, fee threshold.
struct PrevalidationPolicy {
  std::uint64_t min_fee = 1;
  crypto::SignatureMode sig_mode = crypto::SignatureMode::kEd25519;
  bool check_signatures = true;
};

// `cache` (optional) memoizes signature checks so duplicate deliveries of the
// same transaction skip the curve arithmetic; results are identical.
bool prevalidate(const Transaction& tx, const PrevalidationPolicy& policy,
                 crypto::VerifyCache* cache = nullptr);

}  // namespace lo::core
