#include "core/node.hpp"

#include <algorithm>
#include <string>

#include "membership/messages.hpp"
#include "minisketch/partitioned.hpp"
#include "util/ordered.hpp"

namespace lo::core {

namespace {

std::uint64_t suspicion_key(NodeId reporter, std::uint64_t epoch) {
  return (static_cast<std::uint64_t>(reporter) << 32) ^ (epoch & 0xffffffffULL);
}

// Per-(peer, shard) map key — same packing as the registry's commitment key.
std::uint64_t ps_key(NodeId peer, std::uint32_t shard) {
  return AccountabilityRegistry::key(peer, shard);
}

}  // namespace

LoNode::LoNode(sim::Simulator& sim, NodeId id, const LoConfig& config,
               crypto::KeyPair keys, Hooks* hooks)
    : sim_(sim),
      id_(id),
      config_(config),
      signer_(keys, config.sig_mode),
      hooks_(hooks),
      registry_(config.sig_mode, config.verify_signatures,
                config.two_stage_checks) {
  // Fold the shard count into the commitment params so every wire codec
  // (headers, bundles, blocks) sees it; at k=1 nothing changes on the wire.
  k_ = static_cast<std::uint32_t>(
      config_.mempool_shards == 0 ? 1 : config_.mempool_shards);
  config_.commitment.shards = k_;
  // Fail fast on configs that would silently break retry/backoff or the
  // membership timing; no node may be built on a nonsensical config.
  config_.validate();
  logs_.reserve(k_);
  content_clocks_.reserve(k_);
  for (std::uint32_t s = 0; s < k_; ++s) {
    logs_.emplace_back(id_, config_.commitment, s);
    content_clocks_.emplace_back(config_.commitment.clock_cells,
                                 config_.commitment.clock_hashes);
  }
  registry_.set_verify_cache(&verify_cache_);
  // Observability: mechanism counters live in the simulator's registry as
  // per-node labeled cells; protocol events go to the shared tracer.
  obs::Registry& reg = sim_.obs().registry;
  const obs::Labels node_label{{"node", std::to_string(id_)}};
  tracer_ = &sim_.obs().tracer;
  c_requests_sent_ = &reg.counter("lo.requests_sent", node_label);
  c_retries_sent_ = &reg.counter("lo.retries_sent", node_label);
  c_timeouts_fired_ = &reg.counter("lo.timeouts_fired", node_label);
  c_suspicions_raised_ = &reg.counter("lo.suspicions_raised", node_label);
  c_suspicions_retracted_ = &reg.counter("lo.suspicions_retracted", node_label);
  c_crashes_ = &reg.counter("lo.crashes", node_label);
  c_restarts_ = &reg.counter("lo.restarts", node_label);
  c_member_suspects_ = &reg.counter("lo.member_suspects", node_label);
  c_member_confirms_ = &reg.counter("lo.member_confirms", node_label);
  c_suspicions_absolved_ = &reg.counter("lo.suspicions_absolved", node_label);
  // Per-shard cells for the hot accountability counters. At k=1 the labels
  // (and therefore the exported ids) are exactly the per-node ones — sharded
  // attribution appears only when a run actually shards.
  c_commits_.reserve(k_);
  c_sync_rounds_.reserve(k_);
  c_suspicions_.reserve(k_);
  for (std::uint32_t s = 0; s < k_; ++s) {
    obs::Labels labels = node_label;
    if (k_ > 1) labels.emplace_back("shard", std::to_string(s));
    c_commits_.push_back(&reg.counter("lo.commits", labels));
    c_sync_rounds_.push_back(&reg.counter("lo.sync_rounds", labels));
    c_suspicions_.push_back(&reg.counter("lo.suspicions", labels));
  }
  verify_cache_.bind(obs::Scope(&reg, node_label));
  verify_cache_.set_tracer(tracer_, id_);
}

void LoNode::set_neighbors(std::vector<NodeId> neighbors) {
  neighbors_ = std::move(neighbors);
}

void LoNode::set_peer_candidates(std::vector<NodeId> candidates) {
  peer_candidates_ = std::move(candidates);
}

void LoNode::set_member_universe(std::vector<NodeId> members) {
  member_universe_ = std::move(members);
}

const Transaction* LoNode::get_tx(const TxId& id) const {
  auto it = store_.find(id);
  return it == store_.end() ? nullptr : &it->second;
}

BundleMap LoNode::mirror_of(NodeId creator, std::uint32_t shard) const {
  BundleMap out;
  auto it = mirrors_.find(ps_key(creator, shard));
  if (it == mirrors_.end()) return out;
  // lolint:allow(unordered-iter) reason=copies map-to-map; the result's content is order-independent and callers never observe insertion order
  for (const auto& [seqno, sb] : it->second) out[seqno] = sb.txids;
  return out;
}

std::size_t LoNode::accountability_memory_bytes() const noexcept {
  std::size_t sum = registry_.memory_bytes();
  // lolint:allow(unordered-iter) reason=commutative byte-count fold; the sum is order-independent and never leaves local metrics
  for (const auto& [key, bundles] : mirrors_) {
    sum += sizeof(key);
    // lolint:allow(unordered-iter) reason=commutative byte-count fold over the inner map; order cannot escape a sum
    for (const auto& [seqno, sb] : bundles) sum += 8 + sb.wire_size();
  }
  // Commitment-log bookkeeping beyond the plain mempool contents.
  for (const auto& l : logs_) sum += l.memory_bytes();
  return sum;
}

// ------------------------------------------------------------- Stage I ----

void LoNode::submit_transaction(const Transaction& tx) {
  if (crashed_) return;  // a down miner accepts no client traffic
  admit_transaction(tx, id_);
}

void LoNode::stealth_store(const Transaction& tx) {
  // Sec. 5.3 collusion: the transaction arrives off-channel — content is
  // stored but deliberately NOT committed and NOT acknowledged, leaving no
  // trace in this miner's commitment log.
  if (store_.count(tx.id) != 0) return;
  store_.emplace(tx.id, tx);
  valid_.insert(tx.id);
  stealth_txs_.push_back(tx.id);
}

void LoNode::admit_transaction(const Transaction& tx, NodeId source) {
  if (store_.count(tx.id) != 0) return;
  if (invalid_.count(tx.id) != 0) return;
  if (!prevalidate(tx, config_.prevalidation, &verify_cache_)) {
    invalid_.insert(tx.id);
    return;
  }
  const std::uint32_t shard = shard_of(tx.id);
  // Mempool censorship: a censoring miner silently refuses foreign txs
  // (Sec. 2.2 "Mempool Censorship" — it neither commits nor relays them).
  // The cross-shard variant censors only one shard's foreign txs.
  if (censors_shard(shard) && source != id_) return;

  store_.emplace(tx.id, tx);
  valid_.insert(tx.id);
  content_clocks_[shard].add(txid_short(tx.id));
  commit_batch({tx.id}, source, shard);
  tracer_->emit(obs::EventKind::kTxAdmit, id_, source, txid_short(tx.id),
                logs_[shard].seqno(), 0, shard);
  if (hooks_ && hooks_->on_mempool_admit) {
    hooks_->on_mempool_admit(id_, tx, sim_.now());
  }
}

void LoNode::commit_batch(const std::vector<TxId>& ids, NodeId source,
                          std::uint32_t shard) {
  if (ids.empty()) return;
  logs_[shard].append(ids, source);
  ++*c_commits_[shard];
  tracer_->emit(obs::EventKind::kCommitCreate, id_, source, ids.size(),
                logs_[shard].seqno(), 0, shard);
  if (tracer_->enabled()) {
    // Per-transaction commit marker: loscope keys lineage on the short tx
    // id, so the batch-level kCommitCreate alone cannot attribute a commit
    // to a transaction. The dispatch's causal span links it to the message
    // or submission that delivered the ids.
    for (const TxId& id : ids) {
      tracer_->emit(obs::EventKind::kTxCommit, id_, source, txid_short(id),
                    logs_[shard].seqno(), 0, shard);
    }
  }
  if (!fork_logs_.empty()) {
    // The fork tells a censored story: ids with an even short hash vanish
    // (own transactions are always kept — the fork must stay plausible).
    // At k>1 the parity is taken after dividing out the shard factor:
    // within a shard txid_short % k is constant, so the raw parity would
    // censor everything or nothing for even k.
    std::vector<TxId> fork_part;
    for (const auto& id : ids) {
      const std::uint64_t raw = txid_short(id);
      const std::uint64_t parity = k_ > 1 ? (raw / k_) % 2 : raw % 2;
      if (source == id_ || parity != 0) fork_part.push_back(id);
    }
    fork_logs_[shard].append(fork_part, source);
  }
}

// ----------------------------------------------------------- crash/restart ----

void LoNode::crash(bool wipe_mempool) {
  if (crashed_) return;
  crashed_ = true;
  ++*c_crashes_;
  // Volatile state dies with the process. The commitment log (log_ and an
  // equivocator's fork_log_) persists as "disk"; so do suspicion_epoch_ and
  // own_nonce_ — monotonic counters a real implementation would fsync to
  // avoid reusing epochs or tx nonces after a reboot.
  pending_.clear();
  outstanding_sync_.clear();
  coverage_.clear();
  suspected_by_.clear();
  suspicion_snapshot_.clear();
  seen_suspicions_.clear();
  seen_exposures_.clear();
  mirrors_.clear();
  seen_blocks_.clear();
  blocks_awaiting_bundles_.clear();
  stealth_txs_.clear();
  invalid_.clear();
  // The failure detector's member table is volatile; only member_incarnation_
  // persists (like suspicion_epoch_, a counter a real node would fsync so a
  // reboot re-joins with a strictly higher incarnation).
  swim_.reset();
  registry_ = AccountabilityRegistry(config_.sig_mode, config_.verify_signatures,
                                     config_.two_stage_checks);
  // The verify cache deliberately survives the crash: it memoizes pure
  // functions of message bytes, so replaying it cannot leak pre-crash state
  // into any decision a fresh node would make differently.
  registry_.set_verify_cache(&verify_cache_);
  if (wipe_mempool) {
    store_.clear();
    valid_.clear();
  }
  // The content clocks describe the content we can actually serve — rebuild
  // them per shard from what survived (BloomClock addition commutes, so
  // iteration order of the unordered map cannot affect the result).
  for (std::uint32_t s = 0; s < k_; ++s) {
    content_clocks_[s] = bloom::BloomClock(config_.commitment.clock_cells,
                                           config_.commitment.clock_hashes);
  }
  // lolint:allow(unordered-iter) reason=BloomClock::add is a commutative counter increment; the rebuilt clocks are identical for any visit order
  for (const auto& [id, tx] : store_) {
    content_clocks_[shard_of(id)].add(txid_short(id));
  }
}

void LoNode::restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++*c_restarts_;
  // Fresh random phase, exactly like a cold start; the pre-crash timers were
  // invalidated by the epoch bump when the simulator marked us down.
  const sim::Duration phase = static_cast<sim::Duration>(
      sim_.node_rng(id_).next_below(static_cast<std::uint64_t>(config_.recon_interval)));
  sim_.schedule_for(id_, phase, [this] { sync_round(); });
  if (config_.rotate_interval > 0 && view_) {
    sim_.schedule_for(id_, config_.rotate_interval, [this] { rotate_neighbors(); });
  }
  // Re-join the membership protocol under a strictly higher incarnation: our
  // next alive update overrides any suspect/confirm issued against the
  // previous life (the SWIM rejoin path).
  if (config_.membership.enabled) {
    ++member_incarnation_;
    init_membership();
  }
  // Committed ids whose content was lost with the volatile mempool are
  // re-fetched explicitly; commitments missed while down arrive through the
  // ordinary sketch/bulk-sync rounds.
  request_missing_content();
}

// -------------------------------------------------------------- membership ----

void LoNode::init_membership() {
  swim_.reset();
  if (!config_.membership.enabled) return;
  membership::SwimDetector::Callbacks cb;
  cb.send = [this](NodeId to, sim::PayloadPtr msg) {
    sim_.send(id_, to, std::move(msg));
  };
  cb.timer = [this](sim::Duration delay, std::function<void()> fn) {
    // Epoch-scoped: timers armed before a crash never fire into the new life.
    sim_.schedule_for(id_, delay, std::move(fn));
  };
  cb.rand_below = [this](std::uint64_t bound) {
    return sim_.node_rng(id_).next_below(bound);
  };
  cb.on_state = [this](NodeId node, membership::MemberState state,
                       std::uint64_t /*incarnation*/) {
    if (state == membership::MemberState::kSuspect) ++*c_member_suspects_;
    if (state == membership::MemberState::kConfirmed) ++*c_member_confirms_;
    if (hooks_ && hooks_->on_member_state) {
      hooks_->on_member_state(id_, node, state, sim_.now());
    }
  };
  cb.on_incarnation = [this](std::uint64_t incarnation) {
    member_incarnation_ = incarnation;
  };
  swim_ = std::make_unique<membership::SwimDetector>(id_, config_.membership,
                                                     std::move(cb), tracer_);
  swim_->set_members(member_universe_.empty() ? neighbors_ : member_universe_);
  swim_->start(member_incarnation_);
}

bool LoNode::presumed_live(NodeId peer) const {
  return swim_ == nullptr || swim_->presumed_live(peer);
}

void LoNode::request_missing_content() {
  std::vector<TxId> missing;
  for (const auto& l : logs_) {
    for (const auto& id : l.order()) {
      if (store_.count(id) == 0 && invalid_.count(id) == 0) missing.push_back(id);
    }
  }
  if (missing.empty() || neighbors_.empty()) return;
  for (std::size_t off = 0; off < missing.size(); off += config_.max_delta) {
    const std::size_t end = std::min(missing.size(), off + config_.max_delta);
    auto txreq = std::make_shared<TxRequest>();
    txreq->want.assign(missing.begin() + static_cast<std::ptrdiff_t>(off),
                       missing.begin() + static_cast<std::ptrdiff_t>(end));
    const NodeId peer = neighbors_[sim_.node_rng(id_).next_below(neighbors_.size())];
    const std::uint64_t rid = register_pending(peer, RequestKind::kContent, txreq);
    txreq->request_id = rid;
    sim_.send(id_, peer, txreq);
  }
}

// --------------------------------------------------------- reconciliation ----

void LoNode::on_start() {
  if (behavior_.equivocate && fork_logs_.empty()) {
    fork_logs_.reserve(k_);
    for (std::uint32_t s = 0; s < k_; ++s) {
      fork_logs_.emplace_back(id_, config_.commitment, s);
    }
  }
  // Random phase so the network's sync rounds do not beat in lockstep.
  const sim::Duration phase = static_cast<sim::Duration>(
      sim_.node_rng(id_).next_below(static_cast<std::uint64_t>(config_.recon_interval)));
  sim_.schedule_for(id_, phase, [this] { sync_round(); });

  init_membership();

  if (config_.rotate_interval > 0) {
    view_ = std::make_unique<overlay::BasaltView>(id_, config_.view_size,
                                                  sim_.node_rng(id_).next());
    for (NodeId n : neighbors_) view_->offer(n);
    sim_.schedule_for(id_, config_.rotate_interval, [this] { rotate_neighbors(); });
  }
}

void LoNode::rotate_neighbors() {
  // Basalt-style continuous sampling: offer fresh candidates, reseed one
  // slot, and adopt the view as the active neighbor set, filtering blamed
  // peers (Sec. 5.1: rotation continues until enough non-suspected,
  // non-exposed peers are present).
  if (view_ && !peer_candidates_.empty()) {
    const std::size_t offers = std::min<std::size_t>(8, peer_candidates_.size());
    for (std::size_t k = 0; k < offers; ++k) {
      const NodeId c = peer_candidates_[sim_.node_rng(id_).next_below(
          peer_candidates_.size())];
      if (!registry_.is_exposed(c) && !registry_.is_suspected(c)) {
        view_->offer(c);
      }
    }
    view_->refresh();
    for (NodeId n : neighbors_) {
      if (registry_.is_exposed(n) || registry_.is_suspected(n)) {
        view_->evict(n);
      }
    }
    auto next = view_->view();
    std::erase_if(next, [this](NodeId n) {
      return n == id_ || registry_.is_exposed(n);
    });
    if (!next.empty()) neighbors_ = std::move(next);
  }
  sim_.schedule_for(id_, config_.rotate_interval, [this] { rotate_neighbors(); });
}

void LoNode::schedule_sync() {
  sim_.schedule_for(id_, config_.recon_interval, [this] { sync_round(); });
}

void LoNode::sync_round() {
  if (!neighbors_.empty()) {
    std::vector<NodeId> candidates;
    candidates.reserve(neighbors_.size());
    for (NodeId n : neighbors_) {
      if (registry_.is_exposed(n)) continue;
      // Peers the failure detector has confirmed faulty are skipped: syncing
      // with a dead process only burns the retry budget and, absent the
      // membership gate, would end in a bogus accountability suspicion.
      if (swim_ != nullptr && swim_->confirmed_faulty(n)) continue;
      candidates.push_back(n);
    }
    sim_.node_rng(id_).shuffle(candidates);
    const std::size_t fanout = std::min(config_.recon_fanout, candidates.size());
    // One candidate shuffle per round regardless of k (identical RNG stream
    // at every shard count); each chosen peer reconciles every shard, and the
    // per-shard in-sync check inside send_sync_request skips settled ones.
    for (std::size_t i = 0; i < fanout; ++i) {
      for (std::uint32_t s = 0; s < k_; ++s) {
        send_sync_request(candidates[i], s);
      }
    }
  }
  schedule_sync();
}

CommitmentLog& LoNode::log_for_peer(NodeId peer, std::uint32_t shard) {
  // Equivocators show the censored fork to every even peer id.
  if (behavior_.equivocate && !fork_logs_.empty() && (peer % 2 == 0)) {
    return fork_logs_[shard];
  }
  return logs_[shard];
}

std::size_t LoNode::wire_capacity_for(NodeId peer, const CommitmentLog& log,
                                      std::size_t delta_hint) const {
  // Size the transmitted sketch prefix to the estimated set difference with
  // the peer: the Bloom-Clock L1 distance estimates it when we have seen a
  // commitment from the peer, otherwise a conservative default. A 2x margin
  // plus slack keeps the decode success rate high; the full local sketch is
  // the upper bound.
  if (!config_.adaptive_wire_sketch) return config_.commitment.sketch_capacity;
  std::size_t estimate = 24;
  // Per-shard estimate: the Bloom-clock distance is taken against the peer's
  // commitment for THIS log's shard, so small shards transmit small sketch
  // prefixes instead of paying for the global backlog.
  if (const auto* h = registry_.latest(peer, log.shard())) {
    estimate =
        static_cast<std::size_t>(log.clock().estimate_difference(h->clock));
  }
  estimate = std::max(estimate, delta_hint);
  return sketch::adaptive_capacity(estimate, config_.commitment.sketch_capacity);
}

void LoNode::send_sync_request(NodeId peer, std::uint32_t shard) {
  CommitmentLog& use_log = log_for_peer(peer, shard);
  // Alg. 1 line 13: request only while the sets differ. Count and clock
  // equality alone can be fooled by cell collisions, so the sketch prefix is
  // compared too; any mismatch means C_i \ C_j or C_j \ C_i is non-empty.
  if (const auto* ph = registry_.latest(peer, shard)) {
    if (ph->count == use_log.count() && ph->clock == use_log.clock()) {
      const auto trunc = use_log.sketch().truncated(ph->sketch.capacity());
      if (trunc.syndromes() == ph->sketch.syndromes()) return;  // in sync
    }
  }
  // One in flight per (peer, shard) pair.
  if (outstanding_sync_.count(ps_key(peer, shard)) != 0) return;

  auto req = std::make_shared<SyncRequest>();
  req->commitment =
      use_log.make_header(signer_, wire_capacity_for(peer, use_log, 0));
  const std::uint64_t rid = register_pending(peer, RequestKind::kSync, req);
  pending_.at(rid).shard = shard;
  pending_.at(rid).snapshot_clock = content_clocks_[shard];
  outstanding_sync_.insert(ps_key(peer, shard));
  req->request_id = rid;
  ++*c_sync_rounds_[shard];
  sim_.send(id_, peer, req);
}

void LoNode::handle_sync_request(NodeId from, const SyncRequest& req) {
  if (behavior_.ignore_requests) return;
  // The shard rides inside the embedded commitment; reject out-of-range ids
  // (a malicious peer could address a shard pipeline we do not run).
  const std::uint32_t shard = req.commitment.shard;
  if (shard >= k_) return;
  observe_header(from, req.commitment);
  // The embedded commitment came straight from the peer, so it also answers
  // any open challenge we hold against it (see handle_challenge_response):
  // without this, a node that crashed past its reporters' coverage re-probes
  // stays suspected forever even after a full recovery, because the original
  // suspicion floods were swallowed by the dead process and are never
  // re-delivered.
  handle_challenge_response(from, req.commitment);
  if (registry_.is_exposed(from)) return;

  CommitmentLog& use_log = log_for_peer(from, shard);
  // Full mempool censorship, or the cross-shard attack on this shard.
  const bool censoring = censors_shard(shard);

  // Set reconciliation: our sketch (truncated to the request's capacity)
  // XOR theirs encodes the exact symmetric difference.
  sketch::Sketch merged =
      use_log.sketch().truncated(req.commitment.sketch.capacity());
  merged.merge(req.commitment.sketch);
  ++sketch_decodes_;
  const auto diff = merged.decode();
  if (hooks_ && hooks_->on_reconcile) {
    hooks_->on_reconcile(id_, 1, diff.has_value());
  }
  if (tracer_->enabled()) {
    const std::uint64_t outcome = !diff ? obs::kReconcileOverflow
                                  : diff->empty() ? obs::kReconcileEmpty
                                                  : obs::kReconcileDecoded;
    tracer_->emit(obs::EventKind::kReconcileRound, id_, from, outcome,
                  diff ? diff->size() : merged.capacity(), 0, shard);
  }

  auto resp = std::make_shared<SyncResponse>();
  resp->request_id = req.request_id;
  if (!behavior_.drop_gossip) resp->gossip = pick_gossip_headers();

  if (!diff) {
    // Difference exceeds the transmitted capacity: answer with our full
    // sketch so the requester can reconcile locally, plus a bounded window
    // of our ids. The window position is randomized so that successive
    // rounds cover the whole backlog even when it dwarfs max_delta (a fixed
    // window would resend the same ids forever during bulk catch-up).
    resp->decode_failed = true;
    resp->commitment = use_log.make_header(signer_);
    const auto& order = use_log.order();
    const std::size_t window = std::min(config_.max_delta, order.size());
    const std::size_t max_offset = order.size() - window;
    const std::size_t offset =
        max_offset == 0
            ? 0
            : static_cast<std::size_t>(sim_.node_rng(id_).next_below(max_offset + 1));
    resp->delta_back.assign(
        order.begin() + static_cast<std::ptrdiff_t>(offset),
        order.begin() + static_cast<std::ptrdiff_t>(offset + window));
  } else {
    if (!diff->empty()) ++sync_recons_;
    // Split the difference: ids we can name are ours (the requester lacks
    // them); unresolvable elements belong to the requester (we want them).
    std::vector<TxId> ours;
    for (const auto elem : *diff) {
      if (auto id = use_log.resolve_element(elem)) {
        ours.push_back(*id);
      } else if (!censoring) {
        resp->want_short.push_back(elem);
      }
    }
    std::sort(ours.begin(), ours.end(), [&use_log](const TxId& a, const TxId& b) {
      return use_log.position_of(a) < use_log.position_of(b);
    });
    if (ours.size() > config_.max_delta) ours.resize(config_.max_delta);
    resp->delta_back = std::move(ours);
    resp->commitment = use_log.make_header(
        signer_, wire_capacity_for(from, use_log, diff->size()));
  }
  sim_.send(id_, from, resp);

  // Eager content push: ship the bodies of the delta_back ids we hold right
  // away instead of waiting for a TxRequest round trip (Bitcoin-style tx
  // push; same bytes, one RTT less).
  if (!resp->delta_back.empty() && !censoring) {
    auto bundle = std::make_shared<TxBundleMsg>();
    for (const auto& id : resp->delta_back) {
      auto it2 = store_.find(id);
      if (it2 != store_.end()) bundle->txs.push_back(it2->second);
    }
    if (!bundle->txs.empty()) sim_.send(id_, from, bundle);
  }
}

void LoNode::handle_sync_response(NodeId from, const SyncResponse& resp) {
  const std::uint32_t shard = resp.commitment.shard;
  if (shard >= k_) return;
  auto it = pending_.find(resp.request_id);
  Pending pending;
  bool had_pending = false;
  if (it != pending_.end() && it->second.peer == from) {
    pending = it->second;
    pending_.erase(it);
    outstanding_sync_.erase(ps_key(from, pending.shard));
    had_pending = true;
  }
  observe_header(from, resp.commitment);
  // Direct commitment doubles as a challenge answer (same rule as
  // handle_sync_request): resolve or re-arm the coverage watch.
  handle_challenge_response(from, resp.commitment);
  for (const auto& h : resp.gossip) {
    if (h.node != from && h.node != id_) observe_header(from, h);
  }
  if (registry_.is_exposed(from)) return;

  CommitmentLog& use_log = log_for_peer(from, shard);
  const bool censoring = censors_shard(shard);

  // 1. Ship the transactions the responder asked for. Once it has them, it
  //    owes us a commitment covering our snapshot (coverage watch).
  if (!censoring && !behavior_.ignore_requests) {
    serve_elements(from, shard, resp.want_short, resp.request_id);
  }
  if (had_pending && !resp.decode_failed && pending.snapshot_clock) {
    register_coverage(from, pending.shard, *pending.snapshot_clock);
  }

  // 2. Commit to the ids the responder says we lack — one bundle, in the
  //    responder's order ("Transaction Selection in Received Order") — and
  //    fetch the content. Ids outside the response's shard are dropped: the
  //    partition invariant (log s holds only shard-s ids) must hold even
  //    against a malicious responder.
  std::vector<TxId> fresh;
  for (const auto& id : resp.delta_back) {
    if (invalid_.count(id) != 0) continue;
    if (censoring) continue;
    if (shard_of(id) != shard) continue;
    if (!logs_[shard].contains(id) &&
        std::find(fresh.begin(), fresh.end(), id) == fresh.end()) {
      fresh.push_back(id);
    }
  }
  if (!fresh.empty()) {
    commit_batch(fresh, from, shard);
    std::vector<TxId> want;
    for (const auto& id : fresh) {
      if (store_.count(id) == 0) want.push_back(id);
    }
    if (!want.empty()) {
      // The responder eagerly pushes this content alongside its response, so
      // the explicit request stays latent: it goes out only if the bundle
      // has not arrived by the first timeout.
      auto txreq = std::make_shared<TxRequest>();
      txreq->want = std::move(want);
      const std::uint64_t rid =
          register_pending(from, RequestKind::kContent, txreq);
      txreq->request_id = rid;
    }
  }

  // 3. Recovery path: the responder could not decode our sketch. Its reply
  //    carries a full-capacity sketch; reconcile locally and exchange both
  //    directions explicitly.
  if (resp.decode_failed) {
    sketch::Sketch merged =
        use_log.sketch().truncated(resp.commitment.sketch.capacity());
    merged.merge(resp.commitment.sketch);
    ++sketch_decodes_;
    const auto recovery_diff = merged.decode();
    if (hooks_ && hooks_->on_reconcile) {
      hooks_->on_reconcile(id_, 1, recovery_diff.has_value());
    }
    if (tracer_->enabled()) {
      const std::uint64_t outcome =
          !recovery_diff ? obs::kReconcileOverflow
          : recovery_diff->empty() ? obs::kReconcileEmpty
                                   : obs::kReconcileDecoded;
      tracer_->emit(obs::EventKind::kReconcileRound, id_, from, outcome,
                    recovery_diff ? recovery_diff->size() : merged.capacity(),
                    0, shard);
    }
    if (const auto& diff = recovery_diff) {
      std::vector<std::uint64_t> ours;
      std::vector<std::uint64_t> theirs;
      for (const auto elem : *diff) {
        if (use_log.resolve_element(elem).has_value()) {
          ours.push_back(elem);
        } else {
          theirs.push_back(elem);
        }
      }
      if (!censoring) {
        serve_elements(from, shard, ours, 0);
        if (!theirs.empty()) {
          auto txreq = std::make_shared<TxRequest>();
          txreq->want_short = std::move(theirs);
          const std::uint64_t rid =
              register_pending(from, RequestKind::kContent, txreq);
          txreq->request_id = rid;
          sim_.send(id_, from, txreq);
        }
      }
    }
    // If even the full-capacity decode fails, the bounded delta_back tails
    // shrink the difference every round until it becomes decodable.
  }
}

void LoNode::serve_elements(NodeId to, std::uint32_t shard,
                            const std::vector<std::uint64_t>& elements,
                            std::uint64_t request_id) {
  if (elements.empty()) return;
  CommitmentLog& use_log = log_for_peer(to, shard);
  std::vector<TxId> ids;
  for (const auto elem : elements) {
    if (auto id = use_log.resolve_element(elem)) {
      if (store_.count(*id) != 0) ids.push_back(*id);
    }
  }
  std::sort(ids.begin(), ids.end(), [&use_log](const TxId& a, const TxId& b) {
    return use_log.position_of(a) < use_log.position_of(b);
  });
  auto bundle = std::make_shared<TxBundleMsg>();
  bundle->request_id = request_id;
  for (const auto& id : ids) bundle->txs.push_back(store_.at(id));
  if (!bundle->txs.empty()) sim_.send(id_, to, bundle);
}

void LoNode::handle_tx_request(NodeId from, const TxRequest& req) {
  if (behavior_.ignore_requests || behavior_.censor_txs) return;
  auto bundle = std::make_shared<TxBundleMsg>();
  bundle->request_id = req.request_id;
  for (const auto& id : req.want) {
    if (behavior_.censors(txid_short(id), k_)) continue;
    auto s = store_.find(id);
    if (s != store_.end()) bundle->txs.push_back(s->second);
  }
  // TxRequest stays shard-free on the wire: sketch elements are resolved
  // against every shard log (ascending shard order, so the reply order is
  // deterministic — shard first, then commitment position).
  std::vector<TxId> resolved;
  for (std::uint32_t s = 0; s < k_; ++s) {
    if (censors_shard(s)) continue;
    std::vector<TxId> in_shard;
    for (const auto elem : req.want_short) {
      if (auto id = logs_[s].resolve_element(elem)) {
        if (store_.count(*id) != 0) in_shard.push_back(*id);
      }
    }
    std::sort(in_shard.begin(), in_shard.end(),
              [this, s](const TxId& a, const TxId& b) {
                return logs_[s].position_of(a) < logs_[s].position_of(b);
              });
    resolved.insert(resolved.end(), in_shard.begin(), in_shard.end());
  }
  for (const auto& id : resolved) bundle->txs.push_back(store_.at(id));
  // An empty bundle is still sent: it acknowledges liveness so the requester
  // keeps polling instead of suspecting a peer that is itself waiting for
  // the content to arrive.
  sim_.send(id_, from, bundle);
}

void LoNode::handle_tx_bundle(NodeId from, const TxBundleMsg& msg) {
  // Admit content and commit all new valid ids of a shard as ONE bundle in
  // the received order — this is the "transaction bundle" of Sec. 4.1 whose
  // intra-bundle order the canonical shuffle later randomizes. At k>1 the
  // bundle may span shards, so the batch splits per shard (still one bundle
  // per shard, received order preserved within each).
  std::vector<std::vector<TxId>> batches(k_);
  bool any_committed = false;
  for (const auto& tx : msg.txs) {
    if (invalid_.count(tx.id) != 0) continue;
    if (store_.count(tx.id) != 0) continue;
    if (!prevalidate(tx, config_.prevalidation, &verify_cache_)) {
      invalid_.insert(tx.id);
      continue;
    }
    const std::uint32_t shard = shard_of(tx.id);
    if (censors_shard(shard) && from != id_) continue;
    store_.emplace(tx.id, tx);
    valid_.insert(tx.id);
    content_clocks_[shard].add(txid_short(tx.id));
    if (!logs_[shard].contains(tx.id)) batches[shard].push_back(tx.id);
    // Gossip-hop admissions were invisible to the trace (only the direct
    // submit path emitted kTxAdmit), leaving lineage gaps at every relay.
    tracer_->emit(obs::EventKind::kTxAdmit, id_, from, txid_short(tx.id),
                  logs_[shard].seqno(), 0, shard);
    if (hooks_ && hooks_->on_mempool_admit) {
      hooks_->on_mempool_admit(id_, tx, sim_.now());
    }
  }
  for (std::uint32_t s = 0; s < k_; ++s) {
    if (batches[s].empty()) continue;
    commit_batch(batches[s], from, s);
    any_committed = true;
  }
  // Publish the fresh commitments to the sender when the bundle moved a log
  // forward; stale-view cases are handled by the coverage re-probe.
  if (any_committed && !behavior_.ignore_requests && !behavior_.drop_gossip) {
    // Publish the fresh commitment right away; this is what lets the
    // sender's coverage watch clear without waiting for the next round.
    auto g = std::make_shared<HeaderGossip>();
    for (std::uint32_t s = 0; s < k_; ++s) {
      if (batches[s].empty()) continue;
      g->headers.push_back(log_for_peer(from, s).make_header(
          signer_, wire_capacity_for(from, log_for_peer(from, s), 8)));
    }
    sim_.send(id_, from, g);
  }

  // A bundle (even an empty liveness ack) marks progress on content waits,
  // but a pending is only dismissed once every wanted item is accounted for —
  // the sender may legitimately still be fetching the content itself.
  // lolint:allow(unordered-iter) reason=independent per-entry flag update; no cross-entry state and nothing is emitted
  for (auto& [rid, p] : pending_) {
    if (p.peer == from && p.kind == RequestKind::kContent) p.got_partial = true;
  }
  std::vector<std::uint64_t> done;
  // lolint:allow(unordered-iter) reason=collects ids only to erase them below; erasure is order-independent and resolve_suspicion fires once regardless
  for (auto& [rid, p] : pending_) {
    if (p.peer != from || p.kind != RequestKind::kContent) continue;
    auto* txreq = dynamic_cast<const TxRequest*>(p.payload.get());
    if (txreq == nullptr) continue;
    bool satisfied = true;
    for (const auto& id : txreq->want) {
      if (store_.count(id) == 0 && invalid_.count(id) == 0) {
        satisfied = false;
        break;
      }
    }
    for (const auto elem : txreq->want_short) {
      bool known = false;
      for (std::uint32_t s = 0; !known && s < k_; ++s) {
        known = logs_[s].resolve_element(elem).has_value();
      }
      if (satisfied && !known) satisfied = false;
    }
    if (satisfied) done.push_back(rid);
  }
  for (auto rid : done) pending_.erase(rid);
  if (!done.empty()) resolve_suspicion_content(from);
}

// -------------------------------------------------------- accountability ----

void LoNode::observe_header(NodeId from, const CommitmentHeader& header) {
  if (header.shard >= k_) return;  // not a shard pipeline we run
  tracer_->emit(obs::EventKind::kCommitObserve, id_, header.node, header.count);
  bool used_decode = false;
  auto evidence = registry_.observe_commitment(header, &used_decode);
  if (used_decode) {
    ++sketch_decodes_;
    if (hooks_ && hooks_->on_reconcile) hooks_->on_reconcile(id_, 1, true);
  }
  if (evidence) {
    auto msg = std::make_shared<ExposureMsg>();
    msg->accused = evidence->accused;
    msg->verdict = 0xff;
    msg->equivocation = std::move(*evidence);
    if (seen_exposures_.insert(msg->accused).second) {
      tracer_->emit(obs::EventKind::kExpose, id_, msg->accused, msg->verdict);
      if (hooks_ && hooks_->on_exposure) {
        hooks_->on_exposure(id_, msg->accused, sim_.now());
      }
    }
    broadcast_exposure(*msg);
    return;
  }
  (void)from;
  clear_coverage_if_met(header.node, header.shard);
}

void LoNode::register_coverage(NodeId peer, std::uint32_t shard,
                               const bloom::BloomClock& snapshot) {
  // Keep an existing (older, therefore weaker) watch — it resolves first.
  if (coverage_.count(ps_key(peer, shard)) != 0) return;
  CoverageWatch watch;
  watch.snapshot = snapshot;
  watch.deadline = sim_.now() + config_.coverage_timeout;
  coverage_.emplace(ps_key(peer, shard), std::move(watch));
  arm_coverage_deadline(peer, shard);
  clear_coverage_if_met(peer, shard);
}

void LoNode::arm_coverage_deadline(NodeId peer, std::uint32_t shard) {
  sim_.schedule_for(id_, config_.coverage_timeout, [this, peer, shard] {
    auto it = coverage_.find(ps_key(peer, shard));
    if (it == coverage_.end()) return;
    if (sim_.now() < it->second.deadline) return;  // superseded
    const auto* h = registry_.latest(peer, shard);
    const bool covered =
        h != nullptr && it->second.snapshot.dominated_by(h->clock);
    if (covered) {
      coverage_.erase(it);
      resolve_suspicion(peer, shard);
      return;
    }
    if (!it->second.reprobed) {
      // The paper resends requests before suspecting: our view of the peer's
      // commitments may simply be stale (peers are sampled randomly, the
      // refresh may not have come around yet). Probe directly once.
      it->second.reprobed = true;
      it->second.deadline = sim_.now() + config_.coverage_timeout;
      send_sync_request(peer, shard);
      arm_coverage_deadline(peer, shard);
      return;
    }
    coverage_.erase(it);
    if (presumed_live(peer)) {
      suspect_peer(peer, shard);
    } else {
      ++*c_suspicions_absolved_;
    }
  });
}

void LoNode::clear_coverage_if_met(NodeId peer, std::uint32_t shard) {
  auto it = coverage_.find(ps_key(peer, shard));
  if (it == coverage_.end()) return;
  const auto* h = registry_.latest(peer, shard);
  if (h != nullptr && it->second.snapshot.dominated_by(h->clock)) {
    coverage_.erase(it);
    resolve_suspicion(peer, shard);
  }
}

void LoNode::broadcast_exposure(const ExposureMsg& msg) {
  auto copy = std::make_shared<ExposureMsg>(msg);
  flood(copy, id_);
}

void LoNode::suspect_peer(NodeId peer, std::uint32_t shard) {
  if (registry_.is_exposed(peer)) return;
  // Remember what we were covering when we complained: any later commitment
  // from the suspect that dominates this shard snapshot moots the complaint
  // (the suspect caught up), letting observe_header retract it even when the
  // logs are already back in sync and no further requests will ever be sent.
  // The snapshot is per (peer, shard); the public complaint below composes
  // across shards — one flood per peer, lifted when the last shard resolves.
  suspicion_snapshot_.emplace(ps_key(peer, shard), content_clocks_[shard]);
  auto& reporters = suspected_by_[peer];
  if (!reporters.insert(id_).second) return;  // we already reported
  ++*c_suspicions_raised_;
  ++*c_suspicions_[shard];
  tracer_->emit(obs::EventKind::kSuspect, id_, peer, shard, 0, 0, shard);
  const bool was_suspected = registry_.is_suspected(peer);
  registry_.suspect(peer);
  if (!was_suspected && hooks_ && hooks_->on_suspect) {
    hooks_->on_suspect(id_, peer, sim_.now());
  }
  auto msg = std::make_shared<SuspicionMsg>();
  msg->suspect = peer;
  msg->reporter = id_;
  msg->epoch = ++suspicion_epoch_;
  if (const auto* h = registry_.latest(peer, shard)) msg->last_known = *h;
  seen_suspicions_.insert(suspicion_key(id_, msg->epoch));
  flood(msg, id_);
}

void LoNode::resolve_suspicion(NodeId peer, std::uint32_t shard) {
  auto it = suspected_by_.find(peer);
  if (it == suspected_by_.end()) return;
  // Only our own complaint can be resolved by evidence we observed; other
  // reporters retract for themselves.
  if (it->second.count(id_) == 0) return;
  suspicion_snapshot_.erase(ps_key(peer, shard));
  // The public complaint is per peer: it stands while any shard complaint
  // remains open (composable accountability, DESIGN.md §7).
  for (std::uint32_t s = 0; s < k_; ++s) {
    if (suspicion_snapshot_.count(ps_key(peer, s)) != 0) return;
  }
  it->second.erase(id_);
  ++*c_suspicions_retracted_;
  tracer_->emit(obs::EventKind::kRetract, id_, peer);
  auto msg = std::make_shared<SuspicionMsg>();
  msg->suspect = peer;
  msg->reporter = id_;
  msg->epoch = ++suspicion_epoch_;
  msg->retract = true;
  seen_suspicions_.insert(suspicion_key(id_, msg->epoch));
  flood(msg, id_);
  if (it->second.empty()) {
    suspected_by_.erase(it);
    registry_.unsuspect(peer);
  }
}

void LoNode::resolve_suspicion_content(NodeId peer) {
  if (k_ == 1) {
    resolve_suspicion(peer, 0);
    return;
  }
  // Content service is shard-blind, so it cannot clear a shard complaint by
  // itself: only shards whose latest commitment has caught up with the
  // complaint snapshot resolve. A cross-shard censor that diligently serves
  // the other shards therefore stays suspected on the censored one.
  for (std::uint32_t s = 0; s < k_; ++s) {
    auto sit = suspicion_snapshot_.find(ps_key(peer, s));
    if (sit == suspicion_snapshot_.end()) continue;
    const auto* h = registry_.latest(peer, s);
    if (h != nullptr && sit->second.dominated_by(h->clock)) {
      resolve_suspicion(peer, s);
    }
  }
}

void LoNode::handle_challenge_response(NodeId from, const CommitmentHeader& h) {
  // A suspicion we flooded is a public challenge; a header received DIRECTLY
  // from the suspect is its answer. The complaint is lifted only when the
  // answered commitment covers the snapshot we complained about — so a
  // censoring node (whose clock never advances past the snapshot) stays
  // suspected no matter how promptly it replies, while a recovered node is
  // cleared as soon as it has caught up. If it has not caught up yet, a
  // coverage watch keeps the challenge alive: the watch re-probes and either
  // clears or re-confirms the suspicion at its deadline.
  if (from != h.node) return;  // relayed headers are not an answer
  if (h.shard >= k_) return;
  auto it = suspicion_snapshot_.find(ps_key(h.node, h.shard));
  if (it == suspicion_snapshot_.end()) return;
  const auto* latest = registry_.latest(h.node, h.shard);
  if (latest != nullptr && it->second.dominated_by(latest->clock)) {
    resolve_suspicion(h.node, h.shard);
    return;
  }
  register_coverage(h.node, h.shard, it->second);
}

void LoNode::handle_suspicion(NodeId from, const SuspicionMsg& msg) {
  if (!seen_suspicions_.insert(suspicion_key(msg.reporter, msg.epoch)).second) {
    return;
  }
  if (msg.suspect == id_) {
    // Respond publicly with our current commitments — one per shard, since
    // the complaint does not say which shard pipeline fell behind — so the
    // reporter (and the relayer) can lift the suspicion. A node that ignores
    // requests ignores the accusation too — that is exactly what keeps it
    // suspected.
    if (behavior_.ignore_requests) return;
    auto g = std::make_shared<HeaderGossip>();
    for (std::uint32_t s = 0; s < k_; ++s) {
      g->headers.push_back(logs_[s].make_header(
          signer_, wire_capacity_for(msg.reporter, logs_[s], 8)));
    }
    sim_.send(id_, msg.reporter, g);
    if (from != msg.reporter) sim_.send(id_, from, g);
    return;
  }
  if (msg.last_known) observe_header(from, *msg.last_known);

  if (msg.retract) {
    auto it = suspected_by_.find(msg.suspect);
    if (it != suspected_by_.end()) {
      it->second.erase(msg.reporter);
      if (it->second.empty()) {
        suspected_by_.erase(it);
        registry_.unsuspect(msg.suspect);
      }
    }
  } else {
    // Fig. 4: if we hold a newer commitment from the suspect (same shard as
    // the complaint's evidence), share it with the reporter instead of
    // escalating; the suspicion is adopted either way until the reporter
    // retracts.
    const auto* ours =
        msg.last_known ? registry_.latest(msg.suspect, msg.last_known->shard)
                       : nullptr;
    if (ours != nullptr && msg.last_known &&
        ours->seqno > msg.last_known->seqno) {
      auto g = std::make_shared<HeaderGossip>();
      g->headers.push_back(*ours);
      sim_.send(id_, msg.reporter, g);
    }
    if (!registry_.is_exposed(msg.suspect)) {
      suspected_by_[msg.suspect].insert(msg.reporter);
      if (!registry_.is_suspected(msg.suspect)) {
        registry_.suspect(msg.suspect);
        if (hooks_ && hooks_->on_suspect) {
          hooks_->on_suspect(id_, msg.suspect, sim_.now());
        }
      }
    }
  }
  if (!behavior_.drop_gossip) {
    flood(std::make_shared<SuspicionMsg>(msg), from);
  }
}

void LoNode::handle_exposure(NodeId from, const ExposureMsg& msg) {
  if (seen_exposures_.count(msg.accused) != 0) {
    return;
  }
  if (config_.verify_signatures && !msg.verify(config_.sig_mode, &verify_cache_)) return;
  if (!config_.verify_signatures) {
    // Structural check only (large-scale benches).
    if (!msg.equivocation && !msg.block_evidence) return;
  }
  seen_exposures_.insert(msg.accused);
  registry_.expose(msg.accused);
  tracer_->emit(obs::EventKind::kExpose, id_, msg.accused, msg.verdict);
  if (hooks_ && hooks_->on_exposure) {
    hooks_->on_exposure(id_, msg.accused, sim_.now());
  }
  if (!behavior_.drop_gossip) {
    flood(std::make_shared<ExposureMsg>(msg), from);
  }
}

// ----------------------------------------------------------------- blocks ----

bool LoNode::tx_includeable(const TxId& id) const {
  if (valid_.count(id) == 0) return false;
  auto it = store_.find(id);
  return it != store_.end() && it->second.fee >= config_.block_min_fee;
}

Block LoNode::create_block(std::uint64_t height,
                           const crypto::Digest256& prev_hash,
                           std::uint32_t shard) {
  auto include = [this](const TxId& id) { return tx_includeable(id); };
  Block block = build_block(logs_[shard], signer_, height, prev_hash, include);

  bool resign = false;
  if (behavior_.reorder_block) {
    // MEV-style manipulation: order by fee (descending) inside each segment,
    // violating the canonical shuffle.
    for (auto& seg : block.segments) {
      std::sort(seg.txids.begin(), seg.txids.end(),
                [this](const TxId& a, const TxId& b) {
                  const auto* ta = get_tx(a);
                  const auto* tb = get_tx(b);
                  const std::uint64_t fa = ta ? ta->fee : 0;
                  const std::uint64_t fb = tb ? tb->fee : 0;
                  if (fa != fb) return fa > fb;
                  return a < b;
                });
    }
    resign = true;
  }
  if (behavior_.inject_uncommitted) {
    // Slip a never-committed transaction ahead of committed ones. Colluding
    // miners use one obtained off-channel (Sec. 5.3); otherwise mint a fresh
    // one (front-running style).
    TxId inject_id{};
    if (!stealth_txs_.empty()) {
      inject_id = stealth_txs_.back();
    } else {
      Transaction tx = make_transaction(signer_, ++own_nonce_ + (1ULL << 40),
                                        /*fee=*/1000000, sim_.now());
      store_.emplace(tx.id, tx);
      valid_.insert(tx.id);
      inject_id = tx.id;
    }
    if (block.segments.empty()) {
      Block::Segment seg;
      seg.seqno = std::max<std::uint64_t>(1, block.commit_seqno);
      block.segments.push_back(seg);
      if (block.commit_seqno == 0) block.commit_seqno = 1;
    }
    auto& front = block.segments.front().txids;
    front.insert(front.begin(), inject_id);
    resign = true;
  }
  if (behavior_.censor_blockspace && block.tx_count() > 0) {
    // Drop the highest-fee transaction from the block (block-space
    // censorship, e.g. to snipe it in the miner's own later block).
    TxId victim{};
    std::uint64_t best = 0;
    for (const auto& seg : block.segments) {
      for (const auto& id : seg.txids) {
        const auto* t = get_tx(id);
        if (t != nullptr && t->fee >= best) {
          best = t->fee;
          victim = id;
        }
      }
    }
    for (auto& seg : block.segments) {
      std::erase(seg.txids, victim);
    }
    std::erase_if(block.segments,
                  [](const Block::Segment& s) { return s.txids.empty(); });
    resign = true;
  }
  if (resign) {
    auto msg = block.signing_bytes();
    block.sig =
        signer_.sign(std::span<const std::uint8_t>(msg.data(), msg.size()));
  }

  const auto block_hash = block.hash();
  tracer_->emit(obs::EventKind::kBlockBuild, id_, 0,
                obs::short_id(std::span<const std::uint8_t>(
                    block_hash.data(), block_hash.size())),
                block.tx_count(), 0, block.shard);
  seen_blocks_.emplace(block_hash, block);
  auto bm = std::make_shared<BlockMsg>();
  bm->block = block;
  flood(bm, id_);
  return block;
}

void LoNode::handle_block(NodeId from, const BlockMsg& msg) {
  if (msg.block.shard >= k_) return;
  const auto h = msg.block.hash();
  if (!seen_blocks_.emplace(h, msg.block).second) return;
  if (config_.verify_signatures && !msg.block.verify(config_.sig_mode, &verify_cache_)) return;
  if (!behavior_.drop_gossip) flood(std::make_shared<BlockMsg>(msg), from);
  if (msg.block.creator == id_) return;
  inspect_known_block(msg.block);
}

void LoNode::inspect_known_block(const Block& block) {
  const BundleMap mirrored = mirror_of(block.creator, block.shard);
  auto includeable = [this](const TxId& id) { return tx_includeable(id); };
  const InspectionResult res = inspect_block(block, mirrored, includeable);

  if (res.verdict == BlockVerdict::kNeedBundles) {
    auto req = std::make_shared<BundleRequest>();
    req->creator = block.creator;
    req->shard = block.shard;
    req->shards = k_;
    req->seqnos = res.missing_bundles;
    const std::uint64_t rid =
        register_pending(block.creator, RequestKind::kBundles, req);
    pending_.at(rid).shard = block.shard;
    req->request_id = rid;
    sim_.send(id_, block.creator, req);
    blocks_awaiting_bundles_[ps_key(block.creator, block.shard)].push_back(
        block.hash());
    return;
  }

  if (tracer_->enabled()) {
    const auto block_hash = block.hash();
    tracer_->emit(obs::EventKind::kBlockInspect, id_, block.creator,
                  obs::short_id(std::span<const std::uint8_t>(
                      block_hash.data(), block_hash.size())),
                  static_cast<std::uint64_t>(res.verdict), 0, block.shard);
  }
  if (hooks_ && hooks_->on_block_inspected) {
    hooks_->on_block_inspected(id_, block, res.verdict, sim_.now());
  }

  switch (res.verdict) {
    case BlockVerdict::kReordered:
    case BlockVerdict::kInjected:
    case BlockVerdict::kBadStructure: {
      // Transferable evidence: block + the creator-signed bundles.
      auto msg = std::make_shared<ExposureMsg>();
      msg->accused = block.creator;
      msg->verdict = static_cast<std::uint8_t>(res.verdict);
      BlockEvidence ev;
      ev.accused = block.creator;
      ev.block = block;
      auto mit = mirrors_.find(ps_key(block.creator, block.shard));
      if (mit != mirrors_.end()) {
        for (const auto& seg : block.segments) {
          auto bit = mit->second.find(seg.seqno);
          if (bit != mit->second.end()) ev.bundles.push_back(bit->second);
        }
      }
      msg->block_evidence = std::move(ev);
      if (seen_exposures_.insert(block.creator).second) {
        registry_.expose(block.creator);
        if (hooks_ && hooks_->on_exposure) {
          hooks_->on_exposure(id_, block.creator, sim_.now());
        }
      }
      broadcast_exposure(*msg);
      break;
    }
    case BlockVerdict::kCensored:
      // Not transferable without sharing tx content; raise a suspicion blame
      // (Sec. 5.2 treats undisclosed omissions through the suspicion path).
      // The blame carries the block's shard: the canonical lowest-seqno
      // witness rule holds within that shard's bundle namespace.
      if (tracer_->enabled()) {
        tracer_->emit(obs::EventKind::kTxCensored, id_, block.creator,
                      txid_short(res.offending_tx), res.offending_seqno, 0,
                      block.shard);
      }
      suspect_peer(block.creator, block.shard);
      break;
    case BlockVerdict::kOk:
    case BlockVerdict::kNeedBundles:
      break;
  }
}

void LoNode::handle_bundle_request(NodeId from, const BundleRequest& req) {
  if (behavior_.ignore_requests) return;
  if (req.shard >= k_) return;
  auto resp = std::make_shared<BundleResponse>();
  resp->request_id = req.request_id;
  for (std::uint64_t seqno : req.seqnos) {
    if (req.creator == id_) {
      const auto* b = logs_[req.shard].bundle_by_seqno(seqno);
      if (b == nullptr) continue;
      SignedBundle sb;
      sb.owner = id_;
      sb.seqno = seqno;
      sb.shard = req.shard;
      sb.shards = k_;
      sb.txids = b->txids;
      sb.key = signer_.public_key();
      auto bytes = sb.signing_bytes();
      sb.sig =
          signer_.sign(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
      resp->bundles.push_back(std::move(sb));
    } else {
      // Relay signed bundles we hold for third parties.
      auto mit = mirrors_.find(ps_key(req.creator, req.shard));
      if (mit == mirrors_.end()) continue;
      auto bit = mit->second.find(seqno);
      if (bit != mit->second.end()) resp->bundles.push_back(bit->second);
    }
  }
  if (!resp->bundles.empty()) sim_.send(id_, from, resp);
}

void LoNode::handle_bundle_response(NodeId from, const BundleResponse& resp) {
  if (resp.request_id != 0) clear_pending(resp.request_id);
  resolve_suspicion_content(from);
  std::unordered_set<std::uint64_t> touched;
  for (const auto& sb : resp.bundles) {
    if (sb.shard >= k_) continue;
    if (config_.verify_signatures && !sb.verify(config_.sig_mode, &verify_cache_)) continue;
    // The bundle key must match the owner's known commitment key, if any
    // (per shard — that is the commitment the bundle claims membership of).
    if (const auto* h = registry_.latest(sb.owner, sb.shard)) {
      if (!(h->key == sb.key)) continue;
    }
    mirrors_[ps_key(sb.owner, sb.shard)][sb.seqno] = sb;
    touched.insert(ps_key(sb.owner, sb.shard));
  }
  // Sorted walk: inspect_known_block can emit suspicion/exposure messages,
  // so the per-(owner, shard) processing order is protocol-visible.
  for (std::uint64_t key : util::sorted_keys(touched)) {
    auto it = blocks_awaiting_bundles_.find(key);
    if (it == blocks_awaiting_bundles_.end()) continue;
    auto hashes = std::move(it->second);
    blocks_awaiting_bundles_.erase(it);
    for (const auto& h : hashes) {
      auto bit = seen_blocks_.find(h);
      if (bit != seen_blocks_.end()) inspect_known_block(bit->second);
    }
  }
}

// --------------------------------------------------------------- plumbing ----

std::uint64_t LoNode::register_pending(NodeId peer, RequestKind kind,
                                       sim::PayloadPtr payload) {
  const std::uint64_t rid = next_request_id_++;
  Pending p;
  p.peer = peer;
  p.kind = kind;
  p.payload = std::move(payload);
  p.retries_left = config_.max_retries;
  pending_.emplace(rid, std::move(p));
  ++*c_requests_sent_;
  arm_timeout(rid);
  return rid;
}

sim::Duration LoNode::backoff_delay(int attempt) {
  double d = static_cast<double>(config_.request_timeout);
  for (int i = 0; i < attempt; ++i) d *= config_.backoff_factor;
  d = std::min(d, static_cast<double>(config_.backoff_cap));
  if (config_.backoff_jitter > 0.0) {
    // Deterministic jitter from the sim RNG, uniform in +/- jitter fraction:
    // desynchronizes the retry bursts that fixed intervals would phase-lock.
    const double u = sim_.node_rng(id_).next_double() * 2.0 - 1.0;
    d *= 1.0 + config_.backoff_jitter * u;
  }
  return std::max<sim::Duration>(1, static_cast<sim::Duration>(d));
}

void LoNode::arm_timeout(std::uint64_t request_id) {
  const auto pit = pending_.find(request_id);
  const int attempt = pit == pending_.end() ? 0 : pit->second.attempt;
  sim_.schedule_for(id_, backoff_delay(attempt), [this, request_id] {
    auto it = pending_.find(request_id);
    if (it == pending_.end()) return;
    Pending& p = it->second;
    ++*c_timeouts_fired_;
    if (p.retries_left > 0) {
      --p.retries_left;
      ++p.attempt;
      ++*c_retries_sent_;
      sim_.send(id_, p.peer, p.payload);
      arm_timeout(request_id);
      return;
    }
    const NodeId peer = p.peer;
    if (p.kind == RequestKind::kContent && p.got_partial) {
      // The peer answered but could not serve everything (it may itself be
      // waiting for the content). Re-request the remainder with a fresh
      // retry budget instead of suspecting a live peer.
      // Keep the payload alive across the erase: the map entry owns (possibly
      // the last) reference, and old_req points into it.
      const sim::PayloadPtr payload = p.payload;
      const auto* old_req = dynamic_cast<const TxRequest*>(payload.get());
      pending_.erase(it);
      if (old_req != nullptr) {
        auto txreq = std::make_shared<TxRequest>();
        for (const auto& id : old_req->want) {
          if (store_.count(id) == 0 && invalid_.count(id) == 0) {
            txreq->want.push_back(id);
          }
        }
        for (const auto elem : old_req->want_short) {
          bool resolved = false;
          for (std::uint32_t s = 0; s < k_ && !resolved; ++s) {
            resolved = logs_[s].resolve_element(elem).has_value();
          }
          if (!resolved) txreq->want_short.push_back(elem);
        }
        if (!txreq->want.empty() || !txreq->want_short.empty()) {
          const std::uint64_t rid =
              register_pending(peer, RequestKind::kContent, txreq);
          txreq->request_id = rid;
          sim_.send(id_, peer, txreq);
        }
      }
      return;
    }
    const std::uint32_t shard = p.shard;
    if (p.kind == RequestKind::kSync) outstanding_sync_.erase(ps_key(peer, shard));
    pending_.erase(it);
    if (presumed_live(peer)) {
      suspect_peer(peer, shard);
    } else {
      // Membership no longer presumes the peer alive: a dead process cannot
      // answer, so the exhausted retries are a liveness event, not protocol
      // misbehavior — absolve instead of blaming.
      ++*c_suspicions_absolved_;
    }
  });
}

void LoNode::clear_pending(std::uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  if (it->second.kind == RequestKind::kSync) {
    outstanding_sync_.erase(ps_key(it->second.peer, it->second.shard));
  }
  pending_.erase(it);
}

void LoNode::flood(const sim::PayloadPtr& msg, NodeId except) {
  for (NodeId n : neighbors_) {
    if (n == except) continue;
    sim_.send(id_, n, msg);
  }
}

std::vector<CommitmentHeader> LoNode::pick_gossip_headers() {
  std::vector<CommitmentHeader> out;
  if (config_.gossip_headers == 0) return out;
  if (!sim_.node_rng(id_).next_bool(config_.gossip_probability)) return out;
  const auto& all = registry_.latest_all();
  if (all.empty()) return out;
  // Reservoir-sample a few stored third-party headers. The selection is
  // already randomized by the seeded RNG; the map's iteration order only
  // permutes which random subset a given draw sequence picks, and for a
  // fixed binary and seed that order is stable, so seed-replay determinism
  // holds. The draw count (one per visited entry past the reservoir) is
  // independent of visit order, so the RNG stream position is too.
  std::size_t i = 0;
  // lolint:allow(unordered-iter) reason=reservoir sampling consumes one RNG draw per entry regardless of order; selection is RNG-randomized and replay-stable for a fixed binary+seed
  for (const auto& [key, header] : all) {
    if (static_cast<NodeId>(key >> 8) == id_) continue;
    if (out.size() < config_.gossip_headers) {
      out.push_back(header);
    } else {
      const std::size_t j =
          static_cast<std::size_t>(sim_.node_rng(id_).next_below(i + 1));
      if (j < out.size()) out[j] = header;
    }
    ++i;
  }
  return out;
}

void LoNode::on_message(NodeId from, const sim::PayloadPtr& msg) {
  // Belt and braces: the simulator already suppresses delivery to a down
  // node; a crashed process must not react to anything regardless.
  if (crashed_) return;
  if (const auto* m = dynamic_cast<const SyncRequest*>(msg.get())) {
    handle_sync_request(from, *m);
  } else if (const auto* m2 = dynamic_cast<const SyncResponse*>(msg.get())) {
    handle_sync_response(from, *m2);
  } else if (const auto* m3 = dynamic_cast<const TxRequest*>(msg.get())) {
    handle_tx_request(from, *m3);
  } else if (const auto* m4 = dynamic_cast<const TxBundleMsg*>(msg.get())) {
    handle_tx_bundle(from, *m4);
  } else if (const auto* m5 = dynamic_cast<const SuspicionMsg*>(msg.get())) {
    handle_suspicion(from, *m5);
  } else if (const auto* m6 = dynamic_cast<const ExposureMsg*>(msg.get())) {
    handle_exposure(from, *m6);
  } else if (const auto* m7 = dynamic_cast<const BlockMsg*>(msg.get())) {
    handle_block(from, *m7);
  } else if (const auto* m8 = dynamic_cast<const BundleRequest*>(msg.get())) {
    handle_bundle_request(from, *m8);
  } else if (const auto* m9 = dynamic_cast<const BundleResponse*>(msg.get())) {
    handle_bundle_response(from, *m9);
  } else if (const auto* m10 = dynamic_cast<const HeaderGossip*>(msg.get())) {
    for (const auto& h : m10->headers) {
      observe_header(from, h);
      handle_challenge_response(from, h);
    }
  } else if (const auto* mp = dynamic_cast<const membership::PingMsg*>(msg.get())) {
    if (swim_) swim_->on_ping(from, *mp);
  } else if (const auto* ma =
                 dynamic_cast<const membership::PingAckMsg*>(msg.get())) {
    if (swim_) swim_->on_ping_ack(from, *ma);
  } else if (const auto* mq =
                 dynamic_cast<const membership::PingReqMsg*>(msg.get())) {
    if (swim_) swim_->on_ping_req(from, *mq);
  }
}

}  // namespace lo::core
