#include "core/transaction.hpp"

#include "crypto/verify_cache.hpp"
#include "util/serde.hpp"

namespace lo::core {

namespace {
// Fixed overhead: id(32) + creator(32) + nonce(8) + fee(8) + created(8)
// + body length prefix(4) + sig(64).
constexpr std::size_t kFixedOverhead = 32 + 32 + 8 + 8 + 8 + 4 + 64;
static_assert(kFixedOverhead < kTxWireSize, "tx overhead exceeds target size");
constexpr std::size_t kDefaultBodySize = kTxWireSize - kFixedOverhead;
}  // namespace

std::size_t Transaction::wire_size() const noexcept {
  return kFixedOverhead + body.size();
}

std::vector<std::uint8_t> Transaction::signing_bytes() const {
  util::Writer w;
  w.fixed(creator);
  w.u64(nonce);
  w.u64(fee);
  w.u64(static_cast<std::uint64_t>(created_at));
  w.var_bytes(body);
  return w.take_u8();
}

TxId Transaction::compute_id() const {
  auto bytes = signing_bytes();
  crypto::Sha256 h;
  h.update(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  h.update(std::span<const std::uint8_t>(sig.data(), sig.size()));
  return h.finalize();
}

void Transaction::write(util::Writer& w) const {
  w.fixed(id);
  w.fixed(creator);
  w.u64(nonce);
  w.u64(fee);
  w.u64(static_cast<std::uint64_t>(created_at));
  w.var_bytes(body);
  w.fixed(sig);
}

std::vector<std::uint8_t> Transaction::serialize() const {
  util::Writer w;
  write(w);
  return w.take_u8();
}

Transaction Transaction::read(util::Reader& r) {
  Transaction tx;
  tx.id = r.fixed<32>();
  tx.creator = r.fixed<32>();
  tx.nonce = r.u64();
  tx.fee = r.u64();
  tx.created_at = static_cast<std::int64_t>(r.u64());
  tx.body = r.var_bytes();
  tx.sig = r.fixed<64>();
  return tx;
}

Transaction Transaction::deserialize(std::span<const std::uint8_t> data) {
  util::Reader r(data);
  return read(r);
}

Transaction make_transaction(const crypto::Signer& client, std::uint64_t nonce,
                             std::uint64_t fee, std::int64_t created_at) {
  Transaction tx;
  tx.creator = client.public_key();
  tx.nonce = nonce;
  tx.fee = fee;
  tx.created_at = created_at;
  tx.body.assign(kDefaultBodySize, 0);
  // Give the body deterministic non-trivial content derived from the fields.
  std::uint64_t s = nonce ^ (fee << 20);
  for (auto& b : tx.body) b = static_cast<std::uint8_t>(util::splitmix64(s));
  auto msg = tx.signing_bytes();
  tx.sig = client.sign(std::span<const std::uint8_t>(msg.data(), msg.size()));
  tx.id = tx.compute_id();
  return tx;
}

bool prevalidate(const Transaction& tx, const PrevalidationPolicy& policy,
                 crypto::VerifyCache* cache) {
  if (tx.fee < policy.min_fee) return false;
  if (tx.compute_id() != tx.id) return false;
  if (policy.check_signatures) {
    auto msg = tx.signing_bytes();
    const std::span<const std::uint8_t> m(msg.data(), msg.size());
    const bool ok = cache ? cache->verify(policy.sig_mode, tx.creator, m, tx.sig)
                          : crypto::Signer::verify(policy.sig_mode, tx.creator,
                                                   m, tx.sig);
    if (!ok) return false;
  }
  return true;
}

}  // namespace lo::core
