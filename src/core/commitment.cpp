#include "core/commitment.hpp"

#include <algorithm>

#include "crypto/verify_cache.hpp"
#include "util/serde.hpp"

namespace lo::core {

std::vector<std::uint8_t> CommitmentHeader::signing_bytes() const {
  util::Writer w;
  w.str("lo-commit");
  w.u32(node);
  // The shard id enters the signed bytes only in sharded deployments: k = 1
  // signatures stay byte-identical to the unsharded protocol, while at k > 1
  // a commitment signed for one shard cannot be replayed as another shard's.
  if (shards > 1) {
    w.str("shard");
    w.u32(shard);
  }
  w.u64(seqno);
  w.u64(count);
  w.fixed(chain_hash);
  auto cb = clock.serialize();
  w.var_bytes(cb);
  auto sb = sketch.serialize();
  w.var_bytes(sb);
  return w.take_u8();
}

bool CommitmentHeader::verify(crypto::SignatureMode mode,
                              crypto::VerifyCache* cache) const {
  auto msg = signing_bytes();
  const std::span<const std::uint8_t> m(msg.data(), msg.size());
  if (cache) return cache->verify(mode, key, m, sig);
  return crypto::Signer::verify(mode, key, m, sig);
}

std::size_t CommitmentHeader::wire_size() const noexcept {
  // node + [shard] + seqno + count + chain_hash + clock + sketch capacity +
  // sketch + key + sig.
  return 4 + (shards > 1 ? 4 : 0) + 8 + 8 + 32 + clock.serialized_size() + 2 +
         sketch.serialized_size() + 32 + 64;
}

void CommitmentHeader::write(util::Writer& w) const {
  w.u32(node);
  if (shards > 1) w.u32(shard);
  w.u64(seqno);
  w.u64(count);
  w.fixed(chain_hash);
  auto cb = clock.serialize();
  w.bytes(std::span<const std::uint8_t>(cb.data(), cb.size()));
  w.u16(static_cast<std::uint16_t>(sketch.capacity()));
  auto sb = sketch.serialize();
  w.bytes(std::span<const std::uint8_t>(sb.data(), sb.size()));
  w.fixed(key);
  w.fixed(sig);
}

std::vector<std::uint8_t> CommitmentHeader::serialize() const {
  util::Writer w;
  write(w);
  return w.take_u8();
}

std::optional<CommitmentHeader> CommitmentHeader::read(
    util::Reader& r, const CommitmentParams& params) {
  try {
    CommitmentHeader h(params);
    h.node = r.u32();
    if (params.shards > 1) {
      h.shard = r.u32();
      if (h.shard >= params.shards) return std::nullopt;
    }
    h.seqno = r.u64();
    h.count = r.u64();
    h.chain_hash = r.fixed<32>();
    const std::size_t clock_bytes = h.clock.serialized_size();
    std::vector<std::uint8_t> cb;
    cb.reserve(clock_bytes);
    for (std::size_t i = 0; i < clock_bytes; ++i) cb.push_back(r.u8());
    auto clock = bloom::BloomClock::deserialize(cb);
    if (!clock) return std::nullopt;
    h.clock = *clock;
    const std::size_t capacity = r.u16();
    if (capacity == 0 || capacity > params.sketch_capacity) return std::nullopt;
    const std::size_t bytes_per = (params.sketch_bits + 7) / 8;
    std::vector<std::uint8_t> sb;
    sb.reserve(capacity * bytes_per);
    for (std::size_t i = 0; i < capacity * bytes_per; ++i) sb.push_back(r.u8());
    h.sketch = sketch::Sketch::deserialize(params.sketch_bits, capacity, sb);
    h.key = r.fixed<32>();
    h.sig = r.fixed<64>();
    return h;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

std::optional<CommitmentHeader> CommitmentHeader::deserialize(
    std::span<const std::uint8_t> data, const CommitmentParams& params) {
  util::Reader r(data);
  auto h = read(r, params);
  if (!h || !r.done()) return std::nullopt;
  return h;
}

Consistency check_consistency_clocks(const CommitmentHeader& a,
                                     const CommitmentHeader& b) {
  const CommitmentHeader& older = (a.seqno <= b.seqno) ? a : b;
  const CommitmentHeader& newer = (a.seqno <= b.seqno) ? b : a;
  if (older.seqno == newer.seqno || older.count == newer.count) {
    const bool same = older.count == newer.count &&
                      older.chain_hash == newer.chain_hash &&
                      older.clock == newer.clock;
    return same ? Consistency::kConsistent : Consistency::kInconclusive;
  }
  if (newer.count < older.count) return Consistency::kInconclusive;
  if (!older.clock.dominated_by(newer.clock)) return Consistency::kInconclusive;
  const std::uint64_t delta = newer.count - older.count;
  const std::uint64_t expected_l1 =
      static_cast<std::uint64_t>(older.clock.hashes()) * delta;
  return older.clock.l1_distance(newer.clock) == expected_l1
             ? Consistency::kConsistent
             : Consistency::kInconclusive;
}

Consistency check_consistency(const CommitmentHeader& a,
                              const CommitmentHeader& b) {
  const CommitmentHeader& older = (a.seqno <= b.seqno) ? a : b;
  const CommitmentHeader& newer = (a.seqno <= b.seqno) ? b : a;

  const std::size_t common =
      std::min(older.sketch.capacity(), newer.sketch.capacity());
  auto sketches_agree = [&] {
    return older.sketch.truncated(common).syndromes() ==
           newer.sketch.truncated(common).syndromes();
  };

  if (older.seqno == newer.seqno) {
    // Same counter: the commitments must agree on every digest (sketches are
    // compared on their common truncation prefix).
    const bool same = older.count == newer.count &&
                      older.chain_hash == newer.chain_hash &&
                      older.clock == newer.clock && sketches_agree();
    return same ? Consistency::kConsistent : Consistency::kEquivocation;
  }

  // Append-only history: the set can only grow, so the counter and the Bloom
  // Clock of the newer commitment must dominate.
  if (newer.count < older.count) return Consistency::kEquivocation;
  if (newer.count == older.count) {
    // No growth but a new seqno: all digests must match.
    const bool same = older.chain_hash == newer.chain_hash &&
                      older.clock == newer.clock && sketches_agree();
    return same ? Consistency::kConsistent : Consistency::kEquivocation;
  }
  if (!older.clock.dominated_by(newer.clock)) return Consistency::kEquivocation;

  // Sketch reconciliation (Sec. 5.2 "Equivocation Detection"): for a pure
  // extension the symmetric difference consists of additions only, so its
  // size must equal the count delta. Any removal inflates the difference.
  // Wire commitments may carry different truncations; the common prefix is a
  // valid sketch of both sets at the smaller capacity.
  sketch::Sketch merged = older.sketch.truncated(common);
  merged.merge(newer.sketch.truncated(common));
  auto diff = merged.decode();
  if (!diff) return Consistency::kInconclusive;  // diff exceeds sketch capacity
  const std::uint64_t delta = newer.count - older.count;
  return (diff->size() == delta) ? Consistency::kConsistent
                                 : Consistency::kEquivocation;
}

}  // namespace lo::core
