// Shared core types for the LØ accountable mempool.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/sha256.hpp"
#include "sim/simulator.hpp"

namespace lo::core {

using NodeId = sim::NodeId;
using TxId = crypto::Digest256;

// Raw 64-bit item used in sketches and Bloom clocks: the first 8 bytes of the
// transaction id, little-endian. (The paper uses a 32-bit representation for
// Minisketch roots; we keep 64 bits up to the sketch boundary and let the
// field mapping truncate, which preserves the same collision profile.)
inline std::uint64_t txid_short(const TxId& id) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | id[static_cast<std::size_t>(i)];
  return v;
}

struct TxIdHash {
  std::size_t operator()(const TxId& id) const noexcept {
    return static_cast<std::size_t>(txid_short(id));
  }
};

}  // namespace lo::core
