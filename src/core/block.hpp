// Blocks and the Verifiable Canonical Order (Sec. 4.3, Table 1).
//
// A block's transactions are grouped into *segments*, one per committed
// bundle, in bundle (seqno) order. Inside a segment the transactions follow a
// deterministic pseudo-random shuffle keyed by the previous block hash — the
// "order seed" — so the creator cannot choose the intra-bundle order either.
// The creator's own fresh transactions may appear only in the final segment,
// committed under the creator's current seqno.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/commitment_log.hpp"
#include "core/types.hpp"
#include "crypto/keys.hpp"
#include "util/serde.hpp"

namespace lo::crypto {
class VerifyCache;
}

namespace lo::core {

struct Block {
  NodeId creator = 0;
  std::uint64_t height = 0;
  crypto::Digest256 prev_hash{};
  std::uint64_t commit_seqno = 0;  // creator's commitment counter at build time
  // Shard whose log this block drains (DESIGN.md §7). Signed and serialized
  // only when shards > 1; k = 1 blocks keep the pre-sharding byte format.
  std::uint32_t shard = 0;
  std::uint32_t shards = 1;

  struct Segment {
    std::uint64_t seqno = 0;
    std::vector<TxId> txids;
  };
  std::vector<Segment> segments;

  crypto::PublicKey key{};
  crypto::Signature sig{};

  std::vector<std::uint8_t> signing_bytes() const;
  bool verify(crypto::SignatureMode mode,
              crypto::VerifyCache* cache = nullptr) const;
  crypto::Digest256 hash() const;

  std::size_t tx_count() const noexcept;
  std::vector<TxId> flat_txids() const;
  std::size_t wire_size() const noexcept;
  std::vector<std::uint8_t> serialize() const;
  static std::optional<Block> deserialize(std::span<const std::uint8_t> data,
                                          std::uint32_t shards = 1);
  void write(util::Writer& w) const;
  static std::optional<Block> read(util::Reader& r, std::uint32_t shards = 1);
};

// The canonical intra-bundle permutation: Fisher–Yates keyed by
// SHA-256(prev_hash || seqno). Exposed so inspectors apply the identical rule.
std::vector<TxId> canonical_shuffle(std::vector<TxId> txids,
                                    const crypto::Digest256& prev_hash,
                                    std::uint64_t seqno);

// Builds the canonical block content from a commitment log.
// `include` decides per transaction whether it goes into the block (validity,
// fee threshold, content availability); excluded transactions are skipped but
// the relative canonical order of the rest is preserved.
std::vector<Block::Segment> build_canonical_segments(
    const CommitmentLog& log, const crypto::Digest256& prev_hash,
    const std::function<bool(const TxId&)>& include);

// Assembles and signs a block.
Block build_block(const CommitmentLog& log, const crypto::Signer& signer,
                  std::uint64_t height, const crypto::Digest256& prev_hash,
                  const std::function<bool(const TxId&)>& include);

}  // namespace lo::core
