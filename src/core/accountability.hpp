// Blame bookkeeping (Sec. 3.2): suspicions and exposures.
//
// An exposure is verifiable proof of misbehavior, a suspicion is the lack of
// a timely response. This registry stores both, tracks the latest observed
// commitment per peer, and runs the consistency check that converts two
// conflicting commitments into transferable evidence.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/commitment.hpp"
#include "core/messages.hpp"
#include "core/types.hpp"

namespace lo::core {

enum class PeerStatus : std::uint8_t { kTrusted, kSuspected, kExposed };

class AccountabilityRegistry {
 public:
  explicit AccountabilityRegistry(crypto::SignatureMode mode,
                                  bool verify_signatures = true,
                                  bool two_stage_checks = true)
      : mode_(mode),
        verify_signatures_(verify_signatures),
        two_stage_checks_(two_stage_checks) {}

  // Optional verification cache (owned by the node); results are identical
  // with or without it. Must outlive the registry when set.
  void set_verify_cache(crypto::VerifyCache* cache) noexcept {
    verify_cache_ = cache;
  }

  // Records a commitment observation. If it conflicts with a previously
  // stored commitment of the same node, returns the equivocation evidence
  // (and marks the node exposed). Invalid signatures are ignored.
  //
  // Two-stage check (Sec. 4.2): the Bloom-Clock comparison runs first; the
  // Minisketch decode runs only when the clocks flag an inconsistency.
  // `used_decode` (optional) reports whether the expensive decode ran —
  // experiment harnesses count these for the Fig. 10 reconciliation metric.
  std::optional<EquivocationEvidence> observe_commitment(
      const CommitmentHeader& header, bool* used_decode = nullptr);

  // Per-(node, shard) storage key (DESIGN.md §7): commitments of different
  // shards describe disjoint logs and are never consistency-checked against
  // each other. Shard ids fit in one byte (LoConfig caps mempool_shards at
  // 64), so the key packs losslessly.
  static std::uint64_t key(NodeId node, std::uint32_t shard) noexcept {
    return (static_cast<std::uint64_t>(node) << 8) |
           static_cast<std::uint64_t>(shard & 0xff);
  }

  // The freshest commitment seen from `node` for `shard`, if any.
  const CommitmentHeader* latest(NodeId node, std::uint32_t shard = 0) const;

  // All stored latest commitments keyed by key(node, shard) (used for
  // commitment gossip).
  const std::unordered_map<std::uint64_t, CommitmentHeader>& latest_all()
      const noexcept {
    return latest_;
  }

  void suspect(NodeId node) { suspected_.insert(node); }
  void unsuspect(NodeId node) { suspected_.erase(node); }
  void expose(NodeId node) {
    exposed_.insert(node);
    suspected_.erase(node);
  }

  PeerStatus status(NodeId node) const {
    if (exposed_.count(node) != 0) return PeerStatus::kExposed;
    if (suspected_.count(node) != 0) return PeerStatus::kSuspected;
    return PeerStatus::kTrusted;
  }
  bool is_suspected(NodeId node) const { return suspected_.count(node) != 0; }
  bool is_exposed(NodeId node) const { return exposed_.count(node) != 0; }

  const std::unordered_set<NodeId>& suspected() const noexcept { return suspected_; }
  const std::unordered_set<NodeId>& exposed() const noexcept { return exposed_; }

  // Approximate resident memory of stored commitments (Sec. 6.5 accounting).
  std::size_t memory_bytes() const noexcept;

  std::size_t commitments_stored() const noexcept { return latest_.size(); }

 private:
  crypto::SignatureMode mode_;
  bool verify_signatures_;
  bool two_stage_checks_;
  crypto::VerifyCache* verify_cache_ = nullptr;
  std::unordered_map<std::uint64_t, CommitmentHeader> latest_;
  std::unordered_set<NodeId> suspected_;
  std::unordered_set<NodeId> exposed_;
};

}  // namespace lo::core
