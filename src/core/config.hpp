// Protocol configuration and adversarial behavior flags.
#pragma once

#include <cstdint>

#include "core/commitment.hpp"
#include "core/transaction.hpp"
#include "membership/swim.hpp"
#include "sim/simulator.hpp"

namespace lo::core {

struct LoConfig {
  CommitmentParams commitment;

  // Sedna-style sharded commitment pipeline: the transaction space is
  // partitioned by content hash (txid_short % mempool_shards) into this many
  // shards, each with its own commitment log, Bloom-clock estimate and
  // reconciliation stream, and its own proposer per consensus round. 1 (the
  // default) is the paper's single-pipeline protocol — same bytes, same
  // digests. LoNode folds this value into commitment.shards so every wire
  // codec sees it. See DESIGN.md §7.
  std::size_t mempool_shards = 1;

  // Reconciliation cadence: every node reconciles with `recon_fanout` random
  // neighbors every `recon_interval` (paper: 3 neighbors, every second).
  sim::Duration recon_interval = sim::kSecond;
  std::size_t recon_fanout = 3;

  // Request handling: 1 s base timeout, resent up to 3 times, then suspicion
  // (Sec. 6.1). The k-th resend waits request_timeout * backoff_factor^k
  // (capped at backoff_cap) with +/- backoff_jitter relative jitter drawn
  // from the sim RNG — fixed-interval retries synchronize retransmission
  // bursts under loss. backoff_factor = 1 and backoff_jitter = 0 restore the
  // fixed-interval schedule.
  sim::Duration request_timeout = sim::kSecond;
  int max_retries = 3;
  double backoff_factor = 2.0;
  sim::Duration backoff_cap = 8 * sim::kSecond;
  double backoff_jitter = 0.2;

  PrevalidationPolicy prevalidation;
  crypto::SignatureMode sig_mode = crypto::SignatureMode::kEd25519;
  // When false, signature bytes still travel but are not checked — used by
  // large-scale benches where crypto would dominate wall-clock without
  // changing protocol behavior.
  bool verify_signatures = true;

  // Cap on full txids shipped per sync response (delta_back / recovery tail);
  // larger backlogs converge over multiple rounds.
  std::size_t max_delta = 256;

  // How long a peer that received our transactions has to publish a
  // commitment covering them before we suspect mempool censorship. Must
  // exceed one reconciliation round plus content-transfer round trips.
  sim::Duration coverage_timeout = 5 * sim::kSecond;

  // Third-party commitment headers piggybacked on sync responses (Sec. 5.2:
  // periodic sharing of most recent commitments). Attached with
  // `gossip_probability` per response; 0 headers disables.
  std::size_t gossip_headers = 1;
  double gossip_probability = 0.34;

  // Probability of escalating a clock-clean censorship check to a full
  // sketch decode anyway (random audit). The Bloom-Clock stage can be fooled
  // only by cell collisions; sampling decodes bounds how long such a
  // collision can hide (Sec. 4.2's two-stage reconciliation).
  double censorship_audit_probability = 0.05;

  // --- ablation knobs (defaults = the paper's design; see bench_ablation) ---
  // Two-stage consistency checking (Bloom Clock first, sketch decode only on
  // flags). false = decode on every observed commitment.
  bool two_stage_checks = true;
  // Difference-sized wire sketches (PinSketch prefix truncation). false =
  // always transmit the full-capacity sketch, as a fixed-size design would.
  bool adaptive_wire_sketch = true;

  // Periodic neighbor rotation via the Basalt-style hash-ranking view
  // (Sec. 3 "Continuous Sampling", Sec. 5.1: "each peer periodically rotates
  // its neighbors ... until it is provided with a sufficient number of
  // non-suspected and non-exposed peers"). 0 disables rotation (static
  // topology, the evaluation default).
  sim::Duration rotate_interval = 0;
  std::size_t view_size = 16;

  // Fee threshold for block inclusion (Sec. 4.3 step 2).
  std::uint64_t block_min_fee = 1;

  // SWIM-style membership failure detector (src/membership). Disabled by
  // default: the paper's pure timeout-driven suspicion semantics are
  // unchanged unless a deployment opts in. When enabled, membership becomes
  // the *liveness* signal and request timeouts stay the *protocol-misbehavior*
  // signal: a timed-out request only escalates to accountability suspicion
  // while the detector still presumes the peer alive (see DESIGN.md §6).
  membership::MembershipConfig membership;

  // Fails fast (std::invalid_argument) on parameters that would silently
  // break the retry/backoff or membership machinery: a shrinking backoff
  // (backoff_factor < 1), jitter outside [0, 1) (a negative or >= 100%
  // jitter can produce non-positive delays), a zero request timeout (spin
  // retries), and inconsistent membership timing. Called from the LoNode
  // constructor, so no node can be built on a nonsensical config.
  void validate() const;
};

// Transaction-manipulation primitives (Sec. 2.2) plus attacks on the
// detection mechanism itself (Sec. 5.3), composable per node.
struct MaliciousBehavior {
  bool censor_txs = false;          // mempool censorship: never commit/serve foreign txs
  bool ignore_requests = false;     // stay silent; drives suspicion (Fig. 6)
  bool equivocate = false;          // fork the commitment log between peers
  bool reorder_block = false;       // order block txs by fee, not canonically
  bool inject_uncommitted = false;  // slip an uncommitted tx ahead of committed ones
  bool censor_blockspace = false;   // drop committed valid txs from own blocks
  bool drop_gossip = false;         // do not forward blame/blocks/commitments
  // Cross-shard censorship (DESIGN.md §7): censor foreign txs of exactly this
  // shard while behaving honestly in every other shard. -1 disables. Only
  // meaningful when mempool_shards > 1; detection must converge per shard.
  std::int32_t censor_shard = -1;

  bool censors(std::uint64_t short_id, std::size_t shards) const noexcept {
    if (censor_txs) return true;
    return censor_shard >= 0 && shards > 1 &&
           short_id % shards == static_cast<std::uint64_t>(censor_shard);
  }

  bool any() const noexcept {
    return censor_txs || ignore_requests || equivocate || reorder_block ||
           inject_uncommitted || censor_blockspace || drop_gossip ||
           censor_shard >= 0;
  }
};

}  // namespace lo::core
