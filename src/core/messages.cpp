#include "core/messages.hpp"

#include "core/inspection.hpp"
#include "crypto/verify_cache.hpp"
#include "util/serde.hpp"

namespace lo::core {

std::vector<std::uint8_t> SignedBundle::signing_bytes() const {
  util::Writer w;
  w.str("lo-bundle");
  w.u32(owner);
  // Shard id under the signature only at k > 1: single-shard bundles keep the
  // pre-sharding bytes, sharded ones cannot be replayed across shards.
  if (shards > 1) {
    w.str("shard");
    w.u32(shard);
  }
  w.u64(seqno);
  w.u32(static_cast<std::uint32_t>(txids.size()));
  for (const auto& id : txids) w.fixed(id);
  return w.take_u8();
}

bool SignedBundle::verify(crypto::SignatureMode mode,
                          crypto::VerifyCache* cache) const {
  auto msg = signing_bytes();
  const std::span<const std::uint8_t> m(msg.data(), msg.size());
  if (cache) return cache->verify(mode, key, m, sig);
  return crypto::Signer::verify(mode, key, m, sig);
}

bool BlockEvidence::verify(crypto::SignatureMode mode,
                           std::uint8_t claimed_verdict,
                           crypto::VerifyCache* cache) const {
  if (block.creator != accused) return false;
  if (!block.verify(mode, cache)) return false;
  BundleMap map;
  for (const auto& b : bundles) {
    if (b.owner != accused) return false;
    if (!(b.key == block.key)) return false;
    if (!b.verify(mode, cache)) return false;
    map[b.seqno] = b.txids;
  }
  // Censorship claims depend on tx content the verifier may not share, so the
  // transferable evidence covers structure, injection and reordering only;
  // pass no includeability knowledge.
  const auto res = inspect_block(block, map, nullptr);
  return static_cast<std::uint8_t>(res.verdict) == claimed_verdict &&
         (res.verdict == BlockVerdict::kReordered ||
          res.verdict == BlockVerdict::kInjected ||
          res.verdict == BlockVerdict::kBadStructure);
}

bool ExposureMsg::verify(crypto::SignatureMode mode,
                         crypto::VerifyCache* cache) const {
  if (equivocation) {
    return equivocation->accused == accused && equivocation->verify(mode, cache);
  }
  if (block_evidence) {
    return block_evidence->accused == accused &&
           block_evidence->verify(mode, verdict, cache);
  }
  return false;
}

// ------------------------------------------------------- wire encodings ----
//
// The serializers below are the byte-level ground truth for every wire_size()
// formula above; tests/test_messages.cpp asserts serialize().size() ==
// wire_size() for every message type.

std::vector<std::uint8_t> SyncRequest::serialize() const {
  util::Writer w;
  commitment.write(w);
  w.u64(request_id);
  return w.take_u8();
}

std::optional<SyncRequest> SyncRequest::deserialize(
    std::span<const std::uint8_t> data, const CommitmentParams& params) {
  try {
    util::Reader r(data);
    SyncRequest m;
    auto h = CommitmentHeader::read(r, params);
    if (!h) return std::nullopt;
    m.commitment = *h;
    m.request_id = r.u64();
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> SyncResponse::serialize() const {
  util::Writer w;
  commitment.write(w);
  w.u64(request_id);
  w.u8(decode_failed ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(want_short.size()));
  for (auto e : want_short) w.u64(e);
  w.u32(static_cast<std::uint32_t>(delta_back.size()));
  for (const auto& id : delta_back) w.fixed(id);
  w.u32(static_cast<std::uint32_t>(gossip.size()));
  for (const auto& h : gossip) h.write(w);
  return w.take_u8();
}

std::optional<SyncResponse> SyncResponse::deserialize(
    std::span<const std::uint8_t> data, const CommitmentParams& params) {
  try {
    util::Reader r(data);
    SyncResponse m;
    auto h = CommitmentHeader::read(r, params);
    if (!h) return std::nullopt;
    m.commitment = *h;
    m.request_id = r.u64();
    m.decode_failed = r.u8() != 0;
    const std::uint32_t nw = r.u32();
    for (std::uint32_t i = 0; i < nw; ++i) m.want_short.push_back(r.u64());
    const std::uint32_t nd = r.u32();
    for (std::uint32_t i = 0; i < nd; ++i) m.delta_back.push_back(r.fixed<32>());
    const std::uint32_t ng = r.u32();
    for (std::uint32_t i = 0; i < ng; ++i) {
      auto g = CommitmentHeader::read(r, params);
      if (!g) return std::nullopt;
      m.gossip.push_back(*g);
    }
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> TxRequest::serialize() const {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(want.size()));
  for (const auto& id : want) w.fixed(id);
  w.u32(static_cast<std::uint32_t>(want_short.size()));
  for (auto e : want_short) w.u64(e);
  w.u64(request_id);
  return w.take_u8();
}

std::optional<TxRequest> TxRequest::deserialize(
    std::span<const std::uint8_t> data) {
  try {
    util::Reader r(data);
    TxRequest m;
    const std::uint32_t nw = r.u32();
    for (std::uint32_t i = 0; i < nw; ++i) m.want.push_back(r.fixed<32>());
    const std::uint32_t ns = r.u32();
    for (std::uint32_t i = 0; i < ns; ++i) m.want_short.push_back(r.u64());
    m.request_id = r.u64();
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> TxBundleMsg::serialize() const {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(txs.size()));
  w.u64(request_id);
  for (const auto& tx : txs) tx.write(w);
  return w.take_u8();
}

std::optional<TxBundleMsg> TxBundleMsg::deserialize(
    std::span<const std::uint8_t> data) {
  try {
    util::Reader r(data);
    TxBundleMsg m;
    const std::uint32_t n = r.u32();
    m.request_id = r.u64();
    for (std::uint32_t i = 0; i < n; ++i) m.txs.push_back(Transaction::read(r));
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> SuspicionMsg::serialize() const {
  util::Writer w;
  w.u32(suspect);
  w.u32(reporter);
  w.u64(epoch);
  w.u8(retract ? 1 : 0);
  w.u8(last_known ? 1 : 0);
  if (last_known) last_known->write(w);
  return w.take_u8();
}

std::optional<SuspicionMsg> SuspicionMsg::deserialize(
    std::span<const std::uint8_t> data, const CommitmentParams& params) {
  try {
    util::Reader r(data);
    SuspicionMsg m;
    m.suspect = r.u32();
    m.reporter = r.u32();
    m.epoch = r.u64();
    m.retract = r.u8() != 0;
    if (r.u8() != 0) {
      auto h = CommitmentHeader::read(r, params);
      if (!h) return std::nullopt;
      m.last_known = *h;
    }
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

void SignedBundle::write(util::Writer& w) const {
  w.u32(owner);
  if (shards > 1) w.u32(shard);
  w.u64(seqno);
  w.u32(static_cast<std::uint32_t>(txids.size()));
  for (const auto& id : txids) w.fixed(id);
  w.fixed(key);
  w.fixed(sig);
}

std::optional<SignedBundle> SignedBundle::read(util::Reader& r,
                                               std::uint32_t shards) {
  try {
    SignedBundle sb;
    sb.shards = shards == 0 ? 1 : shards;
    sb.owner = r.u32();
    if (shards > 1) {
      sb.shard = r.u32();
      if (sb.shard >= shards) return std::nullopt;
    }
    sb.seqno = r.u64();
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) sb.txids.push_back(r.fixed<32>());
    sb.key = r.fixed<32>();
    sb.sig = r.fixed<64>();
    return sb;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

void BlockEvidence::write(util::Writer& w) const {
  w.u32(accused);
  w.u16(static_cast<std::uint16_t>(bundles.size()));
  block.write(w);
  for (const auto& b : bundles) b.write(w);
}

std::optional<BlockEvidence> BlockEvidence::read(util::Reader& r,
                                                 std::uint32_t shards) {
  try {
    BlockEvidence ev;
    ev.accused = r.u32();
    const std::uint16_t n = r.u16();
    auto b = Block::read(r, shards);
    if (!b) return std::nullopt;
    ev.block = *b;
    for (std::uint16_t i = 0; i < n; ++i) {
      auto sb = SignedBundle::read(r, shards);
      if (!sb) return std::nullopt;
      ev.bundles.push_back(*sb);
    }
    return ev;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> ExposureMsg::serialize() const {
  util::Writer w;
  w.u32(accused);
  w.u8(verdict);
  w.u8(equivocation ? 1 : 0);
  w.u8(block_evidence ? 1 : 0);
  if (equivocation) {
    w.u32(equivocation->accused);
    equivocation->first.write(w);
    equivocation->second.write(w);
  }
  if (block_evidence) block_evidence->write(w);
  return w.take_u8();
}

std::optional<ExposureMsg> ExposureMsg::deserialize(
    std::span<const std::uint8_t> data, const CommitmentParams& params) {
  try {
    util::Reader r(data);
    ExposureMsg m;
    m.accused = r.u32();
    m.verdict = r.u8();
    const bool has_eq = r.u8() != 0;
    const bool has_be = r.u8() != 0;
    if (has_eq) {
      EquivocationEvidence eq;
      eq.accused = r.u32();
      auto h1 = CommitmentHeader::read(r, params);
      auto h2 = CommitmentHeader::read(r, params);
      if (!h1 || !h2) return std::nullopt;
      eq.first = *h1;
      eq.second = *h2;
      m.equivocation = std::move(eq);
    }
    if (has_be) {
      auto be = BlockEvidence::read(r, params.shards);
      if (!be) return std::nullopt;
      m.block_evidence = std::move(*be);
    }
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

std::optional<BlockMsg> BlockMsg::deserialize(
    std::span<const std::uint8_t> data, std::uint32_t shards) {
  auto b = Block::deserialize(data, shards);
  if (!b) return std::nullopt;
  BlockMsg m;
  m.block = std::move(*b);
  return m;
}

std::vector<std::uint8_t> BundleRequest::serialize() const {
  util::Writer w;
  w.u32(creator);
  if (shards > 1) w.u32(shard);
  w.u32(static_cast<std::uint32_t>(seqnos.size()));
  for (auto s : seqnos) w.u64(s);
  w.u64(request_id);
  return w.take_u8();
}

std::optional<BundleRequest> BundleRequest::deserialize(
    std::span<const std::uint8_t> data, std::uint32_t shards) {
  try {
    util::Reader r(data);
    BundleRequest m;
    m.shards = shards == 0 ? 1 : shards;
    m.creator = r.u32();
    if (shards > 1) {
      m.shard = r.u32();
      if (m.shard >= shards) return std::nullopt;
    }
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) m.seqnos.push_back(r.u64());
    m.request_id = r.u64();
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> BundleResponse::serialize() const {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(bundles.size()));
  w.u64(request_id);
  for (const auto& b : bundles) b.write(w);
  return w.take_u8();
}

std::optional<BundleResponse> BundleResponse::deserialize(
    std::span<const std::uint8_t> data, std::uint32_t shards) {
  try {
    util::Reader r(data);
    BundleResponse m;
    const std::uint32_t n = r.u32();
    m.request_id = r.u64();
    for (std::uint32_t i = 0; i < n; ++i) {
      auto sb = SignedBundle::read(r, shards);
      if (!sb) return std::nullopt;
      m.bundles.push_back(*sb);
    }
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> HeaderGossip::serialize() const {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(headers.size()));
  for (const auto& h : headers) h.write(w);
  return w.take_u8();
}

std::optional<HeaderGossip> HeaderGossip::deserialize(
    std::span<const std::uint8_t> data, const CommitmentParams& params) {
  try {
    util::Reader r(data);
    HeaderGossip m;
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      auto h = CommitmentHeader::read(r, params);
      if (!h) return std::nullopt;
      m.headers.push_back(*h);
    }
    if (!r.done()) return std::nullopt;
    return m;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

}  // namespace lo::core
