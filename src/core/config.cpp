#include "core/config.hpp"

#include <stdexcept>
#include <string>

namespace lo::core {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("LoConfig: " + what);
}

}  // namespace

void LoConfig::validate() const {
  if (mempool_shards < 1 || mempool_shards > 64) {
    fail("mempool_shards must lie in [1, 64] (got " +
         std::to_string(mempool_shards) +
         "); shard ids are packed into one byte of per-peer keys and more "
         "shards than that only fragments the sketch streams");
  }
  if (commitment.shards != 1 &&
      commitment.shards != static_cast<std::uint32_t>(mempool_shards)) {
    fail("commitment.shards (" + std::to_string(commitment.shards) +
         ") disagrees with mempool_shards (" + std::to_string(mempool_shards) +
         "); set only mempool_shards — LoNode folds it into the wire params");
  }
  if (request_timeout <= 0) {
    fail("request_timeout must be positive (got " +
         std::to_string(request_timeout) + " us); a zero timeout spins the "
         "retry loop on every event");
  }
  if (max_retries < 0) {
    fail("max_retries must be >= 0 (got " + std::to_string(max_retries) + ")");
  }
  if (backoff_factor < 1.0) {
    fail("backoff_factor must be >= 1.0 (got " +
         std::to_string(backoff_factor) +
         "); a shrinking backoff degenerates into a retry storm");
  }
  if (backoff_jitter < 0.0 || backoff_jitter >= 1.0) {
    fail("backoff_jitter must lie in [0, 1) (got " +
         std::to_string(backoff_jitter) +
         "); jitter >= 100% can produce non-positive retry delays");
  }
  if (backoff_cap < request_timeout) {
    fail("backoff_cap (" + std::to_string(backoff_cap) +
         " us) must be >= request_timeout (" + std::to_string(request_timeout) +
         " us), or the first retry already overshoots the cap");
  }
  if (membership.enabled) {
    if (membership.protocol_period <= 0) {
      fail("membership.protocol_period must be positive");
    }
    if (membership.ping_timeout <= 0 ||
        membership.ping_timeout >= membership.protocol_period) {
      fail("membership.ping_timeout must lie in (0, protocol_period): the "
           "indirect probe round has to fit into the same period");
    }
    if (membership.indirect_fanout == 0) {
      fail("membership.indirect_fanout must be >= 1; without proxies one "
           "lossy link converts directly into a false suspicion");
    }
    if (membership.suspicion_periods == 0) {
      fail("membership.suspicion_periods must be >= 1: a zero refutation "
           "window confirms every transient suspicion");
    }
    if (membership.gossip_updates == 0) {
      fail("membership.gossip_updates must be >= 1, or membership state "
           "never disseminates");
    }
  }
}

}  // namespace lo::core
