// Wire messages of the LØ base-layer protocol (Alg. 1 and Sec. 5.2).
//
// Message classes, for the Fig. 9 bandwidth accounting:
//   lo.sync_req    — NeighborsSync commitment request (header + explicit delta)
//   lo.sync_resp   — commitment response (new header + tx wants + return delta)
//   lo.tx_req      — content request for committed-but-unknown txids
//   lo.txs         — transaction bodies (EXCLUDED from "overhead" in Fig. 9,
//                    matching the paper: tx sharing cost is common to all
//                    protocols)
//   lo.suspicion   — blame: a peer ignored requests (Sec. 5.2)
//   lo.exposure    — blame: verifiable equivocation evidence
//   lo.block       — block dissemination
//   lo.bundle_req  — inspector asks a block creator for committed bundles
//   lo.bundle_resp — signed bundle contents
//   lo.header_gossip — periodic relay of third-party commitments (Sec. 5.2
//                    "nodes periodically share their most recent commitments")
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/block.hpp"
#include "core/commitment.hpp"
#include "core/transaction.hpp"
#include "core/types.hpp"
#include "sim/simulator.hpp"

namespace lo::core {

inline constexpr std::size_t kTxIdWire = 32;

// NeighborsSync (Alg. 1 lines 11-16): the requester sends only its signed
// commitment — the truncated sketch inside it lets the responder compute the
// exact symmetric difference, so no transaction ids travel redundantly.
struct SyncRequest final : sim::Payload {
  CommitmentHeader commitment;
  std::uint64_t request_id = 0;

  const char* type_name() const noexcept override { return "lo.sync_req"; }
  std::size_t wire_size() const noexcept override {
    return commitment.wire_size() + 8;
  }
  std::vector<std::uint8_t> serialize() const;
  static std::optional<SyncRequest> deserialize(
      std::span<const std::uint8_t> data, const CommitmentParams& params);
};

// Reconciliation result from the responder:
//  - delta_back: full ids the requester lacks (responder resolves its side
//    of the decoded difference; the requester commits them in this order);
//  - want_short: sketch elements of txs the responder lacks (it cannot name
//    them; the requester resolves and ships them in a TxBundleMsg);
//  - decode_failed: the difference exceeded the request's sketch capacity;
//    the responder's own commitment (inside) carries a larger sketch so the
//    requester can reconcile locally and recover.
struct SyncResponse final : sim::Payload {
  CommitmentHeader commitment;
  std::vector<std::uint64_t> want_short;
  std::vector<TxId> delta_back;
  bool decode_failed = false;
  // Piggybacked third-party commitments (Sec. 5.2 commitment sharing); this
  // is what lets equivocation evidence meet at a correct node.
  std::vector<CommitmentHeader> gossip;
  std::uint64_t request_id = 0;

  const char* type_name() const noexcept override { return "lo.sync_resp"; }
  std::size_t wire_size() const noexcept override {
    std::size_t sz = commitment.wire_size() + 8 + 1 + 2 * 4 +
                     8 * want_short.size() + kTxIdWire * delta_back.size() + 4;
    for (const auto& h : gossip) sz += h.wire_size();
    return sz;
  }
  std::vector<std::uint8_t> serialize() const;
  static std::optional<SyncResponse> deserialize(
      std::span<const std::uint8_t> data, const CommitmentParams& params);
};

struct TxRequest final : sim::Payload {
  std::vector<TxId> want;                 // known full ids
  std::vector<std::uint64_t> want_short;  // sketch elements (recovery path)
  std::uint64_t request_id = 0;

  const char* type_name() const noexcept override { return "lo.tx_req"; }
  std::size_t wire_size() const noexcept override {
    return 4 + kTxIdWire * want.size() + 4 + 8 * want_short.size() + 8;
  }
  std::vector<std::uint8_t> serialize() const;
  static std::optional<TxRequest> deserialize(std::span<const std::uint8_t> data);
};

struct TxBundleMsg final : sim::Payload {
  std::vector<Transaction> txs;
  std::uint64_t request_id = 0;  // 0 when unsolicited

  const char* type_name() const noexcept override { return "lo.txs"; }
  std::size_t wire_size() const noexcept override {
    std::size_t sz = 4 + 8;
    for (const auto& tx : txs) sz += tx.wire_size();
    return sz;
  }
  std::vector<std::uint8_t> serialize() const;
  static std::optional<TxBundleMsg> deserialize(
      std::span<const std::uint8_t> data);
};

struct SuspicionMsg final : sim::Payload {
  NodeId suspect = 0;
  NodeId reporter = 0;
  std::uint64_t epoch = 0;  // reporter-local dedup counter
  // true: the reporter's pending request was answered — lift the suspicion
  // this reporter raised earlier (Sec. 5.2: "once it publicly responds to all
  // pending requests, no correct node will suspect it").
  bool retract = false;
  std::optional<CommitmentHeader> last_known;  // suspect's last commitment

  const char* type_name() const noexcept override { return "lo.suspicion"; }
  std::size_t wire_size() const noexcept override {
    return 4 + 4 + 8 + 1 + 1 + (last_known ? last_known->wire_size() : 0);
  }
  std::vector<std::uint8_t> serialize() const;
  static std::optional<SuspicionMsg> deserialize(
      std::span<const std::uint8_t> data, const CommitmentParams& params);
};

// Verifiable equivocation evidence: two signed commitments from the same
// miner that fail the consistency check. Self-contained and transferable.
struct EquivocationEvidence {
  NodeId accused = 0;
  CommitmentHeader first;
  CommitmentHeader second;

  bool verify(crypto::SignatureMode mode,
              crypto::VerifyCache* cache = nullptr) const {
    if (first.node != accused || second.node != accused) return false;
    // Commitments of different shards describe disjoint logs: a cross-shard
    // pair can never prove equivocation (DESIGN.md §7).
    if (first.shard != second.shard) return false;
    if (!(first.key == second.key)) return false;
    if (!first.verify(mode, cache) || !second.verify(mode, cache)) return false;
    return check_consistency(first, second) == Consistency::kEquivocation;
  }
  std::size_t wire_size() const noexcept {
    return 4 + first.wire_size() + second.wire_size();
  }
};

// A single committed bundle, signed by its owner so it can serve as evidence
// in block-inspection disputes.
struct SignedBundle {
  NodeId owner = 0;
  std::uint64_t seqno = 0;
  // Shard the bundle belongs to; signed and serialized only when shards > 1
  // so the k = 1 wire format stays byte-identical (DESIGN.md §7).
  std::uint32_t shard = 0;
  std::uint32_t shards = 1;
  std::vector<TxId> txids;
  crypto::PublicKey key{};
  crypto::Signature sig{};

  std::vector<std::uint8_t> signing_bytes() const;
  bool verify(crypto::SignatureMode mode,
              crypto::VerifyCache* cache = nullptr) const;
  std::size_t wire_size() const noexcept {
    return 4 + (shards > 1 ? 4 : 0) + 8 + 4 + kTxIdWire * txids.size() + 32 +
           64;
  }
  void write(util::Writer& w) const;
  static std::optional<SignedBundle> read(util::Reader& r,
                                          std::uint32_t shards = 1);
};

// Block-level violation evidence: the signed block plus the creator-signed
// bundles proving what the canonical content should have been.
struct BlockEvidence {
  NodeId accused = 0;
  Block block;
  std::vector<SignedBundle> bundles;

  // Re-runs inspection against the signed bundles; `claim` must reproduce.
  bool verify(crypto::SignatureMode mode, std::uint8_t claimed_verdict,
              crypto::VerifyCache* cache = nullptr) const;
  std::size_t wire_size() const noexcept {
    std::size_t sz = 4 + 2 + block.wire_size();
    for (const auto& b : bundles) sz += b.wire_size();
    return sz;
  }
  void write(util::Writer& w) const;
  static std::optional<BlockEvidence> read(util::Reader& r,
                                           std::uint32_t shards = 1);
};

struct ExposureMsg final : sim::Payload {
  NodeId accused = 0;
  std::uint8_t verdict = 0;  // BlockVerdict for block evidence; 0xff for equiv
  std::optional<EquivocationEvidence> equivocation;
  std::optional<BlockEvidence> block_evidence;

  const char* type_name() const noexcept override { return "lo.exposure"; }
  std::size_t wire_size() const noexcept override {
    return 4 + 1 + 2 +
           (equivocation ? equivocation->wire_size() : 0) +
           (block_evidence ? block_evidence->wire_size() : 0);
  }
  bool verify(crypto::SignatureMode mode,
              crypto::VerifyCache* cache = nullptr) const;
  std::vector<std::uint8_t> serialize() const;
  static std::optional<ExposureMsg> deserialize(
      std::span<const std::uint8_t> data, const CommitmentParams& params);
};

struct BlockMsg final : sim::Payload {
  Block block;

  const char* type_name() const noexcept override { return "lo.block"; }
  std::size_t wire_size() const noexcept override { return block.wire_size(); }
  std::vector<std::uint8_t> serialize() const { return block.serialize(); }
  static std::optional<BlockMsg> deserialize(std::span<const std::uint8_t> data,
                                             std::uint32_t shards = 1);
};

struct BundleRequest final : sim::Payload {
  NodeId creator = 0;
  // Shard whose bundles are requested; on the wire only when shards > 1.
  std::uint32_t shard = 0;
  std::uint32_t shards = 1;
  std::vector<std::uint64_t> seqnos;
  std::uint64_t request_id = 0;

  const char* type_name() const noexcept override { return "lo.bundle_req"; }
  std::size_t wire_size() const noexcept override {
    return 4 + (shards > 1 ? 4 : 0) + 4 + 8 * seqnos.size() + 8;
  }
  std::vector<std::uint8_t> serialize() const;
  static std::optional<BundleRequest> deserialize(
      std::span<const std::uint8_t> data, std::uint32_t shards = 1);
};

struct BundleResponse final : sim::Payload {
  std::vector<SignedBundle> bundles;
  std::uint64_t request_id = 0;

  const char* type_name() const noexcept override { return "lo.bundle_resp"; }
  std::size_t wire_size() const noexcept override {
    std::size_t sz = 4 + 8;
    for (const auto& b : bundles) sz += b.wire_size();
    return sz;
  }
  std::vector<std::uint8_t> serialize() const;
  static std::optional<BundleResponse> deserialize(
      std::span<const std::uint8_t> data, std::uint32_t shards = 1);
};

// Periodic relay of the most recent third-party commitments.
struct HeaderGossip final : sim::Payload {
  std::vector<CommitmentHeader> headers;

  const char* type_name() const noexcept override { return "lo.header_gossip"; }
  std::size_t wire_size() const noexcept override {
    std::size_t sz = 4;
    for (const auto& h : headers) sz += h.wire_size();
    return sz;
  }
  std::vector<std::uint8_t> serialize() const;
  static std::optional<HeaderGossip> deserialize(
      std::span<const std::uint8_t> data, const CommitmentParams& params);
};

}  // namespace lo::core
