#include "core/inspection.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/ordered.hpp"

namespace lo::core {

const char* to_string(BlockVerdict v) noexcept {
  switch (v) {
    case BlockVerdict::kOk: return "ok";
    case BlockVerdict::kReordered: return "reordered";
    case BlockVerdict::kInjected: return "injected";
    case BlockVerdict::kCensored: return "censored";
    case BlockVerdict::kBadStructure: return "bad-structure";
    case BlockVerdict::kNeedBundles: return "need-bundles";
  }
  return "?";
}

InspectionResult inspect_block(
    const Block& block, const BundleMap& creator_bundles,
    const std::function<bool(const TxId&)>& known_includeable) {
  InspectionResult res;

  // Structural checks need no bundle knowledge.
  std::uint64_t prev_seqno = 0;
  for (const auto& seg : block.segments) {
    if (seg.seqno == 0 || seg.seqno <= prev_seqno ||
        seg.seqno > block.commit_seqno) {
      res.verdict = BlockVerdict::kBadStructure;
      res.offending_seqno = seg.seqno;
      return res;
    }
    prev_seqno = seg.seqno;
  }

  for (const auto& seg : block.segments) {
    auto it = creator_bundles.find(seg.seqno);
    if (it == creator_bundles.end()) {
      res.missing_bundles.push_back(seg.seqno);
      continue;
    }
    const std::vector<TxId>& bundle = it->second;
    const auto expected =
        canonical_shuffle(bundle, block.prev_hash, seg.seqno);
    const std::unordered_set<TxId, TxIdHash> committed(bundle.begin(),
                                                       bundle.end());

    // Injection: a segment tx that was never committed in this bundle.
    for (const auto& id : seg.txids) {
      if (committed.find(id) == committed.end()) {
        res.verdict = BlockVerdict::kInjected;
        res.offending_seqno = seg.seqno;
        res.offending_tx = id;
        return res;
      }
    }
    // Order: the segment must be a subsequence of the canonical shuffle
    // (the creator may drop invalid/low-fee txs but may not permute).
    std::size_t pos = 0;
    for (const auto& id : seg.txids) {
      while (pos < expected.size() && expected[pos] != id) ++pos;
      if (pos == expected.size()) {
        res.verdict = BlockVerdict::kReordered;
        res.offending_seqno = seg.seqno;
        res.offending_tx = id;
        return res;
      }
      ++pos;
    }
    // Censorship: a committed, provably-includeable tx missing from the
    // segment (block-space censorship, Sec. 2.2).
    if (known_includeable) {
      const std::unordered_set<TxId, TxIdHash> present(seg.txids.begin(),
                                                       seg.txids.end());
      for (const auto& id : bundle) {
        if (present.find(id) == present.end() && known_includeable(id)) {
          res.verdict = BlockVerdict::kCensored;
          res.offending_seqno = seg.seqno;
          res.offending_tx = id;
          return res;
        }
      }
    }
  }

  // Whole committed bundles silently dropped from the block are censorship
  // too, if the inspector can prove any of their txs includeable.
  if (known_includeable) {
    std::unordered_set<std::uint64_t> in_block;
    for (const auto& seg : block.segments) in_block.insert(seg.seqno);
    // Sorted walk: the loop returns on the first provable omission, and the
    // offending (seqno, tx) pair ends up in transferable evidence — every
    // correct inspector must converge on the same canonical witness (the
    // lowest censored seqno), not on a hash-order accident.
    for (const auto* kv : util::sorted_items(creator_bundles)) {
      const auto seqno = kv->first;
      const auto& bundle = kv->second;
      if (seqno > block.commit_seqno || in_block.count(seqno) != 0) continue;
      for (const auto& id : bundle) {
        if (known_includeable(id)) {
          res.verdict = BlockVerdict::kCensored;
          res.offending_seqno = seqno;
          res.offending_tx = id;
          return res;
        }
      }
    }
  }

  if (!res.missing_bundles.empty()) {
    res.verdict = BlockVerdict::kNeedBundles;
    std::sort(res.missing_bundles.begin(), res.missing_bundles.end());
    return res;
  }
  res.verdict = BlockVerdict::kOk;
  return res;
}

}  // namespace lo::core
